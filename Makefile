.PHONY: all build test bench bench-json check examples csv clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable perf report, tracked across PRs.
bench-json:
	dune exec bench/main.exe -- --json BENCH_1.json

# Everything CI needs: full build, tests, and a smoke run of the
# harness itself (including the JSON emitter).
check:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- --json /tmp/bench.json

examples:
	@for e in quickstart heartbeat_spmv omp_nas carat_defrag \
	          coherence_pbbs faas_pipeline virtine_fib; do \
	  echo "=== $$e ==="; dune exec examples/$$e.exe; echo; done

csv:
	dune exec bin/main.exe -- csv out

clean:
	dune clean
