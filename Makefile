.PHONY: all build test bench bench-json check trace-smoke sweep-smoke examples csv clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# Machine-readable perf report, tracked across PRs.
bench-json:
	dune exec bench/main.exe -- --json BENCH_2.json

# Run one experiment with the trace bus on, export Chrome trace-event
# JSON, and validate it (Perfetto-loadable or the target fails).
trace-smoke:
	dune exec bin/main.exe -- trace E3 --out /tmp/trace_smoke.json --check

# Exercise the cost-model sweep end to end on one hoisted field.
sweep-smoke:
	dune exec bin/main.exe -- sweep tick_update

# Everything CI needs: full build, tests, and a smoke run of the
# harness itself (including the JSON emitter and the trace exporter).
check:
	dune build @all
	dune runtest
	dune exec bench/main.exe -- --json /tmp/bench.json
	$(MAKE) trace-smoke
	$(MAKE) sweep-smoke

examples:
	@for e in quickstart heartbeat_spmv omp_nas carat_defrag \
	          coherence_pbbs faas_pipeline virtine_fib; do \
	  echo "=== $$e ==="; dune exec examples/$$e.exe; echo; done

csv:
	dune exec bin/main.exe -- csv out

clean:
	dune clean
