.PHONY: all build test bench examples csv clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

examples:
	@for e in quickstart heartbeat_spmv omp_nas carat_defrag \
	          coherence_pbbs faas_pipeline virtine_fib; do \
	  echo "=== $$e ==="; dune exec examples/$$e.exe; echo; done

csv:
	dune exec bin/main.exe -- csv out

clean:
	dune clean
