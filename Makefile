.PHONY: all build test bench bench-json bench-baseline perf-budget \
        alloc-smoke check trace-smoke sweep-smoke \
        profile-smoke profile-diff-smoke faults-smoke faults-csv-smoke \
        serve-smoke fleet-smoke series-smoke series-update degrade-smoke \
        nic-smoke golden-check golden-update examples csv clean

all: build

build:
	dune build @all

test:
	dune runtest

bench:
	dune exec bench/main.exe

# The perf baseline this PR gates against; each PR commits its own.
BENCH_BASELINE = BENCH_10.json

# Machine-readable perf report, tracked across PRs.
bench-json:
	dune exec bench/main.exe -- --json $(BENCH_BASELINE)

# Every PR must ship its baseline: fail fast when the file the budget
# gates against never got committed (PR 8's went missing for a while).
bench-baseline:
	@test -f $(BENCH_BASELINE) || { \
	  echo "error: $(BENCH_BASELINE) missing; run 'make bench-json' and commit it"; \
	  exit 1; }

# Re-run the benchmark and gate wall time against the committed
# baseline: any experiment more than 15% AND 0.3s slower fails.
# After an intentional perf change, re-baseline with `make bench-json`
# and commit the new $(BENCH_BASELINE) alongside the change.
perf-budget: bench-baseline
	dune exec bench/main.exe -- --json /tmp/bench.json --against $(BENCH_BASELINE)

# A short serve run that fails if the hot path allocates more than the
# committed budget of minor-heap words per completed request.  The
# steady state allocates nothing; the budget leaves room for warmup
# (arena/queue/timer growth to the high-water mark, ~29k words)
# amortized over ~100k requests.
alloc-smoke:
	dune exec bin/main.exe -- serve --rps 250000 --duration 400 \
	  --work-us 20 --alloc-budget 0.5

# Run one experiment with the trace bus on, export Chrome trace-event
# JSON, and validate it (Perfetto-loadable or the target fails).
trace-smoke:
	dune exec bin/main.exe -- trace E3 --out /tmp/trace_smoke.json --check

# Reconstruct span stacks from the ring, export a folded flamegraph
# and a speedscope profile, and verify the self-cycle invariant
# (folded self counts must sum to the total traced cycles).
profile-smoke:
	dune exec bin/main.exe -- profile E3 \
	  --folded /tmp/profile_smoke.folded \
	  --speedscope /tmp/profile_smoke.speedscope.json

# Re-run every experiment under a counting context and gate against
# the committed golden/ counter snapshots AND the per-category span
# tallies (--spans), so a silently-dead trace probe fails the gate
# even when counters still balance.  Fails (non-zero) naming the
# drifted counter or span category when the cost model, scheduling,
# or probe coverage changes.
golden-check:
	dune exec bin/main.exe -- golden --check --spans

# Refresh the snapshots after an intentional behavior change.
golden-update:
	dune exec bin/main.exe -- golden --update --spans

# Exercise the cost-model sweep end to end on one hoisted field.
sweep-smoke:
	dune exec bin/main.exe -- sweep tick_update

# One cheap fault-injection run with --check: fails unless faults were
# actually injected and the experiment still completed.
faults-smoke:
	dune exec bin/main.exe -- faults R2 --rate 1e-2 --check

# Sweep a fault-rate range into a CSV (one counter row per rate);
# --check fails if no nonzero rate injected anything.  E8 (not an R
# experiment) so the ambient plan, not a row-scoped one, governs.
faults-csv-smoke:
	dune exec bin/main.exe -- faults E8 --rates 0,1e-3,1e-2 \
	  --csv /tmp/faults_smoke.csv --check

# Compare two runs' self-cycle shares frame by frame.
profile-diff-smoke:
	dune exec bin/main.exe -- profile E3 --diff E10 --threshold 0.5

# Drive the service plane end to end: a two-point load sweep with CSV
# output, exercising arrivals, queues, dispatch, and the histogram.
serve-smoke:
	dune exec bin/main.exe -- serve --rps 20000 --rps 40000 \
	  --duration 20 --csv /tmp/serve_smoke.csv

# Drive a heterogeneous fleet twice -- one domain per machine, then
# single-domain -- and fail unless the CSVs are byte-identical: the
# conservative-window determinism claim, checked end to end.
fleet-smoke:
	dune exec bin/main.exe -- serve --hetero 1xknl:4+1xsrv:2 \
	  --rps 100000 --rps 200000 --duration 10 --work-us 20 \
	  --csv /tmp/fleet_par.csv
	dune exec bin/main.exe -- serve --hetero 1xknl:4+1xsrv:2 \
	  --rps 100000 --rps 200000 --duration 10 --work-us 20 \
	  --fleet-serial --csv /tmp/fleet_ser.csv
	cmp /tmp/fleet_par.csv /tmp/fleet_ser.csv

# The telemetry gate, three claims end to end:
#  1. the sampled fleet timeline is deterministic (CSV matches the
#     committed golden, parallel and serial runs byte-identical);
#  2. sampling never perturbs results (S6 output identical on/off);
#  3. a flow-traced fleet run exports a valid Chrome trace whose
#     request flows actually cross machine processes.
SERIES_ARGS = --hetero 2xknl:4+2xsrv:2 --rps 300000 --duration 10 \
  --work-us 20 --sample-us 100 --slo-us 400
series-smoke:
	dune exec bin/main.exe -- serve $(SERIES_ARGS) \
	  --series-csv /tmp/series_par.csv > /dev/null
	dune exec bin/main.exe -- serve $(SERIES_ARGS) \
	  --fleet-serial --series-csv /tmp/series_ser.csv > /dev/null
	cmp /tmp/series_par.csv /tmp/series_ser.csv
	cmp /tmp/series_par.csv golden/fleet.series.csv
	dune exec bin/main.exe -- run S6 > /tmp/series_s6_off.txt
	dune exec bin/main.exe -- run S6 --sample-us 100 > /tmp/series_s6_on.txt
	cmp /tmp/series_s6_off.txt /tmp/series_s6_on.txt
	dune exec bin/main.exe -- trace S6 --flows --sample-us 100 \
	  --ring-capacity 4194304 --out /tmp/series_s6.trace.json --check \
	  > /dev/null

# Refresh the committed fleet timeline after an intentional change.
series-update:
	dune exec bin/main.exe -- serve $(SERIES_ARGS) \
	  --series-csv golden/fleet.series.csv > /dev/null

# The graceful-degradation gate:
#  1. the R5-R8 chaos curves match their committed goldens (counters
#     AND span shapes), so every injection and every recovery stays
#     visible to the trace plane;
#  2. a recovery knob that is merely *present* (a deadline with
#     hedging and admission off) leaves a fleet run byte-identical --
#     the degradation machinery prices at zero until it engages.
degrade-smoke:
	dune exec bin/main.exe -- golden --check --spans R5 R6 R7 R8
	dune exec bin/main.exe -- serve --hetero 1xknl:4+1xsrv:2 \
	  --rps 150000 --duration 10 --work-us 20 \
	  --csv /tmp/degrade_base.csv > /dev/null
	dune exec bin/main.exe -- serve --hetero 1xknl:4+1xsrv:2 \
	  --rps 150000 --duration 10 --work-us 20 --deadline-us 400 \
	  --csv /tmp/degrade_inert.csv > /dev/null
	cmp /tmp/degrade_base.csv /tmp/degrade_inert.csv

# The NIC gate, four claims end to end:
#  1. the N1/N2 device studies match their goldens (counters + spans);
#  2. `faults --list-kinds` names every NIC fault kind;
#  3. NIC knobs without --nic are inert (fleet CSV byte-identical);
#  4. arming the NIC fault kinds at rate 0 changes nothing (the
#     recovery slack scan prices at zero until a fault actually fires).
nic-smoke:
	dune exec bin/main.exe -- golden --check --spans N1 N2
	dune exec bin/main.exe -- faults --list-kinds > /tmp/nic_kinds.txt
	grep -q '^nic-rx-drop$$' /tmp/nic_kinds.txt
	grep -q '^nic-irq-lost$$' /tmp/nic_kinds.txt
	grep -q '^nic-ring-overrun$$' /tmp/nic_kinds.txt
	dune exec bin/main.exe -- serve --machines 2 --rps 100000 \
	  --duration 10 --work-us 20 --csv /tmp/nic_base.csv > /dev/null
	dune exec bin/main.exe -- serve --machines 2 --rps 100000 \
	  --duration 10 --work-us 20 --itr 20 --rx-mode poll \
	  --csv /tmp/nic_inert.csv > /dev/null
	cmp /tmp/nic_base.csv /tmp/nic_inert.csv
	dune exec bin/main.exe -- serve --machines 2 --nic --rps 100000 \
	  --duration 10 --work-us 20 --csv /tmp/nic_on.csv > /dev/null
	dune exec bin/main.exe -- serve --machines 2 --nic --rps 100000 \
	  --duration 10 --work-us 20 \
	  --fault-kinds nic-rx-drop,nic-irq-lost,nic-ring-overrun \
	  --csv /tmp/nic_armed.csv > /dev/null
	cmp /tmp/nic_on.csv /tmp/nic_armed.csv

# Everything CI needs: full build, tests, the wall-time perf budget,
# the hot-path allocation budget, smoke runs of the harness (trace
# exporter, profiler), and the golden-counter regression gate.
check:
	dune build @all
	dune runtest
	$(MAKE) perf-budget
	$(MAKE) alloc-smoke
	$(MAKE) trace-smoke
	$(MAKE) profile-smoke
	$(MAKE) profile-diff-smoke
	$(MAKE) sweep-smoke
	$(MAKE) faults-smoke
	$(MAKE) faults-csv-smoke
	$(MAKE) serve-smoke
	$(MAKE) fleet-smoke
	$(MAKE) series-smoke
	$(MAKE) degrade-smoke
	$(MAKE) nic-smoke
	$(MAKE) golden-check

examples:
	@for e in quickstart heartbeat_spmv omp_nas carat_defrag \
	          coherence_pbbs faas_pipeline virtine_fib; do \
	  echo "=== $$e ==="; dune exec examples/$$e.exe; echo; done

csv:
	dune exec bin/main.exe -- csv out

clean:
	dune clean
