(* The benchmark harness.

   Part 1 regenerates every table and figure the paper reports
   (experiments E1..E12 from the registry) plus the ablations, and
   prints them with the paper's claims alongside — this is the
   reproduction itself (simulated cycles, deterministic).  Experiments
   are share-nothing, so Part 1 fans out across OCaml 5 domains
   (Interweave.Driver) and merges the outputs in registry order; the
   printed tables are byte-identical to a serial run.

   Part 2 runs Bechamel wall-clock microbenchmarks of the simulator's
   own hot paths — one Test.make per reproduced table, sized down so
   each iteration is quick — so performance regressions in this
   codebase are visible too.

   Flags:
     --jobs N      domains for Part 1 (default: all cores)
     --serial      same as --jobs 1
     --json PATH   also write a machine-readable BENCH_*.json with
                   per-experiment wall times and Bechamel ns/run *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: the reproduction *)

let run_reproduction ~jobs () =
  print_endline
    "==================================================================";
  print_endline
    " Reproduction: The Case for an Interwoven Parallel HW/SW Stack";
  print_endline
    "==================================================================\n";
  let results =
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) ->
        let t0 = Unix.gettimeofday () in
        let rendered, counters, alloc =
          Interweave.Experiments.run_with_counters e
        in
        (e.id, rendered, Unix.gettimeofday () -. t0, counters, alloc))
      (Interweave.Experiments.all ())
  in
  List.iter
    (fun (id, rendered, dt, _counters, _alloc) ->
      print_string rendered;
      Printf.printf "  [%s completed in %.1fs wall time]\n\n" id dt)
    results;
  results

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks of the simulator itself *)

let mini_heartbeat () =
  let bench =
    { Iw_heartbeat.Tpal.bench_name = "mini-spmv";
      ranges = [ { items = 200_000; grain = 20 } ] }
  in
  ignore
    (Iw_heartbeat.Tpal.run Iw_hw.Platform.knl
       { workers = 4; heartbeat_us = 100.0; driver = Iw_heartbeat.Tpal.Nk_ipi; seed = 2 }
       bench)

let mini_nas =
  {
    Iw_omp.Nas.nas_name = "mini-bt";
    steps = 2;
    step_regions =
      [ { rs_iters = 4_096; rs_cycles = 150; rs_sched = Iw_omp.Runtime.Static } ];
    footprint_kb = 8192;
    locality = 0.9;
    accesses_per_iter = 2;
  }

let mini_omp () =
  ignore (Iw_omp.Nas.run Iw_hw.Platform.knl Iw_omp.Runtime.Rtk ~nthreads:4 mini_nas)

let mini_coherence () =
  let params = Iw_coherence.Machine.default_params ~cores:8 ~cores_per_socket:4 in
  let bench =
    { Iw_coherence.Traces.samplesort with accesses_per_core = 4_000 }
  in
  ignore
    (Iw_coherence.Traces.run_bench ~params Iw_coherence.Machine.Private_and_ro
       bench)

let mini_carat () =
  let p = Iw_ir.Programs.vec_sum 400 in
  let m = p.build () in
  Iw_passes.Carat_pass.instrument m;
  let rt = Iw_carat.Runtime.create () in
  ignore (Iw_ir.Interp.run ~hooks:(Iw_carat.Runtime.hooks rt) m p.entry p.args)

let mini_timing () =
  let p = Iw_ir.Programs.mat_mul 12 in
  ignore (Iw_passes.Timing_pass.measure ~check_budget:2000 p)

let mini_virtine () =
  let t =
    Iw_virtine.Wasp.create
      { Iw_virtine.Wasp.default with profile = Iw_virtine.Wasp.Bespoke_16 }
  in
  for _ = 1 to 100 do
    ignore (Iw_virtine.Wasp.call t ~work_us:50.0)
  done

let mini_switch () =
  let plat = Iw_hw.Platform.with_cores Iw_hw.Platform.knl 1 in
  let k = Iw_kernel.Nautilus.boot ~seed:4 ~quantum_us:50.0 plat in
  for _ = 1 to 2 do
    ignore
      (Iw_kernel.Sched.spawn k
         ~spec:{ Iw_kernel.Sched.default_spec with sp_cpu = Some 0 }
         (fun () -> Iw_kernel.Api.work 1_000_000))
  done;
  Iw_kernel.Sched.run k

let mini_pipeline () =
  ignore (Iw_hw.Pipeline_interrupt.sweep Iw_hw.Platform.knl ~rate_hz:[ 1e4; 1e6 ])

let mini_buddy () =
  let b = Iw_mem.Buddy.create ~base:0 ~size:(1 lsl 16) ~min_block:16 in
  let live = Array.init 512 (fun _ -> Iw_mem.Buddy.alloc b 32) in
  Array.iter (function Some a -> Iw_mem.Buddy.free b a | None -> ()) live

let mini_polling () =
  ignore
    (Iw_passes.Polling_pass.measure ~poll_budget:1500
       ~completions:[ 10_000; 50_000 ] ~plat:Iw_hw.Platform.knl
       (Iw_ir.Programs.vec_sum 1000))

let tests =
  Test.make_grouped ~name:"interweave" ~fmt:"%s/%s"
    [
      Test.make ~name:"fig3-heartbeat" (Staged.stage mini_heartbeat);
      Test.make ~name:"fig4-ctx-switch" (Staged.stage mini_switch);
      Test.make ~name:"fig6-omp" (Staged.stage mini_omp);
      Test.make ~name:"fig7-coherence" (Staged.stage mini_coherence);
      Test.make ~name:"tab-carat" (Staged.stage mini_carat);
      Test.make ~name:"tab-timing" (Staged.stage mini_timing);
      Test.make ~name:"tab-virtine" (Staged.stage mini_virtine);
      Test.make ~name:"tab-pipeline-irq" (Staged.stage mini_pipeline);
      Test.make ~name:"tab-polling" (Staged.stage mini_polling);
      Test.make ~name:"buddy-alloc" (Staged.stage mini_buddy);
    ]

let run_bechamel () =
  print_endline
    "==================================================================";
  print_endline " Bechamel: wall-clock cost of the simulators themselves";
  print_endline
    "==================================================================\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns_per_run =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, ns_per_run) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-32s %16s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 49 '-');
  List.iter
    (fun (name, ns) -> Printf.printf "%-32s %16.0f\n" name ns)
    rows;
  rows

(* ------------------------------------------------------------------ *)
(* JSON report *)

(* Prior-PR baseline on the reference machine (BENCH_2.json), kept
   here so every emitted report carries the before/after pair (Part 1
   = wall time of the reproduction section; the seed commit measured
   20.7s / 22.9s before the harness was parallelized). *)
let baseline_part1_wall_s = 13.3
let baseline_total_wall_s = 15.5

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f = if Float.is_nan f then "null" else Printf.sprintf "%.6g" f

let write_json path ~jobs ~seed ~part1 ~part1_wall ~bechamel ~total =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  let n1 = List.length part1 and n2 = List.length bechamel in
  out "{\n";
  out "  \"schema\": 4,\n";
  out "  \"jobs\": %d,\n" jobs;
  out "  \"seed\": %d,\n" seed;
  out "  \"part1\": {\n";
  out "    \"wall_s\": %s,\n" (json_float part1_wall);
  out "    \"experiments\": [\n";
  List.iteri
    (fun i (id, _, dt, counters, alloc) ->
      let cjson =
        counters
        |> List.map (fun (name, v) ->
               Printf.sprintf "\"%s\": %d" (json_escape name) v)
        |> String.concat ", "
      in
      out
        "      {\"id\": \"%s\", \"wall_s\": %s, \"minor_words\": %.0f, \
         \"major_words\": %.0f, \"counters\": {%s}}%s\n"
        (json_escape id) (json_float dt)
        alloc.Interweave.Experiments.alloc_minor_words
        alloc.Interweave.Experiments.alloc_major_words cjson
        (if i = n1 - 1 then "" else ","))
    part1;
  out "    ]\n";
  out "  },\n";
  out "  \"bechamel_ns_per_run\": {\n";
  List.iteri
    (fun i (name, ns) ->
      out "    \"%s\": %s%s\n" (json_escape name) (json_float ns)
        (if i = n2 - 1 then "" else ","))
    bechamel;
  out "  },\n";
  out "  \"total_wall_s\": %s,\n" (json_float total);
  out "  \"baseline\": {\"part1_wall_s\": %s, \"total_wall_s\": %s}\n"
    (json_float baseline_part1_wall_s)
    (json_float baseline_total_wall_s);
  out "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Perf-budget gate *)

(* A per-experiment wall-time regression beyond this factor fails the
   run — but only when the absolute slowdown also clears the noise
   floor, so sub-second experiments can't trip the gate on scheduler
   jitter.  Re-baselining is deliberate: run `make bench-json` and
   commit the refreshed BENCH_*.json (see README). *)
let regression_factor = 1.15

let noise_floor_s = 0.3

let baseline_walls path =
  let open Iw_obs.Json in
  let doc = parse (read_file path) in
  match Option.bind (member "part1" doc) (member "experiments") with
  | Some (Arr es) ->
      List.filter_map
        (fun e ->
          match (member "id" e, member "wall_s" e) with
          | Some (Str id), Some (Num w) -> Some (id, w)
          | _ -> None)
        es
  | _ ->
      Printf.eprintf "bench: %s has no part1.experiments list\n" path;
      exit 2

let check_against path part1 =
  let base = baseline_walls path in
  let failures =
    List.filter_map
      (fun (id, _, dt, _, _) ->
        match List.assoc_opt id base with
        | Some old
          when dt > old *. regression_factor && dt -. old > noise_floor_s ->
            Some (id, old, dt)
        | _ -> None)
      part1
  in
  Printf.printf "\nperf budget vs %s (fail: > %.0f%% and > %.1fs slower):\n"
    path
    ((regression_factor -. 1.0) *. 100.0)
    noise_floor_s;
  if failures = [] then
    Printf.printf "  ok: no per-experiment wall-time regression\n"
  else begin
    List.iter
      (fun (id, old, dt) ->
        Printf.printf "  FAIL %-4s %.2fs -> %.2fs (%+.0f%%)\n" id old dt
          (100.0 *. ((dt /. old) -. 1.0)))
      failures;
    Printf.printf
      "  intentional? re-baseline with `make bench-json` and commit the \
       result\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)

let () =
  let jobs = ref (Interweave.Driver.default_jobs ()) in
  let seed = ref 0 in
  let json_path = ref None in
  let against = ref None in
  let rec parse = function
    | [] -> ()
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j > 0 -> jobs := j
        | _ ->
            prerr_endline "bench: --jobs expects a positive integer";
            exit 2);
        parse rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some s -> seed := s
        | None ->
            prerr_endline "bench: --seed expects an integer";
            exit 2);
        parse rest
    | "--serial" :: rest ->
        jobs := 1;
        parse rest
    | "--json" :: path :: rest ->
        (* Fail fast on an unwritable path rather than after the
           whole run. *)
        (match open_out path with
        | oc -> close_out oc
        | exception Sys_error msg ->
            Printf.eprintf "bench: cannot write %s (%s)\n" path msg;
            exit 2);
        json_path := Some path;
        parse rest
    | "--against" :: path :: rest ->
        if not (Sys.file_exists path) then begin
          Printf.eprintf "bench: --against baseline %s does not exist\n" path;
          exit 2
        end;
        against := Some path;
        parse rest
    | [ ("--jobs" | "--json" | "--seed" | "--against") ] ->
        prerr_endline
          "bench: --jobs, --seed, --json and --against need an argument";
        exit 2
    | arg :: _ ->
        Printf.eprintf
          "bench: unknown argument %s (flags: --jobs N, --seed N, --serial, \
           --json PATH, --against BENCH.json)\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* Before any domain spawns: every Rng.create in every experiment
     picks the offset up, so the whole reproduction re-seeds at once. *)
  Iw_engine.Rng.set_global_seed !seed;
  let t0 = Unix.gettimeofday () in
  let part1 = run_reproduction ~jobs:!jobs () in
  let part1_wall = Unix.gettimeofday () -. t0 in
  let bechamel = run_bechamel () in
  let total = Unix.gettimeofday () -. t0 in
  Printf.printf "\ntotal wall time: %.1fs\n" total;
  Option.iter
    (fun path ->
      write_json path ~jobs:!jobs ~seed:!seed ~part1 ~part1_wall ~bechamel
        ~total;
      Printf.printf "wrote %s\n" path)
    !json_path;
  Option.iter (fun path -> check_against path part1) !against
