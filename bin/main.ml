(* interweave: run the paper's experiments from the command line. *)

open Cmdliner

let list_cmd =
  let run () =
    List.iter
      (fun (e : Interweave.Experiments.experiment) ->
        Printf.printf "%-4s %s\n     paper: %s\n" e.id e.title e.paper_claim)
      (Interweave.Experiments.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List every reproducible experiment")
    Term.(const run $ const ())

let jobs_arg =
  Arg.(
    value
    & opt int (Interweave.Driver.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run experiments on up to $(docv) domains (outputs still print in \
           registry order); 1 means serial.")

let run_cmd =
  let ids =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E12, A1..A4) or 'all'")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Emit Markdown tables")
  in
  let run ids markdown jobs =
    let targets =
      if List.mem "all" ids then Interweave.Experiments.all ()
      else
        List.map
          (fun id ->
            try Interweave.Experiments.find id
            with Not_found ->
              Printf.eprintf "unknown experiment %s (try 'interweave list')\n" id;
              exit 1)
          ids
    in
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) ->
        if markdown then
          Printf.sprintf "## [%s] %s\n\nPaper: %s\n\n%s" e.id e.title
            e.paper_claim
            (String.concat ""
               (List.map
                  (fun t -> Interweave.Table.to_markdown t ^ "\n")
                  (e.tables ())))
        else Interweave.Experiments.run_to_string e)
      targets
    |> List.iter print_string
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables")
    Term.(const run $ ids $ markdown $ jobs_arg)

let csv_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Output directory for <id>_<n>.csv files")
  in
  let ids =
    Arg.(
      value
      & opt_all string []
      & info [ "only" ] ~docv:"ID" ~doc:"Restrict to these experiment ids")
  in
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let run dir ids jobs =
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let targets =
      match ids with
      | [] -> Interweave.Experiments.all ()
      | ids -> List.map Interweave.Experiments.find ids
    in
    (* Compute in parallel; write and report serially, in registry
       order, so the output and file contents match a serial run. *)
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) -> (e.id, e.tables ()))
      targets
    |> List.iter (fun (id, tables) ->
           List.iteri
             (fun i (t : Interweave.Table.t) ->
               let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" id i) in
               let oc = open_out path in
               output_string oc
                 (String.concat "," (List.map escape t.headers) ^ "\n");
               List.iter
                 (fun row ->
                   output_string oc
                     (String.concat "," (List.map escape row) ^ "\n"))
                 t.rows;
               close_out oc;
               Printf.printf "wrote %s (%s)\n" path t.title)
             tables)
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Run experiments and write their tables as CSV")
    Term.(const run $ dir $ ids $ jobs_arg)

let stacks_cmd =
  let run () =
    let plat = Iw_hw.Platform.knl in
    List.iter
      (fun stack ->
        Printf.printf "%s\n  event delivery: %d cycles, timer mechanism: %d cycles\n"
          (Interweave.Stack.describe stack)
          (Interweave.Stack.event_delivery_cycles stack)
          (Interweave.Stack.timer_mechanism_cost stack))
      [ Interweave.Stack.commodity plat; Interweave.Stack.interwoven plat ]
  in
  Cmd.v
    (Cmd.info "stacks" ~doc:"Describe the commodity and interwoven stacks")
    Term.(const run $ const ())

let () =
  let doc =
    "Reproduction of 'The Case for an Interwoven Parallel Hardware/Software \
     Stack' (SCWS/ROSS 2021)"
  in
  let info = Cmd.info "interweave" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ list_cmd; run_cmd; csv_cmd; stacks_cmd ]))
