(* interweave: run the paper's experiments from the command line. *)

open Cmdliner

(* Every failing check-style path exits nonzero through this one
   helper, so the exit-code contract is in one place instead of
   scattered per-branch [exit] calls. *)
let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let find_experiment id =
  try Interweave.Experiments.find id
  with Not_found -> die "unknown experiment %s (try 'interweave list')" id

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Global RNG seed offset folded into every stream the run creates; \
           0 (the default) keeps the built-in seeds.")

let list_cmd =
  let run () =
    List.iter
      (fun (e : Interweave.Experiments.experiment) ->
        Printf.printf "%-4s %s\n     paper: %s\n" e.id e.title e.paper_claim)
      (Interweave.Experiments.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List every reproducible experiment")
    Term.(const run $ const ())

let jobs_arg =
  Arg.(
    value
    & opt int (Interweave.Driver.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run experiments on up to $(docv) domains (outputs still print in \
           registry order); 1 means serial.")

let run_cmd =
  let ids =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"ID"
          ~doc:"Experiment ids (E1..E16, A1..A5, R1..R4, S1..S4) or 'all'")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Emit Markdown tables")
  in
  let sample_us =
    Arg.(
      value & opt float 0.0
      & info [ "sample-us" ] ~docv:"US"
          ~doc:
            "Sample windowed telemetry every $(docv) of virtual time in \
             every service/fleet run (tables are byte-identical either \
             way; the series ride along for exporters). 0 disables.")
  in
  let run ids markdown jobs seed sample_us =
    Iw_engine.Rng.set_global_seed seed;
    Iw_obs.Series.set_period_us sample_us;
    let targets =
      if List.mem "all" ids then Interweave.Experiments.all ()
      else List.map find_experiment ids
    in
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) ->
        if markdown then
          Printf.sprintf "## [%s] %s\n\nPaper: %s\n\n%s" e.id e.title
            e.paper_claim
            (String.concat ""
               (List.map
                  (fun t -> Interweave.Table.to_markdown t ^ "\n")
                  (e.tables ())))
        else Interweave.Experiments.run_to_string e)
      targets
    |> List.iter print_string
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables")
    Term.(const run $ ids $ markdown $ jobs_arg $ seed_arg $ sample_us)

let csv_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Output directory for <id>_<n>.csv files")
  in
  let ids =
    Arg.(
      value
      & opt_all string []
      & info [ "only" ] ~docv:"ID" ~doc:"Restrict to these experiment ids")
  in
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let run dir ids jobs seed =
    Iw_engine.Rng.set_global_seed seed;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let targets =
      match ids with
      | [] -> Interweave.Experiments.all ()
      | ids -> List.map find_experiment ids
    in
    (* Compute in parallel; write and report serially, in registry
       order, so the output and file contents match a serial run. *)
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) -> (e.id, e.tables ()))
      targets
    |> List.iter (fun (id, tables) ->
           List.iteri
             (fun i (t : Interweave.Table.t) ->
               let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" id i) in
               let oc = open_out path in
               output_string oc
                 (String.concat "," (List.map escape t.headers) ^ "\n");
               List.iter
                 (fun row ->
                   output_string oc
                     (String.concat "," (List.map escape row) ^ "\n"))
                 t.rows;
               close_out oc;
               Printf.printf "wrote %s (%s)\n" path t.title)
             tables)
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Run experiments and write their tables as CSV")
    Term.(const run $ dir $ ids $ jobs_arg $ seed_arg)

let stacks_cmd =
  let run () =
    let plat = Iw_hw.Platform.knl in
    List.iter
      (fun stack ->
        Printf.printf "%s\n  event delivery: %d cycles, timer mechanism: %d cycles\n"
          (Interweave.Stack.describe stack)
          (Interweave.Stack.event_delivery_cycles stack)
          (Interweave.Stack.timer_mechanism_cost stack))
      [ Interweave.Stack.commodity plat; Interweave.Stack.interwoven plat ]
  in
  Cmd.v
    (Cmd.info "stacks" ~doc:"Describe the commodity and interwoven stacks")
    Term.(const run $ const ())

let trace_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id to run under tracing (e.g. E3)")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:
            "Chrome trace-event JSON output path (load it in Perfetto); \
             defaults to $(i,ID).trace.json so traces of different \
             experiments don't clobber each other")
  in
  let capacity =
    Arg.(
      value
      & opt int 262_144
      & info
          [ "capacity"; "ring-capacity" ]
          ~docv:"N"
          ~doc:"Ring-buffer capacity in events; oldest events drop beyond it")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the written JSON and fail if malformed or if the ring \
             dropped events (a truncated ring corrupts the export)")
  in
  let flows =
    Arg.(
      value & flag
      & info [ "flows" ]
          ~doc:
            "Also emit Chrome flow events stitching each request's hops \
             (front tier, machine, worker) into one causal arrow chain; \
             only fleet experiments produce them")
  in
  let sample_us =
    Arg.(
      value & opt float 0.0
      & info [ "sample-us" ] ~docv:"US"
          ~doc:
            "Sample windowed telemetry every $(docv) of virtual time and \
             render the series as Perfetto counter lanes in the trace")
  in
  let run id out capacity check flows sample_us =
    let e = find_experiment id in
    let out =
      match out with
      | Some p -> p
      | None -> Printf.sprintf "%s.trace.json" id
    in
    let tr = Iw_obs.Trace.ring ~capacity () in
    Iw_obs.Trace.set_flows tr flows;
    Iw_obs.Series.set_period_us sample_us;
    Iw_obs.Series.clear_published ();
    let obs = Iw_obs.Obs.create ~trace:tr () in
    (* Run serially under an ambient traced context: every kernel,
       CPU, and runtime the experiment creates inherits the ring. *)
    let text =
      Iw_obs.Obs.with_ambient obs (fun () ->
          Interweave.Experiments.run_to_string e)
    in
    print_string text;
    let series = Iw_obs.Series.published () in
    Iw_obs.Series.set_period_us 0.0;
    Iw_obs.Chrome.write_file ~series tr out;
    let dropped = Iw_obs.Trace.dropped tr in
    Printf.printf "wrote %s: %d events (%d dropped, %d series)\n" out
      (Iw_obs.Trace.length tr) dropped (List.length series);
    if check then begin
      (match Iw_obs.Chrome.validate_file out with
      | Ok n -> Printf.printf "validated: %d events ok\n" n
      | Error msg -> die "invalid trace: %s" msg);
      if flows then begin
        match Iw_obs.Chrome.cross_process_flows_file out with
        | Ok 0 -> die "no flow crosses two processes (machines) in %s" out
        | Ok n -> Printf.printf "flows: %d cross-process request(s)\n" n
        | Error msg -> die "invalid trace: %s" msg
      end;
      if dropped > 0 then
        die
          "trace ring dropped %d events; rerun with --ring-capacity %d or more"
          dropped
          (Iw_obs.Trace.emitted tr)
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one experiment with the trace bus on and export a \
          Perfetto-loadable Chrome trace-event JSON file")
    Term.(const run $ id $ out $ capacity $ check $ flows $ sample_us)

let profile_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id to profile (e.g. E1)")
  in
  let folded_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"PATH"
          ~doc:"Write folded-stack lines for flamegraph.pl / speedscope")
  in
  let speedscope_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedscope" ] ~docv:"PATH"
          ~doc:"Write a speedscope JSON profile (one track per CPU)")
  in
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the printed profile table")
  in
  let capacity =
    Arg.(
      value
      & opt int 1_048_576
      & info [ "ring-capacity" ] ~docv:"N"
          ~doc:"Trace ring capacity; raise it if events are dropped")
  in
  let diff_id =
    Arg.(
      value
      & opt (some string) None
      & info [ "diff" ] ~docv:"ID2"
          ~doc:
            "Profile a second experiment too and report the frames whose \
             self-cycle share moved between the runs instead of a single \
             profile")
  in
  let threshold =
    Arg.(
      value & opt float 1.0
      & info [ "threshold" ] ~docv:"PCT"
          ~doc:"Minimum share movement (percentage points) a frame must show \
                to appear in the --diff report")
  in
  let profile_of id capacity =
    let e = find_experiment id in
    let tr = Iw_obs.Trace.ring ~capacity () in
    let obs = Iw_obs.Obs.create ~trace:tr () in
    ignore
      (Iw_obs.Obs.with_ambient obs (fun () ->
           Interweave.Experiments.run_to_string e));
    Iw_obs.Profile.of_trace tr
  in
  let run id folded_out speedscope_out top capacity diff_id threshold =
    let p = profile_of id capacity in
    (match diff_id with
    | Some id2 ->
        let p2 = profile_of id2 capacity in
        print_string
          (Iw_obs.Profile.render_diff ~threshold ~a_name:id ~b_name:id2 p p2)
    | None -> print_string (Iw_obs.Profile.render_top ~top p));
    if p.Iw_obs.Profile.dropped > 0 then
      Printf.eprintf
        "warning: ring dropped %d events — the profile is truncated; rerun \
         with --ring-capacity %d or more\n"
        p.Iw_obs.Profile.dropped
        (p.Iw_obs.Profile.span_count + p.Iw_obs.Profile.instant_count
        + p.Iw_obs.Profile.dropped);
    (match folded_out with
    | None -> ()
    | Some path -> (
        Iw_obs.Folded.write_file p path;
        match
          Iw_obs.Folded.check_file path ~total:(Iw_obs.Profile.total_cycles p)
        with
        | Ok n -> Printf.printf "wrote %s: %d stacks (self sum = total)\n" path n
        | Error msg -> die "folded check failed for %s: %s" path msg));
    match speedscope_out with
    | None -> ()
    | Some path -> (
        Iw_obs.Speedscope.write_file ~name:(id ^ " profile") p path;
        match Iw_obs.Speedscope.validate_file path with
        | Ok n -> Printf.printf "wrote %s: %d events ok\n" path n
        | Error msg -> die "invalid speedscope file %s: %s" path msg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one experiment under tracing, reconstruct per-CPU span stacks, \
          and print a self/total cycle profile (optionally exporting \
          flamegraph.pl folded stacks and speedscope JSON); with --diff, \
          compare two experiments' self-cycle shares frame by frame")
    Term.(
      const run $ id $ folded_out $ speedscope_out $ top $ capacity $ diff_id
      $ threshold)

let golden_cmd =
  let ids =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (default: every experiment)")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update" ] ~doc:"Regenerate snapshots instead of checking")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Check counters against snapshots (the default)")
  in
  let dir =
    Arg.(
      value & opt string "golden"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Snapshot directory")
  in
  let spans =
    Arg.(
      value & flag
      & info [ "spans" ]
          ~doc:
            "Also gate coarse trace shape: run each experiment under a \
             counting trace sink and compare per-category span tallies \
             against $(b,ID.spans.txt) snapshots, so a silently-dead probe \
             is caught even when counters still balance")
  in
  let run ids update check dir spans jobs =
    if update && check then die "golden: pass at most one of --check / --update";
    let targets =
      match ids with
      | [] -> Interweave.Experiments.all ()
      | ids -> List.map find_experiment ids
    in
    let path_of (e : Interweave.Experiments.experiment) =
      Filename.concat dir (e.id ^ ".txt")
    in
    let spans_path_of (e : Interweave.Experiments.experiment) =
      Filename.concat dir (e.id ^ ".spans.txt")
    in
    (* Each worker runs its experiment under its own collecting ambient
       context (ambient state is domain-local), so the parallel fan-out
       cannot mix counters across experiments.  With --spans the run
       additionally feeds a counting trace sink; tracing-on runs are
       byte-identical to tracing-off ones (probes only tally), so one
       run serves both gates. *)
    let results =
      Interweave.Driver.parallel_map ~jobs
        (fun (e : Interweave.Experiments.experiment) ->
          if spans then begin
            let tr = Iw_obs.Trace.counting () in
            let _, counters, _ =
              Interweave.Experiments.run_with_counters ~trace:tr e
            in
            (e, counters, Some (Iw_obs.Trace.shape_counts tr))
          end
          else
            let _, counters, _ = Interweave.Experiments.run_with_counters e in
            (e, counters, None))
        targets
    in
    if update then begin
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter
        (fun ((e : Interweave.Experiments.experiment), counters, shape) ->
          let path = path_of e in
          Iw_obs.Golden.write_file
            ~header:
              [
                Printf.sprintf "golden counters for %s (%s)" e.id e.title;
                "regenerate with: interweave golden --update " ^ e.id;
              ]
            counters path;
          Printf.printf "wrote %s (%d counters)\n" path (List.length counters);
          match shape with
          | None -> ()
          | Some shape ->
              let spath = spans_path_of e in
              Iw_obs.Golden.write_file
                ~header:
                  [
                    Printf.sprintf "golden span shape for %s (cat/name tallies)"
                      e.id;
                    "regenerate with: interweave golden --update --spans "
                    ^ e.id;
                  ]
                shape spath;
              Printf.printf "wrote %s (%d span categories)\n" spath
                (List.length shape))
        results
    end
    else begin
      let failures = ref 0 in
      let gate ~what ~tolerances e path actual =
        match Iw_obs.Golden.read_file path with
        | exception Sys_error _ ->
            incr failures;
            Printf.printf "%-4s MISSING %s (run 'golden --update%s %s')\n"
              e.Interweave.Experiments.id path
              (if what = "spans" then " --spans" else "")
              e.id
        | exception Invalid_argument msg ->
            incr failures;
            Printf.printf "%-4s UNREADABLE %s: %s\n" e.id path msg
        | expected -> (
            match Iw_obs.Golden.compare_counters ~tolerances ~expected actual with
            | [] ->
                Printf.printf "%-4s ok (%d %s)\n" e.id (List.length expected)
                  what
            | drifts ->
                incr failures;
                Printf.printf "%-4s DRIFT (%s)\n" e.id what;
                List.iter
                  (fun d ->
                    Printf.printf "     %s\n" (Iw_obs.Golden.render_drift d))
                  drifts)
      in
      List.iter
        (fun ((e : Interweave.Experiments.experiment), counters, shape) ->
          gate ~what:"counters" ~tolerances:Iw_obs.Golden.default_tolerances e
            (path_of e) counters;
          match shape with
          | None -> ()
          | Some shape ->
              gate ~what:"spans" ~tolerances:Iw_obs.Golden.shape_tolerances e
                (spans_path_of e) shape)
        results;
      if !failures > 0 then die "golden: %d gate(s) drifted" !failures
    end
  in
  Cmd.v
    (Cmd.info "golden"
       ~doc:
         "Re-run experiments and compare their machine-wide counter totals \
          (and with --spans, coarse trace shape) against committed golden \
          snapshots (or --update to regenerate); drift beyond per-counter \
          tolerance fails the command")
    Term.(const run $ ids $ update $ check $ dir $ spans $ jobs_arg)

let sweep_cmd =
  let field =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FIELD"
          ~doc:
            "Cost-model field to sweep (default tick_update), or \
             $(i,FIELD1,FIELD2) for a 2-D grid")
  in
  let values =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "values" ] ~docv:"V1,V2,..."
          ~doc:"Explicit values; default 0,v/4,v/2,v,2v,4v around the preset")
  in
  let values2 =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "values2" ] ~docv:"V1,V2,..."
          ~doc:"Values for the second field of a 2-D grid (columns)")
  in
  let os =
    Arg.(
      value
      & opt (enum [ ("nk", `Nk); ("linux", `Linux) ]) `Nk
      & info [ "os" ] ~docv:"OS" ~doc:"Personality for the 2-D grid probe")
  in
  let list_fields =
    Arg.(value & flag & info [ "list" ] ~doc:"List sweepable cost fields")
  in
  let run field values values2 os list_fields =
    let module Sweep = Interweave.Machine.Sweep in
    let plat = Iw_hw.Platform.small in
    let resolve fname =
      match Sweep.find fname with
      | Some fd -> fd
      | None -> die "unknown cost field %s (try 'sweep --list')" fname
    in
    if list_fields then
      List.iter
        (fun (fd : Sweep.field) ->
          Printf.printf "%-28s %s (default %d)\n" fd.f_name fd.f_doc
            (fd.get Iw_hw.Platform.small.Iw_hw.Platform.costs))
        Sweep.fields
    else
      let fname = Option.value field ~default:"tick_update" in
      match String.split_on_char ',' fname with
      | [ f1; f2 ] ->
          let fd1 = resolve f1 and fd2 = resolve f2 in
          let vs1 =
            match values with
            | Some vs -> vs
            | None -> Sweep.default_values plat fd1
          in
          let vs2 =
            match values2 with
            | Some vs -> vs
            | None -> Sweep.default_values plat fd2
          in
          print_string
            (Interweave.Table.render (Sweep.grid ~plat ~os fd1 fd2 vs1 vs2))
      | [ _ ] ->
          let fd = resolve fname in
          let values =
            match values with
            | Some vs -> vs
            | None -> Sweep.default_values plat fd
          in
          print_string (Interweave.Table.render (Sweep.sensitivity fd values))
      | _ -> die "sweep: give FIELD or FIELD1,FIELD2"
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Vary one hoisted cost-model field across a range and print a \
          sensitivity table for the pinned probe workload, or a 2-D \
          FIELD1,FIELD2 grid of elapsed cycles")
    Term.(const run $ field $ values $ values2 $ os $ list_fields)

let faults_cmd =
  let id =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id to run under fault injection (e.g. E3, R1)")
  in
  let list_kinds =
    Arg.(
      value & flag
      & info [ "list-kinds" ]
          ~doc:
            "Print every fault kind the plan can arm, one per line, and exit \
             (the source of truth for --kinds)")
  in
  let rate =
    Arg.(
      value & opt float 1e-3
      & info [ "rate" ] ~docv:"P"
          ~doc:"Per-opportunity fault probability in [0,1]")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan RNG seed")
  in
  let kinds =
    Arg.(
      value
      & opt (some string) None
      & info [ "kinds" ] ~docv:"K1,K2,..."
          ~doc:
            "Comma-separated fault kinds to arm (e.g. ipi-drop,timer-late); \
             default: all kinds")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Fail unless the run completed and, at a nonzero rate, at least \
             one fault was actually injected (guards the injection wiring)")
  in
  let rates =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates" ] ~docv:"P1,P2,..."
          ~doc:
            "Sweep a comma-separated list of fault rates instead of one \
             --rate; reports one row of fault/recovery counters per rate")
  in
  let csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH"
          ~doc:
            "Write the rate sweep as CSV to $(docv) (implies a sweep; \
             without --rates a default rate range is used)")
  in
  let run id rate seed kinds check rates csv list_kinds =
    if list_kinds then begin
      List.iter
        (fun k -> print_endline (Iw_faults.Plan.kind_name k))
        Iw_faults.Plan.all_kinds;
      exit 0
    end;
    let id =
      match id with
      | Some id -> id
      | None -> die "faults: experiment ID required (or use --list-kinds)"
    in
    let e = find_experiment id in
    let kinds =
      match kinds with
      | None -> Iw_faults.Plan.all_kinds
      | Some s ->
          String.split_on_char ',' s
          |> List.map (fun k ->
                 let k = String.trim k in
                 match Iw_faults.Plan.kind_of_string k with
                 | Some k -> k
                 | None ->
                     die "unknown fault kind %s (known: %s)" k
                       (String.concat ", "
                          (List.map Iw_faults.Plan.kind_name
                             Iw_faults.Plan.all_kinds)))
    in
    if rate < 0.0 || rate > 1.0 then die "faults: --rate must be in [0,1]";
    let sweep_rates =
      match rates with
      | Some s ->
          Some
            (String.split_on_char ',' s
            |> List.map (fun r ->
                   let r = String.trim r in
                   match float_of_string_opt r with
                   | Some f when f >= 0.0 && f <= 1.0 -> f
                   | _ -> die "faults: bad rate %s in --rates (need [0,1])" r))
      | None -> (
          match csv with
          | Some _ -> Some [ 0.0; 1e-4; 1e-3; 1e-2; 5e-2 ]
          | None -> None)
    in
    match sweep_rates with
    | Some sweep_rates ->
        (* One row of recovery counters per rate; the run must survive
           every rate, which is the cross-layer recovery claim. *)
        let counter_cols =
          [
            ("injected", Iw_obs.Counter.Fault_injected);
            ("ipi_retry", Iw_obs.Counter.Ipi_retry);
            ("watchdog_fire", Iw_obs.Counter.Watchdog_fire);
            ("virtine_relaunch", Iw_obs.Counter.Virtine_relaunch);
            ("pool_evict", Iw_obs.Counter.Pool_evict);
            ("move_rollback", Iw_obs.Counter.Move_rollback);
            ("dir_ack_retry", Iw_obs.Counter.Dir_ack_retry);
            ("dir_stale_refetch", Iw_obs.Counter.Dir_stale_refetch);
            ("barrier_recover", Iw_obs.Counter.Barrier_recover);
            ("peer_steal", Iw_obs.Counter.Peer_steal);
            ("hedge_sent", Iw_obs.Counter.Hedge_sent);
            ("admission_shed", Iw_obs.Counter.Admission_shed);
            ("corrupt_retry", Iw_obs.Counter.Corrupt_retry);
            ("nic_drop", Iw_obs.Counter.Nic_rx_drops);
            ("nic_irq_recover", Iw_obs.Counter.Nic_irq_recover);
          ]
        in
        let rows =
          List.map
            (fun r ->
              let plan = Iw_faults.Plan.create ~rate:r ~seed ~kinds () in
              let obs = Iw_obs.Obs.create ~collect:true () in
              let out =
                Iw_obs.Obs.with_ambient obs (fun () ->
                    Iw_faults.Plan.with_ambient plan (fun () ->
                        try Ok (Interweave.Experiments.run_to_string e)
                        with Failure msg -> Error msg))
              in
              (match out with
              | Ok _ -> ()
              | Error msg ->
                  die "faults: %s run failed under injection at rate %g: %s"
                    e.id r msg);
              let totals = Iw_obs.Obs.total_counters obs in
              (r, List.map (fun (_, c) -> Iw_obs.Counter.get totals c) counter_cols))
            sweep_rates
        in
        let header = "rate" :: List.map fst counter_cols in
        let lines =
          String.concat "," header
          :: List.map
               (fun (r, cs) ->
                 String.concat ","
                   (Printf.sprintf "%g" r :: List.map string_of_int cs))
               rows
        in
        (match csv with
        | Some path ->
            let oc = open_out path in
            List.iter (fun l -> output_string oc (l ^ "\n")) lines;
            close_out oc;
            Printf.printf "wrote %s: %d rates swept over %s\n" path
              (List.length sweep_rates) e.id
        | None -> List.iter print_endline lines);
        if check then begin
          let nonzero = List.filter (fun (r, _) -> r > 0.0) rows in
          if
            nonzero <> []
            && List.for_all (fun (_, cs) -> List.hd cs = 0) nonzero
          then
            die
              "faults --check: no faults injected at any nonzero rate \
               (injection points not reached?)"
        end
    | None ->
    let plan = Iw_faults.Plan.create ~rate ~seed ~kinds () in
    let obs = Iw_obs.Obs.create ~collect:true () in
    let out =
      Iw_obs.Obs.with_ambient obs (fun () ->
          Iw_faults.Plan.with_ambient plan (fun () ->
              try Ok (Interweave.Experiments.run_to_string e)
              with Failure msg -> Error msg))
    in
    (match out with
    | Ok text -> print_string text
    | Error msg -> die "faults: %s run failed under injection: %s" e.id msg);
    let totals = Iw_obs.Obs.total_counters obs in
    let g id = Iw_obs.Counter.get totals id in
    Printf.printf
      "fault plan: rate %g, seed %d, kinds %s\n\
      \  injected %d | ipi-retries %d | watchdog %d | relaunches %d | \
       pool-evicts %d | rollbacks %d\n\
      \  dir-ack-retries %d | dir-stale-refetches %d | barrier-recoveries %d\n\
      \  peer-steals %d | hedges %d | admission-sheds %d | corrupt-retries %d\n\
      \  nic-drops %d | nic-irq-recoveries %d\n"
      rate seed
      (String.concat "," (List.map Iw_faults.Plan.kind_name kinds))
      (g Iw_obs.Counter.Fault_injected)
      (g Iw_obs.Counter.Ipi_retry)
      (g Iw_obs.Counter.Watchdog_fire)
      (g Iw_obs.Counter.Virtine_relaunch)
      (g Iw_obs.Counter.Pool_evict)
      (g Iw_obs.Counter.Move_rollback)
      (g Iw_obs.Counter.Dir_ack_retry)
      (g Iw_obs.Counter.Dir_stale_refetch)
      (g Iw_obs.Counter.Barrier_recover)
      (g Iw_obs.Counter.Peer_steal)
      (g Iw_obs.Counter.Hedge_sent)
      (g Iw_obs.Counter.Admission_shed)
      (g Iw_obs.Counter.Corrupt_retry)
      (g Iw_obs.Counter.Nic_rx_drops)
      (g Iw_obs.Counter.Nic_irq_recover);
    if check && rate > 0.0 && g Iw_obs.Counter.Fault_injected = 0 then
      die
        "faults --check: no faults injected at rate %g (injection points not \
         reached?)"
        rate
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one experiment under an ambient deterministic fault plan \
          (dropped IPIs, dead timers, dark cores, ...) and report the \
          fault/recovery counters; the R experiments additionally scope \
          their own per-row plans.  --rates/--csv sweep a rate range into \
          one counter row per rate")
    Term.(
      const run $ id $ rate $ seed $ kinds $ check $ rates $ csv $ list_kinds)

let serve_cmd =
  let os_a =
    Arg.(
      value & opt string "nk"
      & info [ "os" ] ~docv:"OS" ~doc:"OS personality: nk or linux")
  in
  let backend_a =
    Arg.(
      value & opt string "fiber"
      & info [ "backend" ] ~docv:"B"
          ~doc:"Request execution backend: fiber or virtine")
  in
  let policy_a =
    Arg.(
      value & opt string "po2"
      & info [ "policy" ] ~docv:"P"
          ~doc:"Dispatch policy: rr, random, jsq, po2 or wjsq")
  in
  let order_a =
    Arg.(
      value & opt string "fifo"
      & info [ "order" ] ~docv:"O" ~doc:"Queue order: fifo or priority")
  in
  let workers_a =
    Arg.(
      value & opt int 8
      & info [ "workers" ] ~docv:"N" ~doc:"Worker CPUs (one queue each)")
  in
  let rps_a =
    Arg.(
      value
      & opt_all float [ 20_000.0 ]
      & info [ "rps" ] ~docv:"R"
          ~doc:"Offered load in requests/s; repeat for a sweep (one row each)")
  in
  let duration_a =
    Arg.(
      value & opt float 100.0
      & info [ "duration" ] ~docv:"MS" ~doc:"Run length in milliseconds")
  in
  let work_a =
    Arg.(
      value & opt float 150.0
      & info [ "work-us" ] ~docv:"US" ~doc:"Request body service demand")
  in
  let cap_a =
    Arg.(
      value & opt int 64
      & info [ "cap" ] ~docv:"N" ~doc:"Per-worker queue bound (drop-tail)")
  in
  let pool_a =
    Arg.(
      value & opt int 16
      & info [ "pool" ] ~docv:"N" ~doc:"Virtine warm-pool size (virtine backend)")
  in
  let hi_frac_a =
    Arg.(
      value & opt float 0.0
      & info [ "hi-frac" ] ~docv:"F"
          ~doc:"Fraction of requests marked high priority")
  in
  let bursty_a =
    Arg.(
      value & flag
      & info [ "bursty" ]
          ~doc:
            "MMPP on/off arrivals (phases of 1.8x / 0.2x the given rate, 5 ms \
             mean dwell) instead of Poisson")
  in
  let closed_a =
    Arg.(
      value & opt int 0
      & info [ "closed" ] ~docv:"N"
          ~doc:"Closed loop with $(docv) clients instead of open-loop arrivals")
  in
  let think_a =
    Arg.(
      value & opt float 500.0
      & info [ "think-us" ] ~docv:"US" ~doc:"Closed-loop client think time")
  in
  let csv_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"PATH" ~doc:"Also write the rows as CSV")
  in
  let alloc_budget_a =
    Arg.(
      value
      & opt (some float) None
      & info [ "alloc-budget" ] ~docv:"W"
          ~doc:
            "Print the run-phase allocation profile and fail if any row \
             exceeds $(docv) minor-heap words per completed request")
  in
  let seed_a =
    Arg.(
      value & opt int 42
      & info [ "plane-seed" ] ~docv:"N"
          ~doc:"Service-plane seed (arrivals, dispatch, kernel boot)")
  in
  let machines_a =
    Arg.(
      value & opt int 0
      & info [ "machines" ] ~docv:"N"
          ~doc:
            "Serve from a fleet of $(docv) identical knl-like machines \
             behind a balancing front tier over a modeled network \
             (0 = the single-machine plane)")
  in
  let hetero_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "hetero" ] ~docv:"SPEC"
          ~doc:
            "Heterogeneous fleet spec: COUNTxKIND[:WORKERS] joined by '+', \
             e.g. 2xknl:4+2xsrv:2 (kinds: knl, srv); implies fleet mode")
  in
  let net_lat_a =
    Arg.(
      value & opt float 15.0
      & info [ "net-lat" ] ~docv:"US"
          ~doc:"Fleet link one-way latency (also the sync window)")
  in
  let net_bw_a =
    Arg.(
      value & opt float 10.0
      & info [ "net-bw" ] ~docv:"GBPS" ~doc:"Fleet link bandwidth per direction")
  in
  let gossip_us_a =
    Arg.(
      value & opt float 50.0
      & info [ "gossip-us" ] ~docv:"US"
          ~doc:"Queue-depth gossip period for the fleet balancer (0 disables)")
  in
  let fleet_serial_a =
    Arg.(
      value & flag
      & info [ "fleet-serial" ]
          ~doc:
            "Advance fleet machines on one domain instead of one domain each \
             (byte-identical results; the smoke test compares both)")
  in
  let sample_us_a =
    Arg.(
      value & opt float 0.0
      & info [ "sample-us" ] ~docv:"US"
          ~doc:
            "Sample a windowed fleet timeline every $(docv) of virtual time \
             at the conservative-window barrier (identical for serial and \
             parallel fleets); 0 disables")
  in
  let series_csv_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "series-csv" ] ~docv:"PATH"
          ~doc:
            "Write the sampled fleet timeline as CSV (needs --sample-us and \
             a single --rps)")
  in
  let slo_us_a =
    Arg.(
      value & opt float 0.0
      & info [ "slo-us" ] ~docv:"US"
          ~doc:
            "End-to-end latency SLO: responses within $(docv) count as good, \
             slower ones and exhausted retries as bad; adds slo_good, \
             slo_total and burn_x1000 columns. 0 disables")
  in
  let slo_target_a =
    Arg.(
      value & opt float 0.999
      & info [ "slo-target" ] ~docv:"F"
          ~doc:
            "Good-fraction target the burn rate is measured against \
             (burn_x1000 = 1000 means exactly exhausting the error budget)")
  in
  let faults_a =
    Arg.(
      value & opt float 0.0
      & info [ "faults" ] ~docv:"RATE"
          ~doc:
            "Arm a service-level fault plan at $(docv): worker hangs, \
             response corruption, machine brownouts and link drops \
             (override the kinds with --fault-kinds); 0 disables")
  in
  let fault_kinds_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-kinds" ] ~docv:"K,K"
          ~doc:"Comma-separated fault kinds for --faults")
  in
  let hedge_frac_a =
    Arg.(
      value & opt float 0.0
      & info [ "hedge-frac" ] ~docv:"F"
          ~doc:
            "Fleet: hedge still-outstanding requests onto a second machine \
             after $(docv) of --deadline-us; first response wins. 0 disables")
  in
  let hedge_budget_a =
    Arg.(
      value & opt float 0.1
      & info [ "hedge-budget" ] ~docv:"F"
          ~doc:"Fleet: global hedge budget as a fraction of arrivals")
  in
  let admit_a =
    Arg.(
      value & flag
      & info [ "admit" ]
          ~doc:
            "Fleet: SLO-aware admission control - shed arrivals whose \
             predicted wait (gossiped depth x EWMA sojourn) already exceeds \
             --deadline-us (sheds count against the SLO)")
  in
  let deadline_us_a =
    Arg.(
      value & opt float 0.0
      & info [ "deadline-us" ] ~docv:"US"
          ~doc:"Fleet: per-request deadline driving --hedge-frac and --admit")
  in
  let wjsq_aware_a =
    Arg.(
      value & flag
      & info [ "wjsq-aware" ]
          ~doc:
            "Fleet: weight wjsq by each machine's observed completion rate \
             (a leaky per-window integrator) instead of nominal capacity - \
             the brownout-aware balancer")
  in
  let tail_a =
    Arg.(
      value
      & opt (some string) None
      & info [ "tail" ] ~docv:"SPEC"
          ~doc:
            "Heavy-tailed per-request service demand: pareto:ALPHA:MIN:MAX \
             or lognorm:MEDIAN:SIGMA (microseconds); default every request \
             costs --work-us")
  in
  let nic_a =
    Arg.(
      value & flag
      & info [ "nic" ]
          ~doc:
            "Fleet: deliver front->machine traffic through each machine's \
             simulated NIC (RX descriptor ring + driver) and responses \
             through its TX ring; adds nic_* columns")
  in
  let itr_a =
    Arg.(
      value & opt float 0.0
      & info [ "itr" ] ~docv:"US"
          ~doc:
            "NIC interrupt-moderation gap in microseconds (minimum spacing \
             between RX interrupts); 0 = unmoderated. Inert without --nic")
  in
  let rx_mode_a =
    Arg.(
      value & opt string "hybrid"
      & info [ "rx-mode" ] ~docv:"M"
          ~doc:
            "NIC receive mode: irq, poll or hybrid (NAPI-style switching). \
             Inert without --nic")
  in
  let run os backend policy order workers rpss duration_ms work_us cap pool
      hi_frac bursty closed think_us csv alloc_budget seed machines hetero
      net_lat net_bw gossip_us fleet_serial sample_us series_csv slo_us
      slo_target faults_rate fault_kinds hedge_frac hedge_budget admit
      deadline_us wjsq_aware tail nic itr_us rx_mode jobs global_seed =
    Iw_engine.Rng.set_global_seed global_seed;
    (* The single-machine plane samples off the ambient period; the
       fleet takes it explicitly through its config. *)
    Iw_obs.Series.set_period_us sample_us;
    let os =
      match Iw_service.Plane.os_of_string os with
      | Some os -> os
      | None -> die "serve: unknown --os %s (nk or linux)" os
    in
    let policy =
      match Iw_service.Dispatch.of_string policy with
      | Some p -> p
      | None -> die "serve: unknown --policy %s (rr, random, jsq, po2, wjsq)" policy
    in
    let order =
      match Iw_service.Squeue.order_of_string order with
      | Some o -> o
      | None -> die "serve: unknown --order %s (fifo or priority)" order
    in
    let backend =
      match backend with
      | "fiber" -> Iw_service.Plane.Fiber_exec
      | "virtine" ->
          Iw_service.Plane.Virtine_exec
            {
              vconfig =
                {
                  Iw_virtine.Wasp.default with
                  profile = Iw_virtine.Wasp.Bespoke_16;
                  snapshot = true;
                  pooled = true;
                };
              pool;
            }
      | b -> die "serve: unknown --backend %s (fiber or virtine)" b
    in
    let demand =
      match tail with
      | None -> Iw_service.Workload.Dfixed
      | Some s -> (
          let fl tok what =
            match float_of_string_opt tok with
            | Some f -> f
            | None -> die "serve: bad %s %s in --tail" what tok
          in
          match String.split_on_char ':' (String.trim s) with
          | [ "pareto"; a; mn; mx ] ->
              Iw_service.Workload.Dpareto
                {
                  alpha = fl a "alpha";
                  xmin_us = fl mn "min";
                  xmax_us = fl mx "max";
                }
          | [ "lognorm"; med; sg ] ->
              Iw_service.Workload.Dlognorm
                { median_us = fl med "median"; sigma = fl sg "sigma" }
          | _ ->
              die
                "serve: --tail wants pareto:ALPHA:MIN:MAX or \
                 lognorm:MEDIAN:SIGMA")
    in
    (try Iw_service.Workload.validate_demand demand
     with Invalid_argument m -> die "serve: %s" m);
    if faults_rate < 0.0 || faults_rate > 1.0 then
      die "serve: --faults must be in [0,1]";
    if itr_us < 0.0 then die "serve: --itr must be >= 0";
    let rx_mode =
      match Iw_kernel.Nic_driver.mode_of_string rx_mode with
      | Some m -> m
      | None -> die "serve: unknown --rx-mode %s (irq, poll or hybrid)" rx_mode
    in
    (* An explicit --fault-kinds arms the plan even at rate 0: kinds
       with recovery machinery that exists only when armed (the NIC's
       lost-IRQ slack scan) can then be exercised — and shown inert —
       without any injection. *)
    let fault_kinds_given = fault_kinds <> None in
    let fault_kinds =
      match fault_kinds with
      | None ->
          Iw_faults.Plan.
            [ Worker_hang; Req_corrupt; Machine_brownout; Link_drop ]
      | Some s ->
          String.split_on_char ',' s
          |> List.map (fun k ->
                 let k = String.trim k in
                 match Iw_faults.Plan.kind_of_string k with
                 | Some k -> k
                 | None -> die "serve: unknown fault kind %s" k)
    in
    let with_plan f =
      if faults_rate > 0.0 || fault_kinds_given then
        Iw_faults.Plan.with_ambient
          (Iw_faults.Plan.create ~rate:faults_rate ~seed ~kinds:fault_kinds ())
          f
      else f ()
    in
    let duration_us = duration_ms *. 1000.0 in
    let workload_of rps =
      if closed > 0 then
        Iw_service.Workload.Closed { clients = closed; think_us; duration_us }
      else if bursty then
        Iw_service.Workload.Bursty
          {
            rps_on = rps *. 1.8;
            rps_off = rps *. 0.2;
            mean_on_us = 5_000.0;
            mean_off_us = 5_000.0;
            duration_us;
          }
      else Iw_service.Workload.Poisson { rps; duration_us }
    in
    (* A closed loop has no offered rate to sweep: one row. *)
    let rpss = if closed > 0 then [ List.hd rpss ] else rpss in
    let fleet_specs =
      match hetero with
      | Some s ->
          let parse_tok tok =
            let count, rest =
              match String.index_opt tok 'x' with
              | Some i ->
                  ( (match int_of_string_opt (String.sub tok 0 i) with
                    | Some c when c > 0 -> c
                    | _ -> die "serve: bad count in --hetero token %s" tok),
                    String.sub tok (i + 1) (String.length tok - i - 1) )
              | None -> die "serve: --hetero token %s is not COUNTxKIND" tok
            in
            let kind, wk =
              match String.index_opt rest ':' with
              | Some i ->
                  ( String.sub rest 0 i,
                    match
                      int_of_string_opt
                        (String.sub rest (i + 1) (String.length rest - i - 1))
                    with
                    | Some w when w > 0 -> Some w
                    | _ -> die "serve: bad worker count in --hetero token %s" tok
                  )
              | None -> (rest, None)
            in
            let spec =
              match kind with
              | "knl" -> Iw_service.Fleet.knl_spec ?workers:wk ()
              | "srv" -> Iw_service.Fleet.server_spec ?workers:wk ()
              | k -> die "serve: unknown machine kind %s in --hetero (knl, srv)" k
            in
            List.init count (fun _ -> spec)
          in
          Some
            (List.concat_map parse_tok
               (String.split_on_char '+' (String.trim s)))
      | None ->
          if machines > 0 then
            Some (List.init machines (fun _ -> Iw_service.Fleet.knl_spec ~workers ()))
          else None
    in
    match fleet_specs with
    | Some specs ->
        if closed > 0 then
          die "serve: --closed is a single-machine mode (fleets are open-loop)";
        if alloc_budget <> None then
          die "serve: --alloc-budget applies to the single-machine plane only";
        let fm = Array.of_list specs in
        let net =
          { Iw_service.Net.default with nc_lat_us = net_lat; nc_gbps = net_bw }
        in
        (* Fleet runs own their parallelism (one domain per machine),
           so the rate sweep itself stays sequential. *)
        let reports =
          with_plan (fun () ->
              List.map
                (fun rps ->
                  Iw_service.Fleet.run
                    ?parallel:(if fleet_serial then Some false else None)
                    {
                      (Iw_service.Fleet.default ()) with
                      Iw_service.Fleet.fc_machines = fm;
                      fc_workload = workload_of rps;
                      fc_policy = policy;
                      fc_order = order;
                      fc_queue_cap = cap;
                      fc_backend = backend;
                      fc_work_us = work_us;
                      fc_hi_frac = hi_frac;
                      fc_net = net;
                      fc_gossip_us = gossip_us;
                      fc_sample_us = sample_us;
                      fc_slo_us = slo_us;
                      fc_slo_target = slo_target;
                      fc_hedge_frac = hedge_frac;
                      fc_hedge_budget = hedge_budget;
                      fc_admit = admit;
                      fc_deadline_us = deadline_us;
                      fc_bw_wjsq = wjsq_aware;
                      fc_demand = demand;
                      fc_nic = nic;
                      fc_nic_mode = rx_mode;
                      fc_itr_us = itr_us;
                      fc_seed = seed;
                    })
                rpss)
        in
        (* SLO columns appear only when accounting is on, so default
           runs (and the fleet smoke's par-vs-serial cmp) keep their
           existing shape. *)
        let header =
          [
            "machines"; "policy"; "gossip_us"; "offered_rps"; "arrivals";
            "completed"; "failed"; "retries"; "nacks"; "drops"; "ejects";
            "thru_rps"; "util"; "p50_us"; "p99_us"; "p99.9_us";
          ]
          @ (if slo_us > 0.0 then [ "slo_good"; "slo_total"; "burn_x1000" ]
             else [])
          @ (if faults_rate > 0.0 then [ "steals"; "reexecs"; "brownouts" ]
             else [])
          @ (if hedge_frac > 0.0 then [ "hedges"; "hedge_wins"; "hedge_late" ]
             else [])
          @ (if admit then [ "adm_shed" ] else [])
          @
          (if nic then
             [
               "nic_rx"; "nic_drops"; "nic_irqs"; "nic_polls"; "nic_wasted_kc";
               "nic_switches"; "nic_recovers";
             ]
           else [])
        in
        let cols (r : Iw_service.Fleet.report) =
          let p pct = Iw_service.Fleet.percentile_us r r.fr_total pct in
          [
            string_of_int r.fr_machines;
            r.fr_policy;
            Printf.sprintf "%g" gossip_us;
            Printf.sprintf "%.0f" r.fr_offered_rps;
            string_of_int r.fr_arrivals;
            string_of_int r.fr_completed;
            string_of_int r.fr_failed;
            string_of_int r.fr_retries;
            string_of_int r.fr_nacks;
            string_of_int r.fr_net_drops;
            string_of_int r.fr_ejects;
            Printf.sprintf "%.0f" r.fr_throughput_rps;
            Printf.sprintf "%.2f" r.fr_utilization;
            Printf.sprintf "%.1f" (p 50.0);
            Printf.sprintf "%.1f" (p 99.0);
            Printf.sprintf "%.1f" (p 99.9);
          ]
          @
          if slo_us > 0.0 then
            let burn =
              if r.fr_slo_total > 0 && slo_target < 1.0 then
                int_of_float
                  (float_of_int (r.fr_slo_total - r.fr_slo_good)
                  /. float_of_int r.fr_slo_total
                  /. (1.0 -. slo_target) *. 1000.0)
              else 0
            in
            [
              string_of_int r.fr_slo_good;
              string_of_int r.fr_slo_total;
              string_of_int burn;
            ]
          else []
        in
        let cols r =
          cols r
          @ (if faults_rate > 0.0 then
               [
                 string_of_int r.Iw_service.Fleet.fr_steals;
                 string_of_int r.fr_corrupt_retries;
                 string_of_int r.fr_brownouts;
               ]
             else [])
          @ (if hedge_frac > 0.0 then
               [
                 string_of_int r.Iw_service.Fleet.fr_hedges;
                 string_of_int r.fr_hedge_wins;
                 string_of_int r.fr_hedge_cancels;
               ]
             else [])
          @ (if admit then
               [ string_of_int r.Iw_service.Fleet.fr_admission_shed ]
             else [])
          @
          if nic then
            [
              string_of_int r.Iw_service.Fleet.fr_nic_rx;
              string_of_int r.fr_nic_drops;
              string_of_int r.fr_nic_irqs;
              string_of_int r.fr_nic_polls;
              string_of_int (r.fr_nic_wasted_cycles / 1000);
              string_of_int r.fr_nic_switches;
              string_of_int r.fr_nic_recovers;
            ]
          else []
        in
        let rows = header :: List.map cols reports in
        let widths =
          List.fold_left
            (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
            (List.map (fun _ -> 0) header)
            rows
        in
        List.iter
          (fun row ->
            List.iteri
              (fun i c ->
                Printf.printf "%s%*s" (if i = 0 then "" else "  ")
                  (List.nth widths i) c)
              row;
            print_newline ())
          rows;
        let members (r : Iw_service.Fleet.report) =
          Array.to_list
            (Array.map2 (fun n c -> (n, c)) r.fr_m_names r.fr_m_counters)
        in
        (match reports with
        | [ r ] when csv = None ->
            (* A single fleet row gets the per-machine breakdown. *)
            print_newline ();
            print_string
              (Interweave.Table.render
                 (Interweave.Machine.Fleet.counter_table (members r)))
        | _ -> ());
        (match csv with
        | None -> ()
        | Some path ->
            let oc = open_out path in
            List.iter
              (fun row -> output_string oc (String.concat "," row ^ "\n"))
              rows;
            close_out oc;
            Printf.printf "wrote %s: %d rows\n" path (List.length reports));
        (match series_csv with
        | None -> ()
        | Some path -> (
            match reports with
            | [ { Iw_service.Fleet.fr_series = Some s; _ } ] ->
                Iw_obs.Series.write_csv s path;
                Printf.printf "wrote %s: %d samples (%d dropped)\n" path
                  (Iw_obs.Series.length s)
                  (Iw_obs.Series.dropped s)
            | [ { Iw_service.Fleet.fr_series = None; _ } ] ->
                die "serve: --series-csv needs --sample-us > 0"
            | _ -> die "serve: --series-csv needs a single --rps"))
    | None ->
    if nic then die "serve: --nic needs a fleet (--machines or --hetero)";
    let plat = Iw_hw.Platform.knl in
    (* The ambient fault plan is domain-local, so a faulted sweep runs
       its rows on the coordinator. *)
    let jobs = if faults_rate > 0.0 then 1 else jobs in
    let reports =
      with_plan (fun () ->
          Interweave.Driver.parallel_map ~jobs
            (fun rps ->
              Iw_service.Plane.run
                {
                  os;
                  plat;
                  workers;
                  workload = workload_of rps;
                  policy;
                  order;
                  queue_cap = cap;
                  backend;
                  work_us;
                  hi_frac;
                  demand;
                  seed;
                })
            rpss)
    in
    let cols r =
      let p pct = Iw_service.Plane.percentile_us r r.Iw_service.Plane.rep_total pct in
      [
        r.Iw_service.Plane.rep_os;
        r.rep_policy;
        r.rep_backend;
        Printf.sprintf "%.0f" r.rep_offered_rps;
        string_of_int r.rep_arrivals;
        string_of_int r.rep_shed;
        Printf.sprintf "%.0f" r.rep_throughput_rps;
        Printf.sprintf "%.2f" r.rep_utilization;
        Printf.sprintf "%.1f" (Iw_service.Plane.mean_us r r.rep_queue);
        Printf.sprintf "%.1f" (p 50.0);
        Printf.sprintf "%.1f" (p 90.0);
        Printf.sprintf "%.1f" (p 99.0);
        Printf.sprintf "%.1f" (p 99.9);
        (* coordinated-omission-corrected p99: measured from each
           request's intended (drawn) send time; equals raw p99 when
           the generator never falls behind *)
        Printf.sprintf "%.1f"
          (Iw_service.Plane.percentile_us r r.rep_total_corrected 99.0);
      ]
      @
      if faults_rate > 0.0 then [ string_of_int r.rep_steals ] else []
    in
    let header =
      [
        "os"; "policy"; "backend"; "offered_rps"; "arrivals"; "shed";
        "thru_rps"; "util"; "q_mean_us"; "p50_us"; "p90_us"; "p99_us";
        "p99.9_us"; "p99c_us";
      ]
      @ if faults_rate > 0.0 then [ "steals" ] else []
    in
    let rows = header :: List.map cols reports in
    let widths =
      List.fold_left
        (fun acc row -> List.map2 (fun w c -> max w (String.length c)) acc row)
        (List.map (fun _ -> 0) header)
        rows
    in
    List.iter
      (fun row ->
        List.iteri
          (fun i c ->
            Printf.printf "%s%*s" (if i = 0 then "" else "  ")
              (List.nth widths i) c)
          row;
        print_newline ())
      rows;
    (match csv with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        List.iter
          (fun row -> output_string oc (String.concat "," row ^ "\n"))
          rows;
        close_out oc;
        Printf.printf "wrote %s: %d rows\n" path (List.length reports));
    (match series_csv with
    | None -> ()
    | Some path -> (
        match reports with
        | [ { Iw_service.Plane.rep_series = Some s; _ } ] ->
            Iw_obs.Series.write_csv s path;
            Printf.printf "wrote %s: %d samples (%d dropped)\n" path
              (Iw_obs.Series.length s)
              (Iw_obs.Series.dropped s)
        | [ { Iw_service.Plane.rep_series = None; _ } ] ->
            die "serve: --series-csv needs --sample-us > 0"
        | _ -> die "serve: --series-csv needs a single --rps"));
    match alloc_budget with
    | None -> ()
    | Some budget ->
        (* The alloc-smoke gate: steady-state request processing must
           stay inside the committed minor-words-per-request budget
           (warmup — arena growth, stream setup — is amortized over
           the run, hence a budget slightly above the asymptotic 0). *)
        let worst =
          List.fold_left
            (fun acc r ->
              let open Iw_service.Plane in
              let per_req =
                if r.rep_completed > 0 then
                  r.rep_run_minor_words /. float_of_int r.rep_completed
                else r.rep_run_minor_words
              in
              Printf.printf
                "alloc: %s/%s %.0f rps: %.0f minor words / %d requests = \
                 %.4f w/req (major %.0f, arena cap %d)\n"
                r.rep_backend r.rep_policy r.rep_offered_rps
                r.rep_run_minor_words r.rep_completed per_req
                r.rep_run_major_words r.rep_arena_capacity;
              Float.max acc per_req)
            0.0 reports
        in
        if worst > budget then
          die "serve: allocation budget exceeded: %.4f > %.4f minor words/request"
            worst budget;
        Printf.printf "alloc budget ok: worst %.4f <= %.4f minor words/request\n"
          worst budget
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Drive open- or closed-loop load through the service plane (queues, \
          dispatch policies, fiber/virtine execution) and report throughput \
          and tail latency per offered rate")
    Term.(
      const run $ os_a $ backend_a $ policy_a $ order_a $ workers_a $ rps_a
      $ duration_a $ work_a $ cap_a $ pool_a $ hi_frac_a $ bursty_a $ closed_a
      $ think_a $ csv_a $ alloc_budget_a $ seed_a $ machines_a $ hetero_a
      $ net_lat_a $ net_bw_a $ gossip_us_a $ fleet_serial_a $ sample_us_a
      $ series_csv_a $ slo_us_a $ slo_target_a $ faults_a $ fault_kinds_a
      $ hedge_frac_a $ hedge_budget_a $ admit_a $ deadline_us_a $ wjsq_aware_a
      $ tail_a $ nic_a $ itr_a $ rx_mode_a $ jobs_arg $ seed_arg)

let () =
  let doc =
    "Reproduction of 'The Case for an Interwoven Parallel Hardware/Software \
     Stack' (SCWS/ROSS 2021)"
  in
  let info = Cmd.info "interweave" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            csv_cmd;
            stacks_cmd;
            trace_cmd;
            profile_cmd;
            golden_cmd;
            sweep_cmd;
            faults_cmd;
            serve_cmd;
          ]))
