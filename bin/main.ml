(* interweave: run the paper's experiments from the command line. *)

open Cmdliner

(* Every failing check-style path exits nonzero through this one
   helper, so the exit-code contract is in one place instead of
   scattered per-branch [exit] calls. *)
let die fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let find_experiment id =
  try Interweave.Experiments.find id
  with Not_found -> die "unknown experiment %s (try 'interweave list')" id

let seed_arg =
  Arg.(
    value & opt int 0
    & info [ "seed" ] ~docv:"N"
        ~doc:
          "Global RNG seed offset folded into every stream the run creates; \
           0 (the default) keeps the built-in seeds.")

let list_cmd =
  let run () =
    List.iter
      (fun (e : Interweave.Experiments.experiment) ->
        Printf.printf "%-4s %s\n     paper: %s\n" e.id e.title e.paper_claim)
      (Interweave.Experiments.all ())
  in
  Cmd.v (Cmd.info "list" ~doc:"List every reproducible experiment")
    Term.(const run $ const ())

let jobs_arg =
  Arg.(
    value
    & opt int (Interweave.Driver.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run experiments on up to $(docv) domains (outputs still print in \
           registry order); 1 means serial.")

let run_cmd =
  let ids =
    Arg.(
      non_empty
      & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (E1..E12, A1..A4) or 'all'")
  in
  let markdown =
    Arg.(value & flag & info [ "markdown" ] ~doc:"Emit Markdown tables")
  in
  let run ids markdown jobs seed =
    Iw_engine.Rng.set_global_seed seed;
    let targets =
      if List.mem "all" ids then Interweave.Experiments.all ()
      else List.map find_experiment ids
    in
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) ->
        if markdown then
          Printf.sprintf "## [%s] %s\n\nPaper: %s\n\n%s" e.id e.title
            e.paper_claim
            (String.concat ""
               (List.map
                  (fun t -> Interweave.Table.to_markdown t ^ "\n")
                  (e.tables ())))
        else Interweave.Experiments.run_to_string e)
      targets
    |> List.iter print_string
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run experiments and print their tables")
    Term.(const run $ ids $ markdown $ jobs_arg $ seed_arg)

let csv_cmd =
  let dir =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"DIR" ~doc:"Output directory for <id>_<n>.csv files")
  in
  let ids =
    Arg.(
      value
      & opt_all string []
      & info [ "only" ] ~docv:"ID" ~doc:"Restrict to these experiment ids")
  in
  let escape cell =
    if String.exists (fun c -> c = ',' || c = '"') cell then
      "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
    else cell
  in
  let run dir ids jobs seed =
    Iw_engine.Rng.set_global_seed seed;
    (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let targets =
      match ids with
      | [] -> Interweave.Experiments.all ()
      | ids -> List.map find_experiment ids
    in
    (* Compute in parallel; write and report serially, in registry
       order, so the output and file contents match a serial run. *)
    Interweave.Driver.parallel_map ~jobs
      (fun (e : Interweave.Experiments.experiment) -> (e.id, e.tables ()))
      targets
    |> List.iter (fun (id, tables) ->
           List.iteri
             (fun i (t : Interweave.Table.t) ->
               let path = Filename.concat dir (Printf.sprintf "%s_%d.csv" id i) in
               let oc = open_out path in
               output_string oc
                 (String.concat "," (List.map escape t.headers) ^ "\n");
               List.iter
                 (fun row ->
                   output_string oc
                     (String.concat "," (List.map escape row) ^ "\n"))
                 t.rows;
               close_out oc;
               Printf.printf "wrote %s (%s)\n" path t.title)
             tables)
  in
  Cmd.v
    (Cmd.info "csv" ~doc:"Run experiments and write their tables as CSV")
    Term.(const run $ dir $ ids $ jobs_arg $ seed_arg)

let stacks_cmd =
  let run () =
    let plat = Iw_hw.Platform.knl in
    List.iter
      (fun stack ->
        Printf.printf "%s\n  event delivery: %d cycles, timer mechanism: %d cycles\n"
          (Interweave.Stack.describe stack)
          (Interweave.Stack.event_delivery_cycles stack)
          (Interweave.Stack.timer_mechanism_cost stack))
      [ Interweave.Stack.commodity plat; Interweave.Stack.interwoven plat ]
  in
  Cmd.v
    (Cmd.info "stacks" ~doc:"Describe the commodity and interwoven stacks")
    Term.(const run $ const ())

let trace_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id to run under tracing (e.g. E3)")
  in
  let out =
    Arg.(
      value & opt string "trace.json"
      & info [ "out"; "o" ] ~docv:"PATH"
          ~doc:"Chrome trace-event JSON output path (load it in Perfetto)")
  in
  let capacity =
    Arg.(
      value
      & opt int 262_144
      & info
          [ "capacity"; "ring-capacity" ]
          ~docv:"N"
          ~doc:"Ring-buffer capacity in events; oldest events drop beyond it")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Validate the written JSON and fail if malformed or if the ring \
             dropped events (a truncated ring corrupts the export)")
  in
  let run id out capacity check =
    let e = find_experiment id in
    let tr = Iw_obs.Trace.ring ~capacity () in
    let obs = Iw_obs.Obs.create ~trace:tr () in
    (* Run serially under an ambient traced context: every kernel,
       CPU, and runtime the experiment creates inherits the ring. *)
    let text =
      Iw_obs.Obs.with_ambient obs (fun () ->
          Interweave.Experiments.run_to_string e)
    in
    print_string text;
    Iw_obs.Chrome.write_file tr out;
    let dropped = Iw_obs.Trace.dropped tr in
    Printf.printf "wrote %s: %d events (%d dropped)\n" out
      (Iw_obs.Trace.length tr) dropped;
    if check then begin
      (match Iw_obs.Chrome.validate_file out with
      | Ok n -> Printf.printf "validated: %d events ok\n" n
      | Error msg -> die "invalid trace: %s" msg);
      if dropped > 0 then
        die
          "trace ring dropped %d events; rerun with --ring-capacity %d or more"
          dropped
          (Iw_obs.Trace.emitted tr)
    end
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one experiment with the trace bus on and export a \
          Perfetto-loadable Chrome trace-event JSON file")
    Term.(const run $ id $ out $ capacity $ check)

let profile_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID" ~doc:"Experiment id to profile (e.g. E1)")
  in
  let folded_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ] ~docv:"PATH"
          ~doc:"Write folded-stack lines for flamegraph.pl / speedscope")
  in
  let speedscope_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedscope" ] ~docv:"PATH"
          ~doc:"Write a speedscope JSON profile (one track per CPU)")
  in
  let top =
    Arg.(
      value & opt int 20
      & info [ "top" ] ~docv:"N" ~doc:"Rows in the printed profile table")
  in
  let capacity =
    Arg.(
      value
      & opt int 1_048_576
      & info [ "ring-capacity" ] ~docv:"N"
          ~doc:"Trace ring capacity; raise it if events are dropped")
  in
  let run id folded_out speedscope_out top capacity =
    let e = find_experiment id in
    let tr = Iw_obs.Trace.ring ~capacity () in
    let obs = Iw_obs.Obs.create ~trace:tr () in
    ignore
      (Iw_obs.Obs.with_ambient obs (fun () ->
           Interweave.Experiments.run_to_string e));
    let p = Iw_obs.Profile.of_trace tr in
    print_string (Iw_obs.Profile.render_top ~top p);
    if p.Iw_obs.Profile.dropped > 0 then
      Printf.eprintf
        "warning: ring dropped %d events — the profile is truncated; rerun \
         with --ring-capacity %d or more\n"
        p.Iw_obs.Profile.dropped
        (Iw_obs.Trace.emitted tr);
    (match folded_out with
    | None -> ()
    | Some path -> (
        Iw_obs.Folded.write_file p path;
        match
          Iw_obs.Folded.check_file path ~total:(Iw_obs.Profile.total_cycles p)
        with
        | Ok n -> Printf.printf "wrote %s: %d stacks (self sum = total)\n" path n
        | Error msg -> die "folded check failed for %s: %s" path msg));
    match speedscope_out with
    | None -> ()
    | Some path -> (
        Iw_obs.Speedscope.write_file ~name:(id ^ " profile") p path;
        match Iw_obs.Speedscope.validate_file path with
        | Ok n -> Printf.printf "wrote %s: %d events ok\n" path n
        | Error msg -> die "invalid speedscope file %s: %s" path msg)
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run one experiment under tracing, reconstruct per-CPU span stacks, \
          and print a self/total cycle profile (optionally exporting \
          flamegraph.pl folded stacks and speedscope JSON)")
    Term.(const run $ id $ folded_out $ speedscope_out $ top $ capacity)

let golden_cmd =
  let ids =
    Arg.(
      value
      & pos_all string []
      & info [] ~docv:"ID" ~doc:"Experiment ids (default: every experiment)")
  in
  let update =
    Arg.(
      value & flag
      & info [ "update" ] ~doc:"Regenerate snapshots instead of checking")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ] ~doc:"Check counters against snapshots (the default)")
  in
  let dir =
    Arg.(
      value & opt string "golden"
      & info [ "dir" ] ~docv:"DIR" ~doc:"Snapshot directory")
  in
  let run ids update check dir jobs =
    if update && check then die "golden: pass at most one of --check / --update";
    let targets =
      match ids with
      | [] -> Interweave.Experiments.all ()
      | ids -> List.map find_experiment ids
    in
    let path_of (e : Interweave.Experiments.experiment) =
      Filename.concat dir (e.id ^ ".txt")
    in
    (* Each worker runs its experiment under its own collecting ambient
       context (ambient state is domain-local), so the parallel fan-out
       cannot mix counters across experiments. *)
    let results =
      Interweave.Driver.parallel_map ~jobs
        (fun (e : Interweave.Experiments.experiment) ->
          let _, counters = Interweave.Experiments.run_with_counters e in
          (e, counters))
        targets
    in
    if update then begin
      (try Unix.mkdir dir 0o755
       with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
      List.iter
        (fun ((e : Interweave.Experiments.experiment), counters) ->
          let path = path_of e in
          Iw_obs.Golden.write_file
            ~header:
              [
                Printf.sprintf "golden counters for %s (%s)" e.id e.title;
                "regenerate with: interweave golden --update " ^ e.id;
              ]
            counters path;
          Printf.printf "wrote %s (%d counters)\n" path (List.length counters))
        results
    end
    else begin
      let failures = ref 0 in
      List.iter
        (fun ((e : Interweave.Experiments.experiment), counters) ->
          let path = path_of e in
          match Iw_obs.Golden.read_file path with
          | exception Sys_error _ ->
              incr failures;
              Printf.printf "%-4s MISSING %s (run 'golden --update %s')\n" e.id
                path e.id
          | exception Invalid_argument msg ->
              incr failures;
              Printf.printf "%-4s UNREADABLE %s: %s\n" e.id path msg
          | expected -> (
              match Iw_obs.Golden.compare_counters ~expected counters with
              | [] -> Printf.printf "%-4s ok (%d counters)\n" e.id (List.length expected)
              | drifts ->
                  incr failures;
                  Printf.printf "%-4s DRIFT\n" e.id;
                  List.iter
                    (fun d ->
                      Printf.printf "     %s\n" (Iw_obs.Golden.render_drift d))
                    drifts))
        results;
      if !failures > 0 then die "golden: %d experiment(s) drifted" !failures
    end
  in
  Cmd.v
    (Cmd.info "golden"
       ~doc:
         "Re-run experiments and compare their machine-wide counter totals \
          against committed golden snapshots (or --update to regenerate); \
          drift beyond per-counter tolerance fails the command")
    Term.(const run $ ids $ update $ check $ dir $ jobs_arg)

let sweep_cmd =
  let field =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"FIELD"
          ~doc:
            "Cost-model field to sweep (default tick_update), or \
             $(i,FIELD1,FIELD2) for a 2-D grid")
  in
  let values =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "values" ] ~docv:"V1,V2,..."
          ~doc:"Explicit values; default 0,v/4,v/2,v,2v,4v around the preset")
  in
  let values2 =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "values2" ] ~docv:"V1,V2,..."
          ~doc:"Values for the second field of a 2-D grid (columns)")
  in
  let os =
    Arg.(
      value
      & opt (enum [ ("nk", `Nk); ("linux", `Linux) ]) `Nk
      & info [ "os" ] ~docv:"OS" ~doc:"Personality for the 2-D grid probe")
  in
  let list_fields =
    Arg.(value & flag & info [ "list" ] ~doc:"List sweepable cost fields")
  in
  let run field values values2 os list_fields =
    let module Sweep = Interweave.Machine.Sweep in
    let plat = Iw_hw.Platform.small in
    let resolve fname =
      match Sweep.find fname with
      | Some fd -> fd
      | None -> die "unknown cost field %s (try 'sweep --list')" fname
    in
    if list_fields then
      List.iter
        (fun (fd : Sweep.field) ->
          Printf.printf "%-28s %s (default %d)\n" fd.f_name fd.f_doc
            (fd.get Iw_hw.Platform.small.Iw_hw.Platform.costs))
        Sweep.fields
    else
      let fname = Option.value field ~default:"tick_update" in
      match String.split_on_char ',' fname with
      | [ f1; f2 ] ->
          let fd1 = resolve f1 and fd2 = resolve f2 in
          let vs1 =
            match values with
            | Some vs -> vs
            | None -> Sweep.default_values plat fd1
          in
          let vs2 =
            match values2 with
            | Some vs -> vs
            | None -> Sweep.default_values plat fd2
          in
          print_string
            (Interweave.Table.render (Sweep.grid ~plat ~os fd1 fd2 vs1 vs2))
      | [ _ ] ->
          let fd = resolve fname in
          let values =
            match values with
            | Some vs -> vs
            | None -> Sweep.default_values plat fd
          in
          print_string (Interweave.Table.render (Sweep.sensitivity fd values))
      | _ -> die "sweep: give FIELD or FIELD1,FIELD2"
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Vary one hoisted cost-model field across a range and print a \
          sensitivity table for the pinned probe workload, or a 2-D \
          FIELD1,FIELD2 grid of elapsed cycles")
    Term.(const run $ field $ values $ values2 $ os $ list_fields)

let faults_cmd =
  let id =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ID"
          ~doc:"Experiment id to run under fault injection (e.g. E3, R1)")
  in
  let rate =
    Arg.(
      value & opt float 1e-3
      & info [ "rate" ] ~docv:"P"
          ~doc:"Per-opportunity fault probability in [0,1]")
  in
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan RNG seed")
  in
  let kinds =
    Arg.(
      value
      & opt (some string) None
      & info [ "kinds" ] ~docv:"K1,K2,..."
          ~doc:
            "Comma-separated fault kinds to arm (e.g. ipi-drop,timer-late); \
             default: all kinds")
  in
  let check =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:
            "Fail unless the run completed and, at a nonzero rate, at least \
             one fault was actually injected (guards the injection wiring)")
  in
  let run id rate seed kinds check =
    let e = find_experiment id in
    let kinds =
      match kinds with
      | None -> Iw_faults.Plan.all_kinds
      | Some s ->
          String.split_on_char ',' s
          |> List.map (fun k ->
                 let k = String.trim k in
                 match Iw_faults.Plan.kind_of_string k with
                 | Some k -> k
                 | None ->
                     die "unknown fault kind %s (known: %s)" k
                       (String.concat ", "
                          (List.map Iw_faults.Plan.kind_name
                             Iw_faults.Plan.all_kinds)))
    in
    if rate < 0.0 || rate > 1.0 then die "faults: --rate must be in [0,1]";
    let plan = Iw_faults.Plan.create ~rate ~seed ~kinds () in
    let obs = Iw_obs.Obs.create ~collect:true () in
    let out =
      Iw_obs.Obs.with_ambient obs (fun () ->
          Iw_faults.Plan.with_ambient plan (fun () ->
              try Ok (Interweave.Experiments.run_to_string e)
              with Failure msg -> Error msg))
    in
    (match out with
    | Ok text -> print_string text
    | Error msg -> die "faults: %s run failed under injection: %s" e.id msg);
    let totals = Iw_obs.Obs.total_counters obs in
    let g id = Iw_obs.Counter.get totals id in
    Printf.printf
      "fault plan: rate %g, seed %d, kinds %s\n\
      \  injected %d | ipi-retries %d | watchdog %d | relaunches %d | \
       pool-evicts %d | rollbacks %d\n"
      rate seed
      (String.concat "," (List.map Iw_faults.Plan.kind_name kinds))
      (g Iw_obs.Counter.Fault_injected)
      (g Iw_obs.Counter.Ipi_retry)
      (g Iw_obs.Counter.Watchdog_fire)
      (g Iw_obs.Counter.Virtine_relaunch)
      (g Iw_obs.Counter.Pool_evict)
      (g Iw_obs.Counter.Move_rollback);
    if check && rate > 0.0 && g Iw_obs.Counter.Fault_injected = 0 then
      die
        "faults --check: no faults injected at rate %g (injection points not \
         reached?)"
        rate
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one experiment under an ambient deterministic fault plan \
          (dropped IPIs, dead timers, dark cores, ...) and report the \
          fault/recovery counters; the R experiments additionally scope \
          their own per-row plans")
    Term.(const run $ id $ rate $ seed $ kinds $ check)

let () =
  let doc =
    "Reproduction of 'The Case for an Interwoven Parallel Hardware/Software \
     Stack' (SCWS/ROSS 2021)"
  in
  let info = Cmd.info "interweave" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            csv_cmd;
            stacks_cmd;
            trace_cmd;
            profile_cmd;
            golden_cmd;
            sweep_cmd;
            faults_cmd;
          ]))
