(* Tests for the OpenMP runtime, the NAS surrogates, and EPCC. *)

open Iw_kernel
open Iw_omp

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plat n = Iw_hw.Platform.with_cores Iw_hw.Platform.knl n

(* Run one parallel_for and return (elapsed, per-iteration hits). *)
let run_region ?(mode = Runtime.Rtk) ?(nthreads = 4) ?schedule ~iters iter_cycles =
  let plat = plat nthreads in
  let k = Sched.boot ~seed:3 ~personality:(Runtime.personality_of_mode mode plat) plat in
  let finish = ref 0 in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         let t = Runtime.create k mode ~nthreads in
         Runtime.parallel_for t ?schedule ~iters ~iter_cycles ();
         finish := Api.now ();
         Runtime.shutdown t));
  Sched.run k;
  !finish

let test_parallel_for_faster_than_serial () =
  let iters = 4000 and cost = 1000 in
  let par = run_region ~nthreads:4 ~iters (fun _ -> cost) in
  check_bool
    (Printf.sprintf "elapsed %d ~ serial/3 at least" par)
    true
    (par < iters * cost / 3)

let test_every_mode_runs () =
  List.iter
    (fun mode ->
      let e = run_region ~mode ~nthreads:4 ~iters:2000 (fun _ -> 500) in
      check_bool (Runtime.mode_name mode ^ " completes") true (e > 0))
    [ Runtime.Linux_user; Runtime.Rtk; Runtime.Pik; Runtime.Cck ]

let test_dynamic_beats_static_under_imbalance () =
  (* All the expensive iterations are at the end: a static partition
     lands them on one thread. *)
  let skew i = if i >= 3584 then 4000 else 50 in
  let st = run_region ~nthreads:8 ~schedule:Runtime.Static ~iters:4096 skew in
  let dy =
    run_region ~nthreads:8 ~schedule:(Runtime.Dynamic 32) ~iters:4096 skew
  in
  check_bool (Printf.sprintf "dynamic %d < static %d" dy st) true (dy < st)

let test_guided_completes_and_scales () =
  let g =
    run_region ~nthreads:8 ~schedule:(Runtime.Guided 16) ~iters:8192
      (fun _ -> 300)
  in
  check_bool "guided parallelizes" true (g < 8192 * 300 / 4)

let test_pik_close_to_rtk () =
  let bench = Nas.sp in
  let rtk = (Nas.run (plat 8) Runtime.Rtk ~nthreads:8 bench).elapsed_cycles in
  let pik = (Nas.run (plat 8) Runtime.Pik ~nthreads:8 bench).elapsed_cycles in
  let diff = abs (rtk - pik) in
  check_bool
    (Printf.sprintf "pik within 2%% of rtk (%d vs %d)" pik rtk)
    true
    (100 * diff < 2 * rtk)

let test_rtk_beats_linux () =
  let bench = Nas.bt in
  let lx =
    (Nas.run Iw_hw.Platform.knl Runtime.Linux_user ~nthreads:16 bench)
      .elapsed_cycles
  in
  let rtk =
    (Nas.run Iw_hw.Platform.knl Runtime.Rtk ~nthreads:16 bench).elapsed_cycles
  in
  check_bool (Printf.sprintf "rtk %d < linux %d" rtk lx) true (rtk < lx)

let test_memory_penalty_only_for_linux () =
  let plat = Iw_hw.Platform.knl in
  check_int "rtk penalty" 0 (Nas.memory_penalty_per_iter plat Runtime.Rtk Nas.bt);
  check_bool "linux penalty positive" true
    (Nas.memory_penalty_per_iter plat Runtime.Linux_user Nas.bt > 0)

let test_nas_speedup_sane () =
  let r = Nas.run (plat 16) Runtime.Rtk ~nthreads:16 Nas.ep in
  check_bool
    (Printf.sprintf "ep speedup %.1f in (10,16]" r.speedup_vs_serial)
    true
    (r.speedup_vs_serial > 10.0 && r.speedup_vs_serial <= 16.2)

let test_epcc_overheads_ordered () =
  let plat = plat 8 in
  let get mode construct =
    (Epcc.measure plat mode ~nthreads:8 construct).overhead_cycles_per_construct
  in
  let lx = get Runtime.Linux_user Epcc.Parallel_region in
  let rtk = get Runtime.Rtk Epcc.Parallel_region in
  check_bool
    (Printf.sprintf "rtk parallel overhead %.0f < linux %.0f" rtk lx)
    true (rtk < lx);
  let dyn = get Runtime.Rtk Epcc.Dynamic_for in
  let sta = get Runtime.Rtk Epcc.Static_for in
  check_bool "dynamic-for costs more than static-for" true (dyn > sta)

let test_epcc_all_modes_including_cck () =
  let plat = plat 4 in
  List.iter
    (fun mode ->
      let r = Epcc.measure plat mode ~nthreads:4 Epcc.Parallel_region in
      check_bool
        (Runtime.mode_name mode ^ " overhead sane")
        true
        (r.overhead_cycles_per_construct > 0.0
        && r.overhead_cycles_per_construct < 1_000_000.0))
    [ Runtime.Linux_user; Runtime.Rtk; Runtime.Pik; Runtime.Cck ]

let test_cg_dynamic_bench_runs () =
  let r = Nas.run (plat 8) Runtime.Rtk ~nthreads:8 Nas.cg in
  check_bool "cg speedup reasonable" true
    (r.speedup_vs_serial > 4.0 && r.speedup_vs_serial <= 8.2)

let test_epcc_table_complete () =
  let rows =
    Epcc.table (plat 4) ~modes:[ Runtime.Linux_user; Runtime.Rtk ] ~nthreads:4
  in
  check_int "4 constructs x 2 modes" 8 (List.length rows)

let test_region_count () =
  let plat = plat 4 in
  let k = Sched.boot ~seed:3 ~personality:(Os.nautilus plat) plat in
  ignore
    (Sched.spawn k (fun () ->
         let t = Runtime.create k Runtime.Rtk ~nthreads:4 in
         for _ = 1 to 5 do
           Runtime.parallel_for t ~iters:100 ~iter_cycles:(fun _ -> 100) ()
         done;
         check_int "regions counted" 5 (Runtime.regions t);
         Runtime.shutdown t));
  Sched.run k

let () =
  Alcotest.run "omp"
    [
      ( "runtime",
        [
          Alcotest.test_case "parallel beats serial" `Quick
            test_parallel_for_faster_than_serial;
          Alcotest.test_case "all modes run" `Quick test_every_mode_runs;
          Alcotest.test_case "dynamic under imbalance" `Quick
            test_dynamic_beats_static_under_imbalance;
          Alcotest.test_case "guided" `Quick test_guided_completes_and_scales;
          Alcotest.test_case "region count" `Quick test_region_count;
        ] );
      ( "nas",
        [
          Alcotest.test_case "pik ~ rtk" `Quick test_pik_close_to_rtk;
          Alcotest.test_case "rtk beats linux" `Quick test_rtk_beats_linux;
          Alcotest.test_case "memory penalty" `Quick
            test_memory_penalty_only_for_linux;
          Alcotest.test_case "ep speedup sane" `Quick test_nas_speedup_sane;
        ] );
      ( "epcc",
        [
          Alcotest.test_case "overheads ordered" `Quick
            test_epcc_overheads_ordered;
          Alcotest.test_case "table complete" `Quick test_epcc_table_complete;
          Alcotest.test_case "all modes incl cck" `Quick
            test_epcc_all_modes_including_cck;
          Alcotest.test_case "cg dynamic bench" `Quick
            test_cg_dynamic_bench_runs;
        ] );
    ]
