test/test_carat.ml: Alcotest Array Eval Far_memory Hashtbl Interp Ir Iw_carat Iw_ir Iw_passes List Option Pik Printf Programs Runtime String
