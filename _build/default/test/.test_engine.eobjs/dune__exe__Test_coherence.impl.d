test/test_coherence.ml: Alcotest Cache Consistency Iw_coherence Iw_engine List Machine Mpl Printf QCheck QCheck_alcotest Traces
