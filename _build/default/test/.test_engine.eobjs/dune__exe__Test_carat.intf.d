test/test_carat.mli:
