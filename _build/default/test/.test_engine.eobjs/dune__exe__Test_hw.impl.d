test/test_hw.ml: Alcotest Array Cpu Ipi Iw_engine Iw_hw Lapic List Pipeline_interrupt Platform Sim Tlb
