test/test_interweave.ml: Alcotest Interweave Iw_hw Iw_kernel Iw_mem List String
