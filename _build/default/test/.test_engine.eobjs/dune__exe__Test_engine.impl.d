test/test_engine.ml: Alcotest Array Coro Fun Gen Heap Iw_engine List QCheck QCheck_alcotest Rng Sim Stats Units
