test/test_heartbeat.ml: Alcotest Api Deque Iw_heartbeat Iw_hw Iw_kernel Iw_linuxsim List Option Printf Sched Tpal Tpal_tree
