test/test_virtine.ml: Alcotest Iw_ir Iw_virtine List Option Wasp
