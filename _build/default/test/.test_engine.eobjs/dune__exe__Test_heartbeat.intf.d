test/test_heartbeat.mli:
