test/test_mem.ml: Address_space Alcotest Array Buddy Gen Iw_hw Iw_mem List Numa Option QCheck QCheck_alcotest
