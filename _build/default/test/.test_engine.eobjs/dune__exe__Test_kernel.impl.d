test/test_kernel.ml: Alcotest Api Array Coro Device_irq Fiber Gen Iw_engine Iw_hw Iw_kernel List Nautilus Option Os Platform Printf QCheck QCheck_alcotest Sched Task
