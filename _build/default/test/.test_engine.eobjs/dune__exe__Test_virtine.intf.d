test/test_virtine.mli:
