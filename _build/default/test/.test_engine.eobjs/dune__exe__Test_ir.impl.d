test/test_ir.ml: Alcotest Cfg Interp Ir Iw_carat Iw_hw Iw_ir Iw_passes List Option Printf Programs QCheck QCheck_alcotest String
