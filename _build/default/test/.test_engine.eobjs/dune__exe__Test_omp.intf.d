test/test_omp.mli:
