test/test_interweave.mli:
