test/test_omp.ml: Alcotest Api Epcc Iw_hw Iw_kernel Iw_omp List Nas Os Printf Runtime Sched
