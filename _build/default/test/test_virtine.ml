(* Tests for virtines / Wasp. *)

open Iw_virtine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let spawn config = Wasp.spawn_latency_us config

let test_stage_elision_snapshot () =
  let plain = Wasp.stages Wasp.default in
  let snap = Wasp.stages { Wasp.default with snapshot = true } in
  let elided name rows =
    List.exists (fun (s : Wasp.stage) -> s.stage_name = name && s.elided) rows
  in
  check_bool "boot paid without snapshot" true (not (elided "boot-path" plain));
  check_bool "boot elided with snapshot" true (elided "boot-path" snap);
  check_bool "restore paid with snapshot" true
    (not (elided "snapshot-restore" snap))

let test_ordering_of_configs () =
  let full = spawn { Wasp.default with profile = Wasp.Full_linux_boot; mem_mb = 128 } in
  let minimal = spawn Wasp.default in
  let snap = spawn { Wasp.default with snapshot = true } in
  let bespoke = spawn { Wasp.default with profile = Wasp.Bespoke_16 } in
  check_bool "full >> minimal" true (full > 20.0 *. minimal);
  check_bool "snapshot < minimal" true (snap < minimal);
  check_bool "bespoke cheapest boot" true (bespoke < minimal);
  check_bool "paper: as low as ~100us" true (bespoke < 150.0)

let test_backend_factor () =
  let kvm = spawn Wasp.default in
  let hv = spawn { Wasp.default with backend = Wasp.Hyper_v } in
  check_bool "hyper-v costlier" true (hv > kvm)

let test_memory_scales_mapping () =
  let small = spawn { Wasp.default with mem_mb = 2 } in
  let big = spawn { Wasp.default with mem_mb = 512 } in
  check_bool "mapping grows with memory" true (big > small +. 1000.0)

let test_pool_hits_and_fallback () =
  let t =
    Wasp.create ~pool_size:4
      { Wasp.default with profile = Wasp.Bespoke_16; pooled = true }
  in
  let lat_pooled = Wasp.call t ~work_us:10.0 in
  check_int "pool hit recorded" 1 (Wasp.pool_hits t);
  let cold =
    Wasp.call (Wasp.create { Wasp.default with profile = Wasp.Bespoke_16 })
      ~work_us:10.0
  in
  check_bool "pooled call cheaper than cold" true (lat_pooled < cold)

let test_call_includes_work () =
  let t = Wasp.create Wasp.default in
  let short = Wasp.call t ~work_us:10.0 in
  let long = Wasp.call t ~work_us:5_000.0 in
  check_bool "work dominates long calls" true (long -. short > 4_000.0)

let test_negative_work_rejected () =
  let t = Wasp.create Wasp.default in
  check_bool "raises" true
    (try
       ignore (Wasp.call t ~work_us:(-1.0));
       false
     with Invalid_argument _ -> true)

let test_call_program_runs_fib () =
  let t = Wasp.create { Wasp.default with profile = Wasp.Bespoke_16 } in
  let ret, latency = Wasp.call_program t ~ghz:1.3 (Iw_ir.Programs.fib_rec 12) in
  check_int "fib 12" 144 (Option.get ret);
  check_bool "latency includes spawn" true (latency > 100.0)

let test_call_program_isolated () =
  (* Two invocations share nothing: identical results, fresh heaps. *)
  let t = Wasp.create Wasp.default in
  let p = Iw_ir.Programs.alloc_churn 50 in
  let r1, _ = Wasp.call_program t ~ghz:1.0 p in
  let r2, _ = Wasp.call_program t ~ghz:1.0 p in
  check_int "same result" (Option.get r1) (Option.get r2)

let test_faas_table_shape () =
  let rows = Wasp.Faas.table () in
  check_int "five configurations" 5 (List.length rows);
  let mean name =
    (List.find (fun (r : Wasp.Faas.result) -> r.config_name = name) rows).mean_us
  in
  check_bool "full slowest" true
    (mean "full-linux-boot" > 10.0 *. mean "minimal-64");
  check_bool "pooled fastest" true
    (List.for_all
       (fun (r : Wasp.Faas.result) ->
         r.mean_us >= mean "bespoke-16+pool")
       rows);
  List.iter
    (fun (r : Wasp.Faas.result) ->
      check_bool (r.config_name ^ " p99 >= p50") true (r.p99_us >= r.p50_us))
    rows

let test_load_slow_context_queues () =
  let load config =
    Wasp.Faas.run_load ~name:"x" config ~rate_per_s:4_000.0 ~duration_s:0.2
      ~concurrency:4 ~work_us:150.0
  in
  let slow = load Wasp.default in
  let fast = load { Wasp.default with profile = Wasp.Bespoke_16; pooled = true } in
  check_bool "slow context waits more" true
    (slow.mean_wait_us > (10.0 *. fast.mean_wait_us) +. 10.0);
  check_bool "slow context higher utilization" true
    (slow.utilization > fast.utilization);
  check_bool "both served everything" true (slow.served = fast.served)

let test_load_overload_explodes () =
  (* Offered load beyond capacity: waits grow without bound. *)
  let r =
    Wasp.Faas.run_load ~name:"x"
      { Wasp.default with profile = Wasp.Full_linux_boot; mem_mb = 64 }
      ~rate_per_s:1_000.0 ~duration_s:0.05 ~concurrency:2 ~work_us:100.0
  in
  check_bool "saturated" true (r.utilization > 0.95);
  check_bool "waits explode" true (r.mean_wait_us > 10_000.0)

let test_deterministic () =
  let a = Wasp.Faas.run ~seed:9 ~name:"x" Wasp.default ~requests:50 ~work_us:10.0 in
  let b = Wasp.Faas.run ~seed:9 ~name:"x" Wasp.default ~requests:50 ~work_us:10.0 in
  Alcotest.(check (float 1e-9)) "same mean" a.mean_us b.mean_us

let () =
  Alcotest.run "virtine"
    [
      ( "stages",
        [
          Alcotest.test_case "snapshot elision" `Quick
            test_stage_elision_snapshot;
          Alcotest.test_case "config ordering" `Quick test_ordering_of_configs;
          Alcotest.test_case "backend factor" `Quick test_backend_factor;
          Alcotest.test_case "memory scaling" `Quick test_memory_scales_mapping;
        ] );
      ( "calls",
        [
          Alcotest.test_case "pool hits" `Quick test_pool_hits_and_fallback;
          Alcotest.test_case "work included" `Quick test_call_includes_work;
          Alcotest.test_case "negative work" `Quick test_negative_work_rejected;
        ] );
      ( "fig5",
        [
          Alcotest.test_case "call_program fib" `Quick
            test_call_program_runs_fib;
          Alcotest.test_case "isolated invocations" `Quick
            test_call_program_isolated;
        ] );
      ( "faas",
        [
          Alcotest.test_case "table shape" `Quick test_faas_table_shape;
          Alcotest.test_case "load: slow contexts queue" `Quick
            test_load_slow_context_queues;
          Alcotest.test_case "load: overload explodes" `Quick
            test_load_overload_explodes;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
        ] );
    ]
