(* Tests for the cache, the MESI+directory protocol, selective
   deactivation, and the PBBS trace study. *)

open Iw_coherence

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let params = Machine.default_params ~cores:4 ~cores_per_socket:2

(* ------------------------------------------------------------------ *)
(* Cache *)

let test_cache_miss_then_hit () =
  let c = Cache.create ~size_kb:4 ~ways:2 ~line_bytes:64 in
  check_bool "cold miss" true (Cache.lookup c 0x1000 = Cache.Invalid);
  ignore (Cache.install c 0x1000 Cache.Exclusive);
  check_bool "hit" true (Cache.lookup c 0x1000 = Cache.Exclusive);
  (* Same line, different byte. *)
  check_bool "same line hit" true (Cache.lookup c 0x103f = Cache.Exclusive);
  check_bool "next line miss" true (Cache.lookup c 0x1040 = Cache.Invalid)

let test_cache_lru_eviction () =
  (* 2 ways per set: the third distinct line mapping to one set evicts
     the least recently used. *)
  let c = Cache.create ~size_kb:4 ~ways:2 ~line_bytes:64 in
  let sets = 4 * 1024 / 64 / 2 in
  let stride = sets * 64 in
  let a = 0 and b = stride and d = 2 * stride in
  ignore (Cache.install c a Cache.Exclusive);
  ignore (Cache.install c b Cache.Exclusive);
  ignore (Cache.lookup c a);
  (* a is now MRU; installing d evicts b *)
  let evicted = Cache.install c d Cache.Exclusive in
  (match evicted with
  | Some (line, _) -> check_int "b evicted" (b / 64) line
  | None -> Alcotest.fail "expected an eviction");
  check_bool "a survives" true (Cache.resident c a);
  check_bool "b gone" true (not (Cache.resident c b))

let test_cache_invalidate () =
  let c = Cache.create ~size_kb:4 ~ways:2 ~line_bytes:64 in
  ignore (Cache.install c 0x40 Cache.Modified);
  Cache.invalidate c 0x40;
  check_bool "gone" true (Cache.lookup c 0x40 = Cache.Invalid)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let test_read_then_hit_costs () =
  let m = Machine.create ~params Machine.Off in
  Machine.access m ~core:0 ~addr:0x1000 ~write:false ~hint:Machine.Shared_data;
  let after_miss = Machine.core_cycles m 0 in
  Machine.access m ~core:0 ~addr:0x1000 ~write:false ~hint:Machine.Shared_data;
  let after_hit = Machine.core_cycles m 0 in
  check_bool "miss costs more than hit" true
    (after_miss > 10 * (after_hit - after_miss));
  check_int "hit costs l1_hit" params.l1_hit (after_hit - after_miss)

let test_write_invalidates_sharers () =
  let m = Machine.create ~params Machine.Off in
  let addr = 0x2000 in
  (* Two readers share the line. *)
  Machine.access m ~core:0 ~addr ~write:false ~hint:Machine.Shared_data;
  Machine.access m ~core:1 ~addr ~write:false ~hint:Machine.Shared_data;
  let before = (Machine.counters m).invalidations in
  (* A third core writes: both sharers must be invalidated. *)
  Machine.access m ~core:2 ~addr ~write:true ~hint:Machine.Shared_data;
  let after = (Machine.counters m).invalidations in
  check_bool "invalidations sent" true (after - before >= 2);
  (* Reader 0 now misses again. *)
  let c0_before = (Machine.counters m).misses in
  Machine.access m ~core:0 ~addr ~write:false ~hint:Machine.Shared_data;
  check_int "re-miss after invalidation" (c0_before + 1)
    (Machine.counters m).misses

let test_modified_data_forwarded () =
  let m = Machine.create ~params Machine.Off in
  let addr = 0x3000 in
  Machine.access m ~core:0 ~addr ~write:true ~hint:Machine.Shared_data;
  let wb_before = (Machine.counters m).writebacks in
  (* Another core reads: the dirty owner must supply + write back. *)
  Machine.access m ~core:1 ~addr ~write:false ~hint:Machine.Shared_data;
  check_int "writeback of modified data" (wb_before + 1)
    (Machine.counters m).writebacks

let test_private_hint_skips_directory () =
  let m = Machine.create ~params Machine.Private_only in
  let before = (Machine.counters m).dir_requests in
  for i = 0 to 63 do
    Machine.access m ~core:0 ~addr:(0x4000 + (i * 64)) ~write:true
      ~hint:(Machine.Private_to 0)
  done;
  check_int "no directory traffic" before (Machine.counters m).dir_requests;
  check_int "no invalidations" 0 (Machine.counters m).invalidations

let test_private_hint_not_honored_when_off () =
  let m = Machine.create ~params Machine.Off in
  Machine.access m ~core:0 ~addr:0x4000 ~write:true ~hint:(Machine.Private_to 0);
  check_bool "still tracked" true ((Machine.counters m).dir_requests > 0)

let test_ro_write_rejected () =
  let m = Machine.create ~params Machine.Private_and_ro in
  check_bool "raises" true
    (try
       Machine.access m ~core:0 ~addr:0x5000 ~write:true ~hint:Machine.Read_only;
       false
     with Invalid_argument _ -> true)

let test_ping_pong_costs () =
  (* Two cores alternately writing one line: the classic coherence
     pathology the paper calls out.  Tracked MESI pays transfers every
     time; each write is far more expensive than a private write. *)
  let m = Machine.create ~params Machine.Off in
  let addr = 0x6000 in
  for _ = 1 to 20 do
    Machine.access m ~core:0 ~addr ~write:true ~hint:Machine.Shared_data;
    Machine.access m ~core:3 ~addr ~write:true ~hint:Machine.Shared_data
  done;
  let shared_cost = Machine.core_cycles m 0 + Machine.core_cycles m 3 in
  let m2 = Machine.create ~params Machine.Private_and_ro in
  for _ = 1 to 20 do
    Machine.access m2 ~core:0 ~addr:0x7000 ~write:true ~hint:(Machine.Private_to 0);
    Machine.access m2 ~core:3 ~addr:0x8000 ~write:true ~hint:(Machine.Private_to 3)
  done;
  let private_cost = Machine.core_cycles m2 0 + Machine.core_cycles m2 3 in
  check_bool
    (Printf.sprintf "ping-pong %d >> private %d" shared_cost private_cost)
    true
    (shared_cost > 5 * private_cost)

let test_energy_only_on_interconnect () =
  let m = Machine.create ~params Machine.Private_and_ro in
  (* Local private hits and local fetches cross no interconnect. *)
  for i = 0 to 31 do
    Machine.access m ~core:0 ~addr:(0x9000 + (i * 64)) ~write:false
      ~hint:(Machine.Private_to 0)
  done;
  Alcotest.(check (float 1e-9)) "zero energy" 0.0 (Machine.interconnect_energy m)

(* ------------------------------------------------------------------ *)
(* Invariants *)

let test_swmr_after_trace () =
  List.iter
    (fun deact ->
      let bench = { Traces.bfs with Traces.accesses_per_core = 2_000 } in
      let m = Traces.run_bench ~params deact bench in
      check_bool "swmr holds" true (Machine.swmr_holds m))
    [ Machine.Off; Machine.Private_and_ro ]

let prop_swmr_random_accesses =
  QCheck.Test.make ~name:"SWMR holds under random tracked accesses" ~count:40
    QCheck.(pair (int_bound 1000) (int_bound 3))
    (fun (seed, extra) ->
      let m = Machine.create ~params Machine.Off in
      let rng = Iw_engine.Rng.create ~seed:(seed + extra) in
      for _ = 1 to 400 do
        let core = Iw_engine.Rng.int rng params.Machine.cores in
        let addr = 0x1000 + (64 * Iw_engine.Rng.int rng 32) in
        let write = Iw_engine.Rng.bool rng in
        Machine.access m ~core ~addr ~write ~hint:Machine.Shared_data
      done;
      Machine.swmr_holds m)

(* ------------------------------------------------------------------ *)
(* Consistency (SecV-B fences) *)

let test_tso_equals_selective_without_unrelated () =
  let run m =
    Consistency.producer_consumer ~iterations:100 ~data_stores:4
      ~unrelated_stores:0 m
  in
  check_int "identical when nothing is unrelated"
    (run Consistency.Tso).total_cycles
    (run Consistency.Selective).total_cycles

let test_selective_beats_tso_with_unrelated () =
  let sp =
    Consistency.speedup ~iterations:500 ~data_stores:2 ~unrelated_stores:32 ()
  in
  check_bool (Printf.sprintf "speedup %.2f > 1.1" sp) true (sp > 1.1)

let test_selective_fence_stalls_zero_when_data_drained () =
  let r =
    Consistency.producer_consumer ~iterations:200 ~data_stores:2
      ~unrelated_stores:16 Consistency.Selective
  in
  check_int "no stalls on drained data" 0 r.fence_stalls

let test_more_unrelated_more_tso_stall () =
  let stall u =
    (Consistency.producer_consumer ~iterations:100 ~data_stores:2
       ~unrelated_stores:u Consistency.Tso)
      .fence_stalls
  in
  check_bool "monotone in unrelated stores" true (stall 32 > stall 8)

(* ------------------------------------------------------------------ *)
(* MPL-style language runtime (SecV-G) *)

let mpl_machine () =
  Machine.create ~params:(Machine.default_params ~cores:8 ~cores_per_socket:4)
    Machine.Private_and_ro

let test_mpl_par_for_computes () =
  let m = mpl_machine () in
  let total, stats =
    Mpl.run ~machine:m (fun ctx ->
        let acc = Mpl.alloc ctx 8 ~init:0 in
        Mpl.par_for ctx ~lo:0 ~hi:8 ~grain:1 (fun c b ->
            let scratch = Mpl.alloc c 16 ~init:b in
            let s = ref 0 in
            for i = 0 to 15 do
              s := !s + Mpl.read c scratch i
            done;
            Mpl.write c acc b !s);
        let t = ref 0 in
        for b = 0 to 7 do
          t := !t + Mpl.read ctx acc b
        done;
        !t)
  in
  (* sum over b of 16*b = 16*28 *)
  check_int "computed" (16 * 28) total;
  check_bool "accesses recorded" true (stats.Mpl.accesses > 100)

let test_mpl_private_classification () =
  let m = mpl_machine () in
  let (), stats =
    Mpl.run ~machine:m (fun ctx ->
        Mpl.par_for ctx ~lo:0 ~hi:8 ~grain:1 (fun c _ ->
            let scratch = Mpl.alloc c 64 ~init:0 in
            for i = 0 to 63 do
              Mpl.write c scratch i i
            done))
  in
  (* Every access is to task-local fresh data. *)
  check_int "all private" stats.Mpl.accesses stats.Mpl.classified_private;
  check_int "no entanglement" 0 stats.Mpl.entanglements

let test_mpl_frozen_is_ro () =
  let m = mpl_machine () in
  let (), stats =
    Mpl.run ~machine:m (fun ctx ->
        let input = Mpl.alloc ctx 32 ~init:7 in
        Mpl.freeze ctx input;
        Mpl.par_for ctx ~lo:0 ~hi:4 ~grain:1 (fun c _ ->
            for i = 0 to 31 do
              ignore (Mpl.read c input i)
            done))
  in
  check_bool "ro classified" true (stats.Mpl.classified_ro >= 4 * 32)

let test_mpl_write_frozen_rejected () =
  let m = mpl_machine () in
  check_bool "raises" true
    (try
       ignore
         (Mpl.run ~machine:m (fun ctx ->
              let o = Mpl.alloc ctx 4 ~init:0 in
              Mpl.freeze ctx o;
              Mpl.write ctx o 0 1));
       false
     with Invalid_argument _ -> true)

let test_mpl_ancestor_data_shared () =
  let m = mpl_machine () in
  let (), stats =
    Mpl.run ~machine:m (fun ctx ->
        let shared = Mpl.alloc ctx 8 ~init:0 in
        let (), () =
          Mpl.par2 ctx
            (fun c -> Mpl.write c shared 0 1)
            (fun c -> Mpl.write c shared 1 2)
        in
        ())
  in
  check_bool "children's writes to parent data are shared" true
    (stats.Mpl.classified_shared >= 2)

let test_mpl_join_transfers_ownership () =
  let m = mpl_machine () in
  let (), stats =
    Mpl.run ~machine:m (fun ctx ->
        let (o, ()) =
          Mpl.par2 ctx (fun c -> Mpl.alloc c 8 ~init:3) (fun _ -> ())
        in
        (* After the join, the child's object belongs to the parent:
           these accesses are private again. *)
        let before = ref 0 in
        ignore before;
        for i = 0 to 7 do
          ignore (Mpl.read ctx o i)
        done)
  in
  check_int "no entanglement via join" 0 stats.Mpl.entanglements

let test_mpl_hints_speed_up_protocol () =
  let prog ctx =
    let input = Mpl.alloc ctx 4_096 ~init:1 in
    Mpl.freeze ctx input;
    Mpl.par_for ctx ~lo:0 ~hi:8 ~grain:1 (fun c b ->
        let scratch = Mpl.alloc c 512 ~init:0 in
        for i = 0 to 511 do
          Mpl.write c scratch i (Mpl.read c input ((b * 512) + i))
        done)
  in
  let mk deact =
    Machine.create
      ~params:(Machine.default_params ~cores:8 ~cores_per_socket:4)
      deact
  in
  let base = mk Machine.Off in
  ignore (Mpl.run ~machine:base prog);
  let deact = mk Machine.Private_and_ro in
  ignore (Mpl.run ~machine:deact prog);
  check_bool "derived hints speed up the machine" true
    (Machine.makespan deact * 10 < Machine.makespan base * 9)

(* ------------------------------------------------------------------ *)
(* Traces / Fig 7 *)

let small_bench =
  { Traces.samplesort with Traces.accesses_per_core = 3_000 }

let test_traces_deterministic () =
  let a = Traces.run_bench ~seed:5 ~params Machine.Off small_bench in
  let b = Traces.run_bench ~seed:5 ~params Machine.Off small_bench in
  check_int "same makespan" (Machine.makespan a) (Machine.makespan b)

let test_deactivation_helps_every_bench () =
  List.iter
    (fun (bench : Traces.bench) ->
      let bench = { bench with Traces.accesses_per_core = 2_000 } in
      let base = Traces.run_bench ~params Machine.Off bench in
      let deact = Traces.run_bench ~params Machine.Private_and_ro bench in
      check_bool
        (bench.Traces.bench_name ^ " faster")
        true
        (Machine.makespan deact < Machine.makespan base);
      check_bool
        (bench.Traces.bench_name ^ " less energy")
        true
        (Machine.interconnect_energy deact < Machine.interconnect_energy base))
    Traces.pbbs_suite

let test_fig7_shape () =
  let params = Machine.default_params ~cores:8 ~cores_per_socket:4 in
  let rows =
    Traces.fig7 ~params ()
  in
  check_int "eight benches" 8 (List.length rows);
  let avg = Traces.average_speedup rows in
  check_bool
    (Printf.sprintf "average speedup %.2f in (1.2, 2.0)" avg)
    true
    (avg > 1.2 && avg < 2.0);
  let er = Traces.average_energy_reduction rows in
  check_bool
    (Printf.sprintf "energy reduction %.0f%% in (30, 85)" er)
    true
    (er > 30.0 && er < 85.0)

let test_hierarchy_private_ro_levels () =
  let bench = { Traces.bfs with Traces.accesses_per_core = 2_000 } in
  let t d = Machine.makespan (Traces.run_bench ~params d bench) in
  let off = t Machine.Off in
  let po = t Machine.Private_only in
  let pro = t Machine.Private_and_ro in
  check_bool "private-only already helps" true (po < off);
  check_bool "adding read-only helps more" true (pro <= po)

let () =
  Alcotest.run "coherence"
    [
      ( "cache",
        [
          Alcotest.test_case "miss then hit" `Quick test_cache_miss_then_hit;
          Alcotest.test_case "lru eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "invalidate" `Quick test_cache_invalidate;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "miss/hit costs" `Quick test_read_then_hit_costs;
          Alcotest.test_case "write invalidates sharers" `Quick
            test_write_invalidates_sharers;
          Alcotest.test_case "modified forwarded" `Quick
            test_modified_data_forwarded;
          Alcotest.test_case "private skips directory" `Quick
            test_private_hint_skips_directory;
          Alcotest.test_case "hints ignored when off" `Quick
            test_private_hint_not_honored_when_off;
          Alcotest.test_case "ro write rejected" `Quick test_ro_write_rejected;
          Alcotest.test_case "ping-pong pathology" `Quick test_ping_pong_costs;
          Alcotest.test_case "local = zero energy" `Quick
            test_energy_only_on_interconnect;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "swmr after traces" `Quick test_swmr_after_trace;
          QCheck_alcotest.to_alcotest prop_swmr_random_accesses;
        ] );
      ( "consistency",
        [
          Alcotest.test_case "tso=selective w/o unrelated" `Quick
            test_tso_equals_selective_without_unrelated;
          Alcotest.test_case "selective wins" `Quick
            test_selective_beats_tso_with_unrelated;
          Alcotest.test_case "zero stall when drained" `Quick
            test_selective_fence_stalls_zero_when_data_drained;
          Alcotest.test_case "monotone stalls" `Quick
            test_more_unrelated_more_tso_stall;
        ] );
      ( "mpl",
        [
          Alcotest.test_case "par_for computes" `Quick
            test_mpl_par_for_computes;
          Alcotest.test_case "private classification" `Quick
            test_mpl_private_classification;
          Alcotest.test_case "frozen is ro" `Quick test_mpl_frozen_is_ro;
          Alcotest.test_case "write frozen rejected" `Quick
            test_mpl_write_frozen_rejected;
          Alcotest.test_case "ancestor data shared" `Quick
            test_mpl_ancestor_data_shared;
          Alcotest.test_case "join transfers ownership" `Quick
            test_mpl_join_transfers_ownership;
          Alcotest.test_case "hints speed up protocol" `Quick
            test_mpl_hints_speed_up_protocol;
        ] );
      ( "fig7",
        [
          Alcotest.test_case "deterministic" `Quick test_traces_deterministic;
          Alcotest.test_case "deactivation helps all" `Slow
            test_deactivation_helps_every_bench;
          Alcotest.test_case "figure shape" `Slow test_fig7_shape;
          Alcotest.test_case "hint levels" `Quick test_hierarchy_private_ro_levels;
        ] );
    ]
