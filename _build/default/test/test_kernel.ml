(* Integration tests for the scheduler engine, fibers, and the task
   framework, under both OS personalities. *)

open Iw_engine
open Iw_hw
open Iw_kernel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plat = Platform.small
let nk () = Nautilus.boot plat
let lx () = Sched.boot ~personality:(Os.linux plat) plat

(* ------------------------------------------------------------------ *)
(* Basic thread lifecycle *)

let test_single_thread_runs () =
  let k = nk () in
  let ran = ref false in
  ignore
    (Sched.spawn k (fun () ->
         Api.work 10_000;
         ran := true));
  Sched.run k;
  check_bool "body ran" true !ran;
  check_bool "time advanced" true (Sched.now k >= 10_000)

let test_work_is_accounted () =
  let k = nk () in
  ignore (Sched.spawn k (fun () -> Api.work 50_000));
  Sched.run k;
  check_int "work cycles" 50_000 (Sched.total_work_cycles k)

let test_spawn_join () =
  let k = nk () in
  let order = ref [] in
  ignore
    (Sched.spawn k (fun () ->
         let child =
           Api.spawn ~name:"child" (fun () ->
               Api.work 5000;
               order := "child" :: !order)
         in
         Api.join child;
         order := "parent" :: !order));
  Sched.run k;
  Alcotest.(check (list string)) "join ordering" [ "child"; "parent" ]
    (List.rev !order)

let test_join_dead_thread_immediate () =
  let k = nk () in
  let ok = ref false in
  ignore
    (Sched.spawn k (fun () ->
         let child = Api.spawn (fun () -> Api.work 10) in
         Api.sleep 1_000_000;
         (* Child long dead. *)
         Api.join child;
         ok := true));
  Sched.run k;
  check_bool "join returned" true !ok

let test_threads_on_distinct_cpus_overlap () =
  let k = nk () in
  let span = 1_000_000 in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         Api.work span));
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         Api.work span));
  Sched.run k;
  (* Parallel: finish far before 2x serial time. *)
  check_bool "parallel execution" true (Sched.now k < (2 * span) + (span / 2))

let test_two_threads_share_one_cpu () =
  let k = nk () in
  let span = 3_000_000 in
  let done_count = ref 0 in
  for _ = 1 to 2 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 }
         (fun () ->
           Api.work span;
           incr done_count))
  done;
  Sched.run k;
  check_int "both finished" 2 !done_count;
  (* Serialized on one core: at least 2x the span. *)
  check_bool "serialized" true (Sched.now k >= 2 * span)

let test_preemptive_timeslicing () =
  (* With a 1ms quantum and two CPU-bound threads on one core, both
     make progress long before either finishes. *)
  let k = Sched.boot ~personality:(Os.nautilus plat) ~quantum_us:100.0 plat in
  let q = Platform.cycles_of_us plat 100.0 in
  let progress = Array.make 2 0 in
  for i = 0 to 1 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 }
         (fun () ->
           for _ = 1 to 100 do
             Api.work (q / 10);
             progress.(i) <- progress.(i) + 1
           done))
  done;
  (* Run only long enough for ~20 quanta. *)
  Sched.run ~horizon:(q * 20) k;
  check_bool "thread 0 progressed" true (progress.(0) > 10);
  check_bool "thread 1 progressed" true (progress.(1) > 10)

let test_rt_beats_normal () =
  let k = nk () in
  let order = ref [] in
  ignore
    (Sched.spawn k (fun () ->
         (* Occupy CPU 0 with the spawner; queue both children there. *)
         let mk name rt =
           Api.spawn ~name ~cpu:0 ~rt (fun () ->
               Api.work 1000;
               order := name :: !order)
         in
         let n = mk "normal" false in
         let r = mk "rt" true in
         Api.work 5000;
         Api.join n;
         Api.join r));
  Sched.run k;
  Alcotest.(check (list string)) "rt first" [ "rt"; "normal" ] (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Synchronization *)

let test_mutex_mutual_exclusion () =
  let k = nk () in
  let m = Sched.mutex () in
  let inside = ref 0 and max_inside = ref 0 and iters = ref 0 in
  let body () =
    for _ = 1 to 20 do
      Api.with_lock m (fun () ->
          incr inside;
          if !inside > !max_inside then max_inside := !inside;
          Api.work 500;
          incr iters;
          decr inside)
    done
  in
  for i = 0 to 2 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some i } body)
  done;
  Sched.run k;
  check_int "all iterations" 60 !iters;
  check_int "never two inside" 1 !max_inside

let test_unlock_by_non_owner_rejected () =
  let k = nk () in
  let m = Sched.mutex () in
  ignore (Sched.spawn k (fun () -> Api.unlock m));
  check_bool "raises" true
    (try
       Sched.run k;
       false
     with Invalid_argument _ -> true)

let test_condvar_signal () =
  let k = nk () in
  let m = Sched.mutex () in
  let c = Sched.cond () in
  let ready = ref false and got = ref false in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         Api.lock m;
         while not !ready do
           Api.wait c m
         done;
         got := true;
         Api.unlock m));
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         Api.work 50_000;
         Api.with_lock m (fun () -> ready := true);
         Api.signal c));
  Sched.run k;
  check_bool "woken with predicate" true !got

let test_condvar_broadcast_wakes_all () =
  let k = nk () in
  let m = Sched.mutex () in
  let c = Sched.cond () in
  let released = ref false and woken = ref 0 in
  for i = 0 to 2 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some i }
         (fun () ->
           Api.lock m;
           while not !released do
             Api.wait c m
           done;
           incr woken;
           Api.unlock m))
  done;
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 3 } (fun () ->
         Api.work 100_000;
         Api.with_lock m (fun () -> released := true);
         Api.broadcast c));
  Sched.run k;
  check_int "all woken" 3 !woken

let test_semaphore_counting () =
  let k = nk () in
  let sem = Sched.semaphore ~init:2 in
  let in_section = ref 0 and max_in = ref 0 in
  for i = 0 to 3 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some i }
         (fun () ->
           Api.sem_wait sem;
           incr in_section;
           if !in_section > !max_in then max_in := !in_section;
           Api.work 10_000;
           decr in_section;
           Api.sem_post sem))
  done;
  Sched.run k;
  check_bool "at most 2 inside" true (!max_in <= 2);
  check_bool "some concurrency" true (!max_in >= 1)

let test_barrier_rendezvous () =
  let k = nk () in
  let b = Sched.barrier ~parties:4 in
  let before = ref 0 and after_min = ref max_int in
  for i = 0 to 3 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some i }
         (fun () ->
           Api.work ((i + 1) * 10_000);
           incr before;
           Api.barrier_wait b;
           (* Everyone must have arrived by the time anyone passes. *)
           if !before < !after_min then after_min := !before))
  done;
  Sched.run k;
  check_int "all passed with full count" 4 !after_min

let test_barrier_reusable () =
  let k = nk () in
  let b = Sched.barrier ~parties:2 in
  let rounds = ref 0 in
  for i = 0 to 1 do
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some i }
         (fun () ->
           for _ = 1 to 3 do
             Api.barrier_wait b;
             if i = 0 then incr rounds
           done))
  done;
  Sched.run k;
  check_int "three rounds" 3 !rounds

let test_sleep_duration () =
  let k = nk () in
  let woke_at = ref 0 in
  ignore
    (Sched.spawn k (fun () ->
         Api.sleep 100_000;
         woke_at := Api.now ()));
  Sched.run k;
  check_bool "slept long enough" true (!woke_at >= 100_000);
  check_bool "no gross oversleep" true (!woke_at < 200_000)

(* ------------------------------------------------------------------ *)
(* Personality differences *)

let measure_spawn_join_cost personality =
  let k = Sched.boot ~personality plat in
  let elapsed = ref 0 in
  ignore
    (Sched.spawn k (fun () ->
         let t0 = Api.now () in
         for _ = 1 to 10 do
           let c = Api.spawn ~cpu:1 (fun () -> Api.work 100) in
           Api.join c
         done;
         elapsed := Api.now () - t0));
  Sched.run k;
  !elapsed

let test_nk_threads_cheaper_than_linux () =
  let nk_cost = measure_spawn_join_cost (Os.nautilus plat) in
  let lx_cost = measure_spawn_join_cost (Os.linux plat) in
  check_bool
    (Printf.sprintf "nk %d < linux %d" nk_cost lx_cost)
    true
    (nk_cost * 3 < lx_cost)

let test_parallel_helper () =
  let k = nk () in
  let hits = Array.make 4 false in
  ignore (Sched.spawn k (fun () -> Api.parallel 4 (fun i -> hits.(i) <- true)));
  Sched.run k;
  Array.iter (fun h -> check_bool "every index ran" true h) hits

let test_deterministic_replay () =
  let run_once () =
    let k = Sched.boot ~personality:(Os.linux plat) ~seed:123 plat in
    ignore
      (Sched.spawn k (fun () ->
           Api.parallel 4 (fun _ ->
               for _ = 1 to 50 do
                 Api.work (100 + Api.rand 1000)
               done)));
    Sched.run k;
    Sched.now k
  in
  check_int "same seed, same end time" (run_once ()) (run_once ())

(* ------------------------------------------------------------------ *)
(* Nemo IPI events *)

let test_nemo_signal_latency () =
  let k = nk () in
  let c = Platform.(plat.costs) in
  let sent = ref 0 and received = ref 0 in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         (* Keep CPU 1 busy so the IPI preempts real work. *)
         Api.work 10_000_000));
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         Api.work 1000;
         sent := Api.now ();
         Nautilus.Nemo.signal_from_thread k ~target_cpu:1 ~handler:(fun () ->
             received := Sched.now k)));
  Sched.run k;
  let latency = !received - !sent in
  check_bool "delivered" true (!received > 0);
  check_bool
    (Printf.sprintf "latency %d ~ ipi+dispatch" latency)
    true
    (latency >= c.ipi_latency
    && latency <= c.ipi_send + c.ipi_latency + c.interrupt_dispatch + 500)

(* ------------------------------------------------------------------ *)
(* Fibers *)

let test_fibers_cooperative_interleave () =
  let k = nk () in
  let log = ref [] in
  ignore
    (Sched.spawn k (fun () ->
         let fs = Fiber.create plat ~mode:Fiber.Cooperative ~fp:false in
         let mk tag =
           ignore
             (Fiber.spawn fs (fun () ->
                  for i = 1 to 3 do
                    log := Printf.sprintf "%s%d" tag i :: !log;
                    Coro.consume 100;
                    Fiber.yield ()
                  done))
         in
         mk "a";
         mk "b";
         Fiber.run fs));
  Sched.run k;
  Alcotest.(check (list string))
    "round-robin interleaving"
    [ "a1"; "b1"; "a2"; "b2"; "a3"; "b3" ]
    (List.rev !log)

let test_fibers_compiler_timed_preemption () =
  let k = nk () in
  let fs_out = ref None in
  ignore
    (Sched.spawn k (fun () ->
         let fs =
           Fiber.create plat
             ~mode:
               (Fiber.Compiler_timed
                  { period = 5_000; check_interval = 500; check_cost = 30 })
             ~fp:false
         in
         fs_out := Some fs;
         (* Two fibers that never yield voluntarily. *)
         for _ = 1 to 2 do
           ignore (Fiber.spawn fs (fun () -> Coro.consume 100_000))
         done;
         Fiber.run fs));
  Sched.run k;
  let fs = Option.get !fs_out in
  check_bool "compiler timing forced switches" true (Fiber.switches fs > 5);
  check_bool "timing checks happened" true (Fiber.timing_checks fs > 100)

let test_fiber_switch_cheaper_than_thread_switch () =
  let c = Platform.(plat.costs) in
  let fs = Fiber.create plat ~mode:Fiber.Cooperative ~fp:false in
  let thread_switch =
    c.interrupt_dispatch + c.interrupt_return + c.ctx_save_int
    + c.ctx_restore_int
  in
  check_bool "fibers cheaper" true (Fiber.switch_cost fs < thread_switch)

let test_fiber_requests_pass_through () =
  let k = nk () in
  let saw_time = ref (-1) in
  ignore
    (Sched.spawn k (fun () ->
         let fs = Fiber.create plat ~mode:Fiber.Cooperative ~fp:false in
         ignore
           (Fiber.spawn fs (fun () ->
                Coro.consume 1000;
                saw_time := Api.now ()));
         Fiber.run fs));
  Sched.run k;
  check_bool "fiber saw kernel time" true (!saw_time >= 1000)

(* ------------------------------------------------------------------ *)
(* Device interrupt steering *)

let test_device_irq_spread_hits_all_cpus () =
  let k = nk () in
  let dev = Device_irq.start k ~rate_hz:1e6 Device_irq.Spread in
  ignore
    (Sched.spawn k (fun () ->
         Api.work 100_000;
         Device_irq.stop dev));
  Sched.run k;
  let per_cpu = Device_irq.per_cpu dev in
  Array.iter (fun n -> check_bool "every cpu hit" true (n > 0)) per_cpu

let test_device_irq_steered_hits_one () =
  let k = nk () in
  let dev = Device_irq.start k ~rate_hz:1e6 (Device_irq.Steered 2) in
  ignore
    (Sched.spawn k (fun () ->
         Api.work 100_000;
         Device_irq.stop dev));
  Sched.run k;
  let per_cpu = Device_irq.per_cpu dev in
  Array.iteri
    (fun i n ->
      if i = 2 then check_bool "target hit" true (n > 0)
      else check_int "others untouched" 0 n)
    per_cpu

let test_device_irq_bad_args_rejected () =
  let k = nk () in
  check_bool "bad rate" true
    (try
       ignore (Device_irq.start k ~rate_hz:0.0 Device_irq.Spread);
       false
     with Invalid_argument _ -> true);
  check_bool "bad steering target" true
    (try
       ignore (Device_irq.start k ~rate_hz:1e5 (Device_irq.Steered 99));
       false
     with Invalid_argument _ -> true)

let test_device_irq_slows_victim () =
  let elapsed steer =
    let k = nk () in
    (* Keep the interrupt duty cycle well under 100%: dispatch +
       handler + return must fit the period or the vector livelocks
       the core (a real failure mode, but not this test's point). *)
    let dev =
      Device_irq.start k ~rate_hz:100_000.0 ~handler_cost:3_000
        (Device_irq.Steered steer)
    in
    let fin = ref 0 in
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 }
         (fun () ->
           Api.work 1_000_000;
           fin := Api.now ();
           Device_irq.stop dev));
    Sched.run k;
    !fin
  in
  check_bool "irqs on my cpu hurt; steered away they do not" true
    (elapsed 0 > elapsed 1 + 50_000)

(* ------------------------------------------------------------------ *)
(* Task framework *)

let test_task_framework_runs_all () =
  let k = nk () in
  let count = ref 0 in
  ignore
    (Sched.spawn k (fun () ->
         let tf = Task.create k () in
         let handles =
           List.init 20 (fun _ ->
               Task.submit tf (fun () ->
                   Api.work 1000;
                   incr count))
         in
         List.iter Task.wait handles;
         Task.shutdown tf));
  Sched.run k;
  check_int "all tasks ran" 20 !count

let test_task_small_tasks_inline () =
  let k = nk () in
  ignore
    (Sched.spawn k (fun () ->
         let tf = Task.create k ~inline_threshold:2000 () in
         let h1 = Task.submit ~size_hint:100 tf (fun () -> Api.work 100) in
         let h2 = Task.submit ~size_hint:100_000 tf (fun () -> Api.work 100) in
         Task.wait h1;
         Task.wait h2;
         check_int "one inlined" 1 (Task.inlined tf);
         check_int "one queued" 1 (Task.executed tf);
         Task.shutdown tf));
  Sched.run k

let prop_work_conservation =
  QCheck.Test.make ~name:"kernel conserves requested work cycles" ~count:25
    QCheck.(pair (int_range 1 4) (list_of_size Gen.(1 -- 6) (int_range 1_000 200_000)))
    (fun (ncpu, works) ->
      let plat = Platform.with_cores Platform.small ncpu in
      let k = Sched.boot ~seed:7 ~personality:(Os.nautilus plat) plat in
      List.iteri
        (fun i w ->
          ignore
            (Sched.spawn k
               ~spec:{ Sched.default_spec with sp_cpu = Some (i mod ncpu) }
               (fun () -> Api.work w)))
        works;
      Sched.run k;
      Sched.total_work_cycles k = List.fold_left ( + ) 0 works)

let prop_deterministic_replay =
  QCheck.Test.make ~name:"same seed, same schedule" ~count:15
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let once () =
        let k = Sched.boot ~seed ~personality:(Os.linux plat) plat in
        ignore
          (Sched.spawn k (fun () ->
               Api.parallel 3 (fun _ ->
                   for _ = 1 to 20 do
                     Api.work (500 + Api.rand 2_000)
                   done)));
        Sched.run k;
        (Sched.now k, Sched.total_overhead_cycles k)
      in
      once () = once ())

let () =
  ignore lx;
  Alcotest.run "kernel"
    [
      ( "threads",
        [
          Alcotest.test_case "single thread" `Quick test_single_thread_runs;
          Alcotest.test_case "work accounting" `Quick test_work_is_accounted;
          Alcotest.test_case "spawn/join" `Quick test_spawn_join;
          Alcotest.test_case "join dead" `Quick test_join_dead_thread_immediate;
          Alcotest.test_case "parallel cpus overlap" `Quick
            test_threads_on_distinct_cpus_overlap;
          Alcotest.test_case "one cpu serializes" `Quick
            test_two_threads_share_one_cpu;
          Alcotest.test_case "timeslicing" `Quick test_preemptive_timeslicing;
          Alcotest.test_case "rt priority" `Quick test_rt_beats_normal;
        ] );
      ( "sync",
        [
          Alcotest.test_case "mutex exclusion" `Quick
            test_mutex_mutual_exclusion;
          Alcotest.test_case "unlock non-owner" `Quick
            test_unlock_by_non_owner_rejected;
          Alcotest.test_case "condvar signal" `Quick test_condvar_signal;
          Alcotest.test_case "condvar broadcast" `Quick
            test_condvar_broadcast_wakes_all;
          Alcotest.test_case "semaphore" `Quick test_semaphore_counting;
          Alcotest.test_case "barrier" `Quick test_barrier_rendezvous;
          Alcotest.test_case "barrier reusable" `Quick test_barrier_reusable;
          Alcotest.test_case "sleep" `Quick test_sleep_duration;
        ] );
      ( "personalities",
        [
          Alcotest.test_case "nk threads cheaper" `Quick
            test_nk_threads_cheaper_than_linux;
          Alcotest.test_case "parallel helper" `Quick test_parallel_helper;
          Alcotest.test_case "deterministic replay" `Quick
            test_deterministic_replay;
          Alcotest.test_case "nemo ipi latency" `Quick test_nemo_signal_latency;
        ] );
      ( "fibers",
        [
          Alcotest.test_case "cooperative interleave" `Quick
            test_fibers_cooperative_interleave;
          Alcotest.test_case "compiler-timed preemption" `Quick
            test_fibers_compiler_timed_preemption;
          Alcotest.test_case "switch cheaper than threads" `Quick
            test_fiber_switch_cheaper_than_thread_switch;
          Alcotest.test_case "requests pass through" `Quick
            test_fiber_requests_pass_through;
        ] );
      ( "tasks",
        [
          Alcotest.test_case "runs all" `Quick test_task_framework_runs_all;
          Alcotest.test_case "inline small" `Quick test_task_small_tasks_inline;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_work_conservation;
          QCheck_alcotest.to_alcotest prop_deterministic_replay;
        ] );
      ( "device-irq",
        [
          Alcotest.test_case "spread hits all" `Quick
            test_device_irq_spread_hits_all_cpus;
          Alcotest.test_case "steered hits one" `Quick
            test_device_irq_steered_hits_one;
          Alcotest.test_case "victim slowed" `Quick test_device_irq_slows_victim;
          Alcotest.test_case "bad args rejected" `Quick
            test_device_irq_bad_args_rejected;
        ] );
    ]
