(* Tests for the IR: builder, CFG analyses, interpreter, and the
   benchmark corpus' correctness. *)

open Iw_ir

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A tiny diamond:  entry -> (then | else) -> join *)
let diamond () =
  let bld = Ir.Build.start ~name:"diamond" ~nparams:1 in
  let p = List.hd (Ir.Build.params bld) in
  let entry = Ir.Build.new_block bld in
  let thenb = Ir.Build.new_block bld in
  let elseb = Ir.Build.new_block bld in
  let join = Ir.Build.new_block bld in
  Ir.Build.set_cursor bld entry;
  let c = Ir.Build.bin bld Ir.Lt (Ir.Reg p) (Ir.Imm 10) in
  Ir.Build.terminate bld
    (Ir.Br { cond = Ir.Reg c; if_true = thenb; if_false = elseb });
  Ir.Build.set_cursor bld thenb;
  let v1 = Ir.Build.bin bld Ir.Add (Ir.Reg p) (Ir.Imm 1) in
  Ir.Build.terminate bld (Ir.Jmp join);
  Ir.Build.set_cursor bld elseb;
  let v2 = Ir.Build.bin bld Ir.Mul (Ir.Reg p) (Ir.Imm 2) in
  Ir.Build.terminate bld (Ir.Jmp join);
  Ir.Build.set_cursor bld join;
  let s = Ir.Build.bin bld Ir.Add (Ir.Reg v1) (Ir.Reg v2) in
  Ir.Build.terminate bld (Ir.Ret (Some (Ir.Reg s)));
  Ir.Build.finish bld

let test_builder_missing_terminator () =
  let bld = Ir.Build.start ~name:"broken" ~nparams:0 in
  let _ = Ir.Build.new_block bld in
  check_bool "raises" true
    (try
       ignore (Ir.Build.finish bld);
       false
     with Invalid_argument _ -> true)

let test_cfg_diamond () =
  let f = diamond () in
  let cfg = Cfg.of_func f in
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] (Cfg.successors cfg 0);
  Alcotest.(check (list int)) "join preds" [ 1; 2 ]
    (List.sort compare (Cfg.predecessors cfg 3));
  check_bool "entry dominates join" true (Cfg.dominates cfg 0 3);
  check_bool "then does not dominate join" false (Cfg.dominates cfg 1 3);
  check_bool "reflexive" true (Cfg.dominates cfg 3 3);
  Alcotest.(check (option int)) "idom of join" (Some 0)
    (Cfg.immediate_dominator cfg 3);
  Alcotest.(check int) "no loops" 0 (List.length (Cfg.loops cfg))

let test_cfg_loop_detection () =
  let p = Programs.vec_sum 10 in
  let m = p.build () in
  let f = Ir.find_func m p.entry in
  let cfg = Cfg.of_func f in
  let loops = Cfg.loops cfg in
  check_int "two loops (init + sum)" 2 (List.length loops);
  List.iter
    (fun (l : Cfg.loop) ->
      check_int "depth 1" 1 l.depth;
      check_bool "header in body" true (List.mem l.header l.body))
    loops

let test_cfg_nested_loop_depth () =
  let p = Programs.mat_mul 4 in
  let m = p.build () in
  let f = Ir.find_func m p.entry in
  let cfg = Cfg.of_func f in
  let depths = List.map (fun (l : Cfg.loop) -> l.depth) (Cfg.loops cfg) in
  check_int "deepest nest is 3" 3 (List.fold_left max 0 depths)

let test_interp_diamond () =
  let m = Ir.create_module () in
  Ir.add_func m (diamond ());
  (* p < 10: v1 = p+1, v2 unset=0 -> ret p+1.  Wait: both arms execute
     only one side; the other register stays 0. *)
  let r = Interp.run m "diamond" [ 3 ] in
  check_int "then path" 4 (Option.get r.ret);
  let r = Interp.run m "diamond" [ 50 ] in
  check_int "else path" 100 (Option.get r.ret)

let test_interp_counts_cost () =
  let m = Ir.create_module () in
  Ir.add_func m (diamond ());
  let r = Interp.run m "diamond" [ 3 ] in
  check_bool "cycles positive" true (r.cycles > 0);
  check_bool "dyn insts positive" true (r.dyn_insts > 0)

let test_interp_fuel () =
  (* An infinite loop must hit Out_of_fuel, not hang. *)
  let bld = Ir.Build.start ~name:"spin" ~nparams:0 in
  let b = Ir.Build.new_block bld in
  Ir.Build.set_cursor bld b;
  let _ = Ir.Build.bin bld Ir.Add (Ir.Imm 1) (Ir.Imm 1) in
  Ir.Build.terminate bld (Ir.Jmp b);
  let m = Ir.create_module () in
  Ir.add_func m (Ir.Build.finish bld);
  check_bool "out of fuel" true
    (try
       ignore (Interp.run ~fuel:1000 m "spin" []);
       false
     with Interp.Out_of_fuel -> true)

let test_interp_div_by_zero () =
  let bld = Ir.Build.start ~name:"div0" ~nparams:0 in
  let _ = Ir.Build.new_block bld in
  let d = Ir.Build.bin bld Ir.Div (Ir.Imm 1) (Ir.Imm 0) in
  Ir.Build.terminate bld (Ir.Ret (Some (Ir.Reg d)));
  let m = Ir.create_module () in
  Ir.add_func m (Ir.Build.finish bld);
  check_bool "faults" true
    (try
       ignore (Interp.run m "div0" []);
       false
     with Interp.Fault _ -> true)

let test_programs_compute_correctly () =
  List.iter
    (fun (p : Programs.program) ->
      match p.expected with
      | None -> ()
      | Some want ->
          let m = p.build () in
          let r = Interp.run m p.entry p.args in
          Alcotest.(check (option int)) p.name (Some want) r.ret)
    (Programs.carat_suite () @ Programs.timing_suite ())

let test_fib_program () =
  let p = Programs.fib_rec 10 in
  let m = p.build () in
  let r = Interp.run m p.entry p.args in
  check_int "fib 10" 55 (Option.get r.ret)

let test_program_memory_profile () =
  let p = Programs.stream_triad 100 in
  let m = p.build () in
  let r = Interp.run m p.entry p.args in
  check_bool "loads" true (r.loads > 200);
  check_bool "stores" true (r.stores >= 300);
  check_int "allocs" 3 r.allocs

(* ------------------------------------------------------------------ *)
(* Passes *)

let test_carat_naive_guards_every_access () =
  let p = Programs.vec_sum 50 in
  let m = p.build () in
  Iw_passes.Carat_pass.instrument ~config:Iw_passes.Carat_pass.naive m;
  let r = Interp.run m p.entry p.args in
  check_int "one guard per access" (r.loads + r.stores) r.guards;
  check_int "result unchanged" (Option.get p.expected) (Option.get r.ret)

let test_carat_hoist_reduces_dynamic_guards () =
  let p = Programs.stream_triad 500 in
  let naive = p.build () in
  Iw_passes.Carat_pass.instrument ~config:Iw_passes.Carat_pass.naive naive;
  let rn = Interp.run naive p.entry p.args in
  let opt = p.build () in
  Iw_passes.Carat_pass.instrument ~config:Iw_passes.Carat_pass.optimized opt;
  let ro = Interp.run opt p.entry p.args in
  check_bool
    (Printf.sprintf "hoisting: %d -> %d dynamic guards" rn.guards ro.guards)
    true
    (ro.guards * 100 < rn.guards);
  check_int "result unchanged" (Option.get p.expected) (Option.get ro.ret)

let test_carat_pointer_chase_not_hoistable () =
  let p = Programs.pointer_chase 100 in
  let naive = p.build () in
  Iw_passes.Carat_pass.instrument ~config:Iw_passes.Carat_pass.naive naive;
  let rn = Interp.run naive p.entry p.args in
  let opt = p.build () in
  Iw_passes.Carat_pass.instrument ~config:Iw_passes.Carat_pass.optimized opt;
  let ro = Interp.run opt p.entry p.args in
  (* The walk loop's guards cannot move: dynamic counts stay close. *)
  check_bool "guards mostly remain" true (ro.guards * 2 > rn.guards)

let test_carat_tracks_allocations () =
  let p = Programs.alloc_churn 50 in
  let m = p.build () in
  Iw_passes.Carat_pass.instrument m;
  let r = Interp.run m p.entry p.args in
  (* One alloc track + one free track per iteration. *)
  check_int "tracks" (2 * 50) r.tracks

let test_timing_gap_bounded () =
  List.iter
    (fun (p : Programs.program) ->
      let budget = 2000 in
      let a = Iw_passes.Timing_pass.measure ~check_budget:budget p in
      check_bool
        (Printf.sprintf "%s: max gap %d <= budget %d" p.name a.max_gap budget)
        true (a.max_gap <= budget))
    (Programs.timing_suite ())

let test_timing_loops_cheap () =
  let a =
    Iw_passes.Timing_pass.measure ~check_budget:2000 (Programs.vec_sum 4000)
  in
  check_bool
    (Printf.sprintf "strip-mined overhead %.2f%% < 3%%" a.overhead_pct)
    true (a.overhead_pct < 3.0)

let test_timing_budget_tradeoff () =
  let p = Programs.vec_sum 4000 in
  let tight = Iw_passes.Timing_pass.measure ~check_budget:300 p in
  let loose = Iw_passes.Timing_pass.measure ~check_budget:5000 p in
  check_bool "tight budget -> more checks" true (tight.checks > loose.checks);
  check_bool "tight budget -> smaller gaps" true (tight.max_gap < loose.max_gap)

let test_timing_framework_fires_at_period () =
  let p = Programs.vec_sum 4000 in
  let m = p.build () in
  ignore (Iw_passes.Timing_pass.instrument ~check_budget:500 m);
  let fired_at = ref [] in
  let fw =
    Iw_passes.Timing_pass.Framework.create ~period:10_000 ~fire_cost:50
      ~on_fire:(fun ~now -> fired_at := now :: !fired_at)
  in
  let hooks = Iw_passes.Timing_pass.Framework.hook fw Interp.default_hooks in
  let r = Interp.run ~hooks m p.entry p.args in
  let fires = Iw_passes.Timing_pass.Framework.fires fw in
  check_bool "fired repeatedly" true (fires > 3);
  (* Fires per total time should be close to the period. *)
  let expected = r.cycles / 10_000 in
  check_bool
    (Printf.sprintf "fires %d ~ expected %d" fires expected)
    true
    (abs (fires - expected) <= 1 + (expected / 4));
  (* Consecutive fires are at least a period apart. *)
  let rec gaps_ok = function
    | a :: (b :: _ as rest) -> a - b >= 10_000 && gaps_ok rest
    | _ -> true
  in
  check_bool "fire spacing >= period" true (gaps_ok !fired_at)

let test_polling_services_all_events () =
  let plat = Iw_hw.Platform.small in
  let r =
    Iw_passes.Polling_pass.measure ~poll_budget:1000
      ~completions:[ 5_000; 20_000; 40_000; 60_000 ]
      ~plat (Programs.vec_sum 4000)
  in
  check_int "all serviced" 4 r.serviced;
  check_bool "latency bounded by poll budget" true (r.max_latency <= 1000);
  check_bool "polls executed" true (r.polls_executed > 10)

let test_polling_unserviced_counted_honestly () =
  (* Completions landing after the program ends stay unserviced and
     must be reported as such, not silently dropped. *)
  let plat = Iw_hw.Platform.small in
  let r =
    Iw_passes.Polling_pass.measure ~poll_budget:1000
      ~completions:[ 5_000; 1_000_000_000 ]
      ~plat (Programs.vec_sum 500)
  in
  check_int "one serviced" 1 r.serviced;
  check_int "two offered" 2 r.completions

let test_polling_latency_competitive () =
  let plat = Iw_hw.Platform.small in
  let r =
    Iw_passes.Polling_pass.measure ~poll_budget:1000
      ~completions:(List.init 20 (fun i -> (i + 1) * 3_000))
      ~plat (Programs.vec_sum 4000)
  in
  (* §V-C: the device appears interrupt-driven; mean service latency
     is in the same ballpark as interrupt dispatch itself. *)
  check_bool
    (Printf.sprintf "mean latency %.0f <= 2x interrupt path %d" r.mean_latency
       (2 * r.interrupt_latency))
    true
    (r.mean_latency <= float_of_int (2 * r.interrupt_latency))

let prop_timing_preserves_results =
  QCheck.Test.make ~name:"timing pass preserves program results" ~count:20
    QCheck.(int_range 50 500)
    (fun n ->
      let p = Iw_ir.Programs.vec_sum n in
      let a = Iw_passes.Timing_pass.measure ~check_budget:700 p in
      (* measure itself asserts result equality; also sanity-check gaps. *)
      a.max_gap <= 700)

let prop_carat_preserves_results =
  QCheck.Test.make ~name:"carat pass preserves program results" ~count:20
    QCheck.(pair (int_range 20 200) bool)
    (fun (n, hoist) ->
      let p = Iw_ir.Programs.histogram n in
      let m = p.build () in
      Iw_passes.Carat_pass.instrument
        ~config:{ aggregate = true; hoist }
        m;
      let r = Interp.run m p.entry p.args in
      r.ret = p.expected)

(* ------------------------------------------------------------------ *)
(* Random structured programs: the passes must preserve semantics and
   hold their bounds on program shapes the corpus never exercises. *)

type rprog =
  | Work of int  (* n accumulator updates *)
  | Mem of int  (* n load-modify-store round-trips on the scratch array *)
  | Loop of int * rprog list
  | If of rprog list * rprog list

let rprog_gen =
  QCheck.Gen.(
    sized_size (int_bound 12) @@ fix (fun self n ->
        if n <= 0 then
          oneof [ map (fun k -> Work (1 + k)) (int_bound 12);
                  map (fun k -> Mem (1 + k)) (int_bound 6) ]
        else
          frequency
            [
              (2, map (fun k -> Work (1 + k)) (int_bound 12));
              (2, map (fun k -> Mem (1 + k)) (int_bound 6));
              ( 2,
                map2
                  (fun trips body -> Loop (1 + trips, body))
                  (int_bound 6)
                  (list_size (int_bound 3) (self (n / 2))) );
              ( 1,
                map2
                  (fun a b -> If (a, b))
                  (list_size (int_bound 3) (self (n / 2)))
                  (list_size (int_bound 3) (self (n / 2))) );
            ]))

let rec pp_rprog = function
  | Work n -> Printf.sprintf "W%d" n
  | Mem n -> Printf.sprintf "M%d" n
  | Loop (t, body) ->
      Printf.sprintf "L%d[%s]" t (String.concat ";" (List.map pp_rprog body))
  | If (a, b) ->
      Printf.sprintf "If[%s|%s]"
        (String.concat ";" (List.map pp_rprog a))
        (String.concat ";" (List.map pp_rprog b))

let rprog_arb = QCheck.make ~print:pp_rprog rprog_gen

(* Compile an rprog to IR: one scratch array, one accumulator. *)
let compile_rprog prog =
  let bld = Ir.Build.start ~name:"rand" ~nparams:0 in
  let _entry = Ir.Build.new_block bld in
  let arr = Ir.Build.alloc bld ~size:(Ir.Imm 64) in
  let acc = Ir.Build.mov bld (Ir.Imm 1) in
  let emit_loop trips body_fn =
    let i = Ir.Build.mov bld (Ir.Imm 0) in
    let header = Ir.Build.new_block bld in
    Ir.Build.terminate bld (Ir.Jmp header);
    Ir.Build.set_cursor bld header;
    let c = Ir.Build.bin bld Ir.Lt (Ir.Reg i) (Ir.Imm trips) in
    let bodyb = Ir.Build.new_block bld in
    let exitb = Ir.Build.new_block bld in
    Ir.Build.set_term bld header
      (Ir.Br { cond = Ir.Reg c; if_true = bodyb; if_false = exitb });
    Ir.Build.set_cursor bld bodyb;
    body_fn ();
    Ir.Build.emit bld (Ir.Bin { dst = i; op = Ir.Add; a = Ir.Reg i; b = Ir.Imm 1 });
    Ir.Build.terminate bld (Ir.Jmp header);
    Ir.Build.set_cursor bld exitb
  in
  let rec emit = function
    | Work n ->
        for k = 1 to n do
          Ir.Build.emit bld
            (Ir.Bin { dst = acc; op = Ir.Add; a = Ir.Reg acc; b = Ir.Imm k })
        done
    | Mem n ->
        for _ = 1 to n do
          let idx = Ir.Build.bin bld Ir.Rem (Ir.Reg acc) (Ir.Imm 64) in
          let idx = Ir.Build.bin bld Ir.And (Ir.Reg idx) (Ir.Imm 63) in
          let v = Ir.Build.load bld ~base:(Ir.Reg arr) ~offset:(Ir.Reg idx) in
          let v2 = Ir.Build.bin bld Ir.Add (Ir.Reg v) (Ir.Reg acc) in
          Ir.Build.store bld ~base:(Ir.Reg arr) ~offset:(Ir.Reg idx)
            ~value:(Ir.Reg v2);
          Ir.Build.emit bld
            (Ir.Bin { dst = acc; op = Ir.Add; a = Ir.Reg acc; b = Ir.Reg v2 })
        done
    | Loop (trips, body) -> emit_loop trips (fun () -> List.iter emit body)
    | If (a, b) ->
        let c = Ir.Build.bin bld Ir.Rem (Ir.Reg acc) (Ir.Imm 2) in
        let ab = Ir.Build.new_block bld in
        let bb = Ir.Build.new_block bld in
        let join = Ir.Build.new_block bld in
        Ir.Build.terminate bld
          (Ir.Br { cond = Ir.Reg c; if_true = ab; if_false = bb });
        Ir.Build.set_cursor bld ab;
        List.iter emit a;
        Ir.Build.terminate bld (Ir.Jmp join);
        Ir.Build.set_cursor bld bb;
        List.iter emit b;
        Ir.Build.terminate bld (Ir.Jmp join);
        Ir.Build.set_cursor bld join
  in
  emit prog;
  Ir.Build.terminate bld (Ir.Ret (Some (Ir.Reg acc)));
  let m = Ir.create_module () in
  Ir.add_func m (Ir.Build.finish bld);
  m

let run_rprog ?hooks m = Interp.run ?hooks ~fuel:2_000_000 m "rand" []

let prop_timing_random_programs =
  QCheck.Test.make ~name:"timing pass: random programs, bound + semantics"
    ~count:120 rprog_arb
    (fun prog ->
      let budget = 500 in
      let base = run_rprog (compile_rprog prog) in
      let m = compile_rprog prog in
      ignore (Iw_passes.Timing_pass.instrument ~check_budget:budget m);
      let timed = run_rprog m in
      timed.ret = base.ret && timed.max_callback_gap <= budget)

let prop_carat_random_programs =
  QCheck.Test.make ~name:"carat pass: random programs keep their results"
    ~count:120 rprog_arb
    (fun prog ->
      let base = run_rprog (compile_rprog prog) in
      let m = compile_rprog prog in
      Iw_passes.Carat_pass.instrument m;
      let rt = Iw_carat.Runtime.create () in
      let guarded = run_rprog ~hooks:(Iw_carat.Runtime.hooks rt) m in
      guarded.ret = base.ret && Iw_carat.Runtime.guard_faults rt = 0)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "ir"
    [
      ( "builder+cfg",
        [
          Alcotest.test_case "missing terminator" `Quick
            test_builder_missing_terminator;
          Alcotest.test_case "diamond cfg" `Quick test_cfg_diamond;
          Alcotest.test_case "loop detection" `Quick test_cfg_loop_detection;
          Alcotest.test_case "nested loop depth" `Quick
            test_cfg_nested_loop_depth;
        ] );
      ( "interp",
        [
          Alcotest.test_case "diamond paths" `Quick test_interp_diamond;
          Alcotest.test_case "cost counting" `Quick test_interp_counts_cost;
          Alcotest.test_case "fuel" `Quick test_interp_fuel;
          Alcotest.test_case "div by zero" `Quick test_interp_div_by_zero;
        ] );
      ( "programs",
        [
          Alcotest.test_case "corpus computes correctly" `Quick
            test_programs_compute_correctly;
          Alcotest.test_case "fib" `Quick test_fib_program;
          Alcotest.test_case "memory profile" `Quick test_program_memory_profile;
        ] );
      ( "carat-pass",
        [
          Alcotest.test_case "naive guards all" `Quick
            test_carat_naive_guards_every_access;
          Alcotest.test_case "hoist reduces guards" `Quick
            test_carat_hoist_reduces_dynamic_guards;
          Alcotest.test_case "pointer chase stays guarded" `Quick
            test_carat_pointer_chase_not_hoistable;
          Alcotest.test_case "tracks allocations" `Quick
            test_carat_tracks_allocations;
          q prop_carat_preserves_results;
        ] );
      ( "random-programs",
        [
          QCheck_alcotest.to_alcotest prop_timing_random_programs;
          QCheck_alcotest.to_alcotest prop_carat_random_programs;
        ] );
      ( "timing-pass",
        [
          Alcotest.test_case "gap bounded" `Quick test_timing_gap_bounded;
          Alcotest.test_case "strip-mined loops cheap" `Quick
            test_timing_loops_cheap;
          Alcotest.test_case "budget tradeoff" `Quick test_timing_budget_tradeoff;
          Alcotest.test_case "framework fires at period" `Quick
            test_timing_framework_fires_at_period;
          q prop_timing_preserves_results;
        ] );
      ( "polling-pass",
        [
          Alcotest.test_case "services all events" `Quick
            test_polling_services_all_events;
          Alcotest.test_case "latency competitive" `Quick
            test_polling_latency_competitive;
          Alcotest.test_case "unserviced counted" `Quick
            test_polling_unserviced_counted_honestly;
        ] );
    ]
