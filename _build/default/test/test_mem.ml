(* Tests for the memory substrate: buddy allocator, NUMA zones,
   address-space regimes. *)

open Iw_mem

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Buddy *)

let mk () = Buddy.create ~base:0 ~size:1024 ~min_block:16

let test_buddy_alloc_free () =
  let b = mk () in
  let a = Option.get (Buddy.alloc b 100) in
  check_int "rounded to 128" 128 (Buddy.block_size b a);
  check_int "allocated" 128 (Buddy.allocated_bytes b);
  Buddy.free b a;
  check_int "all free" 0 (Buddy.allocated_bytes b);
  check_int "coalesced back" 1024 (Buddy.largest_free_block b)

let test_buddy_split_and_coalesce () =
  let b = mk () in
  let a1 = Option.get (Buddy.alloc b 16) in
  let a2 = Option.get (Buddy.alloc b 16) in
  check_bool "split produced distinct blocks" true (a1 <> a2);
  (* Largest free block shrinks after splitting. *)
  check_int "largest free" 512 (Buddy.largest_free_block b);
  Buddy.free b a1;
  Buddy.free b a2;
  check_int "full coalesce" 1024 (Buddy.largest_free_block b)

let test_buddy_exhaustion () =
  let b = mk () in
  let blocks = List.init 64 (fun _ -> Buddy.alloc b 16) in
  check_bool "all 64 min blocks allocated" true
    (List.for_all Option.is_some blocks);
  check_bool "65th fails" true (Buddy.alloc b 16 = None);
  List.iter (fun a -> Buddy.free b (Option.get a)) blocks;
  check_int "all back" 1024 (Buddy.largest_free_block b)

let test_buddy_double_free_rejected () =
  let b = mk () in
  let a = Option.get (Buddy.alloc b 32) in
  Buddy.free b a;
  check_bool "double free raises" true
    (try
       Buddy.free b a;
       false
     with Invalid_argument _ -> true)

let test_buddy_bad_create () =
  check_bool "non-pow2 size" true
    (try
       ignore (Buddy.create ~base:0 ~size:1000 ~min_block:16);
       false
     with Invalid_argument _ -> true)

let test_buddy_fragmentation_metric () =
  let b = mk () in
  (* Allocate everything as 16-byte blocks, then free every other one:
     free space is shattered. *)
  let blocks = Array.init 64 (fun _ -> Option.get (Buddy.alloc b 16)) in
  Array.iteri (fun i a -> if i mod 2 = 0 then Buddy.free b a) blocks;
  check_bool "fragmented" true (Buddy.external_fragmentation b > 0.5);
  Array.iteri (fun i a -> if i mod 2 = 1 then Buddy.free b a) blocks;
  Alcotest.(check (float 1e-9)) "defragmented by coalescing" 0.0
    (Buddy.external_fragmentation b)

let prop_buddy_no_overlap =
  QCheck.Test.make ~name:"live blocks never overlap" ~count:100
    QCheck.(list_of_size Gen.(1 -- 40) (int_range 1 200))
    (fun sizes ->
      let b = Buddy.create ~base:0 ~size:4096 ~min_block:16 in
      List.iter (fun n -> ignore (Buddy.alloc b n)) sizes;
      let blocks = Buddy.live_blocks b in
      let rec ok = function
        | (b1, s1) :: ((b2, _) :: _ as rest) -> b1 + s1 <= b2 && ok rest
        | _ -> true
      in
      ok blocks)

let prop_buddy_alloc_free_restores =
  QCheck.Test.make ~name:"alloc-then-free restores the arena" ~count:100
    QCheck.(list_of_size Gen.(1 -- 30) (int_range 1 300))
    (fun sizes ->
      let b = Buddy.create ~base:0 ~size:4096 ~min_block:16 in
      let live =
        List.filter_map (fun n -> Buddy.alloc b n) sizes
      in
      List.iter (Buddy.free b) live;
      Buddy.largest_free_block b = 4096 && Buddy.allocated_bytes b = 0)

(* ------------------------------------------------------------------ *)
(* Numa *)

let test_numa_local_preference () =
  let n = Numa.create ~zones:4 ~zone_size:1024 ~min_block:16 in
  let a = Option.get (Numa.alloc n ~zone:2 64) in
  check_int "lands in zone 2" 2 (Numa.zone_of_addr n a);
  check_int "no fallbacks" 0 (Numa.remote_fallbacks n)

let test_numa_fallback () =
  let n = Numa.create ~zones:2 ~zone_size:64 ~min_block:16 in
  (* Fill zone 0 completely. *)
  for _ = 1 to 4 do
    ignore (Numa.alloc n ~zone:0 16)
  done;
  let a = Option.get (Numa.alloc n ~zone:0 16) in
  check_int "fell back to zone 1" 1 (Numa.zone_of_addr n a);
  check_int "fallback counted" 1 (Numa.remote_fallbacks n)

let test_numa_strict_local_fails () =
  let n = Numa.create ~zones:2 ~zone_size:64 ~min_block:16 in
  for _ = 1 to 4 do
    ignore (Numa.alloc_local n ~zone:0 16)
  done;
  check_bool "strict local exhausted" true (Numa.alloc_local n ~zone:0 16 = None)

let test_numa_free_via_any_zone () =
  let n = Numa.create ~zones:3 ~zone_size:1024 ~min_block:16 in
  let a = Option.get (Numa.alloc n ~zone:1 32) in
  Numa.free n a;
  check_int "freed" 0 (Numa.allocated_bytes n 1)

(* ------------------------------------------------------------------ *)
(* Address spaces *)

let plat = Iw_hw.Platform.small

let profile =
  { Iw_hw.Tlb.footprint_kb = 512 * 1024; accesses = 2_000_000; locality = 0.1 }

let test_identity_no_faults () =
  let asp = Address_space.create plat Address_space.Identity_large in
  check_int "no page faults" 0 (Address_space.page_faults asp profile)

let test_demand_paged_costs_more () =
  let ident = Address_space.create plat Address_space.Identity_large in
  let demand = Address_space.create plat Address_space.Demand_paged in
  check_bool "demand paging strictly more expensive" true
    (Address_space.overhead_cycles demand profile
    > Address_space.overhead_cycles ident profile);
  check_bool "demand faults" true (Address_space.page_faults demand profile > 0)

let test_carat_no_hw_overhead () =
  let carat = Address_space.create plat Address_space.Carat_guarded in
  check_int "carat hardware overhead is zero"
    0
    (Address_space.overhead_cycles carat profile)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "mem"
    [
      ( "buddy",
        [
          Alcotest.test_case "alloc/free" `Quick test_buddy_alloc_free;
          Alcotest.test_case "split/coalesce" `Quick
            test_buddy_split_and_coalesce;
          Alcotest.test_case "exhaustion" `Quick test_buddy_exhaustion;
          Alcotest.test_case "double free" `Quick
            test_buddy_double_free_rejected;
          Alcotest.test_case "bad create" `Quick test_buddy_bad_create;
          Alcotest.test_case "fragmentation metric" `Quick
            test_buddy_fragmentation_metric;
          q prop_buddy_no_overlap;
          q prop_buddy_alloc_free_restores;
        ] );
      ( "numa",
        [
          Alcotest.test_case "local preference" `Quick
            test_numa_local_preference;
          Alcotest.test_case "fallback" `Quick test_numa_fallback;
          Alcotest.test_case "strict local fails" `Quick
            test_numa_strict_local_fails;
          Alcotest.test_case "free via any zone" `Quick
            test_numa_free_via_any_zone;
        ] );
      ( "address-space",
        [
          Alcotest.test_case "identity: no faults" `Quick
            test_identity_no_faults;
          Alcotest.test_case "demand paging costs more" `Quick
            test_demand_paged_costs_more;
          Alcotest.test_case "carat: no hw overhead" `Quick
            test_carat_no_hw_overhead;
        ] );
    ]
