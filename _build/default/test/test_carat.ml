(* Tests for the CARAT runtime: region tracking, protection, data
   movement under a running program, defragmentation, PIK. *)

open Iw_ir
open Iw_carat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let run_with_carat ?(config = Iw_passes.Carat_pass.optimized)
    (p : Programs.program) =
  let m = p.build () in
  Iw_passes.Carat_pass.instrument ~config m;
  let rt = Runtime.create () in
  let r = Interp.run ~hooks:(Runtime.hooks rt) m p.entry p.args in
  (rt, r)

let test_regions_tracked () =
  let rt, r = run_with_carat (Programs.stream_triad 100) in
  check_int "three live regions (a,b,c never freed)" 3 (Runtime.region_count rt);
  check_int "result correct" 693 (Option.get r.ret)

let test_free_untracks () =
  let rt, _ = run_with_carat (Programs.alloc_churn 100) in
  check_int "churned regions all freed" 0 (Runtime.region_count rt)

let test_guard_checks_counted () =
  let rt, r = run_with_carat ~config:Iw_passes.Carat_pass.naive
      (Programs.vec_sum 100)
  in
  check_int "runtime saw every guard" r.guards (Runtime.guard_checks rt);
  check_int "no faults" 0 (Runtime.guard_faults rt)

let wild_access_program =
  (* Allocates one cell, then loads from an address it never owned. *)
  let build () =
    let bld = Ir.Build.start ~name:"wild" ~nparams:0 in
    let _ = Ir.Build.new_block bld in
    let a = Ir.Build.alloc bld ~size:(Ir.Imm 4) in
    Ir.Build.store bld ~base:(Ir.Reg a) ~offset:(Ir.Imm 0) ~value:(Ir.Imm 7);
    let v = Ir.Build.load bld ~base:(Ir.Imm 0xdead0000) ~offset:(Ir.Imm 0) in
    Ir.Build.terminate bld (Ir.Ret (Some (Ir.Reg v)));
    let m = Ir.create_module () in
    Ir.add_func m (Ir.Build.finish bld);
    m
  in
  {
    Programs.name = "wild";
    suite = "micro";
    build;
    entry = "wild";
    args = [];
    expected = None;
    description = "performs an unmapped access";
  }

let test_wild_access_faults () =
  check_bool "protection fault" true
    (try
       ignore (run_with_carat wild_access_program);
       false
     with Interp.Fault msg ->
       check_bool "carat fault" true
         (String.length msg >= 5 && String.sub msg 0 5 = "carat");
       true)

let test_wild_access_unguarded_passes () =
  (* Without instrumentation there is no protection: the wild read
     returns 0 rather than faulting — that is precisely the service
     CARAT adds. *)
  let m = wild_access_program.build () in
  let r = Interp.run m "wild" [] in
  check_int "silently reads zero" 0 (Option.get r.ret)

let test_translation_transparent () =
  (* Move every region mid-run (from a timing callback) and check the
     program still computes the right answer through the forwarding
     map. *)
  let p = Programs.stream_triad 2000 in
  let m = p.build () in
  Iw_passes.Carat_pass.instrument m;
  ignore (Iw_passes.Timing_pass.instrument ~check_budget:2000 m);
  let rt = Runtime.create () in
  let moved = ref 0 in
  let fw =
    Iw_passes.Timing_pass.Framework.create ~period:10_000 ~fire_cost:100
      ~on_fire:(fun ~now:_ -> moved := !moved + Runtime.defragment rt)
  in
  let hooks = Iw_passes.Timing_pass.Framework.hook fw (Runtime.hooks rt) in
  let r = Interp.run ~hooks m p.entry p.args in
  check_int "result survives data movement" (Option.get p.expected)
    (Option.get r.ret);
  check_bool "fires happened" true
    (Iw_passes.Timing_pass.Framework.fires fw > 0)

let test_explicit_move_preserves_data () =
  let p = Programs.vec_sum 300 in
  let m = p.build () in
  Iw_passes.Carat_pass.instrument m;
  ignore (Iw_passes.Timing_pass.instrument ~check_budget:1000 m);
  let rt = Runtime.create () in
  let moves_done = ref false in
  let fw =
    Iw_passes.Timing_pass.Framework.create ~period:50_000 ~fire_cost:100
      ~on_fire:(fun ~now:_ ->
        if not !moves_done then begin
          moves_done := true;
          (* Move every live region explicitly. *)
          List.iter
            (fun (base, _) -> ignore (Runtime.move_region rt ~base))
            (Runtime.regions rt)
        end)
  in
  let hooks = Iw_passes.Timing_pass.Framework.hook fw (Runtime.hooks rt) in
  let r = Interp.run ~hooks m p.entry p.args in
  check_int "sum correct" (Option.get p.expected) (Option.get r.ret)

let test_defrag_reduces_fragmentation () =
  (* Drive the runtime directly: allocate many, free alternating to
     shatter the heap, defragment, check the metric falls. *)
  (* Fill the whole heap with small blocks, then free every other one:
     free space is maximal but shattered into min-size holes. *)
  let rt = Runtime.create ~heap_size:(1 lsl 14) () in
  let hooks = Runtime.hooks rt in
  let malloc n = Option.get (hooks.extern "malloc" [ n ]) in
  let free b = ignore (hooks.extern "free" [ b ]) in
  let blocks = Array.init 1024 (fun _ -> malloc 16) in
  Array.iteri (fun i b -> if i mod 2 = 0 then free b) blocks;
  let before = Runtime.fragmentation rt in
  let moved = Runtime.defragment rt in
  let after = Runtime.fragmentation rt in
  check_bool "was fragmented" true (before > 0.3);
  check_bool (Printf.sprintf "moved %d regions" moved) true (moved > 0);
  check_bool
    (Printf.sprintf "fragmentation fell: %.2f -> %.2f" before after)
    true (after < before /. 2.0)

let test_moved_region_translation () =
  let rt = Runtime.create () in
  let hooks = Runtime.hooks rt in
  let base = Option.get (hooks.extern "malloc" [ 8 ]) in
  let phys_before = hooks.translate base in
  (* Simulate a context so the copy has something to use. *)
  let mem = Hashtbl.create 16 in
  hooks.on_init
    {
      Interp.read = (fun a -> try Hashtbl.find mem a with Not_found -> 0);
      write = (fun a v -> Hashtbl.replace mem a v);
    };
  Hashtbl.replace mem phys_before 99;
  let new_phys = Option.get (Runtime.move_region rt ~base) in
  check_bool "physical address changed" true (new_phys <> phys_before);
  check_int "translate follows the move" new_phys (hooks.translate base);
  check_int "data copied" 99 (Hashtbl.find mem new_phys)

(* ------------------------------------------------------------------ *)
(* Far memory (SecV-C) *)

let fm_run granularity frac =
  Far_memory.simulate ~objects:2_000 ~object_words:24 ~accesses:50_000
    ~zipf:0.9
    (Far_memory.default
       ~local_capacity_words:(int_of_float (frac *. float_of_int (2_000 * 24)))
       granularity)

let test_far_memory_object_beats_page () =
  let page = fm_run (Far_memory.Page 512) 0.25 in
  let obj = fm_run Far_memory.Object 0.25 in
  check_bool
    (Printf.sprintf "object hit %.2f > page hit %.2f" obj.local_hit_rate
       page.local_hit_rate)
    true
    (obj.local_hit_rate > page.local_hit_rate +. 0.05);
  check_bool "object slowdown lower" true
    (obj.slowdown_vs_all_local < page.slowdown_vs_all_local)

let test_far_memory_full_capacity_all_local () =
  let r = fm_run Far_memory.Object 1.0 in
  Alcotest.(check (float 1e-9)) "all local" 1.0 r.local_hit_rate;
  Alcotest.(check (float 1e-9)) "no slowdown" 1.0 r.slowdown_vs_all_local

let test_far_memory_capacity_monotone () =
  let hit f = (fm_run Far_memory.Object f).local_hit_rate in
  check_bool "more capacity, more hits" true (hit 0.5 > hit 0.1)

let test_far_memory_respects_capacity () =
  let r = fm_run Far_memory.Object 0.3 in
  check_bool "resident fraction <= capacity" true (r.local_fraction <= 0.3 +. 1e-6)

(* ------------------------------------------------------------------ *)
(* PIK *)

let test_pik_runs_and_verifies () =
  let p = Pik.load (Programs.vec_sum 100) in
  check_bool "attested" true (Pik.verify p);
  let r = Pik.run p in
  check_int "computes" 4950 (Option.get r.ret)

let test_pik_tamper_detected () =
  let p = Pik.load (Programs.vec_sum 50) in
  Pik.tamper p;
  check_bool "verify fails" false (Pik.verify p);
  check_bool "run refuses" true
    (try
       ignore (Pik.run p);
       false
     with Invalid_argument _ -> true)

let test_pik_processes_isolated () =
  (* Two PIK processes have distinct runtimes; their logical spaces
     are private, so even identical logical addresses are distinct
     regions.  A process faults on an address it never allocated even
     if the other process owns "the same" number. *)
  let p1 = Pik.load (Programs.vec_sum 50) in
  let p2 = Pik.load wild_access_program in
  ignore (Pik.run p1);
  check_bool "wild process faults despite p1's allocations" true
    (try
       ignore (Pik.run p2);
       false
     with Interp.Fault _ -> true)

(* ------------------------------------------------------------------ *)
(* Overhead study *)

let test_overhead_table_shape () =
  let rows = Eval.table () in
  check_int "eleven benchmarks" 11 (List.length rows);
  let opt = Eval.geomean_optimized rows in
  let naive = Eval.geomean_naive rows in
  check_bool
    (Printf.sprintf "optimized geomean %.2f%% < 6%%" opt)
    true (opt < 6.0);
  check_bool
    (Printf.sprintf "naive geomean %.1f%% much larger" naive)
    true (naive > 4.0 *. opt);
  List.iter
    (fun (r : Eval.row) ->
      check_bool
        (Printf.sprintf "%s: optimization never hurts" r.name)
        true
        (r.optimized_pct <= r.naive_pct +. 0.01))
    rows

let () =
  Alcotest.run "carat"
    [
      ( "runtime",
        [
          Alcotest.test_case "regions tracked" `Quick test_regions_tracked;
          Alcotest.test_case "free untracks" `Quick test_free_untracks;
          Alcotest.test_case "guard checks counted" `Quick
            test_guard_checks_counted;
          Alcotest.test_case "wild access faults" `Quick
            test_wild_access_faults;
          Alcotest.test_case "unguarded wild access passes" `Quick
            test_wild_access_unguarded_passes;
        ] );
      ( "movement",
        [
          Alcotest.test_case "translation transparent" `Quick
            test_translation_transparent;
          Alcotest.test_case "explicit move" `Quick
            test_explicit_move_preserves_data;
          Alcotest.test_case "defrag reduces fragmentation" `Quick
            test_defrag_reduces_fragmentation;
          Alcotest.test_case "moved region translation" `Quick
            test_moved_region_translation;
        ] );
      ( "far-memory",
        [
          Alcotest.test_case "object beats page" `Quick
            test_far_memory_object_beats_page;
          Alcotest.test_case "full capacity local" `Quick
            test_far_memory_full_capacity_all_local;
          Alcotest.test_case "capacity monotone" `Quick
            test_far_memory_capacity_monotone;
          Alcotest.test_case "respects capacity" `Quick
            test_far_memory_respects_capacity;
        ] );
      ( "pik",
        [
          Alcotest.test_case "runs and verifies" `Quick
            test_pik_runs_and_verifies;
          Alcotest.test_case "tamper detected" `Quick test_pik_tamper_detected;
          Alcotest.test_case "processes isolated" `Quick
            test_pik_processes_isolated;
        ] );
      ( "overhead",
        [
          Alcotest.test_case "table shape (E7)" `Slow test_overhead_table_shape;
        ] );
    ]
