(** A corpus of IR benchmark programs.

    Surrogates for the suites the paper's compiler work evaluates on
    (NAS, Mantevo, PARSEC — §IV-A; plus microbenchmarks for the
    timing pass of §IV-C).  Each program computes something real and
    checkable; its memory structure (dense streaming, stencils,
    indirect accesses, pointer chasing, allocation churn) determines
    how much instrumentation the passes can hoist.

    Programs are rebuilt on each call because passes mutate modules
    in place. *)

type program = {
  name : string;
  suite : string;  (** "nas" | "mantevo" | "parsec" | "micro" *)
  build : unit -> Ir.modul;
  entry : string;  (** Function to run. *)
  args : int list;
  expected : int option;  (** Known return value, when checkable. *)
  description : string;
}

val stream_triad : int -> program
(** a[i] = b[i] + s*c[i] over [n] elements (STREAM/Mantevo flavor). *)

val vec_sum : int -> program
(** Reduction; returns the sum of 0..n-1 laid out in memory. *)

val mat_mul : int -> program
(** Dense n x n matrix multiply (NAS BT/SP compute flavor). *)

val stencil_1d : int -> program
(** 3-point stencil sweep (Mantevo miniFE flavor). *)

val spmv : int -> program
(** CSR sparse matrix-vector product (NAS CG flavor). *)

val pointer_chase : int -> program
(** Linked-list traversal: bases reloaded each step, nothing to
    hoist (PARSEC dedup flavor). *)

val alloc_churn : int -> program
(** Allocate/initialize/free in a loop: tracking-dominated (PARSEC
    canneal flavor). *)

val histogram : int -> program
(** Data-dependent scatter increments (PARSEC streamcluster
    flavor). *)

val nbody_step : int -> program
(** FP-heavy O(n^2) interaction loop (PARSEC fluidanimate flavor). *)

val mg_smooth : int -> program
(** Three-level multigrid-style smoother (NAS MG flavor). *)

val find_min : int -> program
(** Selection scan with a data-dependent branch per element (PARSEC
    streamcluster flavor). *)

val fib_rec : int -> program
(** Recursive Fibonacci: call-heavy control flow for the timing
    pass. *)

val branchy : int -> program
(** Unbalanced branches: one path much longer than the other, the
    adversarial case for callback placement. *)

val carat_suite : unit -> program list
(** The eleven-benchmark suite used for the CARAT overhead table. *)

val timing_suite : unit -> program list
(** Programs used to validate bounded callback gaps. *)

val by_name : string -> program
(** @raise Not_found *)
