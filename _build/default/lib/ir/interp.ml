exception Fault of string
exception Out_of_fuel

type ctx = { read : int -> int; write : int -> int -> unit }

type hooks = {
  on_init : ctx -> unit;
  on_guard : base:int -> offset:int -> length:int option -> unit;
  on_track_alloc : base:int -> size:int -> unit;
  on_track_free : base:int -> unit;
  on_callback : string -> cycles:int -> unit;
  on_poll : device:int -> cycles:int -> unit;
  translate : int -> int;
  extern : string -> int list -> int option;
}

let default_hooks =
  {
    on_init = (fun _ -> ());
    on_guard = (fun ~base:_ ~offset:_ ~length:_ -> ());
    on_track_alloc = (fun ~base:_ ~size:_ -> ());
    on_track_free = (fun ~base:_ -> ());
    on_callback = (fun _ ~cycles:_ -> ());
    on_poll = (fun ~device:_ ~cycles:_ -> ());
    translate = Fun.id;
    extern = (fun _ _ -> None);
  }

type result = {
  ret : int option;
  cycles : int;
  dyn_insts : int;
  loads : int;
  stores : int;
  allocs : int;
  guards : int;
  tracks : int;
  callbacks : int;
  polls : int;
  max_callback_gap : int;
}

type state = {
  hooks : hooks;
  modul : Ir.modul;
  mem : (int, int) Hashtbl.t;
  mutable depth : int;  (* call depth, guarded *)
  mutable brk : int;  (* bump allocator cursor *)
  mutable fuel : int;
  mutable cycles : int;
  mutable dyn_insts : int;
  mutable loads : int;
  mutable stores : int;
  mutable allocs : int;
  mutable guards : int;
  mutable tracks : int;
  mutable callbacks : int;
  mutable polls : int;
  mutable last_callback : int;
  mutable max_gap : int;
}

let eval_binop op a b =
  match op with
  | Ir.Add -> a + b
  | Ir.Sub -> a - b
  | Ir.Mul -> a * b
  | Ir.Div -> if b = 0 then raise (Fault "division by zero") else a / b
  | Ir.Rem -> if b = 0 then raise (Fault "remainder by zero") else a mod b
  | Ir.And -> a land b
  | Ir.Or -> a lor b
  | Ir.Xor -> a lxor b
  | Ir.Shl -> a lsl b
  | Ir.Shr -> a asr b
  | Ir.Lt -> if a < b then 1 else 0
  | Ir.Le -> if a <= b then 1 else 0
  | Ir.Eq -> if a = b then 1 else 0
  | Ir.Ne -> if a <> b then 1 else 0

let charge st n =
  st.cycles <- st.cycles + n;
  st.dyn_insts <- st.dyn_insts + 1;
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

let max_call_depth = 10_000

let rec call st fname args =
  match Ir.find_func st.modul fname with
  | f ->
      st.depth <- st.depth + 1;
      if st.depth > max_call_depth then raise (Fault "call depth exceeded");
      let r = exec_func st f args in
      st.depth <- st.depth - 1;
      r
  | exception Not_found -> (
      (* Hooks may override even the built-in allocator (CARAT does). *)
      match st.hooks.extern fname args with
      | Some v -> Some v
      | None -> (
          match fname with
          | "malloc" -> (
              match args with
              | [ size ] ->
                  let base = st.brk in
                  st.brk <- st.brk + max 1 size;
                  Some base
              | _ -> raise (Fault "malloc arity"))
          | "free" -> Some 0
          | _ -> raise (Fault (Printf.sprintf "unknown callee %s" fname))))

and exec_func st f args =
  let regs = Array.make (max f.Ir.next_reg 1) 0 in
  List.iteri
    (fun i p -> if i < List.length args then regs.(p) <- List.nth args i)
    f.Ir.params;
  let value = function Ir.Reg r -> regs.(r) | Ir.Imm i -> i in
  let rec run_block bid =
    let b = f.Ir.blocks.(bid) in
    List.iter
      (fun inst ->
        charge st (Cost.inst inst);
        match inst with
        | Ir.Bin { dst; op; a; b } -> regs.(dst) <- eval_binop op (value a) (value b)
        | Ir.Fbin { dst; op; a; b } ->
            regs.(dst) <- eval_binop op (value a) (value b)
        | Ir.Mov { dst; src } -> regs.(dst) <- value src
        | Ir.Load { dst; base; offset } ->
            st.loads <- st.loads + 1;
            let addr = st.hooks.translate (value base + value offset) in
            regs.(dst) <- (try Hashtbl.find st.mem addr with Not_found -> 0)
        | Ir.Store { base; offset; value = v } ->
            st.stores <- st.stores + 1;
            let addr = st.hooks.translate (value base + value offset) in
            Hashtbl.replace st.mem addr (value v)
        | Ir.Alloc { dst; size } -> (
            st.allocs <- st.allocs + 1;
            match call st "malloc" [ value size ] with
            | Some base -> regs.(dst) <- base
            | None -> raise (Fault "malloc returned nothing"))
        | Ir.Free { base } -> ignore (call st "free" [ value base ])
        | Ir.Call { dst; callee; args } -> (
            let vs = List.map value args in
            match (call st callee vs, dst) with
            | Some v, Some d -> regs.(d) <- v
            | _, None -> ()
            | None, Some d -> regs.(d) <- 0)
        | Ir.Guard { base; offset; kind } ->
            st.guards <- st.guards + 1;
            let length =
              match kind with
              | Ir.Guard_addr -> None
              | Ir.Guard_region { length } -> Some (value length)
            in
            st.hooks.on_guard ~base:(value base) ~offset:(value offset) ~length
        | Ir.Track { base; tkind } -> (
            st.tracks <- st.tracks + 1;
            match tkind with
            | `Alloc size ->
                st.hooks.on_track_alloc ~base:(value base) ~size:(value size)
            | `Free -> st.hooks.on_track_free ~base:(value base))
        | Ir.Callback { cb } ->
            st.callbacks <- st.callbacks + 1;
            let gap = st.cycles - st.last_callback in
            if gap > st.max_gap then st.max_gap <- gap;
            st.last_callback <- st.cycles;
            st.hooks.on_callback cb ~cycles:st.cycles
        | Ir.Poll { device } ->
            st.polls <- st.polls + 1;
            st.hooks.on_poll ~device ~cycles:st.cycles)
      b.Ir.insts;
    charge st (Cost.term b.Ir.term);
    match b.Ir.term with
    | Ir.Jmp l -> run_block l
    | Ir.Br { cond; if_true; if_false } ->
        run_block (if value cond <> 0 then if_true else if_false)
    | Ir.Ret None -> None
    | Ir.Ret (Some v) -> Some (value v)
  in
  run_block f.Ir.entry

let run ?(hooks = default_hooks) ?(fuel = 50_000_000) modul name args =
  let st =
    {
      hooks;
      modul;
      mem = Hashtbl.create 1024;
      depth = 0;
      brk = 0x1000;
      fuel;
      cycles = 0;
      dyn_insts = 0;
      loads = 0;
      stores = 0;
      allocs = 0;
      guards = 0;
      tracks = 0;
      callbacks = 0;
      polls = 0;
      last_callback = 0;
      max_gap = 0;
    }
  in
  hooks.on_init
    {
      read = (fun a -> try Hashtbl.find st.mem a with Not_found -> 0);
      write = (fun a v -> Hashtbl.replace st.mem a v);
    };
  let ret = call st name args in
  let final_gap = st.cycles - st.last_callback in
  if final_gap > st.max_gap then st.max_gap <- final_gap;
  {
    ret;
    cycles = st.cycles;
    dyn_insts = st.dyn_insts;
    loads = st.loads;
    stores = st.stores;
    allocs = st.allocs;
    guards = st.guards;
    tracks = st.tracks;
    callbacks = st.callbacks;
    polls = st.polls;
    max_callback_gap = st.max_gap;
  }
