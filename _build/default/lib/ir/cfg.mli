(** Control-flow analyses: successors/predecessors, dominators,
    natural loops, and register def-sites — the facts the CARAT and
    timing passes hoist and place code with. *)

type t

val of_func : Ir.func -> t
(** Build the analysis for the current state of the function.  The
    result is a snapshot: rerun after transforming. *)

val successors : t -> Ir.label -> Ir.label list
val predecessors : t -> Ir.label -> Ir.label list

val reachable : t -> Ir.label list
(** Blocks reachable from the entry, in reverse postorder. *)

val dominates : t -> Ir.label -> Ir.label -> bool
(** [dominates t a b]: every path from entry to [b] passes through
    [a].  Reflexive. *)

val immediate_dominator : t -> Ir.label -> Ir.label option

(** A natural loop discovered from a back edge. *)
type loop = {
  header : Ir.label;
  body : Ir.label list;  (** Includes the header. *)
  latches : Ir.label list;  (** Sources of back edges to this header. *)
  depth : int;  (** Nesting depth; outermost = 1. *)
}

val loops : t -> loop list
(** Natural loops, one per header (back edges to the same header are
    merged), outermost first. *)

val loop_depth : t -> Ir.label -> int
(** Nesting depth of a block (0 = not in any loop). *)

val defs_in : Ir.func -> Ir.label list -> (Ir.reg, unit) Hashtbl.t
(** Registers assigned by any instruction in the given blocks. *)

val operand_invariant : (Ir.reg, unit) Hashtbl.t -> Ir.operand -> bool
(** Is the operand invariant w.r.t. a def-set (immediates always
    are)? *)
