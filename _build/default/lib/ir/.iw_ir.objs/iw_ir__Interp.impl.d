lib/ir/interp.ml: Array Cost Fun Hashtbl Ir List Printf
