lib/ir/ir.ml: Array Format Fun Hashtbl List Printf String
