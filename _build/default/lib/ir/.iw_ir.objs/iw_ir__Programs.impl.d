lib/ir/programs.ml: Build Ir List Option
