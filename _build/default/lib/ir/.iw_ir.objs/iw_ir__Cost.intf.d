lib/ir/cost.mli: Ir
