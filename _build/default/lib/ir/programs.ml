open Ir

type program = {
  name : string;
  suite : string;
  build : unit -> Ir.modul;
  entry : string;
  args : int list;
  expected : int option;
  description : string;
}

(* Counted loop helper: emits init into the cursor block, creates
   header/body/exit blocks, runs [body] with the induction register,
   and leaves the cursor at the exit block.  Nested calls compose. *)
let mk_loop bld ~start ~stop ?(step = Imm 1) body =
  let i = Build.mov bld start in
  let header = Build.new_block bld in
  Build.terminate bld (Jmp header);
  Build.set_cursor bld header;
  let cond = Build.bin bld Lt (Reg i) stop in
  let bodyb = Build.new_block bld in
  let exitb = Build.new_block bld in
  Build.set_term bld header (Br { cond = Reg cond; if_true = bodyb; if_false = exitb });
  Build.set_cursor bld bodyb;
  body i;
  Build.emit bld (Bin { dst = i; op = Add; a = Reg i; b = step });
  Build.terminate bld (Jmp header);
  Build.set_cursor bld exitb

let single_func f =
  let m = create_module () in
  add_func m f;
  m

(* ------------------------------------------------------------------ *)

let stream_triad n =
  let build () =
    let bld = Build.start ~name:"triad" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let a = Build.alloc bld ~size:(Reg nreg) in
    let b = Build.alloc bld ~size:(Reg nreg) in
    let c = Build.alloc bld ~size:(Reg nreg) in
    (* Initialize b[i] = i, c[i] = 2i. *)
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        Build.store bld ~base:(Reg b) ~offset:(Reg i) ~value:(Reg i);
        let two_i = Build.bin bld Mul (Reg i) (Imm 2) in
        Build.store bld ~base:(Reg c) ~offset:(Reg i) ~value:(Reg two_i));
    (* a[i] = b[i] + 3*c[i]. *)
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let bv = Build.load bld ~base:(Reg b) ~offset:(Reg i) in
        let cv = Build.load bld ~base:(Reg c) ~offset:(Reg i) in
        let scaled = Build.fbin bld Mul (Reg cv) (Imm 3) in
        let sum = Build.fbin bld Add (Reg bv) (Reg scaled) in
        Build.store bld ~base:(Reg a) ~offset:(Reg i) ~value:(Reg sum));
    (* Checksum a[n-1] = (n-1) + 6(n-1) = 7(n-1). *)
    let last = Build.bin bld Sub (Reg nreg) (Imm 1) in
    let v = Build.load bld ~base:(Reg a) ~offset:(Reg last) in
    Build.terminate bld (Ret (Some (Reg v)));
    single_func (Build.finish bld)
  in
  {
    name = "stream-triad";
    suite = "mantevo";
    build;
    entry = "triad";
    args = [ n ];
    expected = Some (7 * (n - 1));
    description = "dense streaming triad; all guards hoistable";
  }

let vec_sum n =
  let build () =
    let bld = Build.start ~name:"vecsum" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let a = Build.alloc bld ~size:(Reg nreg) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        Build.store bld ~base:(Reg a) ~offset:(Reg i) ~value:(Reg i));
    let acc = Build.mov bld (Imm 0) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let v = Build.load bld ~base:(Reg a) ~offset:(Reg i) in
        Build.emit bld (Bin { dst = acc; op = Add; a = Reg acc; b = Reg v }));
    Build.terminate bld (Ret (Some (Reg acc)));
    single_func (Build.finish bld)
  in
  {
    name = "vec-sum";
    suite = "micro";
    build;
    entry = "vecsum";
    args = [ n ];
    expected = Some (n * (n - 1) / 2);
    description = "reduction over a dense vector";
  }

let mat_mul n =
  let build () =
    let bld = Build.start ~name:"matmul" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let n2 = Build.bin bld Mul (Reg nreg) (Reg nreg) in
    let a = Build.alloc bld ~size:(Reg n2) in
    let b = Build.alloc bld ~size:(Reg n2) in
    let c = Build.alloc bld ~size:(Reg n2) in
    (* a = identity-ish: a[i][i] = 1; b[i][j] = i + j. *)
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let diag = Build.bin bld Mul (Reg i) (Reg nreg) in
        let diag = Build.bin bld Add (Reg diag) (Reg i) in
        Build.store bld ~base:(Reg a) ~offset:(Reg diag) ~value:(Imm 1);
        mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun j ->
            let row = Build.bin bld Mul (Reg i) (Reg nreg) in
            let idx = Build.bin bld Add (Reg row) (Reg j) in
            let v = Build.bin bld Add (Reg i) (Reg j) in
            Build.store bld ~base:(Reg b) ~offset:(Reg idx) ~value:(Reg v)));
    (* c = a * b; with a = I this copies b. *)
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun j ->
            let acc = Build.mov bld (Imm 0) in
            mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun kk ->
                let arow = Build.bin bld Mul (Reg i) (Reg nreg) in
                let aidx = Build.bin bld Add (Reg arow) (Reg kk) in
                let av = Build.load bld ~base:(Reg a) ~offset:(Reg aidx) in
                let brow = Build.bin bld Mul (Reg kk) (Reg nreg) in
                let bidx = Build.bin bld Add (Reg brow) (Reg j) in
                let bv = Build.load bld ~base:(Reg b) ~offset:(Reg bidx) in
                let prod = Build.fbin bld Mul (Reg av) (Reg bv) in
                Build.emit bld
                  (Fbin { dst = acc; op = Add; a = Reg acc; b = Reg prod }));
            let crow = Build.bin bld Mul (Reg i) (Reg nreg) in
            let cidx = Build.bin bld Add (Reg crow) (Reg j) in
            Build.store bld ~base:(Reg c) ~offset:(Reg cidx) ~value:(Reg acc)));
    (* Checksum c[n-1][n-1] = b[n-1][n-1] = 2(n-1). *)
    let lastrow = Build.bin bld Mul (Reg nreg) (Reg nreg) in
    let last = Build.bin bld Sub (Reg lastrow) (Imm 1) in
    let v = Build.load bld ~base:(Reg c) ~offset:(Reg last) in
    Build.terminate bld (Ret (Some (Reg v)));
    single_func (Build.finish bld)
  in
  {
    name = "mat-mul";
    suite = "nas";
    build;
    entry = "matmul";
    args = [ n ];
    expected = Some (2 * (n - 1));
    description = "dense triple loop; deep nest, hoistable guards";
  }

let stencil_1d n =
  let build () =
    let bld = Build.start ~name:"stencil" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let src = Build.alloc bld ~size:(Reg nreg) in
    let dst = Build.alloc bld ~size:(Reg nreg) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        Build.store bld ~base:(Reg src) ~offset:(Reg i) ~value:(Imm 6));
    let stop = Build.bin bld Sub (Reg nreg) (Imm 1) in
    mk_loop bld ~start:(Imm 1) ~stop:(Reg stop) (fun i ->
        let im1 = Build.bin bld Sub (Reg i) (Imm 1) in
        let ip1 = Build.bin bld Add (Reg i) (Imm 1) in
        let a = Build.load bld ~base:(Reg src) ~offset:(Reg im1) in
        let b = Build.load bld ~base:(Reg src) ~offset:(Reg i) in
        let c = Build.load bld ~base:(Reg src) ~offset:(Reg ip1) in
        let s = Build.fbin bld Add (Reg a) (Reg b) in
        let s = Build.fbin bld Add (Reg s) (Reg c) in
        let avg = Build.fbin bld Div (Reg s) (Imm 3) in
        Build.store bld ~base:(Reg dst) ~offset:(Reg i) ~value:(Reg avg));
    let mid = Build.bin bld Div (Reg nreg) (Imm 2) in
    let v = Build.load bld ~base:(Reg dst) ~offset:(Reg mid) in
    Build.terminate bld (Ret (Some (Reg v)));
    single_func (Build.finish bld)
  in
  {
    name = "stencil-1d";
    suite = "mantevo";
    build;
    entry = "stencil";
    args = [ n ];
    expected = Some 6;
    description = "3-point stencil; three hoistable guarded streams";
  }

let spmv n =
  (* A tridiagonal matrix in CSR form, times the all-ones vector: row
     sums are 3 in the interior. *)
  let build () =
    let bld = Build.start ~name:"spmv" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let nnz_max = Build.bin bld Mul (Reg nreg) (Imm 3) in
    let colidx = Build.alloc bld ~size:(Reg nnz_max) in
    let vals = Build.alloc bld ~size:(Reg nnz_max) in
    let rowptr_size = Build.bin bld Add (Reg nreg) (Imm 1) in
    let rowptr = Build.alloc bld ~size:(Reg rowptr_size) in
    let x = Build.alloc bld ~size:(Reg nreg) in
    let y = Build.alloc bld ~size:(Reg nreg) in
    let nnz = Build.mov bld (Imm 0) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        Build.store bld ~base:(Reg x) ~offset:(Reg i) ~value:(Imm 1);
        Build.store bld ~base:(Reg rowptr) ~offset:(Reg i) ~value:(Reg nnz);
        (* Columns i-1, i, i+1 where valid, all with value 1. *)
        let emit_entry col_op =
          Build.store bld ~base:(Reg colidx) ~offset:(Reg nnz) ~value:col_op;
          Build.store bld ~base:(Reg vals) ~offset:(Reg nnz) ~value:(Imm 1);
          Build.emit bld (Bin { dst = nnz; op = Add; a = Reg nnz; b = Imm 1 })
        in
        (* if i > 0 then entry (i-1) *)
        let has_prev = Build.bin bld Lt (Imm 0) (Reg i) in
        let prevb = Build.new_block bld in
        let afterprev = Build.new_block bld in
        Build.terminate bld
          (Br { cond = Reg has_prev; if_true = prevb; if_false = afterprev });
        Build.set_cursor bld prevb;
        let im1 = Build.bin bld Sub (Reg i) (Imm 1) in
        emit_entry (Reg im1);
        Build.terminate bld (Jmp afterprev);
        Build.set_cursor bld afterprev;
        emit_entry (Reg i);
        let ip1 = Build.bin bld Add (Reg i) (Imm 1) in
        let has_next = Build.bin bld Lt (Reg ip1) (Reg nreg) in
        let nextb = Build.new_block bld in
        let afternext = Build.new_block bld in
        Build.terminate bld
          (Br { cond = Reg has_next; if_true = nextb; if_false = afternext });
        Build.set_cursor bld nextb;
        emit_entry (Reg ip1);
        Build.terminate bld (Jmp afternext);
        Build.set_cursor bld afternext);
    Build.store bld ~base:(Reg rowptr) ~offset:(Reg nreg) ~value:(Reg nnz);
    (* y = A x. *)
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let lo = Build.load bld ~base:(Reg rowptr) ~offset:(Reg i) in
        let ip1 = Build.bin bld Add (Reg i) (Imm 1) in
        let hi = Build.load bld ~base:(Reg rowptr) ~offset:(Reg ip1) in
        let acc = Build.mov bld (Imm 0) in
        mk_loop bld ~start:(Reg lo) ~stop:(Reg hi) (fun kk ->
            let col = Build.load bld ~base:(Reg colidx) ~offset:(Reg kk) in
            let v = Build.load bld ~base:(Reg vals) ~offset:(Reg kk) in
            let xv = Build.load bld ~base:(Reg x) ~offset:(Reg col) in
            let prod = Build.fbin bld Mul (Reg v) (Reg xv) in
            Build.emit bld
              (Fbin { dst = acc; op = Add; a = Reg acc; b = Reg prod }));
        Build.store bld ~base:(Reg y) ~offset:(Reg i) ~value:(Reg acc));
    let mid = Build.bin bld Div (Reg nreg) (Imm 2) in
    let v = Build.load bld ~base:(Reg y) ~offset:(Reg mid) in
    Build.terminate bld (Ret (Some (Reg v)));
    single_func (Build.finish bld)
  in
  {
    name = "spmv";
    suite = "nas";
    build;
    entry = "spmv";
    args = [ n ];
    expected = Some 3;
    description = "CSR sparse matvec; indirect x[col] access stays guarded";
  }

let pointer_chase n =
  (* Build an n-node linked list (node = [value; next]), then walk it
     summing values.  Every step reloads the base pointer: guards
     cannot be hoisted. *)
  let build () =
    let bld = Build.start ~name:"chase" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let head = Build.alloc bld ~size:(Imm 2) in
    Build.store bld ~base:(Reg head) ~offset:(Imm 0) ~value:(Imm 0);
    Build.store bld ~base:(Reg head) ~offset:(Imm 1) ~value:(Imm 0);
    let tail = Build.mov bld (Reg head) in
    mk_loop bld ~start:(Imm 1) ~stop:(Reg nreg) (fun i ->
        let node = Build.alloc bld ~size:(Imm 2) in
        Build.store bld ~base:(Reg node) ~offset:(Imm 0) ~value:(Reg i);
        Build.store bld ~base:(Reg node) ~offset:(Imm 1) ~value:(Imm 0);
        Build.store bld ~base:(Reg tail) ~offset:(Imm 1) ~value:(Reg node);
        Build.emit bld (Mov { dst = tail; src = Reg node }));
    (* Walk. *)
    let acc = Build.mov bld (Imm 0) in
    let cur = Build.mov bld (Reg head) in
    let header = Build.new_block bld in
    Build.terminate bld (Jmp header);
    Build.set_cursor bld header;
    let nonzero = Build.bin bld Ne (Reg cur) (Imm 0) in
    let bodyb = Build.new_block bld in
    let exitb = Build.new_block bld in
    Build.set_term bld header
      (Br { cond = Reg nonzero; if_true = bodyb; if_false = exitb });
    Build.set_cursor bld bodyb;
    let v = Build.load bld ~base:(Reg cur) ~offset:(Imm 0) in
    Build.emit bld (Bin { dst = acc; op = Add; a = Reg acc; b = Reg v });
    let nxt = Build.load bld ~base:(Reg cur) ~offset:(Imm 1) in
    Build.emit bld (Mov { dst = cur; src = Reg nxt });
    Build.terminate bld (Jmp header);
    Build.set_cursor bld exitb;
    Build.terminate bld (Ret (Some (Reg acc)));
    single_func (Build.finish bld)
  in
  {
    name = "pointer-chase";
    suite = "parsec";
    build;
    entry = "chase";
    args = [ n ];
    expected = Some (n * (n - 1) / 2);
    description = "linked-list walk; variant bases defeat hoisting";
  }

let alloc_churn n =
  let build () =
    let bld = Build.start ~name:"churn" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let acc = Build.mov bld (Imm 0) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let node = Build.alloc bld ~size:(Imm 4) in
        Build.store bld ~base:(Reg node) ~offset:(Imm 0) ~value:(Reg i);
        let v = Build.load bld ~base:(Reg node) ~offset:(Imm 0) in
        Build.emit bld (Bin { dst = acc; op = Add; a = Reg acc; b = Reg v });
        Build.free bld ~base:(Reg node));
    Build.terminate bld (Ret (Some (Reg acc)));
    single_func (Build.finish bld)
  in
  {
    name = "alloc-churn";
    suite = "parsec";
    build;
    entry = "churn";
    args = [ n ];
    expected = Some (n * (n - 1) / 2);
    description = "allocation-heavy loop; tracking cost dominates";
  }

let histogram n =
  let build () =
    let bld = Build.start ~name:"hist" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let bins = Build.mov bld (Imm 16) in
    let data = Build.alloc bld ~size:(Reg nreg) in
    let hist = Build.alloc bld ~size:(Reg bins) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let key = Build.bin bld Mul (Reg i) (Imm 7) in
        let key = Build.bin bld Rem (Reg key) (Reg bins) in
        Build.store bld ~base:(Reg data) ~offset:(Reg i) ~value:(Reg key));
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let key = Build.load bld ~base:(Reg data) ~offset:(Reg i) in
        let cur = Build.load bld ~base:(Reg hist) ~offset:(Reg key) in
        let inc = Build.bin bld Add (Reg cur) (Imm 1) in
        Build.store bld ~base:(Reg hist) ~offset:(Reg key) ~value:(Reg inc));
    let total = Build.mov bld (Imm 0) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg bins) (fun i ->
        let v = Build.load bld ~base:(Reg hist) ~offset:(Reg i) in
        Build.emit bld (Bin { dst = total; op = Add; a = Reg total; b = Reg v }));
    Build.terminate bld (Ret (Some (Reg total)));
    single_func (Build.finish bld)
  in
  {
    name = "histogram";
    suite = "parsec";
    build;
    entry = "hist";
    args = [ n ];
    expected = Some n;
    description = "scatter increments; region guards hoist, offsets vary";
  }

let nbody_step n =
  let build () =
    let bld = Build.start ~name:"nbody" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let pos = Build.alloc bld ~size:(Reg nreg) in
    let force = Build.alloc bld ~size:(Reg nreg) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        Build.store bld ~base:(Reg pos) ~offset:(Reg i) ~value:(Reg i));
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let acc = Build.mov bld (Imm 0) in
        mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun j ->
            let pi = Build.load bld ~base:(Reg pos) ~offset:(Reg i) in
            let pj = Build.load bld ~base:(Reg pos) ~offset:(Reg j) in
            let d = Build.fbin bld Sub (Reg pi) (Reg pj) in
            let d2 = Build.fbin bld Mul (Reg d) (Reg d) in
            let d2p1 = Build.fbin bld Add (Reg d2) (Imm 1) in
            let contrib = Build.fbin bld Div (Reg d) (Reg d2p1) in
            Build.emit bld
              (Fbin { dst = acc; op = Add; a = Reg acc; b = Reg contrib }));
        Build.store bld ~base:(Reg force) ~offset:(Reg i) ~value:(Reg acc));
    let v = Build.load bld ~base:(Reg force) ~offset:(Imm 0) in
    Build.terminate bld (Ret (Some (Reg v)));
    single_func (Build.finish bld)
  in
  {
    name = "nbody-step";
    suite = "parsec";
    build;
    entry = "nbody";
    args = [ n ];
    expected = None;
    description = "FP-heavy O(n^2) interactions; guards amortize well";
  }

let fib_rec n =
  let fib_value n =
    let rec go a b i = if i = 0 then a else go b (a + b) (i - 1) in
    go 0 1 n
  in
  let build () =
    let bld = Build.start ~name:"fib" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let base = Build.bin bld Lt (Reg nreg) (Imm 2) in
    let baseb = Build.new_block bld in
    let recb = Build.new_block bld in
    Build.set_term bld 0 (Br { cond = Reg base; if_true = baseb; if_false = recb });
    Build.set_cursor bld baseb;
    Build.terminate bld (Ret (Some (Reg nreg)));
    Build.set_cursor bld recb;
    let nm1 = Build.bin bld Sub (Reg nreg) (Imm 1) in
    let nm2 = Build.bin bld Sub (Reg nreg) (Imm 2) in
    let a = Option.get (Build.call bld ~dst:true "fib" [ Reg nm1 ]) in
    let b = Option.get (Build.call bld ~dst:true "fib" [ Reg nm2 ]) in
    let s = Build.bin bld Add (Reg a) (Reg b) in
    Build.terminate bld (Ret (Some (Reg s)));
    single_func (Build.finish bld)
  in
  {
    name = "fib-rec";
    suite = "micro";
    build;
    entry = "fib";
    args = [ n ];
    expected = Some (fib_value n);
    description = "recursive fib; call-dense control flow";
  }

let branchy n =
  let build () =
    let bld = Build.start ~name:"branchy" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let acc = Build.mov bld (Imm 0) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let sel = Build.bin bld Rem (Reg i) (Imm 8) in
        let is_long = Build.bin bld Eq (Reg sel) (Imm 0) in
        let longb = Build.new_block bld in
        let shortb = Build.new_block bld in
        let joinb = Build.new_block bld in
        Build.terminate bld
          (Br { cond = Reg is_long; if_true = longb; if_false = shortb });
        Build.set_cursor bld longb;
        (* Long path: a chunk of straight-line FP work. *)
        let tmp = Build.mov bld (Reg i) in
        for _ = 1 to 40 do
          Build.emit bld (Fbin { dst = tmp; op = Add; a = Reg tmp; b = Imm 3 })
        done;
        Build.emit bld (Bin { dst = acc; op = Add; a = Reg acc; b = Reg tmp });
        Build.terminate bld (Jmp joinb);
        Build.set_cursor bld shortb;
        Build.emit bld (Bin { dst = acc; op = Add; a = Reg acc; b = Imm 1 });
        Build.terminate bld (Jmp joinb);
        Build.set_cursor bld joinb);
    Build.terminate bld (Ret (Some (Reg acc)));
    single_func (Build.finish bld)
  in
  {
    name = "branchy";
    suite = "micro";
    build;
    entry = "branchy";
    args = [ n ];
    expected = None;
    description = "unbalanced paths; adversarial for callback placement";
  }

let mg_smooth n =
  (* Multigrid-flavored: smooth at three resolutions (NAS MG). *)
  let build () =
    let bld = Build.start ~name:"mg" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let smooth_level size_op =
      let a = Build.alloc bld ~size:size_op in
      mk_loop bld ~start:(Imm 0) ~stop:size_op (fun i ->
          Build.store bld ~base:(Reg a) ~offset:(Reg i) ~value:(Imm 9));
      let stop = Build.bin bld Sub size_op (Imm 1) in
      mk_loop bld ~start:(Imm 1) ~stop:(Reg stop) (fun i ->
          let im1 = Build.bin bld Sub (Reg i) (Imm 1) in
          let ip1 = Build.bin bld Add (Reg i) (Imm 1) in
          let l = Build.load bld ~base:(Reg a) ~offset:(Reg im1) in
          let c = Build.load bld ~base:(Reg a) ~offset:(Reg i) in
          let r = Build.load bld ~base:(Reg a) ~offset:(Reg ip1) in
          let s = Build.fbin bld Add (Reg l) (Reg c) in
          let s = Build.fbin bld Add (Reg s) (Reg r) in
          let v = Build.fbin bld Div (Reg s) (Imm 3) in
          Build.store bld ~base:(Reg a) ~offset:(Reg i) ~value:(Reg v));
      a
    in
    let fine = smooth_level (Reg nreg) in
    let half = Build.bin bld Div (Reg nreg) (Imm 2) in
    let _mid = smooth_level (Reg half) in
    let quarter = Build.bin bld Div (Reg nreg) (Imm 4) in
    let _coarse = smooth_level (Reg quarter) in
    let probe = Build.bin bld Div (Reg nreg) (Imm 2) in
    let v = Build.load bld ~base:(Reg fine) ~offset:(Reg probe) in
    Build.terminate bld (Ret (Some (Reg v)));
    single_func (Build.finish bld)
  in
  {
    name = "mg-smooth";
    suite = "nas";
    build;
    entry = "mg";
    args = [ n ];
    expected = Some 9;
    description = "three-level smoother; hoistable guards at each level";
  }

let find_min n =
  (* Branch-per-element selection scan: data-dependent control flow
     between guarded loads (PARSEC streamcluster flavor). *)
  let build () =
    let bld = Build.start ~name:"findmin" ~nparams:1 in
    let nreg = match Build.params bld with [ p ] -> p | _ -> assert false in
    let _entry = Build.new_block bld in
    let a = Build.alloc bld ~size:(Reg nreg) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        (* a[i] = (i * 37) mod n + 1; minimum is 1 *)
        let v = Build.bin bld Mul (Reg i) (Imm 37) in
        let v = Build.bin bld Rem (Reg v) (Reg nreg) in
        let v = Build.bin bld Add (Reg v) (Imm 1) in
        Build.store bld ~base:(Reg a) ~offset:(Reg i) ~value:(Reg v));
    let best = Build.mov bld (Imm max_int) in
    mk_loop bld ~start:(Imm 0) ~stop:(Reg nreg) (fun i ->
        let v = Build.load bld ~base:(Reg a) ~offset:(Reg i) in
        let lt = Build.bin bld Lt (Reg v) (Reg best) in
        let takeb = Build.new_block bld in
        let joinb = Build.new_block bld in
        Build.terminate bld
          (Br { cond = Reg lt; if_true = takeb; if_false = joinb });
        Build.set_cursor bld takeb;
        Build.emit bld (Mov { dst = best; src = Reg v });
        Build.terminate bld (Jmp joinb);
        Build.set_cursor bld joinb);
    Build.terminate bld (Ret (Some (Reg best)));
    single_func (Build.finish bld)
  in
  {
    name = "find-min";
    suite = "parsec";
    build;
    entry = "findmin";
    args = [ n ];
    expected = Some 1;
    description = "data-dependent branches between guarded loads";
  }

let carat_suite () =
  [
    stream_triad 4000;
    vec_sum 6000;
    mat_mul 24;
    stencil_1d 5000;
    spmv 2500;
    pointer_chase 2500;
    alloc_churn 2000;
    histogram 5000;
    nbody_step 80;
    mg_smooth 4000;
    find_min 6000;
  ]

let timing_suite () =
  [ vec_sum 4000; mat_mul 20; fib_rec 18; branchy 2000; stencil_1d 3000 ]

let by_name name =
  let all =
    carat_suite () @ timing_suite ()
  in
  match List.find_opt (fun p -> p.name = name) all with
  | Some p -> p
  | None -> raise Not_found
