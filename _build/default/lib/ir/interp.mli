(** A counting interpreter for the IR.

    Executes a module's function with a real (hash-table) memory and
    charges every instruction its {!Cost} model price.  Runtime hooks
    observe the injected instructions — guards, tracking calls, timing
    callbacks, device polls — so runtime systems (CARAT, the timer
    framework, blended drivers) can be driven by actual compiled
    code. *)

exception Fault of string
(** Raised by hooks (e.g. a CARAT guard rejecting an access) or the
    interpreter (division by zero, unknown callee). *)

exception Out_of_fuel

type ctx = {
  read : int -> int;  (** Raw physical read (no translation). *)
  write : int -> int -> unit;  (** Raw physical write. *)
}
(** Direct access to the run's memory, handed to hooks at start-up so
    runtimes can move data (CARAT region migration). *)

type hooks = {
  on_init : ctx -> unit;
  on_guard : base:int -> offset:int -> length:int option -> unit;
      (** [length = None] for exact guards, [Some n] for region
          guards.  Raise {!Fault} to reject. *)
  on_track_alloc : base:int -> size:int -> unit;
  on_track_free : base:int -> unit;
  on_callback : string -> cycles:int -> unit;
  on_poll : device:int -> cycles:int -> unit;
  translate : int -> int;
      (** Address translation applied to every load/store (CARAT data
          movement redirects accesses here).  Default: identity. *)
  extern : string -> int list -> int option;
      (** Callee resolution for functions absent from the module. *)
}

val default_hooks : hooks

type result = {
  ret : int option;
  cycles : int;
  dyn_insts : int;
  loads : int;
  stores : int;
  allocs : int;
  guards : int;
  tracks : int;
  callbacks : int;
  polls : int;
  max_callback_gap : int;
      (** Longest stretch of cycles between consecutive callbacks
          (including start-to-first and last-to-end); equals [cycles]
          when no callback executed. *)
}

val run :
  ?hooks:hooks -> ?fuel:int -> Ir.modul -> string -> int list -> result
(** Run [name(args)].  [fuel] bounds dynamic instructions (default
    50 million).  Memory is shared across the call tree and starts
    zeroed; allocation is a bump allocator from address 0x1000 unless
    [hooks.extern] overrides the ["malloc"]/["free"] names. *)
