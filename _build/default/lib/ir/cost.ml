let call_overhead = 12
let guard_addr = 3
let guard_region = 6
let track = 8

(* An injected timing/polling site is a counter bump + compare on the
   common path; the framework call it guards fires only when due. *)
let callback = 2
let poll = 2

let inst = function
  | Ir.Bin _ | Ir.Mov _ -> 1
  | Ir.Fbin _ -> 3
  | Ir.Load _ | Ir.Store _ -> 4
  | Ir.Alloc _ -> 40
  | Ir.Free _ -> 25
  | Ir.Call _ -> call_overhead
  | Ir.Guard { kind = Ir.Guard_addr; _ } -> guard_addr
  | Ir.Guard { kind = Ir.Guard_region _; _ } -> guard_region
  | Ir.Track _ -> track
  | Ir.Callback _ -> callback
  | Ir.Poll _ -> poll

let term = function Ir.Jmp _ -> 1 | Ir.Br _ -> 1 | Ir.Ret _ -> 2

let block b =
  List.fold_left (fun acc i -> acc + inst i) (term b.Ir.term) b.Ir.insts
