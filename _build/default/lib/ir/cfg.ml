type t = {
  f : Ir.func;
  succ : Ir.label list array;
  pred : Ir.label list array;
  rpo : Ir.label list;  (* reverse postorder over reachable blocks *)
  idom : int array;  (* -1 = unreachable or entry *)
}

let successors_of_term = function
  | Ir.Jmp l -> [ l ]
  | Ir.Br { if_true; if_false; _ } ->
      if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Ir.Ret _ -> []

let compute_rpo f succ =
  let n = Array.length f.Ir.blocks in
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs b =
    if not visited.(b) then begin
      visited.(b) <- true;
      List.iter dfs succ.(b);
      order := b :: !order
    end
  in
  dfs f.Ir.entry;
  !order

(* Cooper-Harvey-Kennedy iterative dominators on reverse postorder. *)
let compute_idom f succ pred rpo =
  ignore succ;
  let n = Array.length f.Ir.blocks in
  let rpo_index = Array.make n (-1) in
  List.iteri (fun i b -> rpo_index.(b) <- i) rpo;
  let idom = Array.make n (-1) in
  idom.(f.Ir.entry) <- f.Ir.entry;
  let rec intersect a b =
    if a = b then a
    else if rpo_index.(a) > rpo_index.(b) then intersect idom.(a) b
    else intersect a idom.(b)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> f.Ir.entry then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) <> -1) pred.(b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      rpo
  done;
  idom

let of_func f =
  let n = Array.length f.Ir.blocks in
  let succ = Array.make n [] and pred = Array.make n [] in
  Array.iter
    (fun b ->
      let ss = successors_of_term b.Ir.term in
      succ.(b.Ir.bid) <- ss;
      List.iter (fun s -> pred.(s) <- b.Ir.bid :: pred.(s)) ss)
    f.Ir.blocks;
  Array.iteri (fun i l -> pred.(i) <- List.rev l) pred;
  let rpo = compute_rpo f succ in
  let idom = compute_idom f succ pred rpo in
  { f; succ; pred; rpo; idom }

let successors t l = t.succ.(l)
let predecessors t l = t.pred.(l)
let reachable t = t.rpo

let dominates t a b =
  if t.idom.(b) = -1 then false
  else begin
    let rec walk x = if x = a then true else if x = t.f.Ir.entry then a = x else walk t.idom.(x) in
    walk b
  end

let immediate_dominator t b =
  if b = t.f.Ir.entry || t.idom.(b) = -1 then None else Some t.idom.(b)

type loop = {
  header : Ir.label;
  body : Ir.label list;
  latches : Ir.label list;
  depth : int;
}

let loops t =
  (* Back edge: n -> h where h dominates n. *)
  let back_edges = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun h -> if dominates t h n then back_edges := (n, h) :: !back_edges)
        t.succ.(n))
    t.rpo;
  (* Group by header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (n, h) ->
      let cur = try Hashtbl.find by_header h with Not_found -> [] in
      Hashtbl.replace by_header h (n :: cur))
    !back_edges;
  (* Natural loop body: header plus everything that reaches a latch
     without passing through the header. *)
  let body_of header latches =
    let in_loop = Hashtbl.create 8 in
    Hashtbl.replace in_loop header ();
    let rec add n =
      if not (Hashtbl.mem in_loop n) then begin
        Hashtbl.replace in_loop n ();
        List.iter add t.pred.(n)
      end
    in
    List.iter add latches;
    Hashtbl.fold (fun b () acc -> b :: acc) in_loop [] |> List.sort compare
  in
  let raw =
    Hashtbl.fold
      (fun header latches acc ->
        (header, latches, body_of header latches) :: acc)
      by_header []
  in
  (* Depth: number of loop bodies a header belongs to. *)
  let depth_of header =
    List.length
      (List.filter (fun (_, _, body) -> List.mem header body) raw)
  in
  raw
  |> List.map (fun (header, latches, body) ->
         { header; body; latches; depth = depth_of header })
  |> List.sort (fun a b -> compare a.depth b.depth)

let loop_depth t b =
  List.fold_left
    (fun acc l -> if List.mem b l.body then max acc l.depth else acc)
    0 (loops t)

let defs_of_inst = function
  | Ir.Bin { dst; _ }
  | Ir.Fbin { dst; _ }
  | Ir.Mov { dst; _ }
  | Ir.Load { dst; _ }
  | Ir.Alloc { dst; _ } ->
      Some dst
  | Ir.Call { dst; _ } -> dst
  | Ir.Store _ | Ir.Free _ | Ir.Guard _ | Ir.Track _ | Ir.Callback _
  | Ir.Poll _ ->
      None

let defs_in f labels =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun l ->
      List.iter
        (fun i ->
          match defs_of_inst i with
          | Some d -> Hashtbl.replace tbl d ()
          | None -> ())
        f.Ir.blocks.(l).Ir.insts)
    labels;
  tbl

let operand_invariant defs = function
  | Ir.Imm _ -> true
  | Ir.Reg r -> not (Hashtbl.mem defs r)
