(** The cycle cost model shared by the static analyses and the
    interpreter.  Call costs cover only the call overhead; callee
    bodies are accounted dynamically. *)

val inst : Ir.inst -> int
val term : Ir.terminator -> int
val block : Ir.block -> int
(** Instructions + terminator. *)

val call_overhead : int
val guard_addr : int
val guard_region : int
val track : int

val callback : int
(** Cost of an injected timing *check* (counter + compare); the
    framework call it guards fires only when the period elapses and
    is costed by the runtime that owns the hook. *)

val poll : int
