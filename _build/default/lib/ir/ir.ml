type reg = int
type label = int

type operand = Reg of reg | Imm of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Eq
  | Ne

type guard_kind = Guard_addr | Guard_region of { length : operand }

type inst =
  | Bin of { dst : reg; op : binop; a : operand; b : operand }
  | Fbin of { dst : reg; op : binop; a : operand; b : operand }
  | Mov of { dst : reg; src : operand }
  | Load of { dst : reg; base : operand; offset : operand }
  | Store of { base : operand; offset : operand; value : operand }
  | Alloc of { dst : reg; size : operand }
  | Free of { base : operand }
  | Call of { dst : reg option; callee : string; args : operand list }
  | Guard of { base : operand; offset : operand; kind : guard_kind }
  | Track of { base : operand; tkind : [ `Alloc of operand | `Free ] }
  | Callback of { cb : string }
  | Poll of { device : int }

type terminator =
  | Jmp of label
  | Br of { cond : operand; if_true : label; if_false : label }
  | Ret of operand option

type block = {
  bid : label;
  mutable insts : inst list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : reg list;
  mutable blocks : block array;
  entry : label;
  mutable next_reg : reg;
}

type modul = { funcs : (string, func) Hashtbl.t }

let create_module () = { funcs = Hashtbl.create 16 }

let add_func m f =
  if Hashtbl.mem m.funcs f.fname then
    invalid_arg (Printf.sprintf "Ir.add_func: duplicate %s" f.fname);
  Hashtbl.add m.funcs f.fname f

let find_func m name = Hashtbl.find m.funcs name

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

let block f l = f.blocks.(l)
let block_count f = Array.length f.blocks

let instruction_count f =
  Array.fold_left (fun acc b -> acc + List.length b.insts) 0 f.blocks

let count_matching f pred =
  Array.fold_left
    (fun acc b -> acc + List.length (List.filter pred b.insts))
    0 f.blocks

(* ------------------------------------------------------------------ *)
(* Printing *)

let pp_operand ppf = function
  | Reg r -> Format.fprintf ppf "%%%d" r
  | Imm i -> Format.fprintf ppf "%d" i

let binop_name = function
  | Add -> "add"
  | Sub -> "sub"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Shl -> "shl"
  | Shr -> "shr"
  | Lt -> "lt"
  | Le -> "le"
  | Eq -> "eq"
  | Ne -> "ne"

let pp_inst ppf = function
  | Bin { dst; op; a; b } ->
      Format.fprintf ppf "%%%d = %s %a, %a" dst (binop_name op) pp_operand a
        pp_operand b
  | Fbin { dst; op; a; b } ->
      Format.fprintf ppf "%%%d = f%s %a, %a" dst (binop_name op) pp_operand a
        pp_operand b
  | Mov { dst; src } -> Format.fprintf ppf "%%%d = mov %a" dst pp_operand src
  | Load { dst; base; offset } ->
      Format.fprintf ppf "%%%d = load %a[%a]" dst pp_operand base pp_operand
        offset
  | Store { base; offset; value } ->
      Format.fprintf ppf "store %a[%a] <- %a" pp_operand base pp_operand offset
        pp_operand value
  | Alloc { dst; size } ->
      Format.fprintf ppf "%%%d = alloc %a" dst pp_operand size
  | Free { base } -> Format.fprintf ppf "free %a" pp_operand base
  | Call { dst; callee; args } ->
      (match dst with
      | Some d -> Format.fprintf ppf "%%%d = call %s(" d callee
      | None -> Format.fprintf ppf "call %s(" callee);
      List.iteri
        (fun i a ->
          if i > 0 then Format.fprintf ppf ", ";
          pp_operand ppf a)
        args;
      Format.fprintf ppf ")"
  | Guard { base; offset; kind } -> (
      match kind with
      | Guard_addr ->
          Format.fprintf ppf "guard %a[%a]" pp_operand base pp_operand offset
      | Guard_region { length } ->
          Format.fprintf ppf "guard.region %a len %a (off %a)" pp_operand base
            pp_operand length pp_operand offset)
  | Track { base; tkind } -> (
      match tkind with
      | `Alloc size ->
          Format.fprintf ppf "track.alloc %a size %a" pp_operand base
            pp_operand size
      | `Free -> Format.fprintf ppf "track.free %a" pp_operand base)
  | Callback { cb } -> Format.fprintf ppf "callback %s" cb
  | Poll { device } -> Format.fprintf ppf "poll dev%d" device

let pp_term ppf = function
  | Jmp l -> Format.fprintf ppf "jmp L%d" l
  | Br { cond; if_true; if_false } ->
      Format.fprintf ppf "br %a, L%d, L%d" pp_operand cond if_true if_false
  | Ret None -> Format.fprintf ppf "ret"
  | Ret (Some v) -> Format.fprintf ppf "ret %a" pp_operand v

let pp_func ppf f =
  Format.fprintf ppf "@[<v>func %s(%s):@," f.fname
    (String.concat ", " (List.map (Printf.sprintf "%%%d") f.params));
  Array.iter
    (fun b ->
      Format.fprintf ppf "L%d:@," b.bid;
      List.iter (fun i -> Format.fprintf ppf "  %a@," pp_inst i) b.insts;
      Format.fprintf ppf "  %a@," pp_term b.term)
    f.blocks;
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Builder *)

module Build = struct
  (* Blocks under construction accumulate instructions in reverse. *)
  type proto = {
    pid : label;
    mutable rev_insts : inst list;
    mutable pterm : terminator option;
  }

  type t = {
    name : string;
    bparams : reg list;
    mutable protos : proto list;  (* reverse order of creation *)
    mutable nblocks : int;
    mutable nregs : int;
    mutable cursor : proto option;
  }

  let start ~name ~nparams =
    let params = List.init nparams Fun.id in
    {
      name;
      bparams = params;
      protos = [];
      nblocks = 0;
      nregs = nparams;
      cursor = None;
    }

  let params t = t.bparams

  let new_block t =
    let p = { pid = t.nblocks; rev_insts = []; pterm = None } in
    t.nblocks <- t.nblocks + 1;
    t.protos <- p :: t.protos;
    if t.cursor = None then t.cursor <- Some p;
    p.pid

  let find_proto t l =
    match List.find_opt (fun p -> p.pid = l) t.protos with
    | Some p -> p
    | None -> invalid_arg (Printf.sprintf "Build: no block L%d" l)

  let set_cursor t l = t.cursor <- Some (find_proto t l)

  let cursor t =
    match t.cursor with
    | Some p -> p
    | None -> invalid_arg "Build: no cursor block"

  let emit t i =
    let p = cursor t in
    p.rev_insts <- i :: p.rev_insts

  let fresh t =
    let r = t.nregs in
    t.nregs <- r + 1;
    r

  let bin t op a b =
    let dst = fresh t in
    emit t (Bin { dst; op; a; b });
    dst

  let fbin t op a b =
    let dst = fresh t in
    emit t (Fbin { dst; op; a; b });
    dst

  let mov t src =
    let dst = fresh t in
    emit t (Mov { dst; src });
    dst

  let load t ~base ~offset =
    let dst = fresh t in
    emit t (Load { dst; base; offset });
    dst

  let store t ~base ~offset ~value = emit t (Store { base; offset; value })

  let alloc t ~size =
    let dst = fresh t in
    emit t (Alloc { dst; size });
    dst

  let free t ~base = emit t (Free { base })

  let call t ?(dst = false) callee args =
    if dst then begin
      let d = fresh t in
      emit t (Call { dst = Some d; callee; args });
      Some d
    end
    else begin
      emit t (Call { dst = None; callee; args });
      None
    end

  let set_term t l term = (find_proto t l).pterm <- Some term

  let terminate t term = (cursor t).pterm <- Some term

  let finish t =
    let protos = List.rev t.protos in
    let blocks =
      protos
      |> List.map (fun p ->
             match p.pterm with
             | None ->
                 invalid_arg
                   (Printf.sprintf "Build.finish: block L%d of %s lacks a terminator"
                      p.pid t.name)
             | Some term ->
                 { bid = p.pid; insts = List.rev p.rev_insts; term })
      |> Array.of_list
    in
    if Array.length blocks = 0 then
      invalid_arg "Build.finish: function has no blocks";
    {
      fname = t.name;
      params = t.bparams;
      blocks;
      entry = 0;
      next_reg = t.nregs;
    }
end
