(** A miniature LLVM-like intermediate representation.

    Just enough IR to host the paper's compiler transformations for
    real: functions of basic blocks over mutable virtual registers,
    with explicit base+offset addressing so region-based reasoning
    (CARAT, §IV-A) has something to reason about, and instruction
    kinds for the code the passes inject (guards, tracking calls,
    timing callbacks, device polls).

    There is deliberately no SSA: registers are mutable variables, a
    register is loop-invariant iff it is never assigned inside the
    loop.  That keeps the analyses honest but small. *)

type reg = int
type label = int

type operand = Reg of reg | Imm of int

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And
  | Or
  | Xor
  | Shl
  | Shr
  | Lt
  | Le
  | Eq
  | Ne

type guard_kind =
  | Guard_addr  (** Exact per-access check: is base+offset mapped? *)
  | Guard_region of { length : operand }
      (** Hoisted range check: is [base, base+length) mapped? *)

type inst =
  | Bin of { dst : reg; op : binop; a : operand; b : operand }
  | Fbin of { dst : reg; op : binop; a : operand; b : operand }
      (** Floating-point cost class (values are still ints). *)
  | Mov of { dst : reg; src : operand }
  | Load of { dst : reg; base : operand; offset : operand }
  | Store of { base : operand; offset : operand; value : operand }
  | Alloc of { dst : reg; size : operand }
      (** Heap allocation; yields the region base address. *)
  | Free of { base : operand }
  | Call of { dst : reg option; callee : string; args : operand list }
  | Guard of { base : operand; offset : operand; kind : guard_kind }
      (** CARAT-injected protection check. *)
  | Track of { base : operand; tkind : [ `Alloc of operand | `Free ] }
      (** CARAT-injected allocation tracking ([`Alloc size]). *)
  | Callback of { cb : string }
      (** Compiler-timing-injected call into the timer framework. *)
  | Poll of { device : int }  (** Blending-injected device poll. *)

type terminator =
  | Jmp of label
  | Br of { cond : operand; if_true : label; if_false : label }
  | Ret of operand option

type block = {
  bid : label;
  mutable insts : inst list;
  mutable term : terminator;
}

type func = {
  fname : string;
  params : reg list;
  mutable blocks : block array;  (** Indexed by [bid]. *)
  entry : label;
  mutable next_reg : reg;
}

type modul = { funcs : (string, func) Hashtbl.t }

val create_module : unit -> modul
val add_func : modul -> func -> unit
val find_func : modul -> string -> func
(** @raise Not_found *)

val fresh_reg : func -> reg
val block : func -> label -> block
val block_count : func -> int

val instruction_count : func -> int
(** Static instruction count (excluding terminators). *)

val count_matching : func -> (inst -> bool) -> int

val pp_inst : Format.formatter -> inst -> unit
val pp_func : Format.formatter -> func -> unit

(** Imperative function builder: blocks are created, then filled via a
    cursor. *)
module Build : sig
  type t

  val start : name:string -> nparams:int -> t
  val params : t -> reg list
  val new_block : t -> label
  val set_cursor : t -> label -> unit
  val emit : t -> inst -> unit

  val bin : t -> binop -> operand -> operand -> reg
  (** Emit into a fresh destination register. *)

  val fbin : t -> binop -> operand -> operand -> reg
  val mov : t -> operand -> reg
  val load : t -> base:operand -> offset:operand -> reg
  val store : t -> base:operand -> offset:operand -> value:operand -> unit
  val alloc : t -> size:operand -> reg
  val free : t -> base:operand -> unit
  val call : t -> ?dst:bool -> string -> operand list -> reg option
  val set_term : t -> label -> terminator -> unit
  val terminate : t -> terminator -> unit
  (** Terminate the cursor block. *)

  val finish : t -> func
  (** @raise Invalid_argument if any block lacks a terminator. *)
end
