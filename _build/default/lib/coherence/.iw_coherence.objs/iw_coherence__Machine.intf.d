lib/coherence/machine.mli:
