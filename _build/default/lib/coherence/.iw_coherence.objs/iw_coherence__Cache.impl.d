lib/coherence/cache.ml: Array
