lib/coherence/cache.mli:
