lib/coherence/mpl.ml: Array List Machine Printf
