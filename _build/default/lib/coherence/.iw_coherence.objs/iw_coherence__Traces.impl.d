lib/coherence/traces.ml: Array Hashtbl Iw_engine List Machine Rng
