lib/coherence/traces.mli: Machine
