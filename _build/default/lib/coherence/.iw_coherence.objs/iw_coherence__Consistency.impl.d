lib/coherence/consistency.ml: List
