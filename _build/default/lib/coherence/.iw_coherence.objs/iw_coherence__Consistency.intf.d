lib/coherence/consistency.mli:
