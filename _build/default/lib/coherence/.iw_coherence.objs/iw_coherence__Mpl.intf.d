lib/coherence/mpl.mli: Machine
