lib/coherence/machine.ml: Array Cache Hashtbl List
