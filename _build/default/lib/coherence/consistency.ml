type model = Tso | Selective

type params = { store_drain_cycles : int; buffer_slots : int }

let default_params = { store_drain_cycles = 40; buffer_slots = 56 }

type result = {
  model : model;
  iterations : int;
  total_cycles : int;
  fence_stalls : int;
  store_stalls : int;
}

(* The store buffer holds (drain_time, ordered?) entries. *)
type sb = { mutable entries : (int * bool) list (* oldest first *) }

let producer_consumer ?(params = default_params) ~iterations ~data_stores
    ~unrelated_stores model =
  if iterations <= 0 then invalid_arg "Consistency: iterations <= 0";
  let sb = { entries = [] } in
  let now = ref 0 in
  let fence_stalls = ref 0 and store_stalls = ref 0 in
  let drain_completed () =
    sb.entries <- List.filter (fun (t, _) -> t > !now) sb.entries
  in
  let issue_store ~ordered =
    drain_completed ();
    (* A full buffer stalls the core until the oldest entry drains. *)
    (if List.length sb.entries >= params.buffer_slots then
       match sb.entries with
       | (t, _) :: _ ->
           store_stalls := !store_stalls + (t - !now);
           now := t;
           drain_completed ()
       | [] -> ());
    (* The store itself issues in one cycle; it drains later.  Drain
       is FIFO: an entry completes store_drain after its predecessor. *)
    let tail_free =
      match List.rev sb.entries with (t, _) :: _ -> t | [] -> !now
    in
    let done_at = max !now tail_free + params.store_drain_cycles in
    sb.entries <- sb.entries @ [ (done_at, ordered) ];
    incr now
  in
  let fence () =
    drain_completed ();
    let must_wait =
      match model with
      | Tso ->
          (* Order everything: wait for the whole buffer. *)
          List.fold_left (fun acc (t, _) -> max acc t) !now sb.entries
      | Selective ->
          (* Order only the flagged data's stores. *)
          List.fold_left
            (fun acc (t, ordered) -> if ordered then max acc t else acc)
            !now sb.entries
    in
    fence_stalls := !fence_stalls + (must_wait - !now);
    now := must_wait;
    (* Ordered entries have drained by construction. *)
    drain_completed ()
  in
  for _ = 1 to iterations do
    (* The paper's scenario: the producer writes its data with room to
       drain, then does a burst of unrelated work that also stores,
       then publishes.  The fence before the flag only *needs* to
       order the data stores, which have long drained - but TSO waits
       for the whole unrelated burst too. *)
    for _ = 1 to data_stores do
      issue_store ~ordered:true;
      now := !now + 50
    done;
    now := !now + 400;
    (* a tight unrelated burst right before publication *)
    for _ = 1 to unrelated_stores do
      issue_store ~ordered:false;
      now := !now + 2
    done;
    fence ();
    issue_store ~ordered:true (* the flag itself *);
    (* consumer-side / next-item compute lets the buffer drain *)
    now := !now + 2_500
  done;
  {
    model;
    iterations;
    total_cycles = !now;
    fence_stalls = !fence_stalls;
    store_stalls = !store_stalls;
  }

let speedup ?params ~iterations ~data_stores ~unrelated_stores () =
  let t = producer_consumer ?params ~iterations ~data_stores ~unrelated_stores in
  float_of_int (t Tso).total_cycles /. float_of_int (t Selective).total_cycles
