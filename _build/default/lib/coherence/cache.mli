(** A private per-core cache: set-associative, LRU, with MESI line
    states.  One level stands in for the L1/L2 hierarchy of the §V-B
    evaluation machine; capacity is configurable per platform. *)

type state = Modified | Exclusive | Shared_state | Invalid

type t

val create : size_kb:int -> ways:int -> line_bytes:int -> t

val line_of_addr : t -> int -> int
(** Line (block) number containing a byte address. *)

val lookup : t -> int -> state
(** State of the line containing this address ([Invalid] if absent). *)

val install : t -> int -> state -> (int * state) option
(** Install the line containing [addr] with the given state; LRU
    within the set.  Returns the evicted [(line, state)] if a valid
    line was displaced. *)

val set_state : t -> int -> state -> unit
(** Change the state of a resident line (no-op if absent). *)

val invalidate : t -> int -> unit
(** Drop the line containing [addr]. *)

val resident : t -> int -> bool

val lines : t -> int
(** Total capacity in lines. *)

val fold : t -> init:'a -> f:('a -> int -> state -> 'a) -> 'a
(** Fold over resident (non-invalid) lines as (line, state). *)
