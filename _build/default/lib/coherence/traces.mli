(** PBBS-flavored sharing-pattern traces and the Figure 7 experiment.

    Each benchmark surrogate is characterized by how an MPL-compiled,
    disentanglement-aware run classifies its accesses: mostly
    core-private heap data (fork-join tasks mutate their own
    subheaps), some immutable shared input, and a residue of truly
    shared mutable data.  The trace generator produces deterministic
    per-core access streams with those proportions and a working-set
    / locality model; the same streams are then replayed against the
    baseline MESI machine and the selectively-deactivated one. *)

type mix = {
  private_frac : float;  (** Fraction of accesses to core-private data. *)
  ro_frac : float;  (** Fraction to immutable shared data. *)
  private_ws_kb : int;  (** Per-core private working set. *)
  ro_kb : int;
  shared_kb : int;  (** Truly shared mutable region (small = contended). *)
  write_frac_private : float;
  write_frac_shared : float;
  locality : float;  (** Probability an access stays in the hot set. *)
}

type bench = { bench_name : string; mix : mix; accesses_per_core : int }

val samplesort : bench
val bfs : bench
val mis : bench
val convex_hull : bench
val remove_duplicates : bench
val suffix_array : bench
val nbody : bench
val word_counts : bench

val pbbs_suite : bench list

type row = {
  bench : string;
  base_cycles : int;
  deact_cycles : int;
  speedup : float;
  base_energy : float;
  deact_energy : float;
  energy_reduction_pct : float;
  base_invalidations : int;
  deact_invalidations : int;
}

val run_bench :
  ?seed:int -> params:Machine.params -> Machine.deactivation -> bench -> Machine.t
(** Replay the benchmark's streams on a fresh machine. *)

val fig7 :
  ?seed:int ->
  ?deactivation:Machine.deactivation ->
  params:Machine.params ->
  unit ->
  row list
(** Baseline vs deactivated, whole suite. *)

val average_speedup : row list -> float
val average_energy_reduction : row list -> float
