(** Memory-consistency cost model: total-order vs selective fencing
    (§V-B's ordering argument).

    "A fence orders writes that produce data before setting the done
    flag, but it also orders all other writes the thread issued, even
    if they are unrelated to the intended use of the fence."  This
    module makes that sentence measurable: a per-core store buffer
    drains writes at a fixed rate; a fence stalls until the stores it
    must order have drained.  Under [Tso] that is {e every} pending
    store; under [Selective] (the language-informed model) only the
    stores to the flagged data set.

    The producer/consumer workload interleaves data stores with
    unrelated (private) stores and publishes via a flag; the fence
    stall difference is pure waste eliminated by crossing layers. *)

type model = Tso | Selective

type params = {
  store_drain_cycles : int;  (** Cycles for one store to leave the buffer. *)
  buffer_slots : int;  (** Capacity; a full buffer stalls stores too. *)
}

val default_params : params

type result = {
  model : model;
  iterations : int;
  total_cycles : int;
  fence_stalls : int;  (** Cycles spent stalled at fences. *)
  store_stalls : int;  (** Cycles stalled on a full buffer. *)
}

val producer_consumer :
  ?params:params ->
  iterations:int ->
  data_stores:int ->
  unrelated_stores:int ->
  model ->
  result
(** Each iteration: [data_stores] ordered stores and
    [unrelated_stores] unrelated ones (interleaved), then a fence,
    then the flag store. *)

val speedup : ?params:params -> iterations:int -> data_stores:int ->
  unrelated_stores:int -> unit -> float
(** Tso time / Selective time for the same workload. *)
