type state = Modified | Exclusive | Shared_state | Invalid

type way = { mutable tag : int; mutable st : state; mutable lru : int }

type t = {
  sets : int;
  ways : way array array;  (* sets x ways *)
  line_bytes : int;
  mutable clock : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let create ~size_kb ~ways ~line_bytes =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let total_lines = size_kb * 1024 / line_bytes in
  if total_lines mod ways <> 0 then
    invalid_arg "Cache.create: lines not divisible by ways";
  let sets = total_lines / ways in
  {
    sets;
    ways =
      Array.init sets (fun _ ->
          Array.init ways (fun _ -> { tag = -1; st = Invalid; lru = 0 }));
    line_bytes;
    clock = 0;
  }

let line_of_addr t addr = addr / t.line_bytes

let set_of_line t line = line mod t.sets

let find t line =
  let set = t.ways.(set_of_line t line) in
  let rec go i =
    if i >= Array.length set then None
    else if set.(i).tag = line && set.(i).st <> Invalid then Some set.(i)
    else go (i + 1)
  in
  go 0

let touch t w =
  t.clock <- t.clock + 1;
  w.lru <- t.clock

let lookup t addr =
  let line = line_of_addr t addr in
  match find t line with
  | Some w ->
      touch t w;
      w.st
  | None -> Invalid

let install t addr st =
  let line = line_of_addr t addr in
  match find t line with
  | Some w ->
      w.st <- st;
      touch t w;
      None
  | None ->
      let set = t.ways.(set_of_line t line) in
      (* Prefer an invalid way; otherwise evict the LRU one. *)
      let victim = ref set.(0) in
      Array.iter
        (fun w ->
          if w.st = Invalid then victim := w
          else if !victim.st <> Invalid && w.lru < !victim.lru then victim := w)
        set;
      let evicted =
        if !victim.st = Invalid then None else Some (!victim.tag, !victim.st)
      in
      !victim.tag <- line;
      !victim.st <- st;
      touch t !victim;
      evicted

let set_state t addr st =
  match find t (line_of_addr t addr) with
  | Some w -> w.st <- st
  | None -> ()

let invalidate t addr =
  match find t (line_of_addr t addr) with
  | Some w ->
      w.st <- Invalid;
      w.tag <- -1
  | None -> ()

let resident t addr = find t (line_of_addr t addr) <> None

let lines t = t.sets * Array.length t.ways.(0)

let fold t ~init ~f =
  Array.fold_left
    (fun acc set ->
      Array.fold_left
        (fun acc w -> if w.st <> Invalid then f acc w.tag w.st else acc)
        acc set)
    init t.ways
