(** A miniature MPL-flavored fork-join language whose runtime derives
    coherence hints by construction (§V-B + §V-G).

    The paper's coherence-deactivation protocol is driven by "the
    semantics available in this language and in how the implementation
    manages memory" — MPL's disentanglement discipline (Westrick et
    al., POPL'20).  This module makes that pipeline concrete: programs
    are written against a fork-join API with a tagged heap; the
    runtime tracks which task allocated each object and whether it has
    been frozen (made immutable); every access is classified on the
    fly —

    - objects allocated by the accessing task (or below it and joined
      back) are {e private} to its core;
    - frozen objects are {e read-only};
    - everything else, and anything involved in an entanglement
      (an access to a live concurrent task's allocation), is
      {e shared}.

    The derived hints feed a {!Machine} directly, so the same program
    can run against tracked MESI and against selective deactivation
    with hints nobody wrote by hand. *)

type ctx
(** A running task's context: carries the task identity and the core
    it executes on. *)

type 'a obj
(** A heap object of ['a] cells (contents are real; reads/writes both
    touch the simulated memory system and the value). *)

exception Entanglement of string
(** Raised (in [~strict:true] mode) when a task writes an object owned
    by a live concurrent task — a disentanglement violation. *)

type stats = {
  accesses : int;
  classified_private : int;
  classified_ro : int;
  classified_shared : int;
  entanglements : int;  (** Accesses downgraded in non-strict mode. *)
}

val run :
  ?strict:bool ->
  machine:Machine.t ->
  (ctx -> 'a) ->
  'a * stats
(** Execute a fork-join program against [machine].  Tasks are placed
    round-robin on the machine's cores.  [strict] (default false)
    raises {!Entanglement} instead of downgrading the hint to
    shared. *)

val par2 : ctx -> (ctx -> 'a) -> (ctx -> 'b) -> 'a * 'b
(** Fork two child tasks and join them. *)

val par_for : ctx -> lo:int -> hi:int -> grain:int -> (ctx -> int -> unit) -> unit
(** Recursive binary-splitting parallel for with sequential grain. *)

val alloc : ctx -> int -> init:'a -> 'a obj
val read : ctx -> 'a obj -> int -> 'a
val write : ctx -> 'a obj -> int -> 'a -> unit

val freeze : ctx -> 'a obj -> unit
(** Make the object immutable: subsequent reads classify read-only;
    writes raise [Invalid_argument]. *)

val length : 'a obj -> int
