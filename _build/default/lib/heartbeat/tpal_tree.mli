(** Heartbeat scheduling for nested fork-join programs (§IV-B).

    The range-based module ({!Tpal}) covers parallel loops; this one
    covers the recursive case the heartbeat papers are actually proved
    for: a fork-join {e tree} in which every potential fork starts out
    {e latent} — executed in-line, depth-first, like a sequential
    program — and a heartbeat {e promotes} one latent frame into a
    real, stealable task.

    The promotion rule matters: heartbeat scheduling promotes the
    {b oldest} latent frame (the shallowest unforked call), which
    yields large tasks, few promotions, and the provable bounds.
    {!policy} exposes promote-newest as the ablation foil (many small
    tasks, more steals). *)

type node = { work : int; children : (unit -> node) list }
(** A tree node: [work] cycles of sequential body, then the (lazily
    generated) children, each a latent fork. *)

type bench = { tree_name : string; root : unit -> node }

val fib : ?leaf_work:int -> ?node_work:int -> int -> bench
(** The canonical heartbeat benchmark: binary recursion of depth [n]. *)

val skewed : ?depth:int -> ?fanout:int -> unit -> bench
(** An unbalanced tree: one heavy spine with light side branches —
    adversarial for eager task creation. *)

val total_nodes : bench -> int
val total_work : bench -> int
(** Both force the whole tree once (the trees are deterministic). *)

type policy = Promote_oldest | Promote_newest

type config = {
  workers : int;
  heartbeat_us : float;
  policy : policy;
  seed : int;
}

type report = {
  bench : string;
  policy : policy;
  workers : int;
  elapsed_cycles : int;
  nodes_run : int;
  promotions : int;
  steals : int;
  overhead_pct : float;
  speedup_vs_serial : float;
}

val run : Iw_hw.Platform.t -> config -> bench -> report
(** Nautilus stack (LAPIC + IPI heartbeats), deterministic per seed. *)
