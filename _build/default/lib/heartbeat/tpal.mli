(** TPAL: heartbeat scheduling for latent parallelism (§IV-B).

    The programmer exposes all parallelism as splittable ranges; the
    compiler emits the sequential variant plus promotion points; the
    runtime {e promotes} latent parallelism — splits the oldest
    remaining half of a running range into a stealable task — only
    when a heartbeat arrives.  Work-stealing workers execute the
    ranges.  The heartbeat keeps the task-creation overhead
    proportional to the heartbeat rate instead of the work's
    recursion structure, which is the provable-bounds insight of
    heartbeat scheduling.

    Two signal drivers reproduce Figure 3's comparison:

    - {!Nk_ipi}: one LAPIC timer on CPU 0, broadcast by IPI to every
      worker — the Nautilus mechanism (Fig. 2 left);
    - {!Linux_signal}: one POSIX interval timer + signal chain per
      worker — the Linux mechanism (Fig. 2 right), which jitters and
      coalesces under fine heartbeats. *)

type range = { items : int; grain : int  (** cycles per item *) }

type bench = { bench_name : string; ranges : range list }

val plus_reduce : bench
val spmv : bench
val mandelbrot : bench
val srad : bench
val floyd_warshall : bench
val kmeans : bench

val suite : bench list
(** The six-benchmark heartbeat suite (after the TPAL paper's). *)

val total_items : bench -> int
val total_work : bench -> int

type driver = Nk_ipi | Linux_signal

type config = {
  workers : int;
  heartbeat_us : float;
  driver : driver;
  seed : int;
}

type report = {
  bench : string;
  os : string;
  workers : int;
  heartbeat_us : float;
  elapsed_cycles : int;
  work_cycles : int;
  overhead_cycles : int;  (** Kernel overhead + interrupt paths. *)
  overhead_pct : float;  (** overhead / (work + overhead). *)
  promotions : int;
  steals : int;
  deliveries : int;  (** Heartbeats that actually ran on a worker. *)
  target_rate_hz : float;
  achieved_rate_hz : float;  (** Per-worker delivery rate. *)
  rate_cv : float;  (** Coefficient of variation of inter-heartbeat
                        gaps: 0 = perfectly steady. *)
  speedup_vs_serial : float;
}

val run : ?promote_div:int -> Iw_hw.Platform.t -> config -> bench -> report
(** Boot the kernel implied by the driver, execute the benchmark under
    heartbeat scheduling, and report.  Deterministic per seed.
    [promote_div] (default 2, the TPAL policy) controls promotion
    aggressiveness: a heartbeat splits off 1/div of the remaining
    range. *)

val serial_cycles : bench -> int
(** The sequential-elision baseline: pure work, no scheduling. *)
