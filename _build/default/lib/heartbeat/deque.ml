type 'a t = { mutable items : 'a list (* bottom first *) }

let create () = { items = [] }
let push_bottom t x = t.items <- x :: t.items

let pop_bottom t =
  match t.items with
  | [] -> None
  | x :: rest ->
      t.items <- rest;
      Some x

let steal_top t =
  match List.rev t.items with
  | [] -> None
  | x :: rest_rev ->
      t.items <- List.rev rest_rev;
      Some x

let length t = List.length t.items
let is_empty t = t.items = []
