(** Work-stealing deque (Chase-Lev discipline).

    The owner pushes and pops at the bottom; thieves take from the
    top.  The simulation is single-threaded so there are no physical
    races; the cycle costs of the atomic operations are charged by the
    callers. *)

type 'a t

val create : unit -> 'a t
val push_bottom : 'a t -> 'a -> unit
val pop_bottom : 'a t -> 'a option
val steal_top : 'a t -> 'a option
val length : 'a t -> int
val is_empty : 'a t -> bool
