lib/heartbeat/tpal.mli: Iw_hw
