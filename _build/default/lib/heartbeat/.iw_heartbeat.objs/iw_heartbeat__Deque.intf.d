lib/heartbeat/deque.mli:
