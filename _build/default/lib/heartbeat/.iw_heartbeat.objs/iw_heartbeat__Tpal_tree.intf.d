lib/heartbeat/tpal_tree.mli: Iw_hw
