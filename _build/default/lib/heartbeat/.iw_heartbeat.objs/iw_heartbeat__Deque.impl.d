lib/heartbeat/deque.ml: List
