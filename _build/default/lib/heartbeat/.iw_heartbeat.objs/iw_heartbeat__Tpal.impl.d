lib/heartbeat/tpal.ml: Api Array Coro Deque Ipi Iw_engine Iw_hw Iw_kernel Iw_linuxsim Lapic List Os Platform Printf Rng Sched Sim Stats
