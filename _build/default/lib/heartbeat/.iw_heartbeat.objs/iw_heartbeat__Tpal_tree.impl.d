lib/heartbeat/tpal_tree.ml: Api Array Coro Deque Ipi Iw_engine Iw_hw Iw_kernel Lapic List Os Platform Printf Rng Sched Sim
