lib/omp/nas.ml: Api Iw_hw Iw_kernel List Platform Runtime Sched Tlb
