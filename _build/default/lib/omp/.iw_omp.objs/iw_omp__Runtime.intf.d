lib/omp/runtime.mli: Iw_hw Iw_kernel
