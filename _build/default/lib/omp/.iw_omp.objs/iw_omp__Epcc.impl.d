lib/omp/epcc.ml: Api Iw_hw Iw_kernel List Platform Runtime Sched
