lib/omp/runtime.ml: Api Coro Iw_engine Iw_hw Iw_kernel List Os Printf Sched Task
