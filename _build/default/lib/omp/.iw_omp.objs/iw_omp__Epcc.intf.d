lib/omp/epcc.mli: Iw_hw Runtime
