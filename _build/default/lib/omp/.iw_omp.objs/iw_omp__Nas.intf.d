lib/omp/nas.mli: Iw_hw Runtime
