(** An OpenMP-style runtime with four execution modes (§V-A).

    The same worksharing API runs over four stacks:

    - [Linux_user]: the commodity baseline — the runtime lives in user
      space; every wake/block crosses the kernel boundary (futexes),
      and memory is demand-paged.
    - [Rtk] (runtime-in-kernel): libomp ported into Nautilus; runtime
      calls are ordinary kernel calls, wakes are cheap, identity
      mapping removes paging overhead.
    - [Pik] (process-in-kernel): unmodified user binaries run inside
      the kernel through the PIK simulacrum; like RTK plus a small
      per-call shim.
    - [Cck] (custom compilation for kernel): OpenMP pragmas compile
      directly to kernel tasks ({!Iw_kernel.Task}); no persistent
      team, no barrier — taskwait only.

    Teams are persistent: [parallel_for] reuses sleeping workers, as
    libomp does. *)

type mode = Linux_user | Rtk | Pik | Cck

val mode_name : mode -> string

val personality_of_mode : mode -> Iw_hw.Platform.t -> Iw_kernel.Os.t
(** Which OS model the mode runs on (Linux_user -> linux; others ->
    nautilus). *)

type schedule =
  | Static
  | Dynamic of int  (** chunk size *)
  | Guided of int  (** minimum chunk size *)

type t

val create : Iw_kernel.Sched.t -> mode -> nthreads:int -> t
(** Spawn the team (from outside the simulation, before {!Iw_kernel.Sched.run},
    or from inside a thread).  Worker [i] is bound to CPU [i]. *)

val parallel_for :
  t ->
  ?schedule:schedule ->
  iters:int ->
  iter_cycles:(int -> int) ->
  unit ->
  unit
(** Execute a worksharing loop; call from the master thread (the
    thread that will also act as team member 0).  [iter_cycles i] is
    the work of iteration [i].  Returns when all iterations complete
    (implicit barrier, except CCK which task-waits). *)

val serial_for : iters:int -> iter_cycles:(int -> int) -> unit
(** The sequential elision, for baselines. *)

val shutdown : t -> unit
(** Dismiss the team (call from the master thread). *)

val regions : t -> int
val chunks_dispatched : t -> int
