(** EPCC-style OpenMP microbenchmarks (§V-A: all three kernel OpenMP
    implementations run the full Edinburgh suite).

    Measures the overhead of the core OpenMP constructs under each
    execution mode, the EPCC way: time R repetitions of a construct
    wrapping a fixed delay, subtract the ideal time, divide by R. *)

type construct = Parallel_region | Barrier_only | Dynamic_for | Static_for

val construct_name : construct -> string

type row = {
  construct : construct;
  mode : Runtime.mode;
  nthreads : int;
  overhead_cycles_per_construct : float;
}

val measure :
  ?seed:int ->
  ?reps:int ->
  Iw_hw.Platform.t ->
  Runtime.mode ->
  nthreads:int ->
  construct ->
  row

val table :
  ?seed:int ->
  Iw_hw.Platform.t ->
  modes:Runtime.mode list ->
  nthreads:int ->
  row list
(** All constructs x all modes. *)
