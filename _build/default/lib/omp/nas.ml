open Iw_hw
open Iw_kernel

type region_spec = {
  rs_iters : int;
  rs_cycles : int;
  rs_sched : Runtime.schedule;
}

type benchmark = {
  nas_name : string;
  steps : int;
  step_regions : region_spec list;
  footprint_kb : int;
  locality : float;
  accesses_per_iter : int;
}

(* Block-tridiagonal: three directional solves dominate, flanked by
   RHS computation and the add update. *)
let bt =
  {
    nas_name = "bt";
    steps = 8;
    step_regions =
      [
        { rs_iters = 32_768; rs_cycles = 160; rs_sched = Runtime.Static };
        { rs_iters = 24_576; rs_cycles = 200; rs_sched = Runtime.Static };
        { rs_iters = 24_576; rs_cycles = 200; rs_sched = Runtime.Static };
        { rs_iters = 24_576; rs_cycles = 200; rs_sched = Runtime.Static };
        { rs_iters = 32_768; rs_cycles = 60; rs_sched = Runtime.Static };
      ];
    footprint_kb = 300 * 1024;
    locality = 0.92;
    accesses_per_iter = 3;
  }

(* Scalar-pentadiagonal: lighter per-iteration work, more regions per
   step, more memory-bound. *)
let sp =
  {
    nas_name = "sp";
    steps = 10;
    step_regions =
      [
        { rs_iters = 40_960; rs_cycles = 80; rs_sched = Runtime.Static };
        { rs_iters = 32_768; rs_cycles = 110; rs_sched = Runtime.Static };
        { rs_iters = 32_768; rs_cycles = 110; rs_sched = Runtime.Static };
        { rs_iters = 32_768; rs_cycles = 110; rs_sched = Runtime.Static };
        { rs_iters = 40_960; rs_cycles = 40; rs_sched = Runtime.Static };
        { rs_iters = 40_960; rs_cycles = 40; rs_sched = Runtime.Static };
      ];
    footprint_kb = 220 * 1024;
    locality = 0.95;
    accesses_per_iter = 4;
  }

(* Conjugate gradient: dominated by one sparse matvec with irregular
   row cost — dynamic scheduling territory. *)
let cg =
  {
    nas_name = "cg";
    steps = 12;
    step_regions =
      [
        { rs_iters = 65_536; rs_cycles = 90; rs_sched = Runtime.Dynamic 512 };
        { rs_iters = 65_536; rs_cycles = 20; rs_sched = Runtime.Static };
      ];
    footprint_kb = 150 * 1024;
    locality = 0.94;
    accesses_per_iter = 4;
  }

(* Embarrassingly parallel: one fat compute region, tiny footprint. *)
let ep =
  {
    nas_name = "ep";
    steps = 4;
    step_regions =
      [ { rs_iters = 16_384; rs_cycles = 1_200; rs_sched = Runtime.Static } ];
    footprint_kb = 4 * 1024;
    locality = 0.99;
    accesses_per_iter = 1;
  }

let total_iters b =
  b.steps * List.fold_left (fun acc r -> acc + r.rs_iters) 0 b.step_regions

let memory_penalty_per_iter plat mode b =
  match mode with
  | Runtime.Rtk | Runtime.Pik | Runtime.Cck -> 0
  | Runtime.Linux_user ->
      let tlb = Tlb.create plat ~page_kb:plat.Platform.page_size_kb in
      let accesses = total_iters b * b.accesses_per_iter in
      let profile =
        { Tlb.footprint_kb = b.footprint_kb; accesses; locality = b.locality }
      in
      let walk_cycles = Tlb.misses tlb profile * plat.Platform.costs.tlb_miss_walk in
      walk_cycles / max 1 (total_iters b)

let serial_cycles plat mode b =
  let penalty = memory_penalty_per_iter plat mode b in
  b.steps
  * List.fold_left
      (fun acc r -> acc + (r.rs_iters * (r.rs_cycles + penalty)))
      0 b.step_regions

type result = {
  bench : string;
  mode : Runtime.mode;
  nthreads : int;
  elapsed_cycles : int;
  speedup_vs_serial : float;
  regions_run : int;
}

let run ?(seed = 42) plat mode ~nthreads b =
  let plat = Platform.with_cores plat nthreads in
  let k = Sched.boot ~seed ~personality:(Runtime.personality_of_mode mode plat) plat in
  let penalty = memory_penalty_per_iter plat mode b in
  let finish = ref 0 in
  let regions_run = ref 0 in
  ignore
    (Sched.spawn k
       ~spec:
         {
           Sched.sp_name = "omp-master";
           sp_cpu = Some 0;
           sp_fp = true;
           sp_rt = false;
         }
       (fun () ->
         let t = Runtime.create k mode ~nthreads in
         for _ = 1 to b.steps do
           List.iter
             (fun rs ->
               Runtime.parallel_for t ~schedule:rs.rs_sched ~iters:rs.rs_iters
                 ~iter_cycles:(fun _ -> rs.rs_cycles + penalty)
                 ())
             b.step_regions
         done;
         finish := Api.now ();
         regions_run := Runtime.regions t;
         Runtime.shutdown t));
  Sched.run k;
  let serial = serial_cycles plat mode b in
  {
    bench = b.nas_name;
    mode;
    nthreads;
    elapsed_cycles = !finish;
    speedup_vs_serial = float_of_int serial /. float_of_int (max 1 !finish);
    regions_run = !regions_run;
  }

let relative_performance ?(seed = 42) plat ~modes ~scales b =
  let linux_times =
    List.map
      (fun n -> (n, (run ~seed plat Runtime.Linux_user ~nthreads:n b).elapsed_cycles))
      scales
  in
  List.map
    (fun mode ->
      let series =
        List.map
          (fun n ->
            let r = run ~seed plat mode ~nthreads:n b in
            let lx = List.assoc n linux_times in
            (n, float_of_int lx /. float_of_int (max 1 r.elapsed_cycles)))
          scales
      in
      (mode, series))
    modes
