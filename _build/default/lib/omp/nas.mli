(** NAS-parallel-benchmark surrogates and the Figure 6 experiment.

    BT and SP are modeled by their OpenMP structure: timesteps, each a
    fixed sequence of worksharing regions with characteristic
    iteration counts, per-iteration work, and memory profile
    (footprint and locality, which determine how much the commodity
    stack pays in TLB walks that the identity-mapped kernel modes do
    not).  First-touch faults are treated as untimed initialization,
    as NAS reporting does. *)

type region_spec = {
  rs_iters : int;
  rs_cycles : int;  (** base cycles per iteration *)
  rs_sched : Runtime.schedule;
}

type benchmark = {
  nas_name : string;
  steps : int;
  step_regions : region_spec list;
  footprint_kb : int;
  locality : float;
  accesses_per_iter : int;
}

val bt : benchmark
val sp : benchmark
val cg : benchmark
val ep : benchmark

val serial_cycles : Iw_hw.Platform.t -> Runtime.mode -> benchmark -> int
(** Sequential elision under the mode's address-space regime. *)

val memory_penalty_per_iter : Iw_hw.Platform.t -> Runtime.mode -> benchmark -> int
(** Extra cycles per iteration charged by the memory system (TLB
    walks under demand paging; 0 under identity mapping). *)

type result = {
  bench : string;
  mode : Runtime.mode;
  nthreads : int;
  elapsed_cycles : int;
  speedup_vs_serial : float;
  regions_run : int;
}

val run :
  ?seed:int ->
  Iw_hw.Platform.t ->
  Runtime.mode ->
  nthreads:int ->
  benchmark ->
  result

val relative_performance :
  ?seed:int ->
  Iw_hw.Platform.t ->
  modes:Runtime.mode list ->
  scales:int list ->
  benchmark ->
  (Runtime.mode * (int * float) list) list
(** Fig. 6: for each mode, performance relative to [Linux_user] at the
    same scale (higher = better; Linux = 1.0). *)
