open Iw_hw
open Iw_kernel

type construct = Parallel_region | Barrier_only | Dynamic_for | Static_for

let construct_name = function
  | Parallel_region -> "parallel"
  | Barrier_only -> "barrier"
  | Dynamic_for -> "for-dynamic"
  | Static_for -> "for-static"

type row = {
  construct : construct;
  mode : Runtime.mode;
  nthreads : int;
  overhead_cycles_per_construct : float;
}

(* EPCC's delay(): a fixed chunk of work per thread per repetition. *)
let delay_cycles = 20_000

let measure ?(seed = 42) ?(reps = 50) plat mode ~nthreads construct =
  let plat = Platform.with_cores plat nthreads in
  let k =
    Sched.boot ~seed ~personality:(Runtime.personality_of_mode mode plat) plat
  in
  let finish = ref 0 in
  ignore
    (Sched.spawn k
       ~spec:
         {
           Sched.sp_name = "epcc";
           sp_cpu = Some 0;
           sp_fp = false;
           sp_rt = false;
         }
       (fun () ->
         let t = Runtime.create k mode ~nthreads in
         let t0 = Api.now () in
         for _ = 1 to reps do
           match construct with
           | Parallel_region | Barrier_only ->
               (* One region whose share is the delay on every thread:
                  measures fork + join + barrier. *)
               Runtime.parallel_for t ~schedule:Runtime.Static
                 ~iters:nthreads
                 ~iter_cycles:(fun _ -> delay_cycles)
                 ()
           | Static_for ->
               Runtime.parallel_for t ~schedule:Runtime.Static
                 ~iters:(nthreads * 16)
                 ~iter_cycles:(fun _ -> delay_cycles / 16)
                 ()
           | Dynamic_for ->
               Runtime.parallel_for t ~schedule:(Runtime.Dynamic 1)
                 ~iters:(nthreads * 16)
                 ~iter_cycles:(fun _ -> delay_cycles / 16)
                 ()
         done;
         finish := Api.now () - t0;
         Runtime.shutdown t));
  Sched.run k;
  let ideal = reps * delay_cycles in
  {
    construct;
    mode;
    nthreads;
    overhead_cycles_per_construct =
      float_of_int (!finish - ideal) /. float_of_int reps;
  }

let table ?(seed = 42) plat ~modes ~nthreads =
  List.concat_map
    (fun construct ->
      List.map
        (fun mode -> measure ~seed plat mode ~nthreads construct)
        modes)
    [ Parallel_region; Barrier_only; Dynamic_for; Static_for ]
