lib/core/stack.mli: Iw_hw Iw_kernel Iw_mem
