lib/core/table.mli:
