lib/core/table.ml: Buffer List Printf String
