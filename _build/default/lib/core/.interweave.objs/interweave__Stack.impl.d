lib/core/stack.ml: Iw_hw Iw_ir Iw_kernel Iw_mem Printf
