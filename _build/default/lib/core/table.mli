(** Plain-text and Markdown table rendering for experiment output. *)

type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

val make : title:string -> headers:string list -> ?notes:string list ->
  string list list -> t

val render : t -> string
(** Aligned monospace text. *)

val to_markdown : t -> string

val cell_f : float -> string
(** Two-decimal float cell. *)

val cell_pct : float -> string
val cell_i : int -> string
