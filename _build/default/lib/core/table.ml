type t = {
  title : string;
  headers : string list;
  rows : string list list;
  notes : string list;
}

let make ~title ~headers ?(notes = []) rows =
  List.iter
    (fun row ->
      if List.length row <> List.length headers then
        invalid_arg
          (Printf.sprintf "Table.make (%s): row width %d <> header width %d"
             title (List.length row) (List.length headers)))
    rows;
  { title; headers; rows; notes }

let widths t =
  let all = t.headers :: t.rows in
  List.mapi
    (fun i _ ->
      List.fold_left (fun acc row -> max acc (String.length (List.nth row i))) 0 all)
    t.headers

let pad width s = s ^ String.make (max 0 (width - String.length s)) ' '

let render t =
  let ws = widths t in
  let render_row row = String.concat "  " (List.map2 pad ws row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') ws) in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) t.rows;
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let to_markdown t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("### " ^ t.title ^ "\n\n");
  Buffer.add_string buf ("| " ^ String.concat " | " t.headers ^ " |\n");
  Buffer.add_string buf
    ("|" ^ String.concat "|" (List.map (fun _ -> "---") t.headers) ^ "|\n");
  List.iter
    (fun r -> Buffer.add_string buf ("| " ^ String.concat " | " r ^ " |\n"))
    t.rows;
  List.iter (fun n -> Buffer.add_string buf ("\n_" ^ n ^ "_\n")) t.notes;
  Buffer.contents buf

let cell_f x = Printf.sprintf "%.2f" x
let cell_pct x = Printf.sprintf "%.1f%%" x
let cell_i = string_of_int
