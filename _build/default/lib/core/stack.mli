(** The interweaving model's public face: composing a custom
    hardware/software stack from per-layer choices.

    A {!t} names a choice at each layer the paper argues should be
    interwoven — kernel, memory regime, timing mechanism, event
    delivery — plus the platform underneath.  {!commodity} is the
    layered status quo; {!interwoven} is the paper's stack.  [boot]
    turns the description into a runnable kernel; the accessors
    expose the layer objects so runtimes (heartbeat, OpenMP, fibers,
    CARAT) can be attached. *)

type os_choice = Nautilus | Linux | Linux_rt

type memory_choice =
  | Demand_paging  (** Commodity: base pages, faults, TLB pressure. *)
  | Identity_mapped  (** Nautilus: everything mapped at boot (§III). *)
  | Carat  (** Compiler/runtime translation, no paging (§IV-A). *)

type timing_choice =
  | Hardware_timer  (** Interrupt-driven preemption. *)
  | Compiler_timed of { check_budget : int }  (** §IV-C. *)

type event_choice =
  | Signal_chain  (** Commodity user-level delivery (§IV-B right). *)
  | Ipi_broadcast  (** Kernel-level LAPIC broadcast (§IV-B left). *)
  | Pipeline_interrupts  (** §V-D branch-injected delivery. *)

type t = {
  platform : Iw_hw.Platform.t;
  os : os_choice;
  memory : memory_choice;
  timing : timing_choice;
  events : event_choice;
}

val commodity : Iw_hw.Platform.t -> t
(** Linux, demand paging, hardware timers, signal chains. *)

val interwoven : Iw_hw.Platform.t -> t
(** Nautilus, CARAT memory, compiler timing, IPI broadcast. *)

val describe : t -> string

val personality : t -> Iw_kernel.Os.t

val boot : ?seed:int -> ?quantum_us:float -> t -> Iw_kernel.Sched.t

val address_space : t -> Iw_mem.Address_space.t

val event_delivery_cycles : t -> int
(** Cost of delivering one asynchronous event to running code under
    this stack's event layer. *)

val timer_mechanism_cost : t -> int
(** Per-preemption mechanism cost implied by the timing layer (the
    interrupt path, or the injected check + framework call). *)
