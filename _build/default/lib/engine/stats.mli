(** Sample accumulators and summary statistics for experiments. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t
(** A growable series of float samples. *)

val create : unit -> t

val add : t -> float -> unit

val add_int : t -> int -> unit

val count : t -> int

val total : t -> float

val mean : t -> float
(** 0 when empty. *)

val stddev : t -> float
(** Population standard deviation; 0 when fewer than 2 samples. *)

val min_value : t -> float
(** @raise Invalid_argument when empty. *)

val max_value : t -> float
(** @raise Invalid_argument when empty. *)

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0,100\]], nearest-rank on the
    sorted samples.  @raise Invalid_argument when empty. *)

val summary : t -> summary
(** @raise Invalid_argument when empty. *)

val coefficient_of_variation : t -> float
(** stddev / mean; 0 when the mean is 0. *)

val samples : t -> float array
(** Copy of the raw samples, in insertion order. *)

val pp_summary : Format.formatter -> summary -> unit

(** Named integer counters, for event/message accounting. *)
module Counters : sig
  type nonrec t

  val create : unit -> t
  val incr : t -> string -> unit
  val add : t -> string -> int -> unit
  val get : t -> string -> int
  val to_list : t -> (string * int) list
  (** Sorted by name. *)

  val reset : t -> unit
end
