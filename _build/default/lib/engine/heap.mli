(** Array-backed binary min-heap, polymorphic in the element type.

    The simulator's event queue keys events by [(time, sequence)]
    pairs; the heap is generic over any ordered key. *)

type ('k, 'v) t

val create : ?capacity:int -> cmp:('k -> 'k -> int) -> unit -> ('k, 'v) t

val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

val push : ('k, 'v) t -> 'k -> 'v -> unit

val peek : ('k, 'v) t -> ('k * 'v) option
(** Smallest key, without removing it. *)

val pop : ('k, 'v) t -> ('k * 'v) option
(** Remove and return the smallest key. *)

val clear : ('k, 'v) t -> unit

val to_sorted_list : ('k, 'v) t -> ('k * 'v) list
(** Non-destructive: all entries in ascending key order. *)
