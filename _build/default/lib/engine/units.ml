let cycles_of_ns ~ghz ns = int_of_float (Float.round (ns *. ghz))
let cycles_of_us ~ghz us = cycles_of_ns ~ghz (us *. 1e3)
let cycles_of_ms ~ghz ms = cycles_of_ns ~ghz (ms *. 1e6)
let ns_of_cycles ~ghz c = float_of_int c /. ghz
let us_of_cycles ~ghz c = ns_of_cycles ~ghz c /. 1e3
let ms_of_cycles ~ghz c = ns_of_cycles ~ghz c /. 1e6

let hz_of_period_cycles ~ghz period =
  if period <= 0 then invalid_arg "Units.hz_of_period_cycles: period <= 0";
  ghz *. 1e9 /. float_of_int period
