(** Deterministic discrete-event simulation core.

    Virtual time is an integer count of cycles.  Events are totally
    ordered by [(time, sequence-number)], so two runs of the same
    program with the same seed produce identical schedules.  Events
    may be cancelled after being scheduled (cancellation is lazy: the
    entry stays in the queue but its action is skipped). *)

type t

type event
(** Handle to a scheduled event, usable for cancellation. *)

val create : ?seed:int -> unit -> t
(** Fresh simulator at time 0.  [seed] (default 42) seeds the
    simulator's root RNG. *)

val now : t -> int
(** Current virtual time, in cycles. *)

val rng : t -> Rng.t
(** The simulator's root RNG.  Subsystems should [Rng.split] it. *)

val schedule : t -> at:int -> (unit -> unit) -> event
(** [schedule t ~at f] runs [f] at virtual time [at].  @raise
    Invalid_argument if [at] is in the past. *)

val schedule_after : t -> int -> (unit -> unit) -> event
(** [schedule_after t dt f] = [schedule t ~at:(now t + dt) f]. *)

val cancel : event -> unit
(** Cancel a pending event.  Cancelling an already-fired or
    already-cancelled event is a no-op. *)

val cancelled : event -> bool

val pending : t -> int
(** Number of not-yet-fired, not-cancelled events. *)

val step : t -> bool
(** Fire the next event.  Returns [false] when the queue is empty. *)

val run : ?until:int -> ?max_events:int -> t -> unit
(** Drain the event queue.  [until] stops the clock at that time (the
    event at [until] itself still fires, later ones do not and remain
    queued); [max_events] bounds the number of fired events (guards
    against accidental non-termination in tests). *)

val exhausted : t -> bool
(** True when no live events remain. *)
