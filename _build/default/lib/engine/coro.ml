module Request = struct
  type _ t = ..
end

type status = Done | Failed of exn | Paused of paused

and paused =
  | Consumed of int * (unit -> status)
  | Yielded of (unit -> status)
  | Requested : 'a Request.t * ('a -> status) -> paused

exception Not_in_coroutine

type _ Effect.t +=
  | Consume : int -> unit Effect.t
  | Yield : unit Effect.t
  | Request : 'a Request.t -> 'a Effect.t

open Effect.Deep

let start f =
  match_with f ()
    {
      retc = (fun () -> Done);
      exnc = (fun e -> Failed e);
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Consume n ->
              Some
                (fun (k : (a, status) continuation) ->
                  Paused (Consumed (n, fun () -> continue k ())))
          | Yield ->
              Some
                (fun (k : (a, status) continuation) ->
                  Paused (Yielded (fun () -> continue k ())))
          | Request r ->
              Some
                (fun (k : (a, status) continuation) ->
                  Paused (Requested (r, fun v -> continue k v)))
          | _ -> None);
    }

let consume n =
  if n < 0 then invalid_arg "Coro.consume: negative cycles";
  if n > 0 then
    try Effect.perform (Consume n)
    with Effect.Unhandled _ -> raise Not_in_coroutine

let yield () =
  try Effect.perform Yield with Effect.Unhandled _ -> raise Not_in_coroutine

let request r =
  try Effect.perform (Request r)
  with Effect.Unhandled _ -> raise Not_in_coroutine
