(** Simulated threads as effect-based coroutines.

    Code running inside a coroutine models the passage of time by
    performing [consume n] ("burn [n] cycles of CPU"), cooperates with
    [yield], and talks to whatever scheduler is driving it through
    typed {!Request} values.  The scheduler receives a {!status} each
    time the coroutine suspends, and decides when (in virtual time)
    and where (on which simulated core) to continue it.

    Requests are an open (extensible) GADT: each kernel model extends
    [Request.t] with its own operations (spawn, lock, wait, ...) and
    interprets them in its scheduling loop.  The coroutine layer is
    policy-free. *)

module Request : sig
  type _ t = ..
  (** Extensible scheduler-request type.  ['a] is the reply type. *)
end

type status =
  | Done
  | Failed of exn
  | Paused of paused

and paused =
  | Consumed of int * (unit -> status)
      (** The coroutine asked to burn [n] cycles.  Call the
          continuation once the full quantum has been granted (the
          scheduler is free to split it across preemptions; it tracks
          the remainder itself). *)
  | Yielded of (unit -> status)
      (** Cooperative yield point. *)
  | Requested : 'a Request.t * ('a -> status) -> paused
      (** A typed request; continue with the reply. *)

val start : (unit -> unit) -> status
(** Run a coroutine until its first suspension (or completion). *)

val consume : int -> unit
(** Within a coroutine: account [n >= 0] cycles of simulated CPU
    work.  [consume 0] is a no-op that does not suspend. *)

val yield : unit -> unit
(** Within a coroutine: offer the scheduler a switch point. *)

val request : 'a Request.t -> 'a
(** Within a coroutine: perform a scheduler request and wait for its
    reply. *)

exception Not_in_coroutine
(** Raised when [consume]/[yield]/[request] is used outside [start]. *)
