(** Conversions between wall-clock time and cycles.

    All simulation arithmetic is in integer cycles; a platform's clock
    frequency (GHz) defines the exchange rate to nanoseconds and
    microseconds. *)

val cycles_of_ns : ghz:float -> float -> int
val cycles_of_us : ghz:float -> float -> int
val cycles_of_ms : ghz:float -> float -> int
val ns_of_cycles : ghz:float -> int -> float
val us_of_cycles : ghz:float -> int -> float
val ms_of_cycles : ghz:float -> int -> float

val hz_of_period_cycles : ghz:float -> int -> float
(** Events per second implied by a period in cycles. *)
