lib/engine/rng.mli:
