lib/engine/coro.ml: Effect
