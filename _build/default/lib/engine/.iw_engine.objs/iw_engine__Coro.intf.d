lib/engine/coro.mli:
