lib/engine/sim.ml: Heap List Printf Rng
