lib/engine/units.ml: Float
