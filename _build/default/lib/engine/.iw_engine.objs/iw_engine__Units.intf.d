lib/engine/units.mli:
