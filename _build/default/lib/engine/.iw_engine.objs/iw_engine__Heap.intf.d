lib/engine/heap.mli:
