type event = {
  time : int;
  seq : int;
  mutable cancelled : bool;
  action : unit -> unit;
}

type t = {
  mutable now : int;
  mutable seq : int;
  mutable live : int;
  queue : (int * int, event) Heap.t;
  root_rng : Rng.t;
}

let key_cmp (t1, s1) (t2, s2) =
  match compare t1 t2 with 0 -> compare s1 s2 | c -> c

let create ?(seed = 42) () =
  {
    now = 0;
    seq = 0;
    live = 0;
    queue = Heap.create ~cmp:key_cmp ();
    root_rng = Rng.create ~seed;
  }

let now t = t.now

let rng t = t.root_rng

let schedule t ~at action =
  if at < t.now then
    invalid_arg
      (Printf.sprintf "Sim.schedule: time %d is in the past (now=%d)" at t.now);
  let ev = { time = at; seq = t.seq; cancelled = false; action } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue (at, ev.seq) ev;
  ev

let schedule_after t dt action =
  if dt < 0 then invalid_arg "Sim.schedule_after: negative delay";
  schedule t ~at:(t.now + dt) action

let cancel ev =
  ev.cancelled <- true

let cancelled ev = ev.cancelled

(* [live] over-counts by the number of cancelled-but-queued events, so
   recompute lazily from the queue when asked. *)
let pending t =
  List.length
    (List.filter (fun (_, ev) -> not ev.cancelled) (Heap.to_sorted_list t.queue))

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some (_, ev) when ev.cancelled ->
        t.live <- t.live - 1;
        next ()
    | Some ((time, _), ev) ->
        t.now <- time;
        t.live <- t.live - 1;
        ev.action ();
        true
  in
  next ()

let exhausted t =
  let rec peek_live () =
    match Heap.peek t.queue with
    | None -> true
    | Some (_, ev) when ev.cancelled ->
        ignore (Heap.pop t.queue);
        peek_live ()
    | Some _ -> false
  in
  peek_live ()

let run ?until ?max_events t =
  let fired = ref 0 in
  let within_budget () =
    match max_events with None -> true | Some m -> !fired < m
  in
  let before_horizon () =
    match until with
    | None -> true
    | Some horizon -> (
        match Heap.peek t.queue with
        | None -> false
        | Some ((time, _), _) -> time <= horizon)
  in
  while (not (exhausted t)) && within_budget () && before_horizon () do
    if step t then incr fired
  done
