lib/virtine/wasp.ml: Array Float Iw_engine Iw_ir List Rng Stats
