lib/virtine/wasp.mli: Iw_engine Iw_ir
