open Iw_ir

type t = {
  program : Programs.program;
  modul : Ir.modul;
  rt : Runtime.t;
  mutable attested : int;
}

(* Rolling structural hash over the printed instructions: a stand-in
   for cryptographic attestation (no crypto offline). *)
let checksum m =
  let h = ref 5381 in
  let mix s =
    String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land max_int) s
  in
  let names =
    Hashtbl.fold (fun name _ acc -> name :: acc) m.Ir.funcs []
    |> List.sort compare
  in
  List.iter
    (fun name ->
      let f = Ir.find_func m name in
      mix name;
      Array.iter
        (fun b ->
          List.iter (fun i -> mix (Format.asprintf "%a" Ir.pp_inst i)) b.Ir.insts)
        f.Ir.blocks)
    names;
  !h

let load ?(config = Iw_passes.Carat_pass.optimized) (program : Programs.program)
    =
  let modul = program.build () in
  Iw_passes.Carat_pass.instrument ~config modul;
  let t = { program; modul; rt = Runtime.create (); attested = 0 } in
  t.attested <- checksum modul;
  t

let attestation t = t.attested
let verify t = checksum t.modul = t.attested

let tamper t =
  Hashtbl.iter
    (fun _ f ->
      Array.iter
        (fun b ->
          b.Ir.insts <-
            List.filter
              (function Ir.Guard _ -> false | _ -> true)
              b.Ir.insts)
        f.Ir.blocks)
    t.modul.Ir.funcs

let run t =
  if not (verify t) then
    invalid_arg
      (Printf.sprintf "pik: attestation failure for %s" t.program.name);
  Interp.run ~hooks:(Runtime.hooks t.rt) t.modul t.program.entry t.program.args

let runtime t = t.rt
let name t = t.program.name
