open Iw_ir
(** The CARAT overhead study (E7, §IV-A).

    For each benchmark: run clean, run naively instrumented, run with
    aggregation+hoisting — all three against a live CARAT runtime so
    guards really validate and allocation really goes through the
    region table.  The paper's claim is <6% geomean overhead for the
    optimized configuration. *)

type row = {
  name : string;
  suite : string;
  base_cycles : int;
  naive_pct : float;
  optimized_pct : float;
  static_guards_naive : int;
  static_guards_opt : int;  (** Exact + region guards after hoisting. *)
  dyn_guards_naive : int;
  dyn_guards_opt : int;
}

val run_program :
  Programs.program -> row
(** @raise Invalid_argument if instrumentation changes the program's
    result. *)

val table : unit -> row list
(** The full CARAT suite. *)

val geomean_naive : row list -> float
val geomean_optimized : row list -> float
