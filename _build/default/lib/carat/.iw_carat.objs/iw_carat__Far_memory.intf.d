lib/carat/far_memory.mli:
