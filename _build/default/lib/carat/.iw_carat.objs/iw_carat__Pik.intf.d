lib/carat/pik.mli: Interp Iw_ir Iw_passes Programs Runtime
