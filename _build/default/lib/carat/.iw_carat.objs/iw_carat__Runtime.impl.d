lib/carat/runtime.ml: Int Interp Iw_ir Iw_mem List Map Printf
