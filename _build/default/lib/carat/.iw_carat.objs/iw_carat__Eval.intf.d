lib/carat/eval.mli: Iw_ir Programs
