lib/carat/eval.ml: Interp Iw_ir Iw_passes List Printf Programs Runtime
