lib/carat/pik.ml: Array Char Format Hashtbl Interp Ir Iw_ir Iw_passes List Printf Programs Runtime String
