lib/carat/far_memory.ml: Array Float Fun Iw_engine List Rng
