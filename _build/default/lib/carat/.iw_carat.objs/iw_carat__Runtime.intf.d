lib/carat/runtime.mli: Interp Iw_ir
