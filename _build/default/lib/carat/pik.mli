open Iw_ir
(** Process-in-kernel simulacra (§IV-A, §V-A).

    A PIK "process" is a user program compiled, CARAT-transformed,
    linked, and attested so it can run {e inside} the kernel at
    kernel privilege on physical addresses — while believing it is an
    ordinary process.  Protection comes from the compiler-inserted
    guards, not hardware; attestation vouches that the blob really
    carries its instrumentation.

    Each process gets its own CARAT runtime (its address space); a
    guarded access to anything outside its own regions faults. *)

type t

val load : ?config:Iw_passes.Carat_pass.config -> Programs.program -> t
(** Compile (instrument) and attest the program. *)

val attestation : t -> int
(** Structural checksum over the instrumented code.  Offline builds
    have no crypto; this stands in for the signature (DESIGN.md §5). *)

val verify : t -> bool
(** Recompute the checksum against the loaded code. *)

val tamper : t -> unit
(** Strip the guards from the loaded code (simulates a malicious or
    corrupted blob); [verify] must fail afterwards. *)

val run : t -> Interp.result
(** Execute at "kernel level" under the process's own CARAT runtime.
    @raise Invalid_argument if [verify] fails. *)

val runtime : t -> Runtime.t

val name : t -> string
