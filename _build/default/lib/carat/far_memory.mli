(** Sub-page-granularity transparent far memory via compiler blending
    (§V-C).

    Current far-memory systems either swap whole pages to the remote
    tier or require the programmer to annotate remotable structures.
    Compiler blending can decide and evacuate at {e object}
    granularity transparently.  This model makes the granularity
    argument quantitative: a heap of small objects with a skewed
    (Zipf) access pattern is split between a local tier of bounded
    capacity and a far tier; the placement policy is either
    page-granular (pages ranked by total heat — hot objects drag
    their cold page-mates along and cold ones steal local capacity)
    or object-granular (the blended compiler evacuates exactly the
    cold objects).

    Accesses are actually sampled and placed; nothing is fitted. *)

type granularity = Page of int  (** words per page *) | Object

type config = {
  local_capacity_words : int;
  granularity : granularity;
  local_cost : int;  (** cycles per local access *)
  far_cost : int;  (** cycles per far access *)
}

val default : local_capacity_words:int -> granularity -> config

type result = {
  granularity : granularity;
  local_fraction : float;  (** Fraction of heap resident locally. *)
  local_hit_rate : float;  (** Fraction of accesses served locally. *)
  mean_access_cycles : float;
  slowdown_vs_all_local : float;
}

val simulate :
  ?seed:int ->
  objects:int ->
  object_words:int ->
  accesses:int ->
  zipf:float ->
  config ->
  result
(** Build the heap, sample [accesses] object references from a Zipf
    distribution with exponent [zipf], choose the resident set under
    the policy, and measure. *)

val sweep :
  ?seed:int ->
  objects:int ->
  object_words:int ->
  accesses:int ->
  zipf:float ->
  fractions:float list ->
  unit ->
  (float * result * result) list
(** For each local-capacity fraction: (fraction, page-granular result,
    object-granular result). *)
