open Iw_engine

type granularity = Page of int | Object

type config = {
  local_capacity_words : int;
  granularity : granularity;
  local_cost : int;
  far_cost : int;
}

let default ~local_capacity_words granularity =
  { local_capacity_words; granularity; local_cost = 4; far_cost = 400 }

type result = {
  granularity : granularity;
  local_fraction : float;
  local_hit_rate : float;
  mean_access_cycles : float;
  slowdown_vs_all_local : float;
}

(* Zipf sampling over [1..n] with exponent [s], via inverse CDF on a
   precomputed table. *)
let zipf_cdf n s =
  let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      acc := !acc +. (w /. total);
      cdf.(i) <- !acc)
    weights;
  cdf

let sample_zipf rng cdf =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (Array.length cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let simulate ?(seed = 13) ~objects ~object_words ~accesses ~zipf config =
  if objects <= 0 || object_words <= 0 || accesses <= 0 then
    invalid_arg "Far_memory.simulate: non-positive size";
  let rng = Rng.create ~seed in
  let cdf = zipf_cdf objects zipf in
  (* Objects are allocated in a shuffled order, as real allocation
     interleaves hot and cold objects on the same pages. *)
  let placement = Array.init objects Fun.id in
  Rng.shuffle rng placement;
  (* Count accesses per object. *)
  let heat = Array.make objects 0 in
  for _ = 1 to accesses do
    let o = sample_zipf rng cdf in
    heat.(o) <- heat.(o) + 1
  done;
  (* Choose the resident set. *)
  let resident = Array.make objects false in
  let capacity = config.local_capacity_words in
  (match config.granularity with
  | Object ->
      (* Evacuate coldest objects: keep the hottest that fit. *)
      let order = Array.init objects Fun.id in
      Array.sort (fun a b -> compare heat.(b) heat.(a)) order;
      let used = ref 0 in
      Array.iter
        (fun o ->
          if !used + object_words <= capacity then begin
            resident.(o) <- true;
            used := !used + object_words
          end)
        order
  | Page page_words ->
      let per_page = max 1 (page_words / object_words) in
      let pages = (objects + per_page - 1) / per_page in
      (* Page heat = sum of its objects' heat (objects land on pages
         in allocation order). *)
      let page_heat = Array.make pages 0 in
      Array.iteri
        (fun slot o -> page_heat.(slot / per_page) <- page_heat.(slot / per_page) + heat.(o))
        placement;
      let order = Array.init pages Fun.id in
      Array.sort (fun a b -> compare page_heat.(b) page_heat.(a)) order;
      let used = ref 0 in
      Array.iter
        (fun pg ->
          if !used + page_words <= capacity then begin
            used := !used + page_words;
            for slot = pg * per_page to min (objects - 1) (((pg + 1) * per_page) - 1) do
              resident.(placement.(slot)) <- true
            done
          end)
        order);
  (* Measure. *)
  let local_hits = ref 0 and total_cost = ref 0 in
  Array.iteri
    (fun o h ->
      if resident.(o) then begin
        local_hits := !local_hits + h;
        total_cost := !total_cost + (h * config.local_cost)
      end
      else total_cost := !total_cost + (h * config.far_cost))
    heat;
  let resident_words =
    Array.fold_left
      (fun acc r -> if r then acc + object_words else acc)
      0 resident
  in
  let all_local = accesses * config.local_cost in
  {
    granularity = config.granularity;
    local_fraction =
      float_of_int resident_words /. float_of_int (objects * object_words);
    local_hit_rate = float_of_int !local_hits /. float_of_int accesses;
    mean_access_cycles = float_of_int !total_cost /. float_of_int accesses;
    slowdown_vs_all_local = float_of_int !total_cost /. float_of_int all_local;
  }

let sweep ?seed ~objects ~object_words ~accesses ~zipf ~fractions () =
  let heap = objects * object_words in
  List.map
    (fun frac ->
      let capacity = int_of_float (frac *. float_of_int heap) in
      let page =
        simulate ?seed ~objects ~object_words ~accesses ~zipf
          (default ~local_capacity_words:capacity (Page 512))
      in
      let obj =
        simulate ?seed ~objects ~object_words ~accesses ~zipf
          (default ~local_capacity_words:capacity Object)
      in
      (frac, page, obj))
    fractions
