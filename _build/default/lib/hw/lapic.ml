open Iw_engine

type t = {
  s : Sim.t;
  plat : Platform.t;
  target : Cpu.t;
  mutable armed : Sim.event option;
  mutable generation : int;
  mutable fired : int;
}

let create s plat target = { s; plat; target; armed = None; generation = 0; fired = 0 }

let cpu t = t.target

let inject t handler after =
  t.fired <- t.fired + 1;
  Cpu.interrupt t.target ~dispatch:t.plat.Platform.costs.interrupt_dispatch
    ~return_cost:t.plat.Platform.costs.interrupt_return ~handler ~after

let oneshot t ~delay ~handler ~after =
  if delay < 0 then invalid_arg "Lapic.oneshot: negative delay";
  let gen = t.generation in
  let ev =
    Sim.schedule_after t.s delay (fun () ->
        if gen = t.generation then begin
          t.armed <- None;
          inject t handler after
        end)
  in
  t.armed <- Some ev

let periodic t ?phase ~period ~handler ~after () =
  if period <= 0 then invalid_arg "Lapic.periodic: period <= 0";
  let first = match phase with None -> period | Some p -> max 1 p in
  let gen = t.generation in
  let rec tick () =
    if gen = t.generation then begin
      inject t handler after;
      t.armed <- Some (Sim.schedule_after t.s period tick)
    end
  in
  t.armed <- Some (Sim.schedule_after t.s first tick)

let stop t =
  t.generation <- t.generation + 1;
  Option.iter Sim.cancel t.armed;
  t.armed <- None

let fired t = t.fired
