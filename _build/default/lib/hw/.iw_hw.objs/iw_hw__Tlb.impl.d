lib/hw/tlb.ml: Platform
