lib/hw/tlb.mli: Platform
