lib/hw/lapic.mli: Cpu Iw_engine Platform
