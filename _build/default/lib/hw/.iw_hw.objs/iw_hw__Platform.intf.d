lib/hw/platform.mli: Format
