lib/hw/pipeline_interrupt.ml: List Platform
