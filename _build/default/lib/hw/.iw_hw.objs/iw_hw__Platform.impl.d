lib/hw/platform.ml: Format Iw_engine
