lib/hw/cpu.ml: Iw_engine Option Printf Queue Sim
