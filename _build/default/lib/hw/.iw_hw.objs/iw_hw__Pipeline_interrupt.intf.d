lib/hw/pipeline_interrupt.mli: Platform
