lib/hw/ipi.mli: Cpu Iw_engine Platform
