lib/hw/lapic.ml: Cpu Iw_engine Option Platform Sim
