lib/hw/ipi.ml: Cpu Iw_engine List Platform Sim
