lib/hw/cpu.mli: Iw_engine
