(** §V-D: pipeline interrupts.

    The paper proposes delivering simple interrupts (no privilege
    change) by injecting a branch into the instruction-fetch logic,
    with an MSR-based return path — latency comparable to a correctly
    predicted branch, i.e. 100-1000x cheaper than the ~1000-cycle IDT
    dispatch the authors measure.  This module models both delivery
    mechanisms so the microbenchmark can report the ratio, and lets a
    kernel configuration select the mechanism for its timer vector. *)

type mechanism =
  | Idt  (** Classic IDT dispatch through microcode. *)
  | Branch_injected  (** Predicted-branch-like injection + MSR return. *)

type outcome = {
  dispatch_cycles : int;
  return_cycles : int;
  total_cycles : int;
}

val deliver : Platform.t -> mechanism -> outcome
(** Cost of one delivery under the mechanism. *)

val speedup : Platform.t -> float
(** IDT total cost over branch-injected total cost. *)

val sweep : Platform.t -> rate_hz:float list -> (float * float * float) list
(** For each interrupt rate (Hz), the fraction of one core consumed by
    delivery overhead under (rate, idt_fraction, branch_fraction).
    Shows when fine-grained event rates become feasible. *)
