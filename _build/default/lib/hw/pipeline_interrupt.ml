type mechanism = Idt | Branch_injected

type outcome = { dispatch_cycles : int; return_cycles : int; total_cycles : int }

let deliver plat mech =
  let costs = plat.Platform.costs in
  match mech with
  | Idt ->
      {
        dispatch_cycles = costs.interrupt_dispatch;
        return_cycles = costs.interrupt_return;
        total_cycles = costs.interrupt_dispatch + costs.interrupt_return;
      }
  | Branch_injected ->
      (* Injection behaves like a correctly predicted branch; the MSR
         write for the return path is a few cycles, like syscall's. *)
      let ret = max 1 (costs.pipeline_interrupt_dispatch / 2) in
      {
        dispatch_cycles = costs.pipeline_interrupt_dispatch;
        return_cycles = ret;
        total_cycles = costs.pipeline_interrupt_dispatch + ret;
      }

let speedup plat =
  let idt = (deliver plat Idt).total_cycles in
  let br = (deliver plat Branch_injected).total_cycles in
  float_of_int idt /. float_of_int br

let sweep plat ~rate_hz =
  let cps = plat.Platform.ghz *. 1e9 in
  let idt = float_of_int (deliver plat Idt).total_cycles in
  let br = float_of_int (deliver plat Branch_injected).total_cycles in
  List.map
    (fun rate -> (rate, rate *. idt /. cps, rate *. br /. cps))
    rate_hz
