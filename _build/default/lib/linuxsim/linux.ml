let boot ?seed ?quantum_us plat =
  Iw_kernel.Sched.boot ?seed ?quantum_us
    ~personality:(Iw_kernel.Os.linux plat) plat

let boot_rt ?seed ?quantum_us plat =
  Iw_kernel.Sched.boot ?seed ?quantum_us
    ~personality:(Iw_kernel.Os.linux_rt plat) plat

let address_space plat =
  Iw_mem.Address_space.create plat Iw_mem.Address_space.Demand_paged
