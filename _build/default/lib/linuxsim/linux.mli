(** The commodity-stack baseline.

    Boots the shared scheduler engine with the Linux personality:
    kernel/user crossings with speculation mitigations on switches and
    blocking operations, futex-based block/wake, CFS-weight picks.
    The paper's comparisons (Figs. 3, 4, 6; §III, §IV-B) all measure
    against this stack. *)

val boot :
  ?seed:int -> ?quantum_us:float -> Iw_hw.Platform.t -> Iw_kernel.Sched.t

val boot_rt :
  ?seed:int -> ?quantum_us:float -> Iw_hw.Platform.t -> Iw_kernel.Sched.t
(** SCHED_FIFO-flavored variant: tighter timers, same crossings. *)

val address_space : Iw_hw.Platform.t -> Iw_mem.Address_space.t
(** Demand-paged, base-page-size address space. *)
