lib/linuxsim/linux.ml: Iw_kernel Iw_mem
