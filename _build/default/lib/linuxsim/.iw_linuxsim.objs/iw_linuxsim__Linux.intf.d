lib/linuxsim/linux.mli: Iw_hw Iw_kernel Iw_mem
