lib/linuxsim/itimer.mli: Iw_kernel
