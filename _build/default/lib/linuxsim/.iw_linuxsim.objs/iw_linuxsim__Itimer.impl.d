lib/linuxsim/itimer.ml: Iw_engine Iw_hw Iw_kernel List Os Rng Sched Sim
