type zone = int

type t = {
  zone_size : int;
  buddies : Buddy.t array;
  mutable fallbacks : int;
}

let create ~zones ~zone_size ~min_block =
  if zones <= 0 then invalid_arg "Numa.create: zones <= 0";
  let buddies =
    Array.init zones (fun i ->
        Buddy.create ~base:(i * zone_size) ~size:zone_size ~min_block)
  in
  { zone_size; buddies; fallbacks = 0 }

let zone_count t = Array.length t.buddies

let zone_of_addr t addr =
  let z = addr / t.zone_size in
  if addr < 0 || z >= zone_count t then
    invalid_arg (Printf.sprintf "Numa.zone_of_addr: %#x out of range" addr);
  z

let alloc_local t ~zone n = Buddy.alloc t.buddies.(zone) n

let alloc t ~zone n =
  match alloc_local t ~zone n with
  | Some addr -> Some addr
  | None ->
      (* Nearest-first fallback by ring distance on zone ids. *)
      let zones = zone_count t in
      let order =
        List.init (zones - 1) (fun i -> (zone + i + 1) mod zones)
        |> List.sort (fun a b ->
               let d z =
                 let d = abs (z - zone) in
                 min d (zones - d)
               in
               compare (d a) (d b))
      in
      let rec try_zones = function
        | [] -> None
        | z :: rest -> (
            match alloc_local t ~zone:z n with
            | Some addr ->
                t.fallbacks <- t.fallbacks + 1;
                Some addr
            | None -> try_zones rest)
      in
      try_zones order

let free t addr = Buddy.free t.buddies.(zone_of_addr t addr) addr

let allocated_bytes t zone = Buddy.allocated_bytes t.buddies.(zone)

let remote_fallbacks t = t.fallbacks
