lib/mem/address_space.ml: Iw_hw Platform Tlb
