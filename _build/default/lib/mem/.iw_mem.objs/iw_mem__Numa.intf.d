lib/mem/numa.mli:
