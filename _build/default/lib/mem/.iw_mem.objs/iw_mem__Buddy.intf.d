lib/mem/buddy.mli:
