lib/mem/numa.ml: Array Buddy List Printf
