lib/mem/buddy.ml: Array Hashtbl List Printf
