lib/mem/address_space.mli: Iw_hw
