(** Binary buddy allocator over a simulated physical address range.

    Nautilus performs all memory management with per-zone buddy
    allocators selected by target NUMA zone (§III).  This is a real
    buddy system: power-of-two blocks, split on allocation, coalesce
    with the buddy on free.  Addresses are plain integers into the
    simulated physical space. *)

type t

val create : base:int -> size:int -> min_block:int -> t
(** [create ~base ~size ~min_block] manages [\[base, base+size)].
    [size] and [min_block] must be powers of two with
    [min_block <= size], and [base] must be aligned to [size].
    @raise Invalid_argument otherwise. *)

val alloc : t -> int -> int option
(** [alloc t n] returns the base address of a block of at least [n]
    bytes (rounded up to a power of two >= min_block), or [None] when
    no block is available. *)

val free : t -> int -> unit
(** Free a previously allocated block by its base address.
    @raise Invalid_argument on a bad or double free. *)

val block_size : t -> int -> int
(** Size of the live allocation at this base address.
    @raise Invalid_argument if not live. *)

val is_allocated : t -> int -> bool

val allocated_bytes : t -> int
val free_bytes : t -> int
val total_bytes : t -> int

val largest_free_block : t -> int
(** Size of the largest currently allocatable block (0 when full). *)

val external_fragmentation : t -> float
(** 1 - largest_free/free: 0 when all free space is one block, tends
    to 1 as free space shatters.  0 when no free space. *)

val live_blocks : t -> (int * int) list
(** (base, size) of every live allocation, sorted by base. *)
