(** NUMA zones: one buddy allocator per zone, explicit placement.

    Nautilus makes all NUMA management explicit: allocations name a
    target zone and fall back to the nearest other zone only on
    exhaustion (§III). *)

type t

type zone = int

val create : zones:int -> zone_size:int -> min_block:int -> t
(** [zones] zones, each [zone_size] bytes (a power of two). *)

val zone_count : t -> int

val zone_of_addr : t -> int -> zone
(** @raise Invalid_argument for an address outside every zone. *)

val alloc : t -> zone:zone -> int -> int option
(** Allocate preferring [zone]; falls back to other zones in order of
    distance (ring distance on zone ids). *)

val alloc_local : t -> zone:zone -> int -> int option
(** Allocate strictly in [zone]; no fallback. *)

val free : t -> int -> unit

val allocated_bytes : t -> zone -> int

val remote_fallbacks : t -> int
(** How many allocations could not be satisfied locally. *)
