(** Address-space configurations and their memory-system overheads.

    Contrasts the two virtual-memory regimes the paper discusses:

    - [Identity_large]: Nautilus's single identity-mapped space with
      the largest page size — everything mapped at boot, no faults,
      TLB reach usually covers physical memory (§III, §IV-A).
    - [Demand_paged]: the commodity regime — base pages, first-touch
      faults, TLB pressure proportional to footprint.
    - [Carat_guarded]: CARAT's regime — physical addressing like
      [Identity_large], plus software guards whose cost is computed by
      the CARAT pass (reported separately; see {!Iw_carat}). *)

type regime = Identity_large | Demand_paged | Carat_guarded

type t

val create : Iw_hw.Platform.t -> regime -> t

val regime : t -> regime

val overhead_cycles : t -> Iw_hw.Tlb.profile -> int
(** Memory-system overhead (TLB walks + faults) charged to a workload
    with this access profile.  [Carat_guarded] reports zero here: its
    cost is software guards, accounted by the compiler pass. *)

val page_faults : t -> Iw_hw.Tlb.profile -> int
val tlb_misses : t -> Iw_hw.Tlb.profile -> int
