type t = {
  base : int;
  size : int;
  min_block : int;
  min_order : int;
  max_order : int;
  (* free.(o - min_order) holds base addresses of free blocks of 2^o. *)
  free : (int, unit) Hashtbl.t array;
  live : (int, int) Hashtbl.t;  (* base -> order *)
  mutable allocated : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let create ~base ~size ~min_block =
  if not (is_pow2 size) then invalid_arg "Buddy.create: size not a power of two";
  if not (is_pow2 min_block) then
    invalid_arg "Buddy.create: min_block not a power of two";
  if min_block > size then invalid_arg "Buddy.create: min_block > size";
  if base land (size - 1) <> 0 then
    invalid_arg "Buddy.create: base not aligned to size";
  let min_order = log2 min_block and max_order = log2 size in
  let free = Array.init (max_order - min_order + 1) (fun _ -> Hashtbl.create 16) in
  Hashtbl.replace free.(max_order - min_order) base ();
  { base; size; min_block; min_order; max_order; free; live = Hashtbl.create 64; allocated = 0 }

let slot t order = t.free.(order - t.min_order)

let order_for t n =
  let rec go o = if 1 lsl o >= n then o else go (o + 1) in
  go t.min_order

let alloc t n =
  if n <= 0 then invalid_arg "Buddy.alloc: n <= 0";
  let want = order_for t n in
  if want > t.max_order then None
  else begin
    (* Lowest-address fit across all sufficient orders: keeps
       allocation deterministic and makes compaction converge. *)
    let find want =
      let best = ref None in
      for o = want to t.max_order do
        Hashtbl.iter
          (fun addr () ->
            match !best with
            | Some (a, _) when a <= addr -> ()
            | _ -> best := Some (addr, o))
          (slot t o)
      done;
      match !best with
      | None -> None
      | Some (addr, o) ->
          Hashtbl.remove (slot t o) addr;
          Some (addr, o)
    in
    match find want with
    | None -> None
    | Some (addr, o) ->
        (* Split down to the wanted order, freeing the upper halves. *)
        let rec split o =
          if o > want then begin
            let o' = o - 1 in
            let buddy = addr + (1 lsl o') in
            Hashtbl.replace (slot t o') buddy ();
            split o'
          end
        in
        split o;
        Hashtbl.replace t.live addr want;
        t.allocated <- t.allocated + (1 lsl want);
        Some addr
  end

let free t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Buddy.free: %#x is not live" addr)
  | Some order ->
      Hashtbl.remove t.live addr;
      t.allocated <- t.allocated - (1 lsl order);
      (* Coalesce with the buddy while possible. *)
      let rec coalesce addr order =
        if order >= t.max_order then Hashtbl.replace (slot t order) addr ()
        else begin
          let buddy = t.base + ((addr - t.base) lxor (1 lsl order)) in
          if Hashtbl.mem (slot t order) buddy then begin
            Hashtbl.remove (slot t order) buddy;
            coalesce (min addr buddy) (order + 1)
          end
          else Hashtbl.replace (slot t order) addr ()
        end
      in
      coalesce addr order

let block_size t addr =
  match Hashtbl.find_opt t.live addr with
  | None -> invalid_arg (Printf.sprintf "Buddy.block_size: %#x is not live" addr)
  | Some order -> 1 lsl order

let is_allocated t addr = Hashtbl.mem t.live addr

let allocated_bytes t = t.allocated
let total_bytes t = t.size
let free_bytes t = t.size - t.allocated

let largest_free_block t =
  let rec go o =
    if o < t.min_order then 0
    else if Hashtbl.length (slot t o) > 0 then 1 lsl o
    else go (o - 1)
  in
  go t.max_order

let external_fragmentation t =
  let free = free_bytes t in
  if free = 0 then 0.0
  else 1.0 -. (float_of_int (largest_free_block t) /. float_of_int free)

let live_blocks t =
  Hashtbl.fold (fun base order acc -> (base, 1 lsl order) :: acc) t.live []
  |> List.sort compare
