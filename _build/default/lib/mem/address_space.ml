open Iw_hw

type regime = Identity_large | Demand_paged | Carat_guarded

type t = { plat : Platform.t; regime : regime; tlb : Tlb.t }

let create plat regime =
  let page_kb =
    match regime with
    | Identity_large | Carat_guarded -> plat.Platform.large_page_size_kb
    | Demand_paged -> plat.Platform.page_size_kb
  in
  { plat; regime; tlb = Tlb.create plat ~page_kb }

let regime t = t.regime

let tlb_misses t profile = Tlb.misses t.tlb profile

let page_faults t profile =
  match t.regime with
  | Identity_large | Carat_guarded -> 0
  | Demand_paged -> Tlb.first_touch_faults t.tlb profile

let overhead_cycles t profile =
  match t.regime with
  | Carat_guarded -> 0
  | Identity_large ->
      Tlb.access_overhead_cycles t.tlb t.plat profile ~demand_paged:false
  | Demand_paged ->
      Tlb.access_overhead_cycles t.tlb t.plat profile ~demand_paged:true
