lib/kernel/fiber.mli: Iw_hw
