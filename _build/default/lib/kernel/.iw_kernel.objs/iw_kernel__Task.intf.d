lib/kernel/task.mli: Sched
