lib/kernel/api.ml: Coro Iw_engine List Printf Sched
