lib/kernel/os.ml: Iw_engine Iw_hw
