lib/kernel/api.mli: Sched
