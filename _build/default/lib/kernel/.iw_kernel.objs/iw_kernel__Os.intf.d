lib/kernel/os.mli: Iw_engine Iw_hw
