lib/kernel/sched.ml: Array Coro Cpu Iw_engine Iw_hw Lapic List Os Platform Printf Queue Rng Sim Stats
