lib/kernel/sched.mli: Iw_engine Iw_hw Os
