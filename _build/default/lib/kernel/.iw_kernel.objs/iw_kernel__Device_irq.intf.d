lib/kernel/device_irq.mli: Sched
