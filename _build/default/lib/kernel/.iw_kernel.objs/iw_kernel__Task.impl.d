lib/kernel/task.ml: Api Array List Printf Queue Sched
