lib/kernel/nautilus.mli: Iw_hw Iw_mem Sched
