lib/kernel/device_irq.ml: Array Cpu Iw_engine Iw_hw Platform Sched Sim
