lib/kernel/nautilus.ml: Api Ipi Iw_hw Iw_mem Os Platform Sched
