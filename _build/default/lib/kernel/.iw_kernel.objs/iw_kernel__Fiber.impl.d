lib/kernel/fiber.ml: Api Coro Iw_engine Iw_hw Queue
