(** SoftIRQ-like task framework (§V-A, CCK backend).

    Nautilus's task framework accepts closures with an optional
    compiler-estimated size.  Tasks whose estimated size is below the
    inline threshold run immediately in the submitter's context (the
    paper's "in the scheduler itself, even in interrupt context");
    larger tasks queue per-CPU and are drained by bound worker
    threads. *)

type t
type handle

val create : Sched.t -> ?inline_threshold:int -> ?workers_rt:bool -> unit -> t
(** Start one worker thread per CPU.  [inline_threshold] (cycles,
    default 2000) bounds what runs inline at submission. *)

val submit : ?cpu:int -> ?size_hint:int -> t -> (unit -> unit) -> handle
(** Submit from inside a thread.  [size_hint] is the compiler's cycle
    estimate ([None] = unknown, never inlined).  [cpu] defaults to
    round-robin placement. *)

val wait : handle -> unit
(** Block until the task has run. *)

val shutdown : t -> unit
(** Stop the workers once all queued tasks have drained.  Must be
    called from inside a thread; returns after all workers exit. *)

val executed : t -> int
val inlined : t -> int
