type task = { body : unit -> unit; th_handle : handle }

and handle = { mutable finished : bool; done_sem : Sched.semaphore }

type t = {
  k : Sched.t;
  inline_threshold : int;
  queues : task Queue.t array;
  qsems : Sched.semaphore array;  (* one count per queued task, per CPU *)
  mutable workers : Sched.thread list;
  mutable next_cpu : int;
  mutable stopping : bool;
  mutable executed : int;
  mutable inlined : int;
}

let worker_body t cpu () =
  let rec drain () =
    Api.sem_wait t.qsems.(cpu);
    match Queue.take_opt t.queues.(cpu) with
    | None -> if not t.stopping then drain ()  (* shutdown poke *)
    | Some task ->
        task.body ();
        task.th_handle.finished <- true;
        Api.sem_post task.th_handle.done_sem;
        t.executed <- t.executed + 1;
        drain ()
  in
  drain ()

let create k ?(inline_threshold = 2000) ?(workers_rt = false) () =
  let n = Sched.cpu_count k in
  let queues = Array.init n (fun _ -> Queue.create ()) in
  let qsems = Array.init n (fun _ -> Sched.semaphore ~init:0) in
  let t =
    {
      k;
      inline_threshold;
      queues;
      qsems;
      workers = [];
      next_cpu = 0;
      stopping = false;
      executed = 0;
      inlined = 0;
    }
  in
  t.workers <-
    List.init n (fun cpu ->
        Sched.spawn k
          ~spec:
            {
              Sched.sp_name = Printf.sprintf "taskd-%d" cpu;
              sp_cpu = Some cpu;
              sp_fp = false;
              sp_rt = workers_rt;
            }
          (worker_body t cpu));
  t

let submit ?cpu ?size_hint t body =
  let h = { finished = false; done_sem = Sched.semaphore ~init:0 } in
  let inline_ok =
    match size_hint with Some s -> s <= t.inline_threshold | None -> false
  in
  if inline_ok then begin
    (* Compiler-estimated small task: run in the submitter's context,
       no queueing, no wakeup. *)
    body ();
    h.finished <- true;
    Api.sem_post h.done_sem;
    t.inlined <- t.inlined + 1;
    h
  end
  else begin
    let cpu =
      match cpu with
      | Some c -> c
      | None ->
          let c = t.next_cpu in
          t.next_cpu <- (t.next_cpu + 1) mod Array.length t.queues;
          c
    in
    Queue.push { body; th_handle = h } t.queues.(cpu);
    Api.sem_post t.qsems.(cpu);
    h
  end

let wait h = if not h.finished then Api.sem_wait h.done_sem

let shutdown t =
  t.stopping <- true;
  (* Poke every worker so it re-checks the stopping flag. *)
  Array.iter (fun sem -> Api.sem_post sem) t.qsems;
  List.iter Api.join t.workers

let executed t = t.executed
let inlined t = t.inlined
