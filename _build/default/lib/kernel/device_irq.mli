(** Steerable device interrupts (§III).

    Nautilus makes interrupts fully steerable, so device interrupt
    load "can largely be avoided on most hardware threads" — a
    parallel workload's workers never take device vectors.  The
    commodity default spreads vectors across CPUs (irqbalance-style),
    so every worker periodically loses ~1000+ cycles mid-computation,
    and barrier-structured programs lose it on the critical path.

    This module is a device model that injects interrupts at a fixed
    rate under either policy, on top of whatever kernel is running. *)

type policy =
  | Steered of int  (** All vectors land on this (housekeeping) CPU. *)
  | Spread  (** Round-robin across all CPUs. *)

type t

val start :
  Sched.t -> rate_hz:float -> ?handler_cost:int -> policy -> t
(** Begin injecting interrupts at [rate_hz] (wall-clock rate at the
    platform's frequency).  [handler_cost] (default 600 cycles)
    models the driver's top-half work. *)

val stop : t -> unit

val delivered : t -> int
val per_cpu : t -> int array
(** Deliveries per CPU so far. *)
