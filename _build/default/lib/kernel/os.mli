(** OS personalities: the cost/behavior profile that distinguishes a
    streamlined kernel (Nautilus) from a commodity one (Linux) on the
    same hardware.

    The scheduler engine ({!Sched}) is shared; a personality supplies
    the costs of its primitive operations.  All per-operation costs
    are totals — a Linux personality folds its kernel/user crossing
    into each operation's cost, a Nautilus personality has no
    crossings to fold. *)

type t = {
  os_name : string;
  pick : int;  (** Run-queue pick, non-real-time class. *)
  pick_rt : int;  (** Real-time class admission + pick. *)
  switch_int : int;  (** Integer-state context switch (save + restore). *)
  switch_fp_extra : int;  (** Additional cost when FP state moves. *)
  spawn : int;  (** Thread creation, start to runnable. *)
  exit : int;  (** Thread teardown. *)
  block : int;  (** Cost paid by a thread entering a blocked wait. *)
  wake : int;  (** Cost paid by the waker per thread woken. *)
  wake_latency : int;
      (** Delay before the target CPU notices a new runnable thread. *)
  sleep_arm : int;  (** Arming a one-shot software timer. *)
  timer_extra : int;
      (** Per-timer-event kernel path beyond the architectural
          interrupt dispatch (hrtimer/softirq bookkeeping; ~0 when the
          handler is wired straight to the vector). *)
  timer_jitter : Iw_engine.Rng.t -> int;
      (** Extra delivery delay drawn per timer event (slack,
          non-preemptible sections).  Must be >= 0. *)
  tick_cost : int;  (** Scheduler-tick bookkeeping in the handler. *)
  tick_noise : Iw_engine.Rng.t -> int;
      (** Occasional extra work hitching a ride on the tick (softirqs,
          RCU callbacks, kworkers) — the OS noise that stretches
          barriers as core counts grow.  0 for streamlined kernels. *)
  uncontended_sync : int;  (** User-space-only lock/unlock fast path. *)
}

val nautilus : Iw_hw.Platform.t -> t
(** §III Nautilus: no kernel/user distinction, per-CPU queues, direct
    vectoring, deterministic interrupt paths, fast threads. *)

val linux : Iw_hw.Platform.t -> t
(** Commodity baseline: CFS-weight picks, kernel crossings with
    speculation mitigations on every switch and blocking operation,
    futex block/wake, signal-path timers with slack. *)

val linux_rt : Iw_hw.Platform.t -> t
(** Linux with the real-time class: same crossings, slightly cheaper
    and more predictable timers (no slack), priority picks. *)
