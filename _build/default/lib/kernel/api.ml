open Iw_engine

let work n = Coro.consume n
let yield () = Coro.yield ()

let spawn ?(name = "thread") ?cpu ?(fp = false) ?(rt = false) body =
  Coro.request
    (Sched.R_spawn
       ({ sp_name = name; sp_cpu = cpu; sp_fp = fp; sp_rt = rt }, body))

let join th = Coro.request (Sched.R_join th)
let self () = Coro.request Sched.R_self
let now () = Coro.request Sched.R_now
let cpu_id () = Coro.request Sched.R_cpu
let kernel () = Coro.request Sched.R_kernel
let sleep n = Coro.request (Sched.R_sleep n)
let rand bound = Coro.request (Sched.R_rand bound)
let overhead n = if n > 0 then Coro.request (Sched.R_overhead n)
let lock m = Coro.request (Sched.R_lock m)
let unlock m = Coro.request (Sched.R_unlock m)

let with_lock m f =
  lock m;
  match f () with
  | v ->
      unlock m;
      v
  | exception e ->
      unlock m;
      raise e

let wait c m = Coro.request (Sched.R_cond_wait (c, m))
let signal c = Coro.request (Sched.R_cond_signal c)
let broadcast c = Coro.request (Sched.R_cond_broadcast c)
let sem_wait s = Coro.request (Sched.R_sem_wait s)
let sem_post s = Coro.request (Sched.R_sem_post s)
let barrier_wait b = Coro.request (Sched.R_barrier b)

let parallel ?(fp = false) n f =
  if n <= 0 then invalid_arg "Api.parallel: n <= 0";
  let cpus = Sched.cpu_count (kernel ()) in
  let children =
    List.init (n - 1) (fun i ->
        let idx = i + 1 in
        spawn
          ~name:(Printf.sprintf "par-%d" idx)
          ~cpu:(idx mod cpus) ~fp
          (fun () -> f idx))
  in
  f 0;
  List.iter join children
