(** Nautilus boot helpers and kernel-level event signaling (Nemo).

    Nautilus (§III) is the streamlined kernel framework the paper's
    interweaving examples build on.  Booting with this module gives a
    {!Sched} kernel with the Nautilus personality: no kernel/user
    distinction, per-CPU run queues, direct interrupt vectoring, and
    identity-mapped memory. *)

val boot :
  ?seed:int -> ?quantum_us:float -> Iw_hw.Platform.t -> Sched.t

val address_space : Iw_hw.Platform.t -> Iw_mem.Address_space.t
(** The identity-mapped, largest-page-size address space Nautilus sets
    up at boot. *)

(** Nemo-style remote events: signal a handler on another CPU via
    IPI, the mechanism that makes NK event signaling orders of
    magnitude faster than Linux user-space mechanisms (§III, §IV-B). *)
module Nemo : sig
  val signal :
    Sched.t -> target_cpu:int -> handler:(unit -> unit) -> unit
  (** Inject the event now (from simulator/interrupt context): after
      IPI latency the handler runs on [target_cpu] in interrupt
      context, then the interrupted thread is resumed or rescheduled. *)

  val signal_from_thread :
    Sched.t -> target_cpu:int -> handler:(unit -> unit) -> unit
  (** Same, but called from inside a thread: the sender also pays the
      ICR-write cost. *)
end
