(** Thread-side kernel API.

    These wrappers are what workload and runtime code call from inside
    a simulated thread.  They perform {!Sched} requests; each costs
    what the booted personality says it costs.  [work n] is the
    fundamental "run n cycles of computation" primitive. *)

val work : int -> unit
(** Burn [n] cycles of useful work (preemptible). *)

val yield : unit -> unit
(** Offer the scheduler a switch point. *)

val spawn :
  ?name:string ->
  ?cpu:int ->
  ?fp:bool ->
  ?rt:bool ->
  (unit -> unit) ->
  Sched.thread

val join : Sched.thread -> unit
val self : unit -> Sched.thread
val now : unit -> int
val cpu_id : unit -> int
val kernel : unit -> Sched.t
val sleep : int -> unit
(** Sleep for [n] cycles (arms a software timer). *)

val rand : int -> int
(** Deterministic per-kernel random int in [\[0, bound)]. *)

val overhead : int -> unit
(** Burn [n] cycles accounted as runtime overhead rather than work. *)

val lock : Sched.mutex -> unit
val unlock : Sched.mutex -> unit
val with_lock : Sched.mutex -> (unit -> 'a) -> 'a
val wait : Sched.cond -> Sched.mutex -> unit
val signal : Sched.cond -> unit
val broadcast : Sched.cond -> unit
val sem_wait : Sched.semaphore -> unit
val sem_post : Sched.semaphore -> unit
val barrier_wait : Sched.barrier -> unit

val parallel : ?fp:bool -> int -> (int -> unit) -> unit
(** [parallel n f] spawns [f 1 .. f (n-1)] on distinct CPUs, runs
    [f 0] inline, and joins them all: the basic fork-join helper. *)
