open Iw_ir

let instrument ~poll_budget ~device m =
  Placement.instrument ~budget:poll_budget ~site:(Ir.Poll { device })
    ~site_cost:Cost.poll m

module Device = struct
  type t = {
    mutable pending : int list;  (* ascending completion times *)
    mutable latencies : int list;
    mutable polls : int;
    total : int;
  }

  let create ~completions =
    let sorted = List.sort compare completions in
    { pending = sorted; latencies = []; polls = 0; total = List.length sorted }

  let poll_hook t (hooks : Interp.hooks) =
    {
      hooks with
      on_poll =
        (fun ~device ~cycles ->
          hooks.on_poll ~device ~cycles;
          t.polls <- t.polls + 1;
          let ready, rest = List.partition (fun c -> c <= cycles) t.pending in
          t.pending <- rest;
          List.iter (fun c -> t.latencies <- (cycles - c) :: t.latencies) ready);
    }

  let service_latencies t = List.rev t.latencies
  let serviced t = List.length t.latencies
  let polls t = t.polls
  let _total t = t.total
end

type result = {
  program : string;
  poll_budget : int;
  polls_executed : int;
  completions : int;
  serviced : int;
  mean_latency : float;
  max_latency : int;
  interrupt_latency : int;
  overhead_pct : float;
}

let measure ~poll_budget ~completions ~plat (p : Programs.program) =
  let plain = p.build () in
  let base = Interp.run plain p.entry p.args in
  let m = p.build () in
  ignore (instrument ~poll_budget ~device:0 m);
  let dev = Device.create ~completions in
  let hooks = Device.poll_hook dev Interp.default_hooks in
  let polled = Interp.run ~hooks m p.entry p.args in
  let lats = Device.service_latencies dev in
  let n = List.length lats in
  let mean =
    if n = 0 then 0.0
    else float_of_int (List.fold_left ( + ) 0 lats) /. float_of_int n
  in
  let costs = plat.Iw_hw.Platform.costs in
  {
    program = p.name;
    poll_budget;
    polls_executed = Device.polls dev;
    completions = List.length completions;
    serviced = n;
    mean_latency = mean;
    max_latency = List.fold_left max 0 lats;
    interrupt_latency = costs.interrupt_dispatch + costs.interrupt_return;
    overhead_pct =
      100.0
      *. (float_of_int (polled.cycles - base.cycles) /. float_of_int base.cycles);
  }
