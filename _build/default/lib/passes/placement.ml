open Iw_ir
open Ir

let has_site site insts = List.exists (fun i -> i = site) insts

let has_call insts =
  List.exists (function Call _ -> true | _ -> false) insts

let func_static_cost f =
  Array.fold_left (fun acc b -> acc + Cost.block b) 0 f.blocks

let side_effect_free insts =
  List.for_all
    (function
      | Bin _ | Fbin _ | Mov _ | Load _ | Guard _ -> true
      | Store _ | Alloc _ | Free _ | Call _ | Track _ | Callback _ | Poll _ ->
          false)
    insts

(* Strip-mined placement for a simple counted loop

     header: insts*; br cond, body, exit
     body:   insts*; jmp header          (only pred: header)

   Unroll the *site frequency*, not the semantics: chain k copies
   [header -> body0 -> header1 -> body1 -> ... -> header] where each
   header copy re-tests the exit condition, and put the site only in
   the real header.  Every iteration still tests the bound (no
   overrun); the site now executes once per k iterations, so its cost
   amortizes the way an unrolling compiler would make it. *)
let strip_mine ~budget ~site ~site_cost f =
  let placed = ref 0 in
  let cfg = Cfg.of_func f in
  let simple_loops =
    Cfg.loops cfg
    |> List.filter_map (fun (loop : Cfg.loop) ->
           match (loop.latches, List.sort compare loop.body) with
           | [ latch ], body_sorted
             when body_sorted = List.sort compare [ loop.header; latch ]
                  && latch <> loop.header -> (
               let h = f.blocks.(loop.header) and b = f.blocks.(latch) in
               match (h.term, b.term) with
               | Br { cond; if_true; if_false }, Jmp back
                 when back = loop.header && if_true = latch
                      && Cfg.predecessors cfg latch = [ loop.header ]
                      && side_effect_free h.insts ->
                   Some (h, b, cond, if_false)
               | _ -> None)
           | _ -> None)
  in
  let extra = ref [] in
  let next_bid = ref (Array.length f.blocks) in
  List.iter
    (fun (h, b, cond, exit_lbl) ->
      let per_iter = Cost.block h + Cost.block b in
      let k = min 32 (budget / (3 * max 1 (per_iter + site_cost))) in
      if k > 1 then begin
        (* Allocate 2*(k-1) fresh blocks: header and body copies. *)
        let copies =
          List.init (k - 1) (fun i ->
              let hc =
                { bid = !next_bid + (2 * i); insts = h.insts; term = h.term }
              in
              let bc =
                {
                  bid = !next_bid + (2 * i) + 1;
                  insts = b.insts;
                  term = b.term;
                }
              in
              (hc, bc))
        in
        next_bid := !next_bid + (2 * (k - 1));
        (* Wire the chain. *)
        let rec wire prev_body = function
          | [] -> prev_body.term <- Jmp h.bid
          | (hc, bc) :: rest ->
              prev_body.term <- Jmp hc.bid;
              hc.term <- Br { cond; if_true = bc.bid; if_false = exit_lbl };
              wire bc rest
        in
        wire b copies;
        extra := !extra @ List.concat_map (fun (hc, bc) -> [ hc; bc ]) copies;
        (* The site lives only in the real header. *)
        h.insts <- site :: h.insts;
        incr placed
      end)
    simple_loops;
  if !extra <> [] then f.blocks <- Array.append f.blocks (Array.of_list !extra);
  !placed

let instrument_func ~budget ~site ~site_cost f =
  if budget <= site_cost then
    invalid_arg "Placement: budget must exceed the site cost";
  let inserted = ref 0 in
  inserted := strip_mine ~budget ~site ~site_cost f;
  let add_front b =
    b.insts <- site :: b.insts;
    incr inserted
  in
  (* Rule 1: every loop holds a site on a block that lies on every
     cyclic path (it must dominate all the latches) — a site in just
     one arm of a branchy body leaves site-free cycles. *)
  let cfg = Cfg.of_func f in
  List.iter
    (fun (loop : Cfg.loop) ->
      let covered =
        List.exists
          (fun l ->
            has_site site f.blocks.(l).insts
            && List.for_all (fun latch -> Cfg.dominates cfg l latch) loop.latches)
          loop.body
      in
      if not covered then add_front f.blocks.(loop.header))
    (Cfg.loops cfg);
  (* Rule 2: call-making or oversized functions get an entry site. *)
  let any_call = Array.exists (fun b -> has_call b.insts) f.blocks in
  if
    (any_call || func_static_cost f > budget)
    && not (has_site site f.blocks.(f.entry).insts)
  then add_front f.blocks.(f.entry);
  (* Rule 3: residue dataflow over ALL edges (back edges included),
     iterated with insertion to a fixpoint: at convergence no path
     accumulates more than [budget] cycles between sites.  Residues
     are bounded by the budget (a block that would exceed it inserts),
     so the iteration terminates. *)
  let cfg = Cfg.of_func f in
  let n = Array.length f.blocks in
  let residue_out = Array.make n 0 in
  let order = Cfg.reachable cfg in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed do
    changed := false;
    incr rounds;
    if !rounds > 100 then invalid_arg "Placement: fixpoint did not converge";
    List.iter
      (fun bid ->
        let b = f.blocks.(bid) in
        let residue_in =
          List.fold_left
            (fun acc p -> max acc residue_out.(p))
            0
            (Cfg.predecessors cfg bid)
        in
        let residue = ref residue_in in
        let out = ref [] in
        List.iter
          (fun inst ->
            let c = Cost.inst inst in
            if inst = site then residue := 0
            else if !residue + c > budget then begin
              out := site :: !out;
              incr inserted;
              changed := true;
              residue := 0
            end;
            residue := !residue + c;
            out := inst :: !out)
          b.insts;
        residue := !residue + Cost.term b.term;
        if !residue <> residue_out.(bid) then begin
          residue_out.(bid) <- !residue;
          changed := true
        end;
        b.insts <- List.rev !out)
      order
  done;
  !inserted

let instrument ~budget ~site ~site_cost m =
  Hashtbl.fold
    (fun _ f acc -> acc + instrument_func ~budget ~site ~site_cost f)
    m.funcs 0