open Iw_ir
(** Blended device drivers via compiler-injected polling (§V-C).

    The interrupt-driven logic of a driver is replaced by a
    constant-time poll check injected throughout the code with the
    same bounded-gap placement as compiler timing.  The device then
    behaves as if it were interrupt-driven — bounded service latency —
    but no interrupt ever fires. *)

val instrument : poll_budget:int -> device:int -> Ir.modul -> int

(** A simple device whose requests complete at given times and must
    then be serviced (by poll or by interrupt). *)
module Device : sig
  type t

  val create : completions:int list -> t
  (** Completion times, in cycles, ascending. *)

  val poll_hook : t -> Iw_ir.Interp.hooks -> Iw_ir.Interp.hooks
  (** Wire the device into injected [Poll] sites: each poll services
      any completions that are ready. *)

  val service_latencies : t -> int list
  (** For each completion, cycles from completion to service (only
      completions that were serviced). *)

  val serviced : t -> int
  val polls : t -> int
end

type result = {
  program : string;
  poll_budget : int;
  polls_executed : int;
  completions : int;
  serviced : int;
  mean_latency : float;  (** Poll-serviced latency, cycles. *)
  max_latency : int;
  interrupt_latency : int;
      (** What interrupt-driven servicing would cost per event
          (dispatch + return), for comparison. *)
  overhead_pct : float;  (** Injected-poll cost vs the clean run. *)
}

val measure :
  poll_budget:int ->
  completions:int list ->
  plat:Iw_hw.Platform.t ->
  Iw_ir.Programs.program ->
  result
(** E11: run the program with a blended driver servicing [completions]
    and report latency and overhead against the interrupt path. *)