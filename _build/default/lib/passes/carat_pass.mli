open Iw_ir
(** The CARAT compiler pass (§IV-A).

    Instruments a module so that, at run time, every allocation is
    tracked and every memory access is protection-checked — virtual
    memory's services without paging hardware.  Two optimizations
    carry the paper's headline result (overhead < 6% geomean):

    - {b aggregation}: redundant guards of the same (base, offset)
      within a block collapse to the first (it dominates the rest);
    - {b hoisting}: guards whose base register is loop-invariant move
      out of the loop as a single region guard on the loop's entry
      edges (CARAT reasons about allocations/regions, so a region
      guard with varying offsets inside is sound as long as the
      region stays mapped — data movement is fenced at region
      granularity by the runtime).

    The pass mutates the module in place.  Run {!guard_stats} or the
    interpreter to observe the effect. *)

type config = { aggregate : bool; hoist : bool }

val naive : config
(** Guards everywhere, no optimization. *)

val optimized : config
(** Aggregation + hoisting: the paper's configuration. *)

val instrument : ?config:config -> Ir.modul -> unit
(** Default config is {!optimized}. *)

type stats = {
  exact_guards : int;  (** Static per-access guards remaining. *)
  region_guards : int;  (** Static hoisted region guards. *)
  tracks : int;  (** Static tracking calls. *)
}

val guard_stats : Ir.modul -> stats