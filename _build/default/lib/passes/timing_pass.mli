open Iw_ir
(** Compiler-based timing (§IV-C).

    Replaces the hardware timer with code: timing checks are injected
    so that on every dynamic path at most [check_budget] cycles pass
    between checks.  A check reads the cycle counter and compares it
    to the next deadline (cost {!Cost.callback}); when due, it calls
    into the timer framework, which can drive fiber context switches
    ({!Iw_kernel.Fiber}), software timers, or device polls — with
    call-instruction overhead instead of ~1000-cycle interrupt
    dispatch. *)

val instrument : check_budget:int -> Ir.modul -> int
(** Inject timing checks; returns the number of sites. *)

type accuracy = {
  program : string;
  budget : int;
  max_gap : int;  (** Longest observed cycles between checks. *)
  checks : int;
  cycles : int;
  overhead_pct : float;
      (** Cost of the injected checks relative to the uninstrumented
          run. *)
}

val measure : check_budget:int -> Programs.program -> accuracy
(** Instrument a fresh copy of the program, run both versions, and
    report gap fidelity and overhead (E12).  Also asserts the
    transformation preserved the program's result. *)

(** Runtime half: a timer framework driven by the injected checks. *)
module Framework : sig
  type t

  val create : period:int -> fire_cost:int -> on_fire:(now:int -> unit) -> t
  (** [period] is the desired firing rate in cycles; [fire_cost] the
      cost of one framework invocation. *)

  val hook : t -> Interp.hooks -> Interp.hooks
  (** Wrap interpreter hooks so injected checks drive this
      framework. *)

  val fires : t -> int
  val total_fire_cost : t -> int
end
