open Iw_ir
(** Generic bounded-gap code placement.

    The machinery shared by compiler-based timing (§IV-C) and blended
    device polling (§V-C): statically place injected instructions so
    that, on {e every} dynamic path, at most [budget] cycles elapse
    between consecutive injected sites.  Three rules make it sound on
    arbitrary CFGs:

    + every loop body contains at least one site (cycles cannot
      accumulate unchecked);
    + every function that makes calls, or whose body exceeds the
      budget, gets a site at entry (gaps cannot hide across call
      boundaries);
    + within straight-line code, a max-over-predecessors residue
      dataflow inserts a site before the instruction that would
      overflow the budget. *)

val instrument_func :
  budget:int -> site:Ir.inst -> site_cost:int -> Ir.func -> int
(** Returns the number of sites inserted.  [site_cost] is what one
    site costs (so the residue accounting stays exact). *)

val instrument :
  budget:int -> site:Ir.inst -> site_cost:int -> Ir.modul -> int