lib/passes/placement.ml: Array Cfg Cost Hashtbl Ir Iw_ir List
