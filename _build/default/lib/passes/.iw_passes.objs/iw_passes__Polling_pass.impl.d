lib/passes/polling_pass.ml: Cost Interp Ir Iw_hw Iw_ir List Placement Programs
