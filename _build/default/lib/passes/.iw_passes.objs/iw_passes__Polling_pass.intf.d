lib/passes/polling_pass.mli: Ir Iw_hw Iw_ir
