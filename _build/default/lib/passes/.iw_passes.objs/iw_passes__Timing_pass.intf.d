lib/passes/timing_pass.mli: Interp Ir Iw_ir Programs
