lib/passes/carat_pass.ml: Array Cfg Hashtbl Ir Iw_ir List
