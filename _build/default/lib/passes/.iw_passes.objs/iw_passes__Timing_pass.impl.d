lib/passes/timing_pass.ml: Ir Iw_ir Placement Printf
