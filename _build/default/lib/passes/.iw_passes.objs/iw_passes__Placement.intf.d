lib/passes/placement.mli: Ir Iw_ir
