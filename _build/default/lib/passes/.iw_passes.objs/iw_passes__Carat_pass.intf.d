lib/passes/carat_pass.mli: Ir Iw_ir
