open Iw_ir
open Ir

type config = { aggregate : bool; hoist : bool }

let naive = { aggregate = false; hoist = false }
let optimized = { aggregate = true; hoist = true }

(* ------------------------------------------------------------------ *)
(* Step 1: insert a guard before every access, a track around every
   allocation event. *)

let insert_instrumentation f =
  Array.iter
    (fun b ->
      let out =
        List.concat_map
          (fun inst ->
            match inst with
            | Load { base; offset; _ } | Store { base; offset; _ } ->
                [ Guard { base; offset; kind = Guard_addr }; inst ]
            | Alloc { dst; size } ->
                [ inst; Track { base = Reg dst; tkind = `Alloc size } ]
            | Free { base } -> [ Track { base; tkind = `Free }; inst ]
            | Bin _ | Fbin _ | Mov _ | Call _ | Guard _ | Track _
            | Callback _ | Poll _ ->
                [ inst ])
          b.insts
      in
      b.insts <- out)
    f.blocks

(* ------------------------------------------------------------------ *)
(* Step 2: aggregation.  Within a block, a guard is redundant if an
   identical guard already executed and neither of its registers has
   been redefined since.  Calls invalidate nothing (guards protect
   the *region map*, which tracking keeps consistent), but a Free of
   any base conservatively clears the set. *)

let operand_uses_reg r = function Reg r' -> r = r' | Imm _ -> false

let defs_of_inst = function
  | Bin { dst; _ } | Fbin { dst; _ } | Mov { dst; _ } | Load { dst; _ }
  | Alloc { dst; _ } ->
      Some dst
  | Call { dst; _ } -> dst
  | Store _ | Free _ | Guard _ | Track _ | Callback _ | Poll _ -> None

let aggregate_block b =
  let seen : (operand * operand, unit) Hashtbl.t = Hashtbl.create 8 in
  let invalidate_reg r =
    let stale =
      Hashtbl.fold
        (fun ((base, off) as key) () acc ->
          if operand_uses_reg r base || operand_uses_reg r off then key :: acc
          else acc)
        seen []
    in
    List.iter (Hashtbl.remove seen) stale
  in
  let out =
    List.filter
      (fun inst ->
        match inst with
        | Guard { base; offset; kind = Guard_addr } ->
            if Hashtbl.mem seen (base, offset) then false
            else begin
              Hashtbl.replace seen (base, offset) ();
              true
            end
        | Free _ ->
            Hashtbl.reset seen;
            true
        | _ ->
            (match defs_of_inst inst with
            | Some d -> invalidate_reg d
            | None -> ());
            true)
      b.insts
  in
  b.insts <- out

(* ------------------------------------------------------------------ *)
(* Step 3: hoisting.  Innermost loops first: exact guards whose base
   is invariant in the loop are removed from the body; one region
   guard per distinct base lands on every entry edge (predecessor of
   the header outside the loop). *)

let hoist_func f =
  let cfg = Cfg.of_func f in
  let loops =
    Cfg.loops cfg |> List.sort (fun a b -> compare b.Cfg.depth a.Cfg.depth)
  in
  List.iter
    (fun (loop : Cfg.loop) ->
      let defs = Cfg.defs_in f loop.body in
      let hoistable = Hashtbl.create 4 in
      (* Collect and remove hoistable guards. *)
      List.iter
        (fun lbl ->
          let b = f.blocks.(lbl) in
          b.insts <-
            List.filter
              (fun inst ->
                match inst with
                | Guard { base; kind = Guard_addr; _ }
                | Guard { base; kind = Guard_region _; _ }
                  when Cfg.operand_invariant defs base ->
                    Hashtbl.replace hoistable base ();
                    false
                | _ -> true)
              b.insts)
        loop.body;
      if Hashtbl.length hoistable > 0 then begin
        let entry_preds =
          Cfg.predecessors cfg loop.header
          |> List.filter (fun p -> not (List.mem p loop.body))
        in
        List.iter
          (fun p ->
            let pb = f.blocks.(p) in
            Hashtbl.iter
              (fun base () ->
                let g =
                  Guard
                    {
                      base;
                      offset = Imm 0;
                      kind = Guard_region { length = Imm 0 };
                    }
                in
                if not (List.mem g pb.insts) then pb.insts <- pb.insts @ [ g ])
              hoistable)
          entry_preds
      end)
    loops

(* ------------------------------------------------------------------ *)

let instrument ?(config = optimized) m =
  Hashtbl.iter
    (fun _ f ->
      insert_instrumentation f;
      if config.aggregate then Array.iter aggregate_block f.blocks;
      if config.hoist then hoist_func f;
      if config.aggregate then Array.iter aggregate_block f.blocks)
    m.funcs

type stats = { exact_guards : int; region_guards : int; tracks : int }

let guard_stats m =
  let exact = ref 0 and region = ref 0 and tracks = ref 0 in
  Hashtbl.iter
    (fun _ f ->
      Array.iter
        (fun b ->
          List.iter
            (fun inst ->
              match inst with
              | Guard { kind = Guard_addr; _ } -> incr exact
              | Guard { kind = Guard_region _; _ } -> incr region
              | Track _ -> incr tracks
              | _ -> ())
            b.insts)
        f.blocks)
    m.funcs;
  { exact_guards = !exact; region_guards = !region; tracks = !tracks }