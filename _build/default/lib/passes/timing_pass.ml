open Iw_ir
let site = Ir.Callback { cb = "nk_time_hook" }

let instrument ~check_budget m =
  Placement.instrument ~budget:check_budget ~site ~site_cost:Iw_ir.Cost.callback
    m

type accuracy = {
  program : string;
  budget : int;
  max_gap : int;
  checks : int;
  cycles : int;
  overhead_pct : float;
}

let measure ~check_budget (p : Iw_ir.Programs.program) =
  let plain = p.build () in
  let base = Iw_ir.Interp.run plain p.entry p.args in
  let m = p.build () in
  ignore (instrument ~check_budget m);
  let timed = Iw_ir.Interp.run m p.entry p.args in
  (match (base.ret, timed.ret) with
  | Some a, Some b when a <> b ->
      invalid_arg
        (Printf.sprintf "timing pass changed %s's result: %d -> %d" p.name a b)
  | _ -> ());
  {
    program = p.name;
    budget = check_budget;
    max_gap = timed.max_callback_gap;
    checks = timed.callbacks;
    cycles = timed.cycles;
    overhead_pct =
      100.0
      *. (float_of_int (timed.cycles - base.cycles) /. float_of_int base.cycles);
  }

module Framework = struct
  type t = {
    period : int;
    fire_cost : int;
    on_fire : now:int -> unit;
    mutable next_deadline : int;
    mutable fires : int;
  }

  let create ~period ~fire_cost ~on_fire =
    if period <= 0 then invalid_arg "Framework.create: period <= 0";
    { period; fire_cost; on_fire; next_deadline = period; fires = 0 }

  let hook t (hooks : Iw_ir.Interp.hooks) =
    {
      hooks with
      on_callback =
        (fun name ~cycles ->
          hooks.on_callback name ~cycles;
          if cycles >= t.next_deadline then begin
            t.fires <- t.fires + 1;
            t.next_deadline <- cycles + t.period;
            t.on_fire ~now:cycles
          end);
    }

  let fires t = t.fires
  let total_fire_cost t = t.fires * t.fire_cost
end