(* Kernel OpenMP (SecV-A): run the NAS BT surrogate under all four
   execution modes at 16 CPUs and compare.

     dune exec examples/omp_nas.exe *)

open Iw_omp

let () =
  let plat = Iw_hw.Platform.knl in
  let bench = Nas.bt in
  Printf.printf "NAS %s surrogate, 16 CPUs, four OpenMP stacks\n\n"
    bench.Nas.nas_name;
  let linux = Nas.run plat Runtime.Linux_user ~nthreads:16 bench in
  Printf.printf "%-12s %12s %9s %9s\n" "mode" "cycles" "speedup" "vs-linux";
  List.iter
    (fun mode ->
      let r = Nas.run plat mode ~nthreads:16 bench in
      Printf.printf "%-12s %12d %9.1f %9.2f\n"
        (Runtime.mode_name mode)
        r.elapsed_cycles r.speedup_vs_serial
        (float_of_int linux.elapsed_cycles /. float_of_int r.elapsed_cycles))
    [ Runtime.Linux_user; Runtime.Rtk; Runtime.Pik; Runtime.Cck ];
  print_newline ();
  (* The EPCC-style construct overheads explain the gap. *)
  Printf.printf "construct overheads (cycles per construct, 16 threads):\n";
  List.iter
    (fun (row : Epcc.row) ->
      Printf.printf "  %-12s %-12s %10.0f\n"
        (Epcc.construct_name row.construct)
        (Runtime.mode_name row.mode)
        row.overhead_cycles_per_construct)
    (Epcc.table plat ~modes:[ Runtime.Linux_user; Runtime.Rtk ] ~nthreads:16)
