(* Virtines (SecIV-D): a serverless thumbnail-ish pipeline where each
   request runs three isolated stages (decode, transform, encode) as
   virtine calls.  Compare stack choices for the execution context.

     dune exec examples/faas_pipeline.exe *)

open Iw_virtine

let pipeline wasp =
  (* decode 90us, transform 240us, encode 130us - each in its own
     isolated context, as a paranoid FaaS platform would. *)
  Wasp.call wasp ~work_us:90.0
  +. Wasp.call wasp ~work_us:240.0
  +. Wasp.call wasp ~work_us:130.0

let () =
  Printf.printf "three-stage isolated pipeline, 200 requests each\n\n";
  Printf.printf "%-24s %12s %12s\n" "context" "mean(ms)" "per-stage(us)";
  List.iter
    (fun (name, config) ->
      let wasp = Wasp.create ~seed:3 config in
      let total = ref 0.0 in
      let requests = 200 in
      for _ = 1 to requests do
        total := !total +. pipeline wasp
      done;
      let mean_us = !total /. float_of_int requests in
      Printf.printf "%-24s %12.2f %12.0f\n" name (mean_us /. 1000.0)
        (mean_us /. 3.0))
    [
      ( "full-linux-boot",
        { Wasp.default with profile = Wasp.Full_linux_boot; mem_mb = 128 } );
      ("minimal-64", Wasp.default);
      ("minimal-64+snapshot", { Wasp.default with snapshot = true });
      ("bespoke-16", { Wasp.default with profile = Wasp.Bespoke_16 });
      ( "bespoke-16+pool",
        { Wasp.default with profile = Wasp.Bespoke_16; pooled = true } );
    ];
  print_newline ();
  print_endline "Bespoke contexts make per-call isolation affordable: the";
  print_endline "compiler-synthesized 16-bit context pays for none of the";
  print_endline "machinery the pipeline never uses (SecV-E)."
