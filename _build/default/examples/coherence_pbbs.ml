(* Selective coherence deactivation (SecV-B): replay one PBBS-style
   trace against tracked MESI and against the deactivated protocol,
   and dump the protocol-level counters that explain the gap.

     dune exec examples/coherence_pbbs.exe *)

open Iw_coherence

let show name m =
  let c = Machine.counters m in
  Printf.printf "%-10s makespan=%9d  miss-rate=%4.1f%%  dir-reqs=%8d\n"
    name (Machine.makespan m)
    (100.0 *. float_of_int c.misses /. float_of_int c.accesses)
    c.dir_requests;
  Printf.printf "%10s invals=%7d  data-msgs=%8d  ctrl-msgs=%8d  energy=%.0f\n"
    "" c.invalidations c.data_msgs c.ctrl_msgs
    (Machine.interconnect_energy m)

let () =
  let params = Machine.default_params ~cores:24 ~cores_per_socket:12 in
  let bench = Traces.samplesort in
  Printf.printf "PBBS %s on the dual-socket model (24 cores)\n\n"
    bench.Traces.bench_name;
  let base = Traces.run_bench ~params Machine.Off bench in
  let deact = Traces.run_bench ~params Machine.Private_and_ro bench in
  show "MESI" base;
  show "deactivated" deact;
  Printf.printf "\nspeedup %.2fx, interconnect energy -%.0f%%\n"
    (float_of_int (Machine.makespan base)
    /. float_of_int (Machine.makespan deact))
    (100.0
    *. (1.0
       -. Machine.interconnect_energy deact /. Machine.interconnect_energy base));
  print_endline
    "Private and read-only data (classified by the language runtime)";
  print_endline
    "skip the directory entirely; only truly shared data stays coherent."
