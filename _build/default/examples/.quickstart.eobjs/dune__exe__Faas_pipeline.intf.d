examples/faas_pipeline.mli:
