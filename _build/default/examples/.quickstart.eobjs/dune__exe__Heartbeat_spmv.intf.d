examples/heartbeat_spmv.mli:
