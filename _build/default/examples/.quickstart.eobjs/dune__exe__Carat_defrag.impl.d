examples/carat_defrag.ml: Interp Iw_carat Iw_ir Iw_passes Option Printf Programs Runtime
