examples/heartbeat_spmv.ml: Iw_heartbeat Iw_hw List Printf Tpal Tpal_tree
