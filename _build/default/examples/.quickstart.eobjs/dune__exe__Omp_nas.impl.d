examples/omp_nas.ml: Epcc Iw_hw Iw_omp List Nas Printf Runtime
