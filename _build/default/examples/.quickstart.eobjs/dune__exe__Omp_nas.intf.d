examples/omp_nas.mli:
