examples/virtine_fib.ml: Iw_ir Iw_virtine List Option Printf Wasp
