examples/faas_pipeline.ml: Iw_virtine List Printf Wasp
