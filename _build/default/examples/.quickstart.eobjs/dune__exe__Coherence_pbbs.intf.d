examples/coherence_pbbs.mli:
