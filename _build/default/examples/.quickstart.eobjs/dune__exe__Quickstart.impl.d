examples/quickstart.ml: Api Format Interweave Iw_hw Iw_kernel List Printf Sched
