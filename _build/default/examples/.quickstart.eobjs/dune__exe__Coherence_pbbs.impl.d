examples/coherence_pbbs.ml: Iw_coherence Machine Printf Traces
