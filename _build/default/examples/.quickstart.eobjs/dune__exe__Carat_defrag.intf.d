examples/carat_defrag.mli:
