examples/virtine_fib.mli:
