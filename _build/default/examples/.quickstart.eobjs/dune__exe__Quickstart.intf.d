examples/quickstart.mli:
