(* Figure 5: `virtine int fib(int n)` - a function that executes in
   its own isolated virtual context.  The function body really runs
   (the IR interpreter computes fib); the context design decides what
   the isolation costs.

     dune exec examples/virtine_fib.exe *)

open Iw_virtine

let () =
  let ghz = 1.3 in
  let fib = Iw_ir.Programs.fib_rec 20 in
  Printf.printf "virtine int fib(20)  [compiled body: %s]\n\n" fib.description;
  Printf.printf "%-24s %10s %14s %12s\n" "context" "result" "latency(us)"
    "vs plain";
  (* Plain call baseline: just the function body. *)
  let plain = Iw_ir.Interp.run (fib.build ()) fib.entry fib.args in
  let plain_us = float_of_int plain.cycles /. (ghz *. 1e3) in
  Printf.printf "%-24s %10d %14.1f %12s\n" "plain call (no isolation)"
    (Option.get plain.ret) plain_us "1.0x";
  List.iter
    (fun (name, config) ->
      let w = Wasp.create ~seed:5 config in
      let ret, latency = Wasp.call_program w ~ghz fib in
      assert (ret = Some (Option.get plain.ret));
      Printf.printf "%-24s %10d %14.1f %12s\n" name (Option.get ret) latency
        (Printf.sprintf "%.0fx" (latency /. plain_us)))
    [
      ( "full-linux-boot",
        { Wasp.default with profile = Wasp.Full_linux_boot; mem_mb = 128 } );
      ("minimal-64", Wasp.default);
      ("minimal-64+snapshot", { Wasp.default with snapshot = true });
      ("bespoke-16", { Wasp.default with profile = Wasp.Bespoke_16 });
      ( "bespoke-16+pool",
        { Wasp.default with profile = Wasp.Bespoke_16; pooled = true } );
    ];
  print_newline ();
  print_endline
    "fib needs no I/O, no FP, no OS: the compiler-synthesized 16-bit";
  print_endline
    "context makes per-call virtualized isolation a ~100us proposition";
  print_endline "instead of a ~100ms one (SecIV-D, SecV-E)."
