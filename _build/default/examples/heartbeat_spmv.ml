(* Heartbeat scheduling (TPAL, SecIV-B): run the spmv benchmark under
   both signal mechanisms and compare achieved heartbeat fidelity.

     dune exec examples/heartbeat_spmv.exe *)

open Iw_heartbeat

let () =
  let plat = Iw_hw.Platform.knl in
  Printf.printf
    "spmv under heartbeat scheduling, 16 workers, heart-rate sweep\n\n";
  Printf.printf "%-10s %6s | %9s %9s %6s | %6s %9s\n" "os" "hb(us)"
    "target-Hz" "actual-Hz" "cv" "ovh" "speedup";
  List.iter
    (fun hb ->
      List.iter
        (fun driver ->
          let r =
            Tpal.run plat { workers = 16; heartbeat_us = hb; driver; seed = 11 }
              Tpal.spmv
          in
          Printf.printf "%-10s %6.0f | %9.0f %9.0f %6.3f | %5.1f%% %9.2f\n" r.os
            hb r.target_rate_hz r.achieved_rate_hz r.rate_cv r.overhead_pct
            r.speedup_vs_serial)
        [ Tpal.Nk_ipi; Tpal.Linux_signal ])
    [ 100.0; 20.0 ];
  print_newline ();
  print_endline
    "The Nautilus IPI broadcast tracks the target at both rates with";
  print_endline
    "near-zero jitter; the Linux signal chain falls behind at 20us and";
  print_endline "wobbles (cv) even at 100us - the Figure 3 story.";
  print_newline ();
  (* Nested fork-join: the promote-oldest rule in action. *)
  Printf.printf "nested fork-join (fib tree), 16 workers:\n";
  List.iter
    (fun (policy, name) ->
      let r =
        Tpal_tree.run plat
          { workers = 16; heartbeat_us = 30.0; policy; seed = 4 }
          (Tpal_tree.fib 22)
      in
      Printf.printf "  %-16s promotions=%4d steals=%4d speedup=%5.2f\n" name
        r.promotions r.steals r.speedup_vs_serial)
    [
      (Tpal_tree.Promote_oldest, "promote-oldest");
      (Tpal_tree.Promote_newest, "promote-newest");
    ]
