(* Quickstart: boot both stacks, run the same tiny parallel program on
   each, and see why the layers matter.

     dune exec examples/quickstart.exe *)

open Iw_kernel

let parallel_sum kernel ~cpus =
  (* A fork-join sum over a range, written directly against the kernel
     API: spawn one thread per CPU, each consumes its share of work
     cycles, a mutex-protected accumulator collects results. *)
  let total = ref 0 in
  let finish = ref 0 in
  ignore
    (Sched.spawn kernel (fun () ->
         let m = Sched.mutex () in
         Api.parallel cpus (fun i ->
             Api.work 2_000_000;
             (* everyone computes... *)
             Api.with_lock m (fun () -> total := !total + i));
         finish := Api.now ()));
  Sched.run kernel;
  (!total, !finish)

let () =
  let plat = Iw_hw.Platform.with_cores Iw_hw.Platform.knl 8 in
  let commodity = Interweave.Stack.commodity plat in
  let interwoven = Interweave.Stack.interwoven plat in
  Printf.printf "platform: %s\n\n" (Format.asprintf "%a" Iw_hw.Platform.pp plat);
  List.iter
    (fun stack ->
      let k = Interweave.Stack.boot ~seed:1 stack in
      let total, cycles = parallel_sum k ~cpus:8 in
      Printf.printf "%s\n  sum=%d  elapsed=%d cycles (%.1f us)\n\n"
        (Interweave.Stack.describe stack)
        total cycles
        (Iw_hw.Platform.us_of_cycles plat cycles))
    [ commodity; interwoven ];
  Printf.printf
    "layer costs (cycles): event delivery %d vs %d; timer mechanism %d vs %d\n"
    (Interweave.Stack.event_delivery_cycles commodity)
    (Interweave.Stack.event_delivery_cycles interwoven)
    (Interweave.Stack.timer_mechanism_cost commodity)
    (Interweave.Stack.timer_mechanism_cost interwoven)
