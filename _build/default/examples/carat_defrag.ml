(* CARAT (SecIV-A): compile a program with guards and tracking, run it
   under the CARAT runtime, and defragment physical memory *while it
   runs* - data moves under its feet, the forwarding map keeps it
   correct, and no page table is anywhere in sight.

     dune exec examples/carat_defrag.exe *)

open Iw_ir
open Iw_carat

let () =
  let program = Programs.stream_triad 2000 in
  Printf.printf "program: %s (%s)\n" program.name program.description;

  (* "Compile": instrument with the CARAT pass + timing checks. *)
  let m = program.build () in
  Iw_passes.Carat_pass.instrument m;
  let checks = Iw_passes.Timing_pass.instrument ~check_budget:2000 m in
  let stats = Iw_passes.Carat_pass.guard_stats m in
  Printf.printf
    "instrumented: %d exact guards, %d region guards, %d tracks, %d timing checks\n"
    stats.exact_guards stats.region_guards stats.tracks checks;

  (* The timer framework periodically defragments the heap mid-run. *)
  let rt = Runtime.create () in
  let defrags = ref 0 and moved = ref 0 in
  let fw =
    Iw_passes.Timing_pass.Framework.create ~period:15_000 ~fire_cost:100
      ~on_fire:(fun ~now:_ ->
        incr defrags;
        moved := !moved + Runtime.defragment rt)
  in
  let hooks = Iw_passes.Timing_pass.Framework.hook fw (Runtime.hooks rt) in
  let r = Interp.run ~hooks m program.entry program.args in

  Printf.printf "ran %d instructions, %d guards checked, 0 faults\n" r.dyn_insts
    (Runtime.guard_checks rt);
  ignore !moved;
  Printf.printf "defragmented %d times, %d region moves (%d words copied)\n"
    !defrags (Runtime.moves rt) (Runtime.moved_words rt);
  Printf.printf "result: %d (expected %d) - data movement was invisible\n"
    (Option.get r.ret)
    (Option.get program.expected);
  assert (r.ret = program.expected)
