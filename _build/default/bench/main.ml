(* The benchmark harness.

   Part 1 regenerates every table and figure the paper reports
   (experiments E1..E12 from the registry) plus the ablations, and
   prints them with the paper's claims alongside — this is the
   reproduction itself (simulated cycles, deterministic).

   Part 2 runs Bechamel wall-clock microbenchmarks of the simulator's
   own hot paths — one Test.make per reproduced table, sized down so
   each iteration is quick — so performance regressions in this
   codebase are visible too. *)

open Bechamel
open Toolkit

(* ------------------------------------------------------------------ *)
(* Part 1: the reproduction *)

let run_reproduction () =
  print_endline
    "==================================================================";
  print_endline
    " Reproduction: The Case for an Interwoven Parallel HW/SW Stack";
  print_endline
    "==================================================================\n";
  List.iter
    (fun (e : Interweave.Experiments.experiment) ->
      let t0 = Unix.gettimeofday () in
      print_string (Interweave.Experiments.run_to_string e);
      Printf.printf "  [%s completed in %.1fs wall time]\n\n" e.id
        (Unix.gettimeofday () -. t0))
    (Interweave.Experiments.all ())

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel microbenchmarks of the simulator itself *)

let mini_heartbeat () =
  let bench =
    { Iw_heartbeat.Tpal.bench_name = "mini-spmv";
      ranges = [ { items = 200_000; grain = 20 } ] }
  in
  ignore
    (Iw_heartbeat.Tpal.run Iw_hw.Platform.knl
       { workers = 4; heartbeat_us = 100.0; driver = Iw_heartbeat.Tpal.Nk_ipi; seed = 2 }
       bench)

let mini_nas =
  {
    Iw_omp.Nas.nas_name = "mini-bt";
    steps = 2;
    step_regions =
      [ { rs_iters = 4_096; rs_cycles = 150; rs_sched = Iw_omp.Runtime.Static } ];
    footprint_kb = 8192;
    locality = 0.9;
    accesses_per_iter = 2;
  }

let mini_omp () =
  ignore (Iw_omp.Nas.run Iw_hw.Platform.knl Iw_omp.Runtime.Rtk ~nthreads:4 mini_nas)

let mini_coherence () =
  let params = Iw_coherence.Machine.default_params ~cores:8 ~cores_per_socket:4 in
  let bench =
    { Iw_coherence.Traces.samplesort with accesses_per_core = 4_000 }
  in
  ignore
    (Iw_coherence.Traces.run_bench ~params Iw_coherence.Machine.Private_and_ro
       bench)

let mini_carat () =
  let p = Iw_ir.Programs.vec_sum 400 in
  let m = p.build () in
  Iw_passes.Carat_pass.instrument m;
  let rt = Iw_carat.Runtime.create () in
  ignore (Iw_ir.Interp.run ~hooks:(Iw_carat.Runtime.hooks rt) m p.entry p.args)

let mini_timing () =
  let p = Iw_ir.Programs.mat_mul 12 in
  ignore (Iw_passes.Timing_pass.measure ~check_budget:2000 p)

let mini_virtine () =
  let t =
    Iw_virtine.Wasp.create
      { Iw_virtine.Wasp.default with profile = Iw_virtine.Wasp.Bespoke_16 }
  in
  for _ = 1 to 100 do
    ignore (Iw_virtine.Wasp.call t ~work_us:50.0)
  done

let mini_switch () =
  let plat = Iw_hw.Platform.with_cores Iw_hw.Platform.knl 1 in
  let k = Iw_kernel.Nautilus.boot ~seed:4 ~quantum_us:50.0 plat in
  for _ = 1 to 2 do
    ignore
      (Iw_kernel.Sched.spawn k
         ~spec:{ Iw_kernel.Sched.default_spec with sp_cpu = Some 0 }
         (fun () -> Iw_kernel.Api.work 1_000_000))
  done;
  Iw_kernel.Sched.run k

let mini_pipeline () =
  ignore (Iw_hw.Pipeline_interrupt.sweep Iw_hw.Platform.knl ~rate_hz:[ 1e4; 1e6 ])

let mini_buddy () =
  let b = Iw_mem.Buddy.create ~base:0 ~size:(1 lsl 16) ~min_block:16 in
  let live = Array.init 512 (fun _ -> Iw_mem.Buddy.alloc b 32) in
  Array.iter (function Some a -> Iw_mem.Buddy.free b a | None -> ()) live

let mini_polling () =
  ignore
    (Iw_passes.Polling_pass.measure ~poll_budget:1500
       ~completions:[ 10_000; 50_000 ] ~plat:Iw_hw.Platform.knl
       (Iw_ir.Programs.vec_sum 1000))

let tests =
  Test.make_grouped ~name:"interweave" ~fmt:"%s/%s"
    [
      Test.make ~name:"fig3-heartbeat" (Staged.stage mini_heartbeat);
      Test.make ~name:"fig4-ctx-switch" (Staged.stage mini_switch);
      Test.make ~name:"fig6-omp" (Staged.stage mini_omp);
      Test.make ~name:"fig7-coherence" (Staged.stage mini_coherence);
      Test.make ~name:"tab-carat" (Staged.stage mini_carat);
      Test.make ~name:"tab-timing" (Staged.stage mini_timing);
      Test.make ~name:"tab-virtine" (Staged.stage mini_virtine);
      Test.make ~name:"tab-pipeline-irq" (Staged.stage mini_pipeline);
      Test.make ~name:"tab-polling" (Staged.stage mini_polling);
      Test.make ~name:"buddy-alloc" (Staged.stage mini_buddy);
    ]

let run_bechamel () =
  print_endline
    "==================================================================";
  print_endline " Bechamel: wall-clock cost of the simulators themselves";
  print_endline
    "==================================================================\n";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:50 ~quota:(Time.second 0.4) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns_per_run =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        (name, ns_per_run) :: acc)
      results []
    |> List.sort compare
  in
  Printf.printf "%-32s %16s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 49 '-');
  List.iter
    (fun (name, ns) -> Printf.printf "%-32s %16.0f\n" name ns)
    rows

let () =
  let t0 = Unix.gettimeofday () in
  run_reproduction ();
  run_bechamel ();
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0)
