(* Tests for the linuxsim timers and the TPAL heartbeat runtime. *)

open Iw_kernel
open Iw_heartbeat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plat4 = Iw_hw.Platform.with_cores Iw_hw.Platform.knl 4

(* ------------------------------------------------------------------ *)
(* Itimer (linuxsim) *)

let test_itimer_delivers_periodically () =
  let k = Iw_linuxsim.Linux.boot ~seed:1 plat4 in
  let hits = ref 0 in
  let tm =
    Iw_linuxsim.Itimer.create k ~cpu:0 ~period:200_000
      ~handler:(fun ~preempted ->
        incr hits;
        if preempted >= 0 then Sched.stash_preempted k 0 preempted)
      ()
  in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         Api.work 2_000_000));
  Iw_linuxsim.Itimer.start tm;
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         Api.work 2_100_000;
         Iw_linuxsim.Itimer.stop tm));
  Sched.run k;
  check_bool
    (Printf.sprintf "roughly one per period (%d)" !hits)
    true
    (!hits >= 6 && !hits <= 11)

let test_itimer_jitter_positive () =
  let k = Iw_linuxsim.Linux.boot ~seed:1 plat4 in
  let tm =
    Iw_linuxsim.Itimer.create k ~cpu:0 ~period:100_000
      ~handler:(fun ~preempted ->
        if preempted >= 0 then Sched.stash_preempted k 0 preempted)
      ()
  in
  Iw_linuxsim.Itimer.start tm;
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         Api.work 1_500_000;
         Iw_linuxsim.Itimer.stop tm));
  Sched.run k;
  let times = Iw_linuxsim.Itimer.delivery_times tm in
  check_bool "some deliveries" true (List.length times >= 5);
  (* Every delivery happens at or after its grid point. *)
  List.iteri
    (fun i t -> check_bool "after grid" true (t >= (i + 1) * 100_000))
    times

let test_itimer_coalesces_overruns () =
  (* Period far smaller than the delivery chain: most expiries must
     coalesce rather than queue without bound. *)
  let k = Iw_linuxsim.Linux.boot ~seed:1 plat4 in
  let tm =
    Iw_linuxsim.Itimer.create k ~cpu:0 ~period:1_000 ~handler_cost:4_000
      ~handler:(fun ~preempted ->
        if preempted >= 0 then Sched.stash_preempted k 0 preempted)
      ()
  in
  Iw_linuxsim.Itimer.start tm;
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         Api.work 400_000;
         Iw_linuxsim.Itimer.stop tm));
  Sched.run k;
  check_bool "overruns counted" true (Iw_linuxsim.Itimer.overruns tm > 10);
  check_bool "delivered less than expired" true
    (Iw_linuxsim.Itimer.delivered tm < 400)

(* ------------------------------------------------------------------ *)
(* Deque *)

let test_deque_lifo_owner_fifo_thief () =
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  check_int "owner pops newest" 3 (Option.get (Deque.pop_bottom d));
  check_int "thief steals oldest" 1 (Option.get (Deque.steal_top d));
  check_int "one left" 1 (Deque.length d);
  check_int "last" 2 (Option.get (Deque.pop_bottom d));
  check_bool "empty" true (Deque.pop_bottom d = None && Deque.steal_top d = None)

(* ------------------------------------------------------------------ *)
(* TPAL *)

let small_bench =
  { Tpal.bench_name = "test"; ranges = [ { items = 400_000; grain = 20 } ] }

let run_tpal ?(workers = 4) ?(hb = 50.0) driver =
  Tpal.run Iw_hw.Platform.knl
    { workers; heartbeat_us = hb; driver; seed = 17 }
    small_bench

let test_tpal_completes_all_items () =
  (* Tpal.run raises if any item is lost; also check conservation via
     the work accounting: every item's grain must be executed. *)
  let r = run_tpal Tpal.Nk_ipi in
  check_bool "work conserved" true
    (r.work_cycles >= Tpal.total_work small_bench)

let test_tpal_parallelizes () =
  let r = run_tpal Tpal.Nk_ipi in
  check_bool
    (Printf.sprintf "speedup %.2f > 3 on 4 workers" r.speedup_vs_serial)
    true
    (r.speedup_vs_serial > 3.0)

let test_tpal_promotions_happen () =
  let r = run_tpal Tpal.Nk_ipi in
  check_bool "promotions" true (r.promotions > 5);
  check_bool "steals spread work" true (r.steals > 0)

let test_tpal_nk_rate_exact () =
  let r = run_tpal ~hb:20.0 Tpal.Nk_ipi in
  let err = abs_float (r.achieved_rate_hz -. r.target_rate_hz) /. r.target_rate_hz in
  check_bool
    (Printf.sprintf "rate within 5%% (%.0f vs %.0f)" r.achieved_rate_hz
       r.target_rate_hz)
    true (err < 0.05);
  check_bool "steady" true (r.rate_cv < 0.05)

let test_tpal_linux_worse_at_fine_grain () =
  let nk = run_tpal ~hb:20.0 Tpal.Nk_ipi in
  let lx = run_tpal ~hb:20.0 Tpal.Linux_signal in
  check_bool "linux jittery vs nk" true (lx.rate_cv > (2.0 *. nk.rate_cv) +. 0.05);
  check_bool "linux achieves less" true
    (lx.achieved_rate_hz < nk.achieved_rate_hz);
  check_bool "linux overhead higher" true (lx.overhead_pct > nk.overhead_pct)

let test_tpal_single_worker_serial () =
  let r = run_tpal ~workers:1 Tpal.Nk_ipi in
  check_bool "speedup ~1" true
    (r.speedup_vs_serial > 0.85 && r.speedup_vs_serial <= 1.01)

let test_tpal_deterministic () =
  let a = run_tpal Tpal.Nk_ipi and b = run_tpal Tpal.Nk_ipi in
  check_int "same elapsed" a.elapsed_cycles b.elapsed_cycles;
  check_int "same promotions" a.promotions b.promotions

(* ------------------------------------------------------------------ *)
(* TPAL under fault injection: the heartbeat must keep promoting even
   when the timer or the IPI wire misbehaves. *)

module Plan = Iw_faults.Plan

let run_tpal_faulted ~kinds ~rate =
  let obs = Iw_obs.Obs.create ~collect:true () in
  let r =
    Iw_obs.Obs.with_ambient obs (fun () ->
        Plan.with_ambient
          (Plan.create ~kinds ~rate ~seed:42 ())
          (fun () -> run_tpal ~hb:20.0 Tpal.Nk_ipi))
  in
  (r, Iw_obs.Obs.total_counters obs)

let test_tpal_survives_ipi_drops () =
  let r, c = run_tpal_faulted ~kinds:[ Plan.Ipi_drop ] ~rate:0.2 in
  check_bool "work conserved under drops" true
    (r.work_cycles >= Tpal.total_work small_bench);
  check_bool "promotions still happen" true (r.promotions > 5);
  check_bool "faults actually injected" true
    (Iw_obs.Counter.get c Iw_obs.Counter.Fault_injected > 0);
  check_bool "dropped IPIs were resent" true
    (Iw_obs.Counter.get c Iw_obs.Counter.Ipi_retry > 0)

let test_tpal_watchdog_covers_dead_timer () =
  (* 90% of APIC fires swallowed: the watchdog's software poll has to
     carry the heartbeat, and promotion must still complete the run. *)
  let r, c = run_tpal_faulted ~kinds:[ Plan.Timer_miss ] ~rate:0.9 in
  check_bool "work conserved under timer loss" true
    (r.work_cycles >= Tpal.total_work small_bench);
  check_bool "promotions still happen" true (r.promotions > 5);
  check_bool "watchdog fired" true
    (Iw_obs.Counter.get c Iw_obs.Counter.Watchdog_fire > 0)

let test_tpal_rate_zero_plan_is_noop () =
  (* An enabled rate-0 plan arms all the recovery machinery (reliable
     broadcast, watchdog) but injects nothing; the run's results must
     match a plain run exactly. *)
  let base = run_tpal ~hb:20.0 Tpal.Nk_ipi in
  let r, c = run_tpal_faulted ~kinds:Plan.all_kinds ~rate:0.0 in
  check_int "same elapsed" base.elapsed_cycles r.elapsed_cycles;
  check_int "same promotions" base.promotions r.promotions;
  check_int "no faults injected" 0
    (Iw_obs.Counter.get c Iw_obs.Counter.Fault_injected);
  check_int "no retries" 0 (Iw_obs.Counter.get c Iw_obs.Counter.Ipi_retry);
  check_int "no watchdog fires" 0
    (Iw_obs.Counter.get c Iw_obs.Counter.Watchdog_fire)

(* ------------------------------------------------------------------ *)
(* Tree TPAL (nested fork-join) *)

let test_tree_counts () =
  let b = Tpal_tree.fib 10 in
  (* fib tree node count: 2*fib(n+1)-1 *)
  check_int "node count" ((2 * 89) - 1) (Tpal_tree.total_nodes b);
  check_bool "work positive" true (Tpal_tree.total_work b > 0)

let run_tree ?(workers = 4) policy =
  Tpal_tree.run Iw_hw.Platform.knl
    { workers; heartbeat_us = 30.0; policy; seed = 4 }
    (Tpal_tree.fib 18)

let test_tree_runs_all_nodes () =
  let b = Tpal_tree.fib 18 in
  let r = run_tree Tpal_tree.Promote_oldest in
  check_int "every node executed" (Tpal_tree.total_nodes b) r.nodes_run

let test_tree_parallelizes () =
  let r = run_tree Tpal_tree.Promote_oldest in
  check_bool
    (Printf.sprintf "speedup %.2f > 2.5 on 4 workers" r.speedup_vs_serial)
    true
    (r.speedup_vs_serial > 2.5)

let test_tree_oldest_beats_newest () =
  let oldest = run_tree Tpal_tree.Promote_oldest in
  let newest = run_tree Tpal_tree.Promote_newest in
  check_bool
    (Printf.sprintf "oldest %.2f > newest %.2f" oldest.speedup_vs_serial
       newest.speedup_vs_serial)
    true
    (oldest.speedup_vs_serial > newest.speedup_vs_serial);
  check_bool "newest steals more (smaller tasks)" true
    (newest.steals > oldest.steals)

let test_tree_single_worker () =
  let r = run_tree ~workers:1 Tpal_tree.Promote_oldest in
  check_bool "speedup ~1 serial" true
    (r.speedup_vs_serial > 0.8 && r.speedup_vs_serial <= 1.01)

let test_tree_skewed_completes () =
  let b = Tpal_tree.skewed ~depth:500 () in
  let r =
    Tpal_tree.run Iw_hw.Platform.knl
      { workers = 4; heartbeat_us = 30.0; policy = Tpal_tree.Promote_oldest; seed = 4 }
      b
  in
  check_int "all nodes" (Tpal_tree.total_nodes b) r.nodes_run

let test_suite_benches_well_formed () =
  List.iter
    (fun (b : Tpal.bench) ->
      check_bool (b.bench_name ^ " items") true (Tpal.total_items b > 0);
      check_bool (b.bench_name ^ " work") true (Tpal.total_work b > 1_000_000))
    Tpal.suite;
  check_int "six benches" 6 (List.length Tpal.suite)

let () =
  Alcotest.run "heartbeat"
    [
      ( "itimer",
        [
          Alcotest.test_case "periodic delivery" `Quick
            test_itimer_delivers_periodically;
          Alcotest.test_case "jitter positive" `Quick test_itimer_jitter_positive;
          Alcotest.test_case "coalesces overruns" `Quick
            test_itimer_coalesces_overruns;
        ] );
      ( "deque",
        [ Alcotest.test_case "lifo/fifo ends" `Quick test_deque_lifo_owner_fifo_thief ] );
      ( "tpal",
        [
          Alcotest.test_case "completes all items" `Quick
            test_tpal_completes_all_items;
          Alcotest.test_case "parallelizes" `Quick test_tpal_parallelizes;
          Alcotest.test_case "promotions happen" `Quick
            test_tpal_promotions_happen;
          Alcotest.test_case "nk rate exact" `Quick test_tpal_nk_rate_exact;
          Alcotest.test_case "linux worse at 20us" `Quick
            test_tpal_linux_worse_at_fine_grain;
          Alcotest.test_case "single worker" `Quick test_tpal_single_worker_serial;
          Alcotest.test_case "deterministic" `Quick test_tpal_deterministic;
          Alcotest.test_case "suite well-formed" `Quick
            test_suite_benches_well_formed;
        ] );
      ( "tpal-faults",
        [
          Alcotest.test_case "survives ipi drops" `Quick
            test_tpal_survives_ipi_drops;
          Alcotest.test_case "watchdog covers dead timer" `Quick
            test_tpal_watchdog_covers_dead_timer;
          Alcotest.test_case "rate-0 plan is a no-op" `Quick
            test_tpal_rate_zero_plan_is_noop;
        ] );
      ( "tpal-tree",
        [
          Alcotest.test_case "tree counts" `Quick test_tree_counts;
          Alcotest.test_case "runs all nodes" `Quick test_tree_runs_all_nodes;
          Alcotest.test_case "parallelizes" `Quick test_tree_parallelizes;
          Alcotest.test_case "oldest beats newest" `Quick
            test_tree_oldest_beats_newest;
          Alcotest.test_case "single worker" `Quick test_tree_single_worker;
          Alcotest.test_case "skewed completes" `Quick
            test_tree_skewed_completes;
        ] );
    ]
