(* Tests for the umbrella library: tables, stacks, experiment
   registry. *)

let check_bool = Alcotest.(check bool)
let _check_int = Alcotest.(check int)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let plat = Iw_hw.Platform.small

(* ------------------------------------------------------------------ *)
(* Table *)

let test_table_render () =
  let t =
    Interweave.Table.make ~title:"t" ~headers:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  let s = Interweave.Table.render t in
  check_bool "title" true (String.length s > 0);
  check_bool "contains cell" true (contains s "333")

let test_table_width_mismatch () =
  check_bool "raises" true
    (try
       ignore
         (Interweave.Table.make ~title:"t" ~headers:[ "a" ] [ [ "1"; "2" ] ]);
       false
     with Invalid_argument _ -> true)

let test_table_markdown () =
  let t =
    Interweave.Table.make ~title:"md" ~headers:[ "x" ] [ [ "y" ] ]
  in
  let s = Interweave.Table.to_markdown t in
  check_bool "has pipes" true (String.contains s '|');
  check_bool "has header rule" true (contains s "|---|")

(* ------------------------------------------------------------------ *)
(* Stack *)

let test_stack_presets () =
  let c = Interweave.Stack.commodity plat in
  let i = Interweave.Stack.interwoven plat in
  check_bool "different descriptions" true
    (Interweave.Stack.describe c <> Interweave.Stack.describe i);
  check_bool "interwoven events cheaper" true
    (Interweave.Stack.event_delivery_cycles i
    < Interweave.Stack.event_delivery_cycles c);
  check_bool "interwoven timing cheaper" true
    (Interweave.Stack.timer_mechanism_cost i
    < Interweave.Stack.timer_mechanism_cost c)

let test_stack_boot_runs () =
  List.iter
    (fun stack ->
      let k = Interweave.Stack.boot ~seed:2 stack in
      let ran = ref false in
      ignore
        (Iw_kernel.Sched.spawn k (fun () ->
             Iw_kernel.Api.work 10_000;
             ran := true));
      Iw_kernel.Sched.run k;
      check_bool (Interweave.Stack.describe stack) true !ran)
    [ Interweave.Stack.commodity plat; Interweave.Stack.interwoven plat ]

let test_stack_address_spaces () =
  let c = Interweave.Stack.address_space (Interweave.Stack.commodity plat) in
  let i = Interweave.Stack.address_space (Interweave.Stack.interwoven plat) in
  check_bool "commodity demand-paged" true
    (Iw_mem.Address_space.regime c = Iw_mem.Address_space.Demand_paged);
  check_bool "interwoven carat" true
    (Iw_mem.Address_space.regime i = Iw_mem.Address_space.Carat_guarded)

(* ------------------------------------------------------------------ *)
(* Experiments registry *)

let test_registry_complete () =
  let ids =
    List.map
      (fun (e : Interweave.Experiments.experiment) -> e.id)
      (Interweave.Experiments.all ())
  in
  List.iter
    (fun id -> check_bool (id ^ " present") true (List.mem id ids))
    [ "E1"; "E3"; "E4"; "E5"; "E6"; "E7"; "E8"; "E9"; "E10"; "E11"; "E12";
      "E13"; "E14"; "E15"; "E16"; "A1"; "A2"; "A3"; "A4"; "A5"; "R1"; "R2";
      "R3"; "R4" ]

let test_registry_find () =
  let e = Interweave.Experiments.find "e7" in
  check_bool "case-insensitive find" true (e.id = "E7");
  check_bool "missing raises" true
    (try
       ignore (Interweave.Experiments.find "E99");
       false
     with Not_found -> true)

(* Run the cheap experiments end-to-end; the expensive ones are
   exercised by the bench harness. *)
let test_cheap_experiments_run () =
  List.iter
    (fun id ->
      let e = Interweave.Experiments.find id in
      let tables = e.tables () in
      check_bool (id ^ " yields tables") true (List.length tables > 0);
      List.iter
        (fun t ->
          check_bool (id ^ " rows") true
            (List.length t.Interweave.Table.rows > 0))
        tables)
    [ "E3"; "E7"; "E8"; "E9"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "A2" ]

(* ------------------------------------------------------------------ *)
(* Driver: determinism and parallel/serial equivalence *)

let cheap_ids = [ "E9"; "E12"; "E14"; "A2" ]

let test_driver_order () =
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in input order"
    (List.map (fun x -> x * x) xs)
    (Interweave.Driver.parallel_map ~jobs:4 (fun x -> x * x) xs)

let test_driver_exception () =
  check_bool "first failure re-raised" true
    (try
       ignore
         (Interweave.Driver.parallel_map ~jobs:3
            (fun x -> if x = 5 then failwith "boom" else x)
            (List.init 10 Fun.id));
       false
     with Failure _ -> true)

let test_experiments_deterministic () =
  List.iter
    (fun id ->
      let e = Interweave.Experiments.find id in
      Alcotest.(check string)
        (id ^ " reruns identically")
        (Interweave.Experiments.run_to_string e)
        (Interweave.Experiments.run_to_string e))
    cheap_ids

let test_parallel_matches_serial () =
  let es = List.map Interweave.Experiments.find cheap_ids in
  let serial = List.map Interweave.Experiments.run_to_string es in
  let par =
    Interweave.Driver.parallel_map ~jobs:4 Interweave.Experiments.run_to_string
      es
  in
  List.iter2
    (fun a b -> Alcotest.(check string) "parallel byte-identical to serial" a b)
    serial par

(* ------------------------------------------------------------------ *)
(* Fault injection: the no-op gate and the R experiments *)

module Plan = Iw_faults.Plan

(* The load-bearing invariant of the whole fault subsystem: with no
   plan installed — or even with an *enabled* plan at rate 0 — the
   existing experiments render byte-identically.  Injection sites must
   neither consume RNG draws nor perturb schedules when idle.  (E1 is
   the one deliberate exception: an enabled plan arms the TPAL
   watchdog, which legitimately fires under the jittery Linux signal
   driver even with zero injected faults; the *disabled* plan is the
   strict no-op everywhere, gated by `golden --check`.) *)
let test_faults_disabled_byte_identical () =
  List.iter
    (fun id ->
      let e = Interweave.Experiments.find id in
      let plain = Interweave.Experiments.run_to_string e in
      let under_rate0 =
        Plan.with_ambient
          (Plan.create ~rate:0.0 ~seed:42 ())
          (fun () -> Interweave.Experiments.run_to_string e)
      in
      Alcotest.(check string) (id ^ " unchanged under rate-0 plan") plain
        under_rate0)
    [ "E3"; "E7"; "E8"; "E9"; "E11"; "E12"; "E13"; "E14"; "E15"; "E16"; "A2" ]

let test_r_experiments_deterministic () =
  List.iter
    (fun id ->
      let e = Interweave.Experiments.find id in
      Alcotest.(check string)
        (id ^ " reruns identically")
        (Interweave.Experiments.run_to_string e)
        (Interweave.Experiments.run_to_string e))
    [ "R2"; "R4" ]

let test_r_parallel_matches_serial () =
  let es = List.map Interweave.Experiments.find [ "R2"; "R4" ] in
  let serial = List.map Interweave.Experiments.run_to_string es in
  let par =
    Interweave.Driver.parallel_map ~jobs:2 Interweave.Experiments.run_to_string
      es
  in
  List.iter2
    (fun a b -> Alcotest.(check string) "R parallel byte-identical" a b)
    serial par

(* The recovery acceptance check: under injected IPI loss the
   heartbeat experiment still completes all promotions and the
   recovery counters light up. *)
let test_r_recovery_observable () =
  let obs = Iw_obs.Obs.create ~collect:true () in
  let rendered =
    Iw_obs.Obs.with_ambient obs (fun () ->
        Interweave.Experiments.run_to_string (Interweave.Experiments.find "R2"))
  in
  check_bool "renders" true (String.length rendered > 0);
  let c = Iw_obs.Obs.total_counters obs in
  check_bool "faults injected" true
    (Iw_obs.Counter.get c Iw_obs.Counter.Fault_injected > 0);
  check_bool "relaunches recovered" true
    (Iw_obs.Counter.get c Iw_obs.Counter.Virtine_relaunch > 0)

let () =
  Alcotest.run "interweave"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
          Alcotest.test_case "markdown" `Quick test_table_markdown;
        ] );
      ( "stack",
        [
          Alcotest.test_case "presets differ" `Quick test_stack_presets;
          Alcotest.test_case "boot runs" `Quick test_stack_boot_runs;
          Alcotest.test_case "address spaces" `Quick test_stack_address_spaces;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "registry complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find;
          Alcotest.test_case "cheap experiments run" `Slow
            test_cheap_experiments_run;
        ] );
      ( "driver",
        [
          Alcotest.test_case "order preserved" `Quick test_driver_order;
          Alcotest.test_case "exception propagation" `Quick
            test_driver_exception;
          Alcotest.test_case "experiments deterministic" `Slow
            test_experiments_deterministic;
          Alcotest.test_case "parallel equals serial" `Slow
            test_parallel_matches_serial;
        ] );
      ( "faults",
        [
          Alcotest.test_case "disabled plan is byte-identical" `Slow
            test_faults_disabled_byte_identical;
          Alcotest.test_case "R deterministic" `Slow
            test_r_experiments_deterministic;
          Alcotest.test_case "R parallel equals serial" `Slow
            test_r_parallel_matches_serial;
          Alcotest.test_case "R recovery observable" `Slow
            test_r_recovery_observable;
        ] );
    ]
