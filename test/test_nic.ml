(* Tests for the simulated NIC: descriptor-ring properties (qcheck
   against a reference queue), ITR moderation, batched receive, the
   hybrid driver's mode transitions, and lost-IRQ recovery. *)

open Iw_engine
open Iw_hw
open Iw_kernel
module Ring = Nic.Ring
module Plan = Iw_faults.Plan

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plat = Platform.knl
let nk () = Nautilus.boot plat

(* ------------------------------------------------------------------ *)
(* Ring properties *)

(* Random push/pop interleavings agree with a reference FIFO, including
   full-ring rejections and wraparound (the op count far exceeds the
   capacity, so head/tail lap the buffer many times). *)
let prop_ring_matches_queue =
  QCheck.Test.make ~name:"ring is a bounded FIFO (vs reference queue)"
    ~count:100
    QCheck.(pair (int_bound 6) (list (int_bound 99)))
    (fun (cap_log, ops) ->
      let cap = 1 lsl cap_log in
      let r = Ring.create cap in
      let q = Queue.create () in
      List.iteri
        (fun i op ->
          if op < 60 then begin
            (* push: must succeed iff the model has room *)
            let ok = Ring.push r ~a:i ~b:(i * 7) ~ts:i in
            if Queue.length q < cap then begin
              if not ok then QCheck.Test.fail_report "push rejected with room";
              Queue.push (i, i * 7) q
            end
            else if ok then QCheck.Test.fail_report "push accepted when full"
          end
          else if not (Ring.is_empty r) then begin
            let ea, eb = Queue.pop q in
            if Ring.peek_a r <> ea || Ring.peek_b r <> eb then
              QCheck.Test.fail_report "pop order diverged";
            Ring.pop r
          end)
        ops;
      Ring.length r = Queue.length q)

let test_ring_wraparound () =
  let r = Ring.create 4 in
  (* Push/pop far past capacity: indices wrap, FIFO order holds. *)
  for i = 0 to 99 do
    check_bool "push with room" true (Ring.push r ~a:i ~b:(-i) ~ts:i);
    check_int "fifo a" i (Ring.peek_a r);
    check_int "fifo b" (-i) (Ring.peek_b r);
    check_int "fifo ts" i (Ring.peek_ts r);
    Ring.pop r
  done;
  check_bool "empty at the end" true (Ring.is_empty r);
  check_int "no overruns" 0 (Ring.overruns r)

let test_ring_overrun_accounting () =
  let r = Ring.create 4 in
  for i = 0 to 3 do
    check_bool "fills" true (Ring.push r ~a:i ~b:0 ~ts:0)
  done;
  check_bool "full" true (Ring.is_full r);
  check_bool "overflow rejected" false (Ring.push r ~a:99 ~b:0 ~ts:0);
  check_bool "overflow rejected again" false (Ring.push r ~a:98 ~b:0 ~ts:0);
  check_int "overruns counted" 2 (Ring.overruns r);
  Ring.pop r;
  check_bool "room after pop" true (Ring.push r ~a:4 ~b:0 ~ts:1);
  check_int "old frames undisturbed" 1 (Ring.peek_a r)

let test_ring_rounds_capacity () =
  check_int "rounded up to pow2" 8 (Ring.capacity (Ring.create 5));
  Alcotest.check_raises "zero rejected"
    (Invalid_argument "Nic.Ring.create: capacity <= 0") (fun () ->
      ignore (Ring.create 0))

(* ------------------------------------------------------------------ *)
(* Batched receive: however many frames are waiting, one drain hands
   the handler at most [nd_budget] of them.  Drains are instantaneous
   in sim time, so "per drain" is "per distinct delivery timestamp". *)

let prop_batch_le_budget =
  QCheck.Test.make ~name:"drain batches never exceed the budget" ~count:40
    QCheck.(pair (int_range 1 80) (int_range 1 12))
    (fun (frames, budget) ->
      let k = nk () in
      let sim = Sched.sim k in
      let nic = Nic.create ~sim Nic.default in
      let stamps = ref [] in
      let drv =
        Nic_driver.create ~k ~nic
          { Nic_driver.default with Nic_driver.nd_mode = Poll; nd_budget = budget }
          ~handler:(fun ~a:_ ~b:_ -> stamps := Sim.now sim :: !stamps)
      in
      Sim.schedule_unit sim ~at:100 (fun () ->
          for i = 0 to frames - 1 do
            ignore (Nic.rx_push nic ~a:i ~b:0)
          done);
      (* Poll mode re-arms forever; bound the run and stop the timers. *)
      Sched.run ~horizon:1_000_000 k;
      Nic_driver.stop drv;
      Nic.stop nic;
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun ts ->
          Hashtbl.replace tbl ts (1 + Option.value ~default:0 (Hashtbl.find_opt tbl ts)))
        !stamps;
      Hashtbl.iter
        (fun _ n ->
          if n > budget then QCheck.Test.fail_report "batch exceeded budget")
        tbl;
      List.length !stamps = frames)

(* ------------------------------------------------------------------ *)
(* ITR moderation *)

let test_itr_moderates_interrupts () =
  let k = nk () in
  let sim = Sched.sim k in
  let nic =
    Nic.create ~sim { Nic.default with Nic.nic_itr_cycles = 10_000 }
  in
  let delivered = ref 0 in
  let drv =
    Nic_driver.create ~k ~nic
      { Nic_driver.default with Nic_driver.nd_mode = Irq }
      ~handler:(fun ~a:_ ~b:_ -> incr delivered)
  in
  (* Ten frames, 1000 cycles apart: the first asserts immediately, the
     rest queue behind the 10_000-cycle ITR gap and drain as one batch
     on the deferred assertion. *)
  for i = 1 to 10 do
    Sim.schedule_unit sim ~at:(i * 1000) (fun () ->
        ignore (Nic.rx_push nic ~a:i ~b:0))
  done;
  Sched.run k;
  Nic_driver.stop drv;
  Nic.stop nic;
  check_int "all frames delivered" 10 !delivered;
  check_int "moderated down to two interrupts" 2 (Nic.irqs nic);
  check_int "nothing dropped" 0 (Nic.rx_drops nic)

(* ------------------------------------------------------------------ *)
(* Hybrid driver transitions, pinned at a fixed arrival trace.

   Default config: a streak of 2 inter-IRQ gaps <= 5600 cycles arms
   the poll loop; 12 consecutive empty polls (1400 cycles apart)
   re-enable interrupts. *)

let test_hybrid_irq_poll_irq () =
  let k = nk () in
  let sim = Sched.sim k in
  let nic = Nic.create ~sim Nic.default in
  let delivered = ref 0 in
  let drv =
    Nic_driver.create ~k ~nic Nic_driver.default
      ~handler:(fun ~a:_ ~b:_ -> incr delivered)
  in
  let push at = Sim.schedule_unit sim ~at (fun () -> ignore (Nic.rx_push nic ~a:at ~b:0)) in
  (* Three closely spaced frames: IRQ, IRQ (streak 1), IRQ (streak 2
     -> switch to polling). *)
  push 1_000;
  push 3_000;
  push 5_000;
  (* Arrives while polling: picked up by a poll, no interrupt. *)
  push 7_000;
  (* Silence follows: 12 empty polls hand back to interrupts, so a
     late frame asserts again. *)
  push 80_000;
  Sched.run k;
  Nic_driver.stop drv;
  Nic.stop nic;
  check_int "all frames delivered" 5 !delivered;
  check_int "one switch into polling" 1 (Nic_driver.switches drv);
  check_int "three irqs in, one irq after the poll phase" 4
    (Nic_driver.irq_bursts drv);
  check_int "device agrees" 4 (Nic.irqs nic);
  check_bool "the poll phase did some polling" true (Nic_driver.polls drv >= 13);
  check_bool "idle hysteresis was exercised" true
    (Nic_driver.empty_polls drv >= 12)

(* ------------------------------------------------------------------ *)
(* Faults: a lost interrupt strands the ring; the driver's slack scan
   notices and re-injects the delivery. *)

let test_irq_lost_recovered_by_slack_scan () =
  let plan = Plan.create ~kinds:[ Plan.Nic_irq_lost ] ~rate:1.0 ~seed:7 () in
  Plan.with_ambient plan (fun () ->
      let k = nk () in
      let sim = Sched.sim k in
      let nic = Nic.create ~sim Nic.default in
      let delivered = ref 0 in
      let drv =
        Nic_driver.create ~k ~nic
          { Nic_driver.default with Nic_driver.nd_mode = Irq }
          ~handler:(fun ~a:_ ~b:_ -> incr delivered)
      in
      Sim.schedule_unit sim ~at:1_000 (fun () ->
          ignore (Nic.rx_push nic ~a:1 ~b:0));
      (* The slack timer re-arms forever; bound the run. *)
      Sched.run ~horizon:500_000 k;
      Nic_driver.stop drv;
      Nic.stop nic;
      check_int "assertion swallowed" 1 (Nic.irqs_lost nic);
      check_int "zero device interrupts" 0 (Nic.irqs nic);
      check_int "slack scan re-injected" 1 (Nic_driver.slack_recovers drv);
      check_int "frame still delivered" 1 !delivered)

let test_rx_drop_fault_counted () =
  let plan = Plan.create ~kinds:[ Plan.Nic_rx_drop ] ~rate:1.0 ~seed:7 () in
  Plan.with_ambient plan (fun () ->
      let k = nk () in
      let nic = Nic.create ~sim:(Sched.sim k) Nic.default in
      check_bool "frame lost at the device" false (Nic.rx_push nic ~a:1 ~b:0);
      check_int "drop counted" 1 (Nic.rx_drops nic);
      check_int "ring untouched" 0 (Nic.rx_avail nic);
      Nic.stop nic)

let () =
  Alcotest.run "nic"
    [
      ( "ring",
        [
          QCheck_alcotest.to_alcotest prop_ring_matches_queue;
          Alcotest.test_case "wraparound fifo" `Quick test_ring_wraparound;
          Alcotest.test_case "overrun accounting" `Quick
            test_ring_overrun_accounting;
          Alcotest.test_case "capacity rounding" `Quick
            test_ring_rounds_capacity;
        ] );
      ( "driver",
        [
          QCheck_alcotest.to_alcotest prop_batch_le_budget;
          Alcotest.test_case "itr moderation" `Quick
            test_itr_moderates_interrupts;
          Alcotest.test_case "hybrid irq->poll->irq" `Quick
            test_hybrid_irq_poll_irq;
        ] );
      ( "faults",
        [
          Alcotest.test_case "lost irq recovered" `Quick
            test_irq_lost_recovered_by_slack_scan;
          Alcotest.test_case "rx drop counted" `Quick
            test_rx_drop_fault_counted;
        ] );
    ]
