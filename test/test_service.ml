(* Tests for the service plane: histogram algebra, queue/dispatch
   semantics, workload generators, and end-to-end determinism of the
   S experiments. *)

module Hist = Iw_service.Hist
module Workload = Iw_service.Workload
module Squeue = Iw_service.Squeue
module Dispatch = Iw_service.Dispatch
module Plane = Iw_service.Plane
module Arena = Iw_service.Request_arena
module Rng = Iw_engine.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Histogram *)

let hist_of values =
  let h = Hist.create () in
  List.iter (Hist.record h) values;
  h

let samples = QCheck.(list_of_size Gen.(int_range 0 200) (int_bound 5_000_000))

let prop_merge_commutative =
  QCheck.Test.make ~name:"hist merge is commutative" ~count:100
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      Hist.equal (Hist.merge (hist_of xs) (hist_of ys))
        (Hist.merge (hist_of ys) (hist_of xs)))

let prop_merge_associative =
  QCheck.Test.make ~name:"hist merge is associative" ~count:100
    QCheck.(triple samples samples samples)
    (fun (xs, ys, zs) ->
      let a = hist_of xs and b = hist_of ys and c = hist_of zs in
      Hist.equal
        (Hist.merge (Hist.merge a b) c)
        (Hist.merge a (Hist.merge b c)))

let prop_merge_is_concat =
  QCheck.Test.make ~name:"merge equals recording the concatenation" ~count:100
    QCheck.(pair samples samples)
    (fun (xs, ys) ->
      Hist.equal (Hist.merge (hist_of xs) (hist_of ys)) (hist_of (xs @ ys)))

(* The exactness contract: percentile p returns the quantized value of
   the nearest-rank sample from the sorted reference. *)
let prop_percentile_exact =
  QCheck.Test.make ~name:"percentile = quantize(sorted nearest-rank)" ~count:200
    QCheck.(
      pair
        (list_of_size Gen.(int_range 1 300) (int_bound 5_000_000))
        (float_range 0.001 100.0))
    (fun (xs, p) ->
      let h = hist_of xs in
      let sorted = List.sort compare xs in
      let n = List.length xs in
      let rank =
        min n (max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int n))))
      in
      Hist.percentile h p = Hist.quantize (List.nth sorted (rank - 1)))

(* Windowed readout: after an advance, the window's percentiles must
   equal those of a fresh histogram holding only the post-snapshot
   samples — the telemetry sampler's p50/p99 lanes are exactly the
   per-window distribution, not an average contaminated by history. *)
let prop_window_percentile_exact =
  QCheck.Test.make ~name:"windowed percentile = fresh hist of the window"
    ~count:200
    QCheck.(
      triple samples samples (float_range 0.001 100.0))
    (fun (pre, post, p) ->
      let h = hist_of pre in
      let w = Hist.window h in
      Hist.win_advance w;
      List.iter (Hist.record h) post;
      Hist.win_count w = List.length post
      && Hist.win_percentile w p = Hist.percentile (hist_of post) p)

let prop_window_union_percentile =
  QCheck.Test.make ~name:"union window percentile = merged fresh hists"
    ~count:100
    QCheck.(
      pair (pair samples samples) (pair samples (float_range 0.001 100.0)))
    (fun ((pre1, post1), (post2, p)) ->
      let h1 = hist_of pre1 and h2 = Hist.create () in
      let ws = [| Hist.window h1; Hist.window h2 |] in
      Array.iter Hist.win_advance ws;
      List.iter (Hist.record h1) post1;
      List.iter (Hist.record h2) post2;
      Hist.win_percentile_many ws p = Hist.percentile (hist_of (post1 @ post2)) p)

let test_hist_small_values_exact () =
  (* Everything below 64 is its own bucket: percentiles are exact, not
     just quantized-exact. *)
  let h = hist_of [ 5; 1; 63; 20; 20; 7 ] in
  check_int "p50 exact" 7 (Hist.percentile h 50.0);
  check_int "p100 exact" 63 (Hist.percentile h 100.0);
  check_int "min" 1 (Hist.min_value h);
  check_int "max" 63 (Hist.max_value h);
  Alcotest.(check (float 1e-9)) "mean is raw" (116.0 /. 6.0) (Hist.mean h)

let test_hist_quantize_bounds () =
  (* Quantization rounds down with bounded relative error. *)
  List.iter
    (fun v ->
      let q = Hist.quantize v in
      check_bool "q <= v" true (q <= v);
      check_bool "error bounded" true
        (float_of_int (v - q) <= 0.04 *. float_of_int (max v 1)))
    [ 0; 1; 63; 64; 65; 127; 128; 1000; 65_535; 1_000_000; 123_456_789 ]

let test_hist_empty () =
  let h = Hist.create () in
  check_int "empty percentile" 0 (Hist.percentile h 99.0);
  check_int "empty count" 0 (Hist.count h)

(* ------------------------------------------------------------------ *)
(* Squeue *)

let test_squeue_fifo_order () =
  let q = Squeue.create ~order:Squeue.Fifo ~cap:8 in
  List.iter (fun i -> ignore (Squeue.try_push q ~hi:(i = 2) i)) [ 1; 2; 3 ];
  (* Fifo ignores the hi flag. *)
  check_int "pop 1" 1 (Option.get (Squeue.pop q));
  check_int "pop 2" 2 (Option.get (Squeue.pop q));
  check_int "pop 3" 3 (Option.get (Squeue.pop q));
  check_bool "drained" true (Squeue.pop q = None)

let test_squeue_priority_order () =
  let q = Squeue.create ~order:Squeue.Priority ~cap:8 in
  ignore (Squeue.try_push q ~hi:false 1);
  ignore (Squeue.try_push q ~hi:true 2);
  ignore (Squeue.try_push q ~hi:false 3);
  ignore (Squeue.try_push q ~hi:true 4);
  (* High lane first (FIFO within), then the low lane. *)
  check_int "hi 2" 2 (Option.get (Squeue.pop q));
  check_int "hi 4" 4 (Option.get (Squeue.pop q));
  check_int "lo 1" 1 (Option.get (Squeue.pop q));
  check_int "lo 3" 3 (Option.get (Squeue.pop q))

let test_squeue_drop_tail () =
  let q = Squeue.create ~order:Squeue.Fifo ~cap:2 in
  check_bool "push 1" true (Squeue.try_push q ~hi:false 1);
  check_bool "push 2" true (Squeue.try_push q ~hi:false 2);
  check_bool "push 3 refused" false (Squeue.try_push q ~hi:false 3);
  check_int "len stays at cap" 2 (Squeue.length q);
  check_int "pushed" 2 (Squeue.pushed q);
  check_int "dropped" 1 (Squeue.dropped q)

(* ------------------------------------------------------------------ *)
(* Request arena *)

(* Interpret a script of small ints as alloc/free ops against both the
   arena and a shadow model (handle -> recorded fields).  The model is
   the source of truth for what "live" means; the arena must agree
   after every op, and a slot the model still holds must never be
   handed out again or change under its holder. *)
let run_arena_script ?(check_every = 1) ops =
  let a = Arena.create ~cap:2 in
  let model : (int, int * bool * int) Hashtbl.t = Hashtbl.create 64 in
  let live_handles = ref [] in
  let step opno v =
    if v mod 3 < 2 || !live_handles = [] then begin
      let arrival = v * 7 and hi = v mod 2 = 0 and reply = (v mod 5) - 1 in
      let h = Arena.alloc a ~demand:(-1) ~intended:(-1) ~arrival ~hi ~reply in
      if Hashtbl.mem model h then
        QCheck.Test.fail_reportf
          "op %d: alloc returned handle %d still live in the model" opno h;
      Hashtbl.replace model h (arrival, hi, reply);
      live_handles := h :: !live_handles
    end
    else begin
      let n = List.length !live_handles in
      let victim = List.nth !live_handles (v mod n) in
      Arena.free a victim;
      Hashtbl.remove model victim;
      live_handles := List.filter (fun h -> h <> victim) !live_handles;
      if Arena.is_live a victim then
        QCheck.Test.fail_reportf "op %d: handle %d live after free" opno victim
    end;
    if opno mod check_every = 0 then begin
      if Arena.live a <> Hashtbl.length model then
        QCheck.Test.fail_reportf "op %d: live %d <> model %d" opno
          (Arena.live a) (Hashtbl.length model);
      if Arena.live a + Arena.free_count a <> Arena.capacity a then
        QCheck.Test.fail_reportf "op %d: live + free <> capacity" opno;
      Hashtbl.iter
        (fun h (arrival, hi, reply) ->
          if not (Arena.is_live a h) then
            QCheck.Test.fail_reportf "op %d: model handle %d not live" opno h;
          if
            Arena.arrival a h <> arrival
            || Arena.is_hi a h <> hi
            || Arena.reply a h <> reply
          then
            QCheck.Test.fail_reportf
              "op %d: handle %d fields changed under a live holder" opno h)
        model
    end
  in
  List.iteri step ops;
  a

let prop_arena_model =
  QCheck.Test.make ~name:"arena agrees with a shadow model" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 999))
    (fun ops ->
      ignore (run_arena_script ops);
      true)

let prop_arena_free_list_conserved =
  QCheck.Test.make ~name:"free list + live = capacity" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 150) (int_bound 999))
    (fun ops ->
      let a = run_arena_script ~check_every:max_int ops in
      Arena.free_list_length a = Arena.free_count a
      && Arena.live a + Arena.free_count a = Arena.capacity a)

let test_arena_churn_100k () =
  (* 100k random ops: conservation holds throughout, the arena only
     grows to the high-water mark, and steady-state churn recycles
     without growing. *)
  let a = Arena.create ~cap:4 in
  let rng = Rng.create ~seed:11 in
  let live = ref [] in
  let nlive = ref 0 in
  for op = 1 to 100_000 do
    if (!nlive < 64 && Rng.int rng 3 < 2) || !nlive = 0 then begin
      let h =
        Arena.alloc a ~demand:(-1) ~intended:(-1) ~arrival:op
          ~hi:(op mod 2 = 0) ~reply:(-1)
      in
      live := h :: !live;
      incr nlive
    end
    else begin
      let k = Rng.int rng !nlive in
      let victim = List.nth !live k in
      Arena.free a victim;
      live := List.filter (fun h -> h <> victim) !live;
      decr nlive
    end;
    if op mod 10_000 = 0 then begin
      check_int "live tracked" !nlive (Arena.live a);
      check_int "conserved"
        (Arena.capacity a)
        (Arena.live a + Arena.free_count a)
    end
  done;
  check_int "free list walk agrees" (Arena.free_count a)
    (Arena.free_list_length a);
  (* Population is capped at 64, so doubling from 4 stops at 128. *)
  check_bool "capacity bounded by high-water mark" true (Arena.capacity a <= 128);
  check_bool "slots recycled, not grown" true (Arena.allocs a > Arena.capacity a)

let test_arena_free_dead_raises () =
  let a = Arena.create ~cap:2 in
  let h =
    Arena.alloc a ~demand:(-1) ~intended:(-1) ~arrival:1 ~hi:false ~reply:(-1)
  in
  Arena.free a h;
  check_bool "double free rejected" true
    (match Arena.free a h with
    | () -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Dispatch *)

let test_dispatch_rr_cycles () =
  let d = Dispatch.create Dispatch.Round_robin ~rng:(Rng.create ~seed:1) in
  let picks = List.init 6 (fun _ -> Dispatch.pick d ~n:3 ~len:(fun _ -> 0)) in
  Alcotest.(check (list int)) "cyclic" [ 0; 1; 2; 0; 1; 2 ] picks

let test_dispatch_jsq_shortest () =
  let d = Dispatch.create Dispatch.Jsq ~rng:(Rng.create ~seed:1) in
  let lens = [| 5; 2; 9; 2 |] in
  check_int "shortest, lowest index on tie" 1
    (Dispatch.pick d ~n:4 ~len:(fun i -> lens.(i)))

let test_dispatch_po2_prefers_shorter () =
  (* po2 never picks a queue longer than both its samples. *)
  let d = Dispatch.create Dispatch.Po2 ~rng:(Rng.create ~seed:7) in
  let lens = [| 0; 100; 100; 100 |] in
  let picks = List.init 200 (fun _ -> Dispatch.pick d ~n:4 ~len:(fun i -> lens.(i))) in
  (* Whenever queue 0 is sampled it wins; it must win sometimes. *)
  check_bool "queue 0 chosen sometimes" true (List.mem 0 picks)

let test_dispatch_deterministic () =
  let run () =
    let d = Dispatch.create Dispatch.Random ~rng:(Rng.create ~seed:9) in
    List.init 50 (fun _ -> Dispatch.pick d ~n:8 ~len:(fun _ -> 0))
  in
  Alcotest.(check (list int)) "same seed, same picks" (run ()) (run ())

(* ------------------------------------------------------------------ *)
(* Workload generators *)

let drain spec seed =
  let g = Workload.gen spec ~rng:(Rng.create ~seed) in
  let rec go acc = match Workload.next g with None -> List.rev acc | Some t -> go (t :: acc) in
  go []

let test_workload_poisson_deterministic () =
  let spec = Workload.Poisson { rps = 50_000.0; duration_us = 10_000.0 } in
  let a = drain spec 3 and b = drain spec 3 in
  check_bool "nonempty" true (a <> []);
  Alcotest.(check (list (float 0.0))) "byte-identical arrivals" a b;
  check_bool "strictly increasing" true
    (fst
       (List.fold_left
          (fun (ok, prev) t -> (ok && t > prev, t))
          (true, -1.0) a));
  check_bool "within duration" true (List.for_all (fun t -> t <= 10_000.0) a)

let test_workload_poisson_rate () =
  let spec = Workload.Poisson { rps = 50_000.0; duration_us = 100_000.0 } in
  let n = List.length (drain spec 3) in
  (* 5000 expected; a generous 4-sigma-ish band. *)
  check_bool "rate in band" true (n > 4_500 && n < 5_500)

let test_workload_bursty_modulates () =
  let spec =
    Workload.Bursty
      {
        rps_on = 100_000.0;
        rps_off = 0.0;
        mean_on_us = 2_000.0;
        mean_off_us = 2_000.0;
        duration_us = 100_000.0;
      }
  in
  let arr = drain spec 5 in
  check_bool "nonempty" true (arr <> []);
  (* A zero-rate off phase must leave silent gaps far longer than any
     on-phase inter-arrival gap. *)
  let gaps =
    List.rev
      (fst
         (List.fold_left (fun (gs, prev) t -> ((t -. prev) :: gs, t)) ([], 0.0) arr))
  in
  check_bool "has a silent gap" true (List.exists (fun g -> g > 1_000.0) gaps);
  check_bool "has burst arrivals" true (List.exists (fun g -> g < 100.0) gaps)

let test_workload_offered_rps () =
  Alcotest.(check (float 1e-6))
    "mmpp time-weighted rate" 55_000.0
    (Workload.offered_rps
       (Workload.Bursty
          {
            rps_on = 100_000.0;
            rps_off = 10_000.0;
            mean_on_us = 1_000.0;
            mean_off_us = 1_000.0;
            duration_us = 1.0;
          }))

(* Heavy-tailed demand draws: a pure stateless hash of (seed, id), so
   the same pair always costs the same and stays inside the spec's
   support — the property retries and hedges rely on. *)
let prop_demand_deterministic_bounded =
  QCheck.Test.make ~name:"demand draw is pure and inside its support"
    ~count:500
    QCheck.(pair small_nat (int_bound 1_000_000))
    (fun (seed, id) ->
      let pareto =
        Workload.Dpareto { alpha = 1.5; xmin_us = 10.0; xmax_us = 500.0 }
      in
      let lognorm = Workload.Dlognorm { median_us = 50.0; sigma = 1.2 } in
      let p = Workload.demand_us pareto ~seed ~id in
      let l = Workload.demand_us lognorm ~seed ~id in
      p = Workload.demand_us pareto ~seed ~id
      && l = Workload.demand_us lognorm ~seed ~id
      && p >= 10.0 && p <= 500.0 && l > 0.0
      && Workload.demand_us Workload.Dfixed ~seed ~id = -1.0)

let prop_demand_streams_independent =
  QCheck.Test.make ~name:"demand draws decorrelate across ids and seeds"
    ~count:100 QCheck.small_nat (fun seed ->
      let pareto =
        Workload.Dpareto { alpha = 1.5; xmin_us = 10.0; xmax_us = 500.0 }
      in
      let draws s = List.init 64 (fun id -> Workload.demand_us pareto ~seed:s ~id) in
      (* astronomically unlikely to collide unless the hash ignores
         the seed *)
      draws seed <> draws (seed + 1))

let test_workload_demand_validation () =
  List.iter
    (fun d ->
      match Workload.validate_demand d with
      | () -> Alcotest.fail "nonsense demand accepted"
      | exception Invalid_argument _ -> ())
    [
      Workload.Dpareto { alpha = 0.0; xmin_us = 10.0; xmax_us = 500.0 };
      Workload.Dpareto { alpha = 1.5; xmin_us = -1.0; xmax_us = 500.0 };
      Workload.Dpareto { alpha = 1.5; xmin_us = 500.0; xmax_us = 10.0 };
      Workload.Dlognorm { median_us = 0.0; sigma = 1.0 };
      Workload.Dlognorm { median_us = 50.0; sigma = -0.5 };
    ];
  Workload.validate_demand Workload.Dfixed

(* ------------------------------------------------------------------ *)
(* The plane end to end *)

let small_cfg ?(os = Plane.Nk) ?(backend = Plane.Fiber_exec)
    ?(policy = Iw_service.Dispatch.Po2) ?(seed = 42) () =
  {
    (Plane.default ~plat:Iw_hw.Platform.knl) with
    workers = 4;
    workload = Workload.Poisson { rps = 40_000.0; duration_us = 10_000.0 };
    policy;
    backend;
    os;
    work_us = 20.0;
    seed;
  }

let fingerprint (r : Plane.report) =
  Printf.sprintf "%d/%d/%d/%d/%d/%d/%d/%d" r.rep_arrivals r.rep_admitted
    r.rep_completed r.rep_shed r.rep_elapsed_cycles r.rep_busy_cycles
    (Hist.percentile r.rep_total 99.0)
    (Hist.percentile r.rep_queue 50.0)

let test_plane_conserves_requests () =
  let r = Plane.run (small_cfg ()) in
  check_bool "arrivals happened" true (r.rep_arrivals > 0);
  check_int "admitted = completed" r.rep_admitted r.rep_completed;
  check_int "arrivals = admitted + shed" r.rep_arrivals
    (r.rep_admitted + r.rep_shed);
  check_int "every completion in the histogram" r.rep_completed
    (Hist.count r.rep_total)

let test_plane_deterministic () =
  let a = Plane.run (small_cfg ()) in
  let b = Plane.run (small_cfg ()) in
  check_str "identical fingerprints" (fingerprint a) (fingerprint b);
  check_bool "histograms structurally equal" true
    (Hist.equal a.rep_total b.rep_total);
  let c = Plane.run (small_cfg ~seed:43 ()) in
  check_bool "different seed, different run" true
    (fingerprint a <> fingerprint c)

let test_plane_virtine_backend () =
  let backend =
    Plane.Virtine_exec
      {
        vconfig =
          {
            Iw_virtine.Wasp.default with
            profile = Iw_virtine.Wasp.Bespoke_16;
            snapshot = true;
            pooled = true;
          };
        pool = 8;
      }
  in
  let r =
    Plane.run
      { (small_cfg ~backend ()) with
        workload = Workload.Poisson { rps = 20_000.0; duration_us = 10_000.0 } }
  in
  check_int "admitted = completed" r.rep_admitted r.rep_completed;
  check_bool "pool was hit" true (r.rep_pool_hits > 0)

let test_plane_closed_loop () =
  let cfg =
    { (small_cfg ()) with
      workload = Workload.Closed { clients = 6; think_us = 200.0; duration_us = 10_000.0 } }
  in
  let a = Plane.run cfg and b = Plane.run cfg in
  check_bool "clients made requests" true (a.rep_completed > 0);
  check_int "admitted = completed" a.rep_admitted a.rep_completed;
  check_str "closed loop deterministic" (fingerprint a) (fingerprint b)

let test_plane_sheds_past_capacity () =
  let cfg =
    { (small_cfg ()) with
      queue_cap = 4;
      workload = Workload.Poisson { rps = 400_000.0; duration_us = 10_000.0 } }
  in
  let r = Plane.run cfg in
  check_bool "overload sheds" true (r.rep_shed > 0);
  check_int "admitted still all complete" r.rep_admitted r.rep_completed

let test_plane_personality_gap () =
  (* The S1 claim at test scale: same offered load, NK-like p99 below
     Linux-like p99. *)
  let load os =
    Plane.run
      { (small_cfg ~os ()) with
        workload = Workload.Poisson { rps = 170_000.0; duration_us = 20_000.0 } }
  in
  let nk = load Plane.Nk and lx = load Plane.Linux in
  check_bool "nk p99 < linux p99" true
    (Hist.percentile nk.rep_total 99.0 < Hist.percentile lx.rep_total 99.0)

let test_plane_zero_rate_faults_identical () =
  (* A rate-0 plan must not perturb the plane by a single byte. *)
  let run_with_plan rate =
    let plan =
      Iw_faults.Plan.create ~rate ~seed:42
        ~kinds:
          Iw_faults.Plan.[ Cpu_stall; Virtine_fail; Pool_poison; Worker_hang ]
        ()
    in
    Iw_faults.Plan.with_ambient plan (fun () -> Plane.run (small_cfg ()))
  in
  let bare = Plane.run (small_cfg ()) in
  let zero = run_with_plan 0.0 in
  check_str "rate-0 plan is invisible" (fingerprint bare) (fingerprint zero)

let test_plane_hang_watchdog_steals () =
  (* Standalone plane under worker hangs (clocked only: permanent
     hangs are fleet-mode): the watchdog keeps requests flowing and
     the run still conserves and terminates. *)
  let run () =
    Iw_faults.Plan.with_ambient
      (Iw_faults.Plan.create ~rate:0.05 ~seed:7
         ~kinds:Iw_faults.Plan.[ Worker_hang ]
         ())
      (fun () -> Plane.run (small_cfg ()))
  in
  let r = run () in
  check_bool "watchdog stole queued work" true (r.rep_steals > 0);
  check_int "admitted all complete despite hangs" r.rep_admitted
    r.rep_completed;
  check_str "hung plane deterministic" (fingerprint r) (fingerprint (run ()))

let test_plane_heavy_tail_demand () =
  (* Pareto service demands: same arrival schedule, heavier service
     tail, still conserving and deterministic. *)
  let cfg demand = { (small_cfg ()) with Plane.demand } in
  let heavy =
    cfg (Workload.Dpareto { alpha = 1.5; xmin_us = 8.0; xmax_us = 400.0 })
  in
  let a = Plane.run heavy in
  check_int "conserves under heavy tails" a.rep_admitted a.rep_completed;
  check_str "heavy-tail run deterministic" (fingerprint a)
    (fingerprint (Plane.run heavy));
  let fixed = Plane.run (cfg Workload.Dfixed) in
  check_int "same arrival schedule" fixed.rep_arrivals a.rep_arrivals;
  check_bool "heavier service tail" true
    (Hist.percentile a.rep_service 99.0 > Hist.percentile fixed.rep_service 99.0)

let test_plane_corrected_latency () =
  (* Open loop records an intended-send-time histogram; the corrected
     view can only be slower than the raw one. *)
  let r = Plane.run (small_cfg ()) in
  check_int "every completion corrected" (Hist.count r.rep_total)
    (Hist.count r.rep_total_corrected);
  check_bool "corrected p99 >= raw p99" true
    (Hist.percentile r.rep_total_corrected 99.0
    >= Hist.percentile r.rep_total 99.0);
  let closed =
    Plane.run
      { (small_cfg ()) with
        workload =
          Workload.Closed { clients = 6; think_us = 200.0; duration_us = 10_000.0 } }
  in
  check_int "closed loop records no intended times" 0
    (Hist.count closed.rep_total_corrected)

(* The arena-backed plane against pinned constants: any change to the
   hot path's event order, RNG draws, or arena recycling shows up here
   before it reaches the S1-S4 goldens. *)
let test_plane_pinned_fingerprint () =
  let r = Plane.run (small_cfg ()) in
  check_str "pinned fingerprint" "393/393/393/0/12993247/10230330/51200/912"
    (fingerprint r)

(* S-experiment registry determinism: text out of the registry is
   byte-identical across repeated runs (the golden gate relies on
   this; here it guards the table text itself). *)
let test_s_experiments_deterministic () =
  List.iter
    (fun id ->
      let e = Interweave.Experiments.find id in
      let a = Interweave.Experiments.run_to_string e in
      let b = Interweave.Experiments.run_to_string e in
      check_str (id ^ " byte-identical") a b)
    [ "S3" ]

(* ------------------------------------------------------------------ *)
(* The network model *)

(* A canonical message sequence: nondecreasing send times with random
   gaps, random payload sizes. *)
let net_script =
  QCheck.(
    list_of_size
      Gen.(int_range 1 300)
      (pair (int_bound 2_000) (int_range 1 1_500)))

let net_cfg = { Iw_service.Net.default with nc_inflight = 8 }

let route_all script =
  let lk = Iw_service.Net.link net_cfg ~ghz:1.4 in
  let t = ref 0 in
  List.map
    (fun (gap, bytes) ->
      t := !t + gap;
      (!t, Iw_service.Net.route lk ~send:!t ~bytes ~extra:0))
    script

let prop_net_replay_identical =
  QCheck.Test.make ~name:"link routing is a pure function of the call sequence"
    ~count:200 net_script (fun script -> route_all script = route_all script)

let prop_net_delivery_bounds =
  QCheck.Test.make ~name:"delivery >= send + tx + latency, FIFO monotone"
    ~count:200 net_script (fun script ->
      let lat = Iw_service.Net.lat_cycles net_cfg ~ghz:1.4 in
      let deliveries = route_all script in
      let last = ref 0 in
      List.for_all
        (fun (send, d) ->
          let ok = d >= send + lat && d >= !last in
          last := d;
          ok)
        deliveries)

let prop_net_inflight_bound =
  QCheck.Test.make ~name:"message i waits for delivery of message i-bound"
    ~count:200 net_script (fun script ->
      let deliveries = Array.of_list (List.map snd (route_all script)) in
      let bound = net_cfg.Iw_service.Net.nc_inflight in
      let lat = Iw_service.Net.lat_cycles net_cfg ~ghz:1.4 in
      let ok = ref true in
      Array.iteri
        (fun i d ->
          if i >= bound && d < deliveries.(i - bound) + lat then ok := false)
        deliveries;
      !ok)

(* ------------------------------------------------------------------ *)
(* Weighted dispatch *)

let test_dispatch_wjsq_weighted_argmin () =
  let d =
    Iw_service.Dispatch.create Iw_service.Dispatch.Wjsq
      ~rng:(Iw_engine.Rng.create ~seed:7)
  in
  (* queue 1 is longer but four times as capable: (4+1)/4 < (2+1)/1 *)
  let len = function 0 -> 2 | _ -> 4 in
  let weight = function 0 -> 16 | _ -> 64 in
  check_int "capacity-normalized shortest wins" 1
    (Iw_service.Dispatch.pick d ~weight ~n:2 ~len);
  (* equal weights degenerate to jsq *)
  let j =
    Iw_service.Dispatch.create Iw_service.Dispatch.Jsq
      ~rng:(Iw_engine.Rng.create ~seed:7)
  in
  for _ = 0 to 50 do
    let lens = Array.init 4 (fun i -> (i * 13 mod 7) + 1) in
    check_int "uniform wjsq = jsq"
      (Iw_service.Dispatch.pick j ~n:4 ~len:(fun i -> lens.(i)))
      (Iw_service.Dispatch.pick d ~n:4 ~len:(fun i -> lens.(i)))
  done

let test_dispatch_wjsq_of_string () =
  check_bool "wjsq parses" true
    (Iw_service.Dispatch.of_string "wjsq" = Some Iw_service.Dispatch.Wjsq);
  check_str "name round-trips" "wjsq"
    (Iw_service.Dispatch.name Iw_service.Dispatch.Wjsq);
  check_bool "all is unchanged (S3 shape)" true
    (List.length Iw_service.Dispatch.all = 4);
  check_bool "all_weighted includes wjsq" true
    (List.mem Iw_service.Dispatch.Wjsq Iw_service.Dispatch.all_weighted)

(* ------------------------------------------------------------------ *)
(* The fleet *)

let small_fleet ?(policy = Iw_service.Dispatch.Po2) ?(gossip_us = 30.0)
    ?(rps = 150_000.0) ?(seed = 42) () =
  let open Iw_service in
  {
    (Fleet.default ()) with
    Fleet.fc_machines =
      [| Fleet.knl_spec ~workers:2 (); Fleet.server_spec ~workers:2 () |];
    fc_workload = Workload.Poisson { rps; duration_us = 5_000.0 };
    fc_policy = policy;
    fc_gossip_us = gossip_us;
    fc_seed = seed;
  }

let fleet_fingerprint (r : Iw_service.Fleet.report) =
  Printf.sprintf "%d/%d/%d/%d/%d/%d/%d/%d/%d" r.fr_arrivals r.fr_completed
    r.fr_failed r.fr_retries r.fr_nacks r.fr_windows r.fr_elapsed_cycles
    (Hist.percentile r.fr_total 99.0)
    (Hist.percentile r.fr_queue 50.0)

let test_fleet_conserves_requests () =
  let r = Iw_service.Fleet.run (small_fleet ()) in
  check_bool "arrivals happened" true (r.fr_arrivals > 0);
  check_int "arrivals = completed + failed" r.fr_arrivals
    (r.fr_completed + r.fr_failed);
  check_int "every completion in the e2e histogram" r.fr_completed
    (Hist.count r.fr_total);
  check_int "machine completions sum to fleet" r.fr_completed
    (Array.fold_left ( + ) 0 r.fr_m_completed)

let test_fleet_parallel_serial_identical () =
  let a = Iw_service.Fleet.run ~parallel:false (small_fleet ()) in
  let b = Iw_service.Fleet.run ~parallel:true (small_fleet ()) in
  check_str "fingerprints byte-identical" (fleet_fingerprint a)
    (fleet_fingerprint b);
  check_bool "e2e histograms equal" true (Hist.equal a.fr_total b.fr_total);
  check_bool "queue histograms equal" true (Hist.equal a.fr_queue b.fr_queue);
  check_bool "service histograms equal" true
    (Hist.equal a.fr_service b.fr_service);
  Array.iteri
    (fun m c -> check_int "per-machine completions equal" c b.fr_m_completed.(m))
    a.fr_m_completed;
  Array.iteri
    (fun m cs ->
      check_bool "per-machine counters equal" true (cs = b.fr_m_counters.(m)))
    a.fr_m_counters

let test_fleet_deterministic () =
  let a = Iw_service.Fleet.run (small_fleet ()) in
  let b = Iw_service.Fleet.run (small_fleet ()) in
  check_str "identical fingerprints" (fleet_fingerprint a) (fleet_fingerprint b);
  let c = Iw_service.Fleet.run (small_fleet ~seed:43 ()) in
  check_bool "different seed, different run" true
    (fleet_fingerprint a <> fleet_fingerprint c)

let test_fleet_po2_spreads_work () =
  (* po2 across machines at moderate load: every machine serves a
     share, the faster server-like box serves more per worker, and no
     timeouts fire. *)
  let r = Iw_service.Fleet.run (small_fleet ()) in
  Array.iter
    (fun c -> check_bool "every machine completed work" true (c > 0))
    r.fr_m_completed;
  check_int "no retries at moderate load" 0 r.fr_retries;
  check_int "no ejections" 0 r.fr_ejects;
  check_bool "faster box completes more" true
    (r.fr_m_completed.(1) > r.fr_m_completed.(0))

let test_fleet_gossip_flows () =
  let r = Iw_service.Fleet.run (small_fleet ()) in
  check_bool "gossip arrived" true (r.fr_gossip_msgs > 0);
  check_bool "network carried messages" true
    (r.fr_net_msgs > r.fr_arrivals + r.fr_completed)

let test_fleet_zero_rate_faults_identical () =
  (* A rate-0 plan must not perturb the fleet by a single byte, even
     with the service-level kinds armed: arming alone must draw
     nothing from any stream the simulation shares. *)
  let bare = Iw_service.Fleet.run (small_fleet ()) in
  let plan =
    Iw_faults.Plan.create ~rate:0.0 ~seed:42
      ~kinds:
        Iw_faults.Plan.
          [
            Link_drop; Link_delay; Machine_pause; Worker_hang; Req_corrupt;
            Machine_brownout;
          ]
      ()
  in
  let zero =
    Iw_faults.Plan.with_ambient plan (fun () ->
        Iw_service.Fleet.run (small_fleet ()))
  in
  check_str "rate-0 plan is invisible" (fleet_fingerprint bare)
    (fleet_fingerprint zero)

let test_fleet_faults_recovered () =
  (* Drops and pauses at a visible rate: recovery turns them into
     retries, not conservation violations. *)
  let plan =
    Iw_faults.Plan.create ~rate:0.02 ~seed:7
      ~kinds:Iw_faults.Plan.[ Link_drop; Machine_pause ]
      ()
  in
  let r =
    Iw_faults.Plan.with_ambient plan (fun () ->
        Iw_service.Fleet.run (small_fleet ()))
  in
  check_bool "faults dropped messages" true (r.fr_net_drops > 0);
  check_bool "retries recovered them" true (r.fr_retries > 0);
  check_int "conservation still holds" r.fr_arrivals
    (r.fr_completed + r.fr_failed)

let with_kinds ~rate ~seed kinds f =
  Iw_faults.Plan.with_ambient
    (Iw_faults.Plan.create ~rate ~seed ~kinds ())
    f

let test_fleet_hang_steal_conservation () =
  (* Hung workers strand queued requests; the watchdog steals them
     onto live peers.  Every request is still accounted for, and the
     report's steal total matches the typed per-machine counters. *)
  let r =
    with_kinds ~rate:0.05 ~seed:7
      Iw_faults.Plan.[ Worker_hang ]
      (fun () -> Iw_service.Fleet.run (small_fleet ()))
  in
  check_bool "hangs injected" true (r.fr_steals > 0);
  check_int "conservation under stealing" r.fr_arrivals
    (r.fr_completed + r.fr_failed);
  let counted =
    Array.fold_left
      (fun acc cs ->
        acc
        + List.fold_left
            (fun a (n, v) -> if n = "peer_steal" then a + v else a)
            0 cs)
      0 r.fr_m_counters
  in
  check_int "report steals = typed counters" counted r.fr_steals;
  (* watchdog off: same chaos, no recovery, requests still conserved *)
  let off =
    with_kinds ~rate:0.05 ~seed:7
      Iw_faults.Plan.[ Worker_hang ]
      (fun () ->
        Iw_service.Fleet.run
          { (small_fleet ()) with Iw_service.Fleet.fc_watchdog = false })
  in
  check_int "no steals without the watchdog" 0 off.fr_steals;
  check_int "conservation without recovery" off.fr_arrivals
    (off.fr_completed + off.fr_failed)

let test_fleet_hedge_first_response_wins () =
  (* Hedged requests: exactly one copy completes each request, wins
     never exceed hedges sent, and the whole dance is deterministic
     and identical across parallel and serial fleets. *)
  let cfg () =
    {
      (small_fleet ~rps:250_000.0 ()) with
      Iw_service.Fleet.fc_deadline_us = 150.0;
      fc_hedge_frac = 0.3;
      fc_hedge_budget = 0.2;
    }
  in
  let a = Iw_service.Fleet.run ~parallel:false (cfg ()) in
  check_bool "hedges were sent" true (a.fr_hedges > 0);
  check_bool "wins bounded by hedges" true (a.fr_hedge_wins <= a.fr_hedges);
  check_bool "cancels bounded by hedges" true
    (a.fr_hedge_cancels <= a.fr_hedges);
  check_int "first response wins exactly once" a.fr_arrivals
    (a.fr_completed + a.fr_failed);
  let b = Iw_service.Fleet.run ~parallel:true (cfg ()) in
  check_str "hedged fleet parallel = serial" (fleet_fingerprint a)
    (fleet_fingerprint b);
  check_int "hedge count identical" a.fr_hedges b.fr_hedges;
  check_int "hedge wins identical" a.fr_hedge_wins b.fr_hedge_wins

let test_fleet_admission_sheds_and_conserves () =
  (* Overload with admission control on: arrivals split three ways
     (completed, failed, shed at the door), and sheds count against
     the SLO. *)
  let r =
    Iw_service.Fleet.run
      {
        (small_fleet ~rps:500_000.0 ()) with
        Iw_service.Fleet.fc_admit = true;
        fc_deadline_us = 100.0;
        fc_slo_us = 100.0;
      }
  in
  check_bool "admission shed fired" true (r.fr_admission_shed > 0);
  check_int "three-way conservation" r.fr_arrivals
    (r.fr_completed + r.fr_failed + r.fr_admission_shed);
  check_bool "sheds count against the SLO" true
    (r.fr_slo_total >= r.fr_completed + r.fr_failed + r.fr_admission_shed)

let test_fleet_corrupt_reexec () =
  let run retry =
    with_kinds ~rate:0.05 ~seed:7
      Iw_faults.Plan.[ Req_corrupt ]
      (fun () ->
        Iw_service.Fleet.run
          { (small_fleet ()) with Iw_service.Fleet.fc_corrupt_retry = retry })
  in
  let on = run true in
  check_bool "corrupt responses re-executed" true (on.fr_corrupt_retries > 0);
  check_int "conservation under re-execution" on.fr_arrivals
    (on.fr_completed + on.fr_failed);
  let off = run false in
  check_int "no re-execution when disabled" 0 off.fr_corrupt_retries;
  check_int "conservation when accepting garbage" off.fr_arrivals
    (off.fr_completed + off.fr_failed)

let test_fleet_brownout_recovers_par_serial () =
  (* Brownouts draw at the coordinator's barrier, so a browned-out
     fleet still runs parallel — and byte-identical to serial. *)
  let run parallel =
    with_kinds ~rate:0.02 ~seed:7
      Iw_faults.Plan.[ Machine_brownout ]
      (fun () -> Iw_service.Fleet.run ~parallel (small_fleet ()))
  in
  let a = run false in
  check_bool "brownouts injected" true (a.fr_brownouts > 0);
  check_int "conservation under brownouts" a.fr_arrivals
    (a.fr_completed + a.fr_failed);
  let b = run true in
  check_str "browned-out fleet parallel = serial" (fleet_fingerprint a)
    (fleet_fingerprint b);
  check_int "brownout count identical" a.fr_brownouts b.fr_brownouts;
  (* bw-wjsq under brownouts: still deterministic and conserving *)
  let aware =
    with_kinds ~rate:0.02 ~seed:7
      Iw_faults.Plan.[ Machine_brownout ]
      (fun () ->
        Iw_service.Fleet.run
          {
            (small_fleet ~policy:Iw_service.Dispatch.Wjsq ()) with
            Iw_service.Fleet.fc_bw_wjsq = true;
          })
  in
  check_int "bw-wjsq conserves" aware.fr_arrivals
    (aware.fr_completed + aware.fr_failed)

let test_fleet_counter_table () =
  let r = Iw_service.Fleet.run (small_fleet ()) in
  let members =
    Array.to_list
      (Array.map2 (fun n c -> (n, c)) r.fr_m_names r.fr_m_counters)
  in
  let t = Interweave.Machine.Fleet.counter_table members in
  let rendered = Interweave.Table.render t in
  let contains needle =
    let nh = String.length rendered and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub rendered i nn = needle || go (i + 1))
    in
    go 0
  in
  check_bool "table mentions both machines" true
    (contains "m0:knl" && contains "m1:srv");
  let sum_admitted =
    List.fold_left
      (fun acc (_, cs) ->
        acc
        + List.fold_left
            (fun a (n, v) -> if n = "service_admitted" then a + v else a)
            0 cs)
      0 members
  in
  check_int "totals fold across machines" sum_admitted
    (Interweave.Machine.Fleet.total members "service_admitted")

let () =
  Alcotest.run "service"
    [
      ( "hist",
        [
          QCheck_alcotest.to_alcotest prop_merge_commutative;
          QCheck_alcotest.to_alcotest prop_merge_associative;
          QCheck_alcotest.to_alcotest prop_merge_is_concat;
          QCheck_alcotest.to_alcotest prop_percentile_exact;
          QCheck_alcotest.to_alcotest prop_window_percentile_exact;
          QCheck_alcotest.to_alcotest prop_window_union_percentile;
          Alcotest.test_case "small values exact" `Quick
            test_hist_small_values_exact;
          Alcotest.test_case "quantize bounds" `Quick test_hist_quantize_bounds;
          Alcotest.test_case "empty" `Quick test_hist_empty;
        ] );
      ( "arena",
        [
          QCheck_alcotest.to_alcotest prop_arena_model;
          QCheck_alcotest.to_alcotest prop_arena_free_list_conserved;
          Alcotest.test_case "100k-op churn conserves" `Quick
            test_arena_churn_100k;
          Alcotest.test_case "free of dead slot raises" `Quick
            test_arena_free_dead_raises;
        ] );
      ( "squeue",
        [
          Alcotest.test_case "fifo order" `Quick test_squeue_fifo_order;
          Alcotest.test_case "priority order" `Quick test_squeue_priority_order;
          Alcotest.test_case "drop tail" `Quick test_squeue_drop_tail;
        ] );
      ( "dispatch",
        [
          Alcotest.test_case "rr cycles" `Quick test_dispatch_rr_cycles;
          Alcotest.test_case "jsq shortest" `Quick test_dispatch_jsq_shortest;
          Alcotest.test_case "po2 prefers shorter" `Quick
            test_dispatch_po2_prefers_shorter;
          Alcotest.test_case "random deterministic" `Quick
            test_dispatch_deterministic;
          Alcotest.test_case "wjsq weighted argmin" `Quick
            test_dispatch_wjsq_weighted_argmin;
          Alcotest.test_case "wjsq naming" `Quick test_dispatch_wjsq_of_string;
        ] );
      ( "net",
        [
          QCheck_alcotest.to_alcotest prop_net_replay_identical;
          QCheck_alcotest.to_alcotest prop_net_delivery_bounds;
          QCheck_alcotest.to_alcotest prop_net_inflight_bound;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "conserves requests" `Quick
            test_fleet_conserves_requests;
          Alcotest.test_case "parallel = serial, byte-identical" `Quick
            test_fleet_parallel_serial_identical;
          Alcotest.test_case "deterministic" `Quick test_fleet_deterministic;
          Alcotest.test_case "po2 spreads work" `Quick
            test_fleet_po2_spreads_work;
          Alcotest.test_case "gossip flows" `Quick test_fleet_gossip_flows;
          Alcotest.test_case "rate-0 faults identical" `Quick
            test_fleet_zero_rate_faults_identical;
          Alcotest.test_case "faults recovered" `Quick
            test_fleet_faults_recovered;
          Alcotest.test_case "hang steals conserve" `Quick
            test_fleet_hang_steal_conservation;
          Alcotest.test_case "hedge first response wins" `Quick
            test_fleet_hedge_first_response_wins;
          Alcotest.test_case "admission sheds + conserves" `Quick
            test_fleet_admission_sheds_and_conserves;
          Alcotest.test_case "corrupt re-execution" `Quick
            test_fleet_corrupt_reexec;
          Alcotest.test_case "brownout par = serial" `Quick
            test_fleet_brownout_recovers_par_serial;
          Alcotest.test_case "fleet counter table" `Quick
            test_fleet_counter_table;
        ] );
      ( "workload",
        [
          Alcotest.test_case "poisson deterministic" `Quick
            test_workload_poisson_deterministic;
          Alcotest.test_case "poisson rate" `Quick test_workload_poisson_rate;
          Alcotest.test_case "bursty modulates" `Quick
            test_workload_bursty_modulates;
          Alcotest.test_case "offered rps" `Quick test_workload_offered_rps;
          QCheck_alcotest.to_alcotest prop_demand_deterministic_bounded;
          QCheck_alcotest.to_alcotest prop_demand_streams_independent;
          Alcotest.test_case "demand validation" `Quick
            test_workload_demand_validation;
        ] );
      ( "plane",
        [
          Alcotest.test_case "conserves requests" `Quick
            test_plane_conserves_requests;
          Alcotest.test_case "deterministic" `Quick test_plane_deterministic;
          Alcotest.test_case "virtine backend" `Quick test_plane_virtine_backend;
          Alcotest.test_case "closed loop" `Quick test_plane_closed_loop;
          Alcotest.test_case "sheds past capacity" `Quick
            test_plane_sheds_past_capacity;
          Alcotest.test_case "personality gap" `Quick
            test_plane_personality_gap;
          Alcotest.test_case "rate-0 faults identical" `Quick
            test_plane_zero_rate_faults_identical;
          Alcotest.test_case "hang watchdog steals" `Quick
            test_plane_hang_watchdog_steals;
          Alcotest.test_case "heavy-tail demand" `Quick
            test_plane_heavy_tail_demand;
          Alcotest.test_case "corrected latency" `Quick
            test_plane_corrected_latency;
          Alcotest.test_case "pinned fingerprint" `Quick
            test_plane_pinned_fingerprint;
          Alcotest.test_case "S tables byte-identical" `Quick
            test_s_experiments_deterministic;
        ] );
    ]
