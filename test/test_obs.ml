(* Tests for the observability layer: typed counters, the trace bus,
   the Chrome exporter, the ambient context, and the sweepable cost
   model.  The pinned-scenario expectations below were captured from
   the string-keyed counters before the typed refactor, so they verify
   the two implementations agree event for event. *)

open Iw_obs

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_index_bijection () =
  check_int "count matches list" Counter.count (List.length Counter.all);
  let seen = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let i = Counter.index id in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < Counter.count);
      Alcotest.(check bool) "index unique" false (Hashtbl.mem seen i);
      Hashtbl.replace seen i ())
    Counter.all

let test_counter_names_unique () =
  let names = List.map Counter.name Counter.all in
  check_int "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_counter_basic_ops () =
  let s = Counter.create () in
  List.iter (fun id -> check_int "fresh is zero" 0 (Counter.get s id)) Counter.all;
  Counter.incr s Counter.Ticks;
  Counter.incr s Counter.Ticks;
  Counter.add s Counter.Spawns 7;
  check_int "incr twice" 2 (Counter.get s Counter.Ticks);
  check_int "add" 7 (Counter.get s Counter.Spawns);
  Counter.reset s;
  check_int "reset" 0 (Counter.get s Counter.Ticks)

let test_counter_to_list_rendering () =
  (* Same contract as the old string-keyed counters: only nonzero
     entries, sorted by name. *)
  let s = Counter.create () in
  Counter.add s Counter.Ticks 3;
  Counter.add s Counter.Context_switches 9;
  Counter.incr s Counter.Ipi_sends;
  Alcotest.(check (list (pair string int)))
    "nonzero sorted by name"
    [ ("context_switches", 9); ("ipi_sends", 1); ("ticks", 3) ]
    (Counter.to_list s)

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_trace_null_disabled () =
  let tr = Trace.null () in
  Alcotest.(check bool) "null disabled" false tr.Trace.enabled;
  Trace.instant tr ~name:"x" ~cpu:0 ~ts:1 ();
  check_int "null records nothing" 0 (Trace.length tr)

let test_trace_ring_bounded () =
  let tr = Trace.ring ~capacity:4 () in
  for i = 1 to 10 do
    Trace.instant tr ~name:(string_of_int i) ~cpu:0 ~ts:i ()
  done;
  check_int "length capped" 4 (Trace.length tr);
  check_int "emitted counts all" 10 (Trace.emitted tr);
  check_int "dropped is overflow" 6 (Trace.dropped tr);
  Alcotest.(check (list string))
    "oldest-first survivors" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events tr))

(* ------------------------------------------------------------------ *)
(* Pinned scenario: typed counters vs the pre-refactor string counters *)

let pinned_kernel () =
  let plat = Iw_hw.Platform.small in
  let k =
    Iw_kernel.Sched.boot ~seed:11 ~quantum_us:100.0
      ~personality:(Iw_kernel.Os.nautilus plat) plat
  in
  let m = Iw_kernel.Sched.mutex () in
  for i = 0 to 3 do
    ignore
      (Iw_kernel.Sched.spawn k
         ~spec:{ Iw_kernel.Sched.default_spec with sp_cpu = Some (i mod 2) }
         (fun () ->
           for _ = 1 to 5 do
             Iw_kernel.Api.work 50_000;
             Iw_kernel.Api.with_lock m (fun () -> Iw_kernel.Api.work 5_000)
           done))
  done;
  Iw_kernel.Sched.run k;
  k

let test_typed_counters_match_pinned_baseline () =
  let k = pinned_kernel () in
  check_int "elapsed" 639_716 (Iw_kernel.Sched.now k);
  check_int "work cycles" 1_100_000 (Iw_kernel.Sched.total_work_cycles k);
  check_int "overhead cycles" 52_942 (Iw_kernel.Sched.total_overhead_cycles k);
  let legacy =
    [ "context_switches"; "lock_contended"; "preemptions"; "spawns";
      "thread_exits"; "ticks" ]
  in
  let rendered = Counter.to_list (Iw_kernel.Sched.counters k) in
  Alcotest.(check (list (pair string int)))
    "legacy keys match string-keyed baseline"
    [
      ("context_switches", 25);
      ("lock_contended", 16);
      ("preemptions", 5);
      ("spawns", 4);
      ("thread_exits", 4);
      ("ticks", 25);
    ]
    (List.filter (fun (n, _) -> List.mem n legacy) rendered);
  (* The refactor added hardware-layer probes the string counters never
     had: each scheduler tick is one timer fire delivered as one irq. *)
  check_int "timer fires" 25
    (Counter.get (Iw_kernel.Sched.counters k) Counter.Timer_fires);
  check_int "irq dispatches" 25
    (Counter.get (Iw_kernel.Sched.counters k) Counter.Irq_dispatches)

(* ------------------------------------------------------------------ *)
(* Tracing must not perturb simulated time or tables *)

let test_trace_on_off_identical_tables () =
  let e = Interweave.Experiments.find "E3" in
  let off = Interweave.Experiments.run_to_string e in
  let tr = Trace.ring () in
  let obs = Obs.create ~trace:tr () in
  let on =
    Obs.with_ambient obs (fun () -> Interweave.Experiments.run_to_string e)
  in
  check_str "byte-identical output" off on;
  Alcotest.(check bool) "trace captured events" true (Trace.length tr > 0)

(* ------------------------------------------------------------------ *)
(* Chrome export *)

let traced_pinned_run () =
  let tr = Trace.ring () in
  let obs = Obs.create ~trace:tr () in
  Obs.with_ambient obs (fun () -> ignore (pinned_kernel ()));
  tr

let test_chrome_json_validates () =
  let tr = traced_pinned_run () in
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  let path = Filename.temp_file "iw_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chrome.write_file tr path;
      match Chrome.validate_file path with
      | Ok n ->
          Alcotest.(check bool)
            "validated every recorded event" true
            (n >= Trace.length tr)
      | Error msg -> Alcotest.fail ("trace failed validation: " ^ msg))

let test_chrome_rejects_garbage () =
  (match Chrome.validate "not json at all" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Chrome.validate "{\"traceEvents\": 42}" with
  | Ok _ -> Alcotest.fail "non-array traceEvents accepted"
  | Error _ -> ()

let test_chrome_flow_round_trip () =
  (* A two-hop request: start on the front tier (cpu -1 -> pid 0),
     step on a machine worker (cpu 3 -> pid 4), finish back on the
     front tier.  The export must validate and count it as crossing
     processes. *)
  let tr = Trace.ring ~capacity:64 () in
  Trace.set_flows tr true;
  Trace.span tr ~name:"exec" ~cpu:3 ~ts:10 ~dur:30 ();
  Trace.flow tr ~name:"req" ~phase:Trace.flow_start ~id:7 ~cpu:(-1) ~ts:5 ();
  Trace.flow tr ~name:"req" ~phase:Trace.flow_step ~id:7 ~cpu:3 ~ts:20 ();
  Trace.flow tr ~name:"req" ~phase:Trace.flow_finish ~id:7 ~cpu:(-1) ~ts:50 ();
  (* A flow that never leaves pid 0 must not count as cross-process. *)
  Trace.flow tr ~name:"req" ~phase:Trace.flow_start ~id:8 ~cpu:(-1) ~ts:6 ();
  Trace.flow tr ~name:"req" ~phase:Trace.flow_finish ~id:8 ~cpu:(-1) ~ts:9 ();
  let json = Chrome.to_json tr in
  (match Chrome.validate json with
  | Ok n -> check_int "all events validated" 6 n
  | Error msg -> Alcotest.fail ("flow trace failed validation: " ^ msg));
  match Chrome.cross_process_flows json with
  | Ok n -> check_int "one flow crosses processes" 1 n
  | Error msg -> Alcotest.fail ("cross_process_flows: " ^ msg)

let test_chrome_flow_gating_and_bad_sequences () =
  (* Flows are double-gated: without the opt-in nothing records. *)
  let tr = Trace.ring ~capacity:8 () in
  Trace.flow tr ~name:"req" ~phase:Trace.flow_start ~id:1 ~cpu:0 ~ts:1 ();
  check_int "flows off records nothing" 0 (Trace.length tr);
  Trace.set_flows tr true;
  (match Trace.flow tr ~name:"req" ~phase:9 ~id:1 ~cpu:0 ~ts:1 () with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "bad phase accepted");
  (* Validator: a step or finish with no start, and a duplicate
     start, are both malformed. *)
  let ev ph id ts =
    Printf.sprintf
      "{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\"%s\",\"id\":%d,\"pid\":0,\
       \"tid\":0,\"ts\":%d}"
      ph id ts
  in
  let doc evs =
    "{\"traceEvents\":[" ^ String.concat "," evs ^ "]}"
  in
  (match Chrome.validate (doc [ ev "t" 3 1 ]) with
  | Ok _ -> Alcotest.fail "step without start accepted"
  | Error _ -> ());
  (match Chrome.validate (doc [ ev "s" 3 1; ev "s" 3 2 ]) with
  | Ok _ -> Alcotest.fail "duplicate start accepted"
  | Error _ -> ());
  match Chrome.validate (doc [ ev "s" 3 1; ev "t" 3 2; ev "f" 3 3 ]) with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "expected 3 events, validated %d" n
  | Error msg -> Alcotest.fail ("well-formed flow rejected: " ^ msg)

let test_chrome_counter_round_trip () =
  (* A sampled series rides along as ph:"C" counter lanes. *)
  let hits = ref 0 in
  let s =
    Series.create ~capacity:8 ~name:"svc"
      ~cols:[ Series.dref ~name:"hits" hits; Series.col ~name:"gauge" (fun () -> 42) ]
      ()
  in
  hits := 5;
  Series.sample s ~ts:100;
  hits := 9;
  Series.sample s ~ts:200;
  let tr = Trace.ring ~capacity:8 () in
  Trace.instant tr ~name:"mark" ~cpu:0 ~ts:150 ();
  let json = Chrome.to_json ~series:[ s ] tr in
  (match Chrome.validate json with
  | Ok n -> check_int "instant + 2 samples x 2 cols" 5 n
  | Error msg -> Alcotest.fail ("counter trace failed validation: " ^ msg));
  (* Counter events must carry args.v and stay monotone per name. *)
  let c name ts v =
    Printf.sprintf
      "{\"name\":\"%s\",\"cat\":\"series\",\"ph\":\"C\",\"pid\":0,\"ts\":%d,\
       \"args\":{\"v\":%d}}"
      name ts v
  in
  let doc evs = "{\"traceEvents\":[" ^ String.concat "," evs ^ "]}" in
  (match Chrome.validate (doc [ c "a" 10 1; c "a" 5 2 ]) with
  | Ok _ -> Alcotest.fail "non-monotone counter accepted"
  | Error _ -> ());
  (match
     Chrome.validate
       (doc
          [ "{\"name\":\"a\",\"cat\":\"series\",\"ph\":\"C\",\"pid\":0,\"ts\":1}" ])
   with
  | Ok _ -> Alcotest.fail "counter without args accepted"
  | Error _ -> ());
  match Chrome.validate (doc [ c "a" 10 1; c "b" 5 2; c "a" 20 3 ]) with
  | Ok 3 -> ()
  | Ok n -> Alcotest.failf "expected 3 counter events, validated %d" n
  | Error msg -> Alcotest.fail ("well-formed counters rejected: " ^ msg)

let test_series_ring_and_csv () =
  let v = ref 0 in
  let posts = ref 0 in
  let s =
    Series.create ~capacity:3 ~name:"ring"
      ~cols:[ Series.dref ~name:"d" v; Series.col ~name:"raw" (fun () -> !v) ]
      ~post:[ (fun () -> incr posts) ]
      ()
  in
  for i = 1 to 5 do
    v := i * 10;
    Series.sample s ~ts:(i * 100)
  done;
  check_int "ring keeps newest" 3 (Series.length s);
  check_int "dropped counts overflow" 2 (Series.dropped s);
  check_int "post hook per sample" 5 !posts;
  check_int "oldest retained ts" 300 (Series.ts_at s 0);
  (* d is a delta column: 30-20=10 at ts 300; raw is the level. *)
  check_int "delta col" 10 (Series.get s 0 0);
  check_int "raw col" 30 (Series.get s 0 1);
  Alcotest.(check string)
    "csv shape"
    "ts_cycles,d,raw\n300,10,30\n400,10,40\n500,10,50\n"
    (Series.to_csv s)

(* ------------------------------------------------------------------ *)
(* Stats.percentile regression (Float.compare, single sort) *)

let test_percentile_negative_samples () =
  let t = Iw_engine.Stats.create () in
  List.iter (Iw_engine.Stats.add t) [ 3.0; 1.0; 2.0; -5.0; 10.0 ];
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Iw_engine.Stats.percentile t 50.0);
  Alcotest.(check (float 1e-9)) "p90" 10.0 (Iw_engine.Stats.percentile t 90.0);
  Alcotest.(check (float 1e-9)) "p0 is min" (-5.0)
    (Iw_engine.Stats.percentile t 0.0);
  let s = Iw_engine.Stats.summary t in
  Alcotest.(check (float 1e-9)) "summary p50 agrees" 2.0 s.Iw_engine.Stats.p50;
  Alcotest.(check (float 1e-9)) "summary p99 agrees" 10.0 s.Iw_engine.Stats.p99

(* ------------------------------------------------------------------ *)
(* Sweepable cost model *)

let test_sweep_registry_complete () =
  let module Sweep = Interweave.Machine.Sweep in
  Alcotest.(check bool)
    "covers the whole cost model" true
    (List.length Sweep.fields >= 30);
  check_int "names unique"
    (List.length Sweep.names)
    (List.length (List.sort_uniq compare Sweep.names));
  let plat = Iw_hw.Platform.small in
  match Sweep.find "tick_update" with
  | None -> Alcotest.fail "tick_update not registered"
  | Some fd ->
      check_int "preset value" 120 (fd.Sweep.get plat.Iw_hw.Platform.costs);
      let plat' = Sweep.with_value plat fd 999 in
      check_int "with_value roundtrip" 999
        (fd.Sweep.get plat'.Iw_hw.Platform.costs);
      check_int "original untouched" 120 (fd.Sweep.get plat.Iw_hw.Platform.costs)

let test_sweep_sensitivity_table () =
  let module Sweep = Interweave.Machine.Sweep in
  match Sweep.find "timer_path_softirq" with
  | None -> Alcotest.fail "timer_path_softirq not registered"
  | Some fd ->
      let tbl = Sweep.sensitivity fd [ 0; 1_200 ] in
      check_int "one row per value" 2 (List.length tbl.Interweave.Table.rows)

(* ------------------------------------------------------------------ *)
(* Machine context *)

let test_machine_boot_wiring () =
  let plat = Iw_hw.Platform.small in
  let tr = Trace.ring () in
  let m = Interweave.Machine.boot ~trace:tr (Interweave.Stack.commodity plat) in
  Alcotest.(check bool)
    "kernel shares the machine trace" true
    ((Iw_kernel.Sched.obs (Interweave.Machine.kernel m)).Obs.trace == tr);
  ignore
    (Iw_kernel.Sched.spawn (Interweave.Machine.kernel m) (fun () ->
         Iw_kernel.Api.work 10_000));
  Interweave.Machine.run m;
  Alcotest.(check bool)
    "counters fired" true
    (Counter.get (Interweave.Machine.counters m) Counter.Context_switches > 0);
  let tbl = Interweave.Machine.counter_table m in
  Alcotest.(check (list string))
    "table headers" [ "counter"; "events" ] tbl.Interweave.Table.headers

(* ------------------------------------------------------------------ *)
(* Profile: span-stack reconstruction *)

(* Spans arrive emit-order = completion order, so children precede
   their parents; the profiler must invert that into containment. *)
let sp ?(cat = "k") ?(cpu = 0) name ts dur : Trace.event =
  {
    Trace.ev_name = name;
    ev_cat = cat;
    ev_cpu = cpu;
    ev_ts = ts;
    ev_dur = dur;
    ev_flow = 0;
    ev_id = 0;
  }

let find_row (p : Profile.t) name =
  match
    List.find_opt (fun r -> r.Profile.r_frame.Profile.f_name = name) p.rows
  with
  | Some r -> r
  | None -> Alcotest.fail ("no profile row for " ^ name)

let test_profile_nested_spans () =
  let p =
    Profile.of_events [ sp "child" 10 5; sp "parent" 0 100 ]
  in
  check_int "total = root dur" 100 (Profile.total_cycles p);
  check_int "span count" 2 p.Profile.span_count;
  let parent = find_row p "parent" and child = find_row p "child" in
  check_int "parent total" 100 parent.Profile.r_total;
  check_int "parent self" 95 parent.Profile.r_self;
  check_int "child self" 5 child.Profile.r_self;
  Alcotest.(check (list (pair string int)))
    "folded paths"
    [ ("cpu 0;k:parent", 95); ("cpu 0;k:parent;k:child", 5) ]
    p.Profile.folded

let test_profile_sibling_spans () =
  let p =
    Profile.of_events
      [ sp "a" 0 10; sp "b" 20 30; sp "parent" 0 60; sp "root2" 100 40 ]
  in
  check_int "total = sum of roots" 100 (Profile.total_cycles p);
  check_int "parent self excludes both siblings" 20
    (find_row p "parent").Profile.r_self;
  check_int "second root untouched" 40 (find_row p "root2").Profile.r_self;
  let self_sum = List.fold_left (fun a r -> a + r.Profile.r_self) 0 p.rows in
  check_int "selfs sum to total" (Profile.total_cycles p) self_sum

let test_profile_identical_interval_tie () =
  (* Equal (ts, dur): the later emit is the parent (emitted at
     completion, outer frames complete last). *)
  let p = Profile.of_events [ sp "inner" 0 50; sp "outer" 0 50 ] in
  check_int "one root only" 50 (Profile.total_cycles p);
  check_int "outer self zero" 0 (find_row p "outer").Profile.r_self;
  check_int "inner gets the cycles" 50 (find_row p "inner").Profile.r_self;
  Alcotest.(check (list (pair string int)))
    "outer encloses inner"
    [ ("cpu 0;k:outer;k:inner", 50) ]
    p.Profile.folded

let test_profile_ring_wrapped () =
  (* A child overwritten by ring wrap must not break the accounting:
     the survivors still form a valid forest and selfs sum to total. *)
  let tr = Trace.ring ~capacity:2 () in
  Trace.span tr ~name:"lost" ~cat:"k" ~cpu:0 ~ts:0 ~dur:5 ();
  Trace.span tr ~name:"kept" ~cat:"k" ~cpu:0 ~ts:10 ~dur:20 ();
  Trace.span tr ~name:"parent" ~cat:"k" ~cpu:0 ~ts:0 ~dur:100 ();
  let p = Profile.of_trace tr in
  check_int "dropped surfaced" 1 p.Profile.dropped;
  check_int "total from surviving root" 100 (Profile.total_cycles p);
  check_int "parent self = total minus kept child" 80
    (find_row p "parent").Profile.r_self;
  let self_sum = List.fold_left (fun a r -> a + r.Profile.r_self) 0 p.rows in
  check_int "selfs still sum to total" 100 self_sum

(* ------------------------------------------------------------------ *)
(* Folded + speedscope exports *)

let profile_of_pinned_run () = Profile.of_trace (traced_pinned_run ())

let test_folded_deterministic_and_checked () =
  let p1 = profile_of_pinned_run () and p2 = profile_of_pinned_run () in
  let s1 = Folded.to_string p1 and s2 = Folded.to_string p2 in
  check_str "same run, same folded bytes" s1 s2;
  Alcotest.(check bool) "nonempty" true (String.length s1 > 0);
  (match Folded.check s1 ~total:(Profile.total_cycles p1) with
  | Ok n -> Alcotest.(check bool) "has stacks" true (n > 0)
  | Error msg -> Alcotest.fail ("folded check: " ^ msg));
  match Folded.check s1 ~total:(Profile.total_cycles p1 + 1) with
  | Ok _ -> Alcotest.fail "wrong total accepted"
  | Error _ -> ()

let test_speedscope_round_trip () =
  let p = profile_of_pinned_run () in
  let doc = Speedscope.to_json ~name:"pinned" p in
  (match Speedscope.validate doc with
  | Ok n ->
      let stream_events =
        List.fold_left (fun a (_, evs) -> a + List.length evs) 0 p.streams
      in
      check_int "every open/close validated" stream_events n
  | Error msg -> Alcotest.fail ("speedscope: " ^ msg));
  match Speedscope.validate "{\"frames\": []}" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Golden counter gating *)

let test_golden_exact_pass () =
  let counters = [ ("spawns", 4); ("ticks", 100) ] in
  Alcotest.(check (list (pair string int)))
    "identical snapshots do not drift" []
    (List.map
       (fun d -> (d.Golden.d_counter, d.Golden.d_actual))
       (Golden.compare_counters ~expected:counters counters))

let test_golden_within_tolerance_pass () =
  (* ticks carries a 2% default tolerance: 102 vs 100 is allowed. *)
  let expected = [ ("spawns", 4); ("ticks", 100) ] in
  let actual = [ ("spawns", 4); ("ticks", 102) ] in
  check_int "scheduling noise tolerated" 0
    (List.length (Golden.compare_counters ~expected actual))

let test_golden_drift_fails () =
  let expected = [ ("spawns", 4); ("ticks", 100) ] in
  (* 103 vs 100 exceeds the 2% allowance of 2. *)
  (match Golden.compare_counters ~expected [ ("spawns", 4); ("ticks", 103) ] with
  | [ d ] ->
      check_str "names the counter" "ticks" d.Golden.d_counter;
      check_int "expected" 100 d.Golden.d_expected;
      check_int "actual" 103 d.Golden.d_actual;
      check_int "allowance" 2 d.Golden.d_allowed
  | ds -> Alcotest.failf "expected one drift, got %d" (List.length ds));
  (* spawns is exact: off by one fails. *)
  (match Golden.compare_counters ~expected [ ("spawns", 5); ("ticks", 100) ] with
  | [ d ] ->
      check_str "exact counter drifts" "spawns" d.Golden.d_counter;
      check_int "zero allowance" 0 d.Golden.d_allowed
  | ds -> Alcotest.failf "expected one drift, got %d" (List.length ds));
  (* union of keys: a newly-firing counter drifts against implicit 0. *)
  match Golden.compare_counters ~expected:[] [ ("steals", 7) ] with
  | [ d ] -> check_str "new counter gated" "steals" d.Golden.d_counter
  | ds -> Alcotest.failf "expected one drift, got %d" (List.length ds)

let test_golden_render_parse_round_trip () =
  let counters = [ ("spawns", 4); ("ticks", 100); ("steals", 0) ] in
  let text = Golden.render ~header:[ "E99"; "pinned" ] counters in
  Alcotest.(check (list (pair string int)))
    "sorted round trip"
    [ ("spawns", 4); ("steals", 0); ("ticks", 100) ]
    (Golden.parse text)

let test_golden_parse_hardened () =
  (* Hand-edited or re-encoded golden files arrive with tabs, trailing
     whitespace, CRLF endings, and stray blank lines; none of that may
     change what the gate compares. *)
  let text =
    "# comment\n\ntimer fires\t25\nticks   100   \n\r\nctx switches\t 9\t\n"
  in
  Alcotest.(check (list (pair string int)))
    "separator and whitespace noise ignored"
    [ ("timer fires", 25); ("ticks", 100); ("ctx switches", 9) ]
    (Golden.parse text);
  (match Golden.parse "lonely\n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "value-less line accepted");
  match Golden.parse "name not_a_number\n" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "non-integer value accepted"

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "index bijection" `Quick
            test_counter_index_bijection;
          Alcotest.test_case "names unique" `Quick test_counter_names_unique;
          Alcotest.test_case "basic ops" `Quick test_counter_basic_ops;
          Alcotest.test_case "to_list rendering" `Quick
            test_counter_to_list_rendering;
        ] );
      ( "trace",
        [
          Alcotest.test_case "null disabled" `Quick test_trace_null_disabled;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "on/off identical tables" `Quick
            test_trace_on_off_identical_tables;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export validates" `Quick test_chrome_json_validates;
          Alcotest.test_case "rejects garbage" `Quick test_chrome_rejects_garbage;
          Alcotest.test_case "flow round trip" `Quick test_chrome_flow_round_trip;
          Alcotest.test_case "flow gating + bad sequences" `Quick
            test_chrome_flow_gating_and_bad_sequences;
          Alcotest.test_case "counter round trip" `Quick
            test_chrome_counter_round_trip;
        ] );
      ( "series",
        [
          Alcotest.test_case "ring + csv" `Quick test_series_ring_and_csv;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "typed counters match baseline" `Quick
            test_typed_counters_match_pinned_baseline;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile negatives" `Quick
            test_percentile_negative_samples;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "registry complete" `Quick
            test_sweep_registry_complete;
          Alcotest.test_case "sensitivity table" `Quick
            test_sweep_sensitivity_table;
        ] );
      ( "machine",
        [
          Alcotest.test_case "boot wiring" `Quick test_machine_boot_wiring;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nested spans" `Quick test_profile_nested_spans;
          Alcotest.test_case "sibling spans" `Quick test_profile_sibling_spans;
          Alcotest.test_case "identical-interval tie" `Quick
            test_profile_identical_interval_tie;
          Alcotest.test_case "ring-wrapped spans" `Quick
            test_profile_ring_wrapped;
        ] );
      ( "exports",
        [
          Alcotest.test_case "folded deterministic + checked" `Quick
            test_folded_deterministic_and_checked;
          Alcotest.test_case "speedscope round trip" `Quick
            test_speedscope_round_trip;
        ] );
      ( "golden",
        [
          Alcotest.test_case "exact pass" `Quick test_golden_exact_pass;
          Alcotest.test_case "within tolerance" `Quick
            test_golden_within_tolerance_pass;
          Alcotest.test_case "drift fails" `Quick test_golden_drift_fails;
          Alcotest.test_case "render/parse round trip" `Quick
            test_golden_render_parse_round_trip;
          Alcotest.test_case "parse hardened" `Quick test_golden_parse_hardened;
        ] );
    ]
