(* Tests for the observability layer: typed counters, the trace bus,
   the Chrome exporter, the ambient context, and the sweepable cost
   model.  The pinned-scenario expectations below were captured from
   the string-keyed counters before the typed refactor, so they verify
   the two implementations agree event for event. *)

open Iw_obs

let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_index_bijection () =
  check_int "count matches list" Counter.count (List.length Counter.all);
  let seen = Hashtbl.create 32 in
  List.iter
    (fun id ->
      let i = Counter.index id in
      Alcotest.(check bool) "index in range" true (i >= 0 && i < Counter.count);
      Alcotest.(check bool) "index unique" false (Hashtbl.mem seen i);
      Hashtbl.replace seen i ())
    Counter.all

let test_counter_names_unique () =
  let names = List.map Counter.name Counter.all in
  check_int "no duplicate names"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let test_counter_basic_ops () =
  let s = Counter.create () in
  List.iter (fun id -> check_int "fresh is zero" 0 (Counter.get s id)) Counter.all;
  Counter.incr s Counter.Ticks;
  Counter.incr s Counter.Ticks;
  Counter.add s Counter.Spawns 7;
  check_int "incr twice" 2 (Counter.get s Counter.Ticks);
  check_int "add" 7 (Counter.get s Counter.Spawns);
  Counter.reset s;
  check_int "reset" 0 (Counter.get s Counter.Ticks)

let test_counter_to_list_rendering () =
  (* Same contract as the old string-keyed counters: only nonzero
     entries, sorted by name. *)
  let s = Counter.create () in
  Counter.add s Counter.Ticks 3;
  Counter.add s Counter.Context_switches 9;
  Counter.incr s Counter.Ipi_sends;
  Alcotest.(check (list (pair string int)))
    "nonzero sorted by name"
    [ ("context_switches", 9); ("ipi_sends", 1); ("ticks", 3) ]
    (Counter.to_list s)

(* ------------------------------------------------------------------ *)
(* Trace ring *)

let test_trace_null_disabled () =
  let tr = Trace.null () in
  Alcotest.(check bool) "null disabled" false tr.Trace.enabled;
  Trace.instant tr ~name:"x" ~cpu:0 ~ts:1 ();
  check_int "null records nothing" 0 (Trace.length tr)

let test_trace_ring_bounded () =
  let tr = Trace.ring ~capacity:4 () in
  for i = 1 to 10 do
    Trace.instant tr ~name:(string_of_int i) ~cpu:0 ~ts:i ()
  done;
  check_int "length capped" 4 (Trace.length tr);
  check_int "emitted counts all" 10 (Trace.emitted tr);
  check_int "dropped is overflow" 6 (Trace.dropped tr);
  Alcotest.(check (list string))
    "oldest-first survivors" [ "7"; "8"; "9"; "10" ]
    (List.map (fun e -> e.Trace.ev_name) (Trace.events tr))

(* ------------------------------------------------------------------ *)
(* Pinned scenario: typed counters vs the pre-refactor string counters *)

let pinned_kernel () =
  let plat = Iw_hw.Platform.small in
  let k =
    Iw_kernel.Sched.boot ~seed:11 ~quantum_us:100.0
      ~personality:(Iw_kernel.Os.nautilus plat) plat
  in
  let m = Iw_kernel.Sched.mutex () in
  for i = 0 to 3 do
    ignore
      (Iw_kernel.Sched.spawn k
         ~spec:{ Iw_kernel.Sched.default_spec with sp_cpu = Some (i mod 2) }
         (fun () ->
           for _ = 1 to 5 do
             Iw_kernel.Api.work 50_000;
             Iw_kernel.Api.with_lock m (fun () -> Iw_kernel.Api.work 5_000)
           done))
  done;
  Iw_kernel.Sched.run k;
  k

let test_typed_counters_match_pinned_baseline () =
  let k = pinned_kernel () in
  check_int "elapsed" 639_716 (Iw_kernel.Sched.now k);
  check_int "work cycles" 1_100_000 (Iw_kernel.Sched.total_work_cycles k);
  check_int "overhead cycles" 52_942 (Iw_kernel.Sched.total_overhead_cycles k);
  let legacy =
    [ "context_switches"; "lock_contended"; "preemptions"; "spawns";
      "thread_exits"; "ticks" ]
  in
  let rendered = Counter.to_list (Iw_kernel.Sched.counters k) in
  Alcotest.(check (list (pair string int)))
    "legacy keys match string-keyed baseline"
    [
      ("context_switches", 25);
      ("lock_contended", 16);
      ("preemptions", 5);
      ("spawns", 4);
      ("thread_exits", 4);
      ("ticks", 25);
    ]
    (List.filter (fun (n, _) -> List.mem n legacy) rendered);
  (* The refactor added hardware-layer probes the string counters never
     had: each scheduler tick is one timer fire delivered as one irq. *)
  check_int "timer fires" 25
    (Counter.get (Iw_kernel.Sched.counters k) Counter.Timer_fires);
  check_int "irq dispatches" 25
    (Counter.get (Iw_kernel.Sched.counters k) Counter.Irq_dispatches)

(* ------------------------------------------------------------------ *)
(* Tracing must not perturb simulated time or tables *)

let test_trace_on_off_identical_tables () =
  let e = Interweave.Experiments.find "E3" in
  let off = Interweave.Experiments.run_to_string e in
  let tr = Trace.ring () in
  let obs = Obs.create ~trace:tr () in
  let on =
    Obs.with_ambient obs (fun () -> Interweave.Experiments.run_to_string e)
  in
  check_str "byte-identical output" off on;
  Alcotest.(check bool) "trace captured events" true (Trace.length tr > 0)

(* ------------------------------------------------------------------ *)
(* Chrome export *)

let traced_pinned_run () =
  let tr = Trace.ring () in
  let obs = Obs.create ~trace:tr () in
  Obs.with_ambient obs (fun () -> ignore (pinned_kernel ()));
  tr

let test_chrome_json_validates () =
  let tr = traced_pinned_run () in
  Alcotest.(check bool) "events recorded" true (Trace.length tr > 0);
  let path = Filename.temp_file "iw_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Chrome.write_file tr path;
      match Chrome.validate_file path with
      | Ok n ->
          Alcotest.(check bool)
            "validated every recorded event" true
            (n >= Trace.length tr)
      | Error msg -> Alcotest.fail ("trace failed validation: " ^ msg))

let test_chrome_rejects_garbage () =
  (match Chrome.validate "not json at all" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  match Chrome.validate "{\"traceEvents\": 42}" with
  | Ok _ -> Alcotest.fail "non-array traceEvents accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Stats.percentile regression (Float.compare, single sort) *)

let test_percentile_negative_samples () =
  let t = Iw_engine.Stats.create () in
  List.iter (Iw_engine.Stats.add t) [ 3.0; 1.0; 2.0; -5.0; 10.0 ];
  Alcotest.(check (float 1e-9)) "p50" 2.0 (Iw_engine.Stats.percentile t 50.0);
  Alcotest.(check (float 1e-9)) "p90" 10.0 (Iw_engine.Stats.percentile t 90.0);
  Alcotest.(check (float 1e-9)) "p0 is min" (-5.0)
    (Iw_engine.Stats.percentile t 0.0);
  let s = Iw_engine.Stats.summary t in
  Alcotest.(check (float 1e-9)) "summary p50 agrees" 2.0 s.Iw_engine.Stats.p50;
  Alcotest.(check (float 1e-9)) "summary p99 agrees" 10.0 s.Iw_engine.Stats.p99

(* ------------------------------------------------------------------ *)
(* Sweepable cost model *)

let test_sweep_registry_complete () =
  let module Sweep = Interweave.Machine.Sweep in
  Alcotest.(check bool)
    "covers the whole cost model" true
    (List.length Sweep.fields >= 30);
  check_int "names unique"
    (List.length Sweep.names)
    (List.length (List.sort_uniq compare Sweep.names));
  let plat = Iw_hw.Platform.small in
  match Sweep.find "tick_update" with
  | None -> Alcotest.fail "tick_update not registered"
  | Some fd ->
      check_int "preset value" 120 (fd.Sweep.get plat.Iw_hw.Platform.costs);
      let plat' = Sweep.with_value plat fd 999 in
      check_int "with_value roundtrip" 999
        (fd.Sweep.get plat'.Iw_hw.Platform.costs);
      check_int "original untouched" 120 (fd.Sweep.get plat.Iw_hw.Platform.costs)

let test_sweep_sensitivity_table () =
  let module Sweep = Interweave.Machine.Sweep in
  match Sweep.find "timer_path_softirq" with
  | None -> Alcotest.fail "timer_path_softirq not registered"
  | Some fd ->
      let tbl = Sweep.sensitivity fd [ 0; 1_200 ] in
      check_int "one row per value" 2 (List.length tbl.Interweave.Table.rows)

(* ------------------------------------------------------------------ *)
(* Machine context *)

let test_machine_boot_wiring () =
  let plat = Iw_hw.Platform.small in
  let tr = Trace.ring () in
  let m = Interweave.Machine.boot ~trace:tr (Interweave.Stack.commodity plat) in
  Alcotest.(check bool)
    "kernel shares the machine trace" true
    ((Iw_kernel.Sched.obs (Interweave.Machine.kernel m)).Obs.trace == tr);
  ignore
    (Iw_kernel.Sched.spawn (Interweave.Machine.kernel m) (fun () ->
         Iw_kernel.Api.work 10_000));
  Interweave.Machine.run m;
  Alcotest.(check bool)
    "counters fired" true
    (Counter.get (Interweave.Machine.counters m) Counter.Context_switches > 0);
  let tbl = Interweave.Machine.counter_table m in
  Alcotest.(check (list string))
    "table headers" [ "counter"; "events" ] tbl.Interweave.Table.headers

let () =
  Alcotest.run "obs"
    [
      ( "counters",
        [
          Alcotest.test_case "index bijection" `Quick
            test_counter_index_bijection;
          Alcotest.test_case "names unique" `Quick test_counter_names_unique;
          Alcotest.test_case "basic ops" `Quick test_counter_basic_ops;
          Alcotest.test_case "to_list rendering" `Quick
            test_counter_to_list_rendering;
        ] );
      ( "trace",
        [
          Alcotest.test_case "null disabled" `Quick test_trace_null_disabled;
          Alcotest.test_case "ring bounded" `Quick test_trace_ring_bounded;
          Alcotest.test_case "on/off identical tables" `Quick
            test_trace_on_off_identical_tables;
        ] );
      ( "chrome",
        [
          Alcotest.test_case "export validates" `Quick test_chrome_json_validates;
          Alcotest.test_case "rejects garbage" `Quick test_chrome_rejects_garbage;
        ] );
      ( "pinned",
        [
          Alcotest.test_case "typed counters match baseline" `Quick
            test_typed_counters_match_pinned_baseline;
        ] );
      ( "stats",
        [
          Alcotest.test_case "percentile negatives" `Quick
            test_percentile_negative_samples;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "registry complete" `Quick
            test_sweep_registry_complete;
          Alcotest.test_case "sensitivity table" `Quick
            test_sweep_sensitivity_table;
        ] );
      ( "machine",
        [
          Alcotest.test_case "boot wiring" `Quick test_machine_boot_wiring;
        ] );
    ]
