(* Unit and property tests for the simulation core. *)

open Iw_engine

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_determinism () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_split_independence () =
  let a = Rng.create ~seed:7 in
  let c = Rng.split a in
  let x = Rng.bits64 c in
  (* Drawing more from [a] must not change what [c] already produced. *)
  let a2 = Rng.create ~seed:7 in
  let c2 = Rng.split a2 in
  ignore (Rng.bits64 a2);
  Alcotest.(check int64) "split stream stable" x (Rng.bits64 c2 |> fun _ -> x)

(* The production Rng carries splitmix64 state as two 32-bit int limbs
   to keep draws box-free.  Check it bit-for-bit against a direct
   Int64 transcription of the algorithm, across seeds (including
   negative), splits, and every derived draw. *)
module Rng_ref = struct
  type t = { mutable state : int64 }

  let gamma = 0x9E3779B97F4A7C15L

  let mix z =
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let create ~seed = { state = Int64.of_int seed }

  let bits64 t =
    t.state <- Int64.add t.state gamma;
    mix t.state

  let split t = { state = bits64 t }
  let int t bound = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) mod bound

  let float t bound =
    bound
    *. (float_of_int (Int64.to_int (Int64.shift_right_logical (bits64 t) 11))
       /. 9007199254740992.0)

  let bool t = Int64.logand (bits64 t) 1L = 1L
end

let test_rng_limbs_vs_int64_reference () =
  List.iter
    (fun seed ->
      let r = Rng.create ~seed and q = Rng_ref.create ~seed in
      for _ = 1 to 500 do
        Alcotest.(check int64) "bits64" (Rng_ref.bits64 q) (Rng.bits64 r)
      done;
      let r = Rng.split r and q = Rng_ref.split q in
      for _ = 1 to 200 do
        check_int "int" (Rng_ref.int q 9973) (Rng.int r 9973);
        Alcotest.(check (float 0.0)) "float" (Rng_ref.float q 1.0) (Rng.float r 1.0);
        check_bool "bool" (Rng_ref.bool q) (Rng.bool r)
      done;
      (* raw53 is float's mantissa source; raw62 is int's modulo source *)
      check_int "raw53"
        (Int64.to_int (Int64.shift_right_logical (Rng_ref.bits64 q) 11))
        (Rng.raw53 r);
      check_int "raw62"
        (Int64.to_int (Int64.shift_right_logical (Rng_ref.bits64 q) 2))
        (Rng.raw62 r))
    [ 0; 1; 42; 0x5E21CE; -1; -123456789; max_int; min_int ]

let test_rng_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let x = Rng.int r 17 in
    check_bool "in range" true (x >= 0 && x < 17);
    let y = Rng.int_in r (-5) 5 in
    check_bool "in closed range" true (y >= -5 && y <= 5);
    let f = Rng.float r 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_gaussian_moments () =
  let r = Rng.create ~seed:3 in
  let n = 20_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.gaussian r ~mu:10.0 ~sigma:2.0
  done;
  let mean = !acc /. float_of_int n in
  check_bool "gaussian mean near mu" true (abs_float (mean -. 10.0) < 0.1)

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_ordering () =
  let h = Heap.create ~cmp:compare () in
  List.iter (fun k -> Heap.push h k (string_of_int k)) [ 5; 1; 9; 3; 7; 2; 8 ];
  let order = List.map fst (Heap.to_sorted_list h) in
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 7; 8; 9 ] order;
  check_int "length preserved" 7 (Heap.length h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap drains in sorted order" ~count:200
    QCheck.(list small_int)
    (fun keys ->
      let h = Heap.create ~cmp:compare () in
      List.iter (fun k -> Heap.push h k ()) keys;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (k, ()) -> drain (k :: acc)
      in
      drain [] = List.sort compare keys)

(* ------------------------------------------------------------------ *)
(* Sim *)

let test_sim_event_order () =
  let s = Sim.create () in
  let log = ref [] in
  let note tag () = log := tag :: !log in
  ignore (Sim.schedule s ~at:30 (note "c"));
  ignore (Sim.schedule s ~at:10 (note "a"));
  ignore (Sim.schedule s ~at:20 (note "b"));
  Sim.run s;
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check_int "clock at last event" 30 (Sim.now s)

let test_sim_fifo_ties () =
  let s = Sim.create () in
  let log = ref [] in
  for i = 0 to 4 do
    ignore (Sim.schedule s ~at:5 (fun () -> log := i :: !log))
  done;
  Sim.run s;
  Alcotest.(check (list int)) "insertion order on ties" [ 0; 1; 2; 3; 4 ]
    (List.rev !log)

let test_sim_cancel () =
  let s = Sim.create () in
  let fired = ref false in
  let ev = Sim.schedule s ~at:10 (fun () -> fired := true) in
  Sim.cancel ev;
  Sim.run s;
  check_bool "cancelled event does not fire" false !fired;
  check_bool "marked cancelled" true (Sim.cancelled ev)

let test_sim_schedule_from_event () =
  let s = Sim.create () in
  let times = ref [] in
  ignore
    (Sim.schedule s ~at:5 (fun () ->
         ignore (Sim.schedule_after s 7 (fun () -> times := Sim.now s :: !times))));
  Sim.run s;
  Alcotest.(check (list int)) "nested schedule" [ 12 ] !times

let test_sim_past_rejected () =
  let s = Sim.create () in
  ignore (Sim.schedule s ~at:10 (fun () -> ()));
  Sim.run s;
  Alcotest.check_raises "past" (Invalid_argument
    "Sim.schedule: time 5 is in the past (now=10)")
    (fun () -> ignore (Sim.schedule s ~at:5 (fun () -> ())))

let test_sim_until () =
  let s = Sim.create () in
  let count = ref 0 in
  let rec tick () =
    incr count;
    ignore (Sim.schedule_after s 10 tick)
  in
  ignore (Sim.schedule s ~at:0 tick);
  Sim.run ~until:95 s;
  (* Fires at 0,10,...,90: 10 events. *)
  check_int "bounded by horizon" 10 !count

let prop_sim_monotonic_clock =
  QCheck.Test.make ~name:"virtual clock is monotonic" ~count:100
    QCheck.(list (int_bound 1000))
    (fun delays ->
      let s = Sim.create () in
      let ok = ref true in
      let last = ref 0 in
      List.iter
        (fun d ->
          ignore
            (Sim.schedule s ~at:d (fun () ->
                 if Sim.now s < !last then ok := false;
                 last := Sim.now s)))
        delays;
      Sim.run s;
      !ok)

(* ------------------------------------------------------------------ *)
(* Fast path: Ekey, Int_heap, Timer_wheel, Sim counters *)

let test_ekey_roundtrip () =
  List.iter
    (fun (time, seq) ->
      let k = Ekey.pack ~time ~seq in
      check_int "time" time (Ekey.time k);
      check_int "seq" seq (Ekey.seq k))
    [ (0, 0); (1, Ekey.seq_limit - 1); (Ekey.max_time, 0); (123_456_789, 42) ];
  (match Ekey.pack ~time:(-1) ~seq:0 with
  | _ -> Alcotest.fail "negative time accepted"
  | exception Invalid_argument _ -> ());
  match Ekey.pack ~time:0 ~seq:Ekey.seq_limit with
  | _ -> Alcotest.fail "overflowing seq accepted"
  | exception Invalid_argument _ -> ()

let prop_int_heap_sorts =
  QCheck.Test.make ~name:"int heap drains in sorted order" ~count:200
    QCheck.(list small_signed_int)
    (fun keys ->
      (* Tiny initial capacity so growth is exercised too. *)
      let h = Int_heap.create ~capacity:2 ~dummy:min_int () in
      List.iter (fun k -> Int_heap.push h k k) keys;
      let rec drain acc =
        if Int_heap.is_empty h then List.rev acc
        else begin
          let k = Int_heap.min_key h in
          let v = Int_heap.pop h in
          if v <> k then List.rev (max_int :: acc) else drain (k :: acc)
        end
      in
      drain [] = List.sort compare keys)

let test_wheel_order () =
  let w = Timer_wheel.create () in
  let fired = ref [] in
  (* Deadlines straddling slot and level boundaries (63^1, 63^2, 63^3). *)
  let times = [ 1; 5; 62; 63; 64; 100; 3968; 3969; 250_047; 1_000_000 ] in
  List.iteri
    (fun i at ->
      let tm = Timer_wheel.make_timer () in
      Timer_wheel.arm w tm
        ~key:(Ekey.pack ~time:at ~seq:i)
        (fun () -> fired := at :: !fired))
    times;
  let rec drain () =
    let code = Timer_wheel.peek w in
    if code = Timer_wheel.advance_over then begin
      Timer_wheel.advance w (Timer_wheel.boundary w);
      drain ()
    end
    else if code = Timer_wheel.fire then begin
      let tm = Timer_wheel.due w in
      Timer_wheel.advance w (Ekey.time (Timer_wheel.key tm));
      let cb = Timer_wheel.callback tm in
      Timer_wheel.take w tm;
      cb ();
      drain ()
    end
  in
  drain ();
  Alcotest.(check (list int)) "fires in deadline order"
    (List.sort compare times) (List.rev !fired);
  check_int "wheel drained" 0 (Timer_wheel.live w)

let drain_wheel w =
  let rec go () =
    let code = Timer_wheel.peek w in
    if code = Timer_wheel.advance_over then begin
      Timer_wheel.advance w (Timer_wheel.boundary w);
      go ()
    end
    else if code = Timer_wheel.fire then begin
      let tm = Timer_wheel.due w in
      Timer_wheel.advance w (Ekey.time (Timer_wheel.key tm));
      let cb = Timer_wheel.callback tm in
      Timer_wheel.take w tm;
      cb ();
      go ()
    end
  in
  go ()

let test_wheel_cancel_after_fire () =
  let w = Timer_wheel.create () in
  let tm = Timer_wheel.make_timer () in
  let count = ref 0 in
  Timer_wheel.arm w tm ~key:(Ekey.pack ~time:10 ~seq:0) (fun () -> incr count);
  drain_wheel w;
  check_int "fired once" 1 !count;
  check_bool "idle after fire" false (Timer_wheel.armed tm);
  (* Cancelling a timer whose callback already ran must be a no-op —
     twice over. *)
  Timer_wheel.cancel w tm;
  Timer_wheel.cancel w tm;
  check_int "live unaffected" 0 (Timer_wheel.live w);
  (* The record stays reusable after the late cancels. *)
  Timer_wheel.arm w tm ~key:(Ekey.pack ~time:20 ~seq:1) (fun () -> incr count);
  drain_wheel w;
  check_int "re-armed record fires" 2 !count

let test_wheel_rearm_from_callback () =
  let w = Timer_wheel.create () in
  let tm = Timer_wheel.make_timer () in
  let fires = ref [] in
  (* The watchdog pattern: the callback re-arms its own (just-taken)
     record.  Period 70 straddles the level-0 boundary, so cascading
     is exercised too. *)
  let rec cb () =
    fires := Timer_wheel.clock w :: !fires;
    if List.length !fires < 4 then
      Timer_wheel.arm w tm
        ~key:
          (Ekey.pack
             ~time:(Timer_wheel.clock w + 70)
             ~seq:(List.length !fires))
        cb
  in
  Timer_wheel.arm w tm ~key:(Ekey.pack ~time:70 ~seq:0) cb;
  drain_wheel w;
  Alcotest.(check (list int))
    "periodic re-arm from inside callback" [ 70; 140; 210; 280 ]
    (List.rev !fires);
  check_int "drained" 0 (Timer_wheel.live w)

let test_sim_pending_o1 () =
  let s = Sim.create () in
  let e1 = Sim.schedule s ~at:10 ignore in
  let _e2 = Sim.schedule s ~at:20 ignore in
  let tm = Sim.timer s in
  Sim.arm s tm ~at:30 ignore;
  check_int "three pending" 3 (Sim.pending s);
  Sim.cancel e1;
  check_int "cancel decrements" 2 (Sim.pending s);
  Sim.cancel e1;
  check_int "double cancel counted once" 2 (Sim.pending s);
  Sim.disarm s tm;
  check_int "disarm decrements" 1 (Sim.pending s);
  Sim.run s;
  check_int "drained" 0 (Sim.pending s);
  check_bool "exhausted" true (Sim.exhausted s)

let test_sim_timer_stats () =
  let s = Sim.create () in
  let tm = Sim.timer s in
  let count = ref 0 in
  let rec tick () =
    incr count;
    if !count < 1000 then Sim.arm_after s tm 10 tick
  in
  Sim.arm_after s tm 10 tick;
  Sim.run s;
  check_int "all ticks fired" 1000 !count;
  let st = Sim.stats s in
  check_int "timer fires counted" 1000 st.Sim.timer_fires;
  check_bool "arms counted" true (st.Sim.timer_arms >= 1000);
  (* The whole periodic stream lives on the wheel: the binary heap
     sees (almost) none of it. *)
  check_bool "heap traffic dropped" true (st.Sim.heap_pushes < 10)

let prop_sim_pending_exact =
  QCheck.Test.make ~name:"pending stays exact under cancel/fire interleavings"
    ~count:200
    QCheck.(list (pair (int_bound 100) (int_bound 7)))
    (fun spec ->
      let n = List.length spec in
      if n = 0 then true
      else begin
        let s = Sim.create () in
        let events = Array.make n None in
        let fired = ref 0 in
        List.iteri
          (fun i (at, victim_off) ->
            let ev =
              Sim.schedule s ~at (fun () ->
                  incr fired;
                  (* From inside a callback, cancel some other event —
                     possibly one already fired, possibly twice. *)
                  match events.((i + victim_off) mod n) with
                  | Some v ->
                      Sim.cancel v;
                      Sim.cancel v
                  | None -> ())
            in
            events.(i) <- Some ev)
          spec;
        Sim.pending s = n
        &&
        (Sim.run s;
         Sim.pending s = 0 && !fired <= n && Sim.exhausted s)
      end)

(* ------------------------------------------------------------------ *)
(* Coro *)

let test_coro_done () =
  match Coro.start (fun () -> ()) with
  | Coro.Done -> ()
  | _ -> Alcotest.fail "expected Done"

let test_coro_consume_sequence () =
  let trace = ref [] in
  let status =
    Coro.start (fun () ->
        trace := "a" :: !trace;
        Coro.consume 10;
        trace := "b" :: !trace;
        Coro.consume 20;
        trace := "c" :: !trace)
  in
  (match status with
  | Coro.Paused (Coro.Consumed (10, k1)) -> (
      Alcotest.(check (list string)) "ran to first consume" [ "a" ]
        (List.rev !trace);
      match k1 () with
      | Coro.Paused (Coro.Consumed (20, k2)) -> (
          match k2 () with
          | Coro.Done -> ()
          | _ -> Alcotest.fail "expected Done after second consume")
      | _ -> Alcotest.fail "expected second consume")
  | _ -> Alcotest.fail "expected first consume");
  Alcotest.(check (list string)) "full trace" [ "a"; "b"; "c" ]
    (List.rev !trace)

let test_coro_consume_zero_no_suspend () =
  match Coro.start (fun () -> Coro.consume 0) with
  | Coro.Done -> ()
  | _ -> Alcotest.fail "consume 0 must not suspend"

let test_coro_failure () =
  match Coro.start (fun () -> failwith "boom") with
  | Coro.Failed (Failure msg) -> Alcotest.(check string) "msg" "boom" msg
  | _ -> Alcotest.fail "expected Failed"

type _ Coro.Request.t += Double : int -> int Coro.Request.t

let test_coro_request_reply () =
  let status = Coro.start (fun () ->
      let v = Coro.request (Double 21) in
      Coro.consume v)
  in
  match status with
  | Coro.Paused (Coro.Requested (Double n, k)) -> (
      match k (2 * n) with
      | Coro.Paused (Coro.Consumed (42, _)) -> ()
      | _ -> Alcotest.fail "expected consume of the reply")
  | _ -> Alcotest.fail "expected request"

let test_coro_outside_raises () =
  Alcotest.check_raises "consume outside" Coro.Not_in_coroutine (fun () ->
      Coro.consume 5)

let test_coro_negative_consume () =
  match Coro.start (fun () -> Coro.consume (-1)) with
  | Coro.Failed (Invalid_argument _) -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 1.0; 2.0; 3.0; 4.0 ];
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min_value s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max_value s);
  check_int "count" 4 (Stats.count s)

let test_stats_percentile () =
  let s = Stats.create () in
  for i = 1 to 100 do
    Stats.add_int s i
  done;
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile s 50.0);
  Alcotest.(check (float 1e-9)) "p99" 99.0 (Stats.percentile s 99.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile s 100.0)

let test_stats_empty_raises () =
  let s = Stats.create () in
  Alcotest.check_raises "empty" (Invalid_argument "Stats.summary: empty series")
    (fun () -> ignore (Stats.summary s))

let prop_stats_mean_bounded =
  QCheck.Test.make ~name:"mean lies within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0))
    (fun xs ->
      let s = Stats.create () in
      List.iter (Stats.add s) xs;
      let m = Stats.mean s in
      m >= Stats.min_value s -. 1e-9 && m <= Stats.max_value s +. 1e-9)

let test_counters () =
  let c = Stats.Counters.create () in
  Stats.Counters.incr c "a";
  Stats.Counters.add c "a" 4;
  Stats.Counters.incr c "b";
  check_int "a" 5 (Stats.Counters.get c "a");
  check_int "b" 1 (Stats.Counters.get c "b");
  check_int "missing" 0 (Stats.Counters.get c "zzz");
  Alcotest.(check (list (pair string int)))
    "to_list sorted"
    [ ("a", 5); ("b", 1) ]
    (Stats.Counters.to_list c)

(* ------------------------------------------------------------------ *)
(* Units *)

let test_units_roundtrip () =
  let ghz = 1.3 in
  let c = Units.cycles_of_us ~ghz 100.0 in
  check_int "100us at 1.3GHz" 130_000 c;
  Alcotest.(check (float 1e-6)) "roundtrip" 100.0 (Units.us_of_cycles ~ghz c)

let test_units_hz () =
  Alcotest.(check (float 1e-3)) "10kHz" 10_000.0
    (Units.hz_of_period_cycles ~ghz:1.0 100_000)

let () =
  let q = QCheck_alcotest.to_alcotest in
  Alcotest.run "engine"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "split independence" `Quick
            test_rng_split_independence;
          Alcotest.test_case "limbs vs int64 reference" `Quick
            test_rng_limbs_vs_int64_reference;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_permutation;
        ] );
      ( "heap",
        [
          Alcotest.test_case "ordering" `Quick test_heap_ordering;
          q prop_heap_sorts;
        ] );
      ( "sim",
        [
          Alcotest.test_case "event order" `Quick test_sim_event_order;
          Alcotest.test_case "fifo ties" `Quick test_sim_fifo_ties;
          Alcotest.test_case "cancel" `Quick test_sim_cancel;
          Alcotest.test_case "nested schedule" `Quick
            test_sim_schedule_from_event;
          Alcotest.test_case "past rejected" `Quick test_sim_past_rejected;
          Alcotest.test_case "run until" `Quick test_sim_until;
          q prop_sim_monotonic_clock;
        ] );
      ( "fastpath",
        [
          Alcotest.test_case "ekey roundtrip" `Quick test_ekey_roundtrip;
          q prop_int_heap_sorts;
          Alcotest.test_case "timer wheel order" `Quick test_wheel_order;
          Alcotest.test_case "wheel cancel after fire" `Quick
            test_wheel_cancel_after_fire;
          Alcotest.test_case "wheel re-arm from callback" `Quick
            test_wheel_rearm_from_callback;
          Alcotest.test_case "pending is exact" `Quick test_sim_pending_o1;
          Alcotest.test_case "timer stats" `Quick test_sim_timer_stats;
          q prop_sim_pending_exact;
        ] );
      ( "coro",
        [
          Alcotest.test_case "done" `Quick test_coro_done;
          Alcotest.test_case "consume sequence" `Quick
            test_coro_consume_sequence;
          Alcotest.test_case "consume zero" `Quick
            test_coro_consume_zero_no_suspend;
          Alcotest.test_case "failure" `Quick test_coro_failure;
          Alcotest.test_case "request reply" `Quick test_coro_request_reply;
          Alcotest.test_case "outside coroutine" `Quick
            test_coro_outside_raises;
          Alcotest.test_case "negative consume" `Quick
            test_coro_negative_consume;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          q prop_stats_mean_bounded;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "units",
        [
          Alcotest.test_case "roundtrip" `Quick test_units_roundtrip;
          Alcotest.test_case "hz" `Quick test_units_hz;
        ] );
    ]
