(* Tests for the hardware layer: CPU grants/interrupts, LAPIC, IPI,
   TLB, pipeline interrupts. *)

open Iw_engine
open Iw_hw

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let plat = Platform.small

(* ------------------------------------------------------------------ *)
(* Cpu *)

let test_grant_completes () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let completed_at = ref (-1) in
  Cpu.grant cpu ~cycles:100 ~kind:Cpu.Work ~uninterruptible:false
    ~on_complete:(fun () -> completed_at := Sim.now s);
  check_bool "busy during grant" true (Cpu.busy cpu);
  Sim.run s;
  check_int "completes on time" 100 !completed_at;
  check_int "work accounted" 100 (Cpu.work_cycles cpu);
  check_bool "idle after" false (Cpu.busy cpu)

let test_grant_zero_cycles_async () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let done_ = ref false in
  Cpu.grant cpu ~cycles:0 ~kind:Cpu.Work ~uninterruptible:false
    ~on_complete:(fun () -> done_ := true);
  check_bool "not synchronous" false !done_;
  Sim.run s;
  check_bool "completed via event" true !done_

let test_grant_while_busy_rejected () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  Cpu.grant cpu ~cycles:100 ~kind:Cpu.Work ~uninterruptible:false
    ~on_complete:(fun () -> ());
  Alcotest.check_raises "busy" (Invalid_argument "Cpu.grant: core 0 is busy")
    (fun () ->
      Cpu.grant cpu ~cycles:10 ~kind:Cpu.Work ~uninterruptible:false
        ~on_complete:(fun () -> ()))

let test_interrupt_preempts_grant () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let grant_completed = ref false in
  let seen_remaining = ref (-1) in
  let after_at = ref (-1) in
  Cpu.grant cpu ~cycles:1000 ~kind:Cpu.Work ~uninterruptible:false
    ~on_complete:(fun () -> grant_completed := true);
  ignore
    (Sim.schedule s ~at:400 (fun () ->
         Cpu.interrupt cpu ~dispatch:50 ~return_cost:10
           ~handler:(fun ~preempted ->
             if preempted < 0 then Alcotest.fail "expected preemption"
             else seen_remaining := preempted;
             20)
           ~after:(fun () -> after_at := Sim.now s)));
  Sim.run s;
  check_bool "preempted grant never completes" false !grant_completed;
  check_int "remaining = total - consumed" 600 !seen_remaining;
  (* 400 (arrival) + 50 dispatch + 20 handler + 10 return. *)
  check_int "after runs when irq done" 480 !after_at;
  check_int "irq cycles accounted" 80 (Cpu.irq_cycles cpu);
  check_int "partial work accounted" 400 (Cpu.work_cycles cpu)

let test_interrupt_on_idle_cpu () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let got = ref min_int in
  Cpu.interrupt cpu ~dispatch:30 ~return_cost:5
    ~handler:(fun ~preempted ->
      got := preempted;
      0)
    ~after:(fun () -> ());
  Sim.run s;
  if !got <> -1 then Alcotest.fail "expected delivery with no preemption"

let test_uninterruptible_grant_defers_irq () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let handler_at = ref (-1) in
  Cpu.grant cpu ~cycles:100 ~kind:Cpu.Work ~uninterruptible:true
    ~on_complete:(fun () -> ());
  ignore
    (Sim.schedule s ~at:20 (fun () ->
         Cpu.interrupt cpu ~dispatch:10 ~return_cost:0
           ~handler:(fun ~preempted ->
             if preempted >= 0 then
               Alcotest.fail "must not preempt uninterruptible";
             handler_at := Sim.now s;
             0)
           ~after:(fun () -> ())));
  Sim.run s;
  (* Delivery waits for grant end at t=100, then 10 dispatch. *)
  check_int "deferred to grant end" 110 !handler_at

let test_interrupts_queue_fifo () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let order = ref [] in
  let inject tag =
    Cpu.interrupt cpu ~dispatch:10 ~return_cost:0
      ~handler:(fun ~preempted:_ ->
        order := tag :: !order;
        100)
      ~after:(fun () -> ())
  in
  ignore (Sim.schedule s ~at:0 (fun () -> inject "first"));
  ignore (Sim.schedule s ~at:5 (fun () -> inject "second"));
  ignore (Sim.schedule s ~at:6 (fun () -> inject "third"));
  Sim.run s;
  Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ]
    (List.rev !order)

let test_resume_after_preemption () =
  (* The kernel pattern: re-grant the remainder after the interrupt. *)
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let finished_at = ref (-1) in
  let remaining = ref 0 in
  let give n =
    Cpu.grant cpu ~cycles:n ~kind:Cpu.Work ~uninterruptible:false
      ~on_complete:(fun () -> finished_at := Sim.now s)
  in
  give 1000;
  ignore
    (Sim.schedule s ~at:300 (fun () ->
         Cpu.interrupt cpu ~dispatch:100 ~return_cost:0
           ~handler:(fun ~preempted ->
             if preempted >= 0 then remaining := preempted;
             0)
           ~after:(fun () -> give !remaining)));
  Sim.run s;
  (* 300 consumed + 100 irq + 700 remaining = done at 1100. *)
  check_int "resumed to completion" 1100 !finished_at;
  check_int "full work accounted" 1000 (Cpu.work_cycles cpu)

(* ------------------------------------------------------------------ *)
(* Lapic *)

let test_lapic_oneshot () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let lapic = Lapic.create s plat cpu in
  let at = ref (-1) in
  Lapic.oneshot lapic ~delay:500
    ~handler:(fun ~preempted:_ ->
      at := Sim.now s;
      0)
    ~after:(fun () -> ());
  Sim.run s;
  check_int "fires after delay + dispatch" (500 + plat.costs.interrupt_dispatch) !at;
  check_int "fired count" 1 (Lapic.fired lapic)

let test_lapic_periodic_and_stop () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let lapic = Lapic.create s plat cpu in
  let count = ref 0 in
  Lapic.periodic lapic ~period:100
    ~handler:(fun ~preempted:_ ->
      incr count;
      0)
    ~after:(fun () -> ())
    ();
  ignore (Sim.schedule s ~at:550 (fun () -> Lapic.stop lapic));
  Sim.run s;
  check_int "ticks until stopped" 5 !count

let test_lapic_stop_cancels_oneshot () =
  let s = Sim.create () in
  let cpu = Cpu.create s ~id:0 in
  let lapic = Lapic.create s plat cpu in
  let fired = ref false in
  Lapic.oneshot lapic ~delay:100
    ~handler:(fun ~preempted:_ ->
      fired := true;
      0)
    ~after:(fun () -> ());
  ignore (Sim.schedule s ~at:10 (fun () -> Lapic.stop lapic));
  Sim.run s;
  check_bool "cancelled" false !fired

(* ------------------------------------------------------------------ *)
(* Ipi *)

let test_ipi_latency () =
  let s = Sim.create () in
  let target = Cpu.create s ~id:1 in
  let at = ref (-1) in
  Ipi.send s plat ~target
    ~handler:(fun ~preempted:_ ->
      at := Sim.now s;
      0)
    ~after:(fun () -> ());
  Sim.run s;
  check_int "latency + dispatch"
    (plat.costs.ipi_latency + plat.costs.interrupt_dispatch)
    !at

let test_ipi_broadcast_reaches_all () =
  let s = Sim.create () in
  let targets = List.init 3 (fun i -> Cpu.create s ~id:i) in
  let hit = Array.make 3 (-1) in
  Ipi.broadcast s plat ~targets
    ~handler:(fun cid ~preempted:_ ->
      hit.(cid) <- Sim.now s;
      0)
    ~after:(fun _ -> ());
  Sim.run s;
  Array.iter
    (fun at ->
      check_int "same arrival everywhere"
        (plat.costs.ipi_latency + plat.costs.interrupt_dispatch)
        at)
    hit

(* ------------------------------------------------------------------ *)
(* Tlb *)

let test_tlb_identity_large_no_misses () =
  let tlb = Tlb.create plat ~page_kb:plat.large_page_size_kb in
  (* 64 entries * 2 MB = 128 MB reach: the machine's memory fits. *)
  let profile =
    { Tlb.footprint_kb = 64 * 1024; accesses = 1_000_000; locality = 0.0 }
  in
  check_int "no misses under identity-large" 0 (Tlb.misses tlb profile)

let test_tlb_demand_paged_misses () =
  let tlb = Tlb.create plat ~page_kb:plat.page_size_kb in
  (* Reach is 64 * 4 KB = 256 KB; a 1 MB streaming footprint misses. *)
  let profile =
    { Tlb.footprint_kb = 1024; accesses = 100_000; locality = 0.0 }
  in
  check_bool "misses occur" true (Tlb.misses tlb profile > 0);
  check_bool "faults occur" true (Tlb.first_touch_faults tlb profile > 0)

let test_tlb_locality_reduces_misses () =
  let tlb = Tlb.create plat ~page_kb:plat.page_size_kb in
  let base = { Tlb.footprint_kb = 2048; accesses = 1_000_000; locality = 0.0 } in
  let local = { base with locality = 0.9 } in
  check_bool "locality helps" true (Tlb.misses tlb local < Tlb.misses tlb base)

let test_overhead_ordering () =
  let tlb = Tlb.create plat ~page_kb:plat.page_size_kb in
  let p = { Tlb.footprint_kb = 2048; accesses = 500_000; locality = 0.2 } in
  let demand = Tlb.access_overhead_cycles tlb plat p ~demand_paged:true in
  let no_demand = Tlb.access_overhead_cycles tlb plat p ~demand_paged:false in
  check_bool "faults add cost" true (demand > no_demand)

(* ------------------------------------------------------------------ *)
(* Pipeline interrupts *)

let test_pipeline_speedup_range () =
  let sp = Pipeline_interrupt.speedup plat in
  (* §V-D claims 100-1000x. *)
  check_bool "within claimed band" true (sp >= 50.0 && sp <= 1000.0)

let test_pipeline_cheaper_than_idt () =
  let idt = Pipeline_interrupt.deliver plat Pipeline_interrupt.Idt in
  let br = Pipeline_interrupt.deliver plat Pipeline_interrupt.Branch_injected in
  check_bool "ordering" true (br.total_cycles < idt.total_cycles);
  check_int "idt matches cost table"
    (plat.costs.interrupt_dispatch + plat.costs.interrupt_return)
    idt.total_cycles

let test_riscv_platform_sane () =
  let r = Platform.riscv_openpiton in
  check_bool "cheap trap path vs x64" true
    (r.costs.interrupt_dispatch < Platform.knl.costs.interrupt_dispatch);
  check_bool "pipeline-interrupt still wins there" true
    (Pipeline_interrupt.speedup r > 20.0)

let test_pipeline_sweep_monotone () =
  let rows = Pipeline_interrupt.sweep plat ~rate_hz:[ 1e3; 1e4; 1e5 ] in
  List.iter
    (fun (_, idt_frac, br_frac) ->
      check_bool "branch overhead below idt" true (br_frac < idt_frac))
    rows

let () =
  Alcotest.run "hw"
    [
      ( "cpu",
        [
          Alcotest.test_case "grant completes" `Quick test_grant_completes;
          Alcotest.test_case "zero-cycle grant async" `Quick
            test_grant_zero_cycles_async;
          Alcotest.test_case "grant while busy rejected" `Quick
            test_grant_while_busy_rejected;
          Alcotest.test_case "interrupt preempts" `Quick
            test_interrupt_preempts_grant;
          Alcotest.test_case "interrupt on idle" `Quick
            test_interrupt_on_idle_cpu;
          Alcotest.test_case "uninterruptible defers irq" `Quick
            test_uninterruptible_grant_defers_irq;
          Alcotest.test_case "irq queue fifo" `Quick test_interrupts_queue_fifo;
          Alcotest.test_case "resume after preemption" `Quick
            test_resume_after_preemption;
        ] );
      ( "lapic",
        [
          Alcotest.test_case "oneshot" `Quick test_lapic_oneshot;
          Alcotest.test_case "periodic + stop" `Quick
            test_lapic_periodic_and_stop;
          Alcotest.test_case "stop cancels oneshot" `Quick
            test_lapic_stop_cancels_oneshot;
        ] );
      ( "ipi",
        [
          Alcotest.test_case "latency" `Quick test_ipi_latency;
          Alcotest.test_case "broadcast" `Quick test_ipi_broadcast_reaches_all;
        ] );
      ( "tlb",
        [
          Alcotest.test_case "identity-large: no misses" `Quick
            test_tlb_identity_large_no_misses;
          Alcotest.test_case "demand-paged: misses" `Quick
            test_tlb_demand_paged_misses;
          Alcotest.test_case "locality reduces misses" `Quick
            test_tlb_locality_reduces_misses;
          Alcotest.test_case "fault cost ordering" `Quick test_overhead_ordering;
        ] );
      ( "pipeline-interrupt",
        [
          Alcotest.test_case "speedup range" `Quick test_pipeline_speedup_range;
          Alcotest.test_case "cheaper than idt" `Quick
            test_pipeline_cheaper_than_idt;
          Alcotest.test_case "sweep monotone" `Quick test_pipeline_sweep_monotone;
          Alcotest.test_case "riscv platform (SecV-F)" `Quick
            test_riscv_platform_sane;
        ] );
    ]
