(* Tests for the deterministic fault-injection plan and the recovery
   machinery that rides above it. *)

module Plan = Iw_faults.Plan
module Counter = Iw_obs.Counter
module Obs = Iw_obs.Obs

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let fresh_obs () = Obs.create ~collect:true ()

(* ------------------------------------------------------------------ *)
(* The plan itself *)

let test_plan_deterministic () =
  let draw plan =
    let obs = fresh_obs () in
    List.init 200 (fun i ->
        Plan.fire plan obs ~kind:Plan.Ipi_drop ~cpu:0 ~ts:i)
  in
  let a = draw (Plan.create ~rate:0.3 ~seed:42 ()) in
  let b = draw (Plan.create ~rate:0.3 ~seed:42 ()) in
  Alcotest.(check (list bool)) "same seed, same schedule" a b;
  let c = draw (Plan.create ~rate:0.3 ~seed:43 ()) in
  check_bool "different seed, different schedule" true (a <> c)

let test_plan_disabled_never_fires () =
  let obs = fresh_obs () in
  let plan = Plan.disabled in
  for i = 1 to 500 do
    List.iter
      (fun k ->
        check_bool "disabled plan is inert" false
          (Plan.fire plan obs ~kind:k ~cpu:0 ~ts:i))
      Plan.all_kinds
  done;
  check_int "nothing counted" 0
    (Counter.get (Obs.total_counters obs) Counter.Fault_injected)

let test_plan_rate_extremes () =
  let obs = fresh_obs () in
  let always = Plan.create ~rate:1.0 ~seed:1 () in
  let never = Plan.create ~rate:0.0 ~seed:1 () in
  for i = 1 to 100 do
    check_bool "rate 1 always fires" true
      (Plan.fire always obs ~kind:Plan.Cpu_stall ~cpu:0 ~ts:i);
    check_bool "rate 0 never fires" false
      (Plan.fire never obs ~kind:Plan.Cpu_stall ~cpu:0 ~ts:i)
  done;
  check_int "every fire observed" 100
    (Counter.get (Obs.total_counters obs) Counter.Fault_injected);
  check_int "plan tallies its own injections" 100 (Plan.injected always);
  check_int "rate-0 plan injected nothing" 0 (Plan.injected never)

let test_plan_unarmed_kind_inert () =
  let obs = fresh_obs () in
  let plan = Plan.create ~kinds:[ Plan.Ipi_drop ] ~rate:1.0 ~seed:9 () in
  check_bool "armed kind fires" true
    (Plan.fire plan obs ~kind:Plan.Ipi_drop ~cpu:0 ~ts:0);
  check_bool "unarmed kind never fires" false
    (Plan.fire plan obs ~kind:Plan.Timer_miss ~cpu:0 ~ts:0);
  check_int "only the armed fire counted" 1 (Plan.injected plan)

let test_plan_bulk_count () =
  let obs = fresh_obs () in
  let plan = Plan.create ~rate:0.5 ~seed:3 () in
  let n =
    Plan.count plan obs ~kind:Plan.Tlb_shootdown ~opportunities:1000 ~cpu:0
      ~ts:0
  in
  check_bool "bulk count near rate*opportunities" true (n = 500 || n = 501);
  check_int "count never exceeds opportunities" 1
    (Plan.count
       (Plan.create ~rate:1.0 ~seed:3 ())
       obs ~kind:Plan.Tlb_shootdown ~opportunities:1 ~cpu:0 ~ts:0);
  check_int "zero opportunities, zero faults" 0
    (Plan.count plan obs ~kind:Plan.Tlb_shootdown ~opportunities:0 ~cpu:0
       ~ts:0)

let test_plan_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Plan.kind_of_string (Plan.kind_name k) with
      | Some k' -> check_bool "roundtrip" true (k = k')
      | None -> Alcotest.fail ("no roundtrip for " ^ Plan.kind_name k))
    Plan.all_kinds;
  check_bool "unknown spelling rejected" true
    (Plan.kind_of_string "cosmic-ray" = None)

let test_plan_kind_listing_complete () =
  (* [all_kinds] is what `faults --list-kinds` prints, so it must cover
     every constructor: one entry per index in [0, kind_count), no
     repeats, and a distinct name for each. *)
  check_int "one entry per constructor" Plan.kind_count
    (List.length Plan.all_kinds);
  let seen = Array.make Plan.kind_count false in
  List.iter
    (fun k ->
      let i = Plan.kind_index k in
      check_bool "index in range" true (i >= 0 && i < Plan.kind_count);
      check_bool "no repeated constructor" false seen.(i);
      seen.(i) <- true)
    Plan.all_kinds;
  let names = List.map Plan.kind_name Plan.all_kinds in
  check_int "names are distinct" (List.length names)
    (List.length (List.sort_uniq compare names));
  (* The NIC kinds this PR appended are listed. *)
  List.iter
    (fun n -> check_bool (n ^ " listed") true (List.mem n names))
    [ "nic-rx-drop"; "nic-irq-lost"; "nic-ring-overrun" ]

let test_plan_brownout_draw_bounded () =
  (* Severity draws are deterministic per seed and stay inside the
     documented envelope: slowdown 2.0-4.0x (x1000), duration in
     [brownout_cycles/2, brownout_cycles*3/2]. *)
  let draw seed =
    let plan = Plan.create ~rate:0.5 ~seed ~brownout_cycles:1_000_000 () in
    List.init 200 (fun _ -> Plan.draw_brownout plan)
  in
  let a = draw 42 in
  Alcotest.(check (list (pair int int))) "same seed, same severities" a (draw 42);
  check_bool "different seed, different severities" true (a <> draw 43);
  List.iter
    (fun (slow_x1000, dur) ->
      check_bool "slowdown in [2x,4x]" true
        (slow_x1000 >= 2_000 && slow_x1000 <= 4_000);
      check_bool "duration in [half, 1.5x]" true
        (dur >= 500_000 && dur <= 1_500_000))
    a

let test_plan_hang_permanence_deterministic () =
  let draw seed =
    let plan = Plan.create ~rate:0.5 ~seed () in
    List.init 400 (fun _ -> Plan.draw_hang_permanent plan)
  in
  let a = draw 42 in
  Alcotest.(check (list bool)) "same seed, same permanence" a (draw 42);
  (* roughly a quarter permanent: sanity, not statistics *)
  let perm = List.length (List.filter Fun.id a) in
  check_bool "some permanent, most clocked" true (perm > 25 && perm < 175)

let test_plan_rejects_bad_rate () =
  List.iter
    (fun rate ->
      match Plan.create ~rate ~seed:1 () with
      | _ -> Alcotest.fail "rate outside [0,1] accepted"
      | exception Invalid_argument _ -> ())
    [ -0.1; 1.5 ]

let test_plan_ambient_scoping () =
  check_bool "default ambient is disabled" false
    (Plan.enabled (Plan.ambient ()));
  let plan = Plan.create ~rate:0.1 ~seed:5 () in
  Plan.with_ambient plan (fun () ->
      check_bool "ambient inside scope" true (Plan.ambient () == plan));
  check_bool "restored after scope" false (Plan.enabled (Plan.ambient ()));
  (try
     Plan.with_ambient plan (fun () -> failwith "boom")
   with Failure _ -> ());
  check_bool "restored after raise" false (Plan.enabled (Plan.ambient ()))

(* ------------------------------------------------------------------ *)
(* Recovery machinery above the plan *)

let test_wasp_relaunch_bounded () =
  let obs = fresh_obs () in
  Obs.with_ambient obs (fun () ->
      (* Every launch dies: the retry loop must give up after its cap
         and still return a served call, just slower. *)
      let plan = Plan.create ~kinds:[ Plan.Virtine_fail ] ~rate:1.0 ~seed:2 () in
      let clean =
        let t = Iw_virtine.Wasp.create Iw_virtine.Wasp.default in
        Iw_virtine.Wasp.call t ~work_us:50.0
      in
      let faulted =
        Plan.with_ambient plan (fun () ->
            let t = Iw_virtine.Wasp.create Iw_virtine.Wasp.default in
            Iw_virtine.Wasp.call t ~work_us:50.0)
      in
      check_bool "retries cost latency" true (faulted > clean);
      check_int "bounded retries" 3
        (Counter.get (Obs.total_counters obs) Counter.Virtine_relaunch))

let test_carat_rollback_preserves_region () =
  let obs = fresh_obs () in
  Obs.with_ambient obs (fun () ->
      let rt = Iw_carat.Runtime.create () in
      let hooks = Iw_carat.Runtime.hooks rt in
      let base =
        Option.get (hooks.Iw_ir.Interp.extern "malloc" [ 64 ])
      in
      let live = Iw_carat.Runtime.live_words rt in
      let plan =
        Plan.create ~kinds:[ Plan.Move_interrupt ] ~rate:1.0 ~seed:6 ()
      in
      Plan.with_ambient plan (fun () ->
          check_bool "interrupted move rolls back" true
            (Iw_carat.Runtime.move_region rt ~base = None));
      check_int "one rollback" 1 (Iw_carat.Runtime.rollbacks rt);
      check_int "no move recorded" 0 (Iw_carat.Runtime.moves rt);
      check_int "region intact" live (Iw_carat.Runtime.live_words rt);
      (* The quarantined destination was freed: a clean retry finds
         room and completes. *)
      check_bool "later move succeeds" true
        (Iw_carat.Runtime.move_region rt ~base <> None);
      check_int "rollback count unchanged" 1 (Iw_carat.Runtime.rollbacks rt))

let () =
  Alcotest.run "faults"
    [
      ( "plan",
        [
          Alcotest.test_case "deterministic per seed" `Quick
            test_plan_deterministic;
          Alcotest.test_case "disabled never fires" `Quick
            test_plan_disabled_never_fires;
          Alcotest.test_case "rate extremes" `Quick test_plan_rate_extremes;
          Alcotest.test_case "unarmed kind inert" `Quick
            test_plan_unarmed_kind_inert;
          Alcotest.test_case "bulk count" `Quick test_plan_bulk_count;
          Alcotest.test_case "kind names roundtrip" `Quick
            test_plan_kind_names_roundtrip;
          Alcotest.test_case "kind listing complete" `Quick
            test_plan_kind_listing_complete;
          Alcotest.test_case "brownout draw bounded" `Quick
            test_plan_brownout_draw_bounded;
          Alcotest.test_case "hang permanence deterministic" `Quick
            test_plan_hang_permanence_deterministic;
          Alcotest.test_case "bad rate rejected" `Quick
            test_plan_rejects_bad_rate;
          Alcotest.test_case "ambient scoping" `Quick test_plan_ambient_scoping;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "wasp relaunch bounded" `Quick
            test_wasp_relaunch_bounded;
          Alcotest.test_case "carat rollback preserves region" `Quick
            test_carat_rollback_preserves_region;
        ] );
    ]
