open Iw_engine
open Iw_hw
open Iw_kernel

type node = { work : int; children : (unit -> node) list }

type bench = { tree_name : string; root : unit -> node }

let fib ?(leaf_work = 400) ?(node_work = 90) n =
  let rec gen n () =
    if n < 2 then { work = leaf_work; children = [] }
    else { work = node_work; children = [ gen (n - 1); gen (n - 2) ] }
  in
  { tree_name = Printf.sprintf "fib-%d" n; root = gen n }

let skewed ?(depth = 4000) ?(fanout = 3) () =
  (* A heavy spine: each spine node hangs [fanout-1] light leaves and
     one deep continuation.  Eager forking would create thousands of
     tiny tasks; heartbeat promotion creates a few big ones. *)
  let leaf () = { work = 150; children = [] } in
  let rec spine d () =
    if d = 0 then { work = 150; children = [] }
    else
      {
        work = 120;
        children = List.init fanout (fun i -> if i = 0 then spine (d - 1) else leaf);
      }
  in
  { tree_name = "skewed-spine"; root = spine depth }

let rec fold_tree f acc node =
  let acc = f acc node in
  List.fold_left (fun acc gen -> fold_tree f acc (gen ())) acc node.children

let total_nodes b = fold_tree (fun acc _ -> acc + 1) 0 (b.root ())
let total_work b = fold_tree (fun acc n -> acc + n.work) 0 (b.root ())

type policy = Promote_oldest | Promote_newest

type config = { workers : int; heartbeat_us : float; policy : policy; seed : int }

type report = {
  bench : string;
  policy : policy;
  workers : int;
  elapsed_cycles : int;
  nodes_run : int;
  promotions : int;
  steals : int;
  overhead_pct : float;
  speedup_vs_serial : float;
}

type frame = unit -> node

type wstate = {
  wid : int;
  latent : frame Deque.t;  (* bottom = newest (depth-first next) *)
  public : frame Deque.t;  (* stealable promoted tasks *)
}

type shared = {
  k : Sched.t;
  ws : wstate array;
  policy : policy;
  mutable outstanding : int;  (* frames not yet fully executed *)
  mutable promotions : int;
  mutable steals : int;
  mutable nodes : int;
  srng : Rng.t;
  mutable finish : int;
}

(* Heartbeat handler: move one latent frame of this worker into its
   public deque.  Unlike range splitting, no owed-cycle surgery is
   needed — latent frames live outside any in-flight consume. *)
let on_heartbeat sh cpu ~preempted =
  if preempted >= 0 then Sched.stash_preempted sh.k cpu preempted;
  let w = sh.ws.(cpu) in
  let frame =
    match sh.policy with
    | Promote_oldest -> Deque.steal_top w.latent
    | Promote_newest -> Deque.pop_bottom w.latent
  in
  match frame with
  | Some f ->
      Deque.push_bottom w.public f;
      sh.promotions <- sh.promotions + 1;
      180 (* promotion cost *)
  | None -> 60 (* heartbeat with nothing to promote *)

let worker_body sh w () =
  let costs = (Sched.platform sh.k).Platform.costs in
  let nworkers = Array.length sh.ws in
  let run_frame f =
    let n = f () in
    sh.nodes <- sh.nodes + 1;
    (* The children become latent parallelism; execution proceeds
       depth-first unless a heartbeat promotes one. *)
    List.iter (fun gen -> Deque.push_bottom w.latent gen) (List.rev n.children);
    sh.outstanding <- sh.outstanding + List.length n.children - 1;
    Coro.consume n.work;
    Api.overhead costs.atomic_rmw
  in
  let rec loop backoff =
    if sh.outstanding > 0 then begin
      match Deque.pop_bottom w.latent with
      | Some f ->
          run_frame f;
          loop 150
      | None -> (
          match Deque.pop_bottom w.public with
          | Some f ->
              Api.overhead 20;
              run_frame f;
              loop 150
          | None ->
              if nworkers = 1 then loop backoff
              else begin
                let victim =
                  let v = Rng.int sh.srng (nworkers - 1) in
                  if v >= w.wid then v + 1 else v
                in
                Api.overhead (costs.atomic_rmw + costs.cache_line_remote);
                match Deque.steal_top sh.ws.(victim).public with
                | Some f ->
                    sh.steals <- sh.steals + 1;
                    run_frame f;
                    loop 150
                | None ->
                    Api.overhead backoff;
                    loop (min (backoff * 2) 30_000)
              end)
    end
  in
  loop 150

let install_driver sh ~period =
  let k = sh.k in
  let plat = Sched.platform k in
  let costs = plat.Platform.costs in
  let nworkers = Array.length sh.ws in
  let others = List.init (nworkers - 1) (fun i -> Sched.cpu k (i + 1)) in
  Lapic.periodic (Sched.lapic k 0) ~period
    ~handler:(fun ~preempted ->
      let c = on_heartbeat sh 0 ~preempted in
      Ipi.broadcast (Sched.sim k) plat ~targets:others
        ~handler:(fun cpu ~preempted -> on_heartbeat sh cpu ~preempted)
        ~after:(fun cpu -> Sched.resched_or_resume k cpu);
      c + costs.ipi_send)
    ~after:(fun () -> Sched.resched_or_resume k 0)
    ()

let run plat (config : config) bench =
  if config.workers < 1 then invalid_arg "Tpal_tree.run: workers < 1";
  let plat = Platform.with_cores plat config.workers in
  let k = Sched.boot ~seed:config.seed ~personality:(Os.nautilus plat) plat in
  let sh =
    {
      k;
      ws =
        Array.init config.workers (fun wid ->
            { wid; latent = Deque.create (); public = Deque.create () });
      policy = config.policy;
      outstanding = 1;
      promotions = 0;
      steals = 0;
      nodes = 0;
      srng = Rng.split (Sim.rng (Sched.sim k));
      finish = 0;
    }
  in
  Deque.push_bottom sh.ws.(0).latent bench.root;
  let period = Platform.cycles_of_us plat config.heartbeat_us in
  let workers =
    Array.map
      (fun w ->
        Sched.spawn k
          ~spec:
            {
              Sched.sp_name = Printf.sprintf "tpal-tree-%d" w.wid;
              sp_cpu = Some w.wid;
              sp_fp = false;
              sp_rt = false;
            }
          (worker_body sh w))
      sh.ws
  in
  install_driver sh ~period;
  ignore
    (Sched.spawn k
       ~spec:
         {
           Sched.sp_name = "tpal-tree-main";
           sp_cpu = Some 0;
           sp_fp = false;
           sp_rt = false;
         }
       (fun () ->
         Array.iter Api.join workers;
         sh.finish <- Api.now ()));
  let serial = total_work bench in
  Sched.run ~horizon:(400 * serial) k;
  if sh.outstanding > 0 then
    failwith
      (Printf.sprintf "tpal_tree: %s did not finish (%d frames left)"
         bench.tree_name sh.outstanding);
  let work = Sched.total_work_cycles k in
  let overhead = Sched.total_overhead_cycles k in
  {
    bench = bench.tree_name;
    policy = config.policy;
    workers = config.workers;
    elapsed_cycles = sh.finish;
    nodes_run = sh.nodes;
    promotions = sh.promotions;
    steals = sh.steals;
    overhead_pct =
      100.0 *. float_of_int overhead /. float_of_int (max 1 (work + overhead));
    speedup_vs_serial = float_of_int serial /. float_of_int (max 1 sh.finish);
  }
