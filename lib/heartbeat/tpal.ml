open Iw_engine
open Iw_hw
open Iw_kernel

type range = { items : int; grain : int }
type bench = { bench_name : string; ranges : range list }

(* Shapes after the TPAL paper's suite: equal total work (~8M cycles
   serial), very different grain structure. *)
let plus_reduce =
  { bench_name = "plus-reduce"; ranges = [ { items = 160_000_000; grain = 4 } ] }

let spmv =
  {
    bench_name = "spmv";
    ranges =
      [
        { items = 8_000_000; grain = 10 };
        { items = 4_000_000; grain = 30 };
        { items = 4_800_000; grain = 60 };
        { items = 3_600_000; grain = 45 };
      ];
  }

let mandelbrot =
  { bench_name = "mandelbrot"; ranges = [ { items = 3_200_000; grain = 200 } ] }

let srad =
  {
    bench_name = "srad";
    ranges =
      [ { items = 8_000_000; grain = 50 }; { items = 4_800_000; grain = 50 } ];
  }

let floyd_warshall =
  {
    bench_name = "floyd-warshall";
    ranges = [ { items = 6_400_000; grain = 100 } ];
  }

let kmeans =
  {
    bench_name = "kmeans";
    ranges =
      [ { items = 25_600_000; grain = 20 }; { items = 6_400_000; grain = 20 } ];
  }

let suite = [ plus_reduce; spmv; mandelbrot; srad; floyd_warshall; kmeans ]

let total_items b = List.fold_left (fun acc r -> acc + r.items) 0 b.ranges

let total_work b =
  List.fold_left (fun acc r -> acc + (r.items * r.grain)) 0 b.ranges

let serial_cycles = total_work

type driver = Nk_ipi | Linux_signal

type config = { workers : int; heartbeat_us : float; driver : driver; seed : int }

type report = {
  bench : string;
  os : string;
  workers : int;
  heartbeat_us : float;
  elapsed_cycles : int;
  work_cycles : int;
  overhead_cycles : int;
  overhead_pct : float;
  promotions : int;
  steals : int;
  deliveries : int;
  target_rate_hz : float;
  achieved_rate_hz : float;
  rate_cv : float;
  speedup_vs_serial : float;
}

(* ------------------------------------------------------------------ *)

type task = { t_items : int; t_grain : int }

type exec = { mutable e_items : int; e_grain : int }

type wstate = {
  wid : int;
  dq : task Deque.t;
  mutable cur : exec option;
  mutable wthread : Sched.thread option;
}

type shared = {
  k : Sched.t;
  ws : wstate array;
  promote_div : int;
  mutable remaining : int;
  mutable promotions : int;
  mutable steals : int;
  mutable deliveries : int;
  gaps : Stats.t;
  last_beat : int array;
  srng : Rng.t;
  mutable finish : int;  (* sim time when the workload completed *)
}

let promotion_check_cost = 60
let promotion_cost = 120

(* Heartbeat arrival on [cpu], in interrupt context.  If the worker is
   mid-range with at least two items left, split off the upper half as
   a stealable task and shrink both the execution record and the
   cycles the scheduler still owes the thread. *)
let on_heartbeat sh cpu ~preempted =
  sh.deliveries <- sh.deliveries + 1;
  let obs = Sched.obs sh.k in
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Heartbeats;
  let now = Sched.now sh.k in
  if sh.last_beat.(cpu) >= 0 then
    Stats.add_int sh.gaps (now - sh.last_beat.(cpu));
  sh.last_beat.(cpu) <- now;
  let cost = ref promotion_check_cost in
  (if preempted >= 0 then begin
     let r = preempted in
     let w = sh.ws.(cpu) in
      let promoted =
        match (w.cur, Sched.current_thread sh.k cpu, w.wthread) with
        | Some e, Some running, Some mine
          when Sched.thread_id running = Sched.thread_id mine ->
            let rem = r / e.e_grain in
            if rem >= sh.promote_div then begin
              let promote = rem / sh.promote_div in
              Deque.push_bottom w.dq { t_items = promote; t_grain = e.e_grain };
              e.e_items <- e.e_items - promote;
              sh.promotions <- sh.promotions + 1;
              Iw_obs.Counter.incr obs.Iw_obs.Obs.counters
                Iw_obs.Counter.Promotions;
              if obs.Iw_obs.Obs.trace.Iw_obs.Trace.enabled then
                Iw_obs.Trace.instant obs.Iw_obs.Obs.trace ~name:"promote"
                  ~cat:"heartbeat" ~cpu ~ts:now ();
              cost := !cost + promotion_cost;
              Sched.stash_preempted sh.k cpu (r - (promote * e.e_grain));
              true
            end
            else false
        | _ -> false
      in
     if not promoted then Sched.stash_preempted sh.k cpu r
   end);
  !cost

let worker_body sh w () =
  let plat = Sched.platform sh.k in
  let costs = plat.Platform.costs in
  let obs = Sched.obs sh.k in
  let nworkers = Array.length sh.ws in
  let execute t =
    let e = { e_items = t.t_items; e_grain = t.t_grain } in
    w.cur <- Some e;
    Coro.consume (t.t_items * t.t_grain);
    w.cur <- None;
    (* Promotions shrank [e]; what remains in it is what we ran. *)
    sh.remaining <- sh.remaining - e.e_items;
    Api.overhead costs.atomic_rmw
  in
  let rec loop backoff =
    if sh.remaining > 0 then begin
      match Deque.pop_bottom w.dq with
      | Some t ->
          Api.overhead 20;
          execute t;
          loop 150
      | None ->
          if nworkers = 1 then loop backoff
          else begin
            let victim =
              let v = Rng.int sh.srng (nworkers - 1) in
              if v >= w.wid then v + 1 else v
            in
            Api.overhead (costs.atomic_rmw + costs.cache_line_remote);
            match Deque.steal_top sh.ws.(victim).dq with
            | Some t ->
                sh.steals <- sh.steals + 1;
                Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Steals;
                (let tr = obs.Iw_obs.Obs.trace in
                 if tr.Iw_obs.Trace.enabled then
                   Iw_obs.Trace.instant tr ~name:"steal" ~cat:"heartbeat"
                     ~cpu:w.wid ~ts:(Sched.now sh.k) ());
                execute t;
                loop 150
            | None ->
                Api.overhead backoff;
                loop (min (backoff * 2) 30_000)
          end
    end
  in
  loop 150

let install_nk_driver sh ~period =
  let k = sh.k in
  let plat = Sched.platform k in
  let costs = plat.Platform.costs in
  let nworkers = Array.length sh.ws in
  let others =
    List.init (nworkers - 1) (fun i -> Sched.cpu k (i + 1))
  in
  (* Under an active fault plan the wire may drop or delay heartbeats;
     switch the broadcast to the acknowledged, resending variant.  The
     quiet-wire path keeps the plain fire-and-forget broadcast, which
     is byte-identical to the historical behavior. *)
  let bcast =
    if Iw_faults.Plan.enabled (Iw_faults.Plan.ambient ()) then
      Reliable_ipi.broadcast ?timeout:None
    else Ipi.broadcast
  in
  Lapic.periodic (Sched.lapic k 0) ~period
    ~handler:(fun ~preempted ->
      (* CPU 0 takes the timer vector, broadcasts one ICR write, and
         handles its own heartbeat. *)
      let c = on_heartbeat sh 0 ~preempted in
      bcast (Sched.sim k) plat ~targets:others
        ~handler:(fun cpu ~preempted -> on_heartbeat sh cpu ~preempted)
        ~after:(fun cpu -> Sched.resched_or_resume k cpu);
      c + costs.ipi_send)
    ~after:(fun () -> Sched.resched_or_resume k 0)
    ()

let install_linux_driver sh ~period =
  Array.map
    (fun w ->
      let t =
        Iw_linuxsim.Itimer.create sh.k ~cpu:w.wid ~period
          ~handler_cost:promotion_cost
          ~handler:(fun ~preempted -> ignore (on_heartbeat sh w.wid ~preempted))
          ()
      in
      Iw_linuxsim.Itimer.start t;
      t)
    sh.ws

(* Watchdog: detects a worker that has gone [watchdog_mult] periods
   without a heartbeat (dropped IPIs the resends also lost, a dead
   timer stream) and falls back to software polling — the promotion
   check is delivered locally, without the broken wire.  Promotion
   still happens, just later; this is the software layer backstopping
   the hardware path, one level above the IPI resend machinery.

   Only installed when a fault plan is active: on a perfect machine
   the checks would all be no-ops, and not arming them keeps the
   fault-free event schedule untouched. *)
let watchdog_mult = 4
let soft_poll_cost = 200

let install_watchdog sh ~period =
  let k = sh.k in
  let s = Sched.sim k in
  let costs = (Sched.platform k).Platform.costs in
  let obs = Sched.obs k in
  Array.iter
    (fun w ->
      let cpu = w.wid in
      let tm = Sim.timer s in
      let rec arm () = Sim.arm_after s tm (watchdog_mult * period) check
      and check () =
        if sh.remaining > 0 then begin
          let now = Sim.now s in
          if now - max 0 sh.last_beat.(cpu) >= watchdog_mult * period then begin
            Iw_obs.Counter.incr obs.Iw_obs.Obs.counters
              Iw_obs.Counter.Watchdog_fire;
            (let tr = obs.Iw_obs.Obs.trace in
             if tr.Iw_obs.Trace.enabled then
               Iw_obs.Trace.instant tr ~name:"watchdog_fire" ~cat:"heartbeat"
                 ~cpu ~ts:now ());
            Cpu.interrupt (Sched.cpu k cpu)
              ~dispatch:costs.Platform.interrupt_dispatch
              ~return_cost:costs.Platform.interrupt_return
              ~handler:(fun ~preempted ->
                on_heartbeat sh cpu ~preempted + soft_poll_cost)
              ~after:(fun () -> Sched.resched_or_resume k cpu)
          end;
          arm ()  (* stops re-arming once the workload drains *)
        end
      in
      arm ())
    sh.ws

let run ?(promote_div = 2) plat (config : config) bench =
  if config.workers < 1 then invalid_arg "Tpal.run: workers < 1";
  let plat = Platform.with_cores plat config.workers in
  let personality =
    match config.driver with
    | Nk_ipi -> Os.nautilus plat
    | Linux_signal -> Os.linux plat
  in
  let k = Sched.boot ~seed:config.seed ~personality plat in
  let sh =
    {
      k;
      ws =
        Array.init config.workers (fun wid ->
            { wid; dq = Deque.create (); cur = None; wthread = None });
      promote_div = max 2 promote_div;
      remaining = total_items bench;
      promotions = 0;
      steals = 0;
      deliveries = 0;
      gaps = Stats.create ();
      last_beat = Array.make config.workers (-1);
      srng = Rng.split (Sim.rng (Sched.sim k));
      finish = 0;
    }
  in
  (* All initial work lands on worker 0; heartbeat promotion and
     stealing spread it. *)
  List.iter
    (fun r -> Deque.push_bottom sh.ws.(0).dq { t_items = r.items; t_grain = r.grain })
    bench.ranges;
  let period = Platform.cycles_of_us plat config.heartbeat_us in
  let workers =
    Array.map
      (fun w ->
        let th =
          Sched.spawn k
            ~spec:
              {
                Sched.sp_name = Printf.sprintf "tpal-%d" w.wid;
                sp_cpu = Some w.wid;
                sp_fp = false;
                sp_rt = false;
              }
            (worker_body sh w)
        in
        w.wthread <- Some th;
        th)
      sh.ws
  in
  let itimers = ref [||] in
  (match config.driver with
  | Nk_ipi -> install_nk_driver sh ~period
  | Linux_signal -> itimers := install_linux_driver sh ~period);
  if Iw_faults.Plan.enabled (Iw_faults.Plan.ambient ()) then
    install_watchdog sh ~period;
  (* A supervisor joins the workers and dismantles the drivers. *)
  ignore
    (Sched.spawn k
       ~spec:
         { Sched.sp_name = "tpal-main"; sp_cpu = Some 0; sp_fp = false; sp_rt = false }
       (fun () ->
         Array.iter Api.join workers;
         sh.finish <- Api.now ();
         Array.iter Iw_linuxsim.Itimer.stop !itimers));
  Sched.run ~horizon:(200 * serial_cycles bench) k;
  if sh.remaining > 0 then
    failwith
      (Printf.sprintf "tpal: %s did not finish (%d items left)"
         bench.bench_name sh.remaining);
  let elapsed = sh.finish in
  let work = Sched.total_work_cycles k in
  let overhead = Sched.total_overhead_cycles k in
  let ghz = plat.Platform.ghz in
  let seconds = float_of_int elapsed /. (ghz *. 1e9) in
  {
    bench = bench.bench_name;
    os = personality.Os.os_name;
    workers = config.workers;
    heartbeat_us = config.heartbeat_us;
    elapsed_cycles = elapsed;
    work_cycles = work;
    overhead_cycles = overhead;
    overhead_pct =
      100.0 *. float_of_int overhead /. float_of_int (max 1 (work + overhead));
    promotions = sh.promotions;
    steals = sh.steals;
    deliveries = sh.deliveries;
    target_rate_hz = 1e6 /. config.heartbeat_us;
    achieved_rate_hz =
      float_of_int sh.deliveries /. float_of_int config.workers /. seconds;
    rate_cv = Stats.coefficient_of_variation sh.gaps;
    speedup_vs_serial =
      float_of_int (serial_cycles bench) /. float_of_int elapsed;
  }
