(** Workload generators for the service plane.

    Open-loop arrivals (Poisson, bursty MMPP-style on/off) are
    produced by a {!gen} pulled by the load-generator thread;
    closed-loop specs describe client threads that the plane spawns
    itself.  Every stochastic draw comes from the one [Rng.t] handed
    to {!gen}, so an arrival sequence is byte-reproducible from the
    seed and insensitive to draws made anywhere else in the stack. *)

type spec =
  | Poisson of { rps : float; duration_us : float }
      (** Open loop, exponential inter-arrivals at [rps]. *)
  | Bursty of {
      rps_on : float;
      rps_off : float;
      mean_on_us : float;
      mean_off_us : float;
      duration_us : float;
    }
      (** Open loop, Markov-modulated Poisson: alternating on/off
          phases with exponential dwell times and per-phase rates. *)
  | Closed of { clients : int; think_us : float; duration_us : float }
      (** Closed loop: [clients] threads each cycle through
          exponential think time, submit, wait for the reply. *)

val duration_us : spec -> float

val offered_rps : spec -> float
(** Long-run offered arrival rate (for [Closed], the think-time-bound
    upper bound). *)

val is_open : spec -> bool
val describe : spec -> string

type demand =
  | Dfixed  (** Every request costs the executor's configured grant. *)
  | Dpareto of { alpha : float; xmin_us : float; xmax_us : float }
      (** Bounded Pareto per-request cost (heavy tail). *)
  | Dlognorm of { median_us : float; sigma : float }
      (** Lognormal per-request cost. *)

val validate_demand : demand -> unit
(** @raise Invalid_argument on non-sensical parameters. *)

val describe_demand : demand -> string

val demand_us : demand -> seed:int -> id:int -> float
(** Per-request service demand in microseconds, or [-1.0] under
    [Dfixed].  A pure stateless hash of [(seed, id)]: its own logical
    RNG stream, independent of every arrival/dispatch draw, stable
    across retries of the same request id, allocation-free. *)

type gen

val gen : spec -> rng:Iw_engine.Rng.t -> gen
(** @raise Invalid_argument on non-positive rates/phase means or when
    pulled on a [Closed] spec. *)

val next : gen -> float option
(** Next absolute arrival time in microseconds, strictly increasing;
    [None] once past the spec's duration. *)

val next_into : gen -> bool
(** Advance to the next arrival without returning it: [false] once
    past the duration.  Identical draws to {!next}, nothing boxed;
    read the arrival back with {!next_cycles}-style accessors. *)

val set_ghz : gen -> float -> unit
(** Set the clock rate used by {!next_cycles}.
    @raise Invalid_argument on a non-positive rate. *)

val next_cycles : gen -> int
(** The next arrival as an absolute cycle count at the {!set_ghz}
    clock ([Units.cycles_of_us] semantics), or [-1] once past the
    duration.  Same draws as {!next}; allocation-free.
    @raise Invalid_argument if the rate was never set. *)
