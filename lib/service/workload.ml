open Iw_engine

type spec =
  | Poisson of { rps : float; duration_us : float }
  | Bursty of {
      rps_on : float;
      rps_off : float;
      mean_on_us : float;
      mean_off_us : float;
      duration_us : float;
    }
  | Closed of { clients : int; think_us : float; duration_us : float }

let duration_us = function
  | Poisson { duration_us; _ } | Bursty { duration_us; _ } | Closed { duration_us; _ }
    ->
      duration_us

let offered_rps = function
  | Poisson { rps; _ } -> rps
  | Bursty { rps_on; rps_off; mean_on_us; mean_off_us; _ } ->
      ((rps_on *. mean_on_us) +. (rps_off *. mean_off_us))
      /. (mean_on_us +. mean_off_us)
  | Closed { clients; think_us; _ } ->
      (* Upper bound: every client submitting as fast as its think time
         allows; actual rate also depends on service latency. *)
      float_of_int clients *. 1e6 /. think_us

let is_open = function Poisson _ | Bursty _ -> true | Closed _ -> false

let describe = function
  | Poisson { rps; _ } -> Printf.sprintf "poisson %.0f rps" rps
  | Bursty { rps_on; rps_off; _ } ->
      Printf.sprintf "bursty %.0f/%.0f rps" rps_on rps_off
  | Closed { clients; think_us; _ } ->
      Printf.sprintf "closed %d clients, think %.0f us" clients think_us

type gen = {
  g_spec : spec;
  g_rng : Rng.t;
  mutable g_t : float;  (** Clock of the last arrival (us). *)
  mutable g_on : bool;
  mutable g_state_end : float;  (** When the current MMPP phase flips. *)
}

let gen spec ~rng =
  (match spec with
  | Poisson { rps; _ } when rps <= 0.0 ->
      invalid_arg "Workload.gen: Poisson rate must be positive"
  | Bursty { rps_on; rps_off; mean_on_us; mean_off_us; _ } ->
      if rps_on < 0.0 || rps_off < 0.0 then
        invalid_arg "Workload.gen: bursty rates must be non-negative";
      if mean_on_us <= 0.0 || mean_off_us <= 0.0 then
        invalid_arg "Workload.gen: bursty phase means must be positive"
  | _ -> ());
  let g = { g_spec = spec; g_rng = rng; g_t = 0.0; g_on = true; g_state_end = 0.0 } in
  (match spec with
  | Bursty { mean_on_us; _ } -> g.g_state_end <- Rng.exponential rng ~mean:mean_on_us
  | _ -> ());
  g

let flip g =
  match g.g_spec with
  | Bursty { mean_on_us; mean_off_us; _ } ->
      g.g_on <- not g.g_on;
      let mean = if g.g_on then mean_on_us else mean_off_us in
      g.g_state_end <- g.g_t +. Rng.exponential g.g_rng ~mean
  | _ -> assert false

let next g =
  match g.g_spec with
  | Closed _ -> invalid_arg "Workload.next: closed-loop spec has no open-loop arrivals"
  | Poisson { rps; duration_us } ->
      let t = g.g_t +. Rng.exponential g.g_rng ~mean:(1e6 /. rps) in
      if t > duration_us then None
      else begin
        g.g_t <- t;
        Some t
      end
  | Bursty { rps_on; rps_off; duration_us; _ } ->
      let rec step () =
        if g.g_t > duration_us then None
        else begin
          let rate = if g.g_on then rps_on else rps_off in
          if rate <= 0.0 then begin
            (* Silent phase: jump to its end and flip. *)
            g.g_t <- g.g_state_end;
            flip g;
            step ()
          end
          else begin
            let t = g.g_t +. Rng.exponential g.g_rng ~mean:(1e6 /. rate) in
            if t > g.g_state_end then begin
              g.g_t <- g.g_state_end;
              flip g;
              step ()
            end
            else if t > duration_us then None
            else begin
              g.g_t <- t;
              Some t
            end
          end
        end
      in
      step ()
