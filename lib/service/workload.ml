open Iw_engine

type spec =
  | Poisson of { rps : float; duration_us : float }
  | Bursty of {
      rps_on : float;
      rps_off : float;
      mean_on_us : float;
      mean_off_us : float;
      duration_us : float;
    }
  | Closed of { clients : int; think_us : float; duration_us : float }

let duration_us = function
  | Poisson { duration_us; _ } | Bursty { duration_us; _ } | Closed { duration_us; _ }
    ->
      duration_us

let offered_rps = function
  | Poisson { rps; _ } -> rps
  | Bursty { rps_on; rps_off; mean_on_us; mean_off_us; _ } ->
      ((rps_on *. mean_on_us) +. (rps_off *. mean_off_us))
      /. (mean_on_us +. mean_off_us)
  | Closed { clients; think_us; _ } ->
      (* Upper bound: every client submitting as fast as its think time
         allows; actual rate also depends on service latency. *)
      float_of_int clients *. 1e6 /. think_us

let is_open = function Poisson _ | Bursty _ -> true | Closed _ -> false

(* ------------------------------------------------------------------ *)
(* Per-request service demand.

   [Dfixed] is the historical behavior: every request costs the
   executor's configured work grant.  The heavy-tailed specs draw a
   per-request cost from a bounded Pareto or a lognormal — the shapes
   real serving traces have — keyed by a *stateless hash* of
   (stream seed, request id) rather than a shared mutable stream.
   That gives the draw its own logical RNG stream for free: it is
   independent of every arrival/dispatch/think draw, stable when
   requests are retried or hedged (same id, same cost), and identical
   whether machines run serially or on parallel domains. *)

type demand =
  | Dfixed
  | Dpareto of { alpha : float; xmin_us : float; xmax_us : float }
  | Dlognorm of { median_us : float; sigma : float }

let validate_demand = function
  | Dfixed -> ()
  | Dpareto { alpha; xmin_us; xmax_us } ->
      if alpha <= 0.0 then invalid_arg "Workload: Pareto alpha must be positive";
      if xmin_us <= 0.0 || xmax_us <= xmin_us then
        invalid_arg "Workload: Pareto needs 0 < xmin < xmax"
  | Dlognorm { median_us; sigma } ->
      if median_us <= 0.0 then
        invalid_arg "Workload: lognormal median must be positive";
      if sigma < 0.0 then invalid_arg "Workload: lognormal sigma must be >= 0"

let describe_demand = function
  | Dfixed -> "fixed"
  | Dpareto { alpha; xmin_us; xmax_us } ->
      Printf.sprintf "pareto a=%.2f [%.0f,%.0f]us" alpha xmin_us xmax_us
  | Dlognorm { median_us; sigma } ->
      Printf.sprintf "lognorm med=%.0fus s=%.2f" median_us sigma

(* Two rounds of a 63-bit splitmix-style finalizer; native-int
   multiplies wrap mod 2^63, deterministically, with no boxing.  The
   constants fit OCaml's 63-bit literals. *)
let[@inline] mix63 z =
  let z = (z lxor (z lsr 33)) * 0x3C79AC492BA7B653 in
  let z = (z lxor (z lsr 29)) * 0x1C69B3F74AC4AE35 in
  (z lxor (z lsr 32)) land max_int

(* Uniform in (0,1): the +0.5 offset keeps the draw away from both
   endpoints, so log/pow below never see 0. *)
let[@inline] u01 h =
  (float_of_int (h land ((1 lsl 53) - 1)) +. 0.5) /. 9007199254740992.0

let demand_us dspec ~seed ~id =
  match dspec with
  | Dfixed -> -1.0
  | Dpareto { alpha; xmin_us; xmax_us } ->
      let h = mix63 (seed lxor (id * 0x9E3779B9)) in
      let u = u01 h in
      (* Bounded-Pareto inverse CDF. *)
      let r = (xmin_us /. xmax_us) ** alpha in
      xmin_us /. ((1.0 -. (u *. (1.0 -. r))) ** (1.0 /. alpha))
  | Dlognorm { median_us; sigma } ->
      let h1 = mix63 (seed lxor (id * 0x9E3779B9)) in
      let h2 = mix63 h1 in
      let u1 = u01 h1 and u2 = u01 h2 in
      (* Box-Muller. *)
      let z = sqrt (-2.0 *. log u1) *. cos (6.283185307179586 *. u2) in
      median_us *. exp (sigma *. z)

let describe = function
  | Poisson { rps; _ } -> Printf.sprintf "poisson %.0f rps" rps
  | Bursty { rps_on; rps_off; _ } ->
      Printf.sprintf "bursty %.0f/%.0f rps" rps_on rps_off
  | Closed { clients; think_us; _ } ->
      Printf.sprintf "closed %d clients, think %.0f us" clients think_us

(* All float state lives in one flat float array: reads and writes of
   float-array elements are unboxed in OCaml, while a mutable float
   field of this (mixed) record would allocate a box on every write.
   Pulling an arrival touches only [g_f], the rng, and [g_on], so the
   generator contributes nothing to the minor heap at steady state. *)
let s_t = 0 (* clock of the last arrival (us) *)

let s_out = 1 (* last arrival produced (us) *)
let s_end = 2 (* when the current MMPP phase flips (us) *)
let s_dur = 3
let s_mean_on = 4 (* inter-arrival mean, on phase; <= 0 = silent *)
let s_mean_off = 5 (* inter-arrival mean, off phase; <= 0 = silent *)
let s_dwell_on = 6 (* phase-dwell means *)
let s_dwell_off = 7
let s_ghz = 8 (* clock rate for [next_cycles]; 0 = unset *)
let s_scratch = 9
let slots = 10

type gen = { g_spec : spec; g_rng : Rng.t; g_f : float array; mutable g_on : bool }

(* [Rng.exponential] with the mean read from, and the deviate written
   to, slots of [f]: same draws, same float results, but no float
   crosses a function boundary (which would box it in non-flambda
   builds). *)
let rec exp_into rng (f : float array) ~mean ~dst =
  let u = float_of_int (Rng.raw53 rng) /. 9007199254740992.0 in
  if u <= 1e-12 then exp_into rng f ~mean ~dst
  else f.(dst) <- -.f.(mean) *. log u

let gen spec ~rng =
  (match spec with
  | Poisson { rps; _ } when rps <= 0.0 ->
      invalid_arg "Workload.gen: Poisson rate must be positive"
  | Bursty { rps_on; rps_off; mean_on_us; mean_off_us; _ } ->
      if rps_on < 0.0 || rps_off < 0.0 then
        invalid_arg "Workload.gen: bursty rates must be non-negative";
      if mean_on_us <= 0.0 || mean_off_us <= 0.0 then
        invalid_arg "Workload.gen: bursty phase means must be positive"
  | _ -> ());
  let f = Array.make slots 0.0 in
  f.(s_dur) <- duration_us spec;
  (match spec with
  | Poisson { rps; _ } -> f.(s_mean_on) <- 1e6 /. rps
  | Bursty { rps_on; rps_off; mean_on_us; mean_off_us; _ } ->
      f.(s_mean_on) <- (if rps_on > 0.0 then 1e6 /. rps_on else -1.0);
      f.(s_mean_off) <- (if rps_off > 0.0 then 1e6 /. rps_off else -1.0);
      f.(s_dwell_on) <- mean_on_us;
      f.(s_dwell_off) <- mean_off_us
  | Closed _ -> ());
  let g = { g_spec = spec; g_rng = rng; g_f = f; g_on = true } in
  (match spec with
  | Bursty _ ->
      exp_into rng f ~mean:s_dwell_on ~dst:s_scratch;
      f.(s_end) <- f.(s_scratch)
  | _ -> ());
  g

let flip g =
  let f = g.g_f in
  g.g_on <- not g.g_on;
  exp_into g.g_rng f
    ~mean:(if g.g_on then s_dwell_on else s_dwell_off)
    ~dst:s_scratch;
  f.(s_end) <- f.(s_t) +. f.(s_scratch)

let rec bursty_next g =
  let f = g.g_f in
  if f.(s_t) > f.(s_dur) then false
  else begin
    let mslot = if g.g_on then s_mean_on else s_mean_off in
    if f.(mslot) <= 0.0 then begin
      (* Silent phase: jump to its end and flip. *)
      f.(s_t) <- f.(s_end);
      flip g;
      bursty_next g
    end
    else begin
      exp_into g.g_rng f ~mean:mslot ~dst:s_scratch;
      let t = f.(s_t) +. f.(s_scratch) in
      if t > f.(s_end) then begin
        f.(s_t) <- f.(s_end);
        flip g;
        bursty_next g
      end
      else if t > f.(s_dur) then false
      else begin
        f.(s_t) <- t;
        f.(s_out) <- t;
        true
      end
    end
  end

let next_into g =
  match g.g_spec with
  | Closed _ -> invalid_arg "Workload.next: closed-loop spec has no open-loop arrivals"
  | Poisson _ ->
      let f = g.g_f in
      exp_into g.g_rng f ~mean:s_mean_on ~dst:s_scratch;
      let t = f.(s_t) +. f.(s_scratch) in
      if t > f.(s_dur) then false
      else begin
        f.(s_t) <- t;
        f.(s_out) <- t;
        true
      end
  | Bursty _ -> bursty_next g

let next g = if next_into g then Some g.g_f.(s_out) else None

let set_ghz g ghz =
  if ghz <= 0.0 then invalid_arg "Workload.set_ghz: rate must be positive";
  g.g_f.(s_ghz) <- ghz

(* Units.cycles_of_us inlined over the slot array (the [Units] call
   would box the microsecond argument). *)
let next_cycles g =
  if not (next_into g) then -1
  else begin
    let f = g.g_f in
    if f.(s_ghz) <= 0.0 then invalid_arg "Workload.next_cycles: call set_ghz first";
    int_of_float (Float.round (f.(s_out) *. 1e3 *. f.(s_ghz)))
  end
