(** Fleet serving: N simulated machines behind a load-balancing front
    tier, connected by the {!Net} link model.

    Each machine is a full {!Exec} stack (own kernel, OS personality,
    platform costs, queues, workers) normalized onto one fleet clock;
    heterogeneity comes from the personality, the cost tables, the
    worker count, and a per-machine body-speed multiplier.  The front
    tier turns {!Workload} arrivals into requests, picks a machine by
    a {!Dispatch} policy over *gossiped* queue depths (the signal
    itself travels over the modeled network, so queue-aware policies
    act on stale information), and recovers from network faults with
    timeout-driven retries and streak-based ejection.

    {b Determinism.}  Machines advance in conservative time windows
    of W = one link latency: no message sent inside a window can be
    delivered in the same window, so each machine's event stream is
    independent of the others' progress within a window.  At the
    barrier the coordinator routes every outbox message in canonical
    order (send time, source node, submission order) and schedules
    deliveries into the next window.  Running machines on one domain
    or N domains therefore produces byte-identical results; fault
    draws happen only at barriers, on the coordinator.  See DESIGN §9. *)

type mspec = {
  ms_name : string;  (** per-machine identity in tables and spans *)
  ms_os : Plane.os;
  ms_plat : Iw_hw.Platform.t;  (** clock is overridden to the fleet's *)
  ms_workers : int;
  ms_speed : float;  (** request-body speedup vs the fleet baseline *)
}

val knl_spec : ?workers:int -> unit -> mspec
(** KNL-like box: Nautilus personality, 8 workers, speed 1.0. *)

val server_spec : ?workers:int -> unit -> mspec
(** Server-like box: Linux personality on [server_2x12] costs,
    4 workers, speed 2.5 (faster cores, fewer of them). *)

type config = {
  fc_machines : mspec array;
  fc_workload : Workload.spec;  (** open-loop only *)
  fc_policy : Dispatch.policy;  (** balancer, across machines *)
  fc_local_policy : Dispatch.policy;  (** within each machine *)
  fc_order : Squeue.order;
  fc_queue_cap : int;
  fc_backend : Exec.backend;
  fc_work_us : float;
  fc_hi_frac : float;
  fc_net : Net.config;
  fc_gossip_us : float;  (** queue-depth gossip period; 0 disables *)
  fc_rto_us : float;  (** front-side retry timeout per attempt *)
  fc_max_retries : int;
  fc_eject_streak : int;  (** consecutive timeouts before ejection *)
  fc_eject_us : float;  (** how long an ejected machine sits out *)
  fc_sample_us : float;
      (** Telemetry sampling period (virtual us).  0 falls back to the
          ambient {!Iw_obs.Series.period_us}; both 0 disables the
          fleet series entirely. *)
  fc_slo_us : float;  (** end-to-end latency SLO; 0 disables accounting *)
  fc_slo_target : float;
      (** Good-fraction target for burn-rate columns (e.g. 0.999). *)
  fc_watchdog : bool;
      (** Arm per-machine hang watchdogs (peer stealing) when the
          ambient fault plan arms [worker-hang].  Default [true]; the
          R5 experiment toggles it off to expose the raw damage. *)
  fc_corrupt_retry : bool;
      (** Re-execute responses the fault plan marks corrupt (counted
          [corrupt_retry], bounded by [fc_max_retries]).  With it off
          a corrupt response completes but can never be SLO-good. *)
  fc_bw_wjsq : bool;
      (** Brownout-aware balancing: weight the front-tier wjsq pick
          by a leaky integrator of each machine's observed completions
          per window instead of its nominal [workers x speed]. *)
  fc_hedge_frac : float;
      (** Hedge still-outstanding requests onto a second machine after
          this fraction of [fc_deadline_us]; first response wins, the
          loser is counted [hedge_cancel].  0 (default) disables. *)
  fc_hedge_budget : float;
      (** Global hedge budget as a fraction of arrivals so far. *)
  fc_admit : bool;
      (** SLO-aware admission control: shed an arrival (counted
          [admission_shed], an SLO miss) when even the least-loaded
          live machine's predicted wait — gossiped depth x EWMA
          sojourn / workers — exceeds the deadline. *)
  fc_deadline_us : float;
      (** Per-request deadline driving hedging and admission; 0
          disables both regardless of their own knobs. *)
  fc_demand : Workload.demand;
      (** Per-request service cost distribution, drawn from a
          stateless hash of the front-tier request id so retries and
          hedges of one request cost the same on every machine. *)
  fc_nic : bool;
      (** Deliver front->machine traffic through each machine's
          simulated {!Iw_hw.Nic} (RX descriptor ring + driver in
          [fc_nic_mode]) and responses through its TX ring, instead of
          the direct PR 7 path.  Default [false]: the device does not
          exist and every schedule is byte-identical to before. *)
  fc_nic_mode : Iw_kernel.Nic_driver.mode;
      (** irq, poll, or hybrid (default) *)
  fc_itr_us : float;
      (** ITR interrupt-moderation gap in virtual us; 0 = unmoderated. *)
  fc_nic_ring : int;  (** RX/TX descriptor count (power of two) *)
  fc_nic_budget : int;  (** frames per IRQ burst / poll check *)
  fc_nic_poll_us : float;  (** poll-engine period in virtual us *)
  fc_seed : int;
}

val default : unit -> config
(** Two KNL-like machines, Poisson 100k rps for 50 ms, po2 balancer,
    po2 local dispatch, 20 us bodies, {!Net.default}, 50 us gossip,
    4 ms RTO, 3 retries, eject after 3 strikes for 2 ms. *)

type report = {
  fr_machines : int;
  fr_policy : string;
  fr_local_policy : string;
  fr_backend : string;
  fr_workload : string;
  fr_offered_rps : float;
  fr_duration_us : float;
  fr_ghz : float;
  fr_window_cycles : int;  (** W, the conservative sync window *)
  fr_windows : int;
  fr_arrivals : int;
  fr_completed : int;
  fr_failed : int;  (** retries exhausted *)
  fr_retries : int;
  fr_nacks : int;  (** machine drop-tail refusals, retried *)
  fr_net_msgs : int;
  fr_net_drops : int;
  fr_gossip_msgs : int;
  fr_ejects : int;
  fr_elapsed_cycles : int;
  fr_throughput_rps : float;
  fr_utilization : float;  (** busy cycles over fleet worker-cycles *)
  fr_total : Hist.t;  (** end-to-end: arrival to front-side response *)
  fr_queue : Hist.t;  (** machine-local queue wait, merged *)
  fr_service : Hist.t;  (** machine-local service time, merged *)
  fr_m_names : string array;
  fr_m_completed : int array;
  fr_m_busy : int array;
  fr_m_counters : (string * int) list array;
      (** per-machine nonzero counter totals, for
          {!Interweave.Machine.Fleet.counter_table}-style views *)
  fr_slo_good : int;
      (** Responses within [fc_slo_us] (0 when accounting is off). *)
  fr_slo_total : int;
      (** SLO-eligible outcomes: responses, exhausted-retry failures,
          and admission sheds.  good/total is the achieved success
          fraction. *)
  fr_hedges : int;  (** hedge copies sent *)
  fr_hedge_wins : int;  (** requests whose hedge copy answered first *)
  fr_hedge_cancels : int;  (** losing copies that came home late *)
  fr_admission_shed : int;  (** arrivals shed at the door *)
  fr_corrupt_retries : int;  (** corrupt responses re-executed *)
  fr_steals : int;  (** requests watchdogs moved off hung workers *)
  fr_brownouts : int;  (** brownout episodes injected *)
  fr_nic_rx : int;  (** frames landed in RX rings (fleet total) *)
  fr_nic_drops : int;  (** frames lost at the device: faults + overruns *)
  fr_nic_irqs : int;  (** RX interrupts delivered *)
  fr_nic_polls : int;  (** poll-engine checks *)
  fr_nic_empty_polls : int;  (** checks that found no frames *)
  fr_nic_wasted_cycles : int;  (** power proxy: cycles burned by empty checks *)
  fr_nic_switches : int;  (** hybrid IRQ->poll transitions *)
  fr_nic_recovers : int;  (** lost interrupts re-injected by the driver *)
  fr_nic_tx : int;  (** responses drained through TX rings *)
  fr_series : Iw_obs.Series.t option;
      (** Fleet timeline, sampled at conservative-window barriers on
          the coordinator every [fc_sample_us] of virtual time:
          arrival/completion/failure/retry/network deltas, SLO window
          counts with burn rate, windowed e2e p50/p99 (cycles), and
          per-machine depth gauges and completion deltas.  Identical
          for serial and parallel runs (DESIGN §10).  Also
          {!Iw_obs.Series.publish}ed for trace exporters. *)
}

val run : ?parallel:bool -> config -> report
(** [parallel] defaults to one-domain-per-machine when called from
    the main domain with tracing off, and serial otherwise (nested
    experiment drivers, traced runs).  Both modes are byte-identical.
    @raise Invalid_argument on a closed-loop workload or an empty
    machine array. *)

val us_of_cycles : report -> int -> float
val percentile_us : report -> Hist.t -> float -> float
