(** In-flight requests as indices into preallocated flat arrays.

    A request is an [int] handle into parallel arrays (arrival cycle,
    priority bit, reply slot) recycled through a free list: {!alloc}
    and {!free} are O(1) and allocation-free once the arena has grown
    to the in-flight high-water mark (growth doubles capacity).

    Invariants: every slot is live xor on the free list;
    [live + free_count = capacity]; {!free} on a non-live slot
    raises.  A recycled slot's fields are fully overwritten by the
    {!alloc} that hands it out again. *)

type t

val create : cap:int -> t
(** @raise Invalid_argument when [cap < 1]. *)

val alloc :
  t -> demand:int -> intended:int -> arrival:int -> hi:bool -> reply:int -> int
(** Claim a slot ([reply = -1] for no reply; [demand = -1] means the
    executor's default work grant; [intended = -1] means no intended
    send time was recorded).  The per-request fields are required
    labeled ints, not optionals, so the hot path never boxes a
    [Some].  Grows (doubling) when the arena is full. *)

val free : t -> int -> unit
(** Recycle a slot.  @raise Invalid_argument when it is not live. *)

val arrival : t -> int -> int
val is_hi : t -> int -> bool
val reply : t -> int -> int

val demand : t -> int -> int
(** Per-request work grant in cycles, or -1 for the default. *)

val intended : t -> int -> int
(** Intended (open-loop) send cycle for coordinated-omission
    correction, or -1 when not recorded. *)

val is_live : t -> int -> bool
val capacity : t -> int
val live : t -> int
val free_count : t -> int

val allocs : t -> int
(** Total slots ever handed out (monotone). *)

val grows : t -> int
(** Times the arena doubled. *)

val free_list_length : t -> int
(** Walks the list — for tests, not hot paths. *)
