open Iw_engine
open Iw_kernel

type os = Nk | Linux

let os_name = function Nk -> "nk" | Linux -> "linux"
let os_of_string = function "nk" -> Some Nk | "linux" -> Some Linux | _ -> None

type backend =
  | Fiber_exec
  | Virtine_exec of { vconfig : Iw_virtine.Wasp.config; pool : int }

let backend_name = function Fiber_exec -> "fiber" | Virtine_exec _ -> "virtine"

type config = {
  os : os;
  plat : Iw_hw.Platform.t;
  workers : int;
  workload : Workload.spec;
  policy : Dispatch.policy;
  order : Squeue.order;
  queue_cap : int;
  backend : backend;
  work_us : float;
  hi_frac : float;
  seed : int;
}

let default ~plat =
  {
    os = Nk;
    plat;
    workers = 8;
    workload = Workload.Poisson { rps = 20_000.0; duration_us = 100_000.0 };
    policy = Dispatch.Po2;
    order = Squeue.Fifo;
    queue_cap = 64;
    backend = Fiber_exec;
    work_us = 150.0;
    hi_frac = 0.0;
    seed = 42;
  }

type request = {
  req_arrival : int;  (** Cycle of submission. *)
  req_hi : bool;
  req_reply : Sched.semaphore option;  (** Closed-loop completion signal. *)
}

type report = {
  rep_os : string;
  rep_backend : string;
  rep_policy : string;
  rep_order : string;
  rep_workload : string;
  rep_offered_rps : float;
  rep_duration_us : float;
  rep_ghz : float;
  rep_arrivals : int;
  rep_admitted : int;
  rep_completed : int;
  rep_shed : int;
  rep_backpressure : int;
  rep_elapsed_cycles : int;
  rep_busy_cycles : int;
  rep_throughput_rps : float;
  rep_utilization : float;
  rep_pool_hits : int;
  rep_spawns : int;
  rep_queue : Hist.t;
  rep_service : Hist.t;
  rep_total : Hist.t;
}

let us_of_cycles rep c = float_of_int c /. (rep.rep_ghz *. 1e3)
let percentile_us rep h p = us_of_cycles rep (Hist.percentile h p)
let mean_us rep h = Hist.mean h /. (rep.rep_ghz *. 1e3)

(* Dedicated stream roots: the plane's draws must not perturb (or be
   perturbed by) kernel-side draws from the boot seed. *)
let rng_salt = 0x5E21CE

let run cfg =
  if cfg.workers < 1 then invalid_arg "Plane.run: need at least one worker";
  (match cfg.workload with
  | Workload.Closed { clients; _ } when clients < 1 ->
      invalid_arg "Plane.run: closed-loop workload needs at least one client"
  | _ -> ());
  (* Workers on CPUs 0..workers-1, load generation on a dedicated
     frontend CPU so client-side costs never steal worker cycles. *)
  let ncpus = cfg.workers + 1 in
  let plat = Iw_hw.Platform.with_cores cfg.plat ncpus in
  let frontend = cfg.workers in
  let personality =
    match cfg.os with Nk -> Os.nautilus plat | Linux -> Os.linux plat
  in
  let k = Sched.boot ~seed:cfg.seed ~personality plat in
  let obs = Sched.obs k in
  let ctr = obs.Iw_obs.Obs.counters in
  let tr = obs.Iw_obs.Obs.trace in
  let costs = plat.Iw_hw.Platform.costs in
  let cyc us = Iw_hw.Platform.cycles_of_us plat us in
  let duration_c = cyc (Workload.duration_us cfg.workload) in

  let base = Rng.create ~seed:(cfg.seed lxor rng_salt) in
  let arrival_rng = Rng.split base in
  let dispatch_rng = Rng.split base in
  let prio_rng = Rng.split base in
  let think_rng = Rng.split base in

  let queues =
    Array.init cfg.workers (fun _ -> Squeue.create ~order:cfg.order ~cap:cfg.queue_cap)
  in
  let doorbells = Array.init cfg.workers (fun _ -> Sched.semaphore ~init:0) in
  let disp = Dispatch.create cfg.policy ~rng:dispatch_rng in

  let h_queue = Array.init cfg.workers (fun _ -> Hist.create ()) in
  let h_service = Array.init cfg.workers (fun _ -> Hist.create ()) in
  let h_total = Array.init cfg.workers (fun _ -> Hist.create ()) in

  let arrivals = ref 0 and admitted = ref 0 and completed = ref 0 in
  let shed = ref 0 and backpressure = ref 0 in
  let busy = ref 0 in
  let gen_done = ref false and stopping = ref false in

  let wasp =
    match cfg.backend with
    | Virtine_exec { vconfig; pool } ->
        Some (Iw_virtine.Wasp.create ~obs ~seed:(cfg.seed + 17) ~pool_size:pool vconfig)
    | Fiber_exec -> None
  in

  let initiate_stop () =
    if not !stopping then begin
      stopping := true;
      Array.iter (fun d -> Api.sem_post d) doorbells
    end
  in
  let maybe_finish () =
    if !gen_done && !completed = !admitted then initiate_stop ()
  in

  (* Submission path, on the frontend CPU: pick a queue, push, ring the
     worker's doorbell.  Returns false on drop-tail refusal. *)
  let submit ~reply =
    incr arrivals;
    Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_arrivals;
    Api.overhead (costs.Iw_hw.Platform.atomic_rmw + costs.Iw_hw.Platform.cache_line_remote);
    let hi = cfg.hi_frac > 0.0 && Rng.float prio_rng 1.0 < cfg.hi_frac in
    let qi = Dispatch.pick disp ~n:cfg.workers ~len:(fun i -> Squeue.length queues.(i)) in
    let req = { req_arrival = Api.now (); req_hi = hi; req_reply = reply } in
    if Squeue.try_push queues.(qi) ~hi req then begin
      incr admitted;
      Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_admitted;
      if hi then Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_hi_prio;
      Api.sem_post doorbells.(qi);
      true
    end
    else false
  in

  (* Request execution on worker [w]: route the body through the fiber
     or virtine layer so their costs (and the OS personality's noise)
     land on the latency distribution. *)
  let exec w fs req =
    let start = Api.now () in
    Hist.record h_queue.(w) (start - req.req_arrival);
    (match cfg.backend with
    | Fiber_exec ->
        let body = cyc cfg.work_us in
        let fs = match fs with Some fs -> fs | None -> assert false in
        ignore (Fiber.spawn fs (fun () -> Iw_engine.Coro.consume body));
        Fiber.run fs
    | Virtine_exec _ ->
        let w_ = match wasp with Some w_ -> w_ | None -> assert false in
        let now_us = Iw_hw.Platform.us_of_cycles plat start in
        let lat_us = Iw_virtine.Wasp.call_at w_ ~now_us ~work_us:cfg.work_us in
        let work_c = cyc cfg.work_us in
        Api.overhead (max 0 (cyc lat_us - work_c));
        Api.work work_c);
    let fin = Api.now () in
    busy := !busy + (fin - start);
    Hist.record h_service.(w) (fin - start);
    Hist.record h_total.(w) (fin - req.req_arrival);
    incr completed;
    Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_completions;
    if Iw_obs.Trace.enabled tr then
      Iw_obs.Trace.span tr ~name:"service:exec" ~cat:"service" ~cpu:(Api.cpu_id ())
        ~ts:start ~dur:(fin - start) ();
    (match req.req_reply with Some sem -> Api.sem_post sem | None -> ());
    maybe_finish ()
  in

  for w = 0 to cfg.workers - 1 do
    ignore
      (Sched.spawn k
         ~spec:
           {
             Sched.sp_name = Printf.sprintf "serve-w%d" w;
             sp_cpu = Some w;
             sp_fp = false;
             sp_rt = false;
           }
         (fun () ->
           let fs =
             match cfg.backend with
             | Fiber_exec ->
                 Some (Fiber.create ~obs plat ~mode:Fiber.Cooperative ~fp:false)
             | Virtine_exec _ -> None
           in
           let rec loop () =
             Api.sem_wait doorbells.(w);
             match Squeue.pop queues.(w) with
             | Some req ->
                 exec w fs req;
                 loop ()
             | None -> if not !stopping then loop ()
           in
           loop ()))
  done;

  (match cfg.workload with
  | Workload.Closed { clients; think_us; duration_us = _ } ->
      let live = ref clients in
      for c = 0 to clients - 1 do
        let crng = Rng.split think_rng in
        let reply = Sched.semaphore ~init:0 in
        ignore
          (Sched.spawn k
             ~spec:
               {
                 Sched.sp_name = Printf.sprintf "client-%d" c;
                 sp_cpu = Some frontend;
                 sp_fp = false;
                 sp_rt = false;
               }
             (fun () ->
               let rec loop () =
                 let think = Rng.exponential crng ~mean:think_us in
                 Api.sleep (max 1 (cyc think));
                 if Api.now () <= duration_c then begin
                   let rec try_submit () =
                     if not (submit ~reply:(Some reply)) then begin
                       incr backpressure;
                       Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_backpressure;
                       (* Closed loops back off instead of shedding. *)
                       Api.sleep (max 1 (cyc (cfg.work_us *. 2.0)));
                       try_submit ()
                     end
                   in
                   try_submit ();
                   Api.sem_wait reply;
                   loop ()
                 end
               in
               loop ();
               decr live;
               if !live = 0 then begin
                 gen_done := true;
                 maybe_finish ()
               end))
      done
  | _ ->
      let g = Workload.gen cfg.workload ~rng:arrival_rng in
      ignore
        (Sched.spawn k
           ~spec:
             {
               Sched.sp_name = "loadgen";
               sp_cpu = Some frontend;
               sp_fp = false;
               sp_rt = false;
             }
           (fun () ->
             let rec loop () =
               match Workload.next g with
               | None ->
                   gen_done := true;
                   maybe_finish ()
               | Some at_us ->
                   let target = cyc at_us in
                   let now = Api.now () in
                   if target > now then Api.sleep (target - now);
                   if not (submit ~reply:None) then begin
                     incr shed;
                     Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_shed;
                     if Iw_obs.Trace.enabled tr then
                       Iw_obs.Trace.instant tr ~name:"service:shed" ~cat:"service"
                         ~cpu:(Api.cpu_id ()) ~ts:(Api.now ()) ()
                   end;
                   loop ()
             in
             loop ())));

  Sched.run k;

  let merge shards =
    let dst = Hist.create () in
    Array.iter (fun h -> Hist.merge_into ~dst h) shards;
    dst
  in
  let elapsed = Sched.now k in
  let elapsed_s = Iw_hw.Platform.us_of_cycles plat elapsed /. 1e6 in
  {
    rep_os = os_name cfg.os;
    rep_backend = backend_name cfg.backend;
    rep_policy = Dispatch.name cfg.policy;
    rep_order = Squeue.order_name cfg.order;
    rep_workload = Workload.describe cfg.workload;
    rep_offered_rps = Workload.offered_rps cfg.workload;
    rep_duration_us = Workload.duration_us cfg.workload;
    rep_ghz = plat.Iw_hw.Platform.ghz;
    rep_arrivals = !arrivals;
    rep_admitted = !admitted;
    rep_completed = !completed;
    rep_shed = !shed;
    rep_backpressure = !backpressure;
    rep_elapsed_cycles = elapsed;
    rep_busy_cycles = !busy;
    rep_throughput_rps =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    rep_utilization =
      (if elapsed > 0 then
         float_of_int !busy /. float_of_int (cfg.workers * elapsed)
       else 0.0);
    rep_pool_hits = (match wasp with Some w -> Iw_virtine.Wasp.pool_hits w | None -> 0);
    rep_spawns = (match wasp with Some w -> Iw_virtine.Wasp.spawned w | None -> 0);
    rep_queue = merge h_queue;
    rep_service = merge h_service;
    rep_total = merge h_total;
  }
