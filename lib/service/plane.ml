open Iw_engine
open Iw_kernel

type os = Nk | Linux

let os_name = function Nk -> "nk" | Linux -> "linux"
let os_of_string = function "nk" -> Some Nk | "linux" -> Some Linux | _ -> None

type backend =
  | Fiber_exec
  | Virtine_exec of { vconfig : Iw_virtine.Wasp.config; pool : int }

let backend_name = function Fiber_exec -> "fiber" | Virtine_exec _ -> "virtine"

type config = {
  os : os;
  plat : Iw_hw.Platform.t;
  workers : int;
  workload : Workload.spec;
  policy : Dispatch.policy;
  order : Squeue.order;
  queue_cap : int;
  backend : backend;
  work_us : float;
  hi_frac : float;
  seed : int;
}

let default ~plat =
  {
    os = Nk;
    plat;
    workers = 8;
    workload = Workload.Poisson { rps = 20_000.0; duration_us = 100_000.0 };
    policy = Dispatch.Po2;
    order = Squeue.Fifo;
    queue_cap = 64;
    backend = Fiber_exec;
    work_us = 150.0;
    hi_frac = 0.0;
    seed = 42;
  }

type report = {
  rep_os : string;
  rep_backend : string;
  rep_policy : string;
  rep_order : string;
  rep_workload : string;
  rep_offered_rps : float;
  rep_duration_us : float;
  rep_ghz : float;
  rep_arrivals : int;
  rep_admitted : int;
  rep_completed : int;
  rep_shed : int;
  rep_backpressure : int;
  rep_elapsed_cycles : int;
  rep_busy_cycles : int;
  rep_throughput_rps : float;
  rep_utilization : float;
  rep_pool_hits : int;
  rep_spawns : int;
  rep_run_minor_words : float;
  rep_run_major_words : float;
  rep_arena_capacity : int;
  rep_arena_grows : int;
  rep_queue : Hist.t;
  rep_service : Hist.t;
  rep_total : Hist.t;
}

let us_of_cycles rep c = float_of_int c /. (rep.rep_ghz *. 1e3)
let percentile_us rep h p = us_of_cycles rep (Hist.percentile h p)
let mean_us rep h = Hist.mean h /. (rep.rep_ghz *. 1e3)

(* Dedicated stream roots: the plane's draws must not perturb (or be
   perturbed by) kernel-side draws from the boot seed. *)
let rng_salt = 0x5E21CE

(* 2^53, the mantissa divisor behind [Rng.float]. *)
let two53 = 9007199254740992.0

(* Max requests a worker drains per doorbell wake (Fifo only). *)
let batch_k = 8

(* A worker as a flat state machine: the closureiters-style
   compilation of the old per-worker coroutine loop.  One record and
   one step closure per worker, allocated at setup; from then on the
   worker runs entirely on these mutable fields, so a steady-state
   request costs zero minor-heap words.  [w_state] values: *)
let st_start = 0 (* first activation: wait on the doorbell *)

let st_pop = 1 (* own one doorbell count: pop and execute *)
let st_staged = 2 (* sem cost paid: settle the lease, execute *)
let st_vwork = 3 (* virtine overhead paid: run the body *)
let st_done = 4 (* body finished: account and complete *)
let st_replied = 5 (* reply posted: finish bookkeeping *)
let st_bcast = 6 (* stop: posting every doorbell in turn *)

type worker = {
  w_id : int;
  w_fl : Sched.flat;
  mutable w_state : int;
  mutable w_req : int;  (* arena index under execution *)
  mutable w_start : int;  (* cycle execution started *)
  w_scratch : int array;  (* leased arena indices (batched drain) *)
  mutable w_sc_n : int;
  mutable w_sc_i : int;
  mutable w_bc : int;  (* stop-broadcast cursor *)
}

(* The open-loop load generator, same treatment.  [l_state]: 0 = draw
   next arrival, 1 = woken at the arrival time, 2 = submit overhead
   paid, 3 = stop broadcast. *)
type loadgen = {
  l_fl : Sched.flat;
  mutable l_state : int;
  mutable l_bc : int;
}

let run cfg =
  if cfg.workers < 1 then invalid_arg "Plane.run: need at least one worker";
  (match cfg.workload with
  | Workload.Closed { clients; _ } when clients < 1 ->
      invalid_arg "Plane.run: closed-loop workload needs at least one client"
  | _ -> ());
  (* Workers on CPUs 0..workers-1, load generation on a dedicated
     frontend CPU so client-side costs never steal worker cycles. *)
  let ncpus = cfg.workers + 1 in
  let plat = Iw_hw.Platform.with_cores cfg.plat ncpus in
  let frontend = cfg.workers in
  let personality =
    match cfg.os with Nk -> Os.nautilus plat | Linux -> Os.linux plat
  in
  let k = Sched.boot ~seed:cfg.seed ~personality plat in
  let obs = Sched.obs k in
  let ctr = obs.Iw_obs.Obs.counters in
  let tr = obs.Iw_obs.Obs.trace in
  let costs = plat.Iw_hw.Platform.costs in
  let cyc us = Iw_hw.Platform.cycles_of_us plat us in
  let duration_c = cyc (Workload.duration_us cfg.workload) in
  let work_c = cyc cfg.work_us in
  let submit_cost =
    costs.Iw_hw.Platform.atomic_rmw + costs.Iw_hw.Platform.cache_line_remote
  in

  let base = Rng.create ~seed:(cfg.seed lxor rng_salt) in
  let arrival_rng = Rng.split base in
  let dispatch_rng = Rng.split base in
  let prio_rng = Rng.split base in
  let think_rng = Rng.split base in

  let queues =
    Array.init cfg.workers (fun _ -> Squeue.create ~order:cfg.order ~cap:cfg.queue_cap)
  in
  let doorbells = Array.init cfg.workers (fun _ -> Sched.semaphore ~init:0) in
  let disp = Dispatch.create cfg.policy ~rng:dispatch_rng in

  let h_queue = Array.init cfg.workers (fun _ -> Hist.create ()) in
  let h_service = Array.init cfg.workers (fun _ -> Hist.create ()) in
  let h_total = Array.init cfg.workers (fun _ -> Hist.create ()) in

  (* In-flight bound: every queue full plus one executing per worker,
     plus one being submitted; closed loops are additionally bounded
     by the client count.  The arena doubles if this guess is low. *)
  let arena =
    Request_arena.create ~cap:((cfg.workers * (cfg.queue_cap + 1)) + 1)
  in
  let replies =
    match cfg.workload with
    | Workload.Closed { clients; _ } ->
        Array.init clients (fun _ -> Sched.semaphore ~init:0)
    | _ -> [||]
  in

  let arrivals = ref 0 and admitted = ref 0 and completed = ref 0 in
  let shed = ref 0 and backpressure = ref 0 in
  let busy = ref 0 in
  let gen_done = ref false and stopping = ref false in

  let wasp =
    match cfg.backend with
    | Virtine_exec { vconfig; pool } ->
        Some (Iw_virtine.Wasp.create ~obs ~seed:(cfg.seed + 17) ~pool_size:pool vconfig)
    | Fiber_exec -> None
  in

  (* Priority draw, shared verbatim between the flat and coroutine
     submit paths: one [prio_rng] draw iff hi_frac > 0 ([Rng.float]
     inlined via [raw53] so the flat path never boxes). *)
  let draw_hi () =
    cfg.hi_frac > 0.0
    && float_of_int (Rng.raw53 prio_rng) /. two53 < cfg.hi_frac
  in

  (* ---------------------------------------------------------------- *)
  (* Workers: flat state machines *)

  let workers =
    Array.init cfg.workers (fun w ->
        {
          w_id = w;
          w_fl =
            Sched.spawn_flat k
              ~spec:
                {
                  Sched.sp_name = Printf.sprintf "serve-w%d" w;
                  sp_cpu = Some w;
                  sp_fp = false;
                  sp_rt = false;
                }
              ();
          w_state = st_start;
          w_req = -1;
          w_start = 0;
          w_scratch = Array.make (batch_k - 1) (-1);
          w_sc_n = 0;
          w_sc_i = 0;
          w_bc = 0;
        })
  in

  (* Batched drain (Fifo only): pop up to [batch_k - 1] extra requests
     now, leased so length probes still see them, and consume their
     doorbell counts one by one between executions — byte-identical to
     popping them one at a time.  Priority queues drain per-item: a
     high-priority arrival during execution must still overtake a
     queued low one. *)
  let stage_extras w =
    w.w_sc_n <- 0;
    w.w_sc_i <- 0;
    match cfg.order with
    | Squeue.Priority -> ()
    | Squeue.Fifo ->
        let q = queues.(w.w_id) and db = doorbells.(w.w_id) in
        while
          w.w_sc_n < batch_k - 1
          && Sched.sem_value db > w.w_sc_n
          && (let v = Squeue.lease_pop q in
              v >= 0
              && begin
                   w.w_scratch.(w.w_sc_n) <- v;
                   w.w_sc_n <- w.w_sc_n + 1;
                   true
                 end)
        do
          ()
        done
  in

  let rec w_activation w =
    if w.w_state = st_start then begin
      w.w_state <- st_pop;
      Sched.flat_sem_wait k w.w_fl doorbells.(w.w_id)
    end
    else if w.w_state = st_pop then begin
      let v = Squeue.pop_idx queues.(w.w_id) in
      if v >= 0 then begin
        stage_extras w;
        start_exec w v
      end
      else if !stopping then Sched.flat_exit k w.w_fl
      else Sched.flat_sem_wait k w.w_fl doorbells.(w.w_id)
    end
    else if w.w_state = st_staged then begin
      Squeue.settle queues.(w.w_id);
      let v = w.w_scratch.(w.w_sc_i) in
      w.w_sc_i <- w.w_sc_i + 1;
      start_exec w v
    end
    else if w.w_state = st_vwork then begin
      w.w_state <- st_done;
      Sched.flat_work k w.w_fl work_c
    end
    else if w.w_state = st_done then finish_exec w
    else if w.w_state = st_replied then after_reply w
    else if w.w_state = st_bcast then begin
      if w.w_bc < cfg.workers then begin
        let i = w.w_bc in
        w.w_bc <- i + 1;
        Sched.flat_sem_post k w.w_fl doorbells.(i)
      end
      else next_item w
    end
    else assert false

  (* Begin executing arena slot [v]: record queue wait, then route the
     body through the backend exactly as the coroutine worker did —
     fiber = one work grant; virtine = overhead (spawn latency above
     the body) then work. *)
  and start_exec w v =
    let start = Sched.now k in
    w.w_req <- v;
    w.w_start <- start;
    Hist.record h_queue.(w.w_id) (start - Request_arena.arrival arena v);
    match cfg.backend with
    | Fiber_exec ->
        w.w_state <- st_done;
        Sched.flat_work k w.w_fl work_c
    | Virtine_exec _ ->
        let w_ = match wasp with Some w_ -> w_ | None -> assert false in
        let now_us = Iw_hw.Platform.us_of_cycles plat start in
        let lat_us = Iw_virtine.Wasp.call_at w_ ~now_us ~work_us:cfg.work_us in
        w.w_state <- st_vwork;
        Sched.flat_overhead k w.w_fl (max 0 (cyc lat_us - work_c))

  and finish_exec w =
    let fin = Sched.now k in
    busy := !busy + (fin - w.w_start);
    Hist.record h_service.(w.w_id) (fin - w.w_start);
    Hist.record h_total.(w.w_id) (fin - Request_arena.arrival arena w.w_req);
    incr completed;
    Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_completions;
    if Iw_obs.Trace.enabled tr then
      Iw_obs.Trace.span tr ~name:"service:exec" ~cat:"service" ~cpu:w.w_id
        ~ts:w.w_start ~dur:(fin - w.w_start) ();
    let r = Request_arena.reply arena w.w_req in
    Request_arena.free arena w.w_req;
    w.w_req <- -1;
    if r >= 0 then begin
      w.w_state <- st_replied;
      Sched.flat_sem_post k w.w_fl replies.(r)
    end
    else after_reply w

  and after_reply w =
    if !gen_done && !completed = !admitted && not !stopping then begin
      stopping := true;
      w.w_bc <- 0;
      w.w_state <- st_bcast;
      w_activation w
    end
    else next_item w

  and next_item w =
    if w.w_sc_i < w.w_sc_n then begin
      (* A staged request: its doorbell count is still outstanding, so
         consume it now at the uncontended cost — when the coroutine
         worker looped back to sem_wait here, the count was >= 1. *)
      w.w_state <- st_staged;
      Sched.flat_sem_take k w.w_fl doorbells.(w.w_id)
    end
    else begin
      w.w_sc_n <- 0;
      w.w_sc_i <- 0;
      w.w_state <- st_pop;
      Sched.flat_sem_wait k w.w_fl doorbells.(w.w_id)
    end
  in
  Array.iter
    (fun w ->
      Sched.set_flat_step w.w_fl (fun () -> w_activation w))
    workers;

  (* ---------------------------------------------------------------- *)
  (* Load generation *)

  (match cfg.workload with
  | Workload.Closed { clients; think_us; duration_us = _ } ->
      (* Closed loops stay coroutines: client count is small and fixed,
         and each client spends its life blocked on think or reply. *)
      let submit_cl c =
        incr arrivals;
        Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_arrivals;
        Api.overhead submit_cost;
        let hi = draw_hi () in
        let qi = Dispatch.pick_queues disp queues in
        let idx =
          Request_arena.alloc arena ~arrival:(Api.now ()) ~hi ~reply:c
        in
        if Squeue.try_push queues.(qi) ~hi idx then begin
          incr admitted;
          Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_admitted;
          if hi then Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_hi_prio;
          Api.sem_post doorbells.(qi);
          true
        end
        else begin
          Request_arena.free arena idx;
          false
        end
      in
      let initiate_stop () =
        if not !stopping then begin
          stopping := true;
          Array.iter (fun d -> Api.sem_post d) doorbells
        end
      in
      let live = ref clients in
      for c = 0 to clients - 1 do
        let crng = Rng.split think_rng in
        ignore
          (Sched.spawn k
             ~spec:
               {
                 Sched.sp_name = Printf.sprintf "client-%d" c;
                 sp_cpu = Some frontend;
                 sp_fp = false;
                 sp_rt = false;
               }
             (fun () ->
               let rec loop () =
                 let think = Rng.exponential crng ~mean:think_us in
                 Api.sleep (max 1 (cyc think));
                 if Api.now () <= duration_c then begin
                   let rec try_submit () =
                     if not (submit_cl c) then begin
                       incr backpressure;
                       Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_backpressure;
                       (* Closed loops back off instead of shedding. *)
                       Api.sleep (max 1 (cyc (cfg.work_us *. 2.0)));
                       try_submit ()
                     end
                   in
                   try_submit ();
                   Api.sem_wait replies.(c);
                   loop ()
                 end
               in
               loop ();
               decr live;
               if !live = 0 then begin
                 gen_done := true;
                 if !completed = !admitted then initiate_stop ()
               end))
      done
  | _ ->
      let g = Workload.gen cfg.workload ~rng:arrival_rng in
      Workload.set_ghz g plat.Iw_hw.Platform.ghz;
      let lg =
        {
          l_fl =
            Sched.spawn_flat k
              ~spec:
                {
                  Sched.sp_name = "loadgen";
                  sp_cpu = Some frontend;
                  sp_fp = false;
                  sp_rt = false;
                }
              ();
          l_state = 0;
          l_bc = 0;
        }
      in
      let rec lg_activation lg =
        if lg.l_state = 0 then begin
          let target = Workload.next_cycles g in
          if target < 0 then begin
            gen_done := true;
            if !completed = !admitted && not !stopping then begin
              stopping := true;
              lg.l_bc <- 0;
              lg.l_state <- 3;
              lg_activation lg
            end
            else Sched.flat_exit k lg.l_fl
          end
          else begin
            let now = Sched.now k in
            if target > now then begin
              lg.l_state <- 1;
              Sched.flat_sleep k lg.l_fl (target - now)
            end
            else lg_submit lg
          end
        end
        else if lg.l_state = 1 then lg_submit lg
        else if lg.l_state = 2 then lg_push lg
        else if lg.l_state = 3 then begin
          if lg.l_bc < cfg.workers then begin
            let i = lg.l_bc in
            lg.l_bc <- i + 1;
            Sched.flat_sem_post k lg.l_fl doorbells.(i)
          end
          else Sched.flat_exit k lg.l_fl
        end
        else assert false

      and lg_submit lg =
        incr arrivals;
        Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_arrivals;
        lg.l_state <- 2;
        Sched.flat_overhead k lg.l_fl submit_cost

      and lg_push lg =
        let hi = draw_hi () in
        let qi = Dispatch.pick_queues disp queues in
        let now = Sched.now k in
        let idx = Request_arena.alloc arena ~arrival:now ~hi ~reply:(-1) in
        if Squeue.try_push queues.(qi) ~hi idx then begin
          incr admitted;
          Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_admitted;
          if hi then Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_hi_prio;
          lg.l_state <- 0;
          Sched.flat_sem_post k lg.l_fl doorbells.(qi)
        end
        else begin
          Request_arena.free arena idx;
          incr shed;
          Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_shed;
          if Iw_obs.Trace.enabled tr then
            Iw_obs.Trace.instant tr ~name:"service:shed" ~cat:"service"
              ~cpu:frontend ~ts:now ();
          lg.l_state <- 0;
          lg_activation lg
        end
      in
      Sched.set_flat_step lg.l_fl (fun () -> lg_activation lg));

  (* Steady-state allocation is the run phase's measured quantity:
     everything above was setup, everything below is readout. *)
  let st0 = Gc.quick_stat () in
  Sched.run k;
  let st1 = Gc.quick_stat () in
  let run_minor = st1.Gc.minor_words -. st0.Gc.minor_words in
  let run_major = st1.Gc.major_words -. st0.Gc.major_words in

  let merge shards =
    let dst = Hist.create () in
    Array.iter (fun h -> Hist.merge_into ~dst h) shards;
    dst
  in
  let elapsed = Sched.now k in
  let elapsed_s = Iw_hw.Platform.us_of_cycles plat elapsed /. 1e6 in
  {
    rep_os = os_name cfg.os;
    rep_backend = backend_name cfg.backend;
    rep_policy = Dispatch.name cfg.policy;
    rep_order = Squeue.order_name cfg.order;
    rep_workload = Workload.describe cfg.workload;
    rep_offered_rps = Workload.offered_rps cfg.workload;
    rep_duration_us = Workload.duration_us cfg.workload;
    rep_ghz = plat.Iw_hw.Platform.ghz;
    rep_arrivals = !arrivals;
    rep_admitted = !admitted;
    rep_completed = !completed;
    rep_shed = !shed;
    rep_backpressure = !backpressure;
    rep_elapsed_cycles = elapsed;
    rep_busy_cycles = !busy;
    rep_throughput_rps =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    rep_utilization =
      (if elapsed > 0 then
         float_of_int !busy /. float_of_int (cfg.workers * elapsed)
       else 0.0);
    rep_pool_hits = (match wasp with Some w -> Iw_virtine.Wasp.pool_hits w | None -> 0);
    rep_spawns = (match wasp with Some w -> Iw_virtine.Wasp.spawned w | None -> 0);
    rep_run_minor_words = run_minor;
    rep_run_major_words = run_major;
    rep_arena_capacity = Request_arena.capacity arena;
    rep_arena_grows = Request_arena.grows arena;
    rep_queue = merge h_queue;
    rep_service = merge h_service;
    rep_total = merge h_total;
  }
