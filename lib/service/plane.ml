open Iw_engine
open Iw_kernel

type os = Nk | Linux

let os_name = function Nk -> "nk" | Linux -> "linux"
let os_of_string = function "nk" -> Some Nk | "linux" -> Some Linux | _ -> None

type backend = Exec.backend =
  | Fiber_exec
  | Virtine_exec of { vconfig : Iw_virtine.Wasp.config; pool : int }

let backend_name = Exec.backend_name

type config = {
  os : os;
  plat : Iw_hw.Platform.t;
  workers : int;
  workload : Workload.spec;
  policy : Dispatch.policy;
  order : Squeue.order;
  queue_cap : int;
  backend : backend;
  work_us : float;
  hi_frac : float;
  demand : Workload.demand;
  seed : int;
}

let default ~plat =
  {
    os = Nk;
    plat;
    workers = 8;
    workload = Workload.Poisson { rps = 20_000.0; duration_us = 100_000.0 };
    policy = Dispatch.Po2;
    order = Squeue.Fifo;
    queue_cap = 64;
    backend = Fiber_exec;
    work_us = 150.0;
    hi_frac = 0.0;
    demand = Workload.Dfixed;
    seed = 42;
  }

type report = {
  rep_os : string;
  rep_backend : string;
  rep_policy : string;
  rep_order : string;
  rep_workload : string;
  rep_offered_rps : float;
  rep_duration_us : float;
  rep_ghz : float;
  rep_arrivals : int;
  rep_admitted : int;
  rep_completed : int;
  rep_shed : int;
  rep_backpressure : int;
  rep_elapsed_cycles : int;
  rep_busy_cycles : int;
  rep_throughput_rps : float;
  rep_utilization : float;
  rep_pool_hits : int;
  rep_spawns : int;
  rep_run_minor_words : float;
  rep_run_major_words : float;
  rep_arena_capacity : int;
  rep_arena_grows : int;
  rep_queue : Hist.t;
  rep_service : Hist.t;
  rep_total : Hist.t;
  rep_total_corrected : Hist.t;
      (* sojourn measured from the intended (drawn) send time:
         coordinated-omission-corrected open-loop latency *)
  rep_steals : int;
  rep_series : Iw_obs.Series.t option;
}

let us_of_cycles rep c = float_of_int c /. (rep.rep_ghz *. 1e3)
let percentile_us rep h p = us_of_cycles rep (Hist.percentile h p)
let mean_us rep h = Hist.mean h /. (rep.rep_ghz *. 1e3)

(* Dedicated stream roots: the plane's draws must not perturb (or be
   perturbed by) kernel-side draws from the boot seed. *)
let rng_salt = 0x5E21CE

(* 2^53, the mantissa divisor behind [Rng.float]. *)
let two53 = 9007199254740992.0

(* The open-loop load generator as a flat state machine (the worker
   side lives in [Exec]).  [l_state]: 0 = draw next arrival, 1 =
   woken at the arrival time, 2 = submit overhead paid, 3 = stop
   broadcast. *)
type loadgen = {
  l_fl : Sched.flat;
  mutable l_state : int;
  mutable l_bc : int;
  mutable l_target : int;  (* intended (drawn) send cycle of this arrival *)
}

let run cfg =
  if cfg.workers < 1 then invalid_arg "Plane.run: need at least one worker";
  (match cfg.workload with
  | Workload.Closed { clients; _ } when clients < 1 ->
      invalid_arg "Plane.run: closed-loop workload needs at least one client"
  | _ -> ());
  (* Workers on CPUs 0..workers-1, load generation on a dedicated
     frontend CPU so client-side costs never steal worker cycles. *)
  let ncpus = cfg.workers + 1 in
  let plat = Iw_hw.Platform.with_cores cfg.plat ncpus in
  let frontend = cfg.workers in
  let personality =
    match cfg.os with Nk -> Os.nautilus plat | Linux -> Os.linux plat
  in
  let k = Sched.boot ~seed:cfg.seed ~personality plat in
  let obs = Sched.obs k in
  let ctr = obs.Iw_obs.Obs.counters in
  let tr = obs.Iw_obs.Obs.trace in
  let costs = plat.Iw_hw.Platform.costs in
  let cyc us = Iw_hw.Platform.cycles_of_us plat us in
  let duration_c = cyc (Workload.duration_us cfg.workload) in
  let submit_cost =
    costs.Iw_hw.Platform.atomic_rmw + costs.Iw_hw.Platform.cache_line_remote
  in

  let base = Rng.create ~seed:(cfg.seed lxor rng_salt) in
  let arrival_rng = Rng.split base in
  let dispatch_rng = Rng.split base in
  let prio_rng = Rng.split base in
  let think_rng = Rng.split base in

  let replies =
    match cfg.workload with
    | Workload.Closed { clients; _ } ->
        Array.init clients (fun _ -> Sched.semaphore ~init:0)
    | _ -> [||]
  in

  (* The machine role — queues, doorbells, dispatch, arena, backend,
     flat workers — extracted to [Exec] (the fleet boots the same
     executor once per machine). *)
  let ex =
    Exec.create ~k ~workers:cfg.workers ~order:cfg.order
      ~queue_cap:cfg.queue_cap ~backend:cfg.backend ~work_us:cfg.work_us
      ~policy:cfg.policy ~dispatch_rng ~wasp_seed:(cfg.seed + 17)
      ~demand:cfg.demand ~demand_seed:(cfg.seed + 23)
      ~mode:(Exec.Standalone replies) ()
  in
  let doorbells = Exec.doorbells ex in
  let admitted = Exec.admitted_ref ex in
  let completed = Exec.completed_ref ex in
  let gen_done = Exec.gen_done_ref ex in
  let stopping = Exec.stopping_ref ex in

  let arrivals = ref 0 in
  let shed = ref 0 and backpressure = ref 0 in

  (* Online telemetry (ambient --sample-us): every period of virtual
     time, snapshot counter deltas, queue depth, and windowed latency
     percentiles into a preallocated ring.  Sampling is pure reads
     plus writes into the series' own ring, and the timer is disarmed
     the moment the stop protocol fires (it would otherwise keep the
     drained simulator alive), so elapsed time and every table stay
     byte-identical with sampling off. *)
  let sim = Sched.sim k in
  let sample_c =
    let us = Iw_obs.Series.period_us () in
    if us > 0.0 then max 1 (cyc us) else 0
  in
  let stop_sampler = ref (fun () -> ()) in
  let series =
    if sample_c = 0 then None
    else begin
      let wins = Array.map Hist.window (Exec.h_total ex) in
      let s =
        Iw_obs.Series.create ~name:"plane"
          ~cols:
            [
              Iw_obs.Series.dref ~name:"arrivals" arrivals;
              Iw_obs.Series.dref ~name:"admitted" admitted;
              Iw_obs.Series.dref ~name:"completed" completed;
              Iw_obs.Series.dref ~name:"shed" shed;
              Iw_obs.Series.col ~name:"depth" (fun () -> Exec.depth ex);
              Iw_obs.Series.col ~name:"p50_cyc" (fun () ->
                  Hist.win_percentile_many wins 50.0);
              Iw_obs.Series.col ~name:"p99_cyc" (fun () ->
                  Hist.win_percentile_many wins 99.0);
            ]
          ~post:[ (fun () -> Array.iter Hist.win_advance wins) ]
          ()
      in
      let tm = Iw_engine.Sim.timer sim in
      let rec fire () =
        Iw_obs.Series.sample s ~ts:(Iw_engine.Sim.now sim);
        Iw_engine.Sim.arm_after sim tm sample_c fire
      in
      Iw_engine.Sim.arm_after sim tm sample_c fire;
      let disarm () = Iw_engine.Sim.disarm sim tm in
      stop_sampler := disarm;
      Exec.set_on_stop ex disarm;
      Some s
    end
  in

  (* Priority draw, shared verbatim between the flat and coroutine
     submit paths: one [prio_rng] draw iff hi_frac > 0 ([Rng.float]
     inlined via [raw53] so the flat path never boxes). *)
  let draw_hi () =
    cfg.hi_frac > 0.0
    && float_of_int (Rng.raw53 prio_rng) /. two53 < cfg.hi_frac
  in

  (* ---------------------------------------------------------------- *)
  (* Load generation *)

  (match cfg.workload with
  | Workload.Closed { clients; think_us; duration_us = _ } ->
      (* Closed loops stay coroutines: client count is small and fixed,
         and each client spends its life blocked on think or reply. *)
      let submit_cl c =
        incr arrivals;
        Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_arrivals;
        Api.overhead submit_cost;
        let hi = draw_hi () in
        let qi =
          Exec.try_enqueue ex ~intended:(-1) ~hi ~arrival:(Api.now ()) ~reply:c
        in
        if qi >= 0 then begin
          Api.sem_post doorbells.(qi);
          true
        end
        else false
      in
      let initiate_stop () =
        if not !stopping then begin
          stopping := true;
          !stop_sampler ();
          Exec.stop_watchdog ex;
          Array.iter (fun d -> Api.sem_post d) doorbells
        end
      in
      let live = ref clients in
      for c = 0 to clients - 1 do
        let crng = Rng.split think_rng in
        ignore
          (Sched.spawn k
             ~spec:
               {
                 Sched.sp_name = Printf.sprintf "client-%d" c;
                 sp_cpu = Some frontend;
                 sp_fp = false;
                 sp_rt = false;
               }
             (fun () ->
               let rec loop () =
                 let think = Rng.exponential crng ~mean:think_us in
                 Api.sleep (max 1 (cyc think));
                 if Api.now () <= duration_c then begin
                   let rec try_submit () =
                     if not (submit_cl c) then begin
                       incr backpressure;
                       Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_backpressure;
                       (* Closed loops back off instead of shedding. *)
                       Api.sleep (max 1 (cyc (cfg.work_us *. 2.0)));
                       try_submit ()
                     end
                   in
                   try_submit ();
                   Api.sem_wait replies.(c);
                   loop ()
                 end
               in
               loop ();
               decr live;
               if !live = 0 then begin
                 gen_done := true;
                 if !completed = !admitted then initiate_stop ()
               end))
      done
  | _ ->
      let g = Workload.gen cfg.workload ~rng:arrival_rng in
      Workload.set_ghz g plat.Iw_hw.Platform.ghz;
      let lg =
        {
          l_fl =
            Sched.spawn_flat k
              ~spec:
                {
                  Sched.sp_name = "loadgen";
                  sp_cpu = Some frontend;
                  sp_fp = false;
                  sp_rt = false;
                }
              ();
          l_state = 0;
          l_bc = 0;
          l_target = 0;
        }
      in
      let rec lg_activation lg =
        if lg.l_state = 0 then begin
          let target = Workload.next_cycles g in
          if target < 0 then begin
            gen_done := true;
            if !completed = !admitted && not !stopping then begin
              stopping := true;
              !stop_sampler ();
              Exec.stop_watchdog ex;
              lg.l_bc <- 0;
              lg.l_state <- 3;
              lg_activation lg
            end
            else Sched.flat_exit k lg.l_fl
          end
          else begin
            lg.l_target <- target;
            let now = Sched.now k in
            if target > now then begin
              lg.l_state <- 1;
              Sched.flat_sleep k lg.l_fl (target - now)
            end
            else lg_submit lg
          end
        end
        else if lg.l_state = 1 then lg_submit lg
        else if lg.l_state = 2 then lg_push lg
        else if lg.l_state = 3 then begin
          if lg.l_bc < cfg.workers then begin
            let i = lg.l_bc in
            lg.l_bc <- i + 1;
            Sched.flat_sem_post k lg.l_fl doorbells.(i)
          end
          else Sched.flat_exit k lg.l_fl
        end
        else assert false

      and lg_submit lg =
        incr arrivals;
        Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_arrivals;
        lg.l_state <- 2;
        Sched.flat_overhead k lg.l_fl submit_cost

      and lg_push lg =
        let hi = draw_hi () in
        let now = Sched.now k in
        let qi =
          Exec.try_enqueue ex ~intended:lg.l_target ~hi ~arrival:now ~reply:(-1)
        in
        if qi >= 0 then begin
          lg.l_state <- 0;
          Sched.flat_sem_post k lg.l_fl doorbells.(qi)
        end
        else begin
          incr shed;
          Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_shed;
          if Iw_obs.Trace.enabled tr then
            Iw_obs.Trace.instant tr ~name:"service:shed" ~cat:"service"
              ~cpu:frontend ~ts:now ();
          lg.l_state <- 0;
          lg_activation lg
        end
      in
      Sched.set_flat_step lg.l_fl (fun () -> lg_activation lg));

  (* Steady-state allocation is the run phase's measured quantity:
     everything above was setup, everything below is readout. *)
  let st0 = Gc.quick_stat () in
  Sched.run k;
  let st1 = Gc.quick_stat () in
  let run_minor = st1.Gc.minor_words -. st0.Gc.minor_words in
  let run_major = st1.Gc.major_words -. st0.Gc.major_words in

  let merge shards =
    let dst = Hist.create () in
    Array.iter (fun h -> Hist.merge_into ~dst h) shards;
    dst
  in
  let elapsed = Sched.now k in
  let elapsed_s = Iw_hw.Platform.us_of_cycles plat elapsed /. 1e6 in
  let busy = Exec.busy_cycles ex in
  {
    rep_os = os_name cfg.os;
    rep_backend = backend_name cfg.backend;
    rep_policy = Dispatch.name cfg.policy;
    rep_order = Squeue.order_name cfg.order;
    rep_workload = Workload.describe cfg.workload;
    rep_offered_rps = Workload.offered_rps cfg.workload;
    rep_duration_us = Workload.duration_us cfg.workload;
    rep_ghz = plat.Iw_hw.Platform.ghz;
    rep_arrivals = !arrivals;
    rep_admitted = !admitted;
    rep_completed = !completed;
    rep_shed = !shed;
    rep_backpressure = !backpressure;
    rep_elapsed_cycles = elapsed;
    rep_busy_cycles = busy;
    rep_throughput_rps =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    rep_utilization =
      (if elapsed > 0 then
         float_of_int busy /. float_of_int (cfg.workers * elapsed)
       else 0.0);
    rep_pool_hits =
      (match Exec.wasp ex with
      | Some w -> Iw_virtine.Wasp.pool_hits w
      | None -> 0);
    rep_spawns =
      (match Exec.wasp ex with
      | Some w -> Iw_virtine.Wasp.spawned w
      | None -> 0);
    rep_run_minor_words = run_minor;
    rep_run_major_words = run_major;
    rep_arena_capacity = Exec.arena_capacity ex;
    rep_arena_grows = Exec.arena_grows ex;
    rep_queue = merge (Exec.h_queue ex);
    rep_service = merge (Exec.h_service ex);
    rep_total = merge (Exec.h_total ex);
    rep_total_corrected = Exec.h_corrected ex;
    rep_steals = Exec.steals ex;
    rep_series =
      (match series with
      | Some s ->
          Iw_obs.Series.publish s;
          Some s
      | None -> None);
  }
