(** The machine role of the service plane: per-worker bounded queues,
    doorbell semaphores, a local dispatch policy, the request arena,
    and one flat-state-machine worker per CPU executing request
    bodies through a backend (fiber or pooled virtines).

    Extracted from [Plane] so the same executor serves two callers:

    - {b Standalone} ([Plane.run]): the load generator lives on a
      frontend CPU of the same kernel, replies go to closed-loop
      client semaphores, and the stop protocol (generator done, all
      admitted completed) broadcasts doorbells so workers exit.
    - {b Fleet} ([Fleet.run]): requests arrive over the simulated
      network (injected from event context via {!Sched.sem_signal}),
      and completions pay a serialization cost then hand the reply to
      the fleet's outbox; workers never exit — the fleet loop simply
      stops advancing windows.

    The standalone path is byte-identical to the pre-extraction
    [Plane]: same creation order, same RNG streams, same flat-state
    transitions, zero minor-heap words per steady-state request. *)

open Iw_kernel

type backend =
  | Fiber_exec  (** Per-worker cooperative fiber runs each body. *)
  | Virtine_exec of { vconfig : Iw_virtine.Wasp.config; pool : int }
      (** Each request is a virtine call through one shared Wasp
          instance with a warm pool of [pool] contexts. *)

val backend_name : backend -> string

type mode =
  | Standalone of Sched.semaphore array
      (** Per-client reply semaphores (empty for open loops). *)
  | Fleet of { fm_tx_c : int; fm_respond : reply:int -> unit }
      (** Completions pay [fm_tx_c] serialization cycles, then
          [fm_respond] receives the arena's reply field (the front
          tier's request handle) at the post-serialization time. *)

type t

val create :
  k:Sched.t ->
  ?prefix:string ->
  ?watchdog:bool ->
  ?demand:Workload.demand ->
  ?demand_seed:int ->
  ?demand_scale:float ->
  workers:int ->
  order:Squeue.order ->
  queue_cap:int ->
  backend:backend ->
  work_us:float ->
  policy:Dispatch.policy ->
  dispatch_rng:Iw_engine.Rng.t ->
  wasp_seed:int ->
  mode:mode ->
  unit ->
  t
(** Builds queues, doorbells, dispatch state, histograms, the arena,
    the optional Wasp instance, and spawns [workers] flat worker
    threads pinned to CPUs [0..workers-1] (named ["<prefix>-w<i>"],
    default prefix ["serve"]).

    Captures the ambient fault plan: when it arms [Worker_hang], a
    worker about to pop with work waiting can hang (clocked sleep, or
    — fleet mode only — permanently exit), and, if [watchdog] (the
    default), a periodic sim timer scans for hung workers and steals
    their queued requests onto the shortest live peer (counted as
    [peer_steal], detection as [watchdog_fire]).  Unfaulted runs
    never arm the timer.

    [demand] (default [Dfixed]) draws a per-request service cost from
    a stateless hash of [(demand_seed, request id)], scaled by
    [demand_scale] (the fleet passes [1/speed], matching its scaled
    [work_us]). *)

val try_enqueue : t -> intended:int -> hi:bool -> arrival:int -> reply:int -> int
(** Pick a queue by the local policy, allocate an arena slot, push.
    On success bumps admitted (and hi-priority) counters and returns
    the queue index — the caller must post that doorbell ([flat]/
    coroutine submit paths pay their own cost; network RX uses
    {!Sched.sem_signal}).  On a full queue frees the slot and
    returns [-1].  [intended] (default -1 = none) is the open-loop
    intended send cycle, recorded for coordinated-omission-corrected
    latency ({!h_corrected}). *)

val doorbell : t -> int -> Sched.semaphore
val doorbells : t -> Sched.semaphore array
val depth : t -> int
(** Sum of current queue lengths (leases included) — the signal a
    machine gossips to the fleet balancer. *)

val workers : t -> int
val admitted_ref : t -> int ref
val completed_ref : t -> int ref
val busy_cycles : t -> int
val gen_done_ref : t -> bool ref
(** Standalone stop protocol: the generator sets this when arrivals
    are exhausted; the last completion broadcasts doorbells. *)

val stopping_ref : t -> bool ref

val set_on_stop : t -> (unit -> unit) -> unit
(** Hook fired the moment the executor flips [stopping] (last
    completion after the generator finished).  [Plane] uses it to
    disarm its telemetry sampler timer, which would otherwise keep
    the drained simulator alive past the run's natural end. *)

val h_queue : t -> Hist.t array
val h_service : t -> Hist.t array
val h_total : t -> Hist.t array

val h_corrected : t -> Hist.t
(** Sojourn time measured from the *intended* send cycle for requests
    that recorded one — the coordinated-omission-corrected view of
    {!h_total}. *)

val arena_capacity : t -> int
val arena_grows : t -> int
val wasp : t -> Iw_virtine.Wasp.t option

val steals : t -> int
(** Requests the watchdog moved off hung workers' queues. *)

val hung : t -> int
(** Workers currently hung (clocked hangs clear themselves). *)

val set_slowdown : t -> int -> unit
(** Brownout hook: multiply subsequent work grants by [x/1000]
    (1000 = full speed).  Clamped to >= 1. *)

val slowdown : t -> int

val stop_watchdog : t -> unit
(** Disarm the hang watchdog timer (idempotent).  The executor calls
    this itself on its own stop path; external stop initiators (the
    plane's closed-loop and generator-tail paths) must call it too,
    like the sampler's disarm hook. *)
