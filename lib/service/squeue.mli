(** Bounded per-worker run queue with drop-tail shedding.

    Two service orders: [Fifo] (one lane, arrival order) and
    [Priority] (two lanes; high-priority requests always pop first,
    FIFO within a lane).  The bound covers both lanes together;
    {!try_push} refuses — drop-tail — when the queue is full, and the
    queue keeps its own pushed/dropped counts for backpressure
    accounting. *)

type order = Fifo | Priority

val order_name : order -> string
val order_of_string : string -> order option

type 'a t

val create : order:order -> cap:int -> 'a t
(** @raise Invalid_argument when [cap < 1]. *)

val order : 'a t -> order
val capacity : 'a t -> int
val length : 'a t -> int
val is_empty : 'a t -> bool

val try_push : 'a t -> hi:bool -> 'a -> bool
(** [false] = queue full, request dropped (counted). [hi] is ignored
    under [Fifo]. *)

val pop : 'a t -> 'a option

val pushed : 'a t -> int
val dropped : 'a t -> int
