(** Bounded per-worker run queue with drop-tail shedding.

    Two service orders: [Fifo] (one lane, arrival order) and
    [Priority] (two lanes; high-priority requests always pop first,
    FIFO within a lane).  The bound covers both lanes together;
    {!try_push} refuses — drop-tail — when the queue is full, and the
    queue keeps its own pushed/dropped counts for backpressure
    accounting.

    Elements are non-negative ints (request-arena indices); both lanes
    are preallocated ring buffers, so push and pop are O(1) and
    allocation-free.

    Batched draining: {!lease_pop} removes an element but keeps it
    counted in {!length} (and against the capacity bound) until
    {!settle} is called — a worker that drains several requests per
    doorbell wake stays indistinguishable, to dispatch-policy length
    probes and to the admission bound, from one that pops them one at
    a time. *)

type order = Fifo | Priority

val order_name : order -> string
val order_of_string : string -> order option

type t

val create : order:order -> cap:int -> t
(** @raise Invalid_argument when [cap < 1]. *)

val order : t -> order
val capacity : t -> int

val length : t -> int
(** Queued plus leased elements — what a dispatch policy sees. *)

val is_empty : t -> bool
(** No element left to pop (leased elements do not count here). *)

val try_push : t -> hi:bool -> int -> bool
(** [false] = queue full, request dropped (counted). [hi] is ignored
    under [Fifo].  @raise Invalid_argument on a negative element. *)

val pop : t -> int option

val pop_idx : t -> int
(** Like {!pop}; [-1] when empty.  No allocation. *)

val lease_pop : t -> int
(** Pop ([-1] when empty) but keep the element counted in {!length}
    until the matching {!settle}. *)

val settle : t -> unit
(** Retire one leased element.  @raise Invalid_argument when nothing
    is leased. *)

val leased : t -> int
val pushed : t -> int
val dropped : t -> int
