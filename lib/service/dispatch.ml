open Iw_engine

type policy = Round_robin | Random | Jsq | Po2 | Wjsq

(* The single-box shootout set (S3's rows, golden-gated): [Wjsq] only
   distinguishes itself across heterogeneous servers, so it joins the
   fleet-level enumerations instead. *)
let all = [ Round_robin; Random; Jsq; Po2 ]
let all_weighted = [ Round_robin; Random; Jsq; Po2; Wjsq ]

let name = function
  | Round_robin -> "rr"
  | Random -> "random"
  | Jsq -> "jsq"
  | Po2 -> "po2"
  | Wjsq -> "wjsq"

let of_string = function
  | "rr" | "round-robin" -> Some Round_robin
  | "random" | "rand" -> Some Random
  | "jsq" -> Some Jsq
  | "po2" | "p2c" -> Some Po2
  | "wjsq" | "weighted" -> Some Wjsq
  | _ -> None

type t = { d_policy : policy; d_rng : Rng.t; mutable d_next : int }

let create policy ~rng = { d_policy = policy; d_rng = rng; d_next = 0 }
let policy t = t.d_policy

let argmin ~n ~len =
  let best = ref 0 and best_len = ref (len 0) in
  for i = 1 to n - 1 do
    let l = len i in
    if l < !best_len then begin
      best := i;
      best_len := l
    end
  done;
  !best

(* Weighted join-shortest-queue: argmin of (len i + 1) / weight i,
   computed in scaled integers so the choice is exact and the path
   stays float-free.  Lowest index wins ties, like [Jsq]. *)
let argmin_weighted ~n ~len ~weight =
  let score i = (len i + 1) * 1024 / max 1 (weight i) in
  let best = ref 0 and best_score = ref (score 0) in
  for i = 1 to n - 1 do
    let s = score i in
    if s < !best_score then begin
      best := i;
      best_score := s
    end
  done;
  !best

let unit_weight = fun (_ : int) -> 1

let pick ?(weight = unit_weight) t ~n ~len =
  if n < 1 then invalid_arg "Dispatch.pick: need at least one queue";
  match t.d_policy with
  | Round_robin ->
      let i = t.d_next in
      t.d_next <- (i + 1) mod n;
      i
  | Random -> Rng.int t.d_rng n
  | Jsq -> argmin ~n ~len
  | Po2 ->
      let a = Rng.int t.d_rng n in
      let b = Rng.int t.d_rng n in
      if len b < len a then b else a
  | Wjsq -> argmin_weighted ~n ~len ~weight

(* [pick] over an array of queues, probing lengths directly: same
   draws and same choices as [pick] with a length callback, but
   nothing to allocate at the call site.  [Wjsq] over homogeneous
   local queues degenerates to [Jsq]. *)
let pick_queues t (qs : Squeue.t array) =
  let n = Array.length qs in
  if n < 1 then invalid_arg "Dispatch.pick_queues: need at least one queue";
  match t.d_policy with
  | Round_robin ->
      let i = t.d_next in
      t.d_next <- (i + 1) mod n;
      i
  | Random -> Rng.int t.d_rng n
  | Jsq | Wjsq ->
      let best = ref 0 and best_len = ref (Squeue.length qs.(0)) in
      for i = 1 to n - 1 do
        let l = Squeue.length qs.(i) in
        if l < !best_len then begin
          best := i;
          best_len := l
        end
      done;
      !best
  | Po2 ->
      let a = Rng.int t.d_rng n in
      let b = Rng.int t.d_rng n in
      if Squeue.length qs.(b) < Squeue.length qs.(a) then b else a
