(* In-flight requests as indices into flat arrays.

   The service plane used to heap-allocate a record per request; at a
   million requests per run that is the dominant minor-heap traffic.
   Here a request is an int index into parallel preallocated arrays —
   arrival cycle, priority bit, reply slot — handed out from a
   free list threaded through [next] and recycled on completion.
   Steady state allocates nothing: the arena only grows (by doubling)
   while the in-flight population is still finding its high-water
   mark.

   Invariants (property-tested):
   - a slot is on the free list xor live: [next.(i) = live_mark] iff
     [i] was alloc'd and not yet freed;
   - [live + free-list length = capacity] at all times;
   - [free] on a non-live slot raises rather than corrupting the
     list. *)

let live_mark = -2

type t = {
  mutable arrival : int array;  (* arrival cycle per live slot *)
  mutable hi : bool array;  (* priority bit *)
  mutable reply : int array;  (* reply slot (client index); -1 = none *)
  mutable demand : int array;  (* per-request work cycles; -1 = default *)
  mutable intended : int array;  (* intended send cycle; -1 = none *)
  mutable next : int array;  (* free-list link, or [live_mark] *)
  mutable free_head : int;  (* -1 = empty *)
  mutable cap : int;
  mutable live_n : int;
  mutable allocs : int;  (* total allocs ever (monotone) *)
  mutable grows : int;
}

(* Chain slots [lo, hi) onto the free list, highest first so that
   allocation hands out the lowest index — keeps tests and traces
   readable, costs nothing. *)
let chain t lo hi =
  for i = hi - 1 downto lo do
    t.next.(i) <- t.free_head;
    t.free_head <- i
  done

let create ~cap =
  if cap < 1 then invalid_arg "Request_arena.create: capacity must be >= 1";
  let t =
    {
      arrival = Array.make cap 0;
      hi = Array.make cap false;
      reply = Array.make cap (-1);
      demand = Array.make cap (-1);
      intended = Array.make cap (-1);
      next = Array.make cap (-1);
      free_head = -1;
      cap;
      live_n = 0;
      allocs = 0;
      grows = 0;
    }
  in
  chain t 0 cap;
  t

let capacity t = t.cap
let live t = t.live_n
let free_count t = t.cap - t.live_n
let allocs t = t.allocs
let grows t = t.grows

let grow t =
  let ncap = 2 * t.cap in
  let widen a fill =
    let b = Array.make ncap fill in
    Array.blit a 0 b 0 t.cap;
    b
  in
  t.arrival <- widen t.arrival 0;
  t.hi <- widen t.hi false;
  t.reply <- widen t.reply (-1);
  t.demand <- widen t.demand (-1);
  t.intended <- widen t.intended (-1);
  t.next <- widen t.next (-1);
  let old = t.cap in
  t.cap <- ncap;
  t.grows <- t.grows + 1;
  chain t old ncap

let alloc t ~demand ~intended ~arrival ~hi ~reply =
  if t.free_head < 0 then grow t;
  let i = t.free_head in
  t.free_head <- t.next.(i);
  t.next.(i) <- live_mark;
  t.arrival.(i) <- arrival;
  t.hi.(i) <- hi;
  t.reply.(i) <- reply;
  (* Slots recycle, so defaulted fields must be reset, not inherited. *)
  t.demand.(i) <- demand;
  t.intended.(i) <- intended;
  t.live_n <- t.live_n + 1;
  t.allocs <- t.allocs + 1;
  i

let check_live t i name =
  if i < 0 || i >= t.cap then
    invalid_arg (Printf.sprintf "Request_arena.%s: bad index %d" name i);
  if t.next.(i) <> live_mark then
    invalid_arg (Printf.sprintf "Request_arena.%s: slot %d is not live" name i)

let free t i =
  check_live t i "free";
  t.next.(i) <- t.free_head;
  t.free_head <- i;
  t.live_n <- t.live_n - 1

(* Hot-path accessors: no liveness check (the plane only reads slots
   it holds); [is_live] is there for tests. *)
let arrival t i = t.arrival.(i)
let is_hi t i = t.hi.(i)
let reply t i = t.reply.(i)
let demand t i = t.demand.(i)
let intended t i = t.intended.(i)
let is_live t i = i >= 0 && i < t.cap && t.next.(i) = live_mark

let free_list_length t =
  let n = ref 0 and i = ref t.free_head in
  while !i >= 0 do
    incr n;
    i := t.next.(!i)
  done;
  !n
