(* Mergeable log-bucketed latency histogram (HDR-style).

   Values are non-negative integers (cycles).  Values below
   [2^sub_bits] get their own bucket (exact); above that, each octave
   is split into [2^(sub_bits-1)] sub-buckets, so the quantization
   error is bounded by ~1/2^(sub_bits-1) (< 3.2% here) at any
   magnitude.  A recorded value is quantized *down* to its bucket's
   lower bound.

   Percentiles are rank-exact over the quantized domain: [percentile h
   p] returns exactly [quantize v_r] where [v_r] is the rank-th
   smallest recorded sample and rank = ceil(p/100 * count) — the
   nearest-rank definition against a sorted reference.  Because a
   histogram is just a bucket-count vector plus (count, sum, min,
   max), merging is element-wise integer addition: associative and
   commutative by construction, which is what lets a parallel driver
   merge per-shard histograms in any grouping and stay byte-identical
   to a serial run. *)

let sub_bits = 6
let sub = 1 lsl sub_bits
let half = sub / 2

(* Enough octaves for any 62-bit value. *)
let nbuckets = sub + ((62 - sub_bits) * half)

type t = {
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let create () =
  { buckets = Array.make nbuckets 0; count = 0; sum = 0; min_v = max_int; max_v = 0 }

let floor_log2 v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let index v =
  if v < sub then v
  else begin
    let msb = floor_log2 v in
    let shift = msb - sub_bits + 1 in
    sub + ((msb - sub_bits) * half) + ((v lsr shift) - half)
  end

(* Lower bound of bucket [i] — the value recorded samples in it read
   back as. *)
let value_at i =
  if i < sub then i
  else begin
    let j = i - sub in
    let o = j / half and rem = j mod half in
    (rem + half) lsl (o + 1)
  end

let quantize v = value_at (index v)

let record t v =
  if v < 0 then invalid_arg "Hist.record: negative value";
  let i = index v in
  t.buckets.(i) <- t.buckets.(i) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let max_value t = if t.count = 0 then 0 else t.max_v
let min_value t = if t.count = 0 then 0 else t.min_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let percentile t p =
  if p <= 0.0 || p > 100.0 then invalid_arg "Hist.percentile: p outside (0,100]";
  if t.count = 0 then 0
  else begin
    let rank =
      min t.count (max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.count))))
    in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank do
      cum := !cum + t.buckets.(!i);
      incr i
    done;
    value_at (!i - 1)
  end

let merge_into ~dst src =
  for i = 0 to nbuckets - 1 do
    dst.buckets.(i) <- dst.buckets.(i) + src.buckets.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.sum <- dst.sum + src.sum;
  if src.min_v < dst.min_v then dst.min_v <- src.min_v;
  if src.max_v > dst.max_v then dst.max_v <- src.max_v

let merge a b =
  let dst = create () in
  merge_into ~dst a;
  merge_into ~dst b;
  dst

let equal a b =
  a.count = b.count && a.sum = b.sum && a.min_v = b.min_v && a.max_v = b.max_v
  && a.buckets = b.buckets

(* ------------------------------------------------------------------ *)
(* Windows: rank-exact percentiles over "everything recorded since the
   last [win_advance]", computed by diffing the live bucket vector
   against a snapshot — the histogram itself is never touched, so an
   online sampler can read percentiles without perturbing the run's
   end-of-run readout. *)

type window = {
  w_src : t;
  w_buckets : int array;  (* bucket snapshot at the last advance *)
  mutable w_count : int;  (* count snapshot at the last advance *)
}

let window src =
  { w_src = src; w_buckets = Array.make nbuckets 0; w_count = 0 }

let win_advance w =
  Array.blit w.w_src.buckets 0 w.w_buckets 0 nbuckets;
  w.w_count <- w.w_src.count

let win_count w = w.w_src.count - w.w_count

let rank_of p count =
  min count (max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int count))))

let win_percentile w p =
  if p <= 0.0 || p > 100.0 then
    invalid_arg "Hist.win_percentile: p outside (0,100]";
  let c = win_count w in
  if c = 0 then 0
  else begin
    let rank = rank_of p c in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank do
      cum := !cum + w.w_src.buckets.(!i) - w.w_buckets.(!i);
      incr i
    done;
    value_at (!i - 1)
  end

(* Union of several windows (e.g. one per worker shard): equivalent to
   [win_percentile] on their merged deltas, without materializing the
   merge — bucket-delta addition is the same element-wise sum that
   makes {!merge} associative. *)
let win_percentile_many ws p =
  if p <= 0.0 || p > 100.0 then
    invalid_arg "Hist.win_percentile_many: p outside (0,100]";
  let n = Array.length ws in
  let c = ref 0 in
  for j = 0 to n - 1 do
    c := !c + win_count ws.(j)
  done;
  if !c = 0 then 0
  else begin
    let rank = rank_of p !c in
    let i = ref 0 and cum = ref 0 in
    while !cum < rank do
      for j = 0 to n - 1 do
        let w = ws.(j) in
        cum := !cum + w.w_src.buckets.(!i) - w.w_buckets.(!i)
      done;
      incr i
    done;
    value_at (!i - 1)
  end
