(* Inter-machine links and outbox buffers.  See net.mli. *)

type config = {
  nc_lat_us : float;
  nc_gbps : float;
  nc_req_bytes : int;
  nc_resp_bytes : int;
  nc_gossip_bytes : int;
  nc_inflight : int;
}

let default =
  {
    nc_lat_us = 15.0;
    nc_gbps = 10.0;
    nc_req_bytes = 512;
    nc_resp_bytes = 256;
    nc_gossip_bytes = 64;
    nc_inflight = 256;
  }

let describe c =
  Printf.sprintf "%.0fus/%.0fGbps/%dB" c.nc_lat_us c.nc_gbps c.nc_req_bytes

type link = {
  lk_lat_c : int;
  lk_cpb : float;  (* serialization cycles per byte *)
  mutable lk_busy_until : int;  (* FIFO: when the wire frees up *)
  lk_ring : int array;  (* delivery times of the last [bound] msgs *)
  mutable lk_pos : int;
  mutable lk_n : int;
}

let lat_cycles c ~ghz = max 1 (int_of_float (c.nc_lat_us *. ghz *. 1e3))

let link c ~ghz =
  if c.nc_inflight < 1 then invalid_arg "Net.link: nc_inflight < 1";
  if c.nc_gbps <= 0.0 then invalid_arg "Net.link: nc_gbps <= 0";
  {
    lk_lat_c = lat_cycles c ~ghz;
    (* bytes/cycle = gbps*1e9/8 / (ghz*1e9)  =>  cycles/byte: *)
    lk_cpb = 8.0 *. ghz /. c.nc_gbps;
    lk_busy_until = 0;
    lk_ring = Array.make c.nc_inflight 0;
    lk_pos = 0;
    lk_n = 0;
  }

let route lk ~send ~bytes ~extra =
  let start = if lk.lk_busy_until > send then lk.lk_busy_until else send in
  (* In-flight window: stall behind the delivery of the message
     [bound] places ahead. *)
  let start =
    if lk.lk_n < Array.length lk.lk_ring then start
    else
      let oldest = lk.lk_ring.(lk.lk_pos) in
      if oldest > start then oldest else start
  in
  let tx = int_of_float (lk.lk_cpb *. float_of_int bytes) in
  lk.lk_busy_until <- start + tx;
  let delivery = start + tx + lk.lk_lat_c + extra in
  lk.lk_ring.(lk.lk_pos) <- delivery;
  lk.lk_pos <- (if lk.lk_pos + 1 = Array.length lk.lk_ring then 0 else lk.lk_pos + 1);
  if lk.lk_n < Array.length lk.lk_ring then lk.lk_n <- lk.lk_n + 1;
  delivery

(* ------------------------------------------------------------------ *)
(* Outboxes *)

let k_req = 0
let k_resp = 1
let k_gossip = 2
let k_nack = 3

type msgbuf = {
  mutable mb_n : int;
  mutable mb_kind : int array;
  mutable mb_dst : int array;
  mutable mb_a : int array;
  mutable mb_b : int array;
  mutable mb_t : int array;
}

let mb_create () =
  {
    mb_n = 0;
    mb_kind = Array.make 64 0;
    mb_dst = Array.make 64 0;
    mb_a = Array.make 64 0;
    mb_b = Array.make 64 0;
    mb_t = Array.make 64 0;
  }

let grow a = Array.append a (Array.make (Array.length a) 0)

let mb_push b ~kind ~dst ~a ~b:bb ~t =
  if b.mb_n = Array.length b.mb_kind then begin
    b.mb_kind <- grow b.mb_kind;
    b.mb_dst <- grow b.mb_dst;
    b.mb_a <- grow b.mb_a;
    b.mb_b <- grow b.mb_b;
    b.mb_t <- grow b.mb_t
  end;
  let i = b.mb_n in
  b.mb_kind.(i) <- kind;
  b.mb_dst.(i) <- dst;
  b.mb_a.(i) <- a;
  b.mb_b.(i) <- bb;
  b.mb_t.(i) <- t;
  b.mb_n <- i + 1

let mb_clear b = b.mb_n <- 0
