(* The machine role of the service plane, shared by [Plane.run]
   (standalone box) and [Fleet.run] (N machines behind a balancer).
   See exec.mli for the contract; the worker state machines below are
   the closureiters-style flat compilation from PR 6, moved here
   verbatim so the standalone path stays byte-identical and
   allocation-free. *)

open Iw_kernel

type backend =
  | Fiber_exec
  | Virtine_exec of { vconfig : Iw_virtine.Wasp.config; pool : int }

let backend_name = function Fiber_exec -> "fiber" | Virtine_exec _ -> "virtine"

type mode =
  | Standalone of Sched.semaphore array
  | Fleet of { fm_tx_c : int; fm_respond : reply:int -> unit }

(* Max requests a worker drains per doorbell wake (Fifo only). *)
let batch_k = 8

(* [w_state] values: *)
let st_start = 0 (* first activation: wait on the doorbell *)

let st_pop = 1 (* own one doorbell count: pop and execute *)
let st_staged = 2 (* sem cost paid: settle the lease, execute *)
let st_vwork = 3 (* virtine overhead paid: run the body *)
let st_done = 4 (* body finished: account and complete *)
let st_replied = 5 (* reply posted: finish bookkeeping *)
let st_bcast = 6 (* stop: posting every doorbell in turn *)
let st_tx = 7 (* fleet: serialization paid, hand off the response *)
let st_unhang = 8 (* clocked hang served: clear the flag, resume *)

type worker = {
  w_id : int;
  w_fl : Sched.flat;
  mutable w_state : int;
  mutable w_req : int;  (* arena index under execution *)
  mutable w_start : int;  (* cycle execution started *)
  mutable w_resp : int;  (* fleet: reply handle awaiting tx *)
  w_scratch : int array;  (* leased arena indices (batched drain) *)
  mutable w_sc_n : int;
  mutable w_sc_i : int;
  mutable w_bc : int;  (* stop-broadcast cursor *)
  mutable w_hung : bool;  (* injected hang: not draining its queue *)
}

type t = {
  ex_k : Sched.t;
  ex_workers : int;
  ex_order : Squeue.order;
  ex_backend : backend;
  ex_work_us : float;
  ex_work_c : int;
  ex_mode : mode;
  ex_queues : Squeue.t array;
  ex_doorbells : Sched.semaphore array;
  ex_disp : Dispatch.t;
  ex_h_queue : Hist.t array;
  ex_h_service : Hist.t array;
  ex_h_total : Hist.t array;
  ex_arena : Request_arena.t;
  ex_wasp : Iw_virtine.Wasp.t option;
  ex_admitted : int ref;
  ex_completed : int ref;
  ex_busy : int ref;
  ex_gen_done : bool ref;
  ex_stopping : bool ref;
  mutable ex_on_stop : unit -> unit;
  (* Service-level chaos (ISSUE 9).  The plan is the one ambient at
     creation; [ex_hang_armed] caches the arming check so the
     unarmed hot path costs one immediate-bool test.  Machine-kernel
     code only touches the (mutable) plan stream when the hang kind
     is armed, which the fleet forces to single-domain execution. *)
  ex_plan : Iw_faults.Plan.t;
  ex_hang_armed : bool;
  ex_perm_ok : bool;  (* permanent hangs allowed (fleet only) *)
  mutable ex_slow_x1000 : int;  (* brownout work multiplier, 1000 = 1x *)
  ex_demand : Workload.demand;
  ex_demand_seed : int;
  ex_demand_scale : float;  (* fleet: 1/speed, matching work_us *)
  ex_h_corr : Hist.t;  (* coordinated-omission-corrected sojourn *)
  ex_steals : int ref;
  mutable ex_wd_stop : unit -> unit;
  ex_ws : worker array;
}

(* Batched drain (Fifo only): pop up to [batch_k - 1] extra requests
   now, leased so length probes still see them, and consume their
   doorbell counts one by one between executions — byte-identical to
   popping them one at a time.  Priority queues drain per-item: a
   high-priority arrival during execution must still overtake a
   queued low one. *)
let stage_extras t w =
  w.w_sc_n <- 0;
  w.w_sc_i <- 0;
  match t.ex_order with
  | Squeue.Priority -> ()
  | Squeue.Fifo ->
      let q = t.ex_queues.(w.w_id) and db = t.ex_doorbells.(w.w_id) in
      while
        w.w_sc_n < batch_k - 1
        && Sched.sem_value db > w.w_sc_n
        && (let v = Squeue.lease_pop q in
            v >= 0
            && begin
                 w.w_scratch.(w.w_sc_n) <- v;
                 w.w_sc_n <- w.w_sc_n + 1;
                 true
               end)
      do
        ()
      done

(* The cycles one request body costs this worker right now: the
   arena's per-request demand when one was drawn ([Dfixed] leaves the
   slot at -1), scaled by the brownout multiplier.  The default path
   (-1 demand, x1000 = 1000) reproduces the historical grant
   exactly. *)
let[@inline] work_grant t v =
  let d = Request_arena.demand t.ex_arena v in
  let base = if d >= 0 then d else t.ex_work_c in
  if t.ex_slow_x1000 = 1000 then base else base * t.ex_slow_x1000 / 1000

let rec w_activation t w =
  let k = t.ex_k in
  if w.w_state = st_start then begin
    w.w_state <- st_pop;
    Sched.flat_sem_wait k w.w_fl t.ex_doorbells.(w.w_id)
  end
  else if w.w_state = st_pop then begin
    (* Hang injection: drawn only with work waiting (an idle worker
       "hanging" is unobservable), before the pop so no request or
       lease is held while hung. *)
    if
      t.ex_hang_armed
      && (not w.w_hung)
      && (not (Squeue.is_empty t.ex_queues.(w.w_id)))
      && Iw_faults.Plan.fire t.ex_plan (Sched.obs k)
           ~kind:Iw_faults.Plan.Worker_hang ~cpu:w.w_id ~ts:(Sched.now k)
    then begin
      w.w_hung <- true;
      if t.ex_perm_ok && Iw_faults.Plan.draw_hang_permanent t.ex_plan then
        (* Permanent: the worker is gone; recovery is the watchdog's
           job.  Only allowed in fleet mode — a standalone plane's
           stop protocol needs every admitted request completed. *)
        Sched.flat_exit k w.w_fl
      else begin
        w.w_state <- st_unhang;
        Sched.flat_sleep k w.w_fl (Iw_faults.Plan.hang_cycles t.ex_plan)
      end
    end
    else begin
      let v = Squeue.pop_idx t.ex_queues.(w.w_id) in
      if v >= 0 then begin
        stage_extras t w;
        start_exec t w v
      end
      else if !(t.ex_stopping) then Sched.flat_exit k w.w_fl
      else Sched.flat_sem_wait k w.w_fl t.ex_doorbells.(w.w_id)
    end
  end
  else if w.w_state = st_unhang then begin
    w.w_hung <- false;
    w.w_state <- st_pop;
    w_activation t w
  end
  else if w.w_state = st_staged then begin
    Squeue.settle t.ex_queues.(w.w_id);
    let v = w.w_scratch.(w.w_sc_i) in
    w.w_sc_i <- w.w_sc_i + 1;
    start_exec t w v
  end
  else if w.w_state = st_vwork then begin
    w.w_state <- st_done;
    Sched.flat_work k w.w_fl (work_grant t w.w_req)
  end
  else if w.w_state = st_done then finish_exec t w
  else if w.w_state = st_replied then after_reply t w
  else if w.w_state = st_tx then begin
    (match t.ex_mode with
    | Fleet f -> f.fm_respond ~reply:w.w_resp
    | Standalone _ -> assert false);
    w.w_resp <- -1;
    next_item t w
  end
  else if w.w_state = st_bcast then begin
    if w.w_bc < t.ex_workers then begin
      let i = w.w_bc in
      w.w_bc <- i + 1;
      Sched.flat_sem_post t.ex_k w.w_fl t.ex_doorbells.(i)
    end
    else next_item t w
  end
  else assert false

(* Begin executing arena slot [v]: record queue wait, then route the
   body through the backend — fiber = one work grant; virtine =
   overhead (spawn latency above the body) then work. *)
and start_exec t w v =
  let k = t.ex_k in
  let start = Sched.now k in
  w.w_req <- v;
  w.w_start <- start;
  Hist.record t.ex_h_queue.(w.w_id) (start - Request_arena.arrival t.ex_arena v);
  match t.ex_backend with
  | Fiber_exec ->
      w.w_state <- st_done;
      Sched.flat_work k w.w_fl (work_grant t v)
  | Virtine_exec _ ->
      let w_ = match t.ex_wasp with Some w_ -> w_ | None -> assert false in
      let plat = Sched.platform k in
      let now_us = Iw_hw.Platform.us_of_cycles plat start in
      let lat_us = Iw_virtine.Wasp.call_at w_ ~now_us ~work_us:t.ex_work_us in
      w.w_state <- st_vwork;
      Sched.flat_overhead k w.w_fl
        (max 0 (Iw_hw.Platform.cycles_of_us plat lat_us - t.ex_work_c))

and finish_exec t w =
  let k = t.ex_k in
  let obs = Sched.obs k in
  let fin = Sched.now k in
  t.ex_busy := !(t.ex_busy) + (fin - w.w_start);
  Hist.record t.ex_h_service.(w.w_id) (fin - w.w_start);
  Hist.record t.ex_h_total.(w.w_id) (fin - Request_arena.arrival t.ex_arena w.w_req);
  incr t.ex_completed;
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Service_completions;
  let tr = obs.Iw_obs.Obs.trace in
  if Iw_obs.Trace.enabled tr then
    Iw_obs.Trace.span tr ~name:"service:exec" ~cat:"service" ~cpu:w.w_id
      ~ts:w.w_start ~dur:(fin - w.w_start) ();
  let it = Request_arena.intended t.ex_arena w.w_req in
  if it >= 0 then Hist.record t.ex_h_corr (fin - it);
  let r = Request_arena.reply t.ex_arena w.w_req in
  Request_arena.free t.ex_arena w.w_req;
  w.w_req <- -1;
  match t.ex_mode with
  | Standalone replies ->
      if r >= 0 then begin
        w.w_state <- st_replied;
        Sched.flat_sem_post k w.w_fl replies.(r)
      end
      else after_reply t w
  | Fleet f ->
      (* Cross-machine request tracing: [r] is the front tier's
         request id, so this step stitches the worker's span into the
         request's fleet-wide flow. *)
      if r >= 0 && Iw_obs.Trace.flows_enabled tr then
        Iw_obs.Trace.flow tr ~name:"req" ~phase:Iw_obs.Trace.flow_step ~id:r
          ~cpu:w.w_id ~ts:fin ();
      w.w_resp <- r;
      w.w_state <- st_tx;
      Sched.flat_overhead k w.w_fl f.fm_tx_c

and after_reply t w =
  if
    !(t.ex_gen_done)
    && !(t.ex_completed) = !(t.ex_admitted)
    && not !(t.ex_stopping)
  then begin
    t.ex_stopping := true;
    t.ex_on_stop ();
    t.ex_wd_stop ();
    w.w_bc <- 0;
    w.w_state <- st_bcast;
    w_activation t w
  end
  else next_item t w

and next_item t w =
  if w.w_sc_i < w.w_sc_n then begin
    (* A staged request: its doorbell count is still outstanding, so
       consume it now at the uncontended cost — when the coroutine
       worker looped back to sem_wait here, the count was >= 1. *)
    w.w_state <- st_staged;
    Sched.flat_sem_take t.ex_k w.w_fl t.ex_doorbells.(w.w_id)
  end
  else begin
    w.w_sc_n <- 0;
    w.w_sc_i <- 0;
    w.w_state <- st_pop;
    Sched.flat_sem_wait t.ex_k w.w_fl t.ex_doorbells.(w.w_id)
  end

(* Recovery one layer up from a hung worker: the watchdog scans from
   sim-timer context, and every queued request it finds behind a hung
   worker is re-pushed onto the shortest live peer's queue (peer
   stealing, counted).  Re-pushing appends at the tail, so a steal
   trades strict FIFO order for liveness — exactly the price the real
   recovery pays. *)
let watchdog_scan t =
  let k = t.ex_k in
  let obs = Sched.obs k in
  let ctr = obs.Iw_obs.Obs.counters in
  let now = Sched.now k in
  for i = 0 to t.ex_workers - 1 do
    let w = t.ex_ws.(i) in
    if w.w_hung && not (Squeue.is_empty t.ex_queues.(i)) then begin
      Iw_obs.Counter.incr ctr Iw_obs.Counter.Watchdog_fire;
      let tr = obs.Iw_obs.Obs.trace in
      if Iw_obs.Trace.enabled tr then
        Iw_obs.Trace.instant tr ~name:"recover:steal" ~cat:"service" ~cpu:i
          ~ts:now ();
      let go = ref true in
      while !go do
        let v = Squeue.pop_idx t.ex_queues.(i) in
        if v < 0 then go := false
        else begin
          let best = ref (-1) and bestlen = ref max_int in
          for j = 0 to t.ex_workers - 1 do
            if j <> i && not t.ex_ws.(j).w_hung then begin
              let l = Squeue.length t.ex_queues.(j) in
              if l < !bestlen then begin
                bestlen := l;
                best := j
              end
            end
          done;
          let hi = Request_arena.is_hi t.ex_arena v in
          if !best >= 0 && Squeue.try_push t.ex_queues.(!best) ~hi v then begin
            incr t.ex_steals;
            Iw_obs.Counter.incr ctr Iw_obs.Counter.Peer_steal;
            Sched.sem_signal k t.ex_doorbells.(!best)
          end
          else begin
            (* No live peer with room: put it back, retry next tick. *)
            ignore (Squeue.try_push t.ex_queues.(i) ~hi v);
            go := false
          end
        end
      done
    end
  done

let create ~k ?(prefix = "serve") ?(watchdog = true)
    ?(demand = Workload.Dfixed) ?(demand_seed = 0) ?(demand_scale = 1.0)
    ~workers ~order ~queue_cap ~backend ~work_us ~policy ~dispatch_rng
    ~wasp_seed ~mode () =
  Workload.validate_demand demand;
  let plat = Sched.platform k in
  let work_c = Iw_hw.Platform.cycles_of_us plat work_us in
  let queues =
    Array.init workers (fun _ -> Squeue.create ~order ~cap:queue_cap)
  in
  let doorbells = Array.init workers (fun _ -> Sched.semaphore ~init:0) in
  let disp = Dispatch.create policy ~rng:dispatch_rng in
  let h_queue = Array.init workers (fun _ -> Hist.create ()) in
  let h_service = Array.init workers (fun _ -> Hist.create ()) in
  let h_total = Array.init workers (fun _ -> Hist.create ()) in
  (* In-flight bound: every queue full plus one executing per worker,
     plus one being submitted; closed loops are additionally bounded
     by the client count.  The arena doubles if this guess is low. *)
  let arena = Request_arena.create ~cap:((workers * (queue_cap + 1)) + 1) in
  let wasp =
    match backend with
    | Virtine_exec { vconfig; pool } ->
        Some
          (Iw_virtine.Wasp.create ~obs:(Sched.obs k) ~seed:wasp_seed
             ~pool_size:pool vconfig)
    | Fiber_exec -> None
  in
  let plan = Iw_faults.Plan.ambient () in
  let hang_armed = Iw_faults.Plan.armed plan Iw_faults.Plan.Worker_hang in
  let t =
    {
      ex_k = k;
      ex_workers = workers;
      ex_order = order;
      ex_backend = backend;
      ex_work_us = work_us;
      ex_work_c = work_c;
      ex_mode = mode;
      ex_queues = queues;
      ex_doorbells = doorbells;
      ex_disp = disp;
      ex_h_queue = h_queue;
      ex_h_service = h_service;
      ex_h_total = h_total;
      ex_arena = arena;
      ex_wasp = wasp;
      ex_admitted = ref 0;
      ex_completed = ref 0;
      ex_busy = ref 0;
      ex_gen_done = ref false;
      ex_stopping = ref false;
      ex_on_stop = (fun () -> ());
      ex_plan = plan;
      ex_hang_armed = hang_armed;
      ex_perm_ok = (match mode with Fleet _ -> true | Standalone _ -> false);
      ex_slow_x1000 = 1000;
      ex_demand = demand;
      ex_demand_seed = demand_seed;
      ex_demand_scale = demand_scale;
      ex_h_corr = Hist.create ();
      ex_steals = ref 0;
      ex_wd_stop = (fun () -> ());
      ex_ws =
        Array.init workers (fun w ->
            {
              w_id = w;
              w_fl =
                Sched.spawn_flat k
                  ~spec:
                    {
                      Sched.sp_name = Printf.sprintf "%s-w%d" prefix w;
                      sp_cpu = Some w;
                      sp_fp = false;
                      sp_rt = false;
                    }
                  ();
              w_state = st_start;
              w_req = -1;
              w_start = 0;
              w_resp = -1;
              w_scratch = Array.make (batch_k - 1) (-1);
              w_sc_n = 0;
              w_sc_i = 0;
              w_bc = 0;
              w_hung = false;
            });
    }
  in
  Array.iter
    (fun w -> Sched.set_flat_step w.w_fl (fun () -> w_activation t w))
    t.ex_ws;
  (* The hang watchdog: a periodic sim timer, armed only when the
     plan can actually hang a worker, so unfaulted runs never see the
     timer at all.  Like the plane's sampler, it is disarmed at stop
     (an armed periodic timer would keep a drained standalone sim
     alive forever). *)
  if hang_armed && watchdog then begin
    let sim = Sched.sim k in
    let tm = Iw_engine.Sim.timer sim in
    let period = max 1 (Iw_faults.Plan.hang_cycles plan / 4) in
    let rec fire () =
      watchdog_scan t;
      Iw_engine.Sim.arm_after sim tm period fire
    in
    Iw_engine.Sim.arm_after sim tm period fire;
    t.ex_wd_stop <- (fun () -> Iw_engine.Sim.disarm sim tm)
  end;
  t

let try_enqueue t ~intended ~hi ~arrival ~reply =
  let qi = Dispatch.pick_queues t.ex_disp t.ex_queues in
  let demand =
    match t.ex_demand with
    | Workload.Dfixed -> -1
    | d ->
        (* Hash key: the front tier's request id in a fleet (so a
           retried or hedged copy of one request costs the same on
           every machine), the local admission sequence otherwise. *)
        let id =
          match t.ex_mode with
          | Fleet _ when reply >= 0 -> reply
          | _ -> Request_arena.allocs t.ex_arena
        in
        let us =
          Workload.demand_us d ~seed:t.ex_demand_seed ~id *. t.ex_demand_scale
        in
        max 1 (Iw_hw.Platform.cycles_of_us (Sched.platform t.ex_k) us)
  in
  let idx = Request_arena.alloc ~demand ~intended t.ex_arena ~arrival ~hi ~reply in
  if Squeue.try_push t.ex_queues.(qi) ~hi idx then begin
    incr t.ex_admitted;
    let ctr = (Sched.obs t.ex_k).Iw_obs.Obs.counters in
    Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_admitted;
    if hi then Iw_obs.Counter.incr ctr Iw_obs.Counter.Service_hi_prio;
    qi
  end
  else begin
    Request_arena.free t.ex_arena idx;
    -1
  end

let doorbell t i = t.ex_doorbells.(i)
let doorbells t = t.ex_doorbells

let depth t =
  let d = ref 0 in
  for i = 0 to t.ex_workers - 1 do
    d := !d + Squeue.length t.ex_queues.(i)
  done;
  !d

let workers t = t.ex_workers
let admitted_ref t = t.ex_admitted
let completed_ref t = t.ex_completed
let busy_cycles t = !(t.ex_busy)
let gen_done_ref t = t.ex_gen_done
let stopping_ref t = t.ex_stopping
let set_on_stop t f = t.ex_on_stop <- f
let h_queue t = t.ex_h_queue
let h_service t = t.ex_h_service
let h_total t = t.ex_h_total
let h_corrected t = t.ex_h_corr
let arena_capacity t = Request_arena.capacity t.ex_arena
let arena_grows t = Request_arena.grows t.ex_arena
let wasp t = t.ex_wasp
let steals t = !(t.ex_steals)
let hung t =
  let n = ref 0 in
  Array.iter (fun w -> if w.w_hung then incr n) t.ex_ws;
  !n

let set_slowdown t x1000 = t.ex_slow_x1000 <- max 1 x1000
let slowdown t = t.ex_slow_x1000
let stop_watchdog t = t.ex_wd_stop ()
