(* Fleet serving: N machines behind a balancing front tier.  See
   fleet.mli for the model and the determinism argument. *)

open Iw_engine
open Iw_kernel
module Plan = Iw_faults.Plan
module Counter = Iw_obs.Counter

type mspec = {
  ms_name : string;
  ms_os : Plane.os;
  ms_plat : Iw_hw.Platform.t;
  ms_workers : int;
  ms_speed : float;
}

let knl_spec ?(workers = 8) () =
  {
    ms_name = "knl";
    ms_os = Plane.Nk;
    ms_plat = Iw_hw.Platform.knl;
    ms_workers = workers;
    ms_speed = 1.0;
  }

let server_spec ?(workers = 4) () =
  {
    ms_name = "srv";
    ms_os = Plane.Linux;
    ms_plat = Iw_hw.Platform.server_2x12;
    ms_workers = workers;
    ms_speed = 2.5;
  }

type config = {
  fc_machines : mspec array;
  fc_workload : Workload.spec;
  fc_policy : Dispatch.policy;
  fc_local_policy : Dispatch.policy;
  fc_order : Squeue.order;
  fc_queue_cap : int;
  fc_backend : Exec.backend;
  fc_work_us : float;
  fc_hi_frac : float;
  fc_net : Net.config;
  fc_gossip_us : float;
  fc_rto_us : float;
  fc_max_retries : int;
  fc_eject_streak : int;
  fc_eject_us : float;
  fc_sample_us : float;  (* telemetry period; 0 = ambient Series period *)
  fc_slo_us : float;  (* end-to-end latency SLO; 0 disables accounting *)
  fc_slo_target : float;  (* good fraction target, e.g. 0.999 *)
  (* Graceful degradation (ISSUE 9).  Every knob defaults to the
     PR 8 behavior so existing goldens cannot move. *)
  fc_watchdog : bool;  (* hang watchdogs + peer stealing on machines *)
  fc_corrupt_retry : bool;  (* re-execute corrupted responses *)
  fc_bw_wjsq : bool;  (* weight wjsq by observed completion rate *)
  fc_hedge_frac : float;  (* hedge at this fraction of the deadline; 0 off *)
  fc_hedge_budget : float;  (* max hedges as a fraction of arrivals *)
  fc_admit : bool;  (* SLO-aware admission control at the front tier *)
  fc_deadline_us : float;  (* per-request deadline (hedging/admission) *)
  fc_demand : Workload.demand;  (* per-request service cost distribution *)
  (* Simulated NIC (ISSUE 10).  Off by default: front->machine frames
     bypass the device and delivery is exactly the PR 7 path. *)
  fc_nic : bool;  (* deliver front->machine traffic through the NIC *)
  fc_nic_mode : Nic_driver.mode;
  fc_itr_us : float;  (* ITR moderation gap in us; 0 = unmoderated *)
  fc_nic_ring : int;  (* RX/TX descriptor count *)
  fc_nic_budget : int;  (* frames per IRQ burst / poll check *)
  fc_nic_poll_us : float;  (* poll-engine period *)
  fc_seed : int;
}

let default () =
  {
    fc_machines = [| knl_spec (); knl_spec () |];
    fc_workload = Workload.Poisson { rps = 100_000.0; duration_us = 50_000.0 };
    fc_policy = Dispatch.Po2;
    fc_local_policy = Dispatch.Po2;
    fc_order = Squeue.Fifo;
    fc_queue_cap = 64;
    fc_backend = Exec.Fiber_exec;
    fc_work_us = 20.0;
    fc_hi_frac = 0.0;
    fc_net = Net.default;
    fc_gossip_us = 50.0;
    fc_rto_us = 4_000.0;
    fc_max_retries = 3;
    fc_eject_streak = 3;
    fc_eject_us = 2_000.0;
    fc_sample_us = 0.0;
    fc_slo_us = 0.0;
    fc_slo_target = 0.999;
    fc_watchdog = true;
    fc_corrupt_retry = true;
    fc_bw_wjsq = false;
    fc_hedge_frac = 0.0;
    fc_hedge_budget = 0.1;
    fc_admit = false;
    fc_deadline_us = 0.0;
    fc_demand = Workload.Dfixed;
    fc_nic = false;
    fc_nic_mode = Nic_driver.Hybrid;
    fc_itr_us = 0.0;
    fc_nic_ring = 256;
    fc_nic_budget = 16;
    fc_nic_poll_us = 1.0;
    fc_seed = 42;
  }

type report = {
  fr_machines : int;
  fr_policy : string;
  fr_local_policy : string;
  fr_backend : string;
  fr_workload : string;
  fr_offered_rps : float;
  fr_duration_us : float;
  fr_ghz : float;
  fr_window_cycles : int;
  fr_windows : int;
  fr_arrivals : int;
  fr_completed : int;
  fr_failed : int;
  fr_retries : int;
  fr_nacks : int;
  fr_net_msgs : int;
  fr_net_drops : int;
  fr_gossip_msgs : int;
  fr_ejects : int;
  fr_elapsed_cycles : int;
  fr_throughput_rps : float;
  fr_utilization : float;
  fr_total : Hist.t;
  fr_queue : Hist.t;
  fr_service : Hist.t;
  fr_m_names : string array;
  fr_m_completed : int array;
  fr_m_busy : int array;
  fr_m_counters : (string * int) list array;
  fr_slo_good : int;
  fr_slo_total : int;
  fr_hedges : int;
  fr_hedge_wins : int;
  fr_hedge_cancels : int;
  fr_admission_shed : int;
  fr_corrupt_retries : int;
  fr_steals : int;
  fr_brownouts : int;
  (* NIC rollup across machines; all zero when fc_nic is off. *)
  fr_nic_rx : int;
  fr_nic_drops : int;
  fr_nic_irqs : int;
  fr_nic_polls : int;
  fr_nic_empty_polls : int;
  fr_nic_wasted_cycles : int;
  fr_nic_switches : int;
  fr_nic_recovers : int;
  fr_nic_tx : int;
  fr_series : Iw_obs.Series.t option;
}

let us_of_cycles rep c = float_of_int c /. (rep.fr_ghz *. 1e3)
let percentile_us rep h p = us_of_cycles rep (Hist.percentile h p)

(* Front-tier RNG streams live on their own salt so machine-side
   draws (each kernel's own streams) can never perturb arrivals. *)
let rng_salt = 0xF1EE7
let two53 = 9007199254740992.0

(* One machine of the fleet: a full Exec stack on its own kernel,
   plus the front tier's view of it (links, health). *)
type machine = {
  m_spec : mspec;
  m_k : Sched.t;
  m_ex : Exec.t;
  m_sim : Iw_engine.Sim.t;
  m_outbox : Net.msgbuf;
  m_up : Net.link;  (* front -> machine *)
  m_down : Net.link;  (* machine -> front *)
  m_cpu_base : int;  (* global CPU offset for trace identity *)
  mutable m_paused : bool;  (* skip the next window (fault) *)
  mutable m_streak : int;  (* consecutive front-side timeouts *)
  mutable m_ejected_until : int;
  mutable m_slow_until : int;  (* brownout expiry cycle; 0 = full speed *)
}

(* The front tier's request table.  Monotone — slots are never
   recycled, so a late duplicate response can never be misread as a
   different request's.  Memory is linear in arrivals, which a
   bounded-duration run keeps small. *)
type ftab = {
  mutable ft_n : int;
  mutable ft_arrival : int array;
  mutable ft_state : int array;  (* 0 in flight, 1 done, 2 failed *)
  mutable ft_retries : int array;
  mutable ft_machine : int array;
  mutable ft_hmachine : int array;  (* hedge copy's machine; -1 = none *)
  mutable ft_hi : int array;
}

let ftab_create () =
  {
    ft_n = 0;
    ft_arrival = Array.make 1024 0;
    ft_state = Array.make 1024 0;
    ft_retries = Array.make 1024 0;
    ft_machine = Array.make 1024 0;
    ft_hmachine = Array.make 1024 0;
    ft_hi = Array.make 1024 0;
  }

let ftab_alloc ft ~arrival ~hi =
  if ft.ft_n = Array.length ft.ft_arrival then begin
    let g a = Array.append a (Array.make (Array.length a) 0) in
    ft.ft_arrival <- g ft.ft_arrival;
    ft.ft_state <- g ft.ft_state;
    ft.ft_retries <- g ft.ft_retries;
    ft.ft_machine <- g ft.ft_machine;
    ft.ft_hmachine <- g ft.ft_hmachine;
    ft.ft_hi <- g ft.ft_hi
  end;
  let id = ft.ft_n in
  ft.ft_arrival.(id) <- arrival;
  ft.ft_state.(id) <- 0;
  ft.ft_retries.(id) <- 0;
  ft.ft_machine.(id) <- -1;
  ft.ft_hmachine.(id) <- -1;
  ft.ft_hi.(id) <- (if hi then 1 else 0);
  ft.ft_n <- id + 1;
  id

(* A fault plan arming machine-internal kinds (TLB, IPI, virtine,
   worker hangs...) draws from the plan's RNG inside machine kernels,
   which only stays deterministic when machines share the
   coordinator's domain.  Kinds drawn at the front tier or at
   barriers (links, pauses, brownouts, response corruption) are
   coordinator-only and stay parallel-safe. *)
let plan_needs_serial plan =
  Plan.enabled plan
  && List.exists
       (fun k ->
         Plan.armed plan k
         &&
         match k with
         | Plan.Link_drop | Plan.Link_delay | Plan.Machine_pause
         | Plan.Machine_brownout | Plan.Req_corrupt ->
             false
         | _ -> true)
       Plan.all_kinds

let run ?parallel cfg =
  let n = Array.length cfg.fc_machines in
  if n < 1 then invalid_arg "Fleet.run: empty machine array";
  if not (Workload.is_open cfg.fc_workload) then
    invalid_arg "Fleet.run: open-loop workloads only";
  if cfg.fc_max_retries < 0 then invalid_arg "Fleet.run: fc_max_retries < 0";

  (* One fleet clock: the first machine's.  Heterogeneity comes from
     personalities, cost tables, worker counts, and body speed. *)
  let ghz = cfg.fc_machines.(0).ms_plat.Iw_hw.Platform.ghz in
  let plat0 =
    Iw_hw.Platform.with_cores cfg.fc_machines.(0).ms_plat 1
  in
  let cyc us = Iw_hw.Platform.cycles_of_us plat0 us in
  let w_c = Net.lat_cycles cfg.fc_net ~ghz in
  let rto_c = max (w_c + 1) (cyc cfg.fc_rto_us) in
  let eject_c = cyc cfg.fc_eject_us in
  let gossip_c = if cfg.fc_gossip_us > 0.0 then cyc cfg.fc_gossip_us else 0 in

  let front_obs = Iw_obs.Obs.inherit_trace () in
  let fctr = front_obs.Iw_obs.Obs.counters in
  let tr = front_obs.Iw_obs.Obs.trace in
  let tracing = Iw_obs.Trace.enabled tr in
  if Iw_obs.Trace.flows_enabled tr then Iw_obs.Trace.new_flow_scope tr;
  let plan = Plan.ambient () in
  let parallel =
    (match parallel with
    | Some p -> p
    | None -> Domain.is_main_domain () && not tracing)
    && n > 1 && not tracing
    && not (plan_needs_serial plan)
  in

  (* -------------------------------------------------------------- *)
  (* Machines *)
  let cpu_base = Array.make n 0 in
  for m = 1 to n - 1 do
    cpu_base.(m) <- cpu_base.(m - 1) + cfg.fc_machines.(m - 1).ms_workers
  done;
  (* NIC slots are filled after the machines exist (the driver handler
     needs the delivery function below); the respond closures capture
     the refs now so completions route through the TX ring when the
     device appears. *)
  let nic_slots : Iw_hw.Nic.t option ref array =
    Array.init n (fun _ -> ref None)
  in
  let machines =
    Array.init n (fun m ->
        let spec = cfg.fc_machines.(m) in
        if spec.ms_workers < 1 then invalid_arg "Fleet.run: machine without workers";
        if spec.ms_speed <= 0.0 then invalid_arg "Fleet.run: non-positive speed";
        let plat =
          Iw_hw.Platform.with_cores
            { spec.ms_plat with Iw_hw.Platform.ghz }
            spec.ms_workers
        in
        let personality =
          match spec.ms_os with
          | Plane.Nk -> Os.nautilus plat
          | Plane.Linux -> Os.linux plat
        in
        let k =
          Sched.boot ~seed:(cfg.fc_seed + (101 * (m + 1))) ~personality plat
        in
        let costs = plat.Iw_hw.Platform.costs in
        let tx_c =
          costs.Iw_hw.Platform.atomic_rmw + costs.Iw_hw.Platform.cache_line_remote
        in
        let outbox = Net.mb_create () in
        let sim = Sched.sim k in
        let nic_slot = nic_slots.(m) in
        let respond ~reply =
          match !nic_slot with
          | None ->
              Net.mb_push outbox ~kind:Net.k_resp ~dst:(-1) ~a:reply ~b:m
                ~t:(Iw_engine.Sim.now sim)
          | Some nic ->
              (* Through the TX ring: the frame reaches the outbox when
                 its descriptor finishes serializing (on_tx below).  A
                 full ring loses the response; the front tier's RTO
                 retry is the recovery, one layer up. *)
              ignore (Iw_hw.Nic.tx_push nic ~a:reply ~b:m)
        in
        let dispatch_rng =
          Rng.create ~seed:((cfg.fc_seed + (7919 * (m + 1))) lxor rng_salt)
        in
        let ex =
          Exec.create ~k
            ~prefix:(Printf.sprintf "m%d-%s" m spec.ms_name)
            ~watchdog:cfg.fc_watchdog ~demand:cfg.fc_demand
              (* one fleet-wide demand seed: a request costs the same
                 cycles wherever a retry or hedge lands it *)
            ~demand_seed:(cfg.fc_seed + 23)
            ~demand_scale:(1.0 /. spec.ms_speed)
            ~workers:spec.ms_workers ~order:cfg.fc_order
            ~queue_cap:cfg.fc_queue_cap ~backend:cfg.fc_backend
            ~work_us:(cfg.fc_work_us /. spec.ms_speed)
            ~policy:cfg.fc_local_policy ~dispatch_rng
            ~wasp_seed:(cfg.fc_seed + 17 + (1000 * (m + 1)))
            ~mode:(Exec.Fleet { fm_tx_c = tx_c; fm_respond = respond })
            ()
        in
        if gossip_c > 0 then begin
          let rec tick () =
            Net.mb_push outbox ~kind:Net.k_gossip ~dst:(-1) ~a:(Exec.depth ex)
              ~b:m ~t:(Iw_engine.Sim.now sim);
            Iw_engine.Sim.schedule_after_unit sim gossip_c tick
          in
          Iw_engine.Sim.schedule_unit sim ~at:gossip_c tick
        end;
        {
          m_spec = spec;
          m_k = k;
          m_ex = ex;
          m_sim = sim;
          m_outbox = outbox;
          m_up = Net.link cfg.fc_net ~ghz;
          m_down = Net.link cfg.fc_net ~ghz;
          m_cpu_base = cpu_base.(m);
          m_paused = false;
          m_streak = 0;
          m_ejected_until = 0;
          m_slow_until = 0;
        })
  in

  (* -------------------------------------------------------------- *)
  (* Front tier *)
  let fsim = Iw_engine.Sim.create ~seed:(cfg.fc_seed lxor 0xF401) () in
  let base = Rng.create ~seed:(cfg.fc_seed lxor rng_salt) in
  let arrival_rng = Rng.split base in
  let balancer_rng = Rng.split base in
  let prio_rng = Rng.split base in
  let bdisp = Dispatch.create cfg.fc_policy ~rng:balancer_rng in
  let front_outbox = Net.mb_create () in
  let view = Array.make n 0 in
  let weights =
    Array.map
      (fun s -> max 1 (int_of_float (float_of_int s.ms_workers *. s.ms_speed *. 16.0)))
      cfg.fc_machines
  in
  let ft = ftab_create () in

  let arrivals = ref 0 in
  let completed = ref 0 in
  let failed = ref 0 in
  let retries = ref 0 in
  let nacks = ref 0 in
  let net_msgs = ref 0 in
  let net_drops = ref 0 in
  let gossip_msgs = ref 0 in
  let ejects = ref 0 in
  let outstanding = ref 0 in
  let gen_done = ref false in
  let h_e2e = Hist.create () in

  (* SLO accounting (off unless fc_slo_us > 0, so default runs keep
     their goldens): a completion is good iff its end-to-end latency
     met the bound; a failed request (retries exhausted) counts
     against the SLO with no good side. *)
  let slo_c = if cfg.fc_slo_us > 0.0 then cyc cfg.fc_slo_us else 0 in
  let slo_good = ref 0 in
  let slo_total = ref 0 in

  (* ---- graceful degradation state (all inert at the defaults) ---- *)
  let deadline_c = if cfg.fc_deadline_us > 0.0 then cyc cfg.fc_deadline_us else 0 in
  let hedge_c =
    if cfg.fc_hedge_frac > 0.0 && deadline_c > 0 then
      max 1 (int_of_float (float_of_int deadline_c *. cfg.fc_hedge_frac))
    else 0
  in
  let admit_on = cfg.fc_admit && deadline_c > 0 in
  let corrupt_armed = Plan.enabled plan && Plan.armed plan Plan.Req_corrupt in
  let brownout_armed = Plan.enabled plan && Plan.armed plan Plan.Machine_brownout in
  (* hedge copies carry a sentinel attempt so machine nacks for them
     never feed the retry state machine *)
  let hedge_att = 0x3FFFFF in
  let hedges = ref 0 in
  let hedge_wins = ref 0 in
  let hedge_cancels = ref 0 in
  let admission_shed = ref 0 in
  let corrupt_retries = ref 0 in
  let brownouts = ref 0 in
  (* EWMA of end-to-end sojourn, the admission controller's service
     time estimate; seeded with the nominal body cost *)
  let ewma_svc_c = ref (max 1 (cyc cfg.fc_work_us)) in
  (* brownout-aware wjsq: a leaky integrator of each machine's
     completions per window — a machine running at 1/3 speed earns
     1/3 the weight, whatever its gossiped depth claims *)
  let obs_w = Array.make n 0 in
  let prev_comp = Array.make n 0 in
  let mweight m = if cfg.fc_bw_wjsq then max 1 obs_w.(m) else weights.(m) in

  let cand = Array.make n 0 in
  let pick_machine now =
    let nc = ref 0 in
    for m = 0 to n - 1 do
      if machines.(m).m_ejected_until <= now then begin
        cand.(!nc) <- m;
        incr nc
      end
    done;
    if !nc = 0 then begin
      (* everyone ejected: no choice but to try them all again *)
      for m = 0 to n - 1 do
        cand.(m) <- m
      done;
      nc := n
    end;
    let j =
      Dispatch.pick bdisp ~n:!nc
        ~len:(fun j -> view.(cand.(j)))
        ~weight:(fun j -> mweight cand.(j))
    in
    cand.(j)
  in

  let rec send_attempt id attempt =
    let now = Iw_engine.Sim.now fsim in
    let m = pick_machine now in
    ft.ft_machine.(id) <- m;
    (* The request id keys the Chrome flow: "s" here at the origin,
       "t" at each retry hop, so the front tier anchors the causal
       chain the machine-side steps extend. *)
    if Iw_obs.Trace.flows_enabled tr then
      Iw_obs.Trace.flow tr ~name:"req"
        ~phase:
          (if attempt = 0 then Iw_obs.Trace.flow_start
           else Iw_obs.Trace.flow_step)
        ~id ~cpu:(-1) ~ts:now ();
    Net.mb_push front_outbox ~kind:Net.k_req ~dst:m ~a:id
      ~b:((attempt lsl 1) lor ft.ft_hi.(id))
      ~t:now;
    Iw_engine.Sim.schedule_unit fsim ~at:(now + rto_c) (fun () ->
        on_timeout id attempt);
    if hedge_c > 0 && attempt = 0 then
      Iw_engine.Sim.schedule_unit fsim ~at:(now + hedge_c) (fun () ->
          maybe_hedge id)
  and maybe_hedge id =
    (* Hedge once per request, against a global budget (a fraction of
       arrivals so far), onto a live machine other than the primary.
       The hedge copy gets no RTO of its own: the primary's timeout
       still guards the request. *)
    if
      ft.ft_state.(id) = 0
      && ft.ft_hmachine.(id) < 0
      && !hedges < int_of_float (cfg.fc_hedge_budget *. float_of_int !arrivals)
    then begin
      let now = Iw_engine.Sim.now fsim in
      let primary = ft.ft_machine.(id) in
      let nc = ref 0 in
      for m = 0 to n - 1 do
        if m <> primary && machines.(m).m_ejected_until <= now then begin
          cand.(!nc) <- m;
          incr nc
        end
      done;
      if !nc > 0 then begin
        let j =
          Dispatch.pick bdisp ~n:!nc
            ~len:(fun j -> view.(cand.(j)))
            ~weight:(fun j -> mweight cand.(j))
        in
        let m = cand.(j) in
        ft.ft_hmachine.(id) <- m;
        incr hedges;
        Counter.incr fctr Counter.Hedge_sent;
        if tracing then
          Iw_obs.Trace.instant tr ~name:"recover:hedge" ~cat:"service"
            ~cpu:(-1) ~ts:now ();
        Net.mb_push front_outbox ~kind:Net.k_req ~dst:m ~a:id
          ~b:((hedge_att lsl 1) lor ft.ft_hi.(id))
          ~t:now
      end
    end
  and retry id =
    if ft.ft_retries.(id) >= cfg.fc_max_retries then begin
      ft.ft_state.(id) <- 2;
      incr failed;
      if slo_c > 0 then incr slo_total;
      Counter.incr fctr Counter.Service_failed;
      decr outstanding
    end
    else begin
      ft.ft_retries.(id) <- ft.ft_retries.(id) + 1;
      incr retries;
      Counter.incr fctr Counter.Net_retries;
      send_attempt id ft.ft_retries.(id)
    end
  and on_timeout id attempt =
    (* Only the newest attempt can time out; a response or nack in
       the meantime either finished the request or already retried. *)
    if ft.ft_state.(id) = 0 && ft.ft_retries.(id) = attempt then begin
      let mc = machines.(ft.ft_machine.(id)) in
      mc.m_streak <- mc.m_streak + 1;
      if cfg.fc_eject_streak > 0 && mc.m_streak >= cfg.fc_eject_streak then begin
        mc.m_ejected_until <- Iw_engine.Sim.now fsim + eject_c;
        mc.m_streak <- 0;
        incr ejects;
        Counter.incr fctr Counter.Machine_ejects
      end;
      retry id
    end
  in
  let complete ~corrupt id m =
    ft.ft_state.(id) <- 1;
    machines.(m).m_streak <- 0;
    incr completed;
    let now = Iw_engine.Sim.now fsim in
    let lat = now - ft.ft_arrival.(id) in
    Hist.record h_e2e lat;
    if deadline_c > 0 then
      ewma_svc_c := !ewma_svc_c + ((lat - !ewma_svc_c) asr 4);
    if slo_c > 0 then begin
      incr slo_total;
      (* an accepted-but-corrupt response is never SLO-good *)
      if (not corrupt) && lat <= slo_c then incr slo_good
    end;
    if ft.ft_hmachine.(id) >= 0 && m = ft.ft_hmachine.(id) then begin
      incr hedge_wins;
      Counter.incr fctr Counter.Hedge_won
    end;
    if Iw_obs.Trace.flows_enabled tr then
      Iw_obs.Trace.flow tr ~name:"req" ~phase:Iw_obs.Trace.flow_finish ~id
        ~cpu:(-1) ~ts:now ();
    decr outstanding
  in
  let on_resp id m =
    if ft.ft_state.(id) = 0 then begin
      if
        corrupt_armed
        && Plan.fire plan front_obs ~kind:Plan.Req_corrupt ~cpu:m
             ~ts:(Iw_engine.Sim.now fsim)
      then begin
        if cfg.fc_corrupt_retry then begin
          (* garbage answer: burn the work and re-execute, bounded by
             the ordinary retry budget *)
          incr corrupt_retries;
          Counter.incr fctr Counter.Corrupt_retry;
          if tracing then
            Iw_obs.Trace.instant tr ~name:"recover:reexec" ~cat:"service"
              ~cpu:(-1) ~ts:(Iw_engine.Sim.now fsim) ();
          retry id
        end
        else complete ~corrupt:true id m
      end
      else complete ~corrupt:false id m
    end
    else if ft.ft_state.(id) = 1 && ft.ft_hmachine.(id) >= 0 then begin
      (* the losing copy of a hedged request coming home late *)
      incr hedge_cancels;
      Counter.incr fctr Counter.Hedge_cancel
    end
  in
  let on_nack id attempt m =
    incr nacks;
    Counter.incr fctr Counter.Net_nacks;
    machines.(m).m_streak <- 0;
    (* a nack proves the machine is alive, just full — retry now
       rather than waiting out the RTO.  A nacked hedge copy just
       dies: the primary attempt still owns the request. *)
    if attempt <> hedge_att && ft.ft_state.(id) = 0 && ft.ft_retries.(id) = attempt
    then retry id
  in

  let g = Workload.gen cfg.fc_workload ~rng:arrival_rng in
  Workload.set_ghz g ghz;
  let draw_hi () =
    cfg.fc_hi_frac > 0.0
    && float_of_int (Rng.raw53 prio_rng) /. two53 < cfg.fc_hi_frac
  in
  let admitted now =
    (not admit_on)
    ||
    (* predicted wait on the least-loaded live machine: gossiped depth
       x EWMA sojourn / workers.  If even the best machine would blow
       the deadline, shed at the door instead of queueing a request
       that is already dead. *)
    let best = ref max_int in
    for m = 0 to n - 1 do
      if machines.(m).m_ejected_until <= now then begin
        let p = view.(m) * !ewma_svc_c / cfg.fc_machines.(m).ms_workers in
        if p < !best then best := p
      end
    done;
    !best = max_int || !best <= deadline_c
  in
  let rec arrive () =
    let now = Iw_engine.Sim.now fsim in
    incr arrivals;
    Counter.incr fctr Counter.Service_arrivals;
    if admitted now then begin
      let id = ftab_alloc ft ~arrival:now ~hi:(draw_hi ()) in
      incr outstanding;
      send_attempt id 0
    end
    else begin
      incr admission_shed;
      Counter.incr fctr Counter.Admission_shed;
      if tracing then
        Iw_obs.Trace.instant tr ~name:"recover:shed" ~cat:"service" ~cpu:(-1)
          ~ts:now ();
      (* a shed request is still an SLO miss: degradation must not
         launder the error budget *)
      if slo_c > 0 then incr slo_total
    end;
    schedule_next ()
  and schedule_next () =
    let at = Workload.next_cycles g in
    if at < 0 then gen_done := true
    else
      Iw_engine.Sim.schedule_unit fsim
        ~at:(max at (Iw_engine.Sim.now fsim))
        arrive
  in
  schedule_next ();

  (* -------------------------------------------------------------- *)
  (* Barrier: route every outbox message in canonical order *)
  let bytes_of kind =
    if kind = Net.k_req then cfg.fc_net.Net.nc_req_bytes
    else if kind = Net.k_gossip then cfg.fc_net.Net.nc_gossip_bytes
    else cfg.fc_net.Net.nc_resp_bytes
  in
  let rx m id hi attempt =
    let mc = machines.(m) in
    let now = Iw_engine.Sim.now mc.m_sim in
    (* Runs inside the machine's window (cpu_base set for it), so
       this step lands on the machine's first worker process — the
       hop that carries the flow across the network boundary. *)
    if Iw_obs.Trace.flows_enabled tr then
      Iw_obs.Trace.flow tr ~name:"req" ~phase:Iw_obs.Trace.flow_step ~id ~cpu:0
        ~ts:now ();
    let qi =
      Exec.try_enqueue mc.m_ex ~intended:(-1) ~hi ~arrival:now ~reply:id
    in
    if qi >= 0 then Sched.sem_signal mc.m_k (Exec.doorbell mc.m_ex qi)
    else begin
      Counter.incr (Sched.counters mc.m_k) Counter.Service_shed;
      Net.mb_push mc.m_outbox ~kind:Net.k_nack ~dst:(-1) ~a:id ~b:attempt ~t:now
    end
  in
  (* Opt-in NIC path: each machine gets a device on its own simulator
     and a driver whose handler is exactly the direct delivery above.
     Frames carry (a = request id, b = packed attempt/hi) — the same
     words the wire message carried. *)
  let nics =
    if not cfg.fc_nic then [||]
    else begin
      let itr_c = if cfg.fc_itr_us > 0.0 then cyc cfg.fc_itr_us else 0 in
      let poll_c = max 1 (cyc cfg.fc_nic_poll_us) in
      let slack_c = cyc 50.0 in
      Array.init n (fun m ->
          let mc = machines.(m) in
          let nic =
            Iw_hw.Nic.create ~obs:(Sched.obs mc.m_k) ~sim:mc.m_sim
              {
                Iw_hw.Nic.nic_ring = cfg.fc_nic_ring;
                nic_itr_cycles = itr_c;
                nic_tx_cycles = Iw_hw.Nic.default.Iw_hw.Nic.nic_tx_cycles;
              }
          in
          Iw_hw.Nic.set_on_tx nic (fun ~a ~b ->
              Net.mb_push mc.m_outbox ~kind:Net.k_resp ~dst:(-1) ~a ~b
                ~t:(Iw_engine.Sim.now mc.m_sim));
          let drv =
            Nic_driver.create ~k:mc.m_k ~nic
              {
                Nic_driver.default with
                Nic_driver.nd_mode = cfg.fc_nic_mode;
                nd_budget = cfg.fc_nic_budget;
                nd_poll_cycles = poll_c;
                nd_slack_cycles = slack_c;
                nd_switch_gap = cyc 4.0;
              }
              ~handler:(fun ~a ~b -> rx m a (b land 1 = 1) (b asr 1))
          in
          nic_slots.(m) := Some nic;
          (nic, drv))
    end
  in
  let route_one src buf i h =
    let kind = buf.Net.mb_kind.(i) in
    let dst = buf.Net.mb_dst.(i) in
    let a = buf.Net.mb_a.(i) in
    let b = buf.Net.mb_b.(i) in
    let t = buf.Net.mb_t.(i) in
    if Plan.enabled plan && Plan.fire plan front_obs ~kind:Plan.Link_drop ~cpu:src ~ts:t
    then begin
      incr net_drops;
      Counter.incr fctr Counter.Net_drops
    end
    else begin
      let extra =
        if
          Plan.enabled plan
          && Plan.fire plan front_obs ~kind:Plan.Link_delay ~cpu:src ~ts:t
        then Plan.net_delay_cycles plan
        else 0
      in
      let link =
        if kind = Net.k_req then machines.(dst).m_up else machines.(src - 1).m_down
      in
      let d = Net.route link ~send:t ~bytes:(bytes_of kind) ~extra in
      (* conservative clamp: never deliver into the closing window *)
      let at = if d < h then h else d in
      incr net_msgs;
      Counter.incr fctr Counter.Net_msgs;
      if kind = Net.k_req then begin
        if cfg.fc_nic then begin
          let nic, _ = nics.(dst) in
          Iw_engine.Sim.schedule_unit machines.(dst).m_sim ~at (fun () ->
              ignore (Iw_hw.Nic.rx_push nic ~a ~b))
        end
        else begin
          let hi = b land 1 = 1 in
          let attempt = b asr 1 in
          Iw_engine.Sim.schedule_unit machines.(dst).m_sim ~at (fun () ->
              rx dst a hi attempt)
        end
      end
      else if kind = Net.k_resp then
        Iw_engine.Sim.schedule_unit fsim ~at (fun () -> on_resp a b)
      else if kind = Net.k_gossip then
        Iw_engine.Sim.schedule_unit fsim ~at (fun () ->
            view.(b) <- a;
            incr gossip_msgs;
            Counter.incr fctr Counter.Gossip_msgs)
      else
        Iw_engine.Sim.schedule_unit fsim ~at (fun () -> on_nack a b (src - 1))
    end
  in
  let bufs = Array.make (n + 1) front_outbox in
  for m = 0 to n - 1 do
    bufs.(m + 1) <- machines.(m).m_outbox
  done;
  let barrier h =
    (* machine pauses draw first, in machine order *)
    if Plan.enabled plan then
      for m = 0 to n - 1 do
        if Plan.fire plan front_obs ~kind:Plan.Machine_pause ~cpu:m ~ts:h then
          machines.(m).m_paused <- true
      done;
    (* brownout draws come after the pause draws so arming this kind
       cannot shift an existing plan's schedule *)
    if brownout_armed then
      for m = 0 to n - 1 do
        let mc = machines.(m) in
        if mc.m_slow_until > 0 && mc.m_slow_until <= h then begin
          mc.m_slow_until <- 0;
          Exec.set_slowdown mc.m_ex 1000;
          if tracing then
            Iw_obs.Trace.instant tr ~name:"recover:brownout-clear"
              ~cat:"service" ~cpu:(-1) ~ts:h ()
        end;
        if Plan.fire plan front_obs ~kind:Plan.Machine_brownout ~cpu:m ~ts:h
        then begin
          let slow_x1000, dur = Plan.draw_brownout plan in
          incr brownouts;
          mc.m_slow_until <- h + dur;
          Exec.set_slowdown mc.m_ex slow_x1000
        end
      done;
    (* observed completion rate per machine: what the brownout-aware
       balancer weighs instead of trusting nominal speed *)
    if cfg.fc_bw_wjsq then
      for m = 0 to n - 1 do
        let c = !(Exec.completed_ref machines.(m).m_ex) in
        let d = c - prev_comp.(m) in
        prev_comp.(m) <- c;
        obs_w.(m) <- obs_w.(m) - (obs_w.(m) asr 3) + d
      done;
    let total = ref 0 in
    Array.iter (fun b -> total := !total + b.Net.mb_n) bufs;
    if !total > 0 then begin
      (* canonical order: send time, then source (front first), then
         per-source submission order — independent of how machine
         domains were scheduled *)
      let items = Array.make !total (0, 0, 0) in
      let pos = ref 0 in
      Array.iteri
        (fun s b ->
          for i = 0 to b.Net.mb_n - 1 do
            items.(!pos) <- (b.Net.mb_t.(i), s, i);
            incr pos
          done)
        bufs;
      Array.sort compare items;
      Array.iter (fun (_, s, i) -> route_one s bufs.(s) i h) items;
      Array.iter Net.mb_clear bufs
    end
  in

  (* -------------------------------------------------------------- *)
  (* Fleet telemetry: one series sampled at conservative-window
     barriers on the coordinator (machines quiescent, their writes
     published by the mutex handoff in parallel mode), so parallel
     and serial fleets sample byte-identical timelines.  Sampling is
     pure reads; with it off the loop below is unchanged, so tables
     and goldens cannot drift (DESIGN §10). *)
  let sample_c =
    let us =
      if cfg.fc_sample_us > 0.0 then cfg.fc_sample_us
      else Iw_obs.Series.period_us ()
    in
    if us > 0.0 then max 1 (cyc us) else 0
  in
  let series =
    if sample_c = 0 then None
    else begin
      let ewin = Hist.window h_e2e in
      (* Burn rate per window: (bad/total) / (1 - target), scaled to
         an integer (x1000) so the CSV stays int-exact.  1000 = burning
         exactly the error budget; above = eating into it. *)
      let pg = ref 0 and pt = ref 0 in
      let burn () =
        let g = !slo_good and t = !slo_total in
        let dg = g - !pg and dt = t - !pt in
        pg := g;
        pt := t;
        if dt <= 0 || cfg.fc_slo_target >= 1.0 then 0
        else
          int_of_float
            (float_of_int (dt - dg) /. float_of_int dt
            /. (1.0 -. cfg.fc_slo_target) *. 1000.0)
      in
      let fixed =
        [
          Iw_obs.Series.dref ~name:"arrivals" arrivals;
          Iw_obs.Series.dref ~name:"completed" completed;
          Iw_obs.Series.dref ~name:"failed" failed;
          Iw_obs.Series.dref ~name:"retries" retries;
          Iw_obs.Series.dref ~name:"nacks" nacks;
          Iw_obs.Series.dref ~name:"net_msgs" net_msgs;
          Iw_obs.Series.dref ~name:"drops" net_drops;
          Iw_obs.Series.dref ~name:"ejects" ejects;
          Iw_obs.Series.dcol ~name:"faults" (fun () ->
              Counter.get fctr Counter.Fault_injected);
          Iw_obs.Series.dref ~name:"slo_good" slo_good;
          Iw_obs.Series.dref ~name:"slo_total" slo_total;
          Iw_obs.Series.col ~name:"burn_x1000" burn;
          Iw_obs.Series.col ~name:"p50_cyc" (fun () ->
              Hist.win_percentile ewin 50.0);
          Iw_obs.Series.col ~name:"p99_cyc" (fun () ->
              Hist.win_percentile ewin 99.0);
        ]
      in
      let per_machine =
        List.concat
          (Array.to_list
             (Array.mapi
                (fun m mc ->
                  [
                    Iw_obs.Series.col ~name:(Printf.sprintf "m%d_depth" m)
                      (fun () -> Exec.depth mc.m_ex);
                    Iw_obs.Series.dcol ~name:(Printf.sprintf "m%d_completed" m)
                      (fun () -> !(Exec.completed_ref mc.m_ex));
                  ])
                machines))
      in
      Some
        (Iw_obs.Series.create ~name:"fleet" ~cols:(fixed @ per_machine)
           ~post:[ (fun () -> Hist.win_advance ewin) ] ())
    end
  in
  let next_sample = ref sample_c in
  let sample_window h =
    match series with
    | None -> ()
    | Some s ->
        if h >= !next_sample then begin
          Iw_obs.Series.sample s ~ts:h;
          next_sample := !next_sample + sample_c;
          while !next_sample <= h do
            next_sample := !next_sample + sample_c
          done
        end
  in

  (* -------------------------------------------------------------- *)
  (* The conservative window loop *)
  let advance_machine mc h =
    if mc.m_paused then mc.m_paused <- false
    else begin
      if tracing then Iw_obs.Trace.set_cpu_base tr mc.m_cpu_base;
      Sched.run ~horizon:h mc.m_k;
      if tracing then Iw_obs.Trace.set_cpu_base tr 0
    end
  in
  let windows = ref 0 in
  let elapsed = ref 0 in
  if not parallel then begin
    while not (!gen_done && !outstanding = 0) do
      let h = !elapsed + w_c in
      Iw_engine.Sim.run fsim ~until:h;
      Array.iter (fun mc -> advance_machine mc h) machines;
      barrier h;
      sample_window h;
      incr windows;
      elapsed := h
    done
  end
  else begin
    (* One domain per machine; the coordinator runs the front tier
       and the barrier.  Commands and completions hand off through a
       mutex, which also publishes each side's writes to the other. *)
    let ctl =
      Array.init n (fun _ ->
          (Mutex.create (), Condition.create (), ref 0, ref false))
    in
    let body m () =
      let mu, cv, cmd, done_ = ctl.(m) in
      let mc = machines.(m) in
      let rec loop () =
        Mutex.lock mu;
        while !cmd = 0 do
          Condition.wait cv mu
        done;
        let c = !cmd in
        cmd := 0;
        Mutex.unlock mu;
        if c > 0 then begin
          Sched.run ~horizon:c mc.m_k;
          Mutex.lock mu;
          done_ := true;
          Condition.signal cv;
          Mutex.unlock mu;
          loop ()
        end
      in
      loop ()
    in
    let domains = Array.init n (fun m -> Domain.spawn (body m)) in
    while not (!gen_done && !outstanding = 0) do
      let h = !elapsed + w_c in
      Iw_engine.Sim.run fsim ~until:h;
      Array.iteri
        (fun m mc ->
          if not mc.m_paused then begin
            let mu, cv, cmd, _ = ctl.(m) in
            Mutex.lock mu;
            cmd := h;
            Condition.signal cv;
            Mutex.unlock mu
          end)
        machines;
      Array.iteri
        (fun m mc ->
          if mc.m_paused then mc.m_paused <- false
          else begin
            let mu, cv, _, done_ = ctl.(m) in
            Mutex.lock mu;
            while not !done_ do
              Condition.wait cv mu
            done;
            done_ := false;
            Mutex.unlock mu
          end)
        machines;
      barrier h;
      sample_window h;
      incr windows;
      elapsed := h
    done;
    Array.iteri
      (fun m _ ->
        let mu, cv, cmd, _ = ctl.(m) in
        Mutex.lock mu;
        cmd := -1;
        Condition.signal cv;
        Mutex.unlock mu)
      machines;
    Array.iter Domain.join domains
  end;

  (* -------------------------------------------------------------- *)
  (* Readout *)
  Array.iter
    (fun (nic, drv) ->
      Nic_driver.stop drv;
      Iw_hw.Nic.stop nic)
    nics;
  let nsum f = Array.fold_left (fun acc nd -> acc + f nd) 0 nics in
  let merge hs =
    let dst = Hist.create () in
    Array.iter (fun h -> Hist.merge_into ~dst h) hs;
    dst
  in
  let q = Hist.create () in
  let s = Hist.create () in
  Array.iter
    (fun mc ->
      Hist.merge_into ~dst:q (merge (Exec.h_queue mc.m_ex));
      Hist.merge_into ~dst:s (merge (Exec.h_service mc.m_ex)))
    machines;
  let duration_us = Workload.duration_us cfg.fc_workload in
  let elapsed_s = Iw_hw.Platform.us_of_cycles plat0 !elapsed /. 1e6 in
  let total_worker_cycles =
    Array.fold_left
      (fun acc mc -> acc + (mc.m_spec.ms_workers * !elapsed))
      0 machines
  in
  let busy =
    Array.fold_left (fun acc mc -> acc + Exec.busy_cycles mc.m_ex) 0 machines
  in
  {
    fr_machines = n;
    fr_policy = Dispatch.name cfg.fc_policy;
    fr_local_policy = Dispatch.name cfg.fc_local_policy;
    fr_backend = Exec.backend_name cfg.fc_backend;
    fr_workload = Workload.describe cfg.fc_workload;
    fr_offered_rps = Workload.offered_rps cfg.fc_workload;
    fr_duration_us = duration_us;
    fr_ghz = ghz;
    fr_window_cycles = w_c;
    fr_windows = !windows;
    fr_arrivals = !arrivals;
    fr_completed = !completed;
    fr_failed = !failed;
    fr_retries = !retries;
    fr_nacks = !nacks;
    fr_net_msgs = !net_msgs;
    fr_net_drops = !net_drops;
    fr_gossip_msgs = !gossip_msgs;
    fr_ejects = !ejects;
    fr_elapsed_cycles = !elapsed;
    fr_throughput_rps =
      (if elapsed_s > 0.0 then float_of_int !completed /. elapsed_s else 0.0);
    fr_utilization =
      (if total_worker_cycles > 0 then
         float_of_int busy /. float_of_int total_worker_cycles
       else 0.0);
    fr_total = h_e2e;
    fr_queue = q;
    fr_service = s;
    fr_m_names =
      Array.mapi (fun m mc -> Printf.sprintf "m%d:%s" m mc.m_spec.ms_name) machines;
    fr_m_completed = Array.map (fun mc -> !(Exec.completed_ref mc.m_ex)) machines;
    fr_m_busy = Array.map (fun mc -> Exec.busy_cycles mc.m_ex) machines;
    fr_m_counters =
      Array.map (fun mc -> Counter.to_list (Sched.counters mc.m_k)) machines;
    fr_slo_good = !slo_good;
    fr_slo_total = !slo_total;
    fr_hedges = !hedges;
    fr_hedge_wins = !hedge_wins;
    fr_hedge_cancels = !hedge_cancels;
    fr_admission_shed = !admission_shed;
    fr_corrupt_retries = !corrupt_retries;
    fr_steals = Array.fold_left (fun acc mc -> acc + Exec.steals mc.m_ex) 0 machines;
    fr_brownouts = !brownouts;
    fr_nic_rx = nsum (fun (nic, _) -> Iw_hw.Nic.rx_pkts nic);
    fr_nic_drops = nsum (fun (nic, _) -> Iw_hw.Nic.rx_drops nic);
    fr_nic_irqs = nsum (fun (nic, _) -> Iw_hw.Nic.irqs nic);
    fr_nic_polls = nsum (fun (_, drv) -> Nic_driver.polls drv);
    fr_nic_empty_polls = nsum (fun (_, drv) -> Nic_driver.empty_polls drv);
    fr_nic_wasted_cycles = nsum (fun (_, drv) -> Nic_driver.wasted_cycles drv);
    fr_nic_switches = nsum (fun (_, drv) -> Nic_driver.switches drv);
    fr_nic_recovers = nsum (fun (_, drv) -> Nic_driver.slack_recovers drv);
    fr_nic_tx = nsum (fun (nic, _) -> Iw_hw.Nic.tx_pkts nic);
    fr_series =
      (match series with
      | Some s ->
          Iw_obs.Series.publish s;
          Some s
      | None -> None);
  }
