(** Dispatch policies: which worker queue an arriving request joins.

    Each policy is a first-class value over queue lengths:

    - [Round_robin]: cyclic, load-oblivious.
    - [Random]: uniform choice from the policy's own RNG stream.
    - [Jsq]: join-shortest-queue, full scan, lowest index wins ties.
    - [Po2]: power-of-two-choices — sample two queues uniformly
      (with replacement), join the shorter; ties keep the first.

    Randomized policies draw only from the [Rng.t] given at
    {!create}, so dispatch decisions are reproducible and independent
    of arrival-process draws. *)

type policy = Round_robin | Random | Jsq | Po2

val all : policy list
val name : policy -> string
val of_string : string -> policy option

type t

val create : policy -> rng:Iw_engine.Rng.t -> t
val policy : t -> policy

val pick : t -> n:int -> len:(int -> int) -> int
(** Choose a queue index in [\[0, n)] given current queue lengths.
    @raise Invalid_argument when [n < 1]. *)

val pick_queues : t -> Squeue.t array -> int
(** {!pick} probing {!Squeue.length} directly — identical draws and
    choices, no closure at the call site.
    @raise Invalid_argument on an empty array. *)
