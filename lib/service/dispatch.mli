(** Dispatch policies: which worker queue an arriving request joins.
    Reused one level up by the fleet balancer, where "queue" is a
    whole machine and lengths come from gossiped depth signals.

    Each policy is a first-class value over queue lengths:

    - [Round_robin]: cyclic, load-oblivious.
    - [Random]: uniform choice from the policy's own RNG stream.
    - [Jsq]: join-shortest-queue, full scan, lowest index wins ties.
    - [Po2]: power-of-two-choices — sample two queues uniformly
      (with replacement), join the shorter; ties keep the first.
    - [Wjsq]: weighted join-shortest-queue — argmin of
      [(len i + 1) / weight i] in exact scaled-integer arithmetic,
      for heterogeneous targets whose capacities differ.

    Randomized policies draw only from the [Rng.t] given at
    {!create}, so dispatch decisions are reproducible and independent
    of arrival-process draws. *)

type policy = Round_robin | Random | Jsq | Po2 | Wjsq

val all : policy list
(** The single-box set (rr/random/jsq/po2) — S3's golden-gated rows;
    [Wjsq] needs heterogeneous targets to differ from [Jsq]. *)

val all_weighted : policy list
(** {!all} plus [Wjsq], for fleet-level enumerations. *)

val name : policy -> string
val of_string : string -> policy option

type t

val create : policy -> rng:Iw_engine.Rng.t -> t
val policy : t -> policy

val pick : ?weight:(int -> int) -> t -> n:int -> len:(int -> int) -> int
(** Choose a queue index in [\[0, n)] given current queue lengths.
    [weight] (default all-1) only affects [Wjsq].
    @raise Invalid_argument when [n < 1]. *)

val pick_queues : t -> Squeue.t array -> int
(** {!pick} probing {!Squeue.length} directly — identical draws and
    choices, no closure at the call site ([Wjsq] over uniform local
    queues degenerates to [Jsq]).
    @raise Invalid_argument on an empty array. *)
