type order = Fifo | Priority

let order_name = function Fifo -> "fifo" | Priority -> "priority"

let order_of_string = function
  | "fifo" -> Some Fifo
  | "priority" | "prio" -> Some Priority
  | _ -> None

(* Both lanes are ring buffers over preallocated int arrays: push and
   pop are O(1) and allocation-free (the old [Queue.t] lanes allocated
   a cell per push).  Elements are request-arena indices, always
   non-negative; [-1] is the empty sentinel on the index-returning
   pops.

   [leased] supports batched draining: a worker may pop several
   requests per doorbell wake and stage them privately, but until a
   staged request actually starts executing it must still count
   against the bound and in [length] — dispatch policies probe queue
   lengths, and a semantics-preserving batch cannot make a queue look
   shorter than its unbatched twin. *)
type t = {
  q_order : order;
  q_cap : int;
  hi_buf : int array;  (** Unused under [Fifo]. *)
  lo_buf : int array;
  mutable hi_head : int;
  mutable hi_n : int;
  mutable lo_head : int;
  mutable lo_n : int;
  mutable leased : int;
  mutable pushed : int;
  mutable dropped : int;
}

let create ~order ~cap =
  if cap < 1 then invalid_arg "Squeue.create: capacity must be >= 1";
  {
    q_order = order;
    q_cap = cap;
    hi_buf = (match order with Priority -> Array.make cap (-1) | Fifo -> [||]);
    lo_buf = Array.make cap (-1);
    hi_head = 0;
    hi_n = 0;
    lo_head = 0;
    lo_n = 0;
    leased = 0;
    pushed = 0;
    dropped = 0;
  }

let order t = t.q_order
let capacity t = t.q_cap
let length t = t.hi_n + t.lo_n + t.leased
let is_empty t = t.hi_n = 0 && t.lo_n = 0
let pushed t = t.pushed
let dropped t = t.dropped
let leased t = t.leased

let[@inline] wrap t i = if i >= t.q_cap then i - t.q_cap else i

let try_push t ~hi x =
  if x < 0 then invalid_arg "Squeue.try_push: negative element";
  if length t >= t.q_cap then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    (match t.q_order with
    | Priority when hi ->
        t.hi_buf.(wrap t (t.hi_head + t.hi_n)) <- x;
        t.hi_n <- t.hi_n + 1
    | Fifo | Priority ->
        t.lo_buf.(wrap t (t.lo_head + t.lo_n)) <- x;
        t.lo_n <- t.lo_n + 1);
    t.pushed <- t.pushed + 1;
    true
  end

let[@inline] pop_raw t =
  if t.hi_n > 0 then begin
    let x = t.hi_buf.(t.hi_head) in
    t.hi_head <- wrap t (t.hi_head + 1);
    t.hi_n <- t.hi_n - 1;
    x
  end
  else begin
    let x = t.lo_buf.(t.lo_head) in
    t.lo_head <- wrap t (t.lo_head + 1);
    t.lo_n <- t.lo_n - 1;
    x
  end

let pop_idx t = if is_empty t then -1 else pop_raw t
let pop t = if is_empty t then None else Some (pop_raw t)

let lease_pop t =
  if is_empty t then -1
  else begin
    let x = pop_raw t in
    t.leased <- t.leased + 1;
    x
  end

let settle t =
  if t.leased <= 0 then invalid_arg "Squeue.settle: nothing leased";
  t.leased <- t.leased - 1
