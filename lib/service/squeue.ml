type order = Fifo | Priority

let order_name = function Fifo -> "fifo" | Priority -> "priority"

let order_of_string = function
  | "fifo" -> Some Fifo
  | "priority" | "prio" -> Some Priority
  | _ -> None

type 'a t = {
  q_order : order;
  q_cap : int;
  hi : 'a Queue.t;  (** Unused under [Fifo]. *)
  lo : 'a Queue.t;
  mutable pushed : int;
  mutable dropped : int;
}

let create ~order ~cap =
  if cap < 1 then invalid_arg "Squeue.create: capacity must be >= 1";
  { q_order = order; q_cap = cap; hi = Queue.create (); lo = Queue.create ();
    pushed = 0; dropped = 0 }

let order t = t.q_order
let capacity t = t.q_cap
let length t = Queue.length t.hi + Queue.length t.lo
let is_empty t = Queue.is_empty t.hi && Queue.is_empty t.lo
let pushed t = t.pushed
let dropped t = t.dropped

let try_push t ~hi x =
  if length t >= t.q_cap then begin
    t.dropped <- t.dropped + 1;
    false
  end
  else begin
    (match t.q_order with
    | Fifo -> Queue.push x t.lo
    | Priority -> Queue.push x (if hi then t.hi else t.lo));
    t.pushed <- t.pushed + 1;
    true
  end

let pop t =
  if not (Queue.is_empty t.hi) then Some (Queue.pop t.hi)
  else if not (Queue.is_empty t.lo) then Some (Queue.pop t.lo)
  else None
