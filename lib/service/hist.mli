(** Mergeable log-bucketed latency histogram (HDR-style).

    Records non-negative integer values (cycles) into log-spaced
    buckets: values below [2^6] are exact, larger values quantize
    {e down} to a bucket lower bound with bounded relative error
    (< 3.2%).  Percentiles are rank-exact over the quantized domain:
    {!percentile} returns [quantize v_r] for the nearest-rank sample
    [v_r] (rank = ceil(p/100 * count)) — identical to quantizing the
    sorted reference.  Merge is element-wise addition, so it is
    associative and commutative; parallel shards merged in any
    grouping give byte-identical results to a serial run. *)

type t

val create : unit -> t

val record : t -> int -> unit
(** Record one sample.  @raise Invalid_argument on a negative value. *)

val quantize : int -> int
(** The value [record v] reads back as (bucket lower bound). *)

val count : t -> int
val min_value : t -> int
val max_value : t -> int
val mean : t -> float
(** Exact mean of the {e raw} (unquantized) samples. *)

val percentile : t -> float -> int
(** [percentile t p] for [p] in (0,100]: the quantized value of the
    rank-th smallest sample, rank = ceil(p/100 * count); [0] when
    empty. *)

val merge_into : dst:t -> t -> unit
val merge : t -> t -> t

val equal : t -> t -> bool
(** Structural equality on the full state (buckets + moments). *)

(** {2 Windows}

    Rank-exact percentiles over "everything recorded since the last
    {!win_advance}", computed by diffing the live bucket vector
    against a snapshot.  Pure reads of the source histogram: an
    online sampler can take windowed percentiles without disturbing
    the end-of-run readout. *)

type window

val window : t -> window
(** Fresh window over [t], initially covering its whole history. *)

val win_advance : window -> unit
(** Snapshot the source's current state: the window now covers only
    samples recorded after this call. *)

val win_count : window -> int
(** Samples recorded in the current window. *)

val win_percentile : window -> float -> int
(** Nearest-rank percentile over the window's samples, quantized like
    {!percentile}; [0] on an empty window. *)

val win_percentile_many : window array -> float -> int
(** Percentile over the union of several windows (e.g. per-worker
    shards) — identical to merging their deltas first. *)
