(** The service plane: open/closed-loop load over the simulated stack.

    A plane boots a kernel ({!Iw_kernel.Sched}) under an OS
    personality, pins one worker thread per CPU plus a dedicated
    frontend CPU for load generation, and drives requests through
    bounded per-worker queues ({!Squeue}) chosen by a dispatch policy
    ({!Dispatch}).  Request bodies execute through a real layer of the
    stack — a cooperative fiber per worker, or virtine calls through a
    shared Wasp instance (pool hits matter) — so the personality's
    costs and noise land where they do on real systems: in the tail.

    Latency decomposes per request into queue wait, service time, and
    total (arrival to completion), each recorded in a per-worker
    {!Hist} and merged after the run; merge associativity keeps
    parallel drivers byte-identical to serial ones.

    Determinism: arrivals, dispatch, priority draws, and think times
    each use a dedicated stream split from [seed lxor 0x5E21CE], so
    the arrival sequence is independent of kernel-side draws and a
    report is byte-reproducible from [config] alone. *)

type os = Nk | Linux

val os_name : os -> string
val os_of_string : string -> os option

type backend = Exec.backend =
  | Fiber_exec  (** Per-worker cooperative fiber runs each body. *)
  | Virtine_exec of { vconfig : Iw_virtine.Wasp.config; pool : int }
      (** Each request is a virtine call through one shared Wasp
          instance with a warm pool of [pool] contexts. *)

val backend_name : backend -> string

type config = {
  os : os;
  plat : Iw_hw.Platform.t;  (** Core count is overridden to workers+1. *)
  workers : int;
  workload : Workload.spec;
  policy : Dispatch.policy;
  order : Squeue.order;
  queue_cap : int;
  backend : backend;
  work_us : float;  (** Request body service demand. *)
  hi_frac : float;  (** Fraction of requests marked high priority. *)
  demand : Workload.demand;
      (** Per-request cost distribution; [Dfixed] = every body costs
          [work_us]. *)
  seed : int;
}

val default : plat:Iw_hw.Platform.t -> config
(** Nautilus-like, 8 workers, Poisson 20k rps for 100 ms, po2
    dispatch, FIFO order, cap 64, fiber backend, 150 us bodies. *)

type report = {
  rep_os : string;
  rep_backend : string;
  rep_policy : string;
  rep_order : string;
  rep_workload : string;
  rep_offered_rps : float;
  rep_duration_us : float;
  rep_ghz : float;
  rep_arrivals : int;
  rep_admitted : int;
  rep_completed : int;
  rep_shed : int;  (** Drop-tail refusals (open loop). *)
  rep_backpressure : int;  (** Full-queue retries (closed loop). *)
  rep_elapsed_cycles : int;
  rep_busy_cycles : int;
  rep_throughput_rps : float;
  rep_utilization : float;
  rep_pool_hits : int;  (** Virtine backend only. *)
  rep_spawns : int;
  rep_run_minor_words : float;
      (** OCaml minor-heap words allocated during the run phase (load
          + service; setup and readout excluded).  Divide by
          [rep_completed] for the per-request allocation profile.
          Caveat: [Gc.quick_stat] folds in stats from terminated
          sibling domains, so this is only a clean per-run figure
          when nothing else runs concurrently in the process (the
          [serve] CLI; not the [--jobs N] experiment driver). *)
  rep_run_major_words : float;  (** Major-heap words, same window. *)
  rep_arena_capacity : int;  (** Request-arena high-water capacity. *)
  rep_arena_grows : int;
      (** Times the request arena doubled — stops moving once the
          in-flight high-water mark is reached, however many requests
          flow through. *)
  rep_queue : Hist.t;  (** Queue-wait cycles. *)
  rep_service : Hist.t;  (** Service cycles. *)
  rep_total : Hist.t;  (** Arrival-to-completion cycles. *)
  rep_total_corrected : Hist.t;
      (** Total latency measured from each request's *intended*
          (drawn) send time instead of its actual submit time — the
          coordinated-omission correction for open-loop load.  Empty
          for closed loops. *)
  rep_steals : int;
      (** Requests the hang watchdog moved to live peers (0 unless a
          fault plan arms [worker-hang]). *)
  rep_series : Iw_obs.Series.t option;
      (** Windowed telemetry sampled every ambient
          [Iw_obs.Series.period_us] of virtual time ([None] when the
          period is 0): arrival/admission/completion/shed deltas,
          queue depth, and windowed p50/p99 total latency (cycles).
          Also {!Iw_obs.Series.publish}ed for trace exporters. *)
}

val run : config -> report
(** Run to completion (the generator finishes and every admitted
    request completes).  @raise Invalid_argument on a config without
    workers or clients. *)

val us_of_cycles : report -> int -> float
val percentile_us : report -> Hist.t -> float -> float
val mean_us : report -> Hist.t -> float
