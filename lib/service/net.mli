(** The inter-machine network model for fleet serving.

    Each front↔machine direction is a {!link}: a fixed propagation
    latency, a serialization FIFO (one message at a time at the
    link's bandwidth), and a bounded in-flight window — message [i]
    cannot start serializing until message [i - bound] has been
    delivered, the credit-style backpressure real NICs apply.

    Routing is a pure function of the call sequence: the fleet
    coordinator routes every window's messages in one canonical
    order (send time, then source node, then submission order), so
    delivery times are identical however the per-machine domains
    were scheduled — the property the qcheck determinism tests pin.

    Messages themselves live in {!msgbuf} outboxes: growable int
    arrays appended from machine domains during a window and drained
    by the coordinator at the barrier, so a message never allocates. *)

type config = {
  nc_lat_us : float;  (** one-way propagation latency *)
  nc_gbps : float;  (** per-direction link bandwidth *)
  nc_req_bytes : int;
  nc_resp_bytes : int;
  nc_gossip_bytes : int;
  nc_inflight : int;  (** in-flight window per link direction *)
}

val default : config
(** 15 us, 10 Gb/s, 512 B requests, 256 B responses, 64 B gossip,
    256 messages in flight. *)

val describe : config -> string

type link

val link : config -> ghz:float -> link
val lat_cycles : config -> ghz:float -> int
(** Propagation latency in cycles (at least 1) — the conservative
    synchronization window: no message sent in a window can be
    delivered inside the same window. *)

val route : link -> send:int -> bytes:int -> extra:int -> int
(** Delivery time for a message handed to the link at [send]:
    serialization start is [send], delayed by the FIFO (an earlier
    message still serializing) and the in-flight window; delivery is
    start + tx + latency + [extra] (fault-injected delay).  Updates
    link state; calls must be made in canonical message order. *)

(* ------------------------------------------------------------------ *)
(* Outboxes *)

(** Message kinds, packed in {!msgbuf} int cells. *)

val k_req : int
val k_resp : int
val k_gossip : int
val k_nack : int

type msgbuf = {
  mutable mb_n : int;
  mutable mb_kind : int array;
  mutable mb_dst : int array;  (** machine index, or -1 = front *)
  mutable mb_a : int array;  (** request handle / gossip depth *)
  mutable mb_b : int array;  (** attempt number / hi flag *)
  mutable mb_t : int array;  (** send time (cycles) *)
}

val mb_create : unit -> msgbuf
val mb_push : msgbuf -> kind:int -> dst:int -> a:int -> b:int -> t:int -> unit
val mb_clear : msgbuf -> unit
