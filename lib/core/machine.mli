(** The single machine context threaded through every layer (§II–III).

    A [Machine.t] bundles the stack configuration ({!Stack.t}: platform
    + OS personality + memory/timing/event choices), the observability
    context ({!Iw_obs.Obs.t}: typed counters + trace bus), and the
    booted kernel.  Hardware, kernel, and runtime components created
    under this machine report into the same counters and trace, so a
    single Perfetto track set shows irq spans, context switches, and
    runtime promotions against one virtual-cycle axis. *)

type t = {
  stack : Stack.t;
  obs : Iw_obs.Obs.t;
  kernel : Iw_kernel.Sched.t;
}

val boot :
  ?seed:int -> ?quantum_us:float -> ?trace:Iw_obs.Trace.t -> Stack.t -> t
(** Boot a kernel for the stack with a fresh observability context.
    [trace] defaults to the null sink (probes cost a predictable
    branch); pass {!Iw_obs.Trace.ring} to record. *)

val stack : t -> Stack.t
val obs : t -> Iw_obs.Obs.t
val kernel : t -> Iw_kernel.Sched.t
val platform : t -> Iw_hw.Platform.t
val sim : t -> Iw_engine.Sim.t
val trace : t -> Iw_obs.Trace.t
val counters : t -> Iw_obs.Counter.set
val run : ?horizon:int -> t -> unit

val counter_table : t -> Table.t
(** Every counter that fired, rendered like the experiment tables. *)

(** Per-machine identity over shared counter vocabulary: fold the
    per-machine counter lists of a fleet run into one table (machine,
    counter, events) plus a totals row. *)
module Fleet : sig
  val counter_table : (string * (string * int) list) list -> Table.t
  (** [counter_table [(machine_name, Counter.to_list set); ...]]. *)

  val total : (string * (string * int) list) list -> string -> int
  (** Sum of one named counter across every machine. *)
end

(** The sweepable cost model: every [Platform.costs] field by name,
    with a pinned probe workload for sensitivity tables. *)
module Sweep : sig
  type field = {
    f_name : string;
    f_doc : string;
    get : Iw_hw.Platform.costs -> int;
    set : Iw_hw.Platform.costs -> int -> Iw_hw.Platform.costs;
  }

  val fields : field list
  (** Every cost field, in declaration order. *)

  val names : string list
  val find : string -> field option

  val with_value : Iw_hw.Platform.t -> field -> int -> Iw_hw.Platform.t

  val default_values : Iw_hw.Platform.t -> field -> int list
  (** 0, v/4, v/2, v, 2v, 4v around the platform's current value. *)

  val sensitivity : ?plat:Iw_hw.Platform.t -> field -> int list -> Table.t
  (** Run the pinned probe workload (a small contended multi-thread
      mix under the Nautilus and Linux personalities) at each value of
      the field and tabulate elapsed cycles, overhead share, and delta
      vs the platform default. *)

  val grid :
    ?plat:Iw_hw.Platform.t ->
    ?os:[ `Nk | `Linux ] ->
    field ->
    field ->
    int list ->
    int list ->
    Table.t
  (** 2-D sweep: probe elapsed cycles as a matrix over the cross
      product of two fields' values (first field = rows). *)
end
