type os_choice = Nautilus | Linux | Linux_rt

type memory_choice = Demand_paging | Identity_mapped | Carat

type timing_choice = Hardware_timer | Compiler_timed of { check_budget : int }

type event_choice = Signal_chain | Ipi_broadcast | Pipeline_interrupts

type t = {
  platform : Iw_hw.Platform.t;
  os : os_choice;
  memory : memory_choice;
  timing : timing_choice;
  events : event_choice;
}

let commodity platform =
  {
    platform;
    os = Linux;
    memory = Demand_paging;
    timing = Hardware_timer;
    events = Signal_chain;
  }

let interwoven platform =
  {
    platform;
    os = Nautilus;
    memory = Carat;
    timing = Compiler_timed { check_budget = 2000 };
    events = Ipi_broadcast;
  }

let describe t =
  Printf.sprintf "%s on %s: %s memory, %s timing, %s events"
    (match t.os with
    | Nautilus -> "nautilus"
    | Linux -> "linux"
    | Linux_rt -> "linux-rt")
    t.platform.Iw_hw.Platform.name
    (match t.memory with
    | Demand_paging -> "demand-paged"
    | Identity_mapped -> "identity-mapped"
    | Carat -> "carat-guarded")
    (match t.timing with
    | Hardware_timer -> "hw-timer"
    | Compiler_timed { check_budget } ->
        Printf.sprintf "compiler-timed(%d)" check_budget)
    (match t.events with
    | Signal_chain -> "signal-chain"
    | Ipi_broadcast -> "ipi-broadcast"
    | Pipeline_interrupts -> "pipeline-interrupt")

let personality t =
  match t.os with
  | Nautilus -> Iw_kernel.Os.nautilus t.platform
  | Linux -> Iw_kernel.Os.linux t.platform
  | Linux_rt -> Iw_kernel.Os.linux_rt t.platform

let boot ?seed ?quantum_us t =
  Iw_kernel.Sched.boot ?seed ?quantum_us ~personality:(personality t) t.platform

let address_space t =
  let regime =
    match t.memory with
    | Demand_paging -> Iw_mem.Address_space.Demand_paged
    | Identity_mapped -> Iw_mem.Address_space.Identity_large
    | Carat -> Iw_mem.Address_space.Carat_guarded
  in
  Iw_mem.Address_space.create t.platform regime

let event_delivery_cycles t =
  let c = t.platform.Iw_hw.Platform.costs in
  match t.events with
  | Signal_chain ->
      c.interrupt_dispatch + c.signal_deliver + c.signal_return
      + c.kernel_entry + c.kernel_exit
  | Ipi_broadcast -> c.ipi_send + c.ipi_latency + c.interrupt_dispatch
  | Pipeline_interrupts ->
      (Iw_hw.Pipeline_interrupt.deliver t.platform
         Iw_hw.Pipeline_interrupt.Branch_injected)
        .total_cycles

let timer_mechanism_cost t =
  let c = t.platform.Iw_hw.Platform.costs in
  match t.timing with
  | Hardware_timer -> c.interrupt_dispatch + c.interrupt_return
  | Compiler_timed _ -> Iw_ir.Cost.callback + c.callback_indirect
