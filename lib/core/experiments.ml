open Iw_engine
open Iw_hw
open Iw_kernel

type experiment = {
  id : string;
  title : string;
  paper_claim : string;
  tables : unit -> Table.t list;
}

let f2 = Table.cell_f
let pct = Table.cell_pct
let i2 = Table.cell_i

(* ================================================================== *)
(* E1/E2: heartbeat rate and overhead (Fig. 3, §IV-B text)             *)

let heartbeat_grid () =
  let open Iw_heartbeat in
  let plat = Platform.knl in
  List.concat_map
    (fun bench ->
      List.concat_map
        (fun hb ->
          List.map
            (fun driver ->
              Tpal.run plat
                { workers = 16; heartbeat_us = hb; driver; seed = 11 }
                bench)
            [ Tpal.Nk_ipi; Tpal.Linux_signal ])
        [ 100.0; 20.0 ])
    Tpal.suite

let e1_tables () =
  let reports = heartbeat_grid () in
  let rate_rows =
    List.map
      (fun (r : Iw_heartbeat.Tpal.report) ->
        [
          r.bench;
          r.os;
          Printf.sprintf "%.0f" r.heartbeat_us;
          Printf.sprintf "%.0f" r.target_rate_hz;
          Printf.sprintf "%.0f" r.achieved_rate_hz;
          f2 r.rate_cv;
        ])
      reports
  in
  let ovh_rows =
    List.map
      (fun (r : Iw_heartbeat.Tpal.report) ->
        [
          r.bench;
          r.os;
          Printf.sprintf "%.0f" r.heartbeat_us;
          pct r.overhead_pct;
          i2 r.promotions;
          i2 r.steals;
          f2 r.speedup_vs_serial;
        ])
      reports
  in
  [
    Table.make ~title:"Fig.3: achieved vs target heartbeat rate (16 CPUs)"
      ~headers:[ "bench"; "os"; "hb(us)"; "target(Hz)"; "achieved(Hz)"; "cv" ]
      ~notes:
        [
          "paper: Nautilus hits the target steadily at 100us AND 20us;";
          "Linux undershoots and is unsteady, especially at 20us.";
        ]
      rate_rows;
    Table.make ~title:"SecIV-B: heartbeat scheduling overhead"
      ~headers:
        [ "bench"; "os"; "hb(us)"; "overhead"; "promotions"; "steals"; "speedup" ]
      ~notes:
        [ "paper: 13-22% overhead on Linux vs at most 4.9% on Nautilus." ]
      ovh_rows;
  ]

(* ================================================================== *)
(* E3: context switch costs (Fig. 4)                                   *)

(* A quiesced-system microbenchmark: two CPU-bound threads timeshare
   one core under a fine quantum; the per-switch cost is everything
   that is not their work, divided by the preemption count.  Tick
   noise is disabled — Fig. 4 measures the mechanism, not the
   weather. *)
let thread_switch_cost personality ~rt ~fp =
  let plat = Platform.with_cores Platform.knl 1 in
  let personality = { personality with Os.tick_noise = (fun _ -> 0) } in
  let k = Sched.boot ~seed:3 ~quantum_us:20.0 ~personality plat in
  let per_thread = 30_000_000 in
  for _ = 1 to 2 do
    ignore
      (Sched.spawn k
         ~spec:{ Sched.sp_name = "pingpong"; sp_cpu = Some 0; sp_fp = fp; sp_rt = rt }
         (fun () -> Api.work per_thread))
  done;
  Sched.run k;
  let switches =
    Iw_obs.Counter.get (Sched.counters k) Iw_obs.Counter.Preemptions
  in
  let overhead = Sched.total_overhead_cycles k in
  float_of_int overhead /. float_of_int (max 1 switches)

let fiber_switch_cost ~compiler_timed ~fp =
  let plat = Platform.with_cores Platform.knl 1 in
  let k = Nautilus.boot ~seed:3 plat in
  let result = ref (0.0, 0) in
  ignore
    (Sched.spawn k (fun () ->
         let mode =
           if compiler_timed then
             Fiber.Compiler_timed
               {
                 period = Platform.cycles_of_us plat 20.0;
                 check_interval = 2_000;
                 check_cost = plat.Platform.costs.timing_check;
               }
           else Fiber.Cooperative
         in
         let fs = Fiber.create plat ~mode ~fp in
         for _ = 1 to 2 do
           ignore
             (Fiber.spawn fs (fun () ->
                  if compiler_timed then Coro.consume 15_000_000
                  else
                    for _ = 1 to 250 do
                      Coro.consume 26_000;
                      Fiber.yield ()
                    done))
         done;
         Fiber.run fs;
         (* The switch cost proper: strip the periodic check stream
            (a rate-dependent cost reported by E12/A2), keep the one
            check that triggers each switch. *)
         let check_cost =
           if compiler_timed then plat.Platform.costs.timing_check else 0
         in
         let checks = Fiber.timing_checks fs in
         let switches = max 1 (Fiber.switches fs) in
         let per_switch =
           (float_of_int (Fiber.overhead_cycles fs - (checks * check_cost))
           /. float_of_int switches)
           +. float_of_int check_cost
         in
         result := (per_switch, Fiber.switches fs)));
  Sched.run k;
  !result

let e3_tables () =
  let nk = Os.nautilus Platform.knl in
  let lx = Os.linux Platform.knl in
  let rows = ref [] in
  let add name cost = rows := [ name; Printf.sprintf "%.0f" cost ] :: !rows in
  let lx_fp = thread_switch_cost lx ~rt:false ~fp:true in
  add "linux threads (non-RT, FP)" lx_fp;
  add "linux threads (non-RT, no FP)" (thread_switch_cost lx ~rt:false ~fp:false);
  let nk_fp = thread_switch_cost nk ~rt:false ~fp:true in
  add "nk threads (non-RT, FP)" nk_fp;
  add "nk threads (RT, FP)" (thread_switch_cost nk ~rt:true ~fp:true);
  let nk_nofp = thread_switch_cost nk ~rt:false ~fp:false in
  add "nk threads (non-RT, no FP)" nk_nofp;
  add "nk threads (RT, no FP)" (thread_switch_cost nk ~rt:true ~fp:false);
  let coop_fp, _ = fiber_switch_cost ~compiler_timed:false ~fp:true in
  add "fibers cooperative (FP)" coop_fp;
  let coop, _ = fiber_switch_cost ~compiler_timed:false ~fp:false in
  add "fibers cooperative (no FP)" coop;
  let ct_fp, _ = fiber_switch_cost ~compiler_timed:true ~fp:true in
  add "fibers compiler-timed (FP)" ct_fp;
  let ct_nofp, _ = fiber_switch_cost ~compiler_timed:true ~fp:false in
  add "fibers compiler-timed (no FP)" ct_nofp;
  [
    Table.make ~title:"Fig.4: context switch cost on the KNL model (cycles)"
      ~headers:[ "configuration"; "cycles/switch" ]
      ~notes:
        [
          Printf.sprintf
            "paper: linux non-RT+FP ~5000; NK threads about half; measured %.0f and %.0f"
            lx_fp nk_fp;
          Printf.sprintf
            "paper: compiler-timed fibers 2.3x below NK threads w/ FP (measured %.1fx), 4x w/o FP (measured %.1fx)"
            (nk_fp /. ct_fp) (nk_nofp /. ct_nofp);
          Printf.sprintf
            "paper: granularity floor < 600 cycles (measured no-FP switch: %.0f)"
            ct_nofp;
        ]
      (List.rev !rows);
  ]

(* ================================================================== *)
(* E4/E5: kernel OpenMP vs Linux OpenMP (Fig. 6, §V-A)                 *)

let omp_relative plat scales benches =
  let open Iw_omp in
  List.concat_map
    (fun bench ->
      let rels =
        Nas.relative_performance plat
          ~modes:[ Runtime.Rtk; Runtime.Pik; Runtime.Cck ]
          ~scales bench
      in
      List.map
        (fun (mode, series) ->
          (bench.Nas.nas_name, Runtime.mode_name mode, series))
        rels)
    benches

let geomean xs =
  exp (List.fold_left (fun a x -> a +. log x) 0.0 xs /. float_of_int (List.length xs))

let e4_tables () =
  let scales = [ 1; 2; 4; 8; 16; 32; 64 ] in
  let data = omp_relative Platform.knl scales [ Iw_omp.Nas.bt; Iw_omp.Nas.sp ] in
  let rows =
    List.map
      (fun (bench, mode, series) ->
        bench :: mode :: List.map (fun (_, rel) -> f2 rel) series)
      data
  in
  let rtk_rels =
    List.concat_map
      (fun (_, mode, series) ->
        if mode = "rtk" then List.map snd series else [])
      data
  in
  let full_suite =
    List.concat_map
      (fun bench ->
        let rels =
          Iw_omp.Nas.relative_performance Platform.knl
            ~modes:[ Iw_omp.Runtime.Rtk ] ~scales:[ 16; 64 ] bench
        in
        List.map
          (fun (_, series) ->
            bench.Iw_omp.Nas.nas_name
            :: List.map (fun (_, rel) -> f2 rel) series)
          rels)
      [ Iw_omp.Nas.bt; Iw_omp.Nas.sp; Iw_omp.Nas.cg; Iw_omp.Nas.ep ]
  in
  [
    Table.make
      ~title:"Fig.6: NAS BT/SP performance relative to Linux OpenMP (KNL)"
      ~headers:
        ("bench" :: "mode" :: List.map (fun n -> Printf.sprintf "%dcpu" n) scales)
      ~notes:
        [
          Printf.sprintf
            "paper: RTK geomean gain ~22%% across scales+benchmarks; measured %.1f%%"
            (100.0 *. (geomean rtk_rels -. 1.0));
          "paper: PIK performs similarly; CCK 'not easily summarized'.";
        ]
      rows;
    Table.make
      ~title:"SecV-A: the wider NAS surrogate suite, RTK vs Linux"
      ~headers:[ "bench"; "16cpu"; "64cpu" ]
      ~notes:
        [ "all implementations run the full NAS set; EP's small footprint";
          "leaves little for identity mapping to save." ]
      full_suite;
  ]

let e5_tables () =
  let scales = [ 24; 96; 192 ] in
  let data =
    omp_relative Platform.bigiron_8x24 scales [ Iw_omp.Nas.bt; Iw_omp.Nas.sp ]
  in
  let rows =
    List.map
      (fun (bench, mode, series) ->
        bench :: mode :: List.map (fun (_, rel) -> f2 rel) series)
      data
  in
  let rels =
    List.concat_map
      (fun (_, mode, series) ->
        if mode = "rtk" || mode = "pik" then List.map snd series else [])
      data
  in
  [
    Table.make
      ~title:"SecV-A: repetition on the 8-socket 192-core machine"
      ~headers:
        ("bench" :: "mode" :: List.map (fun n -> Printf.sprintf "%dcpu" n) scales)
      ~notes:
        [
          Printf.sprintf
            "paper: ~20%% for RTK and PIK; measured RTK+PIK geomean %.1f%%"
            (100.0 *. (geomean rels -. 1.0));
        ]
      rows;
  ]

(* ================================================================== *)
(* E6: selective coherence deactivation (Fig. 7)                       *)

let e6_tables () =
  let open Iw_coherence in
  let params = Machine.default_params ~cores:24 ~cores_per_socket:12 in
  let rows = Traces.fig7 ~params () in
  [
    Table.make
      ~title:"Fig.7: PBBS speedup from selective coherence deactivation (2x12)"
      ~headers:
        [ "bench"; "speedup"; "energy-reduction"; "inval(base)"; "inval(deact)" ]
      ~notes:
        [
          Printf.sprintf
            "paper: ~46%% average speedup, ~53%% interconnect energy reduction; measured %.1f%% and %.1f%%"
            (100.0 *. (Traces.average_speedup rows -. 1.0))
            (Traces.average_energy_reduction rows);
        ]
      (List.map
         (fun (r : Traces.row) ->
           [
             r.bench;
             f2 r.speedup;
             pct r.energy_reduction_pct;
             i2 r.base_invalidations;
             i2 r.deact_invalidations;
           ])
         rows);
  ]

(* ================================================================== *)
(* E7: CARAT overheads (§IV-A text)                                    *)

let e7_tables () =
  let rows = Iw_carat.Eval.table () in
  [
    Table.make ~title:"SecIV-A: CARAT guard+tracking overhead"
      ~headers:
        [
          "bench";
          "suite";
          "base(cyc)";
          "naive";
          "optimized";
          "dyn-guards naive";
          "dyn-guards opt";
        ]
      ~notes:
        [
          Printf.sprintf
            "paper: <6%% geomean with hoisting/aggregation; measured naive %.1f%%, optimized %.2f%%"
            (Iw_carat.Eval.geomean_naive rows)
            (Iw_carat.Eval.geomean_optimized rows);
        ]
      (List.map
         (fun (r : Iw_carat.Eval.row) ->
           [
             r.name;
             r.suite;
             i2 r.base_cycles;
             pct r.naive_pct;
             pct r.optimized_pct;
             i2 r.dyn_guards_naive;
             i2 r.dyn_guards_opt;
           ])
         rows);
  ]

(* ================================================================== *)
(* E8: virtine start-up (§IV-D text)                                   *)

let e8_tables () =
  let rows = Iw_virtine.Wasp.Faas.table () in
  let breakdown =
    Iw_virtine.Wasp.stages
      { Iw_virtine.Wasp.default with profile = Iw_virtine.Wasp.Bespoke_16 }
  in
  [
    Table.make ~title:"SecIV-D: virtine invocation latency (FaaS echo, 150us body)"
      ~headers:[ "configuration"; "spawn-only(us)"; "mean(us)"; "p50(us)"; "p99(us)" ]
      ~notes:
        [
          "paper: start-up overheads as low as ~100us with minimal/bespoke contexts.";
        ]
      (List.map
         (fun (r : Iw_virtine.Wasp.Faas.result) ->
           [
             r.config_name;
             Printf.sprintf "%.0f" r.spawn_only_us;
             Printf.sprintf "%.0f" r.mean_us;
             Printf.sprintf "%.0f" r.p50_us;
             Printf.sprintf "%.0f" r.p99_us;
           ])
         rows);
    Table.make ~title:"Bespoke-16 stage breakdown (SecV-E)"
      ~headers:[ "stage"; "cost(us)"; "elided?" ]
      (List.map
         (fun (s : Iw_virtine.Wasp.stage) ->
           [
             s.stage_name;
             Printf.sprintf "%.1f" s.stage_us;
             (if s.elided then "elided" else "paid");
           ])
         breakdown);
    (let load name config =
       let r =
         Iw_virtine.Wasp.Faas.run_load ~name config ~rate_per_s:4_000.0
           ~duration_s:0.25 ~concurrency:4 ~work_us:150.0
       in
       [
         r.lname;
         Printf.sprintf "%.0f%%" (100.0 *. r.utilization);
         Printf.sprintf "%.0f" r.mean_wait_us;
         Printf.sprintf "%.0f" r.p99_total_us;
       ]
     in
     Table.make
       ~title:
         "Under load: 4k req/s, 4 contexts, 150us bodies (queueing included)"
       ~headers:[ "configuration"; "utilization"; "mean wait(us)"; "p99(us)" ]
       ~notes:
         [
           "start-up cost is service time: slow context designs saturate";
           "and queueing explodes - the serverless motivation of SecIV-D.";
         ]
       [
         load "minimal-64" Iw_virtine.Wasp.default;
         load "minimal-64+snapshot"
           { Iw_virtine.Wasp.default with snapshot = true };
         load "bespoke-16"
           { Iw_virtine.Wasp.default with profile = Iw_virtine.Wasp.Bespoke_16 };
         load "bespoke-16+pool"
           {
             Iw_virtine.Wasp.default with
             profile = Iw_virtine.Wasp.Bespoke_16;
             pooled = true;
           };
       ]);
  ]

(* ================================================================== *)
(* E9: pipeline interrupts (§V-D)                                      *)

let e9_tables () =
  let plat = Platform.knl in
  let idt = Pipeline_interrupt.deliver plat Pipeline_interrupt.Idt in
  let br = Pipeline_interrupt.deliver plat Pipeline_interrupt.Branch_injected in
  let sweep =
    Pipeline_interrupt.sweep plat ~rate_hz:[ 1e4; 1e5; 1e6; 1e7 ]
  in
  [
    Table.make ~title:"SecV-D: interrupt delivery cost"
      ~headers:[ "mechanism"; "dispatch"; "return"; "total(cycles)" ]
      ~notes:
        [
          Printf.sprintf
            "paper: IDT dispatch ~1000 cycles; branch-injected 100-1000x cheaper (measured %.0fx)"
            (Pipeline_interrupt.speedup plat);
        ]
      [
        [ "idt"; i2 idt.dispatch_cycles; i2 idt.return_cycles; i2 idt.total_cycles ];
        [ "branch-injected"; i2 br.dispatch_cycles; i2 br.return_cycles; i2 br.total_cycles ];
      ];
    Table.make ~title:"Core time consumed by delivery at a given event rate"
      ~headers:[ "rate(Hz)"; "idt"; "branch-injected" ]
      (List.map
         (fun (rate, fi, fb) ->
           [ Printf.sprintf "%.0e" rate; pct (100.0 *. fi); pct (100.0 *. fb) ])
         sweep);
    (* §V-D names #GP delivery for CARAT protection faults and far
       memory (§V-C): every far-object access is a fault whose delivery
       mechanism is on the critical path. *)
    (let fm =
       Iw_carat.Far_memory.simulate ~objects:20_000 ~object_words:24
         ~accesses:200_000 ~zipf:0.9
         (Iw_carat.Far_memory.default
            ~local_capacity_words:(20_000 * 24 / 4)
            Iw_carat.Far_memory.Object)
     in
     let far_frac = 1.0 -. fm.local_hit_rate in
     let mean mech =
       let d = (Pipeline_interrupt.deliver plat mech).total_cycles in
       (4.0 *. fm.local_hit_rate) +. (far_frac *. float_of_int (400 + d))
     in
     Table.make
       ~title:
         "#GP use case (SecV-D x SecV-C): far-memory fault delivery, 25% local heap"
       ~headers:[ "mechanism"; "mean access (cycles)"; "vs no-fault baseline" ]
       ~notes:
         [
           Printf.sprintf
             "object-granular far memory leaves %.1f%% of accesses faulting to the far tier"
             (100.0 *. far_frac);
         ]
       [
         [
           "idt #GP";
           f2 (mean Pipeline_interrupt.Idt);
           f2 (mean Pipeline_interrupt.Idt /. 4.0);
         ];
         [
           "branch-injected #GP";
           f2 (mean Pipeline_interrupt.Branch_injected);
           f2 (mean Pipeline_interrupt.Branch_injected /. 4.0);
         ];
       ]);
  ]

(* ================================================================== *)
(* E10: Nautilus primitives (§III)                                     *)

let spawn_join_cost personality =
  let plat = Platform.with_cores Platform.knl 2 in
  let k = Sched.boot ~seed:5 ~personality plat in
  let elapsed = ref 0 in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         let t0 = Api.now () in
         for _ = 1 to 20 do
           Api.join (Api.spawn ~cpu:1 (fun () -> Api.work 100))
         done;
         elapsed := Api.now () - t0));
  Sched.run k;
  !elapsed / 20

let wake_latency personality =
  let plat = Platform.with_cores Platform.knl 2 in
  let k = Sched.boot ~seed:5 ~personality plat in
  let sem = Sched.semaphore ~init:0 in
  let posted = ref 0 and resumed = ref 0 in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         Api.sem_wait sem;
         resumed := Api.now ()));
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 1 } (fun () ->
         Api.work 200_000;
         posted := Api.now ();
         Api.sem_post sem));
  Sched.run k;
  !resumed - !posted

let e10_tables () =
  let plat = Platform.knl in
  let nk = Os.nautilus plat and lx = Os.linux plat in
  let nk_spawn = spawn_join_cost nk and lx_spawn = spawn_join_cost lx in
  let nk_wake = wake_latency nk and lx_wake = wake_latency lx in
  let nk_event = Stack.event_delivery_cycles (Stack.interwoven plat) in
  let lx_event = Stack.event_delivery_cycles (Stack.commodity plat) in
  let sp32_lx = Iw_omp.Nas.run plat Iw_omp.Runtime.Linux_user ~nthreads:32 Iw_omp.Nas.sp in
  let sp32_nk = Iw_omp.Nas.run plat Iw_omp.Runtime.Rtk ~nthreads:32 Iw_omp.Nas.sp in
  let app_gain =
    100.0
    *. (float_of_int sp32_lx.elapsed_cycles /. float_of_int sp32_nk.elapsed_cycles
       -. 1.0)
  in
  [
    Table.make ~title:"SecIII: primitive costs, Nautilus vs Linux (cycles)"
      ~headers:[ "primitive"; "nautilus"; "linux"; "ratio" ]
      ~notes:
        [
          "paper: thread management and event signaling orders of magnitude faster;";
          Printf.sprintf
            "paper: application speedups 20-40%% over Linux user level (measured NAS SP @32: %.0f%%)"
            app_gain;
        ]
      [
        [
          "thread create+join";
          i2 nk_spawn;
          i2 lx_spawn;
          f2 (float_of_int lx_spawn /. float_of_int nk_spawn);
        ];
        [
          "blocked-thread wake latency";
          i2 nk_wake;
          i2 lx_wake;
          f2 (float_of_int lx_wake /. float_of_int nk_wake);
        ];
        [
          "async event delivery";
          i2 nk_event;
          i2 lx_event;
          f2 (float_of_int lx_event /. float_of_int nk_event);
        ];
      ];
  ]

(* ================================================================== *)
(* E11: blended device polling (§V-C)                                  *)

let e11_tables () =
  let plat = Platform.knl in
  let rows =
    List.map
      (fun (p : Iw_ir.Programs.program) ->
        let r =
          Iw_passes.Polling_pass.measure ~poll_budget:1500
            ~completions:(List.init 25 (fun i -> (i + 1) * 4_000))
            ~plat p
        in
        [
          r.program;
          i2 r.polls_executed;
          Printf.sprintf "%d/%d" r.serviced r.completions;
          Printf.sprintf "%.0f" r.mean_latency;
          i2 r.max_latency;
          i2 r.interrupt_latency;
          pct r.overhead_pct;
        ])
      [ Iw_ir.Programs.vec_sum 4000; Iw_ir.Programs.mat_mul 20; Iw_ir.Programs.stencil_1d 3000 ]
  in
  [
    Table.make ~title:"SecV-C: blended (compiler-injected) device polling"
      ~headers:
        [
          "program";
          "polls";
          "serviced";
          "mean-lat(cyc)";
          "max-lat";
          "irq-path(cyc)";
          "overhead";
        ]
      ~notes:
        [
          "paper: devices appear interrupt-driven, but no interrupts ever occur.";
        ]
      rows;
  ]

(* ================================================================== *)
(* E12: compiler-timing accuracy (§IV-C)                               *)

let e12_tables () =
  let budget = 2000 in
  let rows =
    List.map
      (fun p ->
        let a = Iw_passes.Timing_pass.measure ~check_budget:budget p in
        [
          a.program;
          i2 a.budget;
          i2 a.max_gap;
          i2 a.checks;
          pct a.overhead_pct;
        ])
      (Iw_ir.Programs.timing_suite ())
  in
  [
    Table.make
      ~title:"SecIV-C: injected timing checks hit the budget on every path"
      ~headers:[ "program"; "budget(cyc)"; "max-gap(cyc)"; "checks"; "overhead" ]
      ~notes:
        [
          "paper: callbacks occur at the desired rate regardless of code path.";
        ]
      rows;
  ]

(* ================================================================== *)
(* E13: interrupt steering (§III)                                      *)

(* A barrier-structured OpenMP region under device-interrupt load:
   spread vectors hit workers mid-region and stretch every barrier;
   steering them to a housekeeping CPU hides them. *)
let steering_run policy =
  let plat = Platform.with_cores Platform.knl 16 in
  let k = Sched.boot ~seed:7 ~personality:(Os.nautilus plat) plat in
  let dev = Device_irq.start k ~rate_hz:200_000.0 ~handler_cost:2_000 policy in
  let finish = ref 0 in
  ignore
    (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
         (* 15 workers on CPUs 0-14; CPU 15 is the housekeeping core
            the steered policy targets. *)
         let t = Iw_omp.Runtime.create k Iw_omp.Runtime.Rtk ~nthreads:15 in
         for _ = 1 to 40 do
           Iw_omp.Runtime.parallel_for t ~iters:16_384
             ~iter_cycles:(fun _ -> 120)
             ()
         done;
         finish := Api.now ();
         Iw_omp.Runtime.shutdown t;
         Device_irq.stop dev));
  Sched.run k;
  (!finish, Device_irq.delivered dev, Device_irq.per_cpu dev)

let e13_tables () =
  let spread, sn, scpu = steering_run Device_irq.Spread in
  let steered, tn, tcpu = steering_run (Device_irq.Steered 15) in
  let busiest a = Array.fold_left max 0 a in
  [
    Table.make ~title:"SecIII: steerable device interrupts (200kHz device, 15 workers + 1 housekeeping CPU)"
      ~headers:
        [ "policy"; "elapsed(cycles)"; "irqs"; "max irqs on one cpu"; "slowdown" ]
      ~notes:
        [
          "paper: interrupts are fully steerable and can largely be avoided";
          "on most hardware threads.";
        ]
      [
        [
          "spread (commodity)";
          i2 spread;
          i2 sn;
          i2 (busiest scpu);
          f2 (float_of_int spread /. float_of_int steered);
        ];
        [ "steered to cpu15 (NK)"; i2 steered; i2 tn; i2 (busiest tcpu); "1.00" ];
      ];
  ]

(* ================================================================== *)
(* E14: selective memory ordering (§V-B's fence argument)              *)

let e14_tables () =
  let open Iw_coherence in
  let rows =
    List.map
      (fun (label, data, unrelated) ->
        let run m =
          Consistency.producer_consumer ~iterations:2_000 ~data_stores:data
            ~unrelated_stores:unrelated m
        in
        let tso = run Consistency.Tso in
        let sel = run Consistency.Selective in
        [
          label;
          i2 tso.fence_stalls;
          i2 sel.fence_stalls;
          f2
            (float_of_int tso.total_cycles /. float_of_int sel.total_cycles);
        ])
      [
        ("2 data / 0 unrelated", 2, 0);
        ("2 data / 8 unrelated", 2, 8);
        ("2 data / 32 unrelated", 2, 32);
        ("8 data / 32 unrelated", 8, 32);
      ]
  in
  [
    Table.make
      ~title:"SecV-B: fence stalls, x86-TSO total order vs selective ordering"
      ~headers:
        [ "producer workload"; "tso fence stalls"; "selective stalls"; "speedup" ]
      ~notes:
        [
          "paper: a fence orders all pending writes even when only the";
          "producer's data needed ordering; selectivity removes the rest.";
        ]
      rows;
  ]

(* ================================================================== *)
(* E15: sub-page far memory via blending (§V-C)                        *)

let e15_tables () =
  let rows =
    Iw_carat.Far_memory.sweep ~objects:20_000 ~object_words:24
      ~accesses:400_000 ~zipf:0.9
      ~fractions:[ 0.1; 0.25; 0.5; 0.75 ]
      ()
  in
  [
    Table.make
      ~title:
        "SecV-C: transparent far memory, page-granular vs blended object-granular"
      ~headers:
        [
          "local fraction";
          "page hit-rate";
          "object hit-rate";
          "page slowdown";
          "object slowdown";
        ]
      ~notes:
        [
          "paper: compiler blending can evacuate objects to remote memory";
          "transparently, below page granularity.";
        ]
      (List.map
         (fun (frac, (pg : Iw_carat.Far_memory.result), obj) ->
           [
             pct (100.0 *. frac);
             pct (100.0 *. pg.local_hit_rate);
             pct (100.0 *. obj.Iw_carat.Far_memory.local_hit_rate);
             f2 pg.slowdown_vs_all_local;
             f2 obj.Iw_carat.Far_memory.slowdown_vs_all_local;
           ])
         rows);
  ]

(* ================================================================== *)
(* E16: language-derived hints (§V-G)                                  *)

(* An MPL-style fork-join program: each branch reduces its slice of a
   frozen input into private scratch, then publishes one cell of a
   shared result.  The runtime classifies every access; nobody wrote a
   hint by hand. *)
let mpl_program branches slice ctx =
  let open Iw_coherence.Mpl in
  let input = alloc ctx (branches * slice) ~init:1 in
  freeze ctx input;
  let result = alloc ctx branches ~init:0 in
  par_for ctx ~lo:0 ~hi:branches ~grain:1 (fun c b ->
      let scratch = alloc c slice ~init:0 in
      for i = 0 to slice - 1 do
        let v = read c input ((b * slice) + i) in
        write c scratch i (v + (if i > 0 then read c scratch (i - 1) else 0))
      done;
      write c result b (read c scratch (slice - 1)));
  Array.init branches (fun b -> read ctx result b)

let e16_tables () =
  let open Iw_coherence in
  let params = Machine.default_params ~cores:24 ~cores_per_socket:12 in
  let run deact =
    let m = Machine.create ~params deact in
    let sums, stats = Mpl.run ~machine:m (mpl_program 24 2_000) in
    (m, sums, stats)
  in
  let base, sums_a, _ = run Machine.Off in
  let deact, sums_b, stats = run Machine.Private_and_ro in
  if sums_a <> sums_b then failwith "E16: results diverged";
  let bm = Machine.makespan base and dm = Machine.makespan deact in
  let classified n =
    pct (100.0 *. float_of_int n /. float_of_int (max 1 stats.Mpl.accesses))
  in
  [
    Table.make
      ~title:"SecV-G: hints derived by the language runtime (MPL-style fork-join)"
      ~headers:[ "metric"; "value" ]
      ~notes:
        [
          "paper: properties the lower layers need are available by";
          "construction in high-level parallel languages.";
        ]
      [
        [ "accesses classified"; i2 stats.Mpl.accesses ];
        [ "  as private"; classified stats.Mpl.classified_private ];
        [ "  as read-only"; classified stats.Mpl.classified_ro ];
        [ "  as shared"; classified stats.Mpl.classified_shared ];
        [ "entanglements"; i2 stats.Mpl.entanglements ];
        [ "makespan, tracked MESI"; i2 bm ];
        [ "makespan, derived-hint deactivation"; i2 dm ];
        [ "speedup"; f2 (float_of_int bm /. float_of_int dm) ];
      ];
  ]

(* ================================================================== *)
(* Ablations                                                           *)

let a1_tables () =
  let configs =
    [
      ("none", Iw_passes.Carat_pass.{ aggregate = false; hoist = false });
      ("aggregate", Iw_passes.Carat_pass.{ aggregate = true; hoist = false });
      ("hoist", Iw_passes.Carat_pass.{ aggregate = false; hoist = true });
      ("aggregate+hoist", Iw_passes.Carat_pass.{ aggregate = true; hoist = true });
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let overheads =
          List.map
            (fun (p : Iw_ir.Programs.program) ->
              let base = Iw_ir.Interp.run (p.build ()) p.entry p.args in
              let m = p.build () in
              Iw_passes.Carat_pass.instrument ~config m;
              let rt = Iw_carat.Runtime.create () in
              let r = Iw_ir.Interp.run ~hooks:(Iw_carat.Runtime.hooks rt) m p.entry p.args in
              1.0
              +. (float_of_int (r.cycles - base.cycles) /. float_of_int base.cycles))
            (Iw_ir.Programs.carat_suite ())
        in
        [ name; pct (100.0 *. (geomean overheads -. 1.0)) ])
      configs
  in
  [
    Table.make ~title:"A1: CARAT optimization ablation (geomean overhead)"
      ~headers:[ "configuration"; "overhead" ]
      rows;
  ]

let a2_tables () =
  let p = Iw_ir.Programs.mat_mul 24 in
  let rows =
    List.map
      (fun budget ->
        let a = Iw_passes.Timing_pass.measure ~check_budget:budget p in
        [ i2 budget; i2 a.max_gap; i2 a.checks; pct a.overhead_pct ])
      [ 300; 1_000; 3_000; 10_000; 30_000 ]
  in
  [
    Table.make ~title:"A2: timing-check budget sweep (mat-mul)"
      ~headers:[ "budget"; "max-gap"; "checks"; "overhead" ]
      rows;
  ]

let a3_tables () =
  let open Iw_omp in
  let plat = Platform.with_cores Platform.knl 16 in
  let run schedule name =
    let k = Sched.boot ~seed:9 ~personality:(Os.nautilus plat) plat in
    let finish = ref 0 in
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 } (fun () ->
           let t = Runtime.create k Runtime.Rtk ~nthreads:16 in
           (* Heavily imbalanced loop: cost ramps with the index. *)
           for _ = 1 to 4 do
             Runtime.parallel_for t ~schedule ~iters:4096
               ~iter_cycles:(fun i -> 50 + (i / 4))
               ()
           done;
           finish := Api.now ();
           Runtime.shutdown t));
    Sched.run k;
    [ name; i2 !finish ]
  in
  [
    Table.make ~title:"A3: worksharing schedule under imbalance (16 CPUs)"
      ~headers:[ "schedule"; "elapsed(cycles)" ]
      [
        run Runtime.Static "static";
        run (Runtime.Dynamic 64) "dynamic(64)";
        run (Runtime.Guided 32) "guided(32)";
      ];
  ]

let a4_tables () =
  let open Iw_coherence in
  let params = Machine.default_params ~cores:24 ~cores_per_socket:12 in
  let benches = [ Traces.samplesort; Traces.bfs; Traces.nbody ] in
  let rows =
    List.map
      (fun (bench : Traces.bench) ->
        let time d = Machine.makespan (Traces.run_bench ~params d bench) in
        let base = time Machine.Off in
        let speedup d = f2 (float_of_int base /. float_of_int (time d)) in
        [
          bench.bench_name;
          speedup Machine.Private_only;
          speedup Machine.Private_and_ro;
        ])
      benches
  in
  [
    Table.make ~title:"A4: which hints matter (speedup vs tracked MESI)"
      ~headers:[ "bench"; "private-only"; "private+read-only" ]
      rows;
  ]

let a5_tables () =
  let open Iw_heartbeat in
  let rows =
    List.map
      (fun div ->
        let r =
          Tpal.run ~promote_div:div Platform.knl
            { workers = 16; heartbeat_us = 20.0; driver = Tpal.Nk_ipi; seed = 11 }
            Tpal.spmv
        in
        [
          i2 div;
          i2 r.promotions;
          i2 r.steals;
          pct r.overhead_pct;
          f2 r.speedup_vs_serial;
        ])
      [ 2; 4; 8 ]
  in
  let tree_rows =
    List.map
      (fun (policy, name) ->
        let r =
          Tpal_tree.run Platform.knl
            { workers = 16; heartbeat_us = 30.0; policy; seed = 4 }
            (Tpal_tree.fib 22)
        in
        [
          name;
          i2 r.nodes_run;
          i2 r.promotions;
          i2 r.steals;
          pct r.overhead_pct;
          f2 r.speedup_vs_serial;
        ])
      [
        (Tpal_tree.Promote_oldest, "promote-oldest (heartbeat rule)");
        (Tpal_tree.Promote_newest, "promote-newest (foil)");
      ]
  in
  [
    Table.make
      ~title:"A5a: range promotion aggressiveness (split 1/div per beat)"
      ~headers:[ "div"; "promotions"; "steals"; "overhead"; "speedup" ]
      rows;
    Table.make
      ~title:"A5b: nested fork-join promotion policy (fib tree, 16 workers)"
      ~headers:[ "policy"; "nodes"; "promotions"; "steals"; "overhead"; "speedup" ]
      ~notes:
        [
          "Promoting the oldest latent frame yields few, large tasks (the";
          "provable-bounds rule); promoting the newest floods the system";
          "with leaf-sized tasks and erases the parallel speedup.";
        ]
      tree_rows;
  ]

(* ================================================================== *)
(* R1-R4: deterministic fault injection and cross-layer recovery.

   Each row of an R table runs one workload under a scoped fault plan
   at a pinned (rate, seed): the hardware layer injects (dropped IPIs,
   dead timer fires, dark cores, spurious shootdowns) and the layers
   above compensate (ack+resend, watchdog polling, relaunch, protocol
   refetch).  The tables are degradation curves — elapsed time or
   latency vs fault rate — with the fault and recovery counters
   alongside, so the claim "promotion still happens, just later" is a
   number, not a sentence. *)

module Plan = Iw_faults.Plan

(* Run one (rate, seed, kinds) point under its own fault plan and a
   child collecting context; returns the result plus that run's
   counter totals.  The totals are merged back into the enclosing
   ambient counters, so golden gating and bench JSON still see the
   fault/recovery traffic; the row's own totals feed the table cells.
   Both scopes are domain-local, so R tables are stable under `-j`. *)
let run_faulted ~rate ~seed ~kinds f =
  let outer = Iw_obs.Obs.ambient () in
  let row = Iw_obs.Obs.create ~trace:outer.Iw_obs.Obs.trace ~collect:true () in
  let plan = Plan.create ~rate ~seed ~kinds () in
  let result =
    Iw_obs.Obs.with_ambient row (fun () -> Plan.with_ambient plan f)
  in
  let totals = Iw_obs.Obs.total_counters row in
  Iw_obs.Counter.merge_into ~dst:outer.Iw_obs.Obs.counters totals;
  (result, totals)

let rate_cell rate = if rate = 0.0 then "0" else Printf.sprintf "%.0e" rate

let slowdown_cell ~base v =
  f2 (float_of_int v /. float_of_int (max 1 base))

let r1_bench =
  {
    Iw_heartbeat.Tpal.bench_name = "spmv-r";
    ranges = [ { items = 800_000; grain = 10 }; { items = 480_000; grain = 60 } ];
  }

let r1_tables () =
  let open Iw_heartbeat in
  let kinds = Plan.[ Ipi_drop; Ipi_delay; Timer_miss ] in
  let runs =
    List.map
      (fun rate ->
        let r, c =
          run_faulted ~rate ~seed:42 ~kinds (fun () ->
              Tpal.run Platform.knl
                { workers = 8; heartbeat_us = 20.0; driver = Tpal.Nk_ipi; seed = 11 }
                r1_bench)
        in
        (rate, (r : Tpal.report), c))
      [ 0.0; 1e-3; 1e-2; 5e-2 ]
  in
  let base =
    match runs with (_, r, _) :: _ -> r.Tpal.elapsed_cycles | [] -> 1
  in
  let rows =
    List.map
      (fun (rate, (r : Tpal.report), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          i2 r.elapsed_cycles;
          slowdown_cell ~base r.elapsed_cycles;
          i2 r.promotions;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 (g Iw_obs.Counter.Ipi_retry);
          i2 (g Iw_obs.Counter.Watchdog_fire);
        ])
      runs
  in
  [
    Table.make
      ~title:"R1: heartbeat (TPAL, NK-IPI) under a lossy wire (8 CPUs)"
      ~headers:
        [
          "fault-rate"; "elapsed(cycles)"; "slowdown"; "promotions"; "faults";
          "ipi-retries"; "watchdog";
        ]
      ~notes:
        [
          "kinds: ipi-drop, ipi-delay, timer-miss.  The workload always";
          "completes: lost heartbeats are resent (kernel ack+backoff) or";
          "delivered by the watchdog's software polling, so promotion";
          "still happens - just later.";
        ]
      rows;
    (* The resend machinery recovers individual drops so well the
       watchdog never fires above; kill the timer source itself to
       show the next layer up catching what resends cannot. *)
    (let r, c =
       run_faulted ~rate:0.9 ~seed:42 ~kinds:[ Plan.Timer_miss ] (fun () ->
           Tpal.run Platform.knl
             { workers = 8; heartbeat_us = 20.0; driver = Tpal.Nk_ipi; seed = 11 }
             r1_bench)
     in
     let g id = Iw_obs.Counter.get c id in
     Table.make
       ~title:"R1b: watchdog fallback under a mostly-dead heartbeat timer"
       ~headers:
         [
           "timer-miss-rate"; "elapsed(cycles)"; "promotions"; "deliveries";
           "watchdog"; "faults";
         ]
       ~notes:
         [
           "90% of timer fires swallowed: heartbeats now arrive mostly via";
           "the watchdog's software polling, and every promotion still";
           "completes.";
         ]
       [
         [
           "9e-01";
           i2 r.Tpal.elapsed_cycles;
           i2 r.Tpal.promotions;
           i2 r.Tpal.deliveries;
           i2 (g Iw_obs.Counter.Watchdog_fire);
           i2 (g Iw_obs.Counter.Fault_injected);
         ];
       ]);
  ]

let r2_tables () =
  let open Iw_virtine in
  let kinds = Plan.[ Virtine_fail; Pool_poison ] in
  let runs =
    List.map
      (fun rate ->
        let r, c =
          run_faulted ~rate ~seed:42 ~kinds (fun () ->
              Wasp.Faas.run ~seed:7 ~name:"bespoke-16+pool"
                { Wasp.default with profile = Wasp.Bespoke_16; pooled = true }
                ~requests:400 ~work_us:150.0)
        in
        (rate, (r : Wasp.Faas.result), c))
      [ 0.0; 1e-2; 5e-2; 2e-1 ]
  in
  let base_mean =
    match runs with (_, r, _) :: _ -> r.Wasp.Faas.mean_us | [] -> 1.0
  in
  let rows =
    List.map
      (fun (rate, (r : Wasp.Faas.result), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          f2 r.mean_us;
          f2 r.p99_us;
          f2 (r.mean_us /. base_mean);
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 (g Iw_obs.Counter.Virtine_relaunch);
          i2 (g Iw_obs.Counter.Pool_evict);
        ])
      runs
  in
  [
    Table.make
      ~title:"R2: virtine FaaS latency under launch failures (bespoke-16+pool)"
      ~headers:
        [
          "fault-rate"; "mean(us)"; "p99(us)"; "slowdown"; "faults";
          "relaunches"; "pool-evicts";
        ]
      ~notes:
        [
          "kinds: virtine-fail, pool-poison.  Every request is served: a";
          "failed boot pays a partial launch and retries; a poisoned warm";
          "context is evicted before dispatch instead of running corrupt.";
        ]
      rows;
  ]

let r3_tables () =
  let open Iw_omp in
  let kinds = Plan.[ Timer_miss; Timer_late; Cpu_stall ] in
  let plat = Platform.with_cores Platform.knl 8 in
  let run_once () =
    let k = Sched.boot ~seed:9 ~personality:(Os.nautilus plat) plat in
    let finish = ref 0 in
    ignore
      (Sched.spawn k ~spec:{ Sched.default_spec with sp_cpu = Some 0 }
         (fun () ->
           let t = Runtime.create k Runtime.Rtk ~nthreads:8 in
           for _ = 1 to 2 do
             Runtime.parallel_for t ~schedule:(Runtime.Dynamic 64) ~iters:4096
               ~iter_cycles:(fun i -> 50 + (i / 8))
               ()
           done;
           finish := Api.now ();
           Runtime.shutdown t));
    Sched.run k;
    !finish
  in
  let runs =
    List.map
      (fun rate ->
        let elapsed, c = run_faulted ~rate ~seed:42 ~kinds run_once in
        (rate, elapsed, c))
      [ 0.0; 1e-3; 1e-2; 5e-2 ]
  in
  let base = match runs with (_, e, _) :: _ -> e | [] -> 1 in
  let rows =
    List.map
      (fun (rate, elapsed, c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          i2 elapsed;
          slowdown_cell ~base elapsed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 (g Iw_obs.Counter.Omp_chunks);
        ])
      runs
  in
  [
    Table.make
      ~title:"R3: OMP dynamic worksharing under dark cores (8 CPUs, dynamic(64))"
      ~headers:
        [ "fault-rate"; "elapsed(cycles)"; "slowdown"; "faults"; "chunks" ]
      ~notes:
        [
          "kinds: timer-miss, timer-late, cpu-stall.  Dynamic scheduling is";
          "the recovery: a stalled core simply claims fewer chunks, and the";
          "loop's barrier still closes.";
        ]
      rows;
  ]

let r4_tables () =
  let open Iw_coherence in
  let kinds = Plan.[ Tlb_shootdown ] in
  let params = Machine.default_params ~cores:8 ~cores_per_socket:4 in
  let bench = { Traces.samplesort with accesses_per_core = 4_000 } in
  let runs =
    List.map
      (fun rate ->
        let m, c =
          run_faulted ~rate ~seed:42 ~kinds (fun () ->
              let m = Traces.run_bench ~params Machine.Off bench in
              if not (Machine.swmr_holds m) then
                failwith "R4: SWMR violated under injected shootdowns";
              m)
        in
        (rate, m, c))
      [ 0.0; 1e-3; 1e-2; 5e-2 ]
  in
  let base =
    match runs with (_, m, _) :: _ -> Machine.makespan m | [] -> 1
  in
  let rows =
    List.map
      (fun (rate, m, c) ->
        let g id = Iw_obs.Counter.get c id in
        let mc = Machine.counters m in
        [
          rate_cell rate;
          i2 (Machine.makespan m);
          slowdown_cell ~base (Machine.makespan m);
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 mc.Machine.misses;
          i2 mc.Machine.writebacks;
        ])
      runs
  in
  [
    Table.make
      ~title:"R4: tracked MESI under spurious line shootdowns (samplesort, 8 cores)"
      ~headers:
        [
          "fault-rate"; "makespan(cycles)"; "slowdown"; "faults"; "misses";
          "writebacks";
        ]
      ~notes:
        [
          "kind: tlb-shootdown (modeled as a spurious invalidation of the";
          "accessed line).  MESI itself is the recovery - the victim core";
          "refetches through the directory; SWMR is asserted every run.";
        ]
      rows;
  ]

(* ================================================================== *)
(* S1-S4: the service plane.

   The paper argues that specialization in the lower layers (a
   Nautilus-like kernel, bespoke virtine contexts) pays off for the
   software above.  The S experiments make that visible the way a
   services person would: drive open-loop load through queues and
   dispatch policies over the simulated stack and read the answer off
   the tail of the latency distribution.  Everything is deterministic
   — arrivals, dispatch, and fault draws come from dedicated RNG
   streams — so the tables golden-gate byte-for-byte. *)

let s_plat = Platform.knl
let s_duration_us = 50_000.0

let s_run ?(os = Iw_service.Plane.Nk) ?(policy = Iw_service.Dispatch.Po2)
    ?(order = Iw_service.Squeue.Fifo) ?(cap = 64)
    ?(backend = Iw_service.Plane.Fiber_exec) ?(work_us = 20.0)
    ?(demand = Iw_service.Workload.Dfixed) ?(seed = 42) workload =
  Iw_service.Plane.run
    {
      os;
      plat = s_plat;
      workers = 8;
      workload;
      policy;
      order;
      queue_cap = cap;
      backend;
      work_us;
      hi_frac = 0.0;
      demand;
      seed;
    }

let s_p (r : Iw_service.Plane.report) pct =
  Iw_service.Plane.percentile_us r r.rep_total pct

let s_bespoke_pooled =
  {
    Iw_virtine.Wasp.default with
    profile = Iw_virtine.Wasp.Bespoke_16;
    snapshot = true;
    pooled = true;
  }

let s1_loads = [ 160_000.0; 280_000.0; 340_000.0; 370_000.0 ]
let s1_pinned = 340_000.0

let s1_tables () =
  let run os rps =
    s_run ~os (Iw_service.Workload.Poisson { rps; duration_us = s_duration_us })
  in
  let data =
    List.map
      (fun rps -> (rps, run Iw_service.Plane.Nk rps, run Iw_service.Plane.Linux rps))
      s1_loads
  in
  let rows =
    List.map
      (fun (rps, nk, lx) ->
        [
          Printf.sprintf "%.0fk" (rps /. 1000.0);
          f2 nk.Iw_service.Plane.rep_utilization;
          f2 (s_p nk 50.0);
          f2 (s_p nk 99.0);
          f2 (s_p nk 99.9);
          f2 (s_p lx 50.0);
          f2 (s_p lx 99.0);
          f2 (s_p lx 99.9);
          f2 (s_p lx 99.0 /. s_p nk 99.0);
        ])
      data
  in
  let _, pk, pl =
    List.find (fun (rps, _, _) -> rps = s1_pinned) data
  in
  [
    Table.make ~title:"S1: throughput vs p99 - NK-like vs Linux-like personality"
      ~headers:
        [
          "offered"; "util"; "nk-p50us"; "nk-p99us"; "nk-p99.9us"; "lx-p50us";
          "lx-p99us"; "lx-p99.9us"; "lx/nk-p99";
        ]
      ~notes:
        [
          "8 workers + 1 frontend CPU, 20us bodies on fibers, po2 dispatch,";
          "fifo order, cap 64, Poisson arrivals for 50ms.  Per-request costs";
          "that differ by personality (futex block/wake + kernel crossings +";
          "wake latency + tick noise vs lightweight NK paths) compound";
          "through the queues into the tail.";
          Printf.sprintf
            "At the pinned %.0fk rps offered load the NK-like stack delivers"
            (s1_pinned /. 1000.0);
          Printf.sprintf
            "p99 = %.2f us vs %.2f us Linux-like (%.0f%% higher tail)."
            (s_p pk 99.0) (s_p pl 99.0)
            (100.0 *. ((s_p pl 99.0 /. s_p pk 99.0) -. 1.0));
        ]
      rows;
  ]

let s2_pools = [ 0; 4; 16; 64 ]

let s2_tables () =
  let workload =
    Iw_service.Workload.Bursty
      {
        rps_on = 50_000.0;
        rps_off = 6_000.0;
        mean_on_us = 5_000.0;
        mean_off_us = 5_000.0;
        duration_us = s_duration_us;
      }
  in
  let rows =
    List.map
      (fun pool ->
        let r =
          s_run
            ~backend:
              (Iw_service.Plane.Virtine_exec { vconfig = s_bespoke_pooled; pool })
            workload
        in
        [
          i2 pool;
          i2 r.Iw_service.Plane.rep_completed;
          i2 r.rep_pool_hits;
          i2 r.rep_spawns;
          f2 (s_p r 50.0);
          f2 (s_p r 99.0);
          f2 (s_p r 99.9);
        ])
      s2_pools
  in
  [
    Table.make ~title:"S2: virtine pool sizing under bursty arrivals"
      ~headers:
        [
          "pool"; "completed"; "pool-hits"; "spawns"; "p50us"; "p99us";
          "p99.9us";
        ]
      ~notes:
        [
          "MMPP on/off arrivals (50k/6k rps, 5ms mean dwell) executed as";
          "bespoke 16-bit virtine calls; a consumed warm context only";
          "returns to the pool one cold-spawn latency later, so bursts";
          "drain small pools and fall back to cold boots - the serverless";
          "cold-start story as a pool-size knob.";
        ]
      rows;
  ]

let s3_tables () =
  let workload =
    Iw_service.Workload.Poisson { rps = 340_000.0; duration_us = s_duration_us }
  in
  let rows =
    List.map
      (fun policy ->
        let r = s_run ~policy workload in
        [
          Iw_service.Dispatch.name policy;
          f2 (Iw_service.Plane.mean_us r r.Iw_service.Plane.rep_queue);
          f2 (s_p r 50.0);
          f2 (s_p r 99.0);
          f2 (s_p r 99.9);
          i2 r.rep_shed;
        ])
      Iw_service.Dispatch.all
  in
  [
    Table.make ~title:"S3: dispatch policy shootout at 0.85 load"
      ~headers:[ "policy"; "q-mean-us"; "p50us"; "p99us"; "p99.9us"; "shed" ]
      ~notes:
        [
          "Poisson 340k rps over 8 workers (20us bodies, fifo, cap 64).";
          "With near-deterministic service times cyclic assignment (rr) is";
          "close to optimal; blind random sampling is catastrophic at this";
          "load.  jsq scans every queue; po2 samples just two and already";
          "recovers most of the distance from random back to jsq - the";
          "power-of-two-choices result.";
        ]
      rows;
  ]

let s4_rates = [ 0.0; 1e-3; 1e-2; 5e-2 ]

let s4_tables () =
  let kinds = Plan.[ Cpu_stall; Virtine_fail; Pool_poison ] in
  let workload =
    Iw_service.Workload.Poisson { rps = 60_000.0; duration_us = s_duration_us }
  in
  let runs =
    List.map
      (fun rate ->
        let r, c =
          run_faulted ~rate ~seed:42 ~kinds (fun () ->
              s_run
                ~backend:
                  (Iw_service.Plane.Virtine_exec
                     { vconfig = s_bespoke_pooled; pool = 16 })
                workload)
        in
        (rate, r, c))
      s4_rates
  in
  let base = match runs with (_, r, _) :: _ -> s_p r 99.0 | [] -> 1.0 in
  let rows =
    List.map
      (fun (rate, r, c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          i2 r.Iw_service.Plane.rep_completed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 (g Iw_obs.Counter.Virtine_relaunch);
          i2 (g Iw_obs.Counter.Pool_evict);
          f2 (s_p r 99.0);
          f2 (s_p r 99.0 /. base);
        ])
      runs
  in
  [
    Table.make ~title:"S4: tail latency vs fault rate under load"
      ~headers:
        [
          "fault-rate"; "completed"; "faults"; "relaunches"; "pool-evicts";
          "p99us"; "p99-slowdown";
        ]
      ~notes:
        [
          "Poisson 60k rps served as pooled bespoke virtines while a scoped";
          "fault plan injects CPU stalls, failed virtine launches, and";
          "poisoned pool entries.  Every request still completes - the";
          "recovery machinery (relaunch, pool eviction) converts faults";
          "into tail latency rather than errors.";
        ]
      rows;
  ]

(* S5: the scale run.  A million-plus requests per config, pushed
   through both execution backends.  The interesting columns are the
   ones that must NOT grow with request count: the arena high-water
   capacity and doubling count (in-flight requests, not total
   requests — the flat state machines + request arena make
   steady-state processing allocation-free).  The Gc-measured words
   live in the bench JSON and the `serve --alloc-budget` gate, not in
   this table: Gc.quick_stat includes terminated sibling domains, so
   printing it here would break parallel-vs-serial byte-identity. *)

let s5_tables () =
  (* Per-backend offered load, each totalling >1M requests: fibers
     take ~0.88 load at 350k rps; a warm bespoke-pooled virtine call
     costs ~129us (snapshot-restore 83us + pool dispatch 9us + jitter,
     then marshal + body + teardown), so that backend's capacity over
     8 workers is ~62k rps and it runs longer at 55k (~0.89 load)
     with the pool provisioned well above the in-flight high-water
     mark (S2 showed what an undersized pool does to the tail). *)
  let backends =
    [
      (Iw_service.Plane.Fiber_exec, 350_000.0, 3_000_000.0);
      ( Iw_service.Plane.Virtine_exec { vconfig = s_bespoke_pooled; pool = 512 },
        55_000.0,
        20_000_000.0 );
    ]
  in
  let rows =
    List.map
      (fun (backend, rps, duration_us) ->
        let r =
          s_run ~backend (Iw_service.Workload.Poisson { rps; duration_us })
        in
        [
          r.Iw_service.Plane.rep_backend;
          i2 r.Iw_service.Plane.rep_completed;
          i2 r.rep_shed;
          f2 (s_p r 50.0);
          f2 (s_p r 99.0);
          i2 r.rep_arena_capacity;
          i2 r.rep_arena_grows;
        ])
      backends
  in
  [
    Table.make ~title:"S5: 1M-request scale run - allocation-free hot path"
      ~headers:
        [
          "backend"; "completed"; "shed"; "p50us"; "p99us"; "arena-cap";
          "arena-grows";
        ]
      ~notes:
        [
          "Poisson arrivals over 8 workers (20us bodies, po2, fifo, cap 64):";
          "350k rps x 3s on fibers, 55k rps x 20s as pooled bespoke";
          "virtines - >1M requests per config.  Requests are arena indices,";
          "workers and the load generator are flat state machines, and the";
          "engine's firing machinery is closure- and ref-free, so the";
          "arena high-water mark, not the request count, bounds memory:";
          "the arena stops doubling once the in-flight peak is reached.";
          "The minor-heap profile (0 words/steady-state request) is";
          "measured where the process is single-domain and gated by";
          "`make alloc-smoke`; Gc.quick_stat folds in terminated sibling";
          "domains, so a per-run figure here would be racy under --jobs.";
        ]
      rows;
  ]

(* S6/S7: the fleet.  The service plane scaled out — N simulated
   machines (mixed personalities and cost tables) behind a balancing
   front tier, every signal and every request crossing a modeled
   network.  The point of S6 is that *where a dispatch signal travels*
   changes which policy wins: queue-aware policies act on gossip that
   is one link latency plus one gossip period stale, and at high
   staleness the herd effect hands the win back to signal-free
   policies.  S7 runs the interweaving argument in reverse across the
   network layer: drops, delays, and machine pauses become retries,
   ejections, and tail latency, not errors. *)

let s6_fleet ~policy ~gossip_us ~rps =
  let open Iw_service in
  {
    (Fleet.default ()) with
    Fleet.fc_machines =
      [|
        { (Fleet.knl_spec ~workers:4 ()) with Fleet.ms_name = "knl0" };
        { (Fleet.knl_spec ~workers:4 ()) with Fleet.ms_name = "knl1" };
        { (Fleet.server_spec ~workers:2 ()) with Fleet.ms_name = "srv0" };
        { (Fleet.server_spec ~workers:2 ()) with Fleet.ms_name = "srv1" };
      |];
    fc_workload = Workload.Poisson { rps; duration_us = 30_000.0 };
    fc_policy = policy;
    fc_gossip_us = gossip_us;
  }

let s6_p (r : Iw_service.Fleet.report) pct =
  Iw_service.Fleet.percentile_us r r.fr_total pct

(* 2x knl-like (4 workers, 20us bodies) + 2x server-like (2 faster
   workers, 8us bodies): fleet capacity ~0.9 req/us; drive 0.85. *)
let s6_rps = 765_000.0
let s6_staleness = [ 25.0; 100.0; 400.0 ]

let s6_tables () =
  let run policy gossip_us =
    Iw_service.Fleet.run (s6_fleet ~policy ~gossip_us ~rps:s6_rps)
  in
  let row name gossip_us (r : Iw_service.Fleet.report) =
    [
      name;
      f2 gossip_us;
      i2 r.fr_completed;
      i2 r.fr_retries;
      i2 r.fr_nacks;
      f2 (s6_p r 50.0);
      f2 (s6_p r 99.0);
      f2 (s6_p r 99.9);
    ]
  in
  let blind =
    List.map
      (fun policy ->
        let r = run policy 100.0 in
        row (Iw_service.Dispatch.name policy) 100.0 r)
      [ Iw_service.Dispatch.Round_robin; Iw_service.Dispatch.Random ]
  in
  let aware =
    List.concat_map
      (fun policy ->
        List.map
          (fun gossip_us ->
            let r = run policy gossip_us in
            row (Iw_service.Dispatch.name policy) gossip_us r)
          s6_staleness)
      [ Iw_service.Dispatch.Jsq; Iw_service.Dispatch.Po2; Iw_service.Dispatch.Wjsq ]
  in
  [
    Table.make ~title:"S6: heterogeneous fleet dispatch vs gossip staleness"
      ~headers:
        [
          "policy"; "gossip-us"; "completed"; "retries"; "nacks"; "p50us";
          "p99us"; "p99.9us";
        ]
      ~notes:
        [
          "Poisson 765k rps (0.85 fleet load) over 2x knl-like (4 workers,";
          "20us bodies) + 2x server-like (2 workers 2.5x faster) behind a";
          "front tier; requests and queue-depth gossip cross a 15us/10Gbps";
          "modeled network.  Queue-aware policies (jsq, po2, wjsq) see";
          "depths one latency + one gossip period stale: fresh gossip";
          "beats the blind policies, stale gossip herds the fleet into";
          "whichever machine last reported shortest and pays in nacks and";
          "tail; capacity weighting (wjsq) only redirects the herd toward";
          "the faster boxes - it cannot repair a stale signal.";
        ]
      (blind @ aware);
  ]

let s7_machines () =
  let open Iw_service in
  [|
    { (Fleet.knl_spec ~workers:4 ()) with Fleet.ms_name = "knl0" };
    { (Fleet.knl_spec ~workers:4 ()) with Fleet.ms_name = "knl1" };
    { (Fleet.server_spec ~workers:2 ()) with Fleet.ms_name = "srv0" };
  |]

let s7_tables () =
  let open Iw_service in
  let kinds = Plan.[ Link_drop; Link_delay; Machine_pause ] in
  let cfg =
    {
      (Fleet.default ()) with
      Fleet.fc_machines = s7_machines ();
      fc_workload =
        Workload.Poisson { rps = 390_000.0; duration_us = 30_000.0 };
      fc_policy = Dispatch.Po2;
      fc_gossip_us = 50.0;
    }
  in
  let runs =
    List.map
      (fun rate ->
        let r, c = run_faulted ~rate ~seed:42 ~kinds (fun () -> Fleet.run cfg) in
        (rate, r, c))
      s4_rates
  in
  let base = match runs with (_, r, _) :: _ -> s6_p r 99.0 | [] -> 1.0 in
  let rows =
    List.map
      (fun (rate, (r : Fleet.report), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          i2 r.fr_completed;
          i2 r.fr_failed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 r.fr_net_drops;
          i2 r.fr_retries;
          i2 r.fr_ejects;
          f2 (s6_p r 99.0);
          f2 (s6_p r 99.0 /. base);
        ])
      runs
  in
  [
    Table.make ~title:"S7: fleet degradation under network faults"
      ~headers:
        [
          "fault-rate"; "completed"; "failed"; "faults"; "drops"; "retries";
          "ejects"; "p99us"; "p99-slowdown";
        ]
      ~notes:
        [
          "Poisson 390k rps (0.65 load) over 2x knl-like + 1x server-like";
          "while a scoped fault plan drops and delays link messages and";
          "pauses whole machines for a sync window.  The front tier";
          "recovers with per-attempt timeouts, nack-triggered fast";
          "retries, and streak-based ejection; faults surface as retry";
          "traffic and p99 growth, with requests failing outright only";
          "once the retry budget is spent.";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* R5-R8: degradation curves with each recovery toggled on/off.  One
   shared fleet (the S7 mix plus an SLO and a heavy-ish tail keeps the
   curves honest: recoveries must buy goodput under load, not in an
   idle fleet), one toggle per table, rows = fault rate x recovery. *)

let deg_cfg () =
  let open Iw_service in
  {
    (Fleet.default ()) with
    Fleet.fc_machines = s7_machines ();
    fc_workload = Workload.Poisson { rps = 300_000.0; duration_us = 20_000.0 };
    fc_policy = Dispatch.Po2;
    fc_gossip_us = 50.0;
    fc_slo_us = 400.0;
    fc_slo_target = 0.999;
    fc_deadline_us = 400.0;
    fc_demand =
      Workload.Dpareto { alpha = 1.5; xmin_us = 12.0; xmax_us = 240.0 };
  }

(* Overall burn rate for the run: (bad/total) / (1 - target).  1.00 =
   burning exactly the error budget. *)
let deg_burn (r : Iw_service.Fleet.report) =
  if r.fr_slo_total = 0 then "0"
  else
    f2
      (float_of_int (r.fr_slo_total - r.fr_slo_good)
      /. float_of_int r.fr_slo_total
      /. (1.0 -. 0.999))

let deg_runs ~kinds ~with_cfg =
  let open Iw_service in
  List.concat_map
    (fun rate ->
      List.map
        (fun on ->
          let r, c =
            run_faulted ~rate ~seed:42 ~kinds (fun () ->
                Fleet.run (with_cfg on))
          in
          (rate, on, (r : Fleet.report), c))
        [ false; true ])
    s4_rates

let onoff on = if on then "on" else "off"

let r5_tables () =
  let open Iw_service in
  let runs =
    deg_runs
      ~kinds:Plan.[ Worker_hang ]
      ~with_cfg:(fun on -> { (deg_cfg ()) with Fleet.fc_watchdog = on })
  in
  let rows =
    List.map
      (fun (rate, on, (r : Fleet.report), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          onoff on;
          i2 r.fr_completed;
          i2 r.fr_failed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 r.fr_steals;
          i2 r.fr_slo_good;
          f2 (s6_p r 99.0);
          deg_burn r;
        ])
      runs
  in
  [
    Table.make ~title:"R5: worker hangs vs the hang watchdog"
      ~headers:
        [
          "fault-rate"; "watchdog"; "completed"; "failed"; "faults"; "steals";
          "slo-good"; "p99us"; "burn";
        ]
      ~notes:
        [
          "Workers silently stop draining their queue (a quarter of the";
          "hangs are permanent).  Off: queued requests sit until the";
          "front tier's RTO re-sends them, and permanently hung workers";
          "strand capacity for the rest of the run.  On: a per-machine";
          "watchdog scans every quarter hang-period and steals the hung";
          "worker's queue onto its shortest live peer.";
        ]
      rows;
  ]

let r6_tables () =
  let open Iw_service in
  let runs =
    deg_runs
      ~kinds:Plan.[ Req_corrupt ]
      ~with_cfg:(fun on -> { (deg_cfg ()) with Fleet.fc_corrupt_retry = on })
  in
  let rows =
    List.map
      (fun (rate, on, (r : Fleet.report), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          onoff on;
          i2 r.fr_completed;
          i2 r.fr_failed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 r.fr_corrupt_retries;
          i2 r.fr_slo_good;
          f2 (s6_p r 99.0);
          deg_burn r;
        ])
      runs
  in
  [
    Table.make ~title:"R6: response corruption vs re-execution"
      ~headers:
        [
          "fault-rate"; "re-exec"; "completed"; "failed"; "faults"; "re-execs";
          "slo-good"; "p99us"; "burn";
        ]
      ~notes:
        [
          "A completed response comes back garbage.  Off: the caller";
          "accepts it (counted complete, never SLO-good).  On: the front";
          "tier burns the work and re-executes through the ordinary";
          "retry budget, trading p99 for goodput.";
        ]
      rows;
  ]

let r7_tables () =
  let open Iw_service in
  let runs =
    deg_runs
      ~kinds:Plan.[ Machine_brownout ]
      ~with_cfg:(fun on ->
        {
          (deg_cfg ()) with
          Fleet.fc_policy = Dispatch.Wjsq;
          fc_bw_wjsq = on;
        })
  in
  let rows =
    List.map
      (fun (rate, on, (r : Fleet.report), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          onoff on;
          i2 r.fr_completed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 r.fr_brownouts;
          i2 r.fr_retries;
          i2 r.fr_slo_good;
          f2 (s6_p r 99.0);
          deg_burn r;
        ])
      runs
  in
  [
    Table.make ~title:"R7: machine brownouts vs observed-rate wjsq"
      ~headers:
        [
          "fault-rate"; "bw-wjsq"; "completed"; "faults"; "brownouts";
          "retries"; "slo-good"; "p99us"; "burn";
        ]
      ~notes:
        [
          "Machines drop to a third-to-half speed for a drawn interval.";
          "Off: wjsq weights by nominal workers x speed, so the balancer";
          "keeps feeding the slow machine.  On: weights come from a";
          "leaky integrator of observed completions per window, so a";
          "browned-out machine sheds load until it recovers.";
        ]
      rows;
  ]

let r8_tables () =
  let open Iw_service in
  let kinds =
    Plan.[ Worker_hang; Req_corrupt; Machine_brownout; Link_drop ]
  in
  let with_cfg on =
    {
      (deg_cfg ()) with
      Fleet.fc_watchdog = on;
      fc_corrupt_retry = on;
      fc_bw_wjsq = on;
      fc_hedge_frac = (if on then 0.5 else 0.0);
      fc_admit = on;
    }
  in
  let runs = deg_runs ~kinds ~with_cfg in
  let rows =
    List.map
      (fun (rate, on, (r : Fleet.report), c) ->
        let g id = Iw_obs.Counter.get c id in
        [
          rate_cell rate;
          onoff on;
          i2 r.fr_completed;
          i2 r.fr_failed;
          i2 (g Iw_obs.Counter.Fault_injected);
          i2 (r.fr_steals + r.fr_corrupt_retries);
          i2 r.fr_hedges;
          i2 r.fr_admission_shed;
          i2 r.fr_slo_good;
          f2 (s6_p r 99.0);
          deg_burn r;
        ])
      runs
  in
  [
    Table.make ~title:"R8: full chaos vs every recovery at once"
      ~headers:
        [
          "fault-rate"; "recover"; "completed"; "failed"; "faults";
          "steal+reexec"; "hedges"; "sheds"; "slo-good"; "p99us"; "burn";
        ]
      ~notes:
        [
          "Hangs, corruption, brownouts, and link drops together, against";
          "the whole recovery ladder: watchdog stealing, re-execution,";
          "observed-rate balancing, deadline-fraction hedging (budget 10%";
          "of arrivals), and SLO-aware admission control.  Sheds count";
          "against the SLO - graceful degradation flattens the burn";
          "curve by finishing the requests it accepts.";
        ]
      rows;
  ]

(* ------------------------------------------------------------------ *)
(* N1-N2: the simulated NIC (ISSUE 10).  One knl-like machine (4
   workers, 20us bodies, ~200k rps capacity) behind the front tier,
   with every request landing in the machine's RX descriptor ring and
   every response draining through its TX ring.  N1 sweeps the ITR
   moderation register under Poisson and MMPP arrivals; N2 runs the
   interrupt-vs-poll-vs-hybrid crossover over an offered-rate sweep.
   The power proxy charges what each mode burns that is not packet
   work: empty poll checks, plus interrupt entry/exit cycles. *)

let nic_fleet ~mode ~itr_us ~workload =
  let open Iw_service in
  {
    (Fleet.default ()) with
    Fleet.fc_machines =
      [| { (Fleet.knl_spec ~workers:4 ()) with Fleet.ms_name = "knl0" } |];
    fc_workload = workload;
    fc_gossip_us = 50.0;
    fc_nic = true;
    fc_nic_mode = mode;
    fc_itr_us = itr_us;
  }

let nic_poisson rps = Iw_service.Workload.Poisson { rps; duration_us = 25_000.0 }

(* Two-state MMPP at the same mean rate: 1.6x on / 0.4x off with 2.5ms
   dwells, so bursts are long against any sane ITR gap. *)
let nic_mmpp rps =
  Iw_service.Workload.Bursty
    {
      rps_on = 1.6 *. rps;
      rps_off = 0.4 *. rps;
      mean_on_us = 2_500.0;
      mean_off_us = 2_500.0;
      duration_us = 25_000.0;
    }

(* Cycles a mode burned that were not packet work: empty poll checks
   plus interrupt entry/exit overhead. *)
let nic_power_kc (r : Iw_service.Fleet.report) =
  let costs = Iw_hw.Platform.knl.Iw_hw.Platform.costs in
  let irq_overhead =
    r.fr_nic_irqs
    * (costs.Iw_hw.Platform.interrupt_dispatch
      + costs.Iw_hw.Platform.interrupt_return)
  in
  (r.fr_nic_wasted_cycles + irq_overhead) / 1000

let n1_tables () =
  let open Iw_service in
  let row wname rps itr_us =
    let workload =
      if wname = "poisson" then nic_poisson rps else nic_mmpp rps
    in
    let r =
      Fleet.run (nic_fleet ~mode:Iw_kernel.Nic_driver.Hybrid ~itr_us ~workload)
    in
    [
      wname;
      i2 (int_of_float rps);
      f2 itr_us;
      i2 r.fr_completed;
      i2 r.fr_nic_irqs;
      i2 r.fr_nic_polls;
      i2 r.fr_nic_empty_polls;
      i2 (r.fr_nic_wasted_cycles / 1000);
      f2 (s6_p r 50.0);
      f2 (s6_p r 99.0);
    ]
  in
  let rows =
    List.concat_map
      (fun wname ->
        List.concat_map
          (fun rps -> List.map (row wname rps) [ 0.0; 5.0; 25.0 ])
          [ 100_000.0; 170_000.0 ])
      [ "poisson"; "mmpp" ]
  in
  [
    Table.make ~title:"N1: ITR interrupt moderation vs workload shape"
      ~headers:
        [
          "workload"; "rps"; "itr-us"; "completed"; "irqs"; "polls"; "empty";
          "wasted-kc"; "p50us"; "p99us";
        ]
      ~notes:
        [
          "One knl-like machine (4 workers, 20us bodies) taking every";
          "request through its NIC RX ring, hybrid driver, 25ms runs.";
          "ITR sets the minimum gap between RX interrupts: 0 fires on";
          "every enabled-with-work edge, larger gaps batch frames behind";
          "one interrupt at the price of delivery delay (visible in p50";
          "before p99).  MMPP arrivals (1.6x/0.4x, 2.5ms dwells) make";
          "moderation cheaper: bursts amortize an interrupt anyway, so";
          "the irq count falls faster than the tail grows.";
        ]
      rows;
  ]

let n2_rates = [ 40_000.0; 100_000.0; 160_000.0; 190_000.0 ]

let n2_tables () =
  let open Iw_service in
  let row mode rps =
    let r =
      Fleet.run (nic_fleet ~mode ~itr_us:0.0 ~workload:(nic_poisson rps))
    in
    [
      Iw_kernel.Nic_driver.mode_name mode;
      i2 (int_of_float rps);
      i2 r.fr_completed;
      i2 r.fr_nic_irqs;
      i2 r.fr_nic_polls;
      i2 r.fr_nic_switches;
      i2 (nic_power_kc r);
      f2 (s6_p r 50.0);
      f2 (s6_p r 99.0);
    ]
  in
  let rows =
    List.concat_map
      (fun mode -> List.map (row mode) n2_rates)
      [ Iw_kernel.Nic_driver.Irq; Iw_kernel.Nic_driver.Poll;
        Iw_kernel.Nic_driver.Hybrid ]
  in
  [
    Table.make ~title:"N2: interrupt vs poll vs hybrid across offered rate"
      ~headers:
        [
          "mode"; "rps"; "completed"; "irqs"; "polls"; "switches"; "power-kc";
          "p50us"; "p99us";
        ]
      ~notes:
        [
          "Same one-machine fleet, ITR 0, Poisson sweep from 0.2 to 0.95";
          "load.  power-kc charges what is not packet work: empty poll";
          "checks plus interrupt entry/exit cycles.  Interrupt mode is";
          "cheap when idle and pays per frame; the poll engine's cost is";
          "flat while its empty checks vanish under load; the hybrid";
          "driver (NAPI) rides interrupts at low rate and switches to";
          "polling exactly when budget-limited drains start leaving";
          "frames behind.";
        ]
      rows;
  ]

(* ================================================================== *)

let all () =
  [
    {
      id = "E1";
      title = "Fig.3 heartbeat rate + SecIV-B overhead";
      paper_claim =
        "NK hits 20us/100us targets steadily; Linux cannot. Overhead 13-22% (Linux) vs <=4.9% (NK).";
      tables = e1_tables;
    };
    {
      id = "E3";
      title = "Fig.4 context switch costs";
      paper_claim =
        "Linux ~5000cy (FP); NK threads ~half; compiler-timed fibers 2.3x/4x lower; <600cy floor.";
      tables = e3_tables;
    };
    {
      id = "E4";
      title = "Fig.6 kernel OpenMP on KNL";
      paper_claim = "RTK ~22% geomean over Linux OpenMP, growing with scale; PIK similar.";
      tables = e4_tables;
    };
    {
      id = "E5";
      title = "SecV-A big-iron repetition";
      paper_claim = "~20% for RTK and PIK on 8-socket/192-core machine.";
      tables = e5_tables;
    };
    {
      id = "E6";
      title = "Fig.7 selective coherence deactivation";
      paper_claim = "~46% average speedup on PBBS; ~53% interconnect energy reduction.";
      tables = e6_tables;
    };
    {
      id = "E7";
      title = "SecIV-A CARAT overhead";
      paper_claim = "<6% geomean overhead on NAS/Mantevo/PARSEC with hoisting/aggregation.";
      tables = e7_tables;
    };
    {
      id = "E8";
      title = "SecIV-D virtine start-up";
      paper_claim = "Start-up overheads as low as ~100us.";
      tables = e8_tables;
    };
    {
      id = "E9";
      title = "SecV-D pipeline interrupts";
      paper_claim = "IDT ~1000 cycles; branch-injected delivery 100-1000x better.";
      tables = e9_tables;
    };
    {
      id = "E10";
      title = "SecIII Nautilus primitives";
      paper_claim =
        "Primitives orders of magnitude faster; app speedups 20-40% over Linux.";
      tables = e10_tables;
    };
    {
      id = "E11";
      title = "SecV-C blended device polling";
      paper_claim = "Polled devices behave as if interrupt-driven; no interrupts occur.";
      tables = e11_tables;
    };
    {
      id = "E12";
      title = "SecIV-C compiler-timing accuracy";
      paper_claim = "Timing calls fire at the desired rate regardless of path.";
      tables = e12_tables;
    };
    {
      id = "E13";
      title = "SecIII steerable device interrupts";
      paper_claim = "Interrupts can largely be avoided on most hardware threads.";
      tables = e13_tables;
    };
    {
      id = "E14";
      title = "SecV-B selective memory ordering";
      paper_claim =
        "x86-TSO fences serialize unrelated writes; selective ordering removes the waste.";
      tables = e14_tables;
    };
    {
      id = "E15";
      title = "SecV-C sub-page transparent far memory";
      paper_claim =
        "Compiler blending evacuates objects (not pages) to remote memory transparently.";
      tables = e15_tables;
    };
    {
      id = "E16";
      title = "SecV-G language-derived coherence hints";
      paper_claim =
        "High-level parallel languages expose the properties lower layers need, by construction.";
      tables = e16_tables;
    };
    {
      id = "A1";
      title = "Ablation: CARAT optimizations";
      paper_claim = "(design-choice study)";
      tables = a1_tables;
    };
    {
      id = "A2";
      title = "Ablation: timing budget sweep";
      paper_claim = "(design-choice study)";
      tables = a2_tables;
    };
    {
      id = "A3";
      title = "Ablation: OpenMP schedules under imbalance";
      paper_claim = "(design-choice study)";
      tables = a3_tables;
    };
    {
      id = "A4";
      title = "Ablation: coherence hint classes";
      paper_claim = "(design-choice study)";
      tables = a4_tables;
    };
    {
      id = "A5";
      title = "Ablation: heartbeat promotion policy";
      paper_claim = "(design-choice study)";
      tables = a5_tables;
    };
    {
      id = "R1";
      title = "Robustness: heartbeat under IPI loss";
      paper_claim = "(fault-injection study; the interweaving argument run in reverse)";
      tables = r1_tables;
    };
    {
      id = "R2";
      title = "Robustness: virtine launch failures";
      paper_claim = "(fault-injection study; the interweaving argument run in reverse)";
      tables = r2_tables;
    };
    {
      id = "R3";
      title = "Robustness: OMP worksharing under dark cores";
      paper_claim = "(fault-injection study; the interweaving argument run in reverse)";
      tables = r3_tables;
    };
    {
      id = "R4";
      title = "Robustness: coherence under spurious shootdowns";
      paper_claim = "(fault-injection study; the interweaving argument run in reverse)";
      tables = r4_tables;
    };
    {
      id = "S1";
      title = "Service plane: throughput vs p99 across OS personalities";
      paper_claim =
        "(service study; kernel specialization read off the latency tail under load)";
      tables = s1_tables;
    };
    {
      id = "S2";
      title = "Service plane: virtine pool sizing under bursty arrivals";
      paper_claim =
        "(service study; SecIV-D start-up elision as a warm-pool knob)";
      tables = s2_tables;
    };
    {
      id = "S3";
      title = "Service plane: dispatch policy shootout";
      paper_claim = "(service study; two choices capture most of jsq's tail win)";
      tables = s3_tables;
    };
    {
      id = "S4";
      title = "Service plane: tail latency vs fault rate";
      paper_claim =
        "(service study; cross-layer recovery converts faults into tail latency)";
      tables = s4_tables;
    };
    {
      id = "S5";
      title = "Service plane: 1M-request scale run, allocation-free hot path";
      paper_claim =
        "(service study; the stack drives realistic traffic volumes only if the hot path sheds allocation)";
      tables = s5_tables;
    };
    {
      id = "S6";
      title = "Fleet: heterogeneous dispatch vs gossip staleness";
      paper_claim =
        "(fleet study; where the dispatch signal travels decides which policy wins)";
      tables = s6_tables;
    };
    {
      id = "S7";
      title = "Fleet: degradation under network faults";
      paper_claim =
        "(fleet study; the interweaving argument run in reverse across the network layer)";
      tables = s7_tables;
    };
    {
      id = "R5";
      title = "Chaos: worker hangs vs the hang watchdog";
      paper_claim =
        "(robustness study; recovery one layer up - the machine watches its own workers)";
      tables = r5_tables;
    };
    {
      id = "R6";
      title = "Chaos: response corruption vs re-execution";
      paper_claim =
        "(robustness study; a wrong answer is a fault the service layer must spend work to mask)";
      tables = r6_tables;
    };
    {
      id = "R7";
      title = "Chaos: machine brownouts vs observed-rate balancing";
      paper_claim =
        "(robustness study; trust what machines do, not what they claim)";
      tables = r7_tables;
    };
    {
      id = "R8";
      title = "Chaos: everything at once vs the full recovery ladder";
      paper_claim =
        "(robustness study; graceful degradation as an end-to-end property of the stack)";
      tables = r8_tables;
    };
    {
      id = "N1";
      title = "NIC: ITR interrupt moderation vs workload shape";
      paper_claim =
        "(SecV-C device study; moderation trades interrupt count against delivery delay)";
      tables = n1_tables;
    };
    {
      id = "N2";
      title = "NIC: interrupt vs poll vs hybrid crossover";
      paper_claim =
        "(SecV-C compiler-injected polling; the hybrid driver tracks the better mode at each rate)";
      tables = n2_tables;
    };
  ]

let find id =
  match List.find_opt (fun e -> String.lowercase_ascii e.id = String.lowercase_ascii id) (all ()) with
  | Some e -> e
  | None -> raise Not_found

let run_to_string e =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "[%s] %s\n  paper: %s\n\n" e.id e.title e.paper_claim);
  List.iter
    (fun t -> Buffer.add_string buf (Table.render t ^ "\n"))
    (e.tables ());
  Buffer.contents buf

(* Run one experiment under a collecting ambient context and return
   its rendered output plus the machine-wide counter totals: every
   component the run creates inherits the scoped trace and registers
   its fresh counter set, so the totals cover all kernels/runtimes the
   experiment booted.  [trace] defaults to the null sink (counters
   still count), so this is also how golden snapshots are captured. *)
type alloc = { alloc_minor_words : float; alloc_major_words : float }

let run_with_counters ?trace e =
  let obs = Iw_obs.Obs.create ?trace ~collect:true () in
  let g0 = Gc.quick_stat () in
  let out = Iw_obs.Obs.with_ambient obs (fun () -> run_to_string e) in
  let g1 = Gc.quick_stat () in
  let alloc =
    {
      alloc_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      alloc_major_words = g1.Gc.major_words -. g0.Gc.major_words;
    }
  in
  (out, Iw_obs.Counter.to_list (Iw_obs.Obs.total_counters obs), alloc)
