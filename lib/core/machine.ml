(* The one machine context the paper argues for (§II–III): instead of
   each layer privately carrying a platform, a simulator, and its own
   ad-hoc counters, a [Machine.t] bundles the stack configuration, the
   observability context (typed counters + trace bus), and the booted
   kernel.  Everything below this layer receives the same [Obs.t]
   (explicitly or ambiently), so one trace shows hardware irq spans,
   kernel switches, and runtime promotions on a shared virtual-cycle
   axis, and one counter table spans every layer. *)

open Iw_hw
open Iw_kernel

type t = {
  stack : Stack.t;
  obs : Iw_obs.Obs.t;
  kernel : Sched.t;
}

let boot ?seed ?quantum_us ?trace stack =
  let obs = Iw_obs.Obs.create ?trace () in
  let kernel =
    Sched.boot ~obs ?seed ?quantum_us
      ~personality:(Stack.personality stack)
      stack.Stack.platform
  in
  { stack; obs; kernel }

let stack t = t.stack
let obs t = t.obs
let kernel t = t.kernel
let platform t = t.stack.Stack.platform
let sim t = Sched.sim t.kernel
let trace t = t.obs.Iw_obs.Obs.trace
let counters t = t.obs.Iw_obs.Obs.counters
let run ?horizon t = Sched.run ?horizon t.kernel

let counter_table t =
  Table.make ~title:"machine counters" ~headers:[ "counter"; "events" ]
    (List.map
       (fun (name, v) -> [ name; string_of_int v ])
       (Iw_obs.Counter.to_list (counters t)))

(* ------------------------------------------------------------------ *)
(* Fleet container: per-machine identity over the same typed
   counters.  A fleet run (Iw_service.Fleet) yields one counter list
   per machine; this folds them into a single table keyed by machine
   name, with a totals row, so cross-machine skew (one box shedding,
   another idle) is visible at a glance. *)

module Fleet = struct
  let counter_table members =
    let tally = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun (_, counters) ->
        List.iter
          (fun (name, v) ->
            match Hashtbl.find_opt tally name with
            | Some r -> r := !r + v
            | None ->
                Hashtbl.add tally name (ref v);
                order := name :: !order)
          counters)
      members;
    let rows =
      List.concat_map
        (fun (mname, counters) ->
          List.map
            (fun (name, v) -> [ mname; name; string_of_int v ])
            counters)
        members
    in
    let totals =
      List.map
        (fun name -> [ "total"; name; string_of_int !(Hashtbl.find tally name) ])
        (List.sort compare (List.rev !order))
    in
    Table.make ~title:"fleet counters"
      ~headers:[ "machine"; "counter"; "events" ]
      (rows @ totals)

  let total members name =
    List.fold_left
      (fun acc (_, counters) ->
        List.fold_left
          (fun acc (n, v) -> if String.equal n name then acc + v else acc)
          acc counters)
      0 members
end

(* ------------------------------------------------------------------ *)
(* The sweepable cost model: every field of [Platform.costs] exposed
   by name, so experiments (and the `sweep` subcommand) can vary one
   hardware/OS cost and watch the whole stack respond. *)

module Sweep = struct
  type field = {
    f_name : string;
    f_doc : string;
    get : Platform.costs -> int;
    set : Platform.costs -> int -> Platform.costs;
  }

  let f f_name f_doc get set = { f_name; f_doc; get; set }

  let fields =
    [
      f "interrupt_dispatch" "IDT entry to first handler insn"
        (fun c -> c.Platform.interrupt_dispatch)
        (fun c v -> { c with Platform.interrupt_dispatch = v });
      f "interrupt_return" "iret path"
        (fun c -> c.Platform.interrupt_return)
        (fun c v -> { c with Platform.interrupt_return = v });
      f "pipeline_interrupt_dispatch" "branch-injected delivery"
        (fun c -> c.Platform.pipeline_interrupt_dispatch)
        (fun c v -> { c with Platform.pipeline_interrupt_dispatch = v });
      f "ipi_send" "LAPIC ICR write on the sender"
        (fun c -> c.Platform.ipi_send)
        (fun c v -> { c with Platform.ipi_send = v });
      f "ipi_latency" "fabric flight time to the target core"
        (fun c -> c.Platform.ipi_latency)
        (fun c v -> { c with Platform.ipi_latency = v });
      f "timer_program" "LAPIC timer reprogram"
        (fun c -> c.Platform.timer_program)
        (fun c v -> { c with Platform.timer_program = v });
      f "ctx_save_int" "integer register save"
        (fun c -> c.Platform.ctx_save_int)
        (fun c v -> { c with Platform.ctx_save_int = v });
      f "ctx_restore_int" "integer register restore"
        (fun c -> c.Platform.ctx_restore_int)
        (fun c v -> { c with Platform.ctx_restore_int = v });
      f "fp_save" "full vector/FP state save"
        (fun c -> c.Platform.fp_save)
        (fun c v -> { c with Platform.fp_save = v });
      f "fp_restore" "full vector/FP state restore"
        (fun c -> c.Platform.fp_restore)
        (fun c v -> { c with Platform.fp_restore = v });
      f "fiber_switch_base" "fiber switch without interrupt machinery"
        (fun c -> c.Platform.fiber_switch_base)
        (fun c v -> { c with Platform.fiber_switch_base = v });
      f "fiber_fp_save" "compiler-aware FP save"
        (fun c -> c.Platform.fiber_fp_save)
        (fun c v -> { c with Platform.fiber_fp_save = v });
      f "fiber_fp_restore" "compiler-aware FP restore"
        (fun c -> c.Platform.fiber_fp_restore)
        (fun c v -> { c with Platform.fiber_fp_restore = v });
      f "sched_pick" "per-core run-queue pick"
        (fun c -> c.Platform.sched_pick)
        (fun c v -> { c with Platform.sched_pick = v });
      f "sched_pick_rt" "real-time admission+pick"
        (fun c -> c.Platform.sched_pick_rt)
        (fun c v -> { c with Platform.sched_pick_rt = v });
      f "cfs_pick" "Linux CFS pick"
        (fun c -> c.Platform.cfs_pick)
        (fun c v -> { c with Platform.cfs_pick = v });
      f "kernel_entry" "syscall/trap entry incl. mitigations"
        (fun c -> c.Platform.kernel_entry)
        (fun c v -> { c with Platform.kernel_entry = v });
      f "kernel_exit" "syscall/trap exit"
        (fun c -> c.Platform.kernel_exit)
        (fun c v -> { c with Platform.kernel_exit = v });
      f "signal_deliver" "kernel-to-user signal frame setup"
        (fun c -> c.Platform.signal_deliver)
        (fun c v -> { c with Platform.signal_deliver = v });
      f "signal_return" "sigreturn"
        (fun c -> c.Platform.signal_return)
        (fun c v -> { c with Platform.signal_return = v });
      f "futex_wake" "futex wake path"
        (fun c -> c.Platform.futex_wake)
        (fun c v -> { c with Platform.futex_wake = v });
      f "futex_wait" "futex wait path"
        (fun c -> c.Platform.futex_wait)
        (fun c v -> { c with Platform.futex_wait = v });
      f "thread_create" "in-kernel thread creation"
        (fun c -> c.Platform.thread_create)
        (fun c v -> { c with Platform.thread_create = v });
      f "thread_create_user" "Linux user-level thread creation"
        (fun c -> c.Platform.thread_create_user)
        (fun c v -> { c with Platform.thread_create_user = v });
      f "thread_exit" "thread teardown"
        (fun c -> c.Platform.thread_exit)
        (fun c v -> { c with Platform.thread_exit = v });
      f "tlb_miss_walk" "page-table walk on a TLB miss"
        (fun c -> c.Platform.tlb_miss_walk)
        (fun c v -> { c with Platform.tlb_miss_walk = v });
      f "page_fault" "minor fault service"
        (fun c -> c.Platform.page_fault)
        (fun c v -> { c with Platform.page_fault = v });
      f "cache_line_local" "L1 hit"
        (fun c -> c.Platform.cache_line_local)
        (fun c v -> { c with Platform.cache_line_local = v });
      f "cache_line_remote" "line transfer across the interconnect"
        (fun c -> c.Platform.cache_line_remote)
        (fun c v -> { c with Platform.cache_line_remote = v });
      f "atomic_rmw" "uncontended atomic read-modify-write"
        (fun c -> c.Platform.atomic_rmw)
        (fun c v -> { c with Platform.atomic_rmw = v });
      f "tick_update" "lightweight per-tick bookkeeping"
        (fun c -> c.Platform.tick_update)
        (fun c v -> { c with Platform.tick_update = v });
      f "tick_accounting_extra" "extra general-purpose tick accounting"
        (fun c -> c.Platform.tick_accounting_extra)
        (fun c v -> { c with Platform.tick_accounting_extra = v });
      f "timer_path_direct" "timer expiry dispatched from the handler"
        (fun c -> c.Platform.timer_path_direct)
        (fun c v -> { c with Platform.timer_path_direct = v });
      f "timer_path_softirq" "timer expiry deferred via softirq"
        (fun c -> c.Platform.timer_path_softirq)
        (fun c v -> { c with Platform.timer_path_softirq = v });
      f "timing_check" "one compiler-inserted timing check"
        (fun c -> c.Platform.timing_check)
        (fun c v -> { c with Platform.timing_check = v });
      f "callback_indirect" "indirect timing-callback invocation"
        (fun c -> c.Platform.callback_indirect)
        (fun c v -> { c with Platform.callback_indirect = v });
    ]

  let find name = List.find_opt (fun fd -> fd.f_name = name) fields

  let names = List.map (fun fd -> fd.f_name) fields

  let with_value plat fd v =
    { plat with Platform.costs = fd.set plat.Platform.costs v }

  (* The pinned probe workload: a small contended multi-thread run on
     [Platform.small] under both personalities.  Deliberately touches
     spawn, locks, preemption, ticks, and sleeps so most cost fields
     move at least one column. *)
  let probe plat os =
    let personality =
      match os with `Nk -> Os.nautilus plat | `Linux -> Os.linux plat
    in
    let personality = { personality with Os.tick_noise = (fun _ -> 0) } in
    let obs = Iw_obs.Obs.create () in
    let k = Sched.boot ~obs ~seed:11 ~quantum_us:100.0 ~personality plat in
    let m = Sched.mutex () in
    for i = 0 to 3 do
      ignore
        (Sched.spawn k
           ~spec:
             {
               Sched.sp_name = Printf.sprintf "w%d" i;
               sp_cpu = Some (i mod 2);
               sp_fp = false;
               sp_rt = false;
             }
           (fun () ->
             for _ = 1 to 5 do
               Api.work 50_000;
               Api.with_lock m (fun () -> Api.work 5_000)
             done;
             Api.sleep 10_000))
    done;
    Sched.run k;
    let work = Sched.total_work_cycles k in
    let overhead = Sched.total_overhead_cycles k in
    ( Sched.now k,
      100.0 *. float_of_int overhead /. float_of_int (max 1 (work + overhead))
    )

  let sensitivity ?(plat = Platform.small) fd values =
    let base_nk, _ = probe plat `Nk in
    let base_lx, _ = probe plat `Linux in
    let rows =
      List.map
        (fun v ->
          let plat' = with_value plat fd v in
          let nk_elapsed, nk_pct = probe plat' `Nk in
          let lx_elapsed, lx_pct = probe plat' `Linux in
          let delta base now =
            100.0 *. float_of_int (now - base) /. float_of_int (max 1 base)
          in
          [
            string_of_int v;
            string_of_int nk_elapsed;
            Printf.sprintf "%.1f%%" nk_pct;
            Printf.sprintf "%+.1f%%" (delta base_nk nk_elapsed);
            string_of_int lx_elapsed;
            Printf.sprintf "%.1f%%" lx_pct;
            Printf.sprintf "%+.1f%%" (delta base_lx lx_elapsed);
          ])
        values
    in
    Table.make
      ~title:
        (Printf.sprintf "sensitivity: %s (%s; default %d)" fd.f_name fd.f_doc
           (fd.get plat.Platform.costs))
      ~headers:
        [
          "value";
          "nk-elapsed";
          "nk-overh";
          "nk-delta";
          "linux-elapsed";
          "linux-overh";
          "linux-delta";
        ]
      rows

  (* Geometric-ish default range around the current value: 0, /4, /2,
     1x, 2x, 4x — enough to see whether the stack is sensitive at
     all and in which direction. *)
  let default_values plat fd =
    let v = fd.get plat.Platform.costs in
    List.sort_uniq compare [ 0; v / 4; v / 2; v; v * 2; v * 4 ]

  (* 2-D grid: vary two cost fields together and render the probe's
     elapsed cycles as a matrix (rows = [fd1] values, columns = [fd2]
     values) — the cross-layer interaction view the 1-D sensitivity
     table can't show (e.g. ipi_latency x timer_path_softirq). *)
  let grid ?(plat = Platform.small) ?(os = `Nk) fd1 fd2 values1 values2 =
    let os_name = match os with `Nk -> "nk" | `Linux -> "linux" in
    let rows =
      List.map
        (fun v1 ->
          string_of_int v1
          :: List.map
               (fun v2 ->
                 let plat' = with_value (with_value plat fd1 v1) fd2 v2 in
                 let elapsed, _ = probe plat' os in
                 string_of_int elapsed)
               values2)
        values1
    in
    Table.make
      ~title:
        (Printf.sprintf "grid: elapsed cycles (%s), %s (rows) x %s (cols)"
           os_name fd1.f_name fd2.f_name)
      ~headers:(Printf.sprintf "%s\\%s" fd1.f_name fd2.f_name
                :: List.map string_of_int values2)
      rows
end
