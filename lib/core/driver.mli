(** Share-nothing parallel map over OCaml 5 domains.

    Built for the experiment registry: each experiment carries its own
    simulator and RNG state, so running them on separate domains is
    safe, and results are always returned in input order — callers
    that print them produce byte-identical output to a serial run. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], overridable via the
    [INTERWEAVE_JOBS] environment variable (invalid values fall back
    to 1). *)

val parallel_map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [parallel_map ~jobs f xs] applies [f] to every element of [xs]
    using up to [jobs] domains (the calling domain included) and
    returns the results in input order.  [jobs <= 1] degrades to
    [List.map].  If any application raises, the first exception is
    re-raised after all domains join; remaining work is skipped. *)
