(** The experiment registry: one entry per table/figure reproduced
    from the paper (E1..E12) plus ablations of the design choices
    DESIGN.md calls out (A1..A4).

    Every experiment is deterministic (fixed seeds) and returns
    rendered {!Table.t}s; the benchmark harness and the CLI both drive
    this registry. *)

type experiment = {
  id : string;  (** "E1".."E12", "A1".."A4" *)
  title : string;
  paper_claim : string;  (** What the paper reports, for comparison. *)
  tables : unit -> Table.t list;  (** Run it. *)
}

val all : unit -> experiment list
(** In id order. *)

val find : string -> experiment
(** @raise Not_found *)

val run_to_string : experiment -> string
(** Header + every table, rendered. *)

type alloc = {
  alloc_minor_words : float;
      (** OCaml minor-heap words allocated while the experiment ran
          (current domain). *)
  alloc_major_words : float;
      (** Major-heap words over the same window: direct large-block
          allocation plus promotions, so less stable run-to-run than
          the minor figure. *)
}

val run_with_counters :
  ?trace:Iw_obs.Trace.t ->
  experiment ->
  string * (string * int) list * alloc
(** {!run_to_string} under a collecting ambient context: the rendered
    output plus machine-wide counter totals summed over every
    component the run created, plus the GC allocation profile of the
    run — the quantity the zero-allocation hot path is judged by.
    [trace] defaults to the null sink, so counters are gathered with
    zero tracing cost unless a ring is passed. *)
