(* Parallel experiment driver.

   Every experiment in the registry owns its own [Sim.t] and seeded
   [Rng.t]; the engine's only module-level values ([Sim.null_event],
   the timer-wheel [nop]) are never mutated after initialization, so
   experiments are share-nothing and can run on separate OCaml 5
   domains.  [parallel_map] farms the list out to domains through a
   shared [Atomic.t] work index and writes results into a
   pre-allocated slot array, so the caller always sees results in
   input order — parallel output merges back byte-identical to the
   serial run. *)

let worker ~f ~items ~results ~next ~failure () =
  let n = Array.length items in
  let rec loop () =
    (* Stop picking up work once any domain has failed. *)
    if Atomic.get failure = None then begin
      let i = Atomic.fetch_and_add next 1 in
      if i < n then begin
        (match f items.(i) with
        | r -> results.(i) <- Some r
        | exception e ->
            ignore (Atomic.compare_and_set failure None (Some e)));
        loop ()
      end
    end
  in
  loop ()

let default_jobs () =
  match Sys.getenv_opt "INTERWEAVE_JOBS" with
  | Some s -> ( match int_of_string_opt s with Some j when j > 0 -> j | _ -> 1)
  | None -> Domain.recommended_domain_count ()

let parallel_map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  let jobs = min jobs n in
  if jobs <= 1 then List.map f xs
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let run = worker ~f ~items ~results ~next ~failure in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn run) in
    run ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* all slots filled *))
         results)
  end
