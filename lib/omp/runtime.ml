open Iw_engine
open Iw_kernel

type mode = Linux_user | Rtk | Pik | Cck

let mode_name = function
  | Linux_user -> "linux-omp"
  | Rtk -> "rtk"
  | Pik -> "pik"
  | Cck -> "cck"

let personality_of_mode mode plat =
  match mode with
  | Linux_user -> Os.linux plat
  | Rtk | Pik | Cck -> Os.nautilus plat

type schedule = Static | Dynamic of int | Guided of int

type region = {
  r_iters : int;
  r_cycles : int -> int;
  r_sched : schedule;
  mutable r_next : int;
}

type t = {
  k : Sched.t;
  mode : mode;
  nthreads : int;
  mutable gen : int;  (* region generation; bump = release *)
  mutable region : region option;
  mutable arrived : int;  (* workers done with the current region *)
  mutable lost : int;  (* arrivals swallowed by injected barrier faults *)
  mutable team : Sched.thread list;
  tasks : Task.t option;  (* CCK backend *)
  mutable stopping : bool;
  mutable nregions : int;
  mutable nchunks : int;
}

(* The PIK process abstraction interposes a thin shim on each runtime
   call (§V-A). *)
let pik_shim = 100

(* Active-wait polling, libomp-style (OMP_WAIT_POLICY=active): tight
   at first, then progressively lazier so idle teams don't flood the
   simulator with events. *)
let poll_cost spins =
  if spins < 16 then 150 else if spins < 64 then 1_500 else 15_000

let sum_cycles f lo hi =
  let acc = ref 0 in
  for i = lo to hi - 1 do
    acc := !acc + f i
  done;
  !acc

(* Run one chunk's iterations, wrapped in an "omp_chunk" span on the
   running CPU's track when tracing is on.  The R_now/R_cpu scheduler
   requests are pure queries (the thread continues immediately, no
   cost is charged), so the traced and untraced runs stay
   cycle-identical — and with tracing off this is just the consume. *)
let consume_chunk tr cycles =
  if tr.Iw_obs.Trace.enabled then begin
    let cpu = Api.cpu_id () in
    let start = Api.now () in
    Coro.consume cycles;
    Iw_obs.Trace.span tr ~name:"omp_chunk" ~cat:"omp" ~cpu ~ts:start
      ~dur:(Api.now () - start)
      ()
  end
  else Coro.consume cycles

let run_share t (r : region) wid =
  let plat = Sched.platform t.k in
  let costs = plat.Iw_hw.Platform.costs in
  let tr = (Sched.obs t.k).Iw_obs.Obs.trace in
  let tron = tr.Iw_obs.Trace.enabled in
  let share_cpu = if tron then Api.cpu_id () else -1 in
  let share_start = if tron then Api.now () else 0 in
  if t.mode = Pik then Api.overhead pik_shim;
  let fetch_cost =
    costs.atomic_rmw + if t.nthreads > 1 then costs.cache_line_remote else 0
  in
  (match r.r_sched with
  | Static ->
      let lo = wid * r.r_iters / t.nthreads in
      let hi = (wid + 1) * r.r_iters / t.nthreads in
      if hi > lo then begin
        t.nchunks <- t.nchunks + 1;
        consume_chunk tr (sum_cycles r.r_cycles lo hi)
      end
  | Dynamic chunk ->
      let chunk = max 1 chunk in
      let rec grab () =
        Api.overhead fetch_cost;
        if r.r_next < r.r_iters then begin
          let lo = r.r_next in
          let hi = min r.r_iters (lo + chunk) in
          r.r_next <- hi;
          t.nchunks <- t.nchunks + 1;
          consume_chunk tr (sum_cycles r.r_cycles lo hi);
          grab ()
        end
      in
      grab ()
  | Guided min_chunk ->
      let min_chunk = max 1 min_chunk in
      let rec grab () =
        Api.overhead fetch_cost;
        if r.r_next < r.r_iters then begin
          let remaining = r.r_iters - r.r_next in
          let chunk = max min_chunk (remaining / (2 * t.nthreads)) in
          let lo = r.r_next in
          let hi = min r.r_iters (lo + chunk) in
          r.r_next <- hi;
          t.nchunks <- t.nchunks + 1;
          consume_chunk tr (sum_cycles r.r_cycles lo hi);
          grab ()
        end
      in
      grab ());
  (* The worker's whole share of the region, enclosing its chunk
     spans (and the hw grant spans inside them) on this CPU's track;
     emitted after the chunks, as the profiler's tie-break expects. *)
  if tron then
    Iw_obs.Trace.span tr ~name:"omp_share" ~cat:"omp" ~cpu:share_cpu
      ~ts:share_start
      ~dur:(Api.now () - share_start)
      ()

(* Barrier arrival.  Barrier_drop injection: the arrival increment is
   lost (a dropped cache-line update), so the master would spin
   forever on [arrived < nthreads]; the lost count is kept so the
   master's barrier audit — the recovery, one layer up — can find it. *)
let arrive t =
  let costs = (Sched.platform t.k).Iw_hw.Platform.costs in
  Api.overhead (costs.atomic_rmw + costs.cache_line_remote);
  let plan = Iw_faults.Plan.ambient () in
  if
    Iw_faults.Plan.enabled plan
    && Iw_faults.Plan.fire plan (Sched.obs t.k)
         ~kind:Iw_faults.Plan.Barrier_drop ~cpu:(Api.cpu_id ()) ~ts:(Api.now ())
  then t.lost <- t.lost + 1
  else t.arrived <- t.arrived + 1

let worker_body t wid () =
  let rec await gen spins =
    if not t.stopping then begin
      if t.gen >= gen then begin
        (match t.region with Some r -> run_share t r wid | None -> ());
        arrive t;
        await (gen + 1) 0
      end
      else begin
        Api.overhead (poll_cost spins);
        await gen (spins + 1)
      end
    end
  in
  await 1 0

let create k mode ~nthreads =
  if nthreads < 1 then invalid_arg "Omp.create: nthreads < 1";
  if nthreads > Sched.cpu_count k then
    invalid_arg "Omp.create: more threads than CPUs";
  let t =
    {
      k;
      mode;
      nthreads;
      gen = 0;
      region = None;
      arrived = 0;
      lost = 0;
      team = [];
      tasks = (match mode with Cck -> Some (Task.create k ()) | _ -> None);
      stopping = false;
      nregions = 0;
      nchunks = 0;
    }
  in
  (match mode with
  | Cck -> ()  (* the task framework's per-CPU daemons are the team *)
  | Linux_user | Rtk | Pik ->
      t.team <-
        List.init (nthreads - 1) (fun i ->
            let wid = i + 1 in
            Sched.spawn k
              ~spec:
                {
                  Sched.sp_name = Printf.sprintf "omp-%d" wid;
                  sp_cpu = Some wid;
                  sp_fp = true;
                  sp_rt = false;
                }
              (worker_body t wid)));
  t

let parallel_for t ?(schedule = Static) ~iters ~iter_cycles () =
  if iters < 0 then invalid_arg "Omp.parallel_for: negative iters";
  t.nregions <- t.nregions + 1;
  let obs = Sched.obs t.k in
  Iw_obs.Counter.incr obs.Iw_obs.Obs.counters Iw_obs.Counter.Omp_regions;
  let chunks_before = t.nchunks in
  let region_start = Sched.now t.k in
  let costs = (Sched.platform t.k).Iw_hw.Platform.costs in
  (match t.tasks with
  | Some tf ->
      (* CCK: pragmas compiled straight to kernel tasks. *)
      let nchunks = max 1 (min iters (4 * t.nthreads)) in
      let handles = ref [] in
      for c = 0 to nchunks - 1 do
        let lo = c * iters / nchunks and hi = (c + 1) * iters / nchunks in
        if hi > lo then begin
          let cost = sum_cycles iter_cycles lo hi in
          t.nchunks <- t.nchunks + 1;
          let h =
            Task.submit ~cpu:(c mod t.nthreads) ~size_hint:cost tf (fun () ->
                consume_chunk obs.Iw_obs.Obs.trace cost)
          in
          handles := h :: !handles
        end
      done;
      List.iter Task.wait !handles
  | None ->
      let r =
        {
          r_iters = iters;
          r_cycles = iter_cycles;
          r_sched = schedule;
          r_next = 0;
        }
      in
      t.region <- Some r;
      t.arrived <- 0;
      if t.mode = Pik then Api.overhead pik_shim;
      (* Publishing the region is one shared-line write the spinning
         team observes; not a per-worker syscall chain. *)
      Api.overhead (costs.atomic_rmw + costs.cache_line_remote);
      t.gen <- t.gen + 1;
      run_share t r 0;
      arrive t;
      (* Implicit barrier: the master waits for every team member.
         Recovery for dropped arrivals lives here, one layer above the
         injection: once the polling has gone lazy (the team should
         long since have arrived), the master audits the barrier word
         — rereading every member's progress costs a line transfer per
         thread — and credits any arrival whose increment was lost. *)
      let audit_cost = t.nthreads * costs.cache_line_remote in
      let rec wait spins =
        if t.arrived < t.nthreads then begin
          Api.overhead (poll_cost spins);
          if spins >= 64 && spins mod 64 = 0 && t.lost > 0 then begin
            Api.overhead audit_cost;
            t.arrived <- t.arrived + t.lost;
            t.lost <- 0;
            let obs = Sched.obs t.k in
            Iw_obs.Counter.incr obs.Iw_obs.Obs.counters
              Iw_obs.Counter.Barrier_recover
          end;
          wait (spins + 1)
        end
      in
      wait 0;
      t.region <- None);
  Iw_obs.Counter.add obs.Iw_obs.Obs.counters Iw_obs.Counter.Omp_chunks
    (t.nchunks - chunks_before);
  let tr = obs.Iw_obs.Obs.trace in
  if tr.Iw_obs.Trace.enabled then
    Iw_obs.Trace.span tr ~name:"omp_region" ~cat:"omp" ~cpu:(-1)
      ~ts:region_start
      ~dur:(Sched.now t.k - region_start)
      ()

let serial_for ~iters ~iter_cycles =
  Coro.consume (sum_cycles iter_cycles 0 iters)

let shutdown t =
  t.stopping <- true;
  List.iter Api.join t.team;
  match t.tasks with Some tf -> Task.shutdown tf | None -> ()

let regions t = t.nregions
let chunks_dispatched t = t.nchunks
