open Iw_ir
(** The CARAT runtime (§IV-A).

    The other half of the CARAT pass: a region table fed by the
    injected tracking calls, guard validation for the injected
    protection checks, and region {e migration} — moving live data to
    new physical addresses with a forwarding map that redirects every
    subsequent (compiler-mediated) access.  All code runs on physical
    addresses; no paging hardware is involved anywhere.

    Allocation is backed by a real buddy allocator, so fragmentation
    and compaction are observable, not simulated. *)

type t

val create : ?obs:Iw_obs.Obs.t -> ?heap_size:int -> unit -> t
(** [heap_size] (bytes/words, default [1 lsl 22]) sizes the physical
    heap.  [obs] (default: ambient) counts guard checks and faults. *)

val hooks : t -> Interp.hooks
(** Interpreter hooks wiring this runtime into compiled code:
    allocation, tracking, guard validation, and address
    translation. *)

(** {1 Region map} *)

val region_count : t -> int
val live_words : t -> int
val region_of : t -> int -> (int * int) option
(** [region_of t addr] is [(base, size)] of the live region containing
    the (physical, post-forwarding) address. *)

val regions : t -> (int * int) list
(** All live regions as [(logical_base, size)], ascending. *)

val guard_checks : t -> int
val guard_faults : t -> int
(** Faults counted before the exception propagates. *)

(** {1 Data movement} *)

val move_region : t -> base:int -> int option
(** Migrate the region at [base] to a fresh location (lowest
    available).  Returns the new base, or [None] if no space.  Copies
    the contents and installs forwarding so existing pointers held by
    the program still translate correctly. *)

val defragment : t -> int
(** Whole-heap compaction: migrate live regions downward until no
    move lowers a base.  Returns the number of regions moved. *)

val fragmentation : t -> float
(** Buddy-level external fragmentation, 0..1. *)

val moves : t -> int
val moved_words : t -> int

val rollbacks : t -> int
(** Moves rolled back by the guard-violation quarantine path: the
    partial destination was released and the region kept its intact
    source.  Nonzero only under an active fault plan. *)

(** {1 Tracing} *)

val traced_run : t -> name:string -> (unit -> Interp.result) -> Interp.result
(** Run a guarded program under an enclosing ["carat"] span on the
    runtime's span clock: move spans and guard-fault instants the run
    triggers nest inside it, and the span lasts at least the
    interpreter's reported cycles.  With tracing off this is just
    [f ()]. *)
