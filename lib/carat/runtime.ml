open Iw_ir

module IntMap = Map.Make (Int)

type region = {
  logical : int;  (* allocation-time base; what the program holds *)
  size : int;  (* requested words *)
  mutable phys : int;  (* current physical base in the buddy heap *)
}

type t = {
  heap : Iw_mem.Buddy.t;
  obs : Iw_obs.Obs.t;
  mutable regions : region IntMap.t;  (* keyed by logical base *)
  mutable next_logical : int;
  mutable ctx : Interp.ctx option;
  mutable checks : int;
  mutable faults : int;
  mutable n_moves : int;
  mutable n_moved_words : int;
  mutable n_rollbacks : int;
  mutable vclock : int;  (* span clock; words moved stand in for cycles *)
}

let create ?obs ?(heap_size = 1 lsl 22) () =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  {
    (* Physical heap sits at [heap_size, 2*heap_size); logical bases
       start far above it and are never reused, so the two spaces
       cannot collide. *)
    heap = Iw_mem.Buddy.create ~base:heap_size ~size:heap_size ~min_block:16;
    obs;
    regions = IntMap.empty;
    next_logical = 16 * heap_size;
    ctx = None;
    checks = 0;
    faults = 0;
    n_moves = 0;
    n_moved_words = 0;
    n_rollbacks = 0;
    vclock = 0;
  }

let region_containing t addr =
  match IntMap.find_last_opt (fun b -> b <= addr) t.regions with
  | Some (_, r) when addr < r.logical + r.size -> Some r
  | _ -> None

let region_of t addr =
  match region_containing t addr with
  | Some r -> Some (r.logical, r.size)
  | None -> None

let regions t =
  IntMap.fold (fun _ r acc -> (r.logical, r.size) :: acc) t.regions []
  |> List.rev

let region_count t = IntMap.cardinal t.regions
let live_words t = IntMap.fold (fun _ r acc -> acc + r.size) t.regions 0
let guard_checks t = t.checks
let guard_faults t = t.faults
let moves t = t.n_moves
let moved_words t = t.n_moved_words
let rollbacks t = t.n_rollbacks
let fragmentation t = Iw_mem.Buddy.external_fragmentation t.heap

let alloc t size =
  let size = max 1 size in
  match Iw_mem.Buddy.alloc t.heap size with
  | None -> raise (Interp.Fault "carat: out of physical memory")
  | Some phys ->
      let logical = t.next_logical in
      t.next_logical <- logical + size;
      t.regions <- IntMap.add logical { logical; size; phys } t.regions;
      logical

let free t logical =
  match IntMap.find_opt logical t.regions with
  | None -> raise (Interp.Fault "carat: free of untracked base")
  | Some r ->
      Iw_mem.Buddy.free t.heap r.phys;
      t.regions <- IntMap.remove logical t.regions

let translate t addr =
  match region_containing t addr with
  | Some r -> r.phys + (addr - r.logical)
  | None -> addr

let guard t ~base ~offset ~length =
  t.checks <- t.checks + 1;
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Guard_checks;
  let target = match length with None -> base + offset | Some _ -> base in
  match region_containing t target with
  | Some _ -> ()
  | None ->
      t.faults <- t.faults + 1;
      Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Guard_faults;
      Iw_obs.Trace.instant t.obs.Iw_obs.Obs.trace ~name:"guard_fault"
        ~cat:"carat" ~cpu:(-1) ~ts:t.vclock ();
      raise
        (Interp.Fault
           (Printf.sprintf "carat: protection fault at %#x" target))

let hooks t =
  {
    Interp.default_hooks with
    on_init = (fun ctx -> t.ctx <- Some ctx);
    on_guard = (fun ~base ~offset ~length -> guard t ~base ~offset ~length);
    on_track_alloc = (fun ~base:_ ~size:_ -> ());
    on_track_free = (fun ~base:_ -> ());
    translate = (fun addr -> translate t addr);
    extern =
      (fun name args ->
        match (name, args) with
        | "malloc", [ size ] -> Some (alloc t size)
        | "free", [ base ] ->
            free t base;
            Some 0
        | _ -> None);
  }

let move_region t ~base =
  match IntMap.find_opt base t.regions with
  | None -> None
  | Some r -> (
      match Iw_mem.Buddy.alloc t.heap r.size with
      | None -> None
      | Some new_phys
        when
          (let plan = Iw_faults.Plan.ambient () in
           Iw_faults.Plan.enabled plan
           && Iw_faults.Plan.fire plan t.obs
                ~kind:Iw_faults.Plan.Move_interrupt ~cpu:(-1) ~ts:t.vclock) ->
          (* The move was interrupted mid-copy (a guard violation hit
             the half-written destination).  Quarantine: release the
             partial destination and roll back.  The region still
             points at its intact source, so the address space never
             sees the tear — the move just didn't happen. *)
          Iw_mem.Buddy.free t.heap new_phys;
          t.n_rollbacks <- t.n_rollbacks + 1;
          Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
            Iw_obs.Counter.Move_rollback;
          (let tr = t.obs.Iw_obs.Obs.trace in
           if tr.Iw_obs.Trace.enabled then
             Iw_obs.Trace.instant tr ~name:"carat_rollback" ~cat:"carat"
               ~cpu:(-1) ~ts:t.vclock ());
          None
      | Some new_phys ->
          (match t.ctx with
          | Some ctx ->
              for i = 0 to r.size - 1 do
                ctx.Interp.write (new_phys + i) (ctx.Interp.read (r.phys + i))
              done
          | None -> ());
          Iw_mem.Buddy.free t.heap r.phys;
          t.n_moves <- t.n_moves + 1;
          t.n_moved_words <- t.n_moved_words + r.size;
          (* One span per copy; the words moved stand in for cycles on
             the runtime's private span clock. *)
          (let tr = t.obs.Iw_obs.Obs.trace in
           if tr.Iw_obs.Trace.enabled then begin
             Iw_obs.Trace.span tr ~name:"carat_move" ~cat:"carat" ~cpu:(-1)
               ~ts:t.vclock ~dur:(max 1 r.size) ();
             t.vclock <- t.vclock + max 1 r.size
           end);
          r.phys <- new_phys;
          Some new_phys)

let defragment t =
  let tr = t.obs.Iw_obs.Obs.trace in
  let pass_start = t.vclock in
  (* Ascending physical order; the buddy hands out the lowest free
     block, so each move either compacts or is undone. *)
  let by_phys =
    IntMap.fold (fun _ r acc -> r :: acc) t.regions []
    |> List.sort (fun a b -> compare a.phys b.phys)
  in
  let moved = ref 0 in
  List.iter
    (fun r ->
      let old_phys = r.phys in
      match move_region t ~base:r.logical with
      | Some new_phys when new_phys < old_phys -> incr moved
      | Some _ ->
          (* Went up: undo by moving back is wasteful; accept only
             downward moves by moving again (the old block is free
             now, so this lands at or below). *)
          (match move_region t ~base:r.logical with
          | Some p when p < old_phys -> incr moved
          | _ -> ())
      | None -> ())
    by_phys;
  (* Parent span over the whole pass, emitted after its move spans
     (emit order at completion is what the profiler's tie-break
     expects). *)
  if tr.Iw_obs.Trace.enabled then begin
    Iw_obs.Trace.span tr ~name:"carat_defrag" ~cat:"carat" ~cpu:(-1)
      ~ts:pass_start
      ~dur:(max 1 (t.vclock - pass_start))
      ();
    t.vclock <- max t.vclock (pass_start + 1)
  end;
  !moved

(* Wrap a guarded program run in an enclosing span on the runtime's
   span clock: the span starts at the clock's position before the run
   (so any moves/faults the run triggers nest inside) and lasts at
   least the interpreter's reported cycles. *)
let traced_run t ~name f =
  let tr = t.obs.Iw_obs.Obs.trace in
  if not tr.Iw_obs.Trace.enabled then f ()
  else begin
    let start = t.vclock in
    let result : Interp.result = f () in
    let dur = max 1 (max result.Interp.cycles (t.vclock - start)) in
    Iw_obs.Trace.span tr ~name ~cat:"carat" ~cpu:(-1) ~ts:start ~dur ();
    t.vclock <- start + dur;
    result
  end
