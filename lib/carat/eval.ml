open Iw_ir

type row = {
  name : string;
  suite : string;
  base_cycles : int;
  naive_pct : float;
  optimized_pct : float;
  static_guards_naive : int;
  static_guards_opt : int;
  dyn_guards_naive : int;
  dyn_guards_opt : int;
}

let run_config ?(label = "baseline") (p : Programs.program) config =
  let m = p.build () in
  (match config with
  | Some c -> Iw_passes.Carat_pass.instrument ~config:c m
  | None -> ());
  let rt = Runtime.create () in
  let result =
    Runtime.traced_run rt
      ~name:(p.name ^ ":" ^ label)
      (fun () -> Interp.run ~hooks:(Runtime.hooks rt) m p.entry p.args)
  in
  let stats = Iw_passes.Carat_pass.guard_stats m in
  (result, stats)

let check_result (p : Programs.program) label (r : Interp.result) =
  match (p.expected, r.ret) with
  | Some want, Some got when want <> got ->
      invalid_arg
        (Printf.sprintf "carat %s changed %s: expected %d, got %d" label p.name
           want got)
  | _ -> ()

let run_program (p : Programs.program) =
  let base, _ = run_config p None in
  check_result p "baseline" base;
  let naive, naive_stats =
    run_config ~label:"naive" p (Some Iw_passes.Carat_pass.naive)
  in
  check_result p "naive" naive;
  let opt, opt_stats =
    run_config ~label:"optimized" p (Some Iw_passes.Carat_pass.optimized)
  in
  check_result p "optimized" opt;
  let pct a b = 100.0 *. (float_of_int (a - b) /. float_of_int b) in
  {
    name = p.name;
    suite = p.suite;
    base_cycles = base.cycles;
    naive_pct = pct naive.cycles base.cycles;
    optimized_pct = pct opt.cycles base.cycles;
    static_guards_naive = naive_stats.exact_guards + naive_stats.region_guards;
    static_guards_opt = opt_stats.exact_guards + opt_stats.region_guards;
    dyn_guards_naive = naive.guards;
    dyn_guards_opt = opt.guards;
  }

let table () = List.map run_program (Programs.carat_suite ())

let geomean f rows =
  (* Geometric mean of the slowdown factors, reported back as %. *)
  let logs =
    List.map (fun r -> log (1.0 +. (f r /. 100.0))) rows
  in
  let mean = List.fold_left ( +. ) 0.0 logs /. float_of_int (List.length logs) in
  100.0 *. (exp mean -. 1.0)

let geomean_naive rows = geomean (fun r -> r.naive_pct) rows
let geomean_optimized rows = geomean (fun r -> r.optimized_pct) rows
