(* Deterministic fault injection.

   A [t] is a seed-driven fault plan: every injection point in the
   stack asks the ambient plan whether a fault fires *here*, *now*.
   Decisions come from the plan's own splitmix64 stream, never from
   the workload RNG — two runs with the same (rate, seed, kinds)
   inject the identical fault schedule, and a disabled plan draws
   nothing and stays byte-identical to a run that never heard of
   faults.  Unarmed kinds also draw nothing, so adding a kind to the
   enum never perturbs the schedule of runs that don't arm it. *)

open Iw_obs

type kind =
  | Ipi_drop  (* the IPI is lost on the wire *)
  | Ipi_dup  (* the IPI is delivered twice *)
  | Ipi_delay  (* the IPI takes extra cycles to land *)
  | Timer_miss  (* an armed APIC fire is silently swallowed *)
  | Timer_late  (* the fire lands, but late *)
  | Timer_spurious  (* an extra, unasked-for fire *)
  | Cpu_stall  (* the core goes dark for N cycles mid-grant *)
  | Tlb_shootdown  (* a spurious remote shootdown / line invalidation *)
  | Virtine_fail  (* a virtine launch dies partway through boot *)
  | Pool_poison  (* a warm pool entry fails its health check *)
  | Move_interrupt  (* a CARAT region move is interrupted mid-copy *)
  | Dir_drop_ack  (* an invalidation ack never reaches the directory *)
  | Dir_stale  (* the directory names an owner that silently evicted *)
  | Barrier_drop  (* an OMP barrier arrival increment is lost *)
  | Link_drop  (* an inter-machine message vanishes on the wire *)
  | Link_delay  (* the message lands, but late *)
  | Machine_pause  (* a whole machine goes dark for one sync window *)
  | Worker_hang  (* a worker silently stops draining its queue *)
  | Req_corrupt  (* a completed response is garbage; re-execute *)
  | Machine_brownout  (* a machine slows by a drawn factor for a while *)
  | Nic_rx_drop  (* the NIC loses a frame before it reaches the ring *)
  | Nic_irq_lost  (* an asserted RX interrupt never reaches the CPU *)
  | Nic_ring_overrun  (* the RX ring spuriously reports full; frame lost *)

val kind_count : int
val kind_index : kind -> int

(* CLI spelling, `--kinds ipi-drop,timer-late`. *)
val kind_name : kind -> string
val all_kinds : kind list
val kind_of_string : string -> kind option

type t

(* The ambient default: draws nothing, injects nothing. *)
val disabled : t

(* [create ~rate ~seed ()] builds a plan that fires each armed kind
   with per-opportunity probability [rate].  The [*_cycles] knobs
   parameterize fault severity (delay lengths, stall/hang durations,
   brownout timescale).  Raises [Invalid_argument] unless rate is in
   [0,1]. *)
val create :
  ?kinds:kind list ->
  ?ipi_delay_cycles:int ->
  ?timer_late_cycles:int ->
  ?stall_cycles:int ->
  ?net_delay_cycles:int ->
  ?hang_cycles:int ->
  ?brownout_cycles:int ->
  rate:float ->
  seed:int ->
  unit ->
  t

val enabled : t -> bool
val rate : t -> float
val seed : t -> int
val injected : t -> int
val ipi_delay_cycles : t -> int
val timer_late_cycles : t -> int
val stall_cycles : t -> int
val net_delay_cycles : t -> int
val hang_cycles : t -> int
val brownout_cycles : t -> int
val armed : t -> kind -> bool

(* Ambient scoping, mirroring Obs: a domain-local plan that defaults
   to [disabled], overridden for one run on one domain. *)
val ambient : unit -> t
val with_ambient : t -> (unit -> 'a) -> 'a

(* Record [n] injections of [kind]: bumps the [fault_injected] counter
   on [obs] and, when tracing, emits a "fault:<kind>" instant. *)
val note : t -> Obs.t -> kind:kind -> cpu:int -> ts:int -> int -> unit

(* One opportunity: does a [kind] fault fire here?  Draws exactly one
   sample when the kind is armed, none otherwise; a firing draw is
   noted via [note]. *)
val fire : t -> Obs.t -> kind:kind -> cpu:int -> ts:int -> bool

(* Bulk form for analytic sites: how many of [opportunities] fault?
   O(1) draws regardless of phase size. *)
val count :
  t -> Obs.t -> kind:kind -> opportunities:int -> cpu:int -> ts:int -> int

(* Severity draws, taken from the plan stream immediately after the
   firing draw so the full schedule (when *and* how bad) is a pure
   function of (rate, seed, kinds). *)

(* One in four hangs never clears on its own; the rest sleep for
   [hang_cycles]. *)
val draw_hang_permanent : t -> bool

(* (slowdown x1000 in [2000,4000], duration in [0.5,1.5] x
   [brownout_cycles]). *)
val draw_brownout : t -> int * int
