(* Deterministic fault injection.

   A [t] is a seed-driven fault plan: every injection point in the
   stack (IPI wires, local APICs, CPU grants, TLBs, cache lines, the
   virtine pool, CARAT moves) asks the ambient plan whether a fault
   fires *here*, *now*.  Decisions come from the plan's own splitmix64
   stream, never from the workload RNG — so two runs with the same
   (rate, seed, kinds) inject the identical fault schedule, and a run
   with the plan disabled draws nothing at all and stays byte-identical
   to a run that never heard of faults.

   The plan is scoped like the observability context: a domain-local
   ambient that defaults to [disabled], overridden with [with_ambient]
   for one run on one domain.  Parallel experiment drivers therefore
   never share or race on a plan, and fault schedules are stable under
   `-j`.

   Injection sites live at layer *boundaries* (the IPI leaving the
   sender, the APIC deciding to fire, the grant arming its completion)
   because that is where the paper's interweaving argument lives: the
   layer above can only compensate for what it can observe crossing
   the boundary below. *)

open Iw_engine
open Iw_obs

type kind =
  | Ipi_drop  (* the IPI is lost on the wire *)
  | Ipi_dup  (* the IPI is delivered twice *)
  | Ipi_delay  (* the IPI takes extra cycles to land *)
  | Timer_miss  (* an armed APIC fire is silently swallowed *)
  | Timer_late  (* the fire lands, but late *)
  | Timer_spurious  (* an extra, unasked-for fire *)
  | Cpu_stall  (* the core goes dark for N cycles mid-grant *)
  | Tlb_shootdown  (* a spurious remote shootdown / line invalidation *)
  | Virtine_fail  (* a virtine launch dies partway through boot *)
  | Pool_poison  (* a warm pool entry fails its health check *)
  | Move_interrupt  (* a CARAT region move is interrupted mid-copy *)
  | Dir_drop_ack  (* an invalidation ack never reaches the directory *)
  | Dir_stale  (* the directory names an owner that silently evicted *)
  | Barrier_drop  (* an OMP barrier arrival increment is lost *)
  | Link_drop  (* an inter-machine message vanishes on the wire *)
  | Link_delay  (* the message lands, but late *)
  | Machine_pause  (* a whole machine goes dark for one sync window *)
  | Worker_hang  (* a worker silently stops draining its queue *)
  | Req_corrupt  (* a completed response is garbage; re-execute *)
  | Machine_brownout  (* a machine slows by a drawn factor for a while *)
  | Nic_rx_drop  (* the NIC loses a frame before it reaches the ring *)
  | Nic_irq_lost  (* an asserted RX interrupt never reaches the CPU *)
  | Nic_ring_overrun  (* the RX ring spuriously reports full; frame lost *)

let kind_count = 23

let kind_index = function
  | Ipi_drop -> 0
  | Ipi_dup -> 1
  | Ipi_delay -> 2
  | Timer_miss -> 3
  | Timer_late -> 4
  | Timer_spurious -> 5
  | Cpu_stall -> 6
  | Tlb_shootdown -> 7
  | Virtine_fail -> 8
  | Pool_poison -> 9
  | Move_interrupt -> 10
  | Dir_drop_ack -> 11
  | Dir_stale -> 12
  | Barrier_drop -> 13
  | Link_drop -> 14
  | Link_delay -> 15
  | Machine_pause -> 16
  | Worker_hang -> 17
  | Req_corrupt -> 18
  | Machine_brownout -> 19
  | Nic_rx_drop -> 20
  | Nic_irq_lost -> 21
  | Nic_ring_overrun -> 22

(* CLI spelling, `--kinds ipi-drop,timer-late`. *)
let kind_name = function
  | Ipi_drop -> "ipi-drop"
  | Ipi_dup -> "ipi-dup"
  | Ipi_delay -> "ipi-delay"
  | Timer_miss -> "timer-miss"
  | Timer_late -> "timer-late"
  | Timer_spurious -> "timer-spurious"
  | Cpu_stall -> "cpu-stall"
  | Tlb_shootdown -> "tlb-shootdown"
  | Virtine_fail -> "virtine-fail"
  | Pool_poison -> "pool-poison"
  | Move_interrupt -> "move-interrupt"
  | Dir_drop_ack -> "dir-drop-ack"
  | Dir_stale -> "dir-stale"
  | Barrier_drop -> "barrier-drop"
  | Link_drop -> "link-drop"
  | Link_delay -> "link-delay"
  | Machine_pause -> "machine-pause"
  | Worker_hang -> "worker-hang"
  | Req_corrupt -> "req-corrupt"
  | Machine_brownout -> "machine-brownout"
  | Nic_rx_drop -> "nic-rx-drop"
  | Nic_irq_lost -> "nic-irq-lost"
  | Nic_ring_overrun -> "nic-ring-overrun"

let all_kinds =
  [
    Ipi_drop;
    Ipi_dup;
    Ipi_delay;
    Timer_miss;
    Timer_late;
    Timer_spurious;
    Cpu_stall;
    Tlb_shootdown;
    Virtine_fail;
    Pool_poison;
    Move_interrupt;
    Dir_drop_ack;
    Dir_stale;
    Barrier_drop;
    Link_drop;
    Link_delay;
    Machine_pause;
    Worker_hang;
    Req_corrupt;
    Machine_brownout;
    Nic_rx_drop;
    Nic_irq_lost;
    Nic_ring_overrun;
  ]

let kind_of_string s = List.find_opt (fun k -> kind_name k = s) all_kinds

type t = {
  enabled : bool;
  rate : float;  (* per-opportunity fault probability, in [0,1] *)
  seed : int;
  armed : bool array;  (* indexed by kind_index *)
  rng : Rng.t;  (* the plan's own stream; workload RNGs never see it *)
  ipi_delay_cycles : int;
  timer_late_cycles : int;
  stall_cycles : int;
  net_delay_cycles : int;
  hang_cycles : int;
  brownout_cycles : int;
  mutable injected : int;
}

let disabled =
  {
    enabled = false;
    rate = 0.0;
    seed = 0;
    armed = Array.make kind_count false;
    rng = Rng.create ~seed:0;
    ipi_delay_cycles = 0;
    timer_late_cycles = 0;
    stall_cycles = 0;
    net_delay_cycles = 0;
    hang_cycles = 0;
    brownout_cycles = 0;
    injected = 0;
  }

let create ?(kinds = all_kinds) ?(ipi_delay_cycles = 4_000)
    ?(timer_late_cycles = 12_000) ?(stall_cycles = 25_000)
    ?(net_delay_cycles = 30_000) ?(hang_cycles = 60_000)
    ?(brownout_cycles = 1_500_000) ~rate ~seed () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Plan.create: rate must be in [0,1]";
  let armed = Array.make kind_count false in
  List.iter (fun k -> armed.(kind_index k) <- true) kinds;
  {
    enabled = true;
    rate;
    seed;
    armed;
    (* A fixed salt keeps the fault stream distinct from any workload
       stream that happens to use the same small seed. *)
    rng = Rng.create ~seed:(seed lxor 0x7FA0175);
    ipi_delay_cycles;
    timer_late_cycles;
    stall_cycles;
    net_delay_cycles;
    hang_cycles;
    brownout_cycles;
    injected = 0;
  }

let enabled t = t.enabled
let rate t = t.rate
let seed t = t.seed
let injected t = t.injected
let ipi_delay_cycles t = t.ipi_delay_cycles
let timer_late_cycles t = t.timer_late_cycles
let stall_cycles t = t.stall_cycles
let net_delay_cycles t = t.net_delay_cycles
let hang_cycles t = t.hang_cycles
let brownout_cycles t = t.brownout_cycles
let armed t k = t.enabled && t.armed.(kind_index k)

(* ------------------------------------------------------------------ *)
(* Ambient scoping, mirroring Obs. *)

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> disabled)
let ambient () = Domain.DLS.get key

let with_ambient plan f =
  let prev = Domain.DLS.get key in
  Domain.DLS.set key plan;
  Fun.protect ~finally:(fun () -> Domain.DLS.set key prev) f

(* ------------------------------------------------------------------ *)
(* Drawing decisions.  Every injected fault is observable: a
   [fault_injected] counter bump plus a trace instant naming the
   kind, so `trace`/`profile` show where resilience cycles go. *)

let note (t : t) (obs : Obs.t) ~kind ~cpu ~ts n =
  t.injected <- t.injected + n;
  Counter.add obs.Obs.counters Counter.Fault_injected n;
  let tr = obs.Obs.trace in
  if tr.Trace.enabled then
    Trace.instant tr ~name:("fault:" ^ kind_name kind) ~cat:"fault" ~cpu ~ts ()

(* One opportunity: does a [kind] fault fire here?  Draws exactly one
   sample when the kind is armed, none otherwise — so the schedule for
   one kind is independent of which other kinds are armed only when
   sites query kinds in a fixed order (they do). *)
let fire t obs ~kind ~cpu ~ts =
  armed t kind
  && Rng.float t.rng 1.0 < t.rate
  && (note t obs ~kind ~cpu ~ts 1;
      true)

(* Bulk form for analytic sites (the TLB charges a whole phase of
   accesses at once): how many of [opportunities] fault?  Expected
   value rate*opportunities with a single Bernoulli draw for the
   fractional part — O(1) draws regardless of phase size. *)
let count t obs ~kind ~opportunities ~cpu ~ts =
  if (not (armed t kind)) || opportunities <= 0 then 0
  else begin
    let expect = t.rate *. float_of_int opportunities in
    let base = int_of_float expect in
    let frac = expect -. float_of_int base in
    let n = base + (if Rng.float t.rng 1.0 < frac then 1 else 0) in
    let n = min n opportunities in
    if n > 0 then note t obs ~kind ~cpu ~ts n;
    n
  end

(* ------------------------------------------------------------------ *)
(* Severity draws.  A site that just saw [fire] return true for a
   parameterized kind asks the plan how bad this instance is.  The
   draws come from the same plan stream, immediately after the firing
   draw, so the full schedule (when *and* how bad) is a pure function
   of (rate, seed, kinds) — and a site that never fires never draws. *)

(* One in four hangs never clears on its own; recovery must come from
   the layer above (the watchdog), not from waiting. *)
let draw_hang_permanent t = Rng.float t.rng 1.0 < 0.25

(* A brownout multiplies service cost by 2-4x (fixed-point x1000) for
   0.5-1.5x [brownout_cycles]. *)
let draw_brownout t =
  let slow_x1000 = 2_000 + int_of_float (Rng.float t.rng 1.0 *. 2_000.0) in
  let dur =
    max 1
      (int_of_float
         (float_of_int t.brownout_cycles *. (0.5 +. Rng.float t.rng 1.0)))
  in
  (slow_x1000, dur)
