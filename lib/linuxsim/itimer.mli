(** POSIX-flavored interval timers with signal delivery (§IV-B's
    Linux event chain).

    Each expiry takes the full commodity path on the target CPU:
    hardware timer interrupt (architectural dispatch), hrtimer/softirq
    bookkeeping, signal-frame setup into user space, the user handler,
    then sigreturn — plus per-expiry jitter drawn from the
    personality.  Expirations tick on the wall-clock grid; if the
    previous delivery is still in flight when the next expiry lands,
    the signal coalesces (an {e overrun}), which is exactly why Linux
    cannot sustain fine-grained heartbeats (Fig. 3). *)

type t

val create :
  Iw_kernel.Sched.t ->
  cpu:int ->
  period:int ->
  ?handler_cost:int ->
  handler:(preempted:int -> unit) ->
  unit ->
  t
(** The handler runs in "signal context" on [cpu]; [preempted] follows
    {!Iw_hw.Cpu.interrupt} semantics (the handler must arrange
    stashing via {!Iw_kernel.Sched.stash_preempted} when it receives
    [Some _] — see {!Iw_heartbeat} for the canonical use). *)

val start : t -> unit
val stop : t -> unit

val delivered : t -> int
val overruns : t -> int
(** Expirations that coalesced into a still-pending delivery. *)

val delivery_times : t -> int list
(** Sim times at which the user handler actually ran, ascending. *)
