open Iw_engine
open Iw_kernel

type t = {
  k : Sched.t;
  cpu : int;
  period : int;
  handler_cost : int;
  handler : preempted:int -> unit;
  mutable running : bool;
  mutable pending : bool;  (* delivery in flight *)
  mutable delivered : int;
  mutable overruns : int;
  mutable times : int list;
  rng : Rng.t;
}

let create k ~cpu ~period ?(handler_cost = 50) ~handler () =
  if period <= 0 then invalid_arg "Itimer.create: period <= 0";
  {
    k;
    cpu;
    period;
    handler_cost;
    handler;
    running = false;
    pending = false;
    delivered = 0;
    overruns = 0;
    times = [];
    rng = Rng.split (Sim.rng (Sched.sim k));
  }

let deliver t =
  let p = Sched.personality t.k in
  let plat = Sched.platform t.k in
  let costs = plat.Iw_hw.Platform.costs in
  t.pending <- true;
  Iw_hw.Cpu.interrupt (Sched.cpu t.k t.cpu) ~dispatch:costs.interrupt_dispatch
    ~return_cost:costs.interrupt_return
    ~handler:(fun ~preempted ->
      t.delivered <- t.delivered + 1;
      t.times <- Sim.now (Sched.sim t.k) :: t.times;
      t.handler ~preempted;
      (* hrtimer/softirq + signal frame + sigreturn + the user code. *)
      p.Os.timer_extra + t.handler_cost)
    ~after:(fun () ->
      t.pending <- false;
      Sched.resched_or_resume t.k t.cpu)

let start t =
  if not t.running then begin
    t.running <- true;
    let s = Sched.sim t.k in
    let p = Sched.personality t.k in
    let rec arm deadline =
      if t.running then
        let jitter = max 0 (p.Os.timer_jitter t.rng) in
        Sim.schedule_unit s
          ~at:(max (Sim.now s) (deadline + jitter))
          (fun () ->
            if t.running then begin
              if t.pending then t.overruns <- t.overruns + 1
              else deliver t;
              arm (deadline + t.period)
            end)
    in
    arm (Sim.now s + t.period)
  end

let stop t = t.running <- false
let delivered t = t.delivered
let overruns t = t.overruns
let delivery_times t = List.rev t.times
