open Iw_engine

type backend = Kvm | Hyper_v

type profile = Full_linux_boot | Minimal_64 | Bespoke_16

type config = {
  backend : backend;
  profile : profile;
  snapshot : bool;
  pooled : bool;
  mem_mb : int;
}

let default =
  { backend = Kvm; profile = Minimal_64; snapshot = false; pooled = false; mem_mb = 2 }

type stage = { stage_name : string; stage_us : float; elided : bool }

(* Backend ioctl/hypercall cost factor: Hyper-V's API path is a bit
   heavier than KVM's in the virtines measurements. *)
let backend_factor = function Kvm -> 1.0 | Hyper_v -> 1.35

let boot_us = function
  | Full_linux_boot -> 120_000.0  (* kernel + init, heavily trimmed *)
  | Minimal_64 -> 380.0  (* long-mode setup, paging, FP init, shim *)
  | Bespoke_16 -> 28.0  (* stay in real mode, jump to the function *)

let stages config =
  let f = backend_factor config.backend in
  let pooled = config.pooled in
  let snap = config.snapshot in
  [
    {
      stage_name = "context-create";
      stage_us = 50.0 *. f;
      elided = pooled;
    };
    {
      stage_name = "guest-memory-map";
      stage_us = 8.0 +. (4.0 *. float_of_int config.mem_mb *. f);
      elided = pooled;
    };
    { stage_name = "vcpu-setup"; stage_us = 22.0 *. f; elided = pooled };
    {
      stage_name = "boot-path";
      stage_us = boot_us config.profile;
      elided = snap;
    };
    {
      stage_name = "snapshot-restore";
      stage_us = 55.0 +. (14.0 *. float_of_int config.mem_mb);
      elided = not snap;
    };
    {
      stage_name = "runtime-init";
      stage_us =
        (match config.profile with
        | Full_linux_boot -> 900.0
        | Minimal_64 -> 35.0
        | Bespoke_16 -> 4.0);
      elided = snap;
    };
    { stage_name = "pool-dispatch"; stage_us = 9.0; elided = not pooled };
  ]

let spawn_latency_us ?jitter config =
  let base =
    List.fold_left
      (fun acc s -> if s.elided then acc else acc +. s.stage_us)
      0.0 (stages config)
  in
  match jitter with
  | None -> base
  | Some rng -> base *. (1.0 +. Rng.float rng 0.08)

(* The call path is allocation-conscious: a serving plane makes one
   [call_at] per request, so per-config latencies are computed once at
   [create] (walking [stages] builds a record list every time) and the
   in-flight refill times live in a float ring rather than a list. *)
type t = {
  config : config;
  cold_cfg : config;  (* config with pooling off, for cold launches *)
  warm_base_us : float;  (* unjittered spawn latency, pooled path *)
  cold_base_us : float;  (* unjittered spawn latency, cold path *)
  obs : Iw_obs.Obs.t;
  rng : Rng.t;
  pool_size : int;
  mutable pool : int;  (* warm contexts available *)
  (* In-flight refill ready times: ascending ring, [rf_n] entries
     starting at [rf_head]. *)
  mutable rf_buf : float array;
  mutable rf_head : int;
  mutable rf_n : int;
  mutable n_spawned : int;
  mutable n_pool_hits : int;
  mutable vclock : int;  (* span clock in virtual cycles; see below *)
}

let create ?obs ?(seed = 7) ?(pool_size = 16) config =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  let cold_cfg = { config with pooled = false } in
  {
    config;
    cold_cfg;
    warm_base_us = spawn_latency_us config;
    cold_base_us = spawn_latency_us cold_cfg;
    obs;
    rng = Rng.create ~seed;
    pool_size;
    pool = (if config.pooled then pool_size else 0);
    rf_buf = Array.make 8 0.0;
    rf_head = 0;
    rf_n = 0;
    n_spawned = 0;
    n_pool_hits = 0;
    vclock = 0;
  }

let marshal_us = 2.0
let teardown_us = 11.0

(* Wasp accounts in float microseconds, not simulator cycles; for the
   trace we render spans on a private per-instance clock at a nominal
   1 GHz (1 cycle = 1 ns), using the *unjittered* stage costs so
   tracing never consumes an extra RNG draw — experiment tables stay
   byte-identical with tracing on. *)
let span_cycles_of_us us = max 1 (int_of_float (us *. 1000.0))

(* One "virtine_spawn" parent span containing one child span per
   non-elided boot stage, in stage order.  Children are emitted
   before the parent (spans are emitted at completion, and the
   profiler breaks identical-interval ties by emit order). *)
let trace_spawn t cfg =
  let tr = t.obs.Iw_obs.Obs.trace in
  if tr.Iw_obs.Trace.enabled then begin
    let start = t.vclock in
    let off = ref start in
    List.iter
      (fun s ->
        if not s.elided then begin
          let d = span_cycles_of_us s.stage_us in
          Iw_obs.Trace.span tr ~name:s.stage_name ~cat:"virtine" ~cpu:(-1)
            ~ts:!off ~dur:d ();
          off := !off + d
        end)
      (stages cfg);
    Iw_obs.Trace.span tr ~name:"virtine_spawn" ~cat:"virtine" ~cpu:(-1)
      ~ts:start
      ~dur:(max 1 (!off - start))
      ();
    t.vclock <- max (!off) (start + 1)
  end

(* Detecting a poisoned warm context (failed health check before
   dispatch) costs a fixed scan; the entry is evicted and the call
   falls through to whatever the pool has left. *)
let poison_detect_us = 6.0

(* A launch that dies partway through boot burns this fraction of its
   latency before the failure is observed and the launch is retried. *)
let failed_launch_fraction = 0.5
let relaunch_max = 3

let fault_instant t name =
  let tr = t.obs.Iw_obs.Obs.trace in
  if tr.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant tr ~name ~cat:"virtine" ~cpu:(-1) ~ts:t.vclock ()

(* Background re-provisioning of a consumed warm context.  The pool
   manager boots a replacement off the request's critical path; until
   it finishes (one cold, unjittered spawn) the pool is one entry
   short.  [call] has no caller clock and keeps the historical
   instant-refill behavior; [call_at] threads the caller's clock
   through, so a burst can genuinely drain the pool and pay cold
   boots — which is what makes pool sizing a real knob. *)
let refill_us t = t.cold_base_us

(* Ready refill times form a prefix of the ascending ring; popping
   them one by one (pool capped at pool_size) is what the old
   List.partition computed, without the per-call closure and lists. *)
let rec reclaim t now_us =
  if t.rf_n > 0 && t.rf_buf.(t.rf_head) <= now_us then begin
    t.rf_head <- (t.rf_head + 1) mod Array.length t.rf_buf;
    t.rf_n <- t.rf_n - 1;
    if t.pool < t.pool_size then t.pool <- t.pool + 1;
    reclaim t now_us
  end

let rf_grow t =
  let cap = Array.length t.rf_buf in
  let nb = Array.make (2 * cap) 0.0 in
  for i = 0 to t.rf_n - 1 do
    nb.(i) <- t.rf_buf.((t.rf_head + i) mod cap)
  done;
  t.rf_buf <- nb;
  t.rf_head <- 0

(* Insert keeping ascending order.  Refill latency is a constant, so
   [at] is monotone in practice and the backward sift never moves;
   stability (new entry lands after equal ones) matches the old
   sorted-list insert. *)
let rec rf_sift buf cap head i at =
  if i = head then Array.unsafe_set buf i at
  else begin
    let prev = (i + cap - 1) mod cap in
    if Array.unsafe_get buf prev > at then begin
      Array.unsafe_set buf i (Array.unsafe_get buf prev);
      rf_sift buf cap head prev at
    end
    else Array.unsafe_set buf i at
  end

(* [now_us = nan] means the caller has no clock ([call]): consumed
   entries refill instantly, the historical behavior.  The sentinel
   (instead of a [float option]) keeps the per-request path from
   boxing a [Some] per call. *)
let schedule_refill t now_us =
  if Float.is_nan now_us then begin
    if t.pool < t.pool_size then t.pool <- t.pool + 1
  end
  else begin
    let at = now_us +. refill_us t in
      if t.rf_n = Array.length t.rf_buf then rf_grow t;
      let cap = Array.length t.rf_buf in
      let tail = (t.rf_head + t.rf_n) mod cap in
      t.rf_n <- t.rf_n + 1;
      rf_sift t.rf_buf cap t.rf_head tail at
  end

(* One launch attempt.  Top-level (passing [now] explicitly) so the
   per-call closure the old inner definition allocated is gone; the
   jitter expression replicates [spawn_latency_us ~jitter] exactly —
   one RNG draw, same arithmetic — on the precomputed base. *)
let launch_once t now =
  if t.config.pooled && t.pool > 0 then begin
    t.pool <- t.pool - 1;
    t.n_pool_hits <- t.n_pool_hits + 1;
    Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
      Iw_obs.Counter.Virtine_pool_hits;
    (* Refill happens off the critical path. *)
    schedule_refill t now;
    trace_spawn t t.config;
    t.warm_base_us *. (1.0 +. Rng.float t.rng 0.08)
  end
  else begin
    trace_spawn t t.cold_cfg;
    t.cold_base_us *. (1.0 +. Rng.float t.rng 0.08)
  end

(* Launch retry: a failed boot is detected, its partial cost paid,
   and the launch repeated — the caller still gets a virtine, just
   later. *)
let rec launch t plan now attempts =
  let us = launch_once t now in
  if
    attempts < relaunch_max
    && Iw_faults.Plan.enabled plan
    && Iw_faults.Plan.fire plan t.obs ~kind:Iw_faults.Plan.Virtine_fail
         ~cpu:(-1) ~ts:t.vclock
  then begin
    Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
      Iw_obs.Counter.Virtine_relaunch;
    fault_instant t "virtine_relaunch";
    (failed_launch_fraction *. us) +. launch t plan now (attempts + 1)
  end
  else us

let call_clocked t ~now ~work_us =
  if work_us < 0.0 then invalid_arg "Wasp.call: negative work";
  if not (Float.is_nan now) then reclaim t now;
  t.n_spawned <- t.n_spawned + 1;
  Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Virtine_spawns;
  let plan = Iw_faults.Plan.ambient () in
  (* Pool poisoning: a warm context fails its pre-dispatch health
     check.  Evict it rather than dispatch into a corrupt guest; the
     caller pays the detection scan and takes the next entry (or a
     cold boot if that was the last one). *)
  let evict_us =
    if
      t.config.pooled && t.pool > 0
      && Iw_faults.Plan.enabled plan
      && Iw_faults.Plan.fire plan t.obs ~kind:Iw_faults.Plan.Pool_poison
           ~cpu:(-1) ~ts:t.vclock
    then begin
      t.pool <- t.pool - 1;
      Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Pool_evict;
      fault_instant t "pool_evict";
      (* With a clock, the evicted entry is re-provisioned in the
         background like any consumed one; without one, the pool
         shrinks (the historical behavior). *)
      if not (Float.is_nan now) then schedule_refill t now;
      poison_detect_us
    end
    else 0.0
  in
  evict_us +. launch t plan now 0 +. marshal_us +. work_us +. teardown_us

let call t ~work_us = call_clocked t ~now:Float.nan ~work_us
let call_at t ~now_us ~work_us = call_clocked t ~now:now_us ~work_us

let spawned t = t.n_spawned
let pool_hits t = t.n_pool_hits

let call_program t ~ghz (p : Iw_ir.Programs.program) =
  if ghz <= 0.0 then invalid_arg "Wasp.call_program: ghz <= 0";
  (* Each virtine gets a fresh module instance: full isolation, no
     shared state with the host or other virtines. *)
  let m = p.build () in
  let r = Iw_ir.Interp.run m p.entry p.args in
  let work_us = float_of_int r.cycles /. (ghz *. 1e3) in
  let arg_marshal = 0.5 *. float_of_int (List.length p.args) in
  (r.ret, call t ~work_us +. arg_marshal)

module Faas = struct
  type result = {
    config_name : string;
    requests : int;
    mean_us : float;
    p50_us : float;
    p99_us : float;
    spawn_only_us : float;
  }

  let run ?(seed = 7) ~name config ~requests ~work_us =
    if requests <= 0 then invalid_arg "Faas.run: requests <= 0";
    let t = create ~seed config in
    let samples = Stats.create () in
    for _ = 1 to requests do
      Stats.add samples (call t ~work_us)
    done;
    {
      config_name = name;
      requests;
      mean_us = Stats.mean samples;
      p50_us = Stats.percentile samples 50.0;
      p99_us = Stats.percentile samples 99.0;
      spawn_only_us =
        spawn_latency_us { config with pooled = false };
    }

  type load_result = {
    lname : string;
    offered_per_s : float;
    served : int;
    mean_wait_us : float;
    p99_total_us : float;
    utilization : float;
  }

  let run_load ?(seed = 7) ~name config ~rate_per_s ~duration_s ~concurrency
      ~work_us =
    if rate_per_s <= 0.0 || duration_s <= 0.0 || concurrency <= 0 then
      invalid_arg "Faas.run_load: non-positive parameter";
    let t = create ~seed config in
    let rng = Iw_engine.Rng.create ~seed:(seed + 101) in
    (* Poisson arrivals over the duration. *)
    let arrivals =
      let rec gen acc now =
        let now =
          now +. Iw_engine.Rng.exponential rng ~mean:(1e6 /. rate_per_s)
        in
        if now > duration_s *. 1e6 then List.rev acc else gen (now :: acc) now
      in
      gen [] 0.0
    in
    (* [concurrency] servers; each request takes the next free one. *)
    let free_at = Array.make concurrency 0.0 in
    let waits = Iw_engine.Stats.create () in
    let totals = Iw_engine.Stats.create () in
    let busy_us = ref 0.0 in
    List.iter
      (fun arrive ->
        (* Pick the earliest-free server. *)
        let best = ref 0 in
        Array.iteri (fun i f -> if f < free_at.(!best) then best := i) free_at;
        let start = Float.max arrive free_at.(!best) in
        let service = call t ~work_us in
        busy_us := !busy_us +. service;
        free_at.(!best) <- start +. service;
        Iw_engine.Stats.add waits (start -. arrive);
        Iw_engine.Stats.add totals (start -. arrive +. service))
      arrivals;
    {
      lname = name;
      offered_per_s = rate_per_s;
      served = List.length arrivals;
      mean_wait_us = Iw_engine.Stats.mean waits;
      p99_total_us =
        (if Iw_engine.Stats.count totals = 0 then 0.0
         else Iw_engine.Stats.percentile totals 99.0);
      utilization =
        !busy_us /. (duration_s *. 1e6 *. float_of_int concurrency);
    }

  let table ?(seed = 7) () =
    let work = 150.0 in
    let requests = 500 in
    [
      run ~seed ~name:"full-linux-boot"
        { default with profile = Full_linux_boot; mem_mb = 128 }
        ~requests ~work_us:work;
      run ~seed ~name:"minimal-64" default ~requests ~work_us:work;
      run ~seed ~name:"minimal-64+snapshot"
        { default with snapshot = true }
        ~requests ~work_us:work;
      run ~seed ~name:"bespoke-16"
        { default with profile = Bespoke_16 }
        ~requests ~work_us:work;
      run ~seed ~name:"bespoke-16+pool"
        { default with profile = Bespoke_16; pooled = true }
        ~requests ~work_us:work;
    ]
end
