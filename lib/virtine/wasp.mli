(** Virtines and the Wasp microhypervisor (§IV-D, §V-E).

    A virtine is a single function executed in its own isolated
    virtual context, created by compiler support and managed by a
    user-space microhypervisor (Wasp).  Start-up latency decomposes
    into explicit stages — context creation, guest memory setup, vCPU
    setup, boot path, runtime init — and the whole point of the
    design is that bespoke contexts {e elide stages}: a snapshot
    restore replaces the boot path, pooling removes creation and
    mapping, and a 16-bit bespoke context (§V-E) never sets up the
    floating-point unit, I/O, or long mode at all.

    Stage costs are modeled in microseconds with small deterministic
    jitter, calibrated to the magnitudes of the virtines paper (KVM
    ioctl costs, snapshot restore, full-OS boots).  The stage elision
    is the real mechanism; the table of E8 falls out of which stages
    a configuration executes. *)

type backend = Kvm | Hyper_v

type profile =
  | Full_linux_boot  (** Commodity stack in the guest. *)
  | Minimal_64  (** Unikernel-style shim, 64-bit, FP initialized. *)
  | Bespoke_16  (** §V-E: 16-bit context, no FP, no I/O, no OS. *)

type config = {
  backend : backend;
  profile : profile;
  snapshot : bool;  (** Restore a pre-booted snapshot instead of booting. *)
  pooled : bool;  (** Draw contexts from a warm pool. *)
  mem_mb : int;
}

val default : config
(** KVM, [Minimal_64], no snapshot, no pool, 2 MB. *)

type stage = {
  stage_name : string;
  stage_us : float;
  elided : bool;  (** True when this configuration skips the stage. *)
}

val stages : config -> stage list
(** The stage-by-stage latency breakdown. *)

val spawn_latency_us : ?jitter:Iw_engine.Rng.t -> config -> float
(** One virtine creation, start to first guest instruction. *)

type t
(** A Wasp instance: owns the snapshot cache and context pool. *)

val create : ?obs:Iw_obs.Obs.t -> ?seed:int -> ?pool_size:int -> config -> t

val call : t -> work_us:float -> float
(** Invoke a virtine function whose body runs [work_us]: returns total
    latency including spawn (or pool dispatch), argument marshalling,
    execution, and teardown.  Pool hits are refilled asynchronously;
    a drained pool falls back to a cold spawn. *)

val call_at : t -> now_us:float -> work_us:float -> float
(** [call] with the caller's clock threaded through: a consumed warm
    context is re-provisioned in the background and only returns to
    the pool one cold-spawn latency after [now_us], so back-to-back
    calls (a burst) can drain the pool and fall back to cold boots.
    Callers that serve requests on a simulated timeline (the service
    plane) use this; [call] keeps the clock-free instant-refill
    behavior. *)

val spawned : t -> int
val pool_hits : t -> int

val call_program :
  t -> ghz:float -> Iw_ir.Programs.program -> int option * float
(** Figure 5's programming model: run a compiled function as a virtine.
    The program executes for real in the IR interpreter inside the
    isolated context; its cycle count converts to microseconds at
    [ghz] and the full invocation latency (spawn + marshalling of the
    arguments + execution + teardown) is returned along with the
    result. *)

(** The FaaS-style evaluation workload (E8). *)
module Faas : sig
  type result = {
    config_name : string;
    requests : int;
    mean_us : float;
    p50_us : float;
    p99_us : float;
    spawn_only_us : float;  (** Mean cold spawn latency, no work. *)
  }

  val run :
    ?seed:int -> name:string -> config -> requests:int -> work_us:float -> result

  val table : ?seed:int -> unit -> result list
  (** The standard comparison: full boot, minimal, minimal+snapshot,
      bespoke 16-bit, pooled bespoke. *)

  type load_result = {
    lname : string;
    offered_per_s : float;
    served : int;
    mean_wait_us : float;  (** Queueing delay before a context frees up. *)
    p99_total_us : float;  (** Queueing + spawn + body + teardown. *)
    utilization : float;  (** Offered service time over capacity. *)
  }

  val run_load :
    ?seed:int ->
    name:string ->
    config ->
    rate_per_s:float ->
    duration_s:float ->
    concurrency:int ->
    work_us:float ->
    load_result
  (** The serverless motivation (§IV-D): Poisson arrivals served by at
      most [concurrency] simultaneous contexts.  Start-up cost is part
      of the service time, so a slow context design saturates at a far
      lower request rate; the queueing delay makes that visible. *)
end
