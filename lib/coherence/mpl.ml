type task = {
  tid : int;
  parent : task option;
  mutable core : int;
  mutable live : bool;
  mutable allocs : eobj list;  (* objects this task still owns *)
}

and eobj = {
  oid : int;
  mutable owner : task;
  mutable frozen : bool;
  base : int;
  words : int;
}

type 'a obj = { e : eobj; data : 'a array }

type ctx = { task : task; st : state }

and state = {
  machine : Machine.t;
  strict : bool;
  mutable next_tid : int;
  mutable next_oid : int;
  mutable next_core : int;
  mutable s_accesses : int;
  mutable s_private : int;
  mutable s_ro : int;
  mutable s_shared : int;
  mutable s_entangled : int;
}

type stats = {
  accesses : int;
  classified_private : int;
  classified_ro : int;
  classified_shared : int;
  entanglements : int;
}

exception Entanglement of string

let rec is_ancestor ~anc t =
  t.tid = anc.tid
  || match t.parent with Some p -> is_ancestor ~anc p | None -> false

(* The runtime classifier: this is where the language's semantics turn
   into protocol hints, with no programmer annotation. *)
let classify st accessor (o : eobj) ~write =
  if o.frozen then begin
    if write then invalid_arg "Mpl: write to frozen object";
    st.s_ro <- st.s_ro + 1;
    Machine.Read_only
  end
  else if o.owner.tid = accessor.tid then begin
    st.s_private <- st.s_private + 1;
    Machine.Private_to accessor.core
  end
  else if (not o.owner.live) || is_ancestor ~anc:o.owner accessor then begin
    (* Ancestor data (or data whose owner tree already joined above
       us): mutable and potentially visible to siblings. *)
    st.s_shared <- st.s_shared + 1;
    Machine.Shared_data
  end
  else begin
    (* A live, concurrent, non-ancestor task's allocation: an
       entanglement. *)
    st.s_entangled <- st.s_entangled + 1;
    if st.strict then
      raise
        (Entanglement
           (Printf.sprintf "task %d touched task %d's fresh object %d"
              accessor.tid o.owner.tid o.oid));
    st.s_shared <- st.s_shared + 1;
    Machine.Shared_data
  end

let word_bytes = 8

let touch ctx (o : eobj) idx ~write =
  if idx < 0 || idx >= o.words then invalid_arg "Mpl: index out of bounds";
  let st = ctx.st in
  st.s_accesses <- st.s_accesses + 1;
  let hint = classify st ctx.task o ~write in
  Machine.access st.machine ~core:ctx.task.core
    ~addr:(o.base + (idx * word_bytes))
    ~write ~hint

let alloc ctx words ~init =
  if words <= 0 then invalid_arg "Mpl.alloc: words <= 0";
  let st = ctx.st in
  let e =
    {
      oid = st.next_oid;
      owner = ctx.task;
      frozen = false;
      (* Objects live in disjoint address ranges, line-aligned. *)
      base = 0x10000 + (st.next_oid * ((words * word_bytes) + 64));
      words;
    }
  in
  st.next_oid <- st.next_oid + 1;
  ctx.task.allocs <- e :: ctx.task.allocs;
  (* Initialization writes are real accesses. *)
  let o = { e; data = Array.make words init } in
  for i = 0 to words - 1 do
    touch ctx e i ~write:true
  done;
  o

let read ctx o idx =
  touch ctx o.e idx ~write:false;
  o.data.(idx)

let write ctx o idx v =
  touch ctx o.e idx ~write:true;
  o.data.(idx) <- v

let freeze _ctx o = o.e.frozen <- true

let length o = Array.length o.data

let fork st parent =
  let core = st.next_core mod (Machine.params st.machine).Machine.cores in
  st.next_core <- st.next_core + 1;
  let t =
    { tid = st.next_tid; parent = Some parent; core; live = true; allocs = [] }
  in
  st.next_tid <- st.next_tid + 1;
  t

(* Join: the child's surviving allocations become the parent's — from
   now on they are (at most) parent-private, the disentanglement
   guarantee MPL's collector exploits. *)
let join parent child =
  child.live <- false;
  List.iter (fun o -> o.owner <- parent) child.allocs;
  parent.allocs <- child.allocs @ parent.allocs;
  child.allocs <- []

let par2 ctx f g =
  let st = ctx.st in
  let lt = fork st ctx.task and rt = fork st ctx.task in
  (* Left child inherits the parent's core, as work-stealing runtimes
     arrange; the right child lands elsewhere. *)
  lt.core <- ctx.task.core;
  let a = f { task = lt; st } in
  let b = g { task = rt; st } in
  join ctx.task lt;
  join ctx.task rt;
  (a, b)

let rec par_for ctx ~lo ~hi ~grain body =
  if hi - lo <= grain then
    for i = lo to hi - 1 do
      body ctx i
    done
  else begin
    let mid = (lo + hi) / 2 in
    let (), () =
      par2 ctx
        (fun c -> par_for c ~lo ~hi:mid ~grain body)
        (fun c -> par_for c ~lo:mid ~hi ~grain body)
    in
    ()
  end

let run ?(strict = false) ~machine f =
  let st =
    {
      machine;
      strict;
      next_tid = 1;
      next_oid = 0;
      next_core = 1;
      s_accesses = 0;
      s_private = 0;
      s_ro = 0;
      s_shared = 0;
      s_entangled = 0;
    }
  in
  let root = { tid = 0; parent = None; core = 0; live = true; allocs = [] } in
  Machine.epoch machine ~name:"mpl:start";
  let v = f { task = root; st } in
  Machine.epoch machine ~name:"mpl:done";
  ( v,
    {
      accesses = st.s_accesses;
      classified_private = st.s_private;
      classified_ro = st.s_ro;
      classified_shared = st.s_shared;
      entanglements = st.s_entangled;
    } )
