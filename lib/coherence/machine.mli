(** MESI + directory coherence with selective deactivation (§V-B).

    Cores issue (address, read/write) accesses carrying a {e hint}
    from the language runtime: data known private to one core, data
    known immutable, or ordinary shared data.  Baseline MESI tracks
    everything in the directory; with deactivation enabled, hinted
    classes bypass coherence entirely — private data is homed and
    fetched locally with no directory indirection, read-only data is
    replicated without sharer tracking.  Cycles, protocol messages,
    and interconnect energy are all counted per access, so the
    speedup and energy claims of Fig. 7 fall out of message
    arithmetic, not curve fitting. *)

type hint = Shared_data | Private_to of int | Read_only

type deactivation = Off | Private_only | Private_and_ro

type params = {
  cores : int;
  cores_per_socket : int;
  cache_kb : int;  (** Private cache per core. *)
  ways : int;
  line_bytes : int;
  l1_hit : int;
  dir_lookup : int;
  hop_latency : int;  (** One interconnect hop, one way. *)
  mem_latency : int;
  cache_to_cache : int;
  inval_cost : int;  (** Per invalidation target. *)
  ctrl_energy : float;  (** Per control message per hop. *)
  data_energy : float;  (** Per data message per hop. *)
}

val default_params : cores:int -> cores_per_socket:int -> params

type counters = {
  accesses : int;
  hits : int;
  misses : int;
  dir_requests : int;
  invalidations : int;
  data_transfers : int;
  writebacks : int;
  ctrl_msgs : int;
  data_msgs : int;
}

type t

val create : ?obs:Iw_obs.Obs.t -> ?params:params -> deactivation -> t
val params : t -> params
val access : t -> core:int -> addr:int -> write:bool -> hint:hint -> unit
val core_cycles : t -> int -> int
val makespan : t -> int
(** Max per-core cycle total: the simulated execution time. *)

val epoch : t -> name:string -> unit
(** Emit an epoch-boundary instant (cat ["coherence"], machine track)
    at the current makespan; free when tracing is off. *)

val counters : t -> counters
val interconnect_energy : t -> float

val swmr_holds : t -> bool
(** The single-writer-multiple-reader invariant over every line that
    has ever been coherence-tracked: an M/E copy excludes all other
    copies.  Deactivated (hinted) lines are exempt by design — that
    is what deactivation means. *)
