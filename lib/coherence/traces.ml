open Iw_engine

type mix = {
  private_frac : float;
  ro_frac : float;
  private_ws_kb : int;
  ro_kb : int;
  shared_kb : int;
  write_frac_private : float;
  write_frac_shared : float;
  locality : float;
}

type bench = { bench_name : string; mix : mix; accesses_per_core : int }

let mk name ?(accesses = 40_000) mix = { bench_name = name; mix; accesses_per_core = accesses }

let samplesort =
  mk "samplesort"
    {
      private_frac = 0.84;
      ro_frac = 0.10;
      private_ws_kb = 2048;
      ro_kb = 4096;
      shared_kb = 64;
      write_frac_private = 0.45;
      write_frac_shared = 0.30;
      locality = 0.86;
    }

let bfs =
  mk "bfs"
    {
      private_frac = 0.70;
      ro_frac = 0.22;
      private_ws_kb = 1024;
      ro_kb = 8192;
      shared_kb = 128;
      write_frac_private = 0.35;
      write_frac_shared = 0.50;
      locality = 0.70;
    }

let mis =
  mk "mis"
    {
      private_frac = 0.72;
      ro_frac = 0.18;
      private_ws_kb = 1024;
      ro_kb = 4096;
      shared_kb = 96;
      write_frac_private = 0.40;
      write_frac_shared = 0.45;
      locality = 0.74;
    }

let convex_hull =
  mk "convex-hull"
    {
      private_frac = 0.86;
      ro_frac = 0.10;
      private_ws_kb = 1536;
      ro_kb = 4096;
      shared_kb = 48;
      write_frac_private = 0.40;
      write_frac_shared = 0.25;
      locality = 0.90;
    }

let remove_duplicates =
  mk "dedup"
    {
      private_frac = 0.76;
      ro_frac = 0.12;
      private_ws_kb = 2048;
      ro_kb = 2048;
      shared_kb = 256;
      write_frac_private = 0.50;
      write_frac_shared = 0.55;
      locality = 0.66;
    }

let suffix_array =
  mk "suffix-array"
    {
      private_frac = 0.80;
      ro_frac = 0.14;
      private_ws_kb = 3072;
      ro_kb = 6144;
      shared_kb = 64;
      write_frac_private = 0.45;
      write_frac_shared = 0.30;
      locality = 0.80;
    }

let nbody =
  mk "nbody"
    {
      private_frac = 0.78;
      ro_frac = 0.18;
      private_ws_kb = 1024;
      ro_kb = 3072;
      shared_kb = 32;
      write_frac_private = 0.30;
      write_frac_shared = 0.20;
      locality = 0.93;
    }

let word_counts =
  mk "word-counts"
    {
      private_frac = 0.74;
      ro_frac = 0.16;
      private_ws_kb = 1536;
      ro_kb = 8192;
      shared_kb = 192;
      write_frac_private = 0.55;
      write_frac_shared = 0.50;
      locality = 0.72;
    }

let pbbs_suite =
  [
    samplesort;
    bfs;
    mis;
    convex_hull;
    remove_duplicates;
    suffix_array;
    nbody;
    word_counts;
  ]

(* Address-space layout: generous, collision-free gaps. *)
let private_base core = (core + 1) * (1 lsl 30)
let ro_base = 1 lsl 28
let shared_base = 1 lsl 27

let gen_access mix rng ~core =
  let in_region base size_kb hot_kb =
    let size = size_kb * 1024 in
    let hot = max 64 (min size (hot_kb * 1024)) in
    if Rng.float rng 1.0 < mix.locality then base + Rng.int rng hot
    else base + Rng.int rng size
  in
  let r = Rng.float rng 1.0 in
  if r < mix.private_frac then
    let addr = in_region (private_base core) mix.private_ws_kb 64 in
    (addr, Rng.float rng 1.0 < mix.write_frac_private, Machine.Private_to core)
  else if r < mix.private_frac +. mix.ro_frac then
    let addr = in_region ro_base mix.ro_kb 64 in
    (addr, false, Machine.Read_only)
  else
    let addr = in_region shared_base mix.shared_kb mix.shared_kb in
    (addr, Rng.float rng 1.0 < mix.write_frac_shared, Machine.Shared_data)

let run_bench ?(seed = 42) ~params deact bench =
  let m = Machine.create ~params deact in
  let cores = params.Machine.cores in
  let rngs =
    Array.init cores (fun c -> Rng.create ~seed:(seed + (1000 * c) + Hashtbl.hash bench.bench_name))
  in
  (* Interleave cores round-robin so contention patterns overlap.
     Every 4096 rounds is one "epoch": an instant on the machine track
     marks the boundary so traces show where protocol time went. *)
  for round = 1 to bench.accesses_per_core do
    for core = 0 to cores - 1 do
      let addr, write, hint = gen_access bench.mix rngs.(core) ~core in
      Machine.access m ~core ~addr ~write ~hint
    done;
    if round land 4095 = 0 then
      Machine.epoch m ~name:(Printf.sprintf "%s:epoch %d" bench.bench_name (round lsr 12))
  done;
  Machine.epoch m ~name:(bench.bench_name ^ ":done");
  m

type row = {
  bench : string;
  base_cycles : int;
  deact_cycles : int;
  speedup : float;
  base_energy : float;
  deact_energy : float;
  energy_reduction_pct : float;
  base_invalidations : int;
  deact_invalidations : int;
}

let fig7 ?(seed = 42) ?(deactivation = Machine.Private_and_ro) ~params () =
  List.map
    (fun bench ->
      let base = run_bench ~seed ~params Machine.Off bench in
      let deact = run_bench ~seed ~params deactivation bench in
      let bc = Machine.makespan base and dc = Machine.makespan deact in
      let be = Machine.interconnect_energy base in
      let de = Machine.interconnect_energy deact in
      {
        bench = bench.bench_name;
        base_cycles = bc;
        deact_cycles = dc;
        speedup = float_of_int bc /. float_of_int (max 1 dc);
        base_energy = be;
        deact_energy = de;
        energy_reduction_pct = 100.0 *. (1.0 -. (de /. max 1e-9 be));
        base_invalidations = (Machine.counters base).invalidations;
        deact_invalidations = (Machine.counters deact).invalidations;
      })
    pbbs_suite

let average_speedup rows =
  List.fold_left (fun a r -> a +. r.speedup) 0.0 rows
  /. float_of_int (List.length rows)

let average_energy_reduction rows =
  List.fold_left (fun a r -> a +. r.energy_reduction_pct) 0.0 rows
  /. float_of_int (List.length rows)
