type hint = Shared_data | Private_to of int | Read_only

type deactivation = Off | Private_only | Private_and_ro

type params = {
  cores : int;
  cores_per_socket : int;
  cache_kb : int;
  ways : int;
  line_bytes : int;
  l1_hit : int;
  dir_lookup : int;
  hop_latency : int;
  mem_latency : int;
  cache_to_cache : int;
  inval_cost : int;
  ctrl_energy : float;
  data_energy : float;
}

let default_params ~cores ~cores_per_socket =
  {
    cores;
    cores_per_socket;
    cache_kb = 256;
    ways = 8;
    line_bytes = 64;
    l1_hit = 4;
    dir_lookup = 20;
    hop_latency = 40;
    mem_latency = 150;
    cache_to_cache = 40;
    inval_cost = 20;
    ctrl_energy = 1.0;
    data_energy = 4.0;
  }

type counters = {
  accesses : int;
  hits : int;
  misses : int;
  dir_requests : int;
  invalidations : int;
  data_transfers : int;
  writebacks : int;
  ctrl_msgs : int;
  data_msgs : int;
}

(* [DNone] is the Itbl dummy standing for "no directory entry". *)
type dstate = DNone | DOwned of int | DShared of int list

type t = {
  p : params;
  deact : deactivation;
  obs : Iw_obs.Obs.t;
  caches : Cache.t array;
  dir : dstate Iw_engine.Itbl.t;
  (* One [DOwned i] per core, reused for every directory write: the
     single-owner state is by far the most common, and a shared block
     stays cache-hot where a fresh allocation per miss would not. *)
  owned : dstate array;
  tracked_lines : unit Iw_engine.Itbl.t;
  (* Direct-mapped filter in front of [tracked_lines]: marking is
     idempotent, so skipping the table probe when the filter already
     holds the line is a pure win.  The table can grow to megabytes
     while the filter stays cache-resident.  -1 = empty (lines are
     non-negative). *)
  tracked_filter : int array;
  cycles : int array;
  mutable c_accesses : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_dir : int;
  mutable c_inval : int;
  mutable c_data : int;
  mutable c_wb : int;
  mutable c_ctrl_msgs : int;
  mutable c_data_msgs : int;
  mutable energy : float;
}

let create ?obs ?params deact =
  let obs = match obs with Some o -> o | None -> Iw_obs.Obs.inherit_trace () in
  let p =
    match params with
    | Some p -> p
    | None -> default_params ~cores:24 ~cores_per_socket:12
  in
  {
    p;
    deact;
    obs;
    caches =
      Array.init p.cores (fun _ ->
          Cache.create ~size_kb:p.cache_kb ~ways:p.ways ~line_bytes:p.line_bytes);
    dir = Iw_engine.Itbl.create ~capacity:(1 lsl 16) ~dummy:DNone ();
    owned = Array.init p.cores (fun i -> DOwned i);
    tracked_lines = Iw_engine.Itbl.create ~capacity:(1 lsl 16) ~dummy:() ();
    tracked_filter = Array.make (1 lsl 15) (-1);
    cycles = Array.make p.cores 0;
    c_accesses = 0;
    c_hits = 0;
    c_misses = 0;
    c_dir = 0;
    c_inval = 0;
    c_data = 0;
    c_wb = 0;
    c_ctrl_msgs = 0;
    c_data_msgs = 0;
    energy = 0.0;
  }

let params t = t.p

let socket t core = core / t.p.cores_per_socket

let hops t a b =
  if a = b then 0 else if socket t a = socket t b then 1 else 3

(* Home (directory slice / memory controller) of a line: address hash
   across cores.  Deactivated private data is instead homed at its
   owner — the first-touch placement a runtime that knows ownership
   can guarantee. *)
let home t line = line * 2654435761 mod t.p.cores |> abs

let ctrl_msg t h =
  if h > 0 then begin
    t.c_ctrl_msgs <- t.c_ctrl_msgs + 1;
    t.energy <- t.energy +. (t.p.ctrl_energy *. float_of_int h)
  end

let data_msg t h =
  t.c_data_msgs <- t.c_data_msgs + 1;
  if h > 0 then t.energy <- t.energy +. (t.p.data_energy *. float_of_int h)

let charge t core c = t.cycles.(core) <- t.cycles.(core) + c

(* Handle an eviction returned by Cache.install under tracked MESI. *)
let tracked_evict t core = function
  | None -> ()
  | Some (line, st) -> (
      match st with
      | Cache.Modified ->
          let h = hops t core (home t line) in
          t.c_wb <- t.c_wb + 1;
          data_msg t h;
          Iw_engine.Itbl.remove t.dir line
      | Cache.Exclusive | Cache.Shared_state ->
          (* Silent drop; the directory may retain a stale sharer,
             which later invalidations handle as no-ops. *)
          ()
      | Cache.Invalid -> ())

let deact_evict t core hint = function
  | None -> ()
  | Some (_line, Cache.Modified) ->
      (* Write back to the local (private) or home (ro) memory. *)
      let h = match hint with Private_to _ -> 0 | _ -> 1 in
      t.c_wb <- t.c_wb + 1;
      data_msg t h;
      ignore core
  | Some _ -> ()

let sharers_of = function DNone -> [] | DOwned o -> [ o ] | DShared l -> l

(* Invalidate one remote sharer through the directory: a request and
   an ack, each [ho] hops.  Dir_drop_ack injection: the ack is lost on
   the way home, so the directory times out and replays the
   invalidation (a second request/ack pair) and the requester stalls
   for the extra round trip.  The copy itself was already dropped by
   the first request, so replaying can never create a second writer —
   SWMR is preserved by construction and asserted by [swmr_holds]. *)
let inval_sharer t plan ~core ~line ~addr ~far o =
  t.c_inval <- t.c_inval + 1;
  let ho = hops t (home t line) o in
  ctrl_msg t ho;
  (* ack *)
  ctrl_msg t ho;
  if
    Iw_faults.Plan.enabled plan
    && Iw_faults.Plan.fire plan t.obs ~kind:Iw_faults.Plan.Dir_drop_ack
         ~cpu:core ~ts:t.cycles.(core)
  then begin
    ctrl_msg t ho;
    ctrl_msg t ho;
    Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters Iw_obs.Counter.Dir_ack_retry;
    charge t core (t.p.inval_cost + (2 * ho * t.p.hop_latency))
  end;
  far := max !far ho;
  Cache.invalidate t.caches.(o) addr

let is_deactivated t hint =
  match (t.deact, hint) with
  | Off, _ -> false
  | (Private_only | Private_and_ro), Private_to _ -> true
  | Private_and_ro, Read_only -> true
  | Private_only, Read_only -> false
  | _, Shared_data -> false

let access t ~core ~addr ~write ~hint =
  if core < 0 || core >= t.p.cores then invalid_arg "Machine.access: bad core";
  t.c_accesses <- t.c_accesses + 1;
  let cache = t.caches.(core) in
  let line = Cache.line_of_addr cache addr in
  if is_deactivated t hint then begin
    (* Coherence off: no directory, no invalidations.  Private data is
       homed locally; read-only data replicates freely. *)
    (match hint with
    | Read_only when write ->
        invalid_arg "Machine.access: write to read-only-hinted data"
    | _ -> ());
    match Cache.lookup cache addr with
    | Cache.Modified | Cache.Exclusive ->
        t.c_hits <- t.c_hits + 1;
        charge t core t.p.l1_hit;
        if write then Cache.set_state cache addr Cache.Modified
    | Cache.Shared_state ->
        t.c_hits <- t.c_hits + 1;
        charge t core t.p.l1_hit;
        if write then Cache.set_state cache addr Cache.Modified
    | Cache.Invalid ->
        t.c_misses <- t.c_misses + 1;
        let h = match hint with Private_to _ -> 0 | _ -> 1 in
        charge t core (t.p.mem_latency + (2 * h * t.p.hop_latency));
        t.c_data <- t.c_data + 1;
        data_msg t h;
        let st = if write then Cache.Modified else Cache.Exclusive in
        deact_evict t core hint (Cache.install cache addr st)
  end
  else begin
    (* Tracked MESI through the directory. *)
    let fi = (line * 2654435761) lsr 16 land ((1 lsl 15) - 1) in
    if Array.unsafe_get t.tracked_filter fi <> line then begin
      Array.unsafe_set t.tracked_filter fi line;
      Iw_engine.Itbl.set t.tracked_lines line ()
    end;
    (* Spurious shootdown injection: the line vanishes from this
       core's cache as if a remote invalidation hit it.  A Modified
       line is written back first (the fault may not lose data), then
       the access below misses and the protocol refetches through the
       directory — MESI's own machinery is the recovery path, and
       SWMR still holds because dropping copies can never add a
       second writer. *)
    let plan = Iw_faults.Plan.ambient () in
    (if
       Iw_faults.Plan.enabled plan
       && Iw_faults.Plan.fire plan t.obs ~kind:Iw_faults.Plan.Tlb_shootdown
            ~cpu:core ~ts:t.cycles.(core)
     then
       match Cache.lookup cache addr with
       | Cache.Invalid -> ()
       | st ->
           if st = Cache.Modified then begin
             let h = hops t core (home t line) in
             t.c_wb <- t.c_wb + 1;
             data_msg t h;
             Iw_engine.Itbl.remove t.dir line
           end;
           Cache.invalidate cache addr;
           charge t core t.p.inval_cost);
    match (Cache.lookup cache addr, write) with
    | (Cache.Modified | Cache.Exclusive), false ->
        t.c_hits <- t.c_hits + 1;
        charge t core t.p.l1_hit
    | Cache.Modified, true ->
        t.c_hits <- t.c_hits + 1;
        charge t core t.p.l1_hit
    | Cache.Exclusive, true ->
        t.c_hits <- t.c_hits + 1;
        charge t core t.p.l1_hit;
        Cache.set_state cache addr Cache.Modified
    | Cache.Shared_state, false ->
        t.c_hits <- t.c_hits + 1;
        charge t core t.p.l1_hit
    | Cache.Shared_state, true ->
        (* Upgrade: invalidate the other sharers via the directory. *)
        t.c_hits <- t.c_hits + 1;
        t.c_dir <- t.c_dir + 1;
        Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
          Iw_obs.Counter.Dir_transitions;
        let hm = hops t core (home t line) in
        ctrl_msg t hm;
        charge t core ((2 * hm * t.p.hop_latency) + t.p.dir_lookup);
        (* Single probe: read the sharer set and claim ownership. *)
        let prev =
          Iw_engine.Itbl.mutate t.dir line (fun _ -> t.owned.(core))
        in
        let others = List.filter (fun c -> c <> core) (sharers_of prev) in
        let far = ref 0 in
        List.iter (inval_sharer t plan ~core ~line ~addr ~far) others;
        charge t core (t.p.inval_cost + (2 * !far * t.p.hop_latency));
        Cache.set_state cache addr Cache.Modified
    | Cache.Invalid, _ ->
        t.c_misses <- t.c_misses + 1;
        t.c_dir <- t.c_dir + 1;
        Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
          Iw_obs.Counter.Dir_transitions;
        let hm = hops t core (home t line) in
        ctrl_msg t hm;
        charge t core ((2 * hm * t.p.hop_latency) + t.p.dir_lookup);
        let install st =
          tracked_evict t core (Cache.install cache addr st)
        in
        (* Single probe: the next directory state is a pure function
           of the previous one, so read-modify-write in one pass and
           base the protocol side effects on the returned old state. *)
        let prev =
          Iw_engine.Itbl.mutate t.dir line (fun d ->
              if write then t.owned.(core)
              else
                match d with
                | DNone -> t.owned.(core)
                | DOwned o when o <> core -> DShared [ o; core ]
                | DOwned _ -> t.owned.(core)
                | DShared l -> DShared (core :: List.filter (fun c -> c <> core) l))
        in
        (match prev with
        | DNone ->
            (* Memory at the home supplies the line. *)
            charge t core t.p.mem_latency;
            t.c_data <- t.c_data + 1;
            data_msg t (max hm 1);
            install (if write then Cache.Modified else Cache.Exclusive)
        | d ->
            let sharers = List.filter (fun c -> c <> core) (sharers_of d) in
            if write then begin
              (* Invalidate everyone; data comes cache-to-cache from
                 the owner when there is one. *)
              let far = ref 0 in
              List.iter (inval_sharer t plan ~core ~line ~addr ~far) sharers;
              (match (d, sharers) with
              | DOwned o, _ when o <> core ->
                  charge t core
                    (t.p.cache_to_cache + (hops t o core * t.p.hop_latency));
                  t.c_data <- t.c_data + 1;
                  data_msg t (max (hops t o core) 1)
              | _ ->
                  charge t core t.p.mem_latency;
                  t.c_data <- t.c_data + 1;
                  data_msg t (max hm 1));
              charge t core (t.p.inval_cost + (2 * !far * t.p.hop_latency));
              install Cache.Modified
            end
            else begin
              (match d with
              | DNone -> assert false (* handled by the outer match *)
              | DOwned o when o <> core ->
                  let fwd = hops t (home t line) o in
                  let stale =
                    (* Stale directory entry: the named owner silently
                       dropped its copy, so the forward bounces.  A
                       Modified copy is written back as part of the
                       drop (the fault may not lose data); recovery is
                       one layer up in the protocol — the home nacks
                       the forward and memory supplies the line. *)
                    Iw_faults.Plan.enabled plan
                    && Iw_faults.Plan.fire plan t.obs
                         ~kind:Iw_faults.Plan.Dir_stale ~cpu:core
                         ~ts:t.cycles.(core)
                  in
                  if stale then begin
                    if Cache.lookup t.caches.(o) addr = Cache.Modified
                    then begin
                      t.c_wb <- t.c_wb + 1;
                      data_msg t fwd
                    end;
                    Cache.invalidate t.caches.(o) addr;
                    ctrl_msg t fwd;
                    (* nack back to the home *)
                    ctrl_msg t fwd;
                    Iw_obs.Counter.incr t.obs.Iw_obs.Obs.counters
                      Iw_obs.Counter.Dir_stale_refetch;
                    charge t core
                      (t.p.mem_latency
                      + ((2 * fwd) + (2 * hm)) * t.p.hop_latency);
                    t.c_data <- t.c_data + 1;
                    data_msg t (max hm 1)
                  end
                  else begin
                    (* Forward; owner downgrades, modified data written
                       back home. *)
                    ctrl_msg t fwd;
                    charge t core
                      (t.p.cache_to_cache
                      + ((fwd + hops t o core) * t.p.hop_latency));
                    t.c_data <- t.c_data + 1;
                    data_msg t (max (hops t o core) 1);
                    if Cache.lookup t.caches.(o) addr = Cache.Modified
                    then begin
                      t.c_wb <- t.c_wb + 1;
                      data_msg t fwd
                    end;
                    Cache.set_state t.caches.(o) addr Cache.Shared_state
                  end
              | DOwned _ | DShared _ ->
                  charge t core t.p.mem_latency;
                  t.c_data <- t.c_data + 1;
                  data_msg t (max hm 1));
              install Cache.Shared_state
            end)
  end

let core_cycles t core = t.cycles.(core)

let makespan t = Array.fold_left max 0 t.cycles

(* Epoch boundary: an instant on the machine track at the current
   makespan — workload drivers call this at round/phase boundaries so
   a trace shows where the protocol's time went between epochs. *)
let epoch t ~name =
  let tr = t.obs.Iw_obs.Obs.trace in
  if tr.Iw_obs.Trace.enabled then
    Iw_obs.Trace.instant tr ~name ~cat:"coherence" ~cpu:(-1) ~ts:(makespan t) ()

let counters t =
  {
    accesses = t.c_accesses;
    hits = t.c_hits;
    misses = t.c_misses;
    dir_requests = t.c_dir;
    invalidations = t.c_inval;
    data_transfers = t.c_data;
    writebacks = t.c_wb;
    ctrl_msgs = t.c_ctrl_msgs;
    data_msgs = t.c_data_msgs;
  }

let interconnect_energy t = t.energy

(* Single-writer-multiple-reader: for every line that has ever been
   coherence-tracked, an M or E copy in one cache excludes any copy in
   any other cache. *)
let swmr_holds t =
  let holders = Hashtbl.create 64 in
  Array.iteri
    (fun core cache ->
      Cache.fold cache ~init:() ~f:(fun () line st ->
          if Iw_engine.Itbl.mem t.tracked_lines line then begin
            let cur = try Hashtbl.find holders line with Not_found -> [] in
            Hashtbl.replace holders line ((core, st) :: cur)
          end))
    t.caches;
  Hashtbl.fold
    (fun _line copies ok ->
      ok
      &&
      let exclusive =
        List.exists
          (fun (_, st) -> st = Cache.Modified || st = Cache.Exclusive)
          copies
      in
      (not exclusive) || List.length copies = 1)
    holders true
