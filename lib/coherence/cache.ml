type state = Modified | Exclusive | Shared_state | Invalid

(* One flat entry per way: [(line lsl 2) lor code], or [-1] for an
   empty way.  A whole 8-way set is 64 contiguous bytes, so the
   per-access scan touches one cache line of the host machine instead
   of chasing eight boxed way records.  Codes 1..3 only: [set_state]
   goes through [find], which skips invalid ways, so a resident line
   can never be stored with the Invalid code. *)

let code = function Invalid -> 0 | Shared_state -> 1 | Exclusive -> 2 | Modified -> 3

let state_of_code = [| Invalid; Shared_state; Exclusive; Modified |]

type t = {
  sets : int;
  assoc : int;
  set_mask : int; (* sets - 1 when sets is a power of two, else 0 *)
  line_shift : int; (* log2 line_bytes; line size is enforced pow2 *)
  data : int array; (* sets * assoc packed entries *)
  lru : int array; (* sets * assoc last-touch stamps *)
  line_bytes : int;
  mutable clock : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

let create ~size_kb ~ways ~line_bytes =
  if not (is_pow2 line_bytes) then
    invalid_arg "Cache.create: line size must be a power of two";
  let total_lines = size_kb * 1024 / line_bytes in
  if total_lines mod ways <> 0 then
    invalid_arg "Cache.create: lines not divisible by ways";
  let sets = total_lines / ways in
  {
    sets;
    assoc = ways;
    set_mask = (if is_pow2 sets then sets - 1 else 0);
    line_shift = log2 line_bytes;
    data = Array.make total_lines (-1);
    lru = Array.make total_lines 0;
    line_bytes;
    clock = 0;
  }

(* Addresses and lines are non-negative (a negative line would have
   indexed outside the set array from day one), so shift-and-mask
   agrees with the division it replaces. *)
let line_of_addr t addr = addr lsr t.line_shift

let set_of_line t line =
  if t.set_mask <> 0 then line land t.set_mask else line mod t.sets

(* Index of the way holding [line], or -1.  Empty ways are -1, which
   shifts to -1 and never equals a (non-negative) line. *)
let find t line =
  let base = set_of_line t line * t.assoc in
  let n = t.assoc in
  let rec go i =
    if i >= n then -1
    else if Array.unsafe_get t.data (base + i) asr 2 = line then base + i
    else go (i + 1)
  in
  go 0

let touch t j =
  t.clock <- t.clock + 1;
  Array.unsafe_set t.lru j t.clock

let lookup t addr =
  let j = find t (line_of_addr t addr) in
  if j < 0 then Invalid
  else begin
    touch t j;
    state_of_code.(t.data.(j) land 3)
  end

let install t addr st =
  let line = line_of_addr t addr in
  let j = find t line in
  if j >= 0 then begin
    t.data.(j) <- (line lsl 2) lor code st;
    touch t j;
    None
  end
  else begin
    let base = set_of_line t line * t.assoc in
    (* Prefer an invalid way (the last one, as the record-based
       implementation did); otherwise evict the LRU one. *)
    let vic = ref base in
    let found_invalid = ref false in
    for i = 0 to t.assoc - 1 do
      let j = base + i in
      if t.data.(j) < 0 then begin
        vic := j;
        found_invalid := true
      end
      else if (not !found_invalid) && t.lru.(j) < t.lru.(!vic) then vic := j
    done;
    let evicted =
      let e = t.data.(!vic) in
      if e < 0 then None else Some (e asr 2, state_of_code.(e land 3))
    in
    t.data.(!vic) <- (line lsl 2) lor code st;
    touch t !vic;
    evicted
  end

let set_state t addr st =
  let line = line_of_addr t addr in
  let j = find t line in
  if j >= 0 then t.data.(j) <- (line lsl 2) lor code st

let invalidate t addr =
  let j = find t (line_of_addr t addr) in
  if j >= 0 then t.data.(j) <- -1

let resident t addr = find t (line_of_addr t addr) >= 0

let lines t = Array.length t.data

let fold t ~init ~f =
  let acc = ref init in
  Array.iter
    (fun e -> if e >= 0 then acc := f !acc (e asr 2) state_of_code.(e land 3))
    t.data;
  !acc
