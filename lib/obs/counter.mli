(** Typed event counters shared by every layer of the stack.

    A counter bump is two array operations on a constant index; the
    closed [id] variant replaces the string-keyed hashtable the
    scheduler hot paths used to hash through.  Rendering via
    {!to_list} matches the old string-counter output byte for byte. *)

type id =
  | Context_switches
  | Preemptions
  | Ticks
  | Spawns
  | Thread_exits
  | Lock_contended
  | Irq_dispatches
  | Ipi_sends
  | Timer_fires
  | Tlb_misses
  | Page_faults
  | Fiber_switches
  | Timing_checks
  | Device_irqs
  | Promotions
  | Steals
  | Heartbeats
  | Omp_regions
  | Omp_chunks
  | Guard_checks
  | Guard_faults
  | Virtine_spawns
  | Virtine_pool_hits
  | Dir_transitions
  | Fault_injected
  | Ipi_retry
  | Watchdog_fire
  | Virtine_relaunch
  | Pool_evict
  | Move_rollback
  | Dir_ack_retry
  | Dir_stale_refetch
  | Barrier_recover
  | Service_arrivals
  | Service_admitted
  | Service_completions
  | Service_shed
  | Service_backpressure
  | Service_hi_prio
  | Net_msgs
  | Net_drops
  | Net_retries
  | Net_nacks
  | Gossip_msgs
  | Machine_ejects
  | Service_failed
  | Peer_steal
  | Hedge_sent
  | Hedge_won
  | Hedge_cancel
  | Admission_shed
  | Corrupt_retry
  | Nic_rx_pkts
  | Nic_rx_drops
  | Nic_irqs
  | Nic_polls
  | Nic_poll_empty
  | Nic_tx_pkts
  | Nic_irq_recover

val count : int
(** Number of distinct counter ids. *)

val index : id -> int
(** Dense index in [0, count). *)

val name : id -> string
(** Stable snake_case name, identical to the old string keys. *)

val all : id list
(** Every id, in declaration order. *)

type set = int array
(** Preallocated cells; exposed concretely so a bump compiles to two
    array operations with no call. *)

val create : unit -> set
val incr : set -> id -> unit
val add : set -> id -> int -> unit
val get : set -> id -> int
val reset : set -> unit

val merge_into : dst:set -> set -> unit
(** Add every cell of [src] into [dst]. *)

val sum : set list -> set
(** Fresh set holding the cell-wise sum of [sets]. *)

val to_list : set -> (string * int) list
(** Counters that have fired, as [(name, value)] sorted by name —
    the same rendering the string-keyed counters produced. *)
