(** Minimal JSON reader + escaping, shared by the trace exporters and
    their validators (the container has no JSON library). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

val parse : string -> t
(** Parse a complete JSON document; raises {!Bad} with an offset on
    malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects or missing keys. *)

val read_file : string -> string

val escape : Buffer.t -> string -> unit
(** Append [s] with JSON string escaping (ASCII control chars,
    quotes, backslashes). *)
