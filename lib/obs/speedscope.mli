(** speedscope "evented" file export + validation (hand-rolled JSON,
    one profile per simulated CPU, offsets in virtual cycles). *)

val to_json : ?name:string -> Profile.t -> string

val write_file : ?name:string -> Profile.t -> string -> unit

val validate : string -> (int, string) result
(** Check a speedscope document: shared frame table with named frames,
    evented profiles with in-range frame indices, non-decreasing [at]
    offsets, balanced open/close stacks, and start/end values
    bracketing the events.  Returns the number of events checked. *)

val validate_file : string -> (int, string) result
