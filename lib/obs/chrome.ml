(* Chrome trace-event (Perfetto-loadable) export and validation.

   Export maps each simulated CPU to one Chrome "process" (pid =
   cpu + 1, with pid 0 reserved for machine-wide events), names the
   processes via [ph:"M"] metadata, and emits complete spans as
   [ph:"X"] with [ts]/[dur] in virtual cycles, instants as [ph:"i"],
   causal flows as [ph:"s"/"t"/"f"] keyed by a shared numeric id, and
   (optionally) windowed {!Series} samples as [ph:"C"] counter tracks
   so Perfetto renders queue depth / p99 / fault-rate lanes alongside
   the spans.  Validation reads the file back through the shared
   {!Json} reader — used by `trace --check`, the smoke target, and
   the test suite. *)

let pid_of_cpu cpu = cpu + 1
let process_label cpu = if cpu < 0 then "machine" else Printf.sprintf "cpu %d" cpu

let escape = Json.escape

let flow_ph phase =
  if phase = Trace.flow_start then "s"
  else if phase = Trace.flow_step then "t"
  else "f"

let to_json ?(series : Series.t list = []) (tr : Trace.t) =
  let evs =
    List.stable_sort
      (fun (a : Trace.event) b -> compare a.ev_ts b.ev_ts)
      (Trace.events tr)
  in
  let cpus =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.ev_cpu) evs)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n "
  in
  List.iter
    (fun cpu ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}"
           (pid_of_cpu cpu) (process_label cpu)))
    cpus;
  List.iter
    (fun (e : Trace.event) ->
      sep ();
      Buffer.add_string b "{\"name\":\"";
      escape b e.ev_name;
      Buffer.add_string b "\",\"cat\":\"";
      escape b e.ev_cat;
      Buffer.add_string b "\",";
      if e.ev_flow <> 0 then
        (* "bp":"e" binds the finish point to its enclosing slice,
           which is how Perfetto draws the terminating arrow. *)
        Buffer.add_string b
          (Printf.sprintf
             "\"ph\":\"%s\",\"id\":%d,%s\"pid\":%d,\"tid\":0,\"ts\":%d}"
             (flow_ph e.ev_flow) e.ev_id
             (if e.ev_flow = Trace.flow_finish then "\"bp\":\"e\"," else "")
             (pid_of_cpu e.ev_cpu) e.ev_ts)
      else if e.ev_dur > 0 then
        Buffer.add_string b
          (Printf.sprintf "\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%d,\"dur\":%d}"
             (pid_of_cpu e.ev_cpu) e.ev_ts e.ev_dur)
      else
        Buffer.add_string b
          (Printf.sprintf "\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":0,\"ts\":%d}"
             (pid_of_cpu e.ev_cpu) e.ev_ts))
    evs;
  (* Counter tracks: one ph:"C" event per sample per column, named
     "<series>:<col>" on the machine-wide pid, rendered by Perfetto as
     a value lane.  Emitted after the span stream (Perfetto sorts by
     ts itself; our validator tracks counter monotonicity per name). *)
  let seen = Hashtbl.create 8 in
  List.iter
    (fun s ->
      (* A sweep publishes one same-named series per sub-run, each
         with timestamps restarting at 0; suffix repeats so counter
         lanes (and the validator's per-name monotonicity) stay
         distinct. *)
      let sname =
        let base = Series.name s in
        match Hashtbl.find_opt seen base with
        | None ->
            Hashtbl.add seen base 1;
            base
        | Some k ->
            Hashtbl.replace seen base (k + 1);
            Printf.sprintf "%s#%d" base (k + 1)
      in
      let names = Array.of_list (Series.col_names s) in
      for i = 0 to Series.length s - 1 do
        let ts = Series.ts_at s i in
        Array.iteri
          (fun c cn ->
            sep ();
            Buffer.add_string b "{\"name\":\"";
            escape b (sname ^ ":" ^ cn);
            Buffer.add_string b
              (Printf.sprintf
                 "\",\"cat\":\"series\",\"ph\":\"C\",\"pid\":0,\"ts\":%d,\
                  \"args\":{\"v\":%d}}"
                 ts (Series.get s i c)))
          names
      done)
    series;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_file ?series (tr : Trace.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ?series tr))

(* Validate an exported trace: it must parse, hold a traceEvents
   array, and every X/i/s/t/f/C event needs a non-negative integral
   ts (and dur) with per-pid monotone non-decreasing timestamps for
   X/i/s/t/f (counter events are keyed and checked per counter name
   instead, since they are appended as separate tracks).  Flow events
   additionally need a numeric id, and every flow id must start with
   an "s" before any "t"/"f".  Returns the number of events checked. *)
let validate (s : string) : (int, string) result =
  match Json.parse s with
  | exception Json.Bad msg -> Error ("JSON parse error: " ^ msg)
  | json -> (
      match Json.member "traceEvents" json with
      | Some (Arr evs) -> (
          let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
          let ctr_ts : (string, float) Hashtbl.t = Hashtbl.create 8 in
          let flow_started : (int, unit) Hashtbl.t = Hashtbl.create 8 in
          let checked = ref 0 in
          try
            List.iter
              (fun ev ->
                let num k =
                  match Json.member k ev with
                  | Some (Num f) -> f
                  | _ -> raise (Json.Bad ("event missing numeric " ^ k))
                in
                let check_ts () =
                  let ts = num "ts" in
                  if ts < 0.0 || Float.rem ts 1.0 <> 0.0 then
                    raise (Json.Bad "negative or non-integral ts");
                  ts
                in
                match Json.member "ph" ev with
                | Some (Str ("X" | "i")) -> (
                    incr checked;
                    let ts = check_ts () in
                    (match Json.member "dur" ev with
                    | Some (Num d) when d < 0.0 -> raise (Json.Bad "negative dur")
                    | _ -> ());
                    let pid = int_of_float (num "pid") in
                    match Hashtbl.find_opt last_ts pid with
                    | Some prev when ts < prev ->
                        raise (Json.Bad "timestamps not monotone within a track")
                    | _ -> Hashtbl.replace last_ts pid ts)
                | Some (Str (("s" | "t" | "f") as ph)) -> (
                    incr checked;
                    let ts = check_ts () in
                    let pid = int_of_float (num "pid") in
                    let id = num "id" in
                    if Float.rem id 1.0 <> 0.0 then
                      raise (Json.Bad "non-integral flow id");
                    let id = int_of_float id in
                    (* A retried request's stale machine-side step can
                       land after the front tier's finish, so only
                       start ordering is checked. *)
                    (match (ph, Hashtbl.mem flow_started id) with
                    | "s", true -> raise (Json.Bad "duplicate flow start")
                    | "s", false -> Hashtbl.replace flow_started id ()
                    | _, false ->
                        raise (Json.Bad "flow step/finish before its start")
                    | _, true -> ());
                    match Hashtbl.find_opt last_ts pid with
                    | Some prev when ts < prev ->
                        raise (Json.Bad "timestamps not monotone within a track")
                    | _ -> Hashtbl.replace last_ts pid ts)
                | Some (Str "C") -> (
                    incr checked;
                    let ts = check_ts () in
                    let name =
                      match Json.member "name" ev with
                      | Some (Str n) -> n
                      | _ -> raise (Json.Bad "counter event missing name")
                    in
                    (match Json.member "args" ev with
                    | Some args -> (
                        match Json.member "v" args with
                        | Some (Num _) -> ()
                        | _ -> raise (Json.Bad "counter event missing args.v"))
                    | None -> raise (Json.Bad "counter event missing args"));
                    match Hashtbl.find_opt ctr_ts name with
                    | Some prev when ts < prev ->
                        raise (Json.Bad "counter timestamps not monotone")
                    | _ -> Hashtbl.replace ctr_ts name ts)
                | _ -> ())
              evs;
            Ok !checked
          with Json.Bad msg -> Error msg)
      | _ -> Error "missing traceEvents array")

let validate_file path : (int, string) result = validate (Json.read_file path)

(* Count flow ids whose points touch at least two distinct pids — a
   request trace that actually crossed a machine boundary.  `trace
   --flows --check` fails when a fleet run yields none. *)
let cross_process_flows (s : string) : (int, string) result =
  match Json.parse s with
  | exception Json.Bad msg -> Error ("JSON parse error: " ^ msg)
  | json -> (
      match Json.member "traceEvents" json with
      | Some (Arr evs) -> (
          let pids : (int, int * bool) Hashtbl.t = Hashtbl.create 64 in
          try
            List.iter
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Str ("s" | "t" | "f")) -> (
                    let num k =
                      match Json.member k ev with
                      | Some (Num f) -> f
                      | _ -> raise (Json.Bad ("flow event missing numeric " ^ k))
                    in
                    let id = int_of_float (num "id") in
                    let pid = int_of_float (num "pid") in
                    match Hashtbl.find_opt pids id with
                    | None -> Hashtbl.replace pids id (pid, false)
                    | Some (p0, crossed) ->
                        if (not crossed) && p0 <> pid then
                          Hashtbl.replace pids id (p0, true))
                | _ -> ())
              evs;
            Ok
              (Hashtbl.fold
                 (fun _ (_, crossed) acc -> if crossed then acc + 1 else acc)
                 pids 0)
          with Json.Bad msg -> Error msg)
      | _ -> Error "missing traceEvents array")

let cross_process_flows_file path : (int, string) result =
  cross_process_flows (Json.read_file path)
