(* Chrome trace-event (Perfetto-loadable) export and validation.

   Export maps each simulated CPU to one Chrome "process" (pid =
   cpu + 1, with pid 0 reserved for machine-wide events), names the
   processes via [ph:"M"] metadata, and emits complete spans as
   [ph:"X"] with [ts]/[dur] in virtual cycles and instants as
   [ph:"i"].  Validation reads the file back through the shared
   {!Json} reader — used by `trace --check`, the smoke target, and
   the test suite. *)

let pid_of_cpu cpu = cpu + 1
let process_label cpu = if cpu < 0 then "machine" else Printf.sprintf "cpu %d" cpu

let escape = Json.escape

let to_json (tr : Trace.t) =
  let evs =
    List.stable_sort
      (fun (a : Trace.event) b -> compare a.ev_ts b.ev_ts)
      (Trace.events tr)
  in
  let cpus =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.ev_cpu) evs)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n "
  in
  List.iter
    (fun cpu ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}"
           (pid_of_cpu cpu) (process_label cpu)))
    cpus;
  List.iter
    (fun (e : Trace.event) ->
      sep ();
      Buffer.add_string b "{\"name\":\"";
      escape b e.ev_name;
      Buffer.add_string b "\",\"cat\":\"";
      escape b e.ev_cat;
      Buffer.add_string b "\",";
      if e.ev_dur > 0 then
        Buffer.add_string b
          (Printf.sprintf "\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%d,\"dur\":%d}"
             (pid_of_cpu e.ev_cpu) e.ev_ts e.ev_dur)
      else
        Buffer.add_string b
          (Printf.sprintf "\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":0,\"ts\":%d}"
             (pid_of_cpu e.ev_cpu) e.ev_ts))
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_file (tr : Trace.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json tr))

(* Validate an exported trace: it must parse, hold a traceEvents
   array, and every X/i event needs non-negative integral ts (and dur)
   with per-pid monotone non-decreasing timestamps. Returns the number
   of X/i events checked. *)
let validate (s : string) : (int, string) result =
  match Json.parse s with
  | exception Json.Bad msg -> Error ("JSON parse error: " ^ msg)
  | json -> (
      match Json.member "traceEvents" json with
      | Some (Arr evs) -> (
          let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
          let checked = ref 0 in
          try
            List.iter
              (fun ev ->
                match Json.member "ph" ev with
                | Some (Str ("X" | "i")) -> (
                    incr checked;
                    let num k =
                      match Json.member k ev with
                      | Some (Num f) -> f
                      | _ -> raise (Json.Bad ("event missing numeric " ^ k))
                    in
                    let ts = num "ts" in
                    if ts < 0.0 || Float.rem ts 1.0 <> 0.0 then
                      raise (Json.Bad "negative or non-integral ts");
                    (match Json.member "dur" ev with
                    | Some (Num d) when d < 0.0 -> raise (Json.Bad "negative dur")
                    | _ -> ());
                    let pid = int_of_float (num "pid") in
                    match Hashtbl.find_opt last_ts pid with
                    | Some prev when ts < prev ->
                        raise (Json.Bad "timestamps not monotone within a track")
                    | _ -> Hashtbl.replace last_ts pid ts)
                | _ -> ())
              evs;
            Ok !checked
          with Json.Bad msg -> Error msg)
      | _ -> Error "missing traceEvents array")

let validate_file path : (int, string) result = validate (Json.read_file path)
