(* Chrome trace-event (Perfetto-loadable) export and validation.

   Export maps each simulated CPU to one Chrome "process" (pid =
   cpu + 1, with pid 0 reserved for machine-wide events), names the
   processes via [ph:"M"] metadata, and emits complete spans as
   [ph:"X"] with [ts]/[dur] in virtual cycles and instants as
   [ph:"i"].  The validator is a tiny hand-rolled JSON reader (the
   container has no JSON library) used by `trace --check`, the smoke
   target, and the test suite. *)

let pid_of_cpu cpu = cpu + 1
let process_label cpu = if cpu < 0 then "machine" else Printf.sprintf "cpu %d" cpu

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let to_json (tr : Trace.t) =
  let evs =
    List.stable_sort
      (fun (a : Trace.event) b -> compare a.ev_ts b.ev_ts)
      (Trace.events tr)
  in
  let cpus =
    List.sort_uniq compare (List.map (fun (e : Trace.event) -> e.ev_cpu) evs)
  in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_char b ',';
    Buffer.add_string b "\n "
  in
  List.iter
    (fun cpu ->
      sep ();
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\
            \"args\":{\"name\":\"%s\"}}"
           (pid_of_cpu cpu) (process_label cpu)))
    cpus;
  List.iter
    (fun (e : Trace.event) ->
      sep ();
      Buffer.add_string b "{\"name\":\"";
      escape b e.ev_name;
      Buffer.add_string b "\",\"cat\":\"";
      escape b e.ev_cat;
      Buffer.add_string b "\",";
      if e.ev_dur > 0 then
        Buffer.add_string b
          (Printf.sprintf "\"ph\":\"X\",\"pid\":%d,\"tid\":0,\"ts\":%d,\"dur\":%d}"
             (pid_of_cpu e.ev_cpu) e.ev_ts e.ev_dur)
      else
        Buffer.add_string b
          (Printf.sprintf "\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":0,\"ts\":%d}"
             (pid_of_cpu e.ev_cpu) e.ev_ts))
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ns\"}\n";
  Buffer.contents b

let write_file (tr : Trace.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json tr))

(* ------------------------------------------------------------------ *)
(* Minimal JSON reader, just enough to validate what we export.       *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then (
      pos := !pos + l;
      v)
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
              Buffer.add_char b '"';
              advance ();
              go ()
          | Some '\\' ->
              Buffer.add_char b '\\';
              advance ();
              go ()
          | Some '/' ->
              Buffer.add_char b '/';
              advance ();
              go ()
          | Some 'n' ->
              Buffer.add_char b '\n';
              advance ();
              go ()
          | Some 't' ->
              Buffer.add_char b '\t';
              advance ();
              go ()
          | Some 'r' ->
              Buffer.add_char b '\r';
              advance ();
              go ()
          | Some 'b' ->
              Buffer.add_char b '\b';
              advance ();
              go ()
          | Some 'f' ->
              Buffer.add_char b '\012';
              advance ();
              go ()
          | Some 'u' ->
              if !pos + 4 >= n then fail "bad \\u escape";
              let code = int_of_string ("0x" ^ String.sub s (!pos + 1) 4) in
              (* ASCII only; our exporter never emits higher codepoints. *)
              Buffer.add_char b (Char.chr (code land 0x7f));
              pos := !pos + 5;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          Buffer.add_char b c;
          advance ();
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when is_num_char c -> true | _ -> false do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' -> parse_obj ()
    | Some '[' -> parse_arr ()
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> Num (parse_number ())
    | _ -> fail "expected value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (
      advance ();
      Obj [])
    else
      let rec members acc =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            members ((k, v) :: acc)
        | Some '}' ->
            advance ();
            Obj (List.rev ((k, v) :: acc))
        | _ -> fail "expected ',' or '}'"
      in
      members []
  and parse_arr () =
    expect '[';
    skip_ws ();
    if peek () = Some ']' then (
      advance ();
      Arr [])
    else
      let rec elems acc =
        let v = parse_value () in
        skip_ws ();
        match peek () with
        | Some ',' ->
            advance ();
            elems (v :: acc)
        | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
        | _ -> fail "expected ',' or ']'"
      in
      elems []
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

(* Validate an exported trace: it must parse, hold a traceEvents
   array, and every X/i event needs non-negative integral ts (and dur)
   with per-pid monotone non-decreasing timestamps. Returns the number
   of X/i events checked. *)
let validate (s : string) : (int, string) result =
  match parse s with
  | exception Bad msg -> Error ("JSON parse error: " ^ msg)
  | json -> (
      match member "traceEvents" json with
      | Some (Arr evs) -> (
          let last_ts : (int, float) Hashtbl.t = Hashtbl.create 8 in
          let checked = ref 0 in
          try
            List.iter
              (fun ev ->
                match member "ph" ev with
                | Some (Str ("X" | "i")) -> (
                    incr checked;
                    let num k =
                      match member k ev with
                      | Some (Num f) -> f
                      | _ -> raise (Bad ("event missing numeric " ^ k))
                    in
                    let ts = num "ts" in
                    if ts < 0.0 || Float.rem ts 1.0 <> 0.0 then
                      raise (Bad "negative or non-integral ts");
                    (match member "dur" ev with
                    | Some (Num d) when d < 0.0 -> raise (Bad "negative dur")
                    | _ -> ());
                    let pid = int_of_float (num "pid") in
                    match Hashtbl.find_opt last_ts pid with
                    | Some prev when ts < prev ->
                        raise (Bad "timestamps not monotone within a track")
                    | _ -> Hashtbl.replace last_ts pid ts)
                | _ -> ())
              evs;
            Ok !checked
          with Bad msg -> Error msg)
      | _ -> Error "missing traceEvents array")

let validate_file path : (int, string) result =
  let ic = open_in_bin path in
  let s =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  validate s
