(* Folded-stack export: one "frame;frame;... count" line per unique
   stack path, the input format of Brendan Gregg's flamegraph.pl and
   of speedscope's "import folded" mode.  Counts are self cycles, so
   the per-line counts of a well-formed export sum exactly to the
   profile's total traced cycles — [check] verifies that invariant,
   and the test suite and `make profile-smoke` run it. *)

let to_string (p : Profile.t) =
  let b = Buffer.create 1024 in
  List.iter
    (fun (path, self) -> Buffer.add_string b (Printf.sprintf "%s %d\n" path self))
    p.Profile.folded;
  Buffer.contents b

let write_file (p : Profile.t) path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string p))

(* Parse "path count" lines back; tolerate blank lines. *)
let parse (s : string) : (string * int) list =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         if String.trim line = "" then None
         else
           match String.rindex_opt line ' ' with
           | None -> invalid_arg ("Folded.parse: no count on line: " ^ line)
           | Some i -> (
               let path = String.sub line 0 i in
               let count = String.sub line (i + 1) (String.length line - i - 1) in
               match int_of_string_opt count with
               | Some c -> Some (path, c)
               | None ->
                   invalid_arg ("Folded.parse: bad count on line: " ^ line)))

(* The folded invariant: line counts sum to the profile's total traced
   cycles.  Returns the number of stack lines checked. *)
let check (s : string) ~(total : int) : (int, string) result =
  match parse s with
  | exception Invalid_argument msg -> Error msg
  | lines ->
      let sum = List.fold_left (fun acc (_, c) -> acc + c) 0 lines in
      if sum = total then Ok (List.length lines)
      else
        Error
          (Printf.sprintf "folded self-cycle sum %d <> total traced cycles %d"
             sum total)

let check_file path ~total = check (Json.read_file path) ~total
