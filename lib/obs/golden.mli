(** Golden counter snapshots: per-experiment "counter value" text
    files committed under golden/, compared with per-counter
    tolerances to gate silent behaviour drift in CI. *)

type tolerance = Exact | Pct of float

val default_tolerances : (string * tolerance) list
(** Percentage slack for the timing-derived scheduling-noise counters
    (ticks, timer fires, preemptions, ...); everything else is exact. *)

val shape_tolerances : (string * tolerance) list
(** Tolerances for trace-shape snapshots (["cat/name"] span tallies
    from {!Trace.counting}): the timing-derived event families carry
    the same slack their counter twins do. *)

val allowance : tolerance -> int -> int
(** Absolute drift allowed for an expected value: 0 for {!Exact},
    [ceil (p% of max 1 |expected|)] for [Pct p]. *)

type drift = {
  d_counter : string;
  d_expected : int;
  d_actual : int;
  d_allowed : int;
}

val render_drift : drift -> string

val render : ?header:string list -> (string * int) list -> string
(** Snapshot text: ['# '] header lines, then "name value" lines
    sorted by name. *)

val parse : string -> (string * int) list
(** Read a snapshot back (comments and blanks skipped); raises
    [Invalid_argument] on malformed lines. *)

val compare_counters :
  ?tolerances:(string * tolerance) list ->
  expected:(string * int) list ->
  (string * int) list ->
  drift list
(** Drifts beyond tolerance over the *union* of counter names (absent
    = 0 on either side), sorted by name; empty means the gate passes. *)

val write_file : ?header:string list -> (string * int) list -> string -> unit
val read_file : string -> (string * int) list
