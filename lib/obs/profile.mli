(** Span-stack reconstruction and self/total cycle aggregation.

    Rebuilds per-CPU call trees from the trace ring's complete-span
    [(ts, dur)] intervals: nesting by interval containment, ties (same
    interval) broken by emit order — spans are emitted at completion,
    so on equal intervals the later emit is the parent.  Children
    leaking past their parent's end are clipped to it, making the
    accounting exact: self cycles sum to {!total_cycles}. *)

type frame = { f_cpu : int; f_cat : string; f_name : string }

type row = {
  r_frame : frame;
  r_count : int;  (** spans aggregated into this frame *)
  r_self : int;  (** cycles in this frame minus nested spans *)
  r_total : int;  (** cycles with nested spans included *)
}

type stream_ev = { s_open : bool; s_frame : string; s_at : int }

type t = {
  rows : row list;  (** self descending, then (cpu, cat, name) *)
  folded : (string * int) list;
      (** ["cpu 0;hw:work;..." -> self cycles], path ascending; only
          frames with nonzero self *)
  streams : (int * stream_ev list) list;
      (** per CPU: balanced open/close frame events, [s_at] monotone
          non-decreasing — the speedscope "evented" input *)
  total_cycles : int;  (** sum of root span durations = sum of selfs *)
  span_count : int;
  instant_count : int;
  dropped : int;
}

val of_events : ?dropped:int -> Trace.event list -> t
(** Reconstruct from an explicit oldest-first event list (instants are
    counted but do not contribute cycles). *)

val of_trace : Trace.t -> t
(** [of_events] on the ring's current contents, with its drop count. *)

val total_cycles : t -> int

val frame_label : frame -> string
(** ["cat:name"], the label used in folded paths and streams. *)

val cpu_label : int -> string
(** ["cpu N"], or ["machine"] for cpu [-1]. *)

val render_top : ?top:int -> t -> string
(** Plain-text top-N frames table (count/self/total/self%%), preceded
    by a one-line span/instant/dropped/total summary. *)

(** {1 Two-run comparison} *)

type diff_row = {
  d_label : string;  (** ["cat:name"], summed across CPUs. *)
  d_self_a : int;
  d_self_b : int;
  d_share_a : float;  (** Percent of run A's total cycles. *)
  d_share_b : float;
  d_delta : float;  (** [d_share_b - d_share_a], percentage points. *)
}

val diff : ?threshold:float -> t -> t -> diff_row list
(** Frames whose self-cycle {e share} moved by at least [threshold]
    percentage points (default 1.0) between the runs, largest absolute
    movement first.  Shares — not raw cycles — so runs of different
    lengths compare meaningfully. *)

val render_diff : ?threshold:float -> a_name:string -> b_name:string -> t -> t -> string
(** Plain-text table of {!diff}. *)
