(** Chrome trace-event (Perfetto-loadable) export + validation. *)

val to_json : ?series:Series.t list -> Trace.t -> string
(** Render the trace as Chrome trace-event JSON: one "process" per
    simulated CPU (pid = cpu + 1; pid 0 = machine-wide), complete
    spans as [ph:"X"], instants as [ph:"i"], flow points as
    [ph:"s"/"t"/"f"] keyed by their flow id, timestamps in virtual
    cycles, sorted by [ts].  Each [series] additionally renders as
    [ph:"C"] counter tracks named ["<series>:<col>"] on pid 0, one
    event per retained sample per column. *)

val write_file : ?series:Series.t list -> Trace.t -> string -> unit

val validate : string -> (int, string) result
(** Check a JSON string parses and every X/i/s/t/f/C event has a
    non-negative integral [ts] (and [dur]) with per-pid monotone
    timestamps (per counter name for C events); flow events need a
    numeric id whose "s" precedes any "t"/"f".  Returns the number of
    events checked. *)

val validate_file : string -> (int, string) result

val cross_process_flows : string -> (int, string) result
(** Number of flow ids whose points touch >= 2 distinct pids — flows
    that actually crossed a machine boundary. *)

val cross_process_flows_file : string -> (int, string) result
