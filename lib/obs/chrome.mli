(** Chrome trace-event (Perfetto-loadable) export + validation. *)

val to_json : Trace.t -> string
(** Render the trace as Chrome trace-event JSON: one "process" per
    simulated CPU (pid = cpu + 1; pid 0 = machine-wide), complete
    spans as [ph:"X"], instants as [ph:"i"], timestamps in virtual
    cycles, sorted by [ts]. *)

val write_file : Trace.t -> string -> unit

val validate : string -> (int, string) result
(** Check a JSON string parses and every X/i event has non-negative
    integral [ts]/[dur] with per-pid monotone timestamps.  Returns the
    number of events checked. *)

val validate_file : string -> (int, string) result
