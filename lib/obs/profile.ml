(* Per-CPU span-stack reconstruction and self/total aggregation.

   The trace bus records *complete* spans — a probe site emits
   [(ts, dur)] once the work is done — so the ring holds intervals in
   completion order, not a begin/end event stream.  The profiler
   rebuilds the call-tree shape per CPU from interval containment:
   sort each CPU's spans by start ascending, duration descending, and
   emit index *descending* (a parent completes after — hence is
   emitted after — its children, so on identical intervals the later
   emit is the outer frame), then run a stack machine that pops every
   open span ending at or before the next span's start.  A span whose
   interval leaks past its parent's end is clipped to the parent (the
   effective intervals of a node's direct children are then pairwise
   disjoint), which makes the accounting exact: every span's self
   cycles are its effective duration minus its direct children's, and
   the selfs sum to the total traced cycles (= the sum of root span
   durations) with no clamping. *)

type frame = { f_cpu : int; f_cat : string; f_name : string }

type row = {
  r_frame : frame;
  r_count : int;  (* spans aggregated into this frame *)
  r_self : int;  (* cycles in this frame minus nested spans *)
  r_total : int;  (* cycles with nested spans included *)
}

type stream_ev = { s_open : bool; s_frame : string; s_at : int }

type t = {
  rows : row list;  (* self desc, then (cpu, cat, name) asc *)
  folded : (string * int) list;  (* "cpu 0;hw:work;..." -> self, path asc *)
  streams : (int * stream_ev list) list;  (* per CPU, time order *)
  total_cycles : int;
  span_count : int;
  instant_count : int;
  dropped : int;
}

let frame_label f = f.f_cat ^ ":" ^ f.f_name
let cpu_label cpu = if cpu < 0 then "machine" else Printf.sprintf "cpu %d" cpu

(* One open span on the reconstruction stack. *)
type open_span = {
  o_frame : frame;
  o_ts : int;
  o_end : int;  (* effective end: clipped to the parent's *)
  o_dur : int;  (* effective duration *)
  o_path : string;  (* folded path down to and including this frame *)
  mutable o_child : int;  (* cycles covered by direct children *)
}

let of_events ?(dropped = 0) (evs : Trace.event list) =
  let spans = ref [] and span_count = ref 0 and instant_count = ref 0 in
  List.iteri
    (fun idx (e : Trace.event) ->
      (* Flow points carry no duration and belong to no stack. *)
      if e.ev_flow <> 0 then ()
      else if e.ev_dur > 0 then (
        incr span_count;
        spans := (e, idx) :: !spans)
      else incr instant_count)
    evs;
  let by_cpu : (int, (Trace.event * int) list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun ((e : Trace.event), _ as se) ->
      match Hashtbl.find_opt by_cpu e.ev_cpu with
      | Some l -> l := se :: !l
      | None -> Hashtbl.add by_cpu e.ev_cpu (ref [ se ]))
    !spans;
  let cpus =
    Hashtbl.fold (fun cpu _ acc -> cpu :: acc) by_cpu [] |> List.sort compare
  in
  let aggs : (frame, int ref * int ref * int ref) Hashtbl.t = Hashtbl.create 64 in
  let folded : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  let total_cycles = ref 0 in
  let streams =
    List.map
      (fun cpu ->
        let sorted =
          List.sort
            (fun ((a : Trace.event), ai) ((b : Trace.event), bi) ->
              if a.ev_ts <> b.ev_ts then compare a.ev_ts b.ev_ts
              else if a.ev_dur <> b.ev_dur then compare b.ev_dur a.ev_dur
              else compare bi ai)
            !(Hashtbl.find by_cpu cpu)
        in
        let evs_out = ref [] in
        let emit ev = evs_out := ev :: !evs_out in
        let stack = ref [] in
        let close (o : open_span) =
          let self = o.o_dur - o.o_child in
          (let c, s, t =
             match Hashtbl.find_opt aggs o.o_frame with
             | Some cells -> cells
             | None ->
                 let cells = (ref 0, ref 0, ref 0) in
                 Hashtbl.add aggs o.o_frame cells;
                 cells
           in
           incr c;
           s := !s + self;
           t := !t + o.o_dur);
          (if self > 0 then
             match Hashtbl.find_opt folded o.o_path with
             | Some r -> r := !r + self
             | None -> Hashtbl.add folded o.o_path (ref self));
          emit { s_open = false; s_frame = frame_label o.o_frame; s_at = o.o_end };
          match !stack with
          | parent :: _ -> parent.o_child <- parent.o_child + o.o_dur
          | [] -> total_cycles := !total_cycles + o.o_dur
        in
        let rec pop_until ts =
          match !stack with
          | top :: rest when top.o_end <= ts ->
              stack := rest;
              close top;
              pop_until ts
          | _ -> ()
        in
        List.iter
          (fun ((e : Trace.event), _) ->
            pop_until e.ev_ts;
            let frame = { f_cpu = cpu; f_cat = e.ev_cat; f_name = e.ev_name } in
            let parent_end, parent_path =
              match !stack with
              | top :: _ -> (top.o_end, top.o_path)
              | [] -> (max_int, cpu_label cpu)
            in
            let o_end = min (e.ev_ts + e.ev_dur) parent_end in
            let o =
              {
                o_frame = frame;
                o_ts = e.ev_ts;
                o_end;
                o_dur = max 0 (o_end - e.ev_ts);
                o_path = parent_path ^ ";" ^ frame_label frame;
                o_child = 0;
              }
            in
            emit { s_open = true; s_frame = frame_label frame; s_at = o.o_ts };
            stack := o :: !stack)
          sorted;
        pop_until max_int;
        (cpu, List.rev !evs_out))
      cpus
  in
  let rows =
    Hashtbl.fold
      (fun f (c, s, t) acc ->
        { r_frame = f; r_count = !c; r_self = !s; r_total = !t } :: acc)
      aggs []
    |> List.sort (fun a b ->
           if a.r_self <> b.r_self then compare b.r_self a.r_self
           else
             compare
               (a.r_frame.f_cpu, a.r_frame.f_cat, a.r_frame.f_name)
               (b.r_frame.f_cpu, b.r_frame.f_cat, b.r_frame.f_name))
  in
  let folded =
    Hashtbl.fold (fun path r acc -> (path, !r) :: acc) folded []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    rows;
    folded;
    streams;
    total_cycles = !total_cycles;
    span_count = !span_count;
    instant_count = !instant_count;
    dropped;
  }

let of_trace (tr : Trace.t) =
  of_events ~dropped:(Trace.dropped tr) (Trace.events tr)

let total_cycles t = t.total_cycles

(* Plain-text top-N table, widest-self first. *)
let render_top ?(top = 20) t =
  let rows = List.filteri (fun i _ -> i < top) t.rows in
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "profile: %d spans, %d instants, %d dropped, %d total cycles\n"
       t.span_count t.instant_count t.dropped t.total_cycles);
  let header = ("track", "cat", "name", "count", "self", "total", "self%") in
  let render_row r =
    ( cpu_label r.r_frame.f_cpu,
      r.r_frame.f_cat,
      r.r_frame.f_name,
      string_of_int r.r_count,
      string_of_int r.r_self,
      string_of_int r.r_total,
      if t.total_cycles = 0 then "0.0"
      else Printf.sprintf "%.1f" (100.0 *. float r.r_self /. float t.total_cycles)
    )
  in
  let cells = header :: List.map render_row rows in
  let w f = List.fold_left (fun acc c -> max acc (String.length (f c))) 0 cells in
  let w1 = w (fun (a, _, _, _, _, _, _) -> a)
  and w2 = w (fun (_, a, _, _, _, _, _) -> a)
  and w3 = w (fun (_, _, a, _, _, _, _) -> a)
  and w4 = w (fun (_, _, _, a, _, _, _) -> a)
  and w5 = w (fun (_, _, _, _, a, _, _) -> a)
  and w6 = w (fun (_, _, _, _, _, a, _) -> a)
  and w7 = w (fun (_, _, _, _, _, _, a) -> a) in
  List.iter
    (fun (a, b', c, d, e, f, g) ->
      Buffer.add_string b
        (Printf.sprintf "%-*s  %-*s  %-*s  %*s  %*s  %*s  %*s\n" w1 a w2 b' w3 c
           w4 d w5 e w6 f w7 g))
    cells;
  Buffer.contents b

(* Two-run comparison: fold both profiles to per-frame-label self
   cycles (summed across CPUs — the label, not the track, is the
   stable identity between runs), convert to shares of each run's
   total, and keep the labels whose share moved. *)

type diff_row = {
  d_label : string;
  d_self_a : int;
  d_self_b : int;
  d_share_a : float;
  d_share_b : float;
  d_delta : float;
}

let by_label t =
  let tbl : (string, int ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun r ->
      let label = frame_label r.r_frame in
      match Hashtbl.find_opt tbl label with
      | Some cell -> cell := !cell + r.r_self
      | None -> Hashtbl.add tbl label (ref r.r_self))
    t.rows;
  tbl

let diff ?(threshold = 1.0) a b =
  let ta = by_label a and tb = by_label b in
  let share total self =
    if total = 0 then 0.0 else 100.0 *. float_of_int self /. float_of_int total
  in
  let labels = Hashtbl.create 64 in
  Hashtbl.iter (fun l _ -> Hashtbl.replace labels l ()) ta;
  Hashtbl.iter (fun l _ -> Hashtbl.replace labels l ()) tb;
  Hashtbl.fold
    (fun label () acc ->
      let self_a = match Hashtbl.find_opt ta label with Some c -> !c | None -> 0 in
      let self_b = match Hashtbl.find_opt tb label with Some c -> !c | None -> 0 in
      let share_a = share a.total_cycles self_a in
      let share_b = share b.total_cycles self_b in
      let delta = share_b -. share_a in
      if Float.abs delta >= threshold then
        { d_label = label; d_self_a = self_a; d_self_b = self_b;
          d_share_a = share_a; d_share_b = share_b; d_delta = delta }
        :: acc
      else acc)
    labels []
  |> List.sort (fun x y ->
         match compare (Float.abs y.d_delta) (Float.abs x.d_delta) with
         | 0 -> compare x.d_label y.d_label
         | c -> c)

let render_diff ?(threshold = 1.0) ~a_name ~b_name a b =
  let rows = diff ~threshold a b in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "profile diff: %s (%d cycles) vs %s (%d cycles), threshold %.1f pct pts\n"
       a_name a.total_cycles b_name b.total_cycles threshold);
  if rows = [] then
    Buffer.add_string buf "no frame moved by more than the threshold\n"
  else begin
    let header = ("frame", a_name ^ "%", b_name ^ "%", "delta", "self cycles") in
    let cells =
      header
      :: List.map
           (fun r ->
             ( r.d_label,
               Printf.sprintf "%.1f" r.d_share_a,
               Printf.sprintf "%.1f" r.d_share_b,
               Printf.sprintf "%+.1f" r.d_delta,
               Printf.sprintf "%d -> %d" r.d_self_a r.d_self_b ))
           rows
    in
    let w f = List.fold_left (fun acc c -> max acc (String.length (f c))) 0 cells in
    let w1 = w (fun (x, _, _, _, _) -> x)
    and w2 = w (fun (_, x, _, _, _) -> x)
    and w3 = w (fun (_, _, x, _, _) -> x)
    and w4 = w (fun (_, _, _, x, _) -> x)
    and w5 = w (fun (_, _, _, _, x) -> x) in
    List.iter
      (fun (x1, x2, x3, x4, x5) ->
        Buffer.add_string buf
          (Printf.sprintf "%-*s  %*s  %*s  %*s  %*s\n" w1 x1 w2 x2 w3 x3 w4 x4 w5
             x5))
      cells
  end;
  Buffer.contents buf
