(** Windowed time series: named integer columns sampled together on
    the virtual clock into a preallocated ring.

    Columns are closures ([unit -> int]) so any layer can expose
    counter deltas, gauges, or windowed percentiles without this
    module depending on it.  Sampling writes one int per column into
    the ring — allocation-free in steady state — and reads nothing it
    mutates, so sampling on/off leaves a run's tables byte-identical
    (DESIGN §10). *)

type col

val col : name:string -> (unit -> int) -> col
(** Gauge column: sampled value is the reading itself. *)

val dcol : name:string -> (unit -> int) -> col
(** Delta column over a monotone reading: each sample reports the
    increase since the previous sample. *)

val dref : name:string -> int ref -> col
(** [dcol] over a counter ref. *)

type t

val create :
  ?capacity:int -> name:string -> cols:col list -> ?post:(unit -> unit) list ->
  unit -> t
(** A series with a ring of [capacity] samples (default 4096; older
    samples are overwritten and counted as {!dropped}).  [post] hooks
    run after every sample — the service layer uses them to advance
    latency-histogram windows so percentile columns are per-window,
    not cumulative. *)

val name : t -> string
val ncols : t -> int
val col_names : t -> string list

val sample : t -> ts:int -> unit
(** Read every column (in declared order), store the row at [ts],
    then run the [post] hooks. *)

val length : t -> int
(** Samples currently retained. *)

val taken : t -> int
(** Samples ever taken (including overwritten ones). *)

val dropped : t -> int

val ts_at : t -> int -> int
(** Timestamp of retained sample [i], oldest first. *)

val get : t -> int -> int -> int
(** [get t i c]: column [c] of retained sample [i], oldest first. *)

val to_csv : t -> string
(** Deterministic CSV: header [ts_cycles,<cols>] then one row per
    retained sample, oldest first, all values as raw ints. *)

val write_csv : t -> string -> unit

(** {2 Ambient sampling period}

    Set once by the CLI before a run; runs without an explicit period
    sample at this one when it is positive.  A plain global (read by
    every domain), so set it before spawning workers. *)

val set_period_us : float -> unit
val period_us : unit -> float

(** {2 Published series}

    Domain-local registry: a run deposits its series so an exporter
    on the same domain (e.g. the trace CLI's Chrome counter-track
    renderer) can pick them up afterwards. *)

val publish : t -> unit
val published : unit -> t list
val clear_published : unit -> unit
