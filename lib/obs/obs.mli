(** The per-machine observability context: typed counters + trace bus.

    Exposed concretely so hot paths bump counters and guard probes
    without any indirection. *)

type t = {
  counters : Counter.set;
  trace : Trace.t;
  collect : bool;
      (** when set, every {!inherit_trace} under this ambient registers
          its fresh counter set here for {!total_counters} *)
  mutable children : Counter.set list;
}

val create : ?trace:Trace.t -> ?collect:bool -> unit -> t
(** Fresh counters; [trace] defaults to the null sink, [collect] to
    [false]. *)

val null : unit -> t

val ambient : unit -> t
(** The current domain's ambient context.  Each domain starts with its
    own null context, so parallel experiment runs stay independent. *)

val inherit_trace : unit -> t
(** Fresh counters sharing the ambient context's trace — the default
    for newly created components, so per-component counts stay
    independent while probes land in the scoped trace.  If the ambient
    was created with [~collect:true], the fresh set is also registered
    on it for {!total_counters}. *)

val total_counters : t -> Counter.set
(** Cell-wise sum of [t]'s own counters and every child set collected
    via {!inherit_trace} — the machine-wide event totals for one
    scoped run. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with [obs] as this domain's ambient context, restoring the
    previous one afterwards (also on exceptions). *)
