(** The per-machine observability context: typed counters + trace bus.

    Exposed concretely so hot paths bump counters and guard probes
    without any indirection. *)

type t = { counters : Counter.set; trace : Trace.t }

val create : ?trace:Trace.t -> unit -> t
(** Fresh counters; [trace] defaults to the null sink. *)

val null : unit -> t

val ambient : unit -> t
(** The current domain's ambient context.  Each domain starts with its
    own null context, so parallel experiment runs stay independent. *)

val inherit_trace : unit -> t
(** Fresh counters sharing the ambient context's trace — the default
    for newly created components, so per-component counts stay
    independent while probes land in the scoped trace. *)

val with_ambient : t -> (unit -> 'a) -> 'a
(** Run [f] with [obs] as this domain's ambient context, restoring the
    previous one afterwards (also on exceptions). *)
