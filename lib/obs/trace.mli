(** Span/instant trace bus keyed on virtual cycles.

    The record is exposed concretely so probe sites compile the
    [enabled] guard down to a load and a branch — with the null sink a
    probe costs nothing measurable, which is what lets us leave probes
    in every hot path of the stack. *)

type event = {
  ev_name : string;
  ev_cat : string;
  ev_cpu : int;  (** simulated CPU = one Chrome "process"; -1 = machine-wide *)
  ev_ts : int;  (** virtual cycles *)
  ev_dur : int;  (** 0 for instants *)
  ev_flow : int;
      (** 0 for spans/instants; {!flow_start}/{!flow_step}/
          {!flow_finish} for flow events (Chrome ph "s"/"t"/"f"). *)
  ev_id : int;  (** flow id (request id); 0 unless [ev_flow <> 0] *)
}

val flow_start : int
val flow_step : int
val flow_finish : int

type t = {
  mutable enabled : bool;
  mutable flows : bool;
      (** Flow probes need this additional opt-in ({!set_flows}), so
          span-shape goldens and default traces never see them. *)
  buf : event array;
  cap : int;
  mutable pos : int;
  mutable emitted : int;
  mutable cpu_base : int;
      (** Added to every non-negative [ev_cpu] at emission: a fleet
          coordinator sets this per machine so spans from N machines
          land on disjoint CPU lanes of one shared sink. *)
  mutable flow_base : int;
      (** Added to every flow id at emission; see {!new_flow_scope}. *)
  shape : (string, int ref) Hashtbl.t option;
}

val null : unit -> t
(** Disabled sink: probes are a load + branch, nothing is stored. *)

val ring : ?capacity:int -> unit -> t
(** Enabled bounded ring sink (default capacity 262144 events);
    oldest events are overwritten and counted as {!dropped}. *)

val counting : unit -> t
(** Enabled sink that stores no events, only per-["cat/name"] tallies
    — the coarse trace *shape* of a run.  Golden-gating these counts
    catches a probe that silently stops firing even when the counter
    totals still agree. *)

val shape_counts : t -> (string * int) list
(** ["cat/name"] event tallies sorted by key; [[]] unless the sink
    was built by {!counting}. *)

val enabled : t -> bool

val set_flows : t -> bool -> unit
val flows_enabled : t -> bool
(** [enabled t && t.flows]: whether {!flow} probes record. *)

val set_cpu_base : t -> int -> unit
(** See [cpu_base]. *)

val new_flow_scope : t -> unit
(** Open a fresh flow-id namespace: every subsequent {!flow} id gets a
    new per-scope base added.  Each service/fleet run calls this once
    at start so request handles (which restart at 0 per run) stay
    unique flow ids across an experiment sweep traced into one ring. *)

val span : t -> name:string -> ?cat:string -> cpu:int -> ts:int -> dur:int -> unit -> unit
(** Complete span: [ts .. ts + dur] on CPU [cpu]'s track. *)

val instant : t -> name:string -> ?cat:string -> cpu:int -> ts:int -> unit -> unit

val flow :
  t -> name:string -> ?cat:string -> phase:int -> id:int -> cpu:int ->
  ts:int -> unit -> unit
(** One point of a causal flow (default cat ["flow"]): [phase] is
    {!flow_start} at the origin, {!flow_step} at each hop, and
    {!flow_finish} at the terminus; all points of one flow share
    [id].  Recorded only when both [enabled] and [flows] are set.
    @raise Invalid_argument on a phase outside [1..3]. *)

val emitted : t -> int
(** Total events ever pushed (including overwritten ones). *)

val dropped : t -> int
(** Events lost to ring overwrite. *)

val length : t -> int
(** Events currently held. *)

val events : t -> event list
(** Current contents, oldest first. *)

val clear : t -> unit
